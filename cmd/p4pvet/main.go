// Command p4pvet runs the repo's own static analyzers (see
// internal/analysis and DESIGN.md §8) over the module and fails when
// any invariant is violated without an explicit, reasoned
// //p4pvet:ignore suppression.
//
// Usage:
//
//	p4pvet [-C dir] [-rules r1,r2] [-list] [-v] [./...]
//
// With no package arguments (or the literal "./...") the whole module
// rooted at -C is checked; otherwise each argument names a package
// directory relative to -C. Findings print as
//
//	file:line: [rule] message
//
// and the exit status is 1 when any finding survives suppression.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"p4p/internal/analysis"
)

func main() {
	root := flag.String("C", ".", "module root to analyze")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default all)")
	list := flag.Bool("list", false, "list the available rules and exit")
	verbose := flag.Bool("v", false, "also report per-package suppression counts")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4pvet:", err)
		os.Exit(2)
	}

	absRoot, err := filepath.Abs(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4pvet:", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader()
	pkgs, err := loadTargets(loader, absRoot, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4pvet:", err)
		os.Exit(2)
	}

	findings, suppressed := 0, 0
	for _, p := range pkgs {
		kept, sup := analysis.RunAll(p, analyzers)
		suppressed += sup
		if *verbose && sup > 0 {
			fmt.Fprintf(os.Stderr, "p4pvet: %s: %d suppressed finding(s)\n", p.ImportPath, sup)
		}
		for _, f := range kept {
			findings++
			fmt.Printf("%s:%d: [%s] %s\n", relPath(absRoot, f.Pos.Filename), f.Pos.Line, f.Rule, f.Msg)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "p4pvet: %d finding(s), %d suppressed\n", findings, suppressed)
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "p4pvet: clean (%d package(s), %d suppressed finding(s))\n", len(pkgs), suppressed)
	}
}

// selectAnalyzers resolves the -rules flag against the registry.
func selectAnalyzers(rules string) ([]*analysis.Analyzer, error) {
	all := analysis.Analyzers()
	if rules == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (try -list)", name)
		}
		picked = append(picked, a)
	}
	return picked, nil
}

// loadTargets loads the whole module, or just the named directories.
func loadTargets(loader *analysis.Loader, root string, args []string) ([]*analysis.Pkg, error) {
	if len(args) == 0 || (len(args) == 1 && args[0] == "./...") {
		return loader.LoadModule(root)
	}
	var pkgs []*analysis.Pkg
	for _, arg := range args {
		dir := filepath.Join(root, filepath.FromSlash(strings.TrimSuffix(arg, "/...")))
		got, err := loader.LoadTree(root, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, got...)
	}
	return pkgs, nil
}

func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
