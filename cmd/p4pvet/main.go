// Command p4pvet runs the repo's own static analyzers (see
// internal/analysis and DESIGN.md §8/§12) over the module and fails
// when any invariant is violated without an explicit, reasoned
// //p4pvet:ignore suppression.
//
// Usage:
//
//	p4pvet [-C dir] [-rules r1,r2] [-list] [-v] [-json] [-timing] [-p n] [./...]
//
// With no package arguments (or the literal "./...") the whole module
// rooted at -C is checked; otherwise each argument names a package
// directory relative to -C. Packages are typechecked across a bounded
// worker pool (-p, default GOMAXPROCS) and findings print in
// deterministic path order as
//
//	file:line: [rule] message
//
// or, with -json, as one JSON array of {file, line, rule, message}
// objects on stdout. The exit status is 1 when any finding survives
// suppression. -timing reports the load/analyze/total wall-time split
// on stderr so CI can track analyzer cost.
//
// Analyzers that need the whole module at once (allochot, atomicmix,
// lockheld's interprocedural pass) run after the per-package pass over
// the same loaded units; their findings merge into the same output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"p4p/internal/analysis"
)

func main() {
	root := flag.String("C", ".", "module root to analyze")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default all)")
	list := flag.Bool("list", false, "list the available rules and exit")
	verbose := flag.Bool("v", false, "also report per-package suppression counts")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	timing := flag.Bool("timing", false, "report load/analyze/total wall time on stderr")
	workers := flag.Int("p", 0, "worker pool size for typechecking (0 = GOMAXPROCS)")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4pvet:", err)
		os.Exit(2)
	}

	absRoot, err := filepath.Abs(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4pvet:", err)
		os.Exit(2)
	}
	start := time.Now()
	loader := analysis.NewLoader()
	pkgs, err := loadTargets(loader, absRoot, flag.Args(), *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4pvet:", err)
		os.Exit(2)
	}
	loadDone := time.Now()

	var findings []analysis.Finding
	suppressed := 0
	for _, p := range pkgs {
		kept, sup := analysis.RunAll(p, analyzers)
		suppressed += sup
		if *verbose && sup > 0 {
			fmt.Fprintf(os.Stderr, "p4pvet: %s: %d suppressed finding(s)\n", p.ImportPath, sup)
		}
		findings = append(findings, kept...)
	}
	mod := analysis.NewModule(pkgs)
	modKept, modSup := analysis.RunModuleAll(mod, analyzers)
	suppressed += modSup
	findings = append(findings, modKept...)
	sortByRelPath(absRoot, findings)
	analyzeDone := time.Now()

	if *jsonOut {
		printJSON(absRoot, findings)
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d: [%s] %s\n", relPath(absRoot, f.Pos.Filename), f.Pos.Line, f.Rule, f.Msg)
		}
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "p4pvet: timing: load %.2fs, analyze %.2fs, total %.2fs (%d unit(s), %d worker(s))\n",
			loadDone.Sub(start).Seconds(), analyzeDone.Sub(loadDone).Seconds(),
			time.Since(start).Seconds(), len(pkgs), poolSize(*workers))
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "p4pvet: %d finding(s), %d suppressed in %.2fs\n",
			len(findings), suppressed, time.Since(start).Seconds())
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "p4pvet: clean (%d unit(s), %d suppressed finding(s)) in %.2fs\n",
		len(pkgs), suppressed, time.Since(start).Seconds())
}

// jsonFinding is the machine-readable diagnostic shape; file is
// root-relative for stable CI annotations.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func printJSON(root string, findings []analysis.Finding) {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:    relPath(root, f.Pos.Filename),
			Line:    f.Pos.Line,
			Rule:    f.Rule,
			Message: f.Msg,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "p4pvet:", err)
		os.Exit(2)
	}
}

func poolSize(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// sortByRelPath orders findings by root-relative path, line, then
// rule, so the merged per-package and module findings print in one
// deterministic sequence.
func sortByRelPath(root string, findings []analysis.Finding) {
	for i := range findings {
		findings[i].Pos.Filename = relPath(root, findings[i].Pos.Filename)
	}
	analysis.SortFindings(findings)
}

// selectAnalyzers resolves the -rules flag against the registry.
func selectAnalyzers(rules string) ([]*analysis.Analyzer, error) {
	all := analysis.Analyzers()
	if rules == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (try -list)", name)
		}
		picked = append(picked, a)
	}
	return picked, nil
}

// loadTargets loads the whole module, or just the named directories,
// across the worker pool.
func loadTargets(loader *analysis.Loader, root string, args []string, workers int) ([]*analysis.Pkg, error) {
	if len(args) == 0 || (len(args) == 1 && args[0] == "./...") {
		return loader.LoadTreeParallel(root, root, workers)
	}
	var pkgs []*analysis.Pkg
	for _, arg := range args {
		dir := filepath.Join(root, filepath.FromSlash(strings.TrimSuffix(arg, "/...")))
		got, err := loader.LoadTreeParallel(root, dir, workers)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, got...)
	}
	return pkgs, nil
}

func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
