// Command itracker serves a P4P provider portal over HTTP: the policy,
// p4p-distance, capability and PID-lookup interfaces of the paper's
// Section 3, backed by the dual-decomposition p-distance engine.
//
// Example:
//
//	itracker -topology abilene -listen :8080 -objective mlu
//
// then query it:
//
//	curl localhost:8080/p4p/v1/distances
//	curl "localhost:8080/p4p/v1/pid?ip=10.3.0.7"
//	curl localhost:8080/metrics
//
// Observability: GET /metrics serves the Prometheus exposition (HTTP
// request counts/latency per route, ETag 304 hits, view-recompute
// durations, view version, super-gradient norm, max link utilization,
// and Go runtime health sampled per scrape); GET /healthz and
// GET /readyz serve liveness and readiness (ready once a distance view
// is materialized); -traces enables W3C trace-context request tracing
// with tail sampling and serves kept traces as JSON on
// GET /debug/traces; -pprof additionally mounts net/http/pprof under
// /debug/pprof/. Every request is logged with a request ID via
// log/slog.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"p4p/internal/core"
	"p4p/internal/health"
	"p4p/internal/itracker"
	"p4p/internal/portal"
	"p4p/internal/telemetry"
	"p4p/internal/topology"
	"p4p/internal/trace"
)

func main() {
	var (
		listen    = flag.String("listen", ":8080", "HTTP listen address")
		topoName  = flag.String("topology", "abilene", "topology: abilene, isp-a, isp-b, isp-c")
		objective = flag.String("objective", "mlu", "ISP objective: mlu or bdp")
		step      = flag.Float64("step", 0.1, "super-gradient step size")
		perturb   = flag.Float64("perturb", 0, "privacy perturbation fraction (e.g. 0.05)")
		tokens    = flag.String("tokens", "", "comma-separated trusted appTracker tokens (empty = open)")
		update    = flag.Duration("update", 0, "if set, run an idle price update every interval")
		pprofOn   = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		logJSON   = flag.Bool("log-json", false, "emit JSON logs instead of text")

		tracesOn    = flag.Bool("traces", false, "enable request tracing and serve GET /debug/traces")
		traceSlow   = flag.Duration("trace-slow", 250*time.Millisecond, "tail sampling: always keep traces slower than this")
		traceSample = flag.Float64("trace-sample", 1, "head sampling rate for new traces in [0,1]")
		traceKeep   = flag.Float64("trace-keep", 0.1, "tail keep rate for fast clean traces in [0,1]")
		traceCap    = flag.Int("trace-cap", 256, "kept-trace ring capacity")
	)
	flag.Parse()

	logger := newLogger(*logJSON)

	g, err := topologyByName(*topoName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r := topology.ComputeRouting(g)
	cfg := core.Config{StepSize: *step, PerturbFrac: *perturb}
	switch *objective {
	case "mlu":
		cfg.Objective = core.MinimizeMLU
	case "bdp":
		cfg.Objective = core.MinimizeBDP
	default:
		fmt.Fprintf(os.Stderr, "unknown objective %q\n", *objective)
		os.Exit(2)
	}
	engine := core.NewEngine(g, r, cfg)

	var trusted []string
	if *tokens != "" {
		trusted = strings.Split(*tokens, ",")
	}
	tr := itracker.New(itracker.Config{
		Name:          g.Name,
		ASN:           g.Node(0).ASN,
		TrustedTokens: trusted,
		Policy: itracker.Policy{
			NearCongestionUtil: 0.7,
			HeavyUsageUtil:     0.9,
		},
	}, engine, itracker.SyntheticPIDMap(g))

	// Telemetry: one registry feeds the portal middleware, the iTracker
	// engine gauges, and GET /metrics.
	reg := telemetry.NewRegistry()
	tr.Metrics = itracker.NewMetrics(reg)

	h := portal.NewHandler(tr)
	h.Telemetry.Metrics = telemetry.NewHTTPMetrics(reg, "p4p_http")
	h.Telemetry.Logger = logger
	h.Telemetry.Preregister()

	var collector *trace.Collector
	if *tracesOn {
		collector = trace.NewCollector(*traceCap, *traceSlow, *traceKeep)
		h.Telemetry.Tracer = &trace.Tracer{Collector: collector, SampleRate: *traceSample}
	}

	// Prime the distance view so /readyz flips to ready as soon as the
	// engine has materialized once, not on the first client request.
	primeToken := ""
	if len(trusted) > 0 {
		primeToken = trusted[0]
	}
	if _, err := tr.Distances(primeToken); err != nil {
		logger.Warn("view prime failed; /readyz stays unavailable until first successful recompute",
			slog.String("error", err.Error()))
	}

	rm := telemetry.NewRuntimeMetrics(reg)
	mux := http.NewServeMux()
	mux.Handle("/p4p/", h)
	mux.Handle("GET /metrics", rm.Handler(reg.Handler()))
	mux.Handle("GET /healthz", health.Handler())
	mux.Handle("GET /readyz", health.ReadyHandler(health.Check{
		Name: "view",
		Probe: func() (bool, string) {
			if tr.Ready() {
				return true, "distance view materialized"
			}
			return false, "no materialized distance view yet"
		},
	}))
	if collector != nil {
		mux.Handle("GET /debug/traces", collector.Handler())
	}
	if *pprofOn {
		telemetry.RegisterPprof(mux)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *update > 0 {
		go func() {
			zero := make([]float64, g.NumLinks())
			tick := time.NewTicker(*update)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					tr.ObserveAndUpdate(zero)
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	srv := &http.Server{
		Addr:              *listen,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("iTracker listening",
		slog.String("network", g.Name),
		slog.Int("pids", g.NumNodes()),
		slog.Int("links", g.NumLinks()),
		slog.String("addr", *listen),
		slog.Bool("pprof", *pprofOn),
		slog.Bool("traces", *tracesOn))

	select {
	case err := <-errCh:
		logger.Error("serve failed", slog.String("error", err.Error()))
		os.Exit(1)
	case <-ctx.Done():
		// Drain in-flight portal queries before exiting.
		logger.Info("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Error("shutdown", slog.String("error", err.Error()))
		}
	}
}

// newLogger builds the process logger: text for humans, JSON for log
// pipelines.
func newLogger(jsonOut bool) *slog.Logger {
	if jsonOut {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

func topologyByName(name string) (*topology.Graph, error) {
	switch strings.ToLower(name) {
	case "abilene":
		return topology.Abilene(), nil
	case "abilene-virtual":
		return topology.AbileneVirtualISPs(), nil
	case "isp-a", "ispa":
		return topology.ISPA(), nil
	case "isp-b", "ispb":
		return topology.ISPB(), nil
	case "isp-c", "ispc":
		return topology.ISPC(), nil
	default:
		return nil, fmt.Errorf("unknown topology %q (want abilene, abilene-virtual, isp-a, isp-b, isp-c)", name)
	}
}
