// Command p4pfed serves a P4P federation front end: a shard router
// that consumes N backend iTracker portals (one per provider / PID
// shard), composes their external views with the configured
// interdomain circuits, and serves the merged federation view over the
// standard portal wire protocol — an appTracker cannot tell it from a
// single very wide iTracker.
//
// Example, two providers joined by one circuit:
//
//	p4pfed -listen :8090 \
//	    -shard east=http://east.example:8080 \
//	    -shard west=http://west.example:8080 \
//	    -circuit east:4,west:7,2.5
//
// then query it:
//
//	curl localhost:8090/p4p/v1/distances
//	curl "localhost:8090/p4p/v1/distances/batch?pairs=4-7"
//	curl localhost:8090/stats
//
// Observability matches the portal binary: GET /metrics serves the
// Prometheus exposition (per-shard refreshes/failures/stale serves,
// merge counters, per-route HTTP metrics, runtime health), GET
// /healthz and /readyz serve liveness and readiness (ready while at
// least one shard holds a view — degraded-but-serving is reported, not
// failed), GET /stats snapshots per-shard freshness and the published
// merge, and -traces enables request tracing on GET /debug/traces.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"p4p/internal/federation"
	"p4p/internal/telemetry"
	"p4p/internal/trace"
)

// listFlag collects a repeatable string flag.
type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(s string) error { *l = append(*l, s); return nil }

func main() {
	var shardFlags, circuitFlags listFlag
	var (
		listen  = flag.String("listen", ":8090", "HTTP listen address")
		ttl     = flag.Duration("ttl", 30*time.Second, "merged-view TTL between shard revalidations")
		backoff = flag.Duration("failure-backoff", 5*time.Second, "serve last-known-good this long before retrying a failed shard")
		tokens  = flag.String("tokens", "", "comma-separated trusted appTracker tokens (empty = open)")
		token   = flag.String("shard-token", "", "trust token presented to every backend portal")
		pprofOn = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		logJSON = flag.Bool("log-json", false, "emit JSON logs instead of text")

		tracesOn    = flag.Bool("traces", false, "enable request tracing and serve GET /debug/traces")
		traceSlow   = flag.Duration("trace-slow", 250*time.Millisecond, "tail sampling: always keep traces slower than this")
		traceSample = flag.Float64("trace-sample", 1, "head sampling rate for new traces in [0,1]")
		traceKeep   = flag.Float64("trace-keep", 0.1, "tail keep rate for fast clean traces in [0,1]")
		traceCap    = flag.Int("trace-cap", 256, "kept-trace ring capacity")
	)
	flag.Var(&shardFlags, "shard", "backend shard as name=url (repeatable, at least one)")
	flag.Var(&circuitFlags, "circuit", "interdomain circuit as shardA:pidA,shardB:pidB,cost (repeatable)")
	flag.Parse()

	logger := newLogger(*logJSON)

	cfg := federation.Config{
		TTL:            *ttl,
		FailureBackoff: *backoff,
	}
	if *tokens != "" {
		cfg.TrustedTokens = strings.Split(*tokens, ",")
	}
	for _, s := range shardFlags {
		name, url, ok := strings.Cut(s, "=")
		if !ok || name == "" || url == "" {
			fmt.Fprintf(os.Stderr, "bad -shard %q: want name=url\n", s)
			os.Exit(2)
		}
		cfg.Shards = append(cfg.Shards, federation.ShardConfig{Name: name, BaseURL: url, Token: *token})
	}
	for _, s := range circuitFlags {
		c, err := federation.ParseCircuit(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Circuits = append(cfg.Circuits, c)
	}
	rt, err := federation.NewRouter(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	reg := telemetry.NewRegistry()
	rt.Metrics = federation.NewRouterMetrics(reg)
	rt.Telemetry.Metrics = telemetry.NewHTTPMetrics(reg, "p4p_http")
	rt.Telemetry.Logger = logger
	rt.Telemetry.Preregister()

	var collector *trace.Collector
	if *tracesOn {
		collector = trace.NewCollector(*traceCap, *traceSlow, *traceKeep)
		rt.Telemetry.Tracer = &trace.Tracer{Collector: collector, SampleRate: *traceSample}
	}

	rm := telemetry.NewRuntimeMetrics(reg)
	mux := http.NewServeMux()
	mux.Handle("/p4p/", rt)
	mux.Handle("GET /stats", rt)
	mux.Handle("GET /healthz", rt)
	mux.Handle("GET /readyz", rt)
	mux.Handle("GET /metrics", rm.Handler(reg.Handler()))
	if collector != nil {
		mux.Handle("GET /debug/traces", collector.Handler())
	}
	if *pprofOn {
		telemetry.RegisterPprof(mux)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{
		Addr:              *listen,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("federation router listening",
		slog.String("addr", *listen),
		slog.Int("shards", len(cfg.Shards)),
		slog.Int("circuits", len(cfg.Circuits)),
		slog.Bool("pprof", *pprofOn),
		slog.Bool("traces", *tracesOn))

	select {
	case err := <-errCh:
		logger.Error("serve failed", slog.String("error", err.Error()))
		os.Exit(1)
	case <-ctx.Done():
		logger.Info("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Error("shutdown", slog.String("error", err.Error()))
		}
	}
}

// newLogger builds the process logger: text for humans, JSON for log
// pipelines.
func newLogger(jsonOut bool) *slog.Logger {
	if jsonOut {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}
