// Command p4pexp regenerates the paper's tables and figures. Each
// experiment prints the rows or series the paper reports; see DESIGN.md
// for the experiment index and EXPERIMENTS.md for paper-vs-measured.
//
//	p4pexp -list
//	p4pexp -run F6,F10 -scale 0.5
//	p4pexp -run all -scale 1.0 -parallel 8
//
// -parallel bounds the worker pool that fans each experiment's
// independent simulation cells (0 = GOMAXPROCS, 1 = serial); output is
// byte-identical at any setting. -poolstats prints, per experiment, how
// the pool spent its time (cells, wall vs busy seconds, utilization,
// slowest cell) to stderr, so report bytes stay untouched.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"p4p/internal/experiments"
)

type experiment struct {
	id   string
	desc string
	fn   func(experiments.Options) *experiments.Report
}

var all = []experiment{
	{"T1", "Table 1: networks evaluated", experiments.Table1Networks},
	{"F6", "Figure 6: BitTorrent Internet experiments", experiments.Figure6BitTorrentInternet},
	{"F7", "Figure 7: swarm-size sweep on Abilene", experiments.Figure7SwarmSize},
	{"F8", "Figure 8: swarm-size sweep on ISP-A", experiments.Figure8ISPA},
	{"F9", "Figure 9: Liveswarms streaming", experiments.Figure9Liveswarms},
	{"F10", "Figure 10: interdomain multihoming", experiments.Figure10Interdomain},
	{"F11", "Figure 11: field-test swarm sizes", experiments.Figure11SwarmStats},
	{"T2", "Table 2: field-test overall traffic", experiments.Table2FieldTestTraffic},
	{"T3", "Table 3: field-test internal traffic", experiments.Table3FieldTestInternal},
	{"F12a", "Figure 12a: unit BDP", experiments.Figure12aUnitBDP},
	{"F12b", "Figure 12b: completion times, all ISP-B", experiments.Figure12bCompletion},
	{"F12c", "Figure 12c: completion times, FTTP", experiments.Figure12cFTTP},
	{"X1", "Metro-hop reduction claim", experiments.MetroHopsClaim},
	{"X2", "Dual decomposition convergence", experiments.SuperGradientConvergence},
	{"X3", "Charging-volume prediction", experiments.ChargingPrediction},
	{"X4", "Swarm-size tail", experiments.SwarmTailClaim},
	{"A1", "Ablation: efficiency factor beta", experiments.AblationBeta},
	{"A2", "Ablation: concave robustness transform", experiments.AblationConcave},
	{"A3", "Ablation: PID aggregation granularity", experiments.AblationAggregation},
	{"FED", "Multi-iTracker federation: two providers, live portals", experiments.FederationPair},
}

func main() {
	// All work happens in run so deferred profile flushes execute before
	// the process exits; os.Exit here would skip them.
	os.Exit(run())
}

func run() int {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		runIDs   = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		scale    = flag.Float64("scale", 1.0, "workload scale in (0, 1]")
		seed     = flag.Int64("seed", 42, "random seed")
		parallel = flag.Int("parallel", 0, "worker pool size for independent simulation cells (0 = GOMAXPROCS, 1 = serial)")
		pool     = flag.Bool("poolstats", false, "print per-experiment worker-pool timings to stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list {
		for _, e := range all {
			fmt.Printf("%-5s %s\n", e.id, e.desc)
		}
		return 0
	}

	want := map[string]bool{}
	runAll := *runIDs == "all"
	for _, id := range strings.Split(*runIDs, ",") {
		want[strings.TrimSpace(strings.ToUpper(id))] = true
	}
	ran := 0
	for _, e := range all {
		if !runAll && !want[strings.ToUpper(e.id)] {
			continue
		}
		opt := experiments.Options{Scale: *scale, Seed: *seed, Parallelism: *parallel}
		if *pool {
			opt.PoolStats = &experiments.PoolStats{}
		}
		start := time.Now()
		rep := e.fn(opt)
		if _, err := rep.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if *pool {
			fmt.Fprintf(os.Stderr, "%-5s ", e.id)
			if _, err := opt.PoolStats.WriteTo(os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		fmt.Printf("(%s in %s)\n\n", e.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %q; use -list\n", *runIDs)
		return 2
	}
	return 0
}
