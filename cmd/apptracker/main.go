// Command apptracker runs a P4P-integrated application tracker: it
// discovers one or more iTracker portals, keeps their p-distance views
// fresh, and answers peer-selection requests over HTTP using the
// three-stage selection of Section 6.2.
//
//	POST /select  {"self": {...}, "candidates": [...], "m": 20}
//
// returns the chosen candidate indices. GET /stats reports the view
// cache counters (refreshes, failures, stale serves), which flag when
// selection is running on a last-known-good view because a portal is
// unreachable.
//
// -itracker takes a comma-separated list of portal URLs. With several,
// the tracker consumes every portal concurrently and peer-matches from
// the merged federation view (apptracker.MultiPortalViews): each
// portal keeps its own freshness and last-known-good state, /stats
// reports the counters per portal, and repeatable -circuit flags
// declare the interdomain adjacencies that price cross-provider pairs,
// e.g.
//
//	apptracker -itracker http://east:8080,http://west:8080 \
//	    -circuit "http://east:8080:4,http://west:8080:7,2.5"
//
// Observability: GET /metrics serves the Prometheus exposition
// (request counts/latency per route, portal-client retries and
// backoff, ETag-cache hits, stale/nil serves, Go runtime health);
// GET /healthz and GET /readyz serve liveness and readiness (ready
// while the portal view is present and fresh enough); -traces enables
// W3C trace-context request tracing — spans propagate through the
// portal client to the iTracker so one trace covers both processes —
// and serves kept traces on GET /debug/traces; -pprof mounts
// net/http/pprof under /debug/pprof/. Requests are logged with request
// IDs via log/slog.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"p4p/internal/apptracker"
	"p4p/internal/federation"
	"p4p/internal/health"
	"p4p/internal/portal"
	"p4p/internal/telemetry"
	"p4p/internal/trace"
)

type selectRequest struct {
	Self       apptracker.Node   `json:"self"`
	Candidates []apptracker.Node `json:"candidates"`
	M          int               `json:"m"`
}

type selectResponse struct {
	Indices []int  `json:"indices"`
	Policy  string `json:"policy"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// writeJSON encodes v to a buffer before touching the ResponseWriter,
// so an encoding failure yields a clean 500 error envelope instead of
// a truncated HTTP 200 (the pattern the portal server established).
func writeJSON(logger *slog.Logger, w http.ResponseWriter, r *http.Request, status int, v interface{}) {
	body, err := json.Marshal(v)
	if err != nil {
		logger.Error("encode response",
			slog.String("request_id", telemetry.RequestID(r.Context())),
			slog.String("error", err.Error()))
		status = http.StatusInternalServerError
		body, _ = json.Marshal(errorResponse{Error: "response encoding failed"})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

// listFlag collects a repeatable string flag.
type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(s string) error { *l = append(*l, s); return nil }

func main() {
	var circuitFlags listFlag
	var (
		listen   = flag.String("listen", ":8081", "HTTP listen address")
		itrURL   = flag.String("itracker", "http://localhost:8080", "iTracker portal base URL(s), comma-separated")
		token    = flag.String("token", "", "trust token for the portal")
		ttl      = flag.Duration("view-ttl", 30*time.Second, "p-distance view cache TTL")
		seed     = flag.Int64("seed", time.Now().UnixNano(), "selection RNG seed")
		mDefault = flag.Int("m", 20, "default peer count per request")
		retries  = flag.Int("portal-retries", 3, "portal attempts per refresh")
		pprofOn  = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		logJSON  = flag.Bool("log-json", false, "emit JSON logs instead of text")

		tracesOn    = flag.Bool("traces", false, "enable request tracing and serve GET /debug/traces")
		traceSlow   = flag.Duration("trace-slow", 250*time.Millisecond, "tail sampling: always keep traces slower than this")
		traceSample = flag.Float64("trace-sample", 1, "head sampling rate for new traces in [0,1]")
		traceKeep   = flag.Float64("trace-keep", 0.1, "tail keep rate for fast clean traces in [0,1]")
		traceCap    = flag.Int("trace-cap", 256, "kept-trace ring capacity")
	)
	flag.Var(&circuitFlags, "circuit",
		"interdomain circuit as urlA:pidA,urlB:pidB,cost (repeatable; multi-portal mode only)")
	flag.Parse()

	logger := newLogger(*logJSON)

	// Telemetry: one registry feeds the portal client, the view cache,
	// the request middleware, and GET /metrics.
	reg := telemetry.NewRegistry()

	var collector *trace.Collector
	var tracer *trace.Tracer
	if *tracesOn {
		collector = trace.NewCollector(*traceCap, *traceSlow, *traceKeep)
		tracer = &trace.Tracer{Collector: collector, SampleRate: *traceSample}
	}

	urls := strings.Split(*itrURL, ",")
	client := portal.NewClient(urls[0], *token)
	client.Retry.MaxAttempts = *retries
	client.Metrics = portal.NewClientMetrics(reg)
	vm := apptracker.NewViewMetrics(reg)

	// provider answers selections; statsFn and readyFn back /stats and
	// /readyz in whichever shape the deployment runs.
	var provider apptracker.ViewProvider
	var statsFn func() interface{}
	var readyFn func(maxAge time.Duration) (bool, string)

	if len(urls) > 1 {
		refs := make([]apptracker.PortalRef, len(urls))
		for i, u := range urls {
			refs[i] = apptracker.PortalRef{URL: u}
		}
		mpv := apptracker.NewMultiPortalViews(client, refs, *ttl)
		mpv.Logger = logger
		mpv.SetMetrics(vm)
		for i := range refs {
			mpv.Portal(i).Logger = logger
			// Background refreshes are off any request path, so they
			// start their own root spans via the views tracer.
			mpv.Portal(i).Tracer = tracer
		}
		var circuits []federation.Circuit
		for _, s := range circuitFlags {
			c, err := federation.ParseCircuit(s)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			circuits = append(circuits, c)
		}
		mpv.SetCircuits(circuits)
		provider = mpv
		statsFn = func() interface{} { return mpv.Stats() }
		readyFn = func(maxAge time.Duration) (bool, string) {
			serving, total := mpv.Ready(maxAge)
			detail := fmt.Sprintf("%d/%d portal views fresh", serving, total)
			return serving > 0, detail
		}
	} else {
		if len(circuitFlags) > 0 {
			fmt.Fprintln(os.Stderr, "-circuit requires more than one -itracker URL")
			os.Exit(2)
		}
		views := apptracker.NewPortalViews(client, *ttl)
		views.Logger = logger
		views.Metrics = vm
		views.Tracer = tracer
		provider = views
		statsFn = func() interface{} { return views.Stats() }
		readyFn = func(maxAge time.Duration) (bool, string) {
			if views.Ready(maxAge) {
				return true, "portal view fresh"
			}
			return false, "no fresh portal view (portal unreachable or not yet fetched)"
		}
	}
	sel := &apptracker.P4P{Views: provider}
	rng := rand.New(rand.NewSource(*seed))
	var rngMu sync.Mutex

	mw := &telemetry.Middleware{
		Metrics: telemetry.NewHTTPMetrics(reg, "p4p_http"),
		Logger:  logger,
		Tracer:  tracer,
	}

	mux := http.NewServeMux()
	mux.Handle("POST /select", mw.RouteFunc("select", func(w http.ResponseWriter, r *http.Request) {
		var req selectRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(logger, w, r, http.StatusBadRequest, errorResponse{Error: "bad request: " + err.Error()})
			return
		}
		if req.M <= 0 {
			req.M = *mDefault
		}
		rngMu.Lock()
		idx := sel.Select(req.Self, req.Candidates, req.M, rng)
		rngMu.Unlock()
		if idx == nil {
			idx = []int{}
		}
		writeJSON(logger, w, r, http.StatusOK, selectResponse{Indices: idx, Policy: sel.Name()})
	}))
	mux.Handle("GET /stats", mw.RouteFunc("stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(logger, w, r, http.StatusOK, statsFn())
	}))
	rm := telemetry.NewRuntimeMetrics(reg)
	mux.Handle("GET /metrics", rm.Handler(reg.Handler()))
	mux.Handle("GET /healthz", health.Handler())
	// Ready while a portal view exists and was fetched within 3x the TTL
	// — the same window in which stale-fallback serves are acceptable.
	// In multi-portal mode one fresh portal suffices (degraded-but-
	// serving, with the split in the detail string).
	readyAge := 3 * *ttl
	mux.Handle("GET /readyz", health.ReadyHandler(health.Check{
		Name:  "portal_view",
		Probe: func() (bool, string) { return readyFn(readyAge) },
	}))
	if collector != nil {
		mux.Handle("GET /debug/traces", collector.Handler())
	}
	if *pprofOn {
		telemetry.RegisterPprof(mux)
	}
	mw.Preregister()

	// Warm the view in the background so /readyz flips as soon as the
	// portal answers, without blocking startup when it is down.
	//p4pvet:ignore goroleak one-shot warmup; ViewFor returns once the portal client's per-attempt timeouts and bounded retries run out
	go provider.ViewFor(0)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{
		Addr:              *listen,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("appTracker listening",
		slog.String("addr", *listen),
		slog.String("portal", *itrURL),
		slog.Bool("pprof", *pprofOn),
		slog.Bool("traces", *tracesOn))

	select {
	case err := <-errCh:
		logger.Error("serve failed", slog.String("error", err.Error()))
		os.Exit(1)
	case <-ctx.Done():
		logger.Info("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Error("shutdown", slog.String("error", err.Error()))
		}
	}
}

// newLogger builds the process logger: text for humans, JSON for log
// pipelines.
func newLogger(jsonOut bool) *slog.Logger {
	if jsonOut {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}
