// Command apptracker runs a P4P-integrated application tracker: it
// discovers an iTracker portal, keeps the p-distance view fresh, and
// answers peer-selection requests over HTTP using the three-stage
// selection of Section 6.2.
//
//	POST /select  {"self": {...}, "candidates": [...], "m": 20}
//
// returns the chosen candidate indices.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"p4p/internal/apptracker"
	"p4p/internal/portal"
)

type selectRequest struct {
	Self       apptracker.Node   `json:"self"`
	Candidates []apptracker.Node `json:"candidates"`
	M          int               `json:"m"`
}

type selectResponse struct {
	Indices []int  `json:"indices"`
	Policy  string `json:"policy"`
}

// portalViews adapts a portal client to the selector's ViewProvider,
// caching the fetched view for a TTL.
type portalViews struct {
	client *portal.Client
	ttl    time.Duration

	mu      sync.Mutex
	view    apptracker.DistanceView
	fetched time.Time
}

func (p *portalViews) ViewFor(asn int) apptracker.DistanceView {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.view != nil && time.Since(p.fetched) < p.ttl {
		return p.view
	}
	v, err := p.client.Distances()
	if err != nil {
		log.Printf("portal query failed (serving stale/nil view): %v", err)
		return p.view
	}
	p.view = v
	p.fetched = time.Now()
	return v
}

func main() {
	var (
		listen   = flag.String("listen", ":8081", "HTTP listen address")
		itrURL   = flag.String("itracker", "http://localhost:8080", "iTracker portal base URL")
		token    = flag.String("token", "", "trust token for the portal")
		ttl      = flag.Duration("view-ttl", 30*time.Second, "p-distance view cache TTL")
		seed     = flag.Int64("seed", time.Now().UnixNano(), "selection RNG seed")
		mDefault = flag.Int("m", 20, "default peer count per request")
	)
	flag.Parse()

	views := &portalViews{client: portal.NewClient(*itrURL, *token), ttl: *ttl}
	sel := &apptracker.P4P{Views: views}
	rng := rand.New(rand.NewSource(*seed))
	var rngMu sync.Mutex

	mux := http.NewServeMux()
	mux.HandleFunc("POST /select", func(w http.ResponseWriter, r *http.Request) {
		var req selectRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		if req.M <= 0 {
			req.M = *mDefault
		}
		rngMu.Lock()
		idx := sel.Select(req.Self, req.Candidates, req.M, rng)
		rngMu.Unlock()
		if idx == nil {
			idx = []int{}
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(selectResponse{Indices: idx, Policy: sel.Name()}); err != nil {
			log.Printf("encode response: %v", err)
		}
	})

	log.Printf("appTracker listening on %s, portal %s", *listen, *itrURL)
	if err := http.ListenAndServe(*listen, mux); err != nil {
		log.Fatal(err)
		os.Exit(1)
	}
}
