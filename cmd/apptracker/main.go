// Command apptracker runs a P4P-integrated application tracker: it
// discovers an iTracker portal, keeps the p-distance view fresh, and
// answers peer-selection requests over HTTP using the three-stage
// selection of Section 6.2.
//
//	POST /select  {"self": {...}, "candidates": [...], "m": 20}
//
// returns the chosen candidate indices. GET /stats reports the view
// cache counters (refreshes, failures, stale serves), which flag when
// selection is running on a last-known-good view because the portal is
// unreachable.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"p4p/internal/apptracker"
	"p4p/internal/portal"
)

type selectRequest struct {
	Self       apptracker.Node   `json:"self"`
	Candidates []apptracker.Node `json:"candidates"`
	M          int               `json:"m"`
}

type selectResponse struct {
	Indices []int  `json:"indices"`
	Policy  string `json:"policy"`
}

func main() {
	var (
		listen   = flag.String("listen", ":8081", "HTTP listen address")
		itrURL   = flag.String("itracker", "http://localhost:8080", "iTracker portal base URL")
		token    = flag.String("token", "", "trust token for the portal")
		ttl      = flag.Duration("view-ttl", 30*time.Second, "p-distance view cache TTL")
		seed     = flag.Int64("seed", time.Now().UnixNano(), "selection RNG seed")
		mDefault = flag.Int("m", 20, "default peer count per request")
		retries  = flag.Int("portal-retries", 3, "portal attempts per refresh")
	)
	flag.Parse()

	client := portal.NewClient(*itrURL, *token)
	client.Retry.MaxAttempts = *retries
	views := apptracker.NewPortalViews(client, *ttl)
	views.Log = log.New(os.Stderr, "apptracker ", log.LstdFlags)
	sel := &apptracker.P4P{Views: views}
	rng := rand.New(rand.NewSource(*seed))
	var rngMu sync.Mutex

	mux := http.NewServeMux()
	mux.HandleFunc("POST /select", func(w http.ResponseWriter, r *http.Request) {
		var req selectRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		if req.M <= 0 {
			req.M = *mDefault
		}
		rngMu.Lock()
		idx := sel.Select(req.Self, req.Candidates, req.M, rng)
		rngMu.Unlock()
		if idx == nil {
			idx = []int{}
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(selectResponse{Indices: idx, Policy: sel.Name()}); err != nil {
			log.Printf("encode response: %v", err)
		}
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(views.Stats()); err != nil {
			log.Printf("encode stats: %v", err)
		}
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{
		Addr:              *listen,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("appTracker listening on %s, portal %s", *listen, *itrURL)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		log.Printf("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("shutdown: %v", err)
		}
	}
}
