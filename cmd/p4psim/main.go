// Command p4psim runs a single BitTorrent swarm simulation under a
// chosen peer-selection policy and prints the headline metrics — a
// workbench for one-off what-if runs outside the fixed experiments.
//
//	p4psim -topology abilene -policy p4p -clients 200 -file-mb 12
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"p4p/internal/apptracker"
	"p4p/internal/core"
	"p4p/internal/itracker"
	"p4p/internal/p2psim"
	"p4p/internal/topology"
)

func main() {
	// All work happens in run so deferred profile flushes execute before
	// the process exits; os.Exit here would skip them.
	os.Exit(run())
}

func run() int {
	var (
		topoName = flag.String("topology", "abilene", "abilene, abilene-virtual, isp-a, isp-b, isp-c")
		policy   = flag.String("policy", "p4p", "native, localized, or p4p")
		clients  = flag.Int("clients", 200, "number of leecher clients")
		fileMB   = flag.Int64("file-mb", 12, "file size in MiB")
		upMbps   = flag.Float64("up", 100, "client upload capacity, Mbps")
		downMbps = flag.Float64("down", 100, "client download capacity, Mbps")
		seedMbps = flag.Float64("seed-up", 1000, "initial seed upload, Mbps")
		seed     = flag.Int64("seed", 42, "random seed")
		joinSec  = flag.Float64("join-window", 300, "join window, seconds")
		rateEps  = flag.Float64("rate-epsilon", 0, "bounded-staleness rate tolerance (0 = exact)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	g, err := topologyByName(*topoName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	r := topology.ComputeRouting(g)

	cfg := p2psim.Config{
		Graph:            g,
		Routing:          r,
		Seed:             *seed,
		FileBytes:        *fileMB << 20,
		TCPWindowBytes:   32 << 10,
		ReselectInterval: 20,
		SampleInterval:   2,
		RateEpsilon:      *rateEps,
	}
	switch *policy {
	case "native":
		cfg.Selector = apptracker.Random{}
	case "localized":
		cfg.Selector = &apptracker.Localized{Delay: func(a, b apptracker.Node) float64 {
			return r.PropagationDelaySeconds(a.PID, b.PID)
		}}
	case "p4p":
		engine := core.NewEngine(g, r, core.Config{Objective: core.MinimizeMLU, StepSize: 0.3})
		tr := itracker.New(itracker.Config{Name: g.Name, ASN: g.Node(0).ASN}, engine, nil)
		cfg.Selector = &apptracker.P4P{Views: trackerViews{tr}}
		cfg.MeasureInterval = 10
		cfg.OnMeasure = func(now float64, rates []float64) { tr.ObserveAndUpdate(rates) }
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		return 2
	}

	sim := p2psim.New(cfg)
	pids := g.AggregationPIDs()
	sim.AddClient(p2psim.ClientSpec{
		PID: pids[0], ASN: g.Node(pids[0]).ASN,
		UpBps: *seedMbps * 1e6, DownBps: *seedMbps * 1e6, IsSeed: true,
	})
	rng := rand.New(rand.NewSource(*seed + 1))
	for i := 0; i < *clients; i++ {
		pid := pids[rng.Intn(len(pids))]
		sim.AddClient(p2psim.ClientSpec{
			PID: pid, ASN: g.Node(pid).ASN,
			UpBps: *upMbps * 1e6, DownBps: *downMbps * 1e6,
			JoinAt: *joinSec * float64(i) / float64(*clients),
		})
	}
	res := sim.Run()

	fmt.Printf("topology          %s (%d PIDs, %d links)\n", g.Name, g.NumNodes(), g.NumLinks())
	fmt.Printf("policy            %s\n", cfg.Selector.Name())
	fmt.Printf("clients           %d + 1 seed, %d MiB file\n", *clients, *fileMB)
	fmt.Printf("completed         %d\n", len(res.CompletionTimes()))
	fmt.Printf("mean completion   %.1f s\n", res.MeanCompletionTime())
	fmt.Printf("swarm completion  %.1f s\n", res.SwarmCompletionTime())
	link, bytes := res.BottleneckTraffic()
	if link >= 0 {
		l := g.Link(link)
		fmt.Printf("bottleneck        %s -> %s: %.1f MB\n",
			g.Node(l.Src).Name, g.Node(l.Dst).Name, bytes/(1<<20))
	}
	fmt.Printf("peak utilization  %.2f%%\n", res.PeakUtilization()*100)
	fmt.Printf("unit BDP          %.2f backbone links/byte\n", res.UnitBDP)
	fmt.Printf("intra-PID share   %.1f%%\n", 100*res.IntraPIDBytes()/res.TotalBytes)
	return 0
}

func topologyByName(name string) (*topology.Graph, error) {
	switch strings.ToLower(name) {
	case "abilene":
		return topology.Abilene(), nil
	case "abilene-virtual":
		return topology.AbileneVirtualISPs(), nil
	case "isp-a", "ispa":
		return topology.ISPA(), nil
	case "isp-b", "ispb":
		return topology.ISPB(), nil
	case "isp-c", "ispc":
		return topology.ISPC(), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

type trackerViews struct{ tr *itracker.Server }

func (v trackerViews) ViewFor(asn int) apptracker.DistanceView {
	view, err := v.tr.Distances("")
	if err != nil {
		return nil
	}
	return view
}
