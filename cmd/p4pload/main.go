// Command p4pload is a closed-loop load generator for the portal's
// serving path: N workers issue back-to-back requests for a fixed
// duration and the tool reports sustained QPS and latency quantiles
// per scenario. It exists to measure the encoded-response cache under
// concurrency — the micro-benchmarks (BENCH_portal.json) time one
// handler call in isolation; this drives the full HTTP stack.
//
// Scenarios:
//
//	distances      GET /p4p/v1/distances (200 + full matrix, cached bytes)
//	revalidate     GET with If-None-Match (304, no body)
//	batch          POST /p4p/v1/distances/batch with -batch pairs
//	federation     the same three shapes against an in-process
//	               federation router proxying two ServePIDs-sharded
//	               backend portals (fed-distances, fed-revalidate,
//	               fed-batch) — the internal/federation merge+serve path
//	all            each of the above in sequence
//
// With no -url, an in-process portal is served on 127.0.0.1:0 over the
// -topology graph, so the tool is self-contained for CI smoke runs:
//
//	p4pload -duration 2s -c 8 -scenario all -out BENCH_load.json
//
// -update additionally bumps prices on an interval during the run,
// exercising cache invalidation under load. Results append machine
// metadata and are written as JSON (see scripts/bench_json.sh load,
// which commits them as BENCH_load.json).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"p4p/internal/core"
	"p4p/internal/federation"
	"p4p/internal/itracker"
	"p4p/internal/portal"
	"p4p/internal/topology"
	"p4p/internal/trace"
)

type result struct {
	Name        string  `json:"name"`
	Concurrency int     `json:"concurrency"`
	DurationS   float64 `json:"duration_s"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	QPS         float64 `json:"qps"`
	P50us       int64   `json:"p50_us"`
	P99us       int64   `json:"p99_us"`
	Maxus       int64   `json:"max_us"`
}

type report struct {
	GOOS    string   `json:"goos"`
	GOARCH  string   `json:"goarch"`
	CPUs    int      `json:"cpus"`
	Target  string   `json:"target"`
	Results []result `json:"results"`
}

func main() {
	var (
		url      = flag.String("url", "", "portal base URL (empty = serve an in-process portal)")
		topoName = flag.String("topology", "abilene", "in-process topology: abilene, abilene-virtual, isp-a, isp-b, isp-c")
		workers  = flag.Int("c", 8, "concurrent closed-loop workers")
		duration = flag.Duration("duration", 5*time.Second, "measured run length per scenario")
		warmup   = flag.Duration("warmup", time.Second, "warmup length per scenario (discarded)")
		scenario = flag.String("scenario", "all", "scenario: distances, revalidate, batch, federation, or all")
		batchN   = flag.Int("batch", 16, "pairs per batch request")
		update   = flag.Duration("update", 0, "if set, run a price update every interval during the run")
		out      = flag.String("out", "", "write the JSON report here (default stdout)")
		token    = flag.String("token", "", "trust token presented on requests")
		traces   = flag.Bool("traces", false, "trace the in-process portal and validate GET /debug/traces after the run")
	)
	flag.Parse()

	target := *url
	var tr *itracker.Server
	if target == "" {
		g, err := topologyByName(*topoName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		r := topology.ComputeRouting(g)
		tr = itracker.New(itracker.Config{Name: g.Name, ASN: 1}, core.NewEngine(g, r, core.Config{}), nil)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		h := portal.NewHandler(tr)
		var handler http.Handler = h
		if *traces {
			// Modest head sampling keeps the tracing overhead honest
			// under load; SlowThreshold 0 tail-keeps every sampled trace
			// so the post-run /debug/traces check always has material.
			col := trace.NewCollector(256, 0, 1)
			h.Telemetry.Tracer = &trace.Tracer{Collector: col, SampleRate: 0.05}
			m := http.NewServeMux()
			m.Handle("/p4p/", h)
			m.Handle("GET /debug/traces", col.Handler())
			handler = m
		}
		srv := &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
		//p4pvet:ignore goroleak Serve returns when the deferred srv.Close below tears down the listener at end of run
		go srv.Serve(ln)
		defer srv.Close()
		target = "http://" + ln.Addr().String()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *update > 0 {
		go func() {
			var loads []float64
			if tr != nil {
				loads = make([]float64, tr.Engine().Graph().NumLinks())
			}
			tick := time.NewTicker(*update)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if tr != nil {
						tr.ObserveAndUpdate(loads)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	transport := &http.Transport{
		MaxIdleConns:        *workers * 2,
		MaxIdleConnsPerHost: *workers * 2,
	}
	hc := &http.Client{Transport: transport, Timeout: 30 * time.Second}

	// Prime: fetch the current view once for the revalidation ETag and
	// the PID set batch pairs draw from.
	c := portal.NewClient(target, *token)
	c.HTTPClient = hc
	view, err := c.DistancesContext(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4pload: priming fetch against %s: %v\n", target, err)
		os.Exit(1)
	}
	etag, err := fetchETag(ctx, hc, target, *token)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4pload: %v\n", err)
		os.Exit(1)
	}
	pairs := make([]portal.PIDPair, *batchN)
	for i := range pairs {
		pairs[i] = portal.PIDPair{
			Src: view.PIDs[i%len(view.PIDs)],
			Dst: view.PIDs[(i+1)%len(view.PIDs)],
		}
	}
	batchBody, err := json.Marshal(struct {
		Pairs []portal.PIDPair `json:"pairs"`
	}{pairs})
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4pload: %v\n", err)
		os.Exit(1)
	}

	scenarios := map[string]shot{
		"distances":  {method: http.MethodGet, path: "/p4p/v1/distances", want: http.StatusOK},
		"revalidate": {method: http.MethodGet, path: "/p4p/v1/distances", etag: etag, want: http.StatusNotModified},
		"batch":      {method: http.MethodPost, path: "/p4p/v1/distances/batch", body: batchBody, want: http.StatusOK},
	}

	// Federation scenarios run against their own in-process stack (a
	// shard router over two backend portals); with an external -url
	// there is nothing to stand that stack on, so they are skipped.
	fedNames := []string{"fed-distances", "fed-revalidate", "fed-batch"}
	if *url == "" {
		fedTarget, fedCleanup, err := startFederation()
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4pload: federation stack: %v\n", err)
			os.Exit(1)
		}
		defer fedCleanup()
		fc := portal.NewClient(fedTarget, *token)
		fc.HTTPClient = hc
		fedView, err := fc.DistancesContext(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4pload: priming federation fetch against %s: %v\n", fedTarget, err)
			os.Exit(1)
		}
		fedETag, err := fetchETag(ctx, hc, fedTarget, *token)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4pload: %v\n", err)
			os.Exit(1)
		}
		// Pair each PID with one half the universe away so the batch
		// shots exercise cross-shard composed entries, not just the
		// copy-through diagonal blocks.
		fedPairs := make([]portal.PIDPair, *batchN)
		for i := range fedPairs {
			fedPairs[i] = portal.PIDPair{
				Src: fedView.PIDs[i%len(fedView.PIDs)],
				Dst: fedView.PIDs[(i+len(fedView.PIDs)/2)%len(fedView.PIDs)],
			}
		}
		fedBatchBody, err := json.Marshal(struct {
			Pairs []portal.PIDPair `json:"pairs"`
		}{fedPairs})
		if err != nil {
			fmt.Fprintf(os.Stderr, "p4pload: %v\n", err)
			os.Exit(1)
		}
		scenarios["fed-distances"] = shot{method: http.MethodGet, path: "/p4p/v1/distances", want: http.StatusOK, target: fedTarget}
		scenarios["fed-revalidate"] = shot{method: http.MethodGet, path: "/p4p/v1/distances", etag: fedETag, want: http.StatusNotModified, target: fedTarget}
		scenarios["fed-batch"] = shot{method: http.MethodPost, path: "/p4p/v1/distances/batch", body: fedBatchBody, want: http.StatusOK, target: fedTarget}
	}

	var names []string
	switch {
	case *scenario == "all":
		names = []string{"distances", "revalidate", "batch"}
		if _, ok := scenarios["fed-distances"]; ok {
			names = append(names, fedNames...)
		}
	case *scenario == "federation":
		if _, ok := scenarios["fed-distances"]; !ok {
			fmt.Fprintln(os.Stderr, "p4pload: -scenario federation needs the in-process stack (drop -url)")
			os.Exit(2)
		}
		names = fedNames
	default:
		if _, ok := scenarios[*scenario]; !ok {
			fmt.Fprintf(os.Stderr, "p4pload: unknown scenario %q (want distances, revalidate, batch, federation, all)\n", *scenario)
			os.Exit(2)
		}
		names = []string{*scenario}
	}

	rep := report{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(), Target: target}
	failed := false
	for _, name := range names {
		s := scenarios[name]
		tgt := target
		if s.target != "" {
			tgt = s.target
		}
		if *warmup > 0 {
			run(ctx, hc, tgt, *token, s, *workers, *warmup)
		}
		res := run(ctx, hc, tgt, *token, s, *workers, *duration)
		res.Name = name
		rep.Results = append(rep.Results, res)
		if res.Errors > 0 {
			failed = true
		}
		fmt.Fprintf(os.Stderr, "%-11s c=%d %8.0f req/s  p50 %6dus  p99 %6dus  max %6dus  (%d req, %d err)\n",
			name, res.Concurrency, res.QPS, res.P50us, res.P99us, res.Maxus, res.Requests, res.Errors)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "p4pload: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "p4pload: %v\n", err)
		os.Exit(1)
	}
	if *traces {
		if err := checkTraces(ctx, hc, target); err != nil {
			fmt.Fprintf(os.Stderr, "p4pload: /debug/traces check: %v\n", err)
			os.Exit(1)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "p4pload: scenario recorded request errors")
		os.Exit(1)
	}
}

// checkTraces asserts the debug endpoint still serves a valid,
// non-empty trace snapshot after the load run — the whole point of a
// bounded ring collector is that it keeps working under pressure.
func checkTraces(ctx context.Context, hc *http.Client, target string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/debug/traces", nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	var snap trace.WireSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return fmt.Errorf("invalid JSON: %v", err)
	}
	if len(snap.Traces) == 0 {
		return errors.New("no traces kept after load run")
	}
	for _, t := range snap.Traces {
		if t.TraceID == "" || len(t.Spans) == 0 {
			return fmt.Errorf("malformed trace entry %+v", t)
		}
	}
	fmt.Fprintf(os.Stderr, "traces      kept=%d ring_cap=%d sampled_out=%d\n",
		snap.Kept, snap.Capacity, snap.SampledOut)
	return nil
}

// shot describes one request shape a scenario repeats.
type shot struct {
	method string
	path   string
	etag   string
	body   []byte
	want   int
	target string // overrides the default target (federation scenarios)
}

// startFederation stands up the federation stack on loopback: one
// shared engine over the two-virtual-ISP Abilene split, one
// ServePIDs-restricted backend portal per ASN, and a federation.Router
// proxying both with the interdomain cuts as circuits. Returns the
// router's base URL.
func startFederation() (target string, cleanup func(), err error) {
	g := topology.AbileneVirtualISPs()
	r := topology.ComputeRouting(g)
	eng := core.NewEngine(g, r, core.Config{})

	pidsByASN := map[int][]topology.PID{}
	for _, p := range g.AggregationPIDs() {
		pidsByASN[g.Node(p).ASN] = append(pidsByASN[g.Node(p).ASN], p)
	}
	asns := make([]int, 0, len(pidsByASN))
	for asn := range pidsByASN {
		asns = append(asns, asn)
	}
	sort.Ints(asns)

	var closers []func()
	cleanup = func() {
		for _, f := range closers {
			f()
		}
	}
	serve := func(h http.Handler) (string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
		//p4pvet:ignore goroleak Serve returns when cleanup closes the server at end of run
		go srv.Serve(ln)
		closers = append(closers, func() { srv.Close() })
		return "http://" + ln.Addr().String(), nil
	}

	var shards []federation.ShardConfig
	nameOf := map[int]string{}
	for _, asn := range asns {
		name := fmt.Sprintf("isp%d", asn)
		nameOf[asn] = name
		tr := itracker.New(itracker.Config{Name: name, ASN: asn, ServePIDs: pidsByASN[asn]}, eng, nil)
		base, err := serve(portal.NewHandler(tr))
		if err != nil {
			cleanup()
			return "", nil, err
		}
		shards = append(shards, federation.ShardConfig{Name: name, BaseURL: base})
	}
	var circuits []federation.Circuit
	for _, cut := range topology.InterdomainCuts(g) {
		l := g.Link(cut[0])
		circuits = append(circuits, federation.Circuit{
			A: nameOf[g.Node(l.Src).ASN], APID: l.Src,
			B: nameOf[g.Node(l.Dst).ASN], BPID: l.Dst,
			Cost: eng.Price(l.ID),
		})
	}
	rt, err := federation.NewRouter(federation.Config{Shards: shards, Circuits: circuits})
	if err != nil {
		cleanup()
		return "", nil, err
	}
	target, err = serve(rt)
	if err != nil {
		cleanup()
		return "", nil, err
	}
	return target, cleanup, nil
}

// run drives workers closed-loop copies of s for d and merges their
// latency samples.
func run(ctx context.Context, hc *http.Client, target, token string, s shot, workers int, d time.Duration) result {
	deadline := time.Now().Add(d)
	lats := make([][]int64, workers)
	errs := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			samples := make([]int64, 0, 1<<14)
			for time.Now().Before(deadline) && ctx.Err() == nil {
				start := time.Now()
				if err := fire(ctx, hc, target, token, s); err != nil {
					errs[w]++
					continue
				}
				samples = append(samples, time.Since(start).Microseconds())
			}
			lats[w] = samples
		}(w)
	}
	wg.Wait()

	var all []int64
	var errors int64
	for w := 0; w < workers; w++ {
		all = append(all, lats[w]...)
		errors += errs[w]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := result{
		Concurrency: workers,
		DurationS:   d.Seconds(),
		Requests:    int64(len(all)),
		Errors:      errors,
		QPS:         float64(len(all)) / d.Seconds(),
	}
	if len(all) > 0 {
		res.P50us = all[len(all)/2]
		res.P99us = all[len(all)*99/100]
		res.Maxus = all[len(all)-1]
	}
	return res
}

// fire issues one request and fully drains the response so the
// connection is reused.
func fire(ctx context.Context, hc *http.Client, target, token string, s shot) error {
	var body *strings.Reader
	var req *http.Request
	var err error
	if s.body != nil {
		body = strings.NewReader(string(s.body))
		req, err = http.NewRequestWithContext(ctx, s.method, target+s.path, body)
	} else {
		req, err = http.NewRequestWithContext(ctx, s.method, target+s.path, nil)
	}
	if err != nil {
		return err
	}
	if s.body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if s.etag != "" {
		req.Header.Set("If-None-Match", s.etag)
	}
	if token != "" {
		req.Header.Set("X-P4P-Token", token)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	drain(resp)
	if resp.StatusCode != s.want {
		return fmt.Errorf("status %d, want %d", resp.StatusCode, s.want)
	}
	return nil
}

// drain discards and closes a response body so the keep-alive
// connection returns to the pool.
func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// fetchETag reads the current distances ETag for the revalidation
// scenario.
func fetchETag(ctx context.Context, hc *http.Client, target, token string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/p4p/v1/distances", nil)
	if err != nil {
		return "", err
	}
	if token != "" {
		req.Header.Set("X-P4P-Token", token)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return "", err
	}
	drain(resp)
	etag := resp.Header.Get("ETag")
	if etag == "" {
		return "", errors.New("portal sent no ETag on /p4p/v1/distances")
	}
	return etag, nil
}

func topologyByName(name string) (*topology.Graph, error) {
	switch strings.ToLower(name) {
	case "abilene":
		return topology.Abilene(), nil
	case "abilene-virtual":
		return topology.AbileneVirtualISPs(), nil
	case "isp-a", "ispa":
		return topology.ISPA(), nil
	case "isp-b", "ispb":
		return topology.ISPB(), nil
	case "isp-c", "ispc":
		return topology.ISPC(), nil
	default:
		return nil, fmt.Errorf("unknown topology %q (want abilene, abilene-virtual, isp-a, isp-b, isp-c)", name)
	}
}
