module p4p

go 1.22
