// Package p4p's root benchmark suite regenerates every table and figure
// of the paper's evaluation (one benchmark per artifact; see DESIGN.md
// for the index). Each benchmark runs its experiment and reports the
// headline values as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// prints the same quantities the paper's tables and figures do.
//
// Workload scale is controlled with -p4p.scale (default 0.25 keeps the
// full suite in CPU-minutes; 1.0 reproduces the paper's sizes), and
// -p4p.parallel bounds the worker pool fanning each experiment's
// independent simulation cells (0 = GOMAXPROCS, 1 = serial). Reports
// are byte-identical at any parallelism, so the setting only moves
// wall-clock time.
package p4p_test

import (
	"flag"
	"sort"
	"testing"

	"p4p/internal/experiments"
)

var (
	benchScale    = flag.Float64("p4p.scale", 0.25, "experiment workload scale in (0, 1]")
	benchParallel = flag.Int("p4p.parallel", 0, "worker pool size for independent simulation cells (0 = GOMAXPROCS, 1 = serial)")
)

func benchOptions() experiments.Options {
	return experiments.Options{Scale: *benchScale, Seed: 42, Parallelism: *benchParallel}
}

// reportValues attaches an experiment's headline numbers to the
// benchmark output, sorted for stable logs.
func reportValues(b *testing.B, rep *experiments.Report) {
	b.Helper()
	keys := make([]string, 0, len(rep.Values))
	for k := range rep.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.ReportMetric(rep.Values[k], k)
	}
}

func runExperiment(b *testing.B, fn func(experiments.Options) *experiments.Report) {
	b.Helper()
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = fn(benchOptions())
	}
	reportValues(b, rep)
}

// BenchmarkTable1Networks regenerates Table 1 (network inventory).
func BenchmarkTable1Networks(b *testing.B) {
	runExperiment(b, experiments.Table1Networks)
}

// BenchmarkFigure6BitTorrentInternet regenerates Figure 6: completion
// CDFs and protected-circuit traffic for native, localized, and P4P
// BitTorrent. Paper shape: P4P completes 10-20% faster than native;
// native carries >3x, localized >=1.69x the bottleneck traffic of P4P.
func BenchmarkFigure6BitTorrentInternet(b *testing.B) {
	runExperiment(b, experiments.Figure6BitTorrentInternet)
}

// BenchmarkFigure7SwarmSize regenerates Figure 7: the swarm-size sweep
// on Abilene. Paper shape: ~20% faster completion, ~4x lower bottleneck
// utilization for P4P; localized comparable completion, higher
// utilization than P4P.
//
// The cells fan across the experiment worker pool; the run reports
// pool-utilization (busy worker-seconds / (wall x workers)) and
// pool-speedup (busy worker-seconds / wall, i.e. the effective number
// of concurrently busy workers) so scripts/bench_json.sh can track how
// much the sharding actually buys on the benchmark host.
func BenchmarkFigure7SwarmSize(b *testing.B) {
	var rep *experiments.Report
	var ps *experiments.PoolStats
	for i := 0; i < b.N; i++ {
		opt := benchOptions()
		ps = &experiments.PoolStats{}
		opt.PoolStats = ps
		rep = experiments.Figure7SwarmSize(opt)
	}
	reportValues(b, rep)
	reportPoolStats(b, ps)
}

// BenchmarkFigure7SwarmSizeSerial runs the same sweep with the worker
// pool disabled (Parallelism: 1), regardless of -p4p.parallel. The
// wall-clock delta between this and BenchmarkFigure7SwarmSize is the
// parallel harness's speedup; the reported values are identical.
func BenchmarkFigure7SwarmSizeSerial(b *testing.B) {
	var rep *experiments.Report
	var ps *experiments.PoolStats
	for i := 0; i < b.N; i++ {
		opt := benchOptions()
		opt.Parallelism = 1
		ps = &experiments.PoolStats{}
		opt.PoolStats = ps
		rep = experiments.Figure7SwarmSize(opt)
	}
	reportValues(b, rep)
	reportPoolStats(b, ps)
}

// reportPoolStats attaches the worker-pool utilization of the last
// iteration's run as custom metrics.
func reportPoolStats(b *testing.B, ps *experiments.PoolStats) {
	b.Helper()
	if ps == nil || ps.Runs() == 0 {
		return
	}
	b.ReportMetric(ps.Utilization(), "pool-utilization")
	if wall := ps.WallSeconds(); wall > 0 {
		b.ReportMetric(ps.BusySeconds()/wall, "pool-speedup")
	}
}

// BenchmarkFigure8ISPA regenerates Figure 8: the sweep on ISP-A,
// normalized as the paper reports it. Paper shape: ~20% faster
// completion, ~2.5x lower bottleneck utilization.
func BenchmarkFigure8ISPA(b *testing.B) {
	runExperiment(b, experiments.Figure8ISPA)
}

// BenchmarkFigure9Liveswarms regenerates Figure 9: streaming backbone
// volume. Paper shape: ~60% backbone reduction at equal throughput.
func BenchmarkFigure9Liveswarms(b *testing.B) {
	runExperiment(b, experiments.Figure9Liveswarms)
}

// BenchmarkFigure10Interdomain regenerates Figure 10: interdomain
// charging volumes. Paper shape: native ~3x, localized ~2x the P4P
// charging volume on the tight circuit.
func BenchmarkFigure10Interdomain(b *testing.B) {
	runExperiment(b, experiments.Figure10Interdomain)
}

// BenchmarkFigure11SwarmStats regenerates Figure 11: field-test swarm
// sizes over eleven days (peak in the first 3 days, then decay).
func BenchmarkFigure11SwarmStats(b *testing.B) {
	runExperiment(b, experiments.Figure11SwarmStats)
}

// BenchmarkTable2FieldTestTraffic regenerates Table 2. Paper ratios
// (native:P4P): ext<->ext 0.99, ext->ISP-B 1.53, ISP-B->ext 1.70,
// ISP-B<->ISP-B 0.15.
func BenchmarkTable2FieldTestTraffic(b *testing.B) {
	runExperiment(b, experiments.Table2FieldTestTraffic)
}

// BenchmarkTable3FieldTestInternal regenerates Table 3. Paper:
// localization 6.27% -> 57.98%.
func BenchmarkTable3FieldTestInternal(b *testing.B) {
	runExperiment(b, experiments.Table3FieldTestInternal)
}

// BenchmarkFigure12aUnitBDP regenerates Figure 12a. Paper: unit BDP
// 5.5 -> 0.89.
func BenchmarkFigure12aUnitBDP(b *testing.B) {
	runExperiment(b, experiments.Figure12aUnitBDP)
}

// BenchmarkFigure12bCompletion regenerates Figure 12b. Paper: mean
// 9460 s -> 7312 s (23% better).
func BenchmarkFigure12bCompletion(b *testing.B) {
	runExperiment(b, experiments.Figure12bCompletion)
}

// BenchmarkFigure12cFTTP regenerates Figure 12c. Paper: FTTP mean
// 4164 s -> 2481 s (native 68% higher).
func BenchmarkFigure12cFTTP(b *testing.B) {
	runExperiment(b, experiments.Figure12cFTTP)
}

// BenchmarkXMetroHops covers the Section 1 claim: 5.5 metro-hops ->
// 0.89 without hurting completion.
func BenchmarkXMetroHops(b *testing.B) {
	runExperiment(b, experiments.MetroHopsClaim)
}

// BenchmarkXSuperGradient covers Proposition 1: the decomposed
// time-averaged MLU approaches the centralized LP optimum.
func BenchmarkXSuperGradient(b *testing.B) {
	runExperiment(b, experiments.SuperGradientConvergence)
}

// BenchmarkXChargingPrediction covers Section 6.1: the hybrid window
// tracks level shifts that break the pure sliding window.
func BenchmarkXChargingPrediction(b *testing.B) {
	runExperiment(b, experiments.ChargingPrediction)
}

// BenchmarkXSwarmTail covers Section 8: ~0.72% of 34,721 swarms exceed
// one hundred leechers.
func BenchmarkXSwarmTail(b *testing.B) {
	runExperiment(b, experiments.SwarmTailClaim)
}

// BenchmarkAblationBeta sweeps eq. (6)'s efficiency factor.
func BenchmarkAblationBeta(b *testing.B) {
	runExperiment(b, experiments.AblationBeta)
}

// BenchmarkAblationConcave compares gamma=1 with the concave transform.
func BenchmarkAblationConcave(b *testing.B) {
	runExperiment(b, experiments.AblationConcave)
}

// BenchmarkAblationAggregation compares per-client and per-PoP PIDs.
func BenchmarkAblationAggregation(b *testing.B) {
	runExperiment(b, experiments.AblationAggregation)
}
