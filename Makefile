GO ?= go

.PHONY: build test race vet p4pvet verify fuzz-smoke bench bench-json bench-sim-json bench-load-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Repo-specific static analysis (lockheld, respwrite, ctxflow,
# floatsentinel, sleeptest, spanend, allochot, goroleak, atomicmix).
# Part of the verify gate; also runnable standalone. -timing reports
# the load/analyze split so CI regressions in wall time are visible.
p4pvet:
	$(GO) run ./cmd/p4pvet -timing ./...

# Tier-1 verification gate (see ROADMAP.md).
verify:
	sh scripts/verify.sh

# Run each native fuzz target for ~10s against its checked-in seed
# corpus. Not part of verify; intended for CI and pre-release runs.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzFromWire$$' -fuzztime 10s ./internal/portal
	$(GO) test -run '^$$' -fuzz '^FuzzExpositionParse$$' -fuzztime 10s ./internal/telemetry
	$(GO) test -run '^$$' -fuzz '^FuzzTraceparentParse$$' -fuzztime 10s ./internal/trace
	$(GO) test -run '^$$' -fuzz '^FuzzIgnoreDirective$$' -fuzztime 10s ./internal/analysis

bench:
	$(GO) test -bench=. -benchmem .

# Portal request + view-recompute benchmarks, emitted as JSON at
# BENCH_portal.json for cross-commit comparison.
bench-json:
	sh scripts/bench_json.sh portal

# p2psim hot-path benchmarks plus the Figure 7 sweep (parallel and
# serial), emitted as JSON at BENCH_sim.json. Diff across commits with
# scripts/bench_diff.sh.
bench-sim-json:
	sh scripts/bench_json.sh sim

# Closed-loop HTTP load run (cmd/p4pload) against an in-process portal,
# emitted as JSON at BENCH_load.json: sustained QPS and latency
# quantiles per scenario. LOAD_DURATION/LOAD_WARMUP/LOAD_C tune the
# run shape.
bench-load-json:
	sh scripts/bench_json.sh load
