GO ?= go

.PHONY: build test race vet verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Tier-1 verification gate (see ROADMAP.md).
verify:
	sh scripts/verify.sh

bench:
	$(GO) test -bench=. -benchmem .
