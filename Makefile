GO ?= go

.PHONY: build test race vet verify bench bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Tier-1 verification gate (see ROADMAP.md).
verify:
	sh scripts/verify.sh

bench:
	$(GO) test -bench=. -benchmem .

# Portal request + view-recompute benchmarks, emitted as JSON at
# BENCH_portal.json for cross-commit comparison.
bench-json:
	sh scripts/bench_json.sh
