#!/bin/sh
# Run a benchmark suite and emit the results as JSON in the repo root,
# so runs can be diffed across commits (scripts/bench_diff.sh). Stdlib
# tooling only: go test -bench output parsed with awk.
#
# Usage: bench_json.sh [portal|sim|load]
#
#   portal (default)  portal request path, 304 revalidation, view
#                     recompute -> BENCH_portal.json
#   sim               p2psim hot-path benchmarks plus the Figure 7
#                     swarm-size sweep, parallel and serial
#                     -> BENCH_sim.json
#   load              cmd/p4pload closed-loop HTTP load run against an
#                     in-process portal -> BENCH_load.json (the tool
#                     writes its own JSON; no awk pass)
#
# BENCHTIME overrides the micro-benchmark -benchtime (default 1s);
# P4P_SCALE the sweep workload scale (default 0.25). For load mode,
# LOAD_DURATION/LOAD_WARMUP/LOAD_C override the run shape (defaults
# 5s/1s/8).
set -eu
cd "$(dirname "$0")/.."

MODE=${1:-portal}
case "$MODE" in
load)
	go run ./cmd/p4pload \
		-duration "${LOAD_DURATION:-5s}" \
		-warmup "${LOAD_WARMUP:-1s}" \
		-c "${LOAD_C:-8}" \
		-scenario all \
		-out BENCH_load.json
	echo ">> wrote BENCH_load.json"
	exit 0
	;;
portal)
	OUT=BENCH_portal.json
	RAW=$(go test -run '^$' -bench 'BenchmarkPortal|BenchmarkViewRecompute' \
		-benchmem -benchtime "${BENCHTIME:-1s}" ./internal/portal/)
	;;
sim)
	OUT=BENCH_sim.json
	# The sweep is a macro-benchmark: one iteration, fixed scale. Its
	# Serial variant pins Parallelism to 1; the delta between the two
	# wall-clock times is the parallel harness's speedup on this host.
	RAW=$(
		go test -run '^$' -bench 'BenchmarkSim' \
			-benchmem -benchtime "${BENCHTIME:-1s}" ./internal/p2psim/
		go test -run '^$' -bench 'BenchmarkFigure7SwarmSize(Serial)?$' \
			-benchmem -benchtime 1x -p4p.scale "${P4P_SCALE:-0.25}" .
	)
	;;
*)
	echo "usage: $0 [portal|sim|load]" >&2
	exit 2
	;;
esac

printf '%s\n' "$RAW"
printf '%s\n' "$RAW" | awk '
BEGIN { n = 0 }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    # BenchmarkName-8  123456  987 ns/op  64 B/op  2 allocs/op [extras]
    # Token-scan for the unit suffixes: experiment benchmarks append
    # ReportMetric extras, so fixed field positions would misparse.
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; b = 0; a = 0; ex = ""
    for (i = 3; i < NF; i++) {
        u = $(i+1)
        if (u == "ns/op")          ns = $i
        else if (u == "B/op")      b  = $i
        else if (u == "allocs/op") a  = $i
        else if (u ~ /^pool-/)     ex = ex sprintf(", \"%s\": %s", u, $i)
    }
    if (ns == "") next
    bench[n]  = name
    iters[n]  = $2
    nsop[n]   = ns
    bop[n]    = b
    allocs[n] = a
    extras[n] = ex
    n++
}
END {
    printf "{\n"
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) {
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s%s}%s\n", \
            bench[i], iters[i], nsop[i], bop[i], allocs[i], extras[i], (i < n-1 ? "," : "")
    }
    printf "  ]\n"
    printf "}\n"
}' >"$OUT"

echo ">> wrote $OUT"
