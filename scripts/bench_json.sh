#!/bin/sh
# Run the portal benchmarks (request path, 304 revalidation, view
# recompute) and emit the results as JSON at BENCH_portal.json in the
# repo root, so runs can be diffed across commits. Stdlib tooling only:
# go test -bench output parsed with awk.
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_portal.json
RAW=$(go test -run '^$' -bench 'BenchmarkPortal|BenchmarkViewRecompute' \
	-benchmem -benchtime "${BENCHTIME:-1s}" ./internal/portal/)

printf '%s\n' "$RAW"
printf '%s\n' "$RAW" | awk '
BEGIN { n = 0 }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    # BenchmarkName-8  123456  987 ns/op  64 B/op  2 allocs/op
    name = $1; sub(/-[0-9]+$/, "", name)
    bench[n]  = name
    iters[n]  = $2
    nsop[n]   = $3
    bop[n]    = $5
    allocs[n] = $7
    n++
}
END {
    printf "{\n"
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) {
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            bench[i], iters[i], nsop[i], bop[i], allocs[i], (i < n-1 ? "," : "")
    }
    printf "  ]\n"
    printf "}\n"
}' >"$OUT"

echo ">> wrote $OUT"
