#!/bin/sh
# Compare two benchmark JSON files written by scripts/bench_json.sh,
# matching benchmarks by name and printing the old/new values with
# percentage deltas. Stdlib tooling only (awk); negative deltas are
# improvements for every column.
#
# Usage: bench_diff.sh OLD.json NEW.json
#   e.g. git show HEAD~1:BENCH_sim.json >/tmp/old.json &&
#        scripts/bench_diff.sh /tmp/old.json BENCH_sim.json
set -eu

if [ $# -ne 2 ]; then
	echo "usage: $0 OLD.json NEW.json" >&2
	exit 2
fi

awk '
function field(line, key,    v) {
    v = line
    if (!sub(".*\"" key "\": ", "", v)) return ""
    sub(/[,}].*/, "", v)
    gsub(/"/, "", v)
    return v
}
function pct(old, new) {
    if (old + 0 == 0) return "n/a"
    return sprintf("%+.1f%%", 100 * (new - old) / old)
}
FNR == 1 { fileno++ }
/"name":/ {
    name = field($0, "name")
    if (name == "") next
    if (fileno == 1) {
        if (!(name in ons)) order[n++] = name
        ons[name] = field($0, "ns_per_op")
        ob[name]  = field($0, "bytes_per_op")
        oa[name]  = field($0, "allocs_per_op")
    } else {
        if (!(name in ons) && !(name in nns)) order[n++] = name
        nns[name] = field($0, "ns_per_op")
        nb[name]  = field($0, "bytes_per_op")
        na[name]  = field($0, "allocs_per_op")
    }
}
END {
    printf "%-40s %15s %15s %9s %9s %9s\n", \
        "benchmark", "old ns/op", "new ns/op", "ns", "B/op", "allocs"
    for (i = 0; i < n; i++) {
        name = order[i]
        if (!(name in ons)) {
            printf "%-40s %15s %15s   (only in new)\n", name, "-", nns[name]
            continue
        }
        if (!(name in nns)) {
            printf "%-40s %15s %15s   (only in old)\n", name, ons[name], "-"
            continue
        }
        printf "%-40s %15s %15s %9s %9s %9s\n", name, ons[name], nns[name], \
            pct(ons[name], nns[name]), pct(ob[name], nb[name]), pct(oa[name], na[name])
    }
}' "$1" "$2"
