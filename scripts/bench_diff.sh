#!/bin/sh
# Compare two benchmark JSON files written by scripts/bench_json.sh,
# matching benchmarks by name and printing the old/new values with
# percentage deltas. Stdlib tooling only (awk).
#
# Handles both formats: the micro-benchmark files (BENCH_portal.json,
# BENCH_sim.json; one object per line, ns/op + B/op + allocs/op —
# negative deltas are improvements) and the load-generator file
# (BENCH_load.json; indented objects, qps + p99_us — positive QPS
# deltas are improvements).
#
# Simulator regression gate: any BenchmarkSim* whose new ns/op exceeds
# the old by more than 10% is flagged and the script exits non-zero, so
# CI (or a pre-commit diff against the checked-in baseline) fails loud
# on hot-path regressions. Other benchmarks are reported but not gated:
# the experiment macro-benchmarks are one-shot runs with real variance.
#
# Usage: bench_diff.sh OLD.json NEW.json
#   e.g. git show HEAD~1:BENCH_sim.json >/tmp/old.json &&
#        scripts/bench_diff.sh /tmp/old.json BENCH_sim.json
set -eu

if [ $# -ne 2 ]; then
	echo "usage: $0 OLD.json NEW.json" >&2
	exit 2
fi

awk '
function field(line, key,    v) {
    v = line
    if (!sub(".*\"" key "\": ", "", v)) return ""
    sub(/[,}].*/, "", v)
    gsub(/"/, "", v)
    return v
}
function pct(old, new) {
    if (old + 0 == 0) return "n/a"
    return sprintf("%+.1f%%", 100 * (new - old) / old)
}
function remember(name) {
    if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
FNR == 1 { fileno++ }
/"name":/ {
    name = field($0, "name")
    if (name == "") next
    remember(name)
    cur = name
    # Micro-benchmark rows carry every field on the name line.
    if (field($0, "ns_per_op") != "") {
        if (fileno == 1) {
            ons[name] = field($0, "ns_per_op")
            ob[name]  = field($0, "bytes_per_op")
            oa[name]  = field($0, "allocs_per_op")
        } else {
            nns[name] = field($0, "ns_per_op")
            nb[name]  = field($0, "bytes_per_op")
            na[name]  = field($0, "allocs_per_op")
        }
    }
}
/"qps":/    { if (cur != "") { if (fileno == 1) oq[cur] = field($0, "qps");    else nq[cur] = field($0, "qps") } }
/"p99_us":/ { if (cur != "") { if (fileno == 1) op[cur] = field($0, "p99_us"); else np[cur] = field($0, "p99_us") } }
END {
    header = 0
    for (i = 0; i < n; i++) {
        name = order[i]
        if (!(name in ons) && !(name in nns)) continue
        if (!header) {
            printf "%-40s %15s %15s %9s %9s %9s\n", \
                "benchmark", "old ns/op", "new ns/op", "ns", "B/op", "allocs"
            header = 1
        }
        if (!(name in ons)) {
            printf "%-40s %15s %15s   (only in new)\n", name, "-", nns[name]
            continue
        }
        if (!(name in nns)) {
            printf "%-40s %15s %15s   (only in old)\n", name, ons[name], "-"
            continue
        }
        printf "%-40s %15s %15s %9s %9s %9s\n", name, ons[name], nns[name], \
            pct(ons[name], nns[name]), pct(ob[name], nb[name]), pct(oa[name], na[name])
        if (name ~ /^BenchmarkSim/ && ons[name] + 0 > 0 && \
            nns[name] + 0 > ons[name] * 1.10) {
            printf "REGRESSION: %s ns/op %s -> %s (%s > +10%% gate)\n", \
                name, ons[name], nns[name], pct(ons[name], nns[name]) > "/dev/stderr"
            bad = 1
        }
    }
    header = 0
    for (i = 0; i < n; i++) {
        name = order[i]
        if (!(name in oq) && !(name in nq)) continue
        if (!header) {
            printf "%-40s %12s %12s %9s %12s %12s %9s\n", \
                "scenario", "old qps", "new qps", "qps", "old p99us", "new p99us", "p99"
            header = 1
        }
        if (!(name in oq)) {
            printf "%-40s %12s %12s   (only in new)\n", name, "-", nq[name]
            continue
        }
        if (!(name in nq)) {
            printf "%-40s %12s %12s   (only in old)\n", name, oq[name], "-"
            continue
        }
        printf "%-40s %12s %12s %9s %12s %12s %9s\n", name, oq[name], nq[name], \
            pct(oq[name], nq[name]), op[name], np[name], pct(op[name], np[name])
    }
    exit bad
}' "$1" "$2"
