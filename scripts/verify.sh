#!/bin/sh
# Tier-1 verification gate: vet, build, and race-test the whole module.
# Run from anywhere; operates on the repo root.
set -eu
cd "$(dirname "$0")/.."

echo '>> gofmt -l'
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$UNFORMATTED" >&2
	exit 1
fi
echo '>> go vet ./...'
go vet ./...
echo '>> go build ./...'
go build ./...
echo '>> go test -race ./...'
go test -race ./...
echo '>> p4pvet ./...'
go run ./cmd/p4pvet -timing ./...
echo 'verify: OK'
