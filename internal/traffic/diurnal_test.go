package traffic

import (
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(1e9)
	a := Generate(cfg, 288)
	b := Generate(cfg, 288)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at interval %d", i)
		}
	}
}

func TestGenerateLengthAndPositivity(t *testing.T) {
	cfg := DefaultConfig(1e9)
	s := Generate(cfg, 1000)
	if len(s) != 1000 {
		t.Fatalf("len = %d, want 1000", len(s))
	}
	for i, v := range s {
		if v < 0 {
			t.Fatalf("negative volume at %d: %v", i, v)
		}
	}
}

func TestPeakToTroughRatio(t *testing.T) {
	cfg := DefaultConfig(1e9)
	cfg.NoiseFrac = 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 288; i++ {
		r := RateAt(cfg, float64(i)*cfg.IntervalSec)
		lo = math.Min(lo, r)
		hi = math.Max(hi, r)
	}
	ratio := hi / lo
	if math.Abs(ratio-cfg.PeakToTrough) > 0.05 {
		t.Fatalf("peak/trough = %v, want ~%v", ratio, cfg.PeakToTrough)
	}
}

func TestPeakAtConfiguredHour(t *testing.T) {
	cfg := DefaultConfig(1e9)
	cfg.NoiseFrac = 0
	atPeak := RateAt(cfg, cfg.PeakHour*3600)
	if math.Abs(atPeak-PeakRate(cfg)) > 1e-6*atPeak {
		t.Fatalf("rate at peak hour %v != PeakRate %v", atPeak, PeakRate(cfg))
	}
	offPeak := RateAt(cfg, math.Mod(cfg.PeakHour+12, 24)*3600)
	if offPeak >= atPeak {
		t.Fatal("rate 12h off peak should be lower than peak")
	}
}

func TestMeanApproximatesConfig(t *testing.T) {
	cfg := DefaultConfig(2e9)
	cfg.NoiseFrac = 0
	s := Generate(cfg, 288) // exactly one day
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	meanRate := sum * 8 / (288 * cfg.IntervalSec)
	if math.Abs(meanRate-cfg.MeanBps) > 0.02*cfg.MeanBps {
		t.Fatalf("mean rate = %v, want ~%v", meanRate, cfg.MeanBps)
	}
}

func TestGeneratePanics(t *testing.T) {
	for _, cfg := range []DiurnalConfig{
		{IntervalSec: 0, MeanBps: 1, PeakToTrough: 2},
		{IntervalSec: 300, MeanBps: 1, PeakToTrough: 0.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			Generate(cfg, 10)
		}()
	}
}

func TestScale(t *testing.T) {
	in := []float64{1, 2, 3}
	out := Scale(in, 2)
	if out[0] != 2 || out[1] != 4 || out[2] != 6 {
		t.Fatalf("Scale = %v", out)
	}
	if in[0] != 1 {
		t.Fatal("Scale mutated input")
	}
}
