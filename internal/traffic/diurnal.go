// Package traffic generates synthetic background-traffic series with
// diurnal structure. The paper drives its interdomain experiments from
// December 2007 Abilene NOC traffic traces and uses per-link background
// volumes b_e in its traffic-engineering objectives; those traces are not
// available, so this package produces deterministic series with the same
// gross statistics (daily peak/trough cycle plus noise) to exercise the
// same estimation and optimization code paths.
package traffic

import (
	"math"
	"math/rand"
)

// DiurnalConfig parameterizes a synthetic diurnal traffic series.
type DiurnalConfig struct {
	// IntervalSec is the sampling interval; percentile billing uses 300 s
	// (5 minutes).
	IntervalSec float64
	// MeanBps is the average offered traffic rate over a full day.
	MeanBps float64
	// PeakToTrough is the ratio of the daily maximum rate to the daily
	// minimum rate; must be >= 1.
	PeakToTrough float64
	// PeakHour is the local hour-of-day [0, 24) at which traffic peaks.
	PeakHour float64
	// NoiseFrac adds +-NoiseFrac relative uniform noise per interval.
	NoiseFrac float64
	// Seed makes the noise deterministic.
	Seed int64
}

// DefaultConfig is a typical backbone profile: 5-minute intervals, a 3:1
// daily swing peaking at 20:00, and 10% noise.
func DefaultConfig(meanBps float64) DiurnalConfig {
	return DiurnalConfig{
		IntervalSec:  300,
		MeanBps:      meanBps,
		PeakToTrough: 3,
		PeakHour:     20,
		NoiseFrac:    0.10,
		Seed:         1,
	}
}

// Generate produces `intervals` consecutive volumes in bytes per
// interval, starting at midnight of day zero.
func Generate(cfg DiurnalConfig, intervals int) []float64 {
	if cfg.IntervalSec <= 0 {
		panic("traffic: IntervalSec must be positive")
	}
	if cfg.PeakToTrough < 1 {
		panic("traffic: PeakToTrough must be >= 1")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]float64, intervals)
	for i := range out {
		tSec := float64(i) * cfg.IntervalSec
		rate := RateAt(cfg, tSec)
		if cfg.NoiseFrac > 0 {
			rate *= 1 + cfg.NoiseFrac*(2*rng.Float64()-1)
		}
		if rate < 0 {
			rate = 0
		}
		out[i] = rate * cfg.IntervalSec / 8 // bits/sec over interval -> bytes
	}
	return out
}

// RateAt returns the noiseless instantaneous rate (bits per second) at
// time tSec since midnight of day zero. The daily cycle is sinusoidal:
// rate(t) = mean * (1 + a*cos(2pi*(h - peak)/24)) with the amplitude a
// chosen so that max/min equals PeakToTrough.
func RateAt(cfg DiurnalConfig, tSec float64) float64 {
	r := cfg.PeakToTrough
	a := (r - 1) / (r + 1)
	hour := math.Mod(tSec/3600, 24)
	return cfg.MeanBps * (1 + a*math.Cos(2*math.Pi*(hour-cfg.PeakHour)/24))
}

// PeakRate returns the daily maximum of the noiseless rate.
func PeakRate(cfg DiurnalConfig) float64 {
	r := cfg.PeakToTrough
	a := (r - 1) / (r + 1)
	return cfg.MeanBps * (1 + a)
}

// Scale returns a copy of the series multiplied by f.
func Scale(series []float64, f float64) []float64 {
	out := make([]float64, len(series))
	for i, v := range series {
		out[i] = v * f
	}
	return out
}
