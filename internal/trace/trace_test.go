package trace

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"
)

// fakeClock is a step-on-read clock so span durations are deterministic
// without wall-clock sleeps.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{now: time.Unix(1700000000, 0), step: step}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

// newTestTracer builds a tracer with a deterministic clock and a
// counting (never-zero) ID source, recording into c.
func newTestTracer(c *Collector, step time.Duration) *Tracer {
	tr := NewTracer(c)
	clk := newFakeClock(step)
	tr.nowFn = clk.Now
	var ctr uint64
	var mu sync.Mutex
	tr.randFn = func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		ctr++
		return ctr
	}
	return tr
}

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	s.End()
	s.SetAttr("k", "v")
	s.SetAttrInt("n", 7)
	s.RecordError(errors.New("boom"))
	if s.Recording() {
		t.Error("nil span claims to be recording")
	}
	if sc := s.Context(); sc.IsValid() {
		t.Error("nil span has valid context")
	}
	ctx := context.Background()
	if got := ContextWithSpan(ctx, nil); got != ctx {
		t.Error("ContextWithSpan(nil) changed the context")
	}
	if FromContext(ctx) != nil {
		t.Error("FromContext on bare context not nil")
	}
	ctx2, child := StartSpan(ctx, "orphan")
	if child != nil || ctx2 != ctx {
		t.Error("StartSpan without active span should be a no-op")
	}
	h := http.Header{}
	Inject(ctx, h)
	if len(h) != 0 {
		t.Error("Inject without active span wrote headers")
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	ctx2, s := tr.StartRoot(ctx, "root")
	if s != nil || ctx2 != ctx {
		t.Error("nil tracer StartRoot not a no-op")
	}
	ctx2, s = tr.StartServer(ctx, "srv", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if s != nil || ctx2 != ctx {
		t.Error("nil tracer StartServer not a no-op")
	}
}

func TestRootAndChildSpans(t *testing.T) {
	c := NewCollector(8, 0, 1) // slow threshold 0: keep everything
	tr := newTestTracer(c, time.Millisecond)

	ctx, root := tr.StartRoot(context.Background(), "root")
	if root == nil {
		t.Fatal("head-sampled root is nil")
	}
	if FromContext(ctx) != root {
		t.Fatal("context does not carry the root span")
	}
	cctx, child := StartSpan(ctx, "child")
	if child == nil {
		t.Fatal("child span is nil")
	}
	if child.Context().TraceID != root.Context().TraceID {
		t.Error("child has a different trace ID")
	}
	if child.Context().SpanID == root.Context().SpanID {
		t.Error("child reused the root span ID")
	}
	if FromContext(cctx) != child {
		t.Error("child context does not carry the child span")
	}
	child.SetAttr("kind", "test")
	child.SetAttrInt("n", 42)
	child.End()
	root.End()

	snap := c.Snapshot()
	if len(snap.Traces) != 1 {
		t.Fatalf("kept %d traces, want 1", len(snap.Traces))
	}
	spans := snap.Traces[0].Spans
	if len(spans) != 2 {
		t.Fatalf("trace has %d spans, want 2", len(spans))
	}
	if spans[0].Name != "root" || spans[1].Name != "child" {
		t.Errorf("span order/names = %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].ParentSpanID != "" {
		t.Errorf("root has parent %q", spans[0].ParentSpanID)
	}
	if spans[1].ParentSpanID != spans[0].SpanID {
		t.Errorf("child parent %q != root span %q", spans[1].ParentSpanID, spans[0].SpanID)
	}
	if spans[1].DurationUS <= 0 {
		t.Errorf("child duration %dus, want > 0", spans[1].DurationUS)
	}
	wantAttrs := []Attr{{Key: "kind", Value: "test"}, {Key: "n", Value: "42"}}
	if len(spans[1].Attrs) != 2 || spans[1].Attrs[0] != wantAttrs[0] || spans[1].Attrs[1] != wantAttrs[1] {
		t.Errorf("child attrs = %+v, want %+v", spans[1].Attrs, wantAttrs)
	}
}

func TestEndIdempotent(t *testing.T) {
	c := NewCollector(8, 0, 1)
	tr := newTestTracer(c, time.Millisecond)
	_, root := tr.StartRoot(context.Background(), "root")
	root.End()
	root.End() // second End must not re-offer the trace
	if snap := c.Snapshot(); snap.Kept != 1 {
		t.Fatalf("kept %d, want 1 after double End", snap.Kept)
	}
}

func TestStartServerContinuesSampledTrace(t *testing.T) {
	c := NewCollector(8, 0, 1)
	tr := newTestTracer(c, time.Millisecond)

	const inbound = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	ctx, s := tr.StartServer(context.Background(), "srv", inbound)
	if s == nil {
		t.Fatal("sampled inbound traceparent produced nil span")
	}
	if got := s.Context().TraceID.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("server span trace ID %q, want the caller's", got)
	}
	if got := s.Context().SpanID.String(); got == "00f067aa0ba902b7" {
		t.Error("server span reused the caller's span ID")
	}
	// The outbound header carries the same trace, new span, sampled.
	h := http.Header{}
	Inject(ctx, h)
	sc, ok := ParseTraceparent(h.Get("Traceparent"))
	if !ok || sc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" || !sc.Sampled {
		t.Errorf("injected header %q does not continue the trace", h.Get("Traceparent"))
	}
	s.End()
	snap := c.Snapshot()
	if len(snap.Traces) != 1 || snap.Traces[0].Spans[0].ParentSpanID != "00f067aa0ba902b7" {
		t.Fatalf("server span not parented to remote caller: %+v", snap.Traces)
	}
}

func TestStartServerHonorsUnsampled(t *testing.T) {
	c := NewCollector(8, 0, 1)
	tr := newTestTracer(c, time.Millisecond)
	const inbound = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"
	ctx, s := tr.StartServer(context.Background(), "srv", inbound)
	if s != nil {
		t.Fatal("unsampled inbound traceparent produced a span")
	}
	if FromContext(ctx) != nil {
		t.Fatal("unsampled request got an active span in context")
	}
}

func TestStartServerInvalidHeaderStartsFresh(t *testing.T) {
	c := NewCollector(8, 0, 1)
	tr := newTestTracer(c, time.Millisecond)
	_, s := tr.StartServer(context.Background(), "srv", "garbage")
	if s == nil {
		t.Fatal("invalid header should start a fresh head-sampled trace")
	}
	if s.Context().TraceID.String() == "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Error("fresh trace inherited garbage trace ID")
	}
	s.End()
	if snap := c.Snapshot(); len(snap.Traces) != 1 {
		t.Fatalf("fresh trace not kept: %+v", snap)
	}
}

func TestHeadSamplingZeroRate(t *testing.T) {
	c := NewCollector(8, 0, 1)
	tr := newTestTracer(c, time.Millisecond)
	tr.SampleRate = 0
	_, s := tr.StartRoot(context.Background(), "root")
	if s != nil {
		t.Fatal("SampleRate 0 still produced a span")
	}
	_, s = tr.StartServer(context.Background(), "srv", "")
	if s != nil {
		t.Fatal("SampleRate 0 StartServer without header still produced a span")
	}
	// Inbound sampled flag overrides head sampling.
	_, s = tr.StartServer(context.Background(), "srv", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if s == nil {
		t.Fatal("inbound sampled trace dropped by head sampler")
	}
}

func TestRecordErrorAlwaysKept(t *testing.T) {
	// Slow threshold far above fake-clock durations, keep rate 0: only
	// the error rule can keep a trace.
	c := NewCollector(8, time.Hour, 0)
	tr := newTestTracer(c, time.Millisecond)

	_, ok := tr.StartRoot(context.Background(), "fine")
	ok.End()

	ctx, bad := tr.StartRoot(context.Background(), "bad")
	_, child := StartSpan(ctx, "inner")
	child.RecordError(errors.New("recompute exploded"))
	child.End()
	bad.End()

	snap := c.Snapshot()
	if snap.Kept != 1 || snap.SampledOut != 1 {
		t.Fatalf("kept=%d sampledOut=%d, want 1/1", snap.Kept, snap.SampledOut)
	}
	if len(snap.Traces) != 1 || snap.Traces[0].Spans[0].Name != "bad" {
		t.Fatalf("wrong trace kept: %+v", snap.Traces)
	}
	if snap.Traces[0].Spans[1].Error != "recompute exploded" {
		t.Errorf("error message = %q", snap.Traces[0].Spans[1].Error)
	}
}

func TestSlowTraceAlwaysKept(t *testing.T) {
	// Each clock read advances 10ms; the root span spans several reads,
	// so a 5ms threshold catches it even with keep rate 0.
	c := NewCollector(8, 5*time.Millisecond, 0)
	tr := newTestTracer(c, 10*time.Millisecond)
	_, root := tr.StartRoot(context.Background(), "slow")
	root.End()
	if snap := c.Snapshot(); snap.Kept != 1 {
		t.Fatalf("slow trace not kept: %+v", snap)
	}
}

func TestConcurrentSpans(t *testing.T) {
	c := NewCollector(64, 0, 1)
	tr := newTestTracer(c, time.Microsecond)
	ctx, root := tr.StartRoot(context.Background(), "root")

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_, s := StartSpan(ctx, "worker")
				s.SetAttrInt("j", j)
				s.End()
			}
		}()
	}
	// Snapshot concurrently with span creation to exercise the locks.
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for i := 0; i < 20; i++ {
			c.Snapshot()
		}
	}()
	wg.Wait()
	snapWG.Wait()
	root.End()

	snap := c.Snapshot()
	if len(snap.Traces) != 1 {
		t.Fatalf("kept %d traces, want 1", len(snap.Traces))
	}
	if got := len(snap.Traces[0].Spans); got != 1+8*50 {
		t.Fatalf("trace has %d spans, want %d", got, 1+8*50)
	}
}
