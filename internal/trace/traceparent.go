package trace

// W3C Trace Context (traceparent) wire format, version 00:
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	^^ ^^^^^^^^^^^^^^^^ trace-id ^^^^^^ ^^ parent-id ^^^^ ^^ flags
//
// Parsing is allocation-free: the serving path reads the header on
// every request, and an unsampled request must not pay for tracing
// (see DESIGN.md §11). Hostile input never panics — FuzzTraceparentParse
// pins that — and an invalid header simply fails to parse, which makes
// the receiver start a fresh trace instead of trusting garbage.

// TraceID is the 16-byte W3C trace identifier shared by every span of
// one distributed trace, across processes.
type TraceID [16]byte

// SpanID is the 8-byte identifier of one span.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

const hexDigits = "0123456789abcdef"

func appendHex(dst []byte, src []byte) []byte {
	for _, b := range src {
		dst = append(dst, hexDigits[b>>4], hexDigits[b&0x0f])
	}
	return dst
}

// String renders the trace ID as 32 lowercase hex digits.
func (t TraceID) String() string {
	var b [32]byte
	return string(appendHex(b[:0], t[:]))
}

// String renders the span ID as 16 lowercase hex digits.
func (s SpanID) String() string {
	var b [16]byte
	return string(appendHex(b[:0], s[:]))
}

// SpanContext is the propagated slice of a trace: which trace a request
// belongs to, which span caused it, and whether the caller sampled it.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// IsValid reports whether both IDs are non-zero, as the W3C spec
// requires of a usable traceparent.
func (sc SpanContext) IsValid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// traceparentLen is the exact length of a version-00 traceparent value.
const traceparentLen = 2 + 1 + 32 + 1 + 16 + 1 + 2

// Traceparent renders sc as a version-00 traceparent header value.
func (sc SpanContext) Traceparent() string {
	b := make([]byte, 0, traceparentLen)
	b = append(b, '0', '0', '-')
	b = appendHex(b, sc.TraceID[:])
	b = append(b, '-')
	b = appendHex(b, sc.SpanID[:])
	b = append(b, '-', '0')
	if sc.Sampled {
		b = append(b, '1')
	} else {
		b = append(b, '0')
	}
	return string(b)
}

// hexNibble decodes one lowercase-or-uppercase hex digit; ok is false
// for anything else.
func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// parseHex decodes len(dst)*2 hex digits from s into dst.
func parseHex(dst []byte, s string) bool {
	if len(s) != len(dst)*2 {
		return false
	}
	for i := range dst {
		hi, ok1 := hexNibble(s[2*i])
		lo, ok2 := hexNibble(s[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

// ParseTraceparent parses a W3C traceparent header value without
// allocating. It returns ok=false — never panics — on malformed input:
// wrong field lengths or separators, non-hex digits, the invalid
// version 0xff, or all-zero trace/span IDs. Per the spec, versions
// above 00 are accepted when the version-00 prefix parses and any extra
// content is separated by a dash; callers treat a failed parse as "no
// inbound trace" and start a fresh one.
func ParseTraceparent(s string) (SpanContext, bool) {
	var sc SpanContext
	if len(s) < traceparentLen {
		return sc, false
	}
	vhi, ok1 := hexNibble(s[0])
	vlo, ok2 := hexNibble(s[1])
	if !ok1 || !ok2 {
		return sc, false
	}
	version := vhi<<4 | vlo
	if version == 0xff {
		return sc, false
	}
	if version == 0 {
		if len(s) != traceparentLen {
			return sc, false
		}
	} else if len(s) > traceparentLen && s[traceparentLen] != '-' {
		return sc, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, false
	}
	if !parseHex(sc.TraceID[:], s[3:35]) {
		return sc, false
	}
	if !parseHex(sc.SpanID[:], s[36:52]) {
		return sc, false
	}
	fhi, ok1 := hexNibble(s[53])
	flo, ok2 := hexNibble(s[54])
	if !ok1 || !ok2 {
		return sc, false
	}
	if !sc.IsValid() {
		return sc, false
	}
	sc.Sampled = (fhi<<4|flo)&0x01 != 0
	return sc, true
}
