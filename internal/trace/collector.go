package trace

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// WireSpan is the JSON shape of one span in /debug/traces output.
type WireSpan struct {
	SpanID        string `json:"span_id"`
	ParentSpanID  string `json:"parent_span_id,omitempty"`
	Name          string `json:"name"`
	StartUnixNano int64  `json:"start_unix_nano"`
	DurationUS    int64  `json:"duration_us"`
	Error         string `json:"error,omitempty"`
	Attrs         []Attr `json:"attrs,omitempty"`
}

// WireTrace is the JSON shape of one kept trace: every local span of
// one trace ID, in start order.
type WireTrace struct {
	TraceID string     `json:"trace_id"`
	Spans   []WireSpan `json:"spans"`
}

// WireSnapshot is the full /debug/traces payload.
type WireSnapshot struct {
	Capacity        int         `json:"capacity"`
	Kept            uint64      `json:"kept"`
	SampledOut      uint64      `json:"sampled_out"`
	SlowThresholdUS int64       `json:"slow_threshold_us"`
	KeepRate        float64     `json:"keep_rate"`
	Traces          []WireTrace `json:"traces"`
}

// Collector keeps completed traces in a fixed-size ring, deciding at
// trace end (tail sampling) whether each one is worth a slot: traces
// that errored or whose root exceeded SlowThreshold are always kept,
// the rest are kept with probability KeepRate. The ring overwrites its
// oldest entry when full, so /debug/traces always shows the most
// recent interesting traffic at bounded memory.
type Collector struct {
	// SlowThreshold is the root-span duration at or above which a trace
	// is always kept. Zero keeps everything on the slow rule alone.
	SlowThreshold time.Duration
	// KeepRate in [0, 1] is the probability a fast, error-free trace is
	// kept anyway, so /debug/traces shows baseline traffic too.
	KeepRate float64

	// randFn is injectable for deterministic tail-sampling tests; nil
	// uses the owning tracer's source via the caller's draw.
	randFn func() uint64

	mu         sync.Mutex
	ring       []*traceData
	next       int
	kept       uint64
	sampledOut uint64
}

// NewCollector builds a collector holding up to capacity traces.
// Capacity is clamped to at least 1.
func NewCollector(capacity int, slow time.Duration, keepRate float64) *Collector {
	if capacity < 1 {
		capacity = 1
	}
	return &Collector{
		SlowThreshold: slow,
		KeepRate:      keepRate,
		ring:          make([]*traceData, 0, capacity),
	}
}

func (c *Collector) keepAnyway() bool {
	if c.KeepRate >= 1 {
		return true
	}
	if c.KeepRate <= 0 {
		return false
	}
	var v uint64
	if c.randFn != nil {
		v = c.randFn()
	} else {
		v = globalRand64()
	}
	const den = 1 << 53
	return float64(v%den)/den < c.KeepRate
}

// offer is called once per trace, when its local root span ends. The
// tail-sampling decision happens here, with the whole trace in hand.
func (c *Collector) offer(td *traceData, rootDur time.Duration, hasErr bool) {
	keep := hasErr || rootDur >= c.SlowThreshold || c.keepAnyway()
	c.mu.Lock()
	if !keep {
		c.sampledOut++
		c.mu.Unlock()
		return
	}
	c.kept++
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, td)
	} else {
		c.ring[c.next] = td
		c.next = (c.next + 1) % cap(c.ring)
	}
	c.mu.Unlock()
}

// Snapshot returns the kept traces, oldest first, plus counters. The
// wire structs are built from plain copies taken under the locks;
// callers marshal outside any lock.
func (c *Collector) Snapshot() WireSnapshot {
	c.mu.Lock()
	snap := WireSnapshot{
		Capacity:        cap(c.ring),
		Kept:            c.kept,
		SampledOut:      c.sampledOut,
		SlowThresholdUS: c.SlowThreshold.Microseconds(),
		KeepRate:        c.KeepRate,
	}
	tds := make([]*traceData, 0, len(c.ring))
	if len(c.ring) < cap(c.ring) {
		tds = append(tds, c.ring...)
	} else {
		tds = append(tds, c.ring[c.next:]...)
		tds = append(tds, c.ring[:c.next]...)
	}
	c.mu.Unlock()

	snap.Traces = make([]WireTrace, 0, len(tds))
	for _, td := range tds {
		td.mu.Lock()
		wt := WireTrace{Spans: make([]WireSpan, 0, len(td.spans))}
		for _, s := range td.spans {
			if len(wt.Spans) == 0 {
				wt.TraceID = s.sc.TraceID.String()
			}
			ws := WireSpan{
				SpanID:        s.sc.SpanID.String(),
				Name:          s.name,
				StartUnixNano: s.start.UnixNano(),
				DurationUS:    s.dur.Microseconds(),
				Error:         s.err,
			}
			if !s.parent.IsZero() {
				ws.ParentSpanID = s.parent.String()
			}
			if len(s.attrs) > 0 {
				ws.Attrs = append([]Attr(nil), s.attrs...)
			}
			wt.Spans = append(wt.Spans, ws)
		}
		td.mu.Unlock()
		snap.Traces = append(snap.Traces, wt)
	}
	return snap
}

// Handler serves the snapshot as JSON — marshal first, then one Write,
// so an encode failure can still become a clean 500.
func (c *Collector) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := json.Marshal(c.Snapshot())
		if err != nil {
			http.Error(w, `{"error":"trace encode failed"}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	})
}
