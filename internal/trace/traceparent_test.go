package trace

import (
	"strings"
	"testing"
)

func TestParseTraceparentValid(t *testing.T) {
	sc, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok {
		t.Fatal("valid traceparent rejected")
	}
	if got := sc.TraceID.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace ID = %q", got)
	}
	if got := sc.SpanID.String(); got != "00f067aa0ba902b7" {
		t.Errorf("span ID = %q", got)
	}
	if !sc.Sampled {
		t.Error("sampled flag not set")
	}
}

func TestParseTraceparentUnsampled(t *testing.T) {
	sc, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	if !ok || sc.Sampled {
		t.Fatalf("ok=%v sampled=%v, want ok unsampled", ok, sc.Sampled)
	}
	// Only bit 0 is the sampled flag; 0x02 alone is unsampled.
	sc, ok = ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-02")
	if !ok || sc.Sampled {
		t.Fatalf("flags 02: ok=%v sampled=%v, want ok unsampled", ok, sc.Sampled)
	}
}

func TestParseTraceparentUppercaseHex(t *testing.T) {
	sc, ok := ParseTraceparent("00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01")
	if !ok {
		t.Fatal("uppercase hex rejected")
	}
	if got := sc.TraceID.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace ID = %q", got)
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// Versions above 00 are accepted when the base layout parses, with
	// or without dash-separated extra content.
	for _, v := range []string{
		"cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra-stuff",
	} {
		if _, ok := ParseTraceparent(v); !ok {
			t.Errorf("future version rejected: %q", v)
		}
	}
	// Version 00 must be exactly 55 bytes; extra content is invalid.
	if _, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x"); ok {
		t.Error("version 00 with trailer accepted")
	}
	// Future version with extra content not dash-separated is invalid.
	if _, ok := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x"); ok {
		t.Error("future version with undelimited trailer accepted")
	}
}

func TestParseTraceparentInvalid(t *testing.T) {
	cases := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // missing flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version ff forbidden
		"0g-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // non-hex version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span ID
		"00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01", // non-hex trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902bg-01", // non-hex span ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g", // non-hex flags
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // wrong separator
		"00-4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7-01", // wrong separator
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7_01", // wrong separator
		strings.Repeat("0", traceparentLen),                       // no separators at all
	}
	for _, v := range cases {
		if sc, ok := ParseTraceparent(v); ok {
			t.Errorf("accepted invalid %q -> %+v", v, sc)
		}
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	orig := SpanContext{
		TraceID: TraceID{0x4b, 0xf9, 0x2f, 0x35, 0x77, 0xb3, 0x4d, 0xa6, 0xa3, 0xce, 0x92, 0x9d, 0x0e, 0x0e, 0x47, 0x36},
		SpanID:  SpanID{0x00, 0xf0, 0x67, 0xaa, 0x0b, 0xa9, 0x02, 0xb7},
		Sampled: true,
	}
	rendered := orig.Traceparent()
	if len(rendered) != traceparentLen {
		t.Fatalf("rendered length %d, want %d", len(rendered), traceparentLen)
	}
	back, ok := ParseTraceparent(rendered)
	if !ok || back != orig {
		t.Fatalf("round trip: ok=%v got %+v want %+v", ok, back, orig)
	}

	orig.Sampled = false
	back, ok = ParseTraceparent(orig.Traceparent())
	if !ok || back != orig {
		t.Fatalf("unsampled round trip: ok=%v got %+v want %+v", ok, back, orig)
	}
}

func TestParseTraceparentNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	const v = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	allocs := testing.AllocsPerRun(500, func() {
		if _, ok := ParseTraceparent(v); !ok {
			t.Fatal("parse failed")
		}
	})
	if allocs != 0 {
		t.Errorf("ParseTraceparent allocates %.1f/op, want 0", allocs)
	}
}
