//go:build race

package trace

// raceEnabled reports whether the race detector is compiled in; the
// allocation-count assertions skip under -race because instrumentation
// inflates per-op allocations.
const raceEnabled = true
