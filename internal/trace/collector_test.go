package trace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestRingOverwritesOldest(t *testing.T) {
	c := NewCollector(3, 0, 1)
	tr := newTestTracer(c, time.Millisecond)
	for i := 0; i < 5; i++ {
		_, s := tr.StartRoot(context.Background(), "r")
		s.SetAttrInt("i", i)
		s.End()
	}
	snap := c.Snapshot()
	if snap.Kept != 5 {
		t.Fatalf("kept counter %d, want 5", snap.Kept)
	}
	if len(snap.Traces) != 3 {
		t.Fatalf("ring holds %d traces, want capacity 3", len(snap.Traces))
	}
	// Oldest first: traces 2, 3, 4 survive.
	for idx, want := range []string{"2", "3", "4"} {
		got := snap.Traces[idx].Spans[0].Attrs[0].Value
		if got != want {
			t.Errorf("ring[%d] is trace i=%s, want %s", idx, got, want)
		}
	}
}

func TestKeepRateZeroDropsFastCleanTraces(t *testing.T) {
	c := NewCollector(8, time.Hour, 0)
	tr := newTestTracer(c, time.Millisecond)
	for i := 0; i < 4; i++ {
		_, s := tr.StartRoot(context.Background(), "r")
		s.End()
	}
	snap := c.Snapshot()
	if snap.Kept != 0 || snap.SampledOut != 4 {
		t.Fatalf("kept=%d sampledOut=%d, want 0/4", snap.Kept, snap.SampledOut)
	}
}

func TestKeepRateDeterministic(t *testing.T) {
	c := NewCollector(8, time.Hour, 0.5)
	// Alternate draws below/above the 0.5 cutoff: (1<<52)% of 1<<53 is
	// exactly 0.5 (dropped, not <), while 0 keeps.
	draws := []uint64{0, 1 << 52, 0, 1 << 52}
	i := 0
	c.randFn = func() uint64 { v := draws[i%len(draws)]; i++; return v }
	tr := newTestTracer(c, time.Millisecond)
	for j := 0; j < 4; j++ {
		_, s := tr.StartRoot(context.Background(), "r")
		s.End()
	}
	snap := c.Snapshot()
	if snap.Kept != 2 || snap.SampledOut != 2 {
		t.Fatalf("kept=%d sampledOut=%d, want 2/2", snap.Kept, snap.SampledOut)
	}
}

func TestCollectorCapacityClamped(t *testing.T) {
	c := NewCollector(0, 0, 1)
	if got := c.Snapshot().Capacity; got != 1 {
		t.Fatalf("capacity %d, want clamp to 1", got)
	}
}

func TestHandlerServesJSON(t *testing.T) {
	c := NewCollector(4, 7*time.Millisecond, 0.25)
	c.randFn = func() uint64 { return 0 } // draw below KeepRate: always keep
	tr := newTestTracer(c, time.Millisecond)
	ctx, root := tr.StartRoot(context.Background(), "GET /p4p/v1/distances")
	_, child := StartSpan(ctx, "recompute")
	child.End()
	root.End()

	rr := httptest.NewRecorder()
	c.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("content type %q", ct)
	}
	var snap WireSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("response is not valid JSON: %v", err)
	}
	if snap.Capacity != 4 || snap.SlowThresholdUS != 7000 || snap.KeepRate != 0.25 {
		t.Errorf("config echo wrong: %+v", snap)
	}
	if len(snap.Traces) != 1 || len(snap.Traces[0].Spans) != 2 {
		t.Fatalf("payload traces wrong: %+v", snap.Traces)
	}
	if snap.Traces[0].TraceID == "" || snap.Traces[0].Spans[0].SpanID == "" {
		t.Error("IDs missing from wire form")
	}
}

func TestSnapshotAttrsAreCopies(t *testing.T) {
	c := NewCollector(4, 0, 1)
	tr := newTestTracer(c, time.Millisecond)
	_, root := tr.StartRoot(context.Background(), "r")
	root.SetAttr("k", "v")
	root.End()
	snap := c.Snapshot()
	snap.Traces[0].Spans[0].Attrs[0].Value = "mutated"
	if again := c.Snapshot(); again.Traces[0].Spans[0].Attrs[0].Value != "v" {
		t.Fatal("snapshot shares attr backing with the live span")
	}
}
