package trace

import "testing"

// FuzzTraceparentParse pins three properties of the header parser
// against hostile input: it never panics, anything it accepts
// round-trips (render → re-parse → identical SpanContext with valid
// non-zero IDs), and anything it rejects would make the receiver start
// a fresh trace rather than propagate garbage.
func FuzzTraceparentParse(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	f.Add("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-suffix")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("")
	f.Add("garbage")

	f.Fuzz(func(t *testing.T, s string) {
		sc, ok := ParseTraceparent(s)
		if !ok {
			return
		}
		if !sc.IsValid() {
			t.Fatalf("accepted %q with invalid IDs: %+v", s, sc)
		}
		rendered := sc.Traceparent()
		back, ok2 := ParseTraceparent(rendered)
		if !ok2 {
			t.Fatalf("re-parse of rendered %q (from %q) failed", rendered, s)
		}
		if back != sc {
			t.Fatalf("round trip mismatch: %q -> %+v -> %q -> %+v", s, sc, rendered, back)
		}
	})
}
