// Package trace is the repo's zero-dependency request-tracing layer, in
// the same spirit as internal/telemetry: spans with start/end times,
// attributes, and error status; W3C traceparent propagation so an
// appTracker request and the portal work it causes stitch into one
// trace across processes; and a fixed-size ring-buffer collector with
// tail-based sampling (slow and errored traces always kept, the rest
// probabilistically) served as JSON at GET /debug/traces.
//
// The design constraint is the serving path: a request that is not
// sampled must pay nothing — no allocations, no context copies, no
// atomic traffic — beyond one header parse. Every Span method is
// nil-receiver-safe, so call sites need no guards and the unsampled
// path threads a nil span everywhere (TestTracedUnsampledDistancesAllocs
// pins the portal's cached path at the same allocation budget with and
// without the tracer installed). See DESIGN.md §11.
package trace

import (
	"context"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are strings;
// SetAttrInt formats integers on the (already sampled, already
// allocating) recording path.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation within a trace. A nil *Span is a valid
// no-op: every method checks the receiver, so unsampled requests thread
// nil spans through the same call sites at zero cost.
//
// All mutable state is guarded by the owning trace's mutex, so spans
// may be started, annotated, and ended from different goroutines (a
// singleflight waiter and the materializer, for instance) while the
// collector snapshots the trace concurrently.
type Span struct {
	td     *traceData
	name   string
	sc     SpanContext
	parent SpanID // zero for a root with no remote parent

	start time.Time
	dur   time.Duration
	ended bool
	err   string
	attrs []Attr
}

// Context returns the span's propagation context (trace ID, span ID,
// sampled flag). The zero SpanContext is returned for a nil span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// Recording reports whether the span is live (non-nil), i.e. whether
// annotating it does anything.
func (s *Span) Recording() bool { return s != nil }

// SetAttr attaches a string attribute.
//
//p4p:coldpath span annotation only runs for sampled traces; the nil-span no-op is the hot case
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.td.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.td.mu.Unlock()
}

// SetAttrInt attaches an integer attribute.
//
//p4p:coldpath span annotation only runs for sampled traces; the nil-span no-op is the hot case
func (s *Span) SetAttrInt(key string, v int) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.Itoa(v))
}

// RecordError marks the span errored. The whole trace is then always
// kept by the collector's tail sampler. A nil err is ignored.
//
//p4p:coldpath span annotation only runs for sampled traces; the nil-span no-op is the hot case
func (s *Span) RecordError(err error) {
	if s == nil || err == nil {
		return
	}
	s.td.mu.Lock()
	s.err = err.Error()
	s.td.mu.Unlock()
}

// End stamps the span's duration. Ending the local root span hands the
// whole trace to the collector for the tail-sampling decision. End is
// idempotent; ending a nil span is a no-op.
//
//p4p:coldpath span bookkeeping only runs for sampled traces; the nil-span no-op is the hot case
func (s *Span) End() {
	if s == nil {
		return
	}
	td := s.td
	td.mu.Lock()
	if s.ended {
		td.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = td.tracer.now().Sub(s.start)
	isRoot := td.root == s
	var rootDur time.Duration
	hasErr := false
	if isRoot {
		rootDur = s.dur
		for _, sp := range td.spans {
			if sp.err != "" {
				hasErr = true
				break
			}
		}
	}
	td.mu.Unlock()
	if isRoot && td.tracer.Collector != nil {
		td.tracer.Collector.offer(td, rootDur, hasErr)
	}
}

// traceData is the per-trace spine every local span of one trace hangs
// off: the shared lock, the span list in start order, and the local
// root whose End triggers the tail-sampling decision.
type traceData struct {
	tracer *Tracer

	mu    sync.Mutex
	spans []*Span
	root  *Span
}

// Tracer mints spans and applies head sampling to new traces. The zero
// value records nothing; both binaries build one with NewTracer behind
// the -traces flag.
type Tracer struct {
	// Collector receives completed traces for tail sampling and
	// /debug/traces exposure. A nil collector drops every trace.
	Collector *Collector
	// SampleRate in [0, 1] is the probability a *new* root trace is
	// recorded at all (head sampling); requests arriving with a sampled
	// traceparent are always recorded, honoring the upstream decision.
	// Tail sampling — which recorded traces the ring keeps — is the
	// collector's job.
	SampleRate float64

	// nowFn and randFn are injectable for tests (fake clock, forced
	// sampling decisions); nil takes the real clock and math/rand/v2.
	nowFn  func() time.Time
	randFn func() uint64
}

// NewTracer builds a tracer that records every new trace (head
// SampleRate 1) into the given collector.
func NewTracer(c *Collector) *Tracer {
	return &Tracer{Collector: c, SampleRate: 1}
}

func (t *Tracer) now() time.Time {
	if t.nowFn != nil {
		return t.nowFn()
	}
	return time.Now()
}

func (t *Tracer) rand64() uint64 {
	if t.randFn != nil {
		return t.randFn()
	}
	return rand.Uint64()
}

// globalRand64 is the collector's default randomness source.
func globalRand64() uint64 { return rand.Uint64() }

// headSampled draws the head-sampling decision for a new root.
func (t *Tracer) headSampled() bool {
	if t.SampleRate >= 1 {
		return true
	}
	if t.SampleRate <= 0 {
		return false
	}
	const den = 1 << 53
	return float64(t.rand64()%den)/den < t.SampleRate
}

// newTraceID mints a non-zero trace ID.
func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		hi, lo := t.rand64(), t.rand64()
		for i := 0; i < 8; i++ {
			id[i] = byte(hi >> (56 - 8*i))
			id[8+i] = byte(lo >> (56 - 8*i))
		}
	}
	return id
}

// newSpanID mints a non-zero span ID.
func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		v := t.rand64()
		for i := 0; i < 8; i++ {
			id[i] = byte(v >> (56 - 8*i))
		}
	}
	return id
}

// startLocalRoot builds the trace spine and its local root span.
func (t *Tracer) startLocalRoot(name string, traceID TraceID, parent SpanID) *Span {
	td := &traceData{tracer: t}
	s := &Span{
		td:     td,
		name:   name,
		sc:     SpanContext{TraceID: traceID, SpanID: t.newSpanID(), Sampled: true},
		parent: parent,
		start:  t.now(),
	}
	td.root = s
	td.spans = []*Span{s}
	return s
}

// StartRoot starts a new trace with the given root span name, applying
// head sampling. When unsampled (or t is nil) the context is returned
// unchanged with a nil span, costing nothing.
//
//p4p:coldpath span construction only happens for head-sampled traces; the unsampled path returns (ctx, nil)
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil || !t.headSampled() {
		return ctx, nil
	}
	s := t.startLocalRoot(name, t.newTraceID(), SpanID{})
	return ContextWithSpan(ctx, s), s
}

// StartServer starts the server span for an inbound request carrying
// the given traceparent header value (possibly empty). A valid sampled
// header continues the caller's trace — same trace ID, the caller's
// span as parent — so cross-process hops stitch. A valid unsampled
// header is honored: no span, zero cost. An absent or invalid header
// starts a fresh trace under head sampling.
//
//p4p:coldpath span construction only happens for sampled traces; the unsampled path returns (ctx, nil)
func (t *Tracer) StartServer(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if sc, ok := ParseTraceparent(traceparent); ok {
		if !sc.Sampled {
			return ctx, nil
		}
		s := t.startLocalRoot(name, sc.TraceID, sc.SpanID)
		return ContextWithSpan(ctx, s), s
	}
	return t.StartRoot(ctx, name)
}

// spanKey carries the active span in a context.
type spanKey struct{}

// ContextWithSpan attaches a span to a context. Attaching nil returns
// the context unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// FromContext returns the context's active span, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context's active span. With no active
// span it returns the context unchanged and a nil span — libraries call
// this unconditionally and the unsampled path pays only the context
// lookup.
//
//p4p:coldpath span construction only happens under an active sampled span; the nil-parent path pays one context lookup
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	td := parent.td
	s := &Span{
		td:     td,
		name:   name,
		sc:     SpanContext{TraceID: parent.sc.TraceID, SpanID: td.tracer.newSpanID(), Sampled: true},
		parent: parent.sc.SpanID,
		start:  td.tracer.now(),
	}
	td.mu.Lock()
	td.spans = append(td.spans, s)
	td.mu.Unlock()
	return ContextWithSpan(ctx, s), s
}

// traceparentHeader is the canonical MIME form net/http stores the
// (lowercase on the wire) traceparent header under.
const traceparentHeader = "Traceparent"

// Inject writes the context's active span as a traceparent header (and
// nothing else) onto an outbound request's headers. No active span, no
// header, no cost.
func Inject(ctx context.Context, h http.Header) {
	s := FromContext(ctx)
	if s == nil {
		return
	}
	h[traceparentHeader] = []string{s.sc.Traceparent()}
}

// Incoming extracts the traceparent value from inbound request headers
// without allocating (direct canonical-key map read).
func Incoming(h http.Header) string {
	if v := h[traceparentHeader]; len(v) > 0 {
		return v[0]
	}
	return ""
}
