package telemetry

import (
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareRecordsRouteMetrics(t *testing.T) {
	reg := NewRegistry()
	var logBuf strings.Builder
	mw := &Middleware{
		Metrics: NewHTTPMetrics(reg, "p4p_http"),
		Logger:  slog.New(slog.NewTextHandler(&logBuf, nil)),
	}
	var gotReqID string
	h := mw.RouteFunc("distances", func(w http.ResponseWriter, r *http.Request) {
		gotReqID = RequestID(r.Context())
		w.WriteHeader(http.StatusNotModified)
	})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/p4p/v1/distances", nil))

	if gotReqID == "" {
		t.Fatal("request ID not carried through context")
	}
	if hdr := rec.Header().Get("X-Request-ID"); hdr != gotReqID {
		t.Errorf("X-Request-ID = %q, want %q", hdr, gotReqID)
	}
	if !strings.Contains(logBuf.String(), "request_id="+gotReqID) {
		t.Errorf("slog line missing request_id: %s", logBuf.String())
	}
	if got := mw.Metrics.requests.With("distances", "3xx").Value(); got != 1 {
		t.Errorf("3xx counter = %v, want 1", got)
	}
	if got := mw.Metrics.etagHits.With("distances").Value(); got != 1 {
		t.Errorf("etag hit counter = %v, want 1", got)
	}
	if got := mw.Metrics.latency.With("distances").Count(); got != 1 {
		t.Errorf("latency observations = %d, want 1", got)
	}
}

func TestMiddlewareDefaultStatusIs200(t *testing.T) {
	reg := NewRegistry()
	mw := &Middleware{Metrics: NewHTTPMetrics(reg, "p4p_http")}
	h := mw.RouteFunc("policy", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok")) // implicit 200
	})
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if got := mw.Metrics.requests.With("policy", "2xx").Value(); got != 1 {
		t.Errorf("2xx counter = %v, want 1", got)
	}
}

// TestMiddlewareLateMetrics proves fields may be set after routes are
// registered: the binaries build the handler first, then attach
// telemetry.
func TestMiddlewareLateMetrics(t *testing.T) {
	mw := &Middleware{}
	h := mw.RouteFunc("pid", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	})
	// No metrics yet: must not panic.
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))

	reg := NewRegistry()
	mw.Metrics = NewHTTPMetrics(reg, "p4p_http")
	mw.Preregister()
	var b strings.Builder
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), `p4p_http_requests_total{route="pid",class="5xx"} 0`) {
		t.Errorf("preregistered schema missing:\n%s", b.String())
	}
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if got := mw.Metrics.requests.With("pid", "4xx").Value(); got != 1 {
		t.Errorf("4xx counter = %v, want 1", got)
	}
}

func TestRegistryHandlerContentType(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c", "h").Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "c 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

func TestRequestIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if seen[id] {
			t.Fatalf("duplicate request ID %q", id)
		}
		seen[id] = true
	}
}

func TestRegisterPprof(t *testing.T) {
	mux := http.NewServeMux()
	RegisterPprof(mux)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof index = %d, want 200", rec.Code)
	}
}
