package telemetry

import (
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
)

func TestRuntimeMetricsCollect(t *testing.T) {
	reg := NewRegistry()
	rm := NewRuntimeMetrics(reg)
	rm.Collect()
	if g := rm.goroutines.Value(); g < 1 {
		t.Errorf("goroutines gauge %v, want >= 1", g)
	}
	if h := rm.heapInuse.Value(); h <= 0 {
		t.Errorf("heap in use gauge %v, want > 0", h)
	}
}

func TestRuntimeMetricsGCPauseDeltas(t *testing.T) {
	reg := NewRegistry()
	rm := NewRuntimeMetrics(reg)
	rm.Collect()
	runtime.GC()
	rm.Collect()
	first := rm.gcPauses.Value()
	cycles := rm.gcCycles.Value()
	if cycles < 1 {
		t.Fatalf("gc cycles %v after forced GC, want >= 1", cycles)
	}
	// A collect with no intervening GC adds (near) nothing — the delta
	// logic must not re-add the whole cumulative total.
	rm.Collect()
	if again := rm.gcPauses.Value(); again < first || again > 2*first+1 {
		t.Fatalf("pause counter went %v -> %v; delta conversion broken", first, again)
	}
}

func TestRuntimeMetricsHandlerSamplesOnScrape(t *testing.T) {
	reg := NewRegistry()
	rm := NewRuntimeMetrics(reg)
	srv := httptest.NewServer(rm.Handler(reg.Handler()))
	defer srv.Close()
	rec := httptest.NewRecorder()
	rm.Handler(reg.Handler()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{"p4p_runtime_goroutines ", "p4p_runtime_heap_inuse_bytes ", "p4p_runtime_gc_pause_seconds_total "} {
		if !strings.Contains(body, want) {
			t.Fatalf("scrape missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "p4p_runtime_goroutines 0\n") {
		t.Fatal("goroutines gauge still zero after scrape; Collect not wired")
	}
}

func TestRuntimeMetricsNilSafe(t *testing.T) {
	var rm *RuntimeMetrics
	rm.Collect() // must not panic
}
