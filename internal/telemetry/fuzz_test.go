package telemetry

import (
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"unicode/utf8"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// FuzzExpositionParse drives the registry with fuzzed metric metadata
// and values, renders the Prometheus exposition, and re-parses it with
// an independent line parser: rendering must never panic or error, and
// every line must be well-formed text format with label values that
// unescape back to the original input.
func FuzzExpositionParse(f *testing.F) {
	f.Add("p4p_requests_total", "Requests served.", "route", "distances", 1.5)
	f.Add("p4p_latency_seconds", "Latency.", "route", `quoted "value" with \ and
newline`, 0.003)
	f.Add("up", "", "job", "", -7.25)
	f.Fuzz(func(t *testing.T, name, help, label, value string, v float64) {
		if !nameRe.MatchString(name) || !labelRe.MatchString(label) {
			return // the registry is only fed compile-time names
		}
		if !utf8.ValidString(value) {
			return // Prometheus label values are UTF-8 by contract
		}
		reg := NewRegistry()
		reg.CounterVec(name+"_total", help, label).With(value).Add(v)
		reg.Gauge(name+"_gauge", help).Set(v)
		reg.Histogram(name+"_hist", help, nil).Observe(v)

		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		sawLabel := false
		for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
			labels, err := parseExpositionLine(line)
			if err != nil {
				t.Fatalf("malformed exposition line %q: %v", line, err)
			}
			if got, ok := labels[label]; ok && got == value {
				sawLabel = true
			}
		}
		if !sawLabel {
			t.Fatalf("label value %q did not round-trip through the exposition:\n%s", value, buf.String())
		}
	})
}

// parseExpositionLine validates one text-format line and returns the
// sample's unescaped labels (nil for comment lines).
func parseExpositionLine(line string) (map[string]string, error) {
	if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
		return nil, nil
	}
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return nil, fmt.Errorf("no metric name")
	}
	if !nameRe.MatchString(line[:i]) {
		return nil, fmt.Errorf("bad metric name %q", line[:i])
	}
	rest := line[i:]
	labels := map[string]string{}
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq <= 0 || !labelRe.MatchString(rest[:eq]) {
				return nil, fmt.Errorf("bad label name")
			}
			lname := rest[:eq]
			rest = rest[eq+1:]
			if len(rest) == 0 || rest[0] != '"' {
				return nil, fmt.Errorf("label value not quoted")
			}
			val, n, err := unquoteLabel(rest)
			if err != nil {
				return nil, err
			}
			labels[lname] = val
			rest = rest[n:]
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			return nil, fmt.Errorf("label list not terminated")
		}
	}
	if len(rest) == 0 || rest[0] != ' ' {
		return nil, fmt.Errorf("no sample value")
	}
	if _, err := strconv.ParseFloat(strings.TrimSpace(rest[1:]), 64); err != nil {
		return nil, fmt.Errorf("bad sample value %q: %v", rest[1:], err)
	}
	return labels, nil
}

// unquoteLabel consumes a quoted, escaped label value from the front
// of s, returning the unescaped value and bytes consumed.
func unquoteLabel(s string) (string, int, error) {
	if s[0] != '"' {
		return "", 0, fmt.Errorf("not quoted")
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case '"':
				b.WriteByte('"')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", s[i])
			}
		case '"':
			return b.String(), i + 1, nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}
