// Package telemetry is the repo's zero-dependency observability layer:
// a race-safe metrics registry (atomic counters, gauges, and fixed-bucket
// histograms, optionally labelled) with Prometheus text-format
// exposition, plus the HTTP instrumentation middleware both binaries
// mount (per-route request counts, status classes, latency histograms,
// ETag-revalidation hits, request IDs, structured logging).
//
// The paper's deployment story — iTrackers serving millions of users
// while the provider watches link utilization and the dual-price
// computation converge — is only operable if the hot paths are
// continuously measured; every metric here is readable by a stock
// Prometheus scrape of GET /metrics.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 updated with compare-and-swap, so counters
// and gauges can carry fractional values (seconds slept, utilizations)
// without a mutex on the hot path.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Set(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing metric. Negative increments are
// ignored rather than corrupting monotonicity.
type Counter struct {
	v atomicFloat
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds v (ignored when negative).
func (c *Counter) Add(v float64) {
	if v > 0 {
		c.v.Add(v)
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomicFloat
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.Set(v) }

// Add shifts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram with a running sum and count,
// exposed in Prometheus cumulative-bucket form. Observations are
// lock-free; a concurrent scrape sees each atomic consistently (the
// usual Prometheus relaxation: sum/count/buckets may momentarily skew
// by in-flight observations).
type Histogram struct {
	uppers []float64       // sorted inclusive upper bounds, +Inf implicit
	counts []atomic.Uint64 // len(uppers)+1; last is the +Inf overflow
	sum    atomicFloat
	count  atomic.Uint64
}

func newHistogram(uppers []float64) *Histogram {
	u := append([]float64(nil), uppers...)
	sort.Float64s(u)
	return &Histogram{uppers: u, counts: make([]atomic.Uint64, len(u)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v) // first upper bound >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// DefBuckets are the default latency buckets (seconds), spanning the
// sub-millisecond in-process portal path out to multi-second retries.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// metricType tags a family for TYPE lines and registration checks.
type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with zero or more labelled children.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64

	mu       sync.Mutex
	children map[string]interface{} // label-value key -> *Counter/*Gauge/*Histogram
}

// labelKey joins label values into a map key. \xff cannot appear in
// UTF-8 label values, so the join is unambiguous.
func labelKey(values []string) string { return strings.Join(values, "\xff") }

func (f *family) child(values []string) interface{} {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s has %d labels, got %d values", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	var c interface{}
	switch f.typ {
	case counterType:
		c = &Counter{}
	case gaugeType:
		c = &Gauge{}
	case histogramType:
		c = newHistogram(f.buckets)
	}
	f.children[key] = c
	return c
}

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order, for stable exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// registerFamily returns the named family, creating it on first use. A
// name re-registered with a different type or label arity panics: that
// is a programming error, not an operational condition.
func (r *Registry) registerFamily(name, help string, typ metricType, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s with %d labels (was %s with %d)",
				name, typ, len(labels), f.typ, len(f.labels)))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: map[string]interface{}{},
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter registers (or finds) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.registerFamily(name, help, counterType, nil, nil).child(nil).(*Counter)
}

// Gauge registers (or finds) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.registerFamily(name, help, gaugeType, nil, nil).child(nil).(*Gauge)
}

// Histogram registers (or finds) an unlabelled histogram with the given
// upper bounds (nil takes DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.registerFamily(name, help, histogramType, nil, buckets).child(nil).(*Histogram)
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.registerFamily(name, help, counterType, labels, nil)}
}

// With returns the child counter for the given label values, creating
// it at zero on first use.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).(*Counter) }

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.registerFamily(name, help, gaugeType, labels, nil)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).(*Gauge) }

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a labelled histogram family (nil
// buckets take DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{r.registerFamily(name, help, histogramType, labels, buckets)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).(*Histogram) }

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// escapeHelp escapes a HELP text per the text-format rules; an
// unescaped newline or backslash would break the line-oriented format.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	h = strings.ReplaceAll(h, "\n", `\n`)
	return h
}

// escapeLabel escapes a label value per the text-format rules.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// labelString renders {k="v",...} for the given names and values, with
// extra appended last (used for histogram le bounds). Empty input
// renders nothing.
func labelString(names, values []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	for i, e := range extra {
		if len(names) > 0 || i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(e)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4), families in registration order and children
// sorted by label values for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	fams := make([]*family, len(order))
	for i, n := range order {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)

		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		children := make([]interface{}, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()

		for i, key := range keys {
			var values []string
			if len(f.labels) > 0 {
				values = strings.Split(key, "\xff")
			}
			switch c := children[i].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, values), formatValue(c.Value()))
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, values), formatValue(c.Value()))
			case *Histogram:
				cum := uint64(0)
				for bi, upper := range c.uppers {
					cum += c.counts[bi].Load()
					le := fmt.Sprintf(`le="%s"`, formatValue(upper))
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, le), cum)
				}
				cum += c.counts[len(c.uppers)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, `le="+Inf"`), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelString(f.labels, values), formatValue(c.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelString(f.labels, values), cum)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns the GET /metrics exposition handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
