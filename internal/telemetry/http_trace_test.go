package telemetry

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"p4p/internal/trace"
)

func TestValidRequestID(t *testing.T) {
	for _, ok := range []string{"abc123", "a1b2c3d4-000001", "A.B_C-9"} {
		if !ValidRequestID(ok) {
			t.Errorf("rejected valid ID %q", ok)
		}
	}
	for _, bad := range []string{"", "has space", "semi;colon", "new\nline", strings.Repeat("x", 65), "quo\"te"} {
		if ValidRequestID(bad) {
			t.Errorf("accepted invalid ID %q", bad)
		}
	}
}

func TestMiddlewareAdoptsInboundRequestID(t *testing.T) {
	var mw Middleware
	var sawCtxID string
	h := mw.RouteFunc("r", func(w http.ResponseWriter, r *http.Request) {
		sawCtxID = RequestID(r.Context())
	})
	mw.Logger = slog.New(slog.NewTextHandler(io.Discard, nil)) // logger attached so the context carries the ID

	// A valid inbound ID is adopted and echoed.
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set("X-Request-Id", "upstream-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got != "upstream-42" {
		t.Errorf("echoed ID %q, want adopted upstream-42", got)
	}
	if sawCtxID != "upstream-42" {
		t.Errorf("context ID %q, want adopted upstream-42", sawCtxID)
	}

	// A hostile inbound ID is replaced with a minted one.
	req = httptest.NewRequest("GET", "/x", nil)
	req.Header.Set("X-Request-Id", "bad id\nwith junk")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got == "" || strings.Contains(got, " ") {
		t.Errorf("hostile inbound ID not replaced: %q", got)
	}
}

func TestMiddlewareServerSpan(t *testing.T) {
	c := trace.NewCollector(8, 0, 1)
	var mw Middleware
	mw.Tracer = trace.NewTracer(c)
	var activeInHandler bool
	var ctxID string
	h := mw.RouteFunc("distances", func(w http.ResponseWriter, r *http.Request) {
		activeInHandler = trace.FromContext(r.Context()) != nil
		ctxID = RequestID(r.Context())
		w.WriteHeader(http.StatusOK)
	})

	const inbound = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set("Traceparent", inbound)
	req.Header.Set("X-Request-Id", "caller-7")
	h.ServeHTTP(httptest.NewRecorder(), req)

	if !activeInHandler {
		t.Fatal("handler context carried no active span")
	}
	if ctxID != "caller-7" {
		t.Errorf("handler context ID %q, want caller-7 (no logger, span sampled)", ctxID)
	}
	snap := c.Snapshot()
	if len(snap.Traces) != 1 {
		t.Fatalf("kept %d traces, want 1", len(snap.Traces))
	}
	span := snap.Traces[0].Spans[0]
	if span.Name != "distances" {
		t.Errorf("server span name %q, want route name", span.Name)
	}
	if snap.Traces[0].TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace ID %q, want the caller's", snap.Traces[0].TraceID)
	}
	if span.ParentSpanID != "00f067aa0ba902b7" {
		t.Errorf("server span parent %q, want the caller's span", span.ParentSpanID)
	}
	attrs := map[string]string{}
	for _, a := range span.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["http.method"] != "GET" || attrs["request_id"] != "caller-7" || attrs["http.status"] != "200" {
		t.Errorf("span attrs = %v", attrs)
	}
}

func TestMiddlewareUnsampledInboundSkipsSpan(t *testing.T) {
	c := trace.NewCollector(8, 0, 1)
	var mw Middleware
	mw.Tracer = trace.NewTracer(c)
	var active bool
	h := mw.RouteFunc("r", func(w http.ResponseWriter, r *http.Request) {
		active = trace.FromContext(r.Context()) != nil
	})
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set("Traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	h.ServeHTTP(httptest.NewRecorder(), req)
	if active {
		t.Error("unsampled inbound request got an active span")
	}
	if kept := c.Snapshot().Kept; kept != 0 {
		t.Errorf("unsampled request recorded %d traces", kept)
	}
}

func TestMiddleware5xxMarksSpanErrored(t *testing.T) {
	// Keep rate 0 and an unreachable slow threshold: only the error
	// rule can keep a trace, so keeping proves the 5xx was recorded.
	c := trace.NewCollector(8, 1<<62, 0)
	var mw Middleware
	mw.Tracer = trace.NewTracer(c)
	h := mw.RouteFunc("r", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	snap := c.Snapshot()
	if snap.Kept != 1 {
		t.Fatalf("errored trace not kept: %+v", snap)
	}
	if snap.Traces[0].Spans[0].Error == "" {
		t.Error("server span has no error recorded")
	}
}
