package telemetry

import (
	"net/http"
	"runtime"
	"sync"
)

// RuntimeMetrics exports the Go runtime's health signals — goroutine
// count, heap in use, GC pause time and cycle count — into a Registry,
// sampled lazily on each scrape rather than by a background goroutine:
// both binaries wrap their /metrics handler with Handler(), so the
// numbers are exactly as fresh as the scrape and an idle process does
// no periodic work.
type RuntimeMetrics struct {
	goroutines  *Gauge
	heapInuse   *Gauge
	heapObjects *Gauge
	gcPauses    *Counter
	gcCycles    *Counter

	// mu serializes Collect; lastPauseNs/lastGCs convert the runtime's
	// monotonically-growing totals into counter deltas (Counter.Add
	// ignores negatives, and re-adding the whole total each scrape
	// would double-count).
	mu          sync.Mutex
	lastPauseNs uint64
	lastGCs     uint32
}

// NewRuntimeMetrics registers the runtime metric families.
func NewRuntimeMetrics(r *Registry) *RuntimeMetrics {
	return &RuntimeMetrics{
		goroutines: r.Gauge("p4p_runtime_goroutines",
			"Live goroutines at the last scrape."),
		heapInuse: r.Gauge("p4p_runtime_heap_inuse_bytes",
			"Bytes of heap in use at the last scrape."),
		heapObjects: r.Gauge("p4p_runtime_heap_objects",
			"Live heap objects at the last scrape."),
		gcPauses: r.Counter("p4p_runtime_gc_pause_seconds_total",
			"Cumulative stop-the-world GC pause time."),
		gcCycles: r.Counter("p4p_runtime_gc_cycles_total",
			"Completed GC cycles."),
	}
}

// Collect samples the runtime into the registered families. It is safe
// for concurrent use; each call costs one runtime.ReadMemStats.
func (m *RuntimeMetrics) Collect() {
	if m == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.goroutines.Set(float64(runtime.NumGoroutine()))
	m.heapInuse.Set(float64(ms.HeapInuse))
	m.heapObjects.Set(float64(ms.HeapObjects))
	m.mu.Lock()
	if ms.PauseTotalNs >= m.lastPauseNs {
		m.gcPauses.Add(float64(ms.PauseTotalNs-m.lastPauseNs) / 1e9)
	}
	m.lastPauseNs = ms.PauseTotalNs
	if ms.NumGC >= m.lastGCs {
		m.gcCycles.Add(float64(ms.NumGC - m.lastGCs))
	}
	m.lastGCs = ms.NumGC
	m.mu.Unlock()
}

// Handler wraps a metrics handler (typically Registry.Handler) so every
// scrape sees freshly sampled runtime numbers.
func (m *RuntimeMetrics) Handler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.Collect()
		next.ServeHTTP(w, r)
	})
}
