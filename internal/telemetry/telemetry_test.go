package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusExposition is the golden test for the text format: one
// family of each type, labelled and unlabelled, rendered byte-exact.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("p4p_events_total", "Events seen.")
	c.Add(3)
	cv := r.CounterVec("p4p_http_requests_total", "Requests by route.", "route", "class")
	cv.With("distances", "2xx").Add(2)
	cv.With("distances", "3xx").Inc()
	cv.With("pid", "4xx").Inc()
	g := r.Gauge("p4p_mlu", "Max link utilization.")
	g.Set(0.75)
	h := r.Histogram("p4p_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(42)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP p4p_events_total Events seen.
# TYPE p4p_events_total counter
p4p_events_total 3
# HELP p4p_http_requests_total Requests by route.
# TYPE p4p_http_requests_total counter
p4p_http_requests_total{route="distances",class="2xx"} 2
p4p_http_requests_total{route="distances",class="3xx"} 1
p4p_http_requests_total{route="pid",class="4xx"} 1
# HELP p4p_mlu Max link utilization.
# TYPE p4p_mlu gauge
p4p_mlu 0.75
# HELP p4p_latency_seconds Latency.
# TYPE p4p_latency_seconds histogram
p4p_latency_seconds_bucket{le="0.1"} 1
p4p_latency_seconds_bucket{le="1"} 3
p4p_latency_seconds_bucket{le="+Inf"} 4
p4p_latency_seconds_sum 43.05
p4p_latency_seconds_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("m", "h", "l").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	want := `m{l="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped label missing; exposition:\n%s", b.String())
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "h")
	b := r.Counter("c", "h")
	if a != b {
		t.Fatal("re-registering a counter returned a different instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type-mismatched re-registration should panic")
		}
	}()
	r.Gauge("c", "h")
}

func TestHistogramBounds(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	h.Observe(1) // inclusive upper bound
	h.Observe(10)
	h.Observe(11)
	if got := h.counts[0].Load(); got != 1 {
		t.Errorf("le=1 bucket = %d, want 1", got)
	}
	if got := h.counts[1].Load(); got != 1 {
		t.Errorf("le=10 bucket = %d, want 1", got)
	}
	if got := h.counts[2].Load(); got != 1 {
		t.Errorf("+Inf bucket = %d, want 1", got)
	}
	if h.Count() != 3 || h.Sum() != 22 {
		t.Errorf("count=%d sum=%v, want 3, 22", h.Count(), h.Sum())
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("counter = %v, want 5", c.Value())
	}
}

func TestGaugeValues(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %v, want 1.5", g.Value())
	}
	g.Set(math.Inf(1))
	if fv := formatValue(g.Value()); fv != "+Inf" {
		t.Errorf("inf gauge renders %q", fv)
	}
}

// TestConcurrentUpdates hammers every metric kind from many goroutines;
// run under -race this proves the registry is race-safe, and the totals
// prove no update is lost.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("hist", "h", []float64{0.5})
	cv := r.CounterVec("cv", "h", "worker")
	hv := r.HistogramVec("hv", "h", []float64{0.5}, "worker")

	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w%4))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 2)) // alternates buckets
				cv.With(name).Inc()
				hv.With(name).Observe(0.25)
				// Interleave scrapes with updates.
				if i%500 == 0 {
					var b strings.Builder
					r.WritePrometheus(&b)
				}
			}
		}(w)
	}
	wg.Wait()

	total := float64(workers * perWorker)
	if c.Value() != total {
		t.Errorf("counter = %v, want %v", c.Value(), total)
	}
	if g.Value() != total {
		t.Errorf("gauge = %v, want %v", g.Value(), total)
	}
	if h.Count() != uint64(total) {
		t.Errorf("histogram count = %d, want %v", h.Count(), total)
	}
	var vecTotal float64
	for _, name := range []string{"a", "b", "c", "d"} {
		vecTotal += cv.With(name).Value()
	}
	if vecTotal != total {
		t.Errorf("vec total = %v, want %v", vecTotal, total)
	}
}
