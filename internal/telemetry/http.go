package telemetry

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"p4p/internal/trace"
)

// HTTPMetrics is the per-route instrumentation both binaries mount:
// request counts by status class, latency histograms, and a counter of
// 304 Not Modified responses (the ETag-revalidation hit rate is
// etag_hits / requests on the same route).
type HTTPMetrics struct {
	requests *CounterVec   // <prefix>_requests_total{route,class}
	latency  *HistogramVec // <prefix>_request_duration_seconds{route}
	etagHits *CounterVec   // <prefix>_etag_hits_total{route}
}

// NewHTTPMetrics registers the HTTP metric families under the given
// name prefix (e.g. "p4p_http").
func NewHTTPMetrics(r *Registry, prefix string) *HTTPMetrics {
	return &HTTPMetrics{
		requests: r.CounterVec(prefix+"_requests_total",
			"HTTP requests served, by route and status class.", "route", "class"),
		latency: r.HistogramVec(prefix+"_request_duration_seconds",
			"HTTP request latency in seconds, by route.", nil, "route"),
		etagHits: r.CounterVec(prefix+"_etag_hits_total",
			"Conditional GETs answered 304 Not Modified, by route.", "route"),
	}
}

// statusClass buckets an HTTP status for the class label.
func statusClass(status int) string {
	switch {
	case status < 300:
		return "2xx"
	case status < 400:
		return "3xx"
	case status < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// Observe records one served request. Nil receivers are no-ops so call
// sites need no guards.
func (m *HTTPMetrics) Observe(route string, status int, d time.Duration) {
	if m == nil {
		return
	}
	m.requests.With(route, statusClass(status)).Inc()
	m.latency.With(route).Observe(d.Seconds())
	if status == http.StatusNotModified {
		m.etagHits.With(route).Inc()
	}
}

// Preregister creates the route's children at zero so a scrape shows
// the full schema before the first request arrives.
func (m *HTTPMetrics) Preregister(route string) {
	if m == nil {
		return
	}
	for _, class := range []string{"2xx", "3xx", "4xx", "5xx"} {
		m.requests.With(route, class)
	}
	m.latency.With(route)
	m.etagHits.With(route)
}

// reqIDKey is the context key carrying the request ID.
type reqIDKey struct{}

var (
	reqPrefix = fmt.Sprintf("%08x", rand.Uint32())
	reqSeq    atomic.Uint64
)

// NewRequestID returns a process-unique request ID: a per-process
// random prefix plus a sequence number. It is built with a single
// string allocation — it runs on every request.
func NewRequestID() string {
	var b [32]byte
	buf := append(b[:0], reqPrefix...)
	buf = append(buf, '-')
	seq := reqSeq.Add(1)
	if seq < 100000 { // keep the historical zero-padded %06d shape
		for pad := uint64(100000); pad > seq && pad > 1; pad /= 10 {
			buf = append(buf, '0')
		}
	}
	buf = strconv.AppendUint(buf, seq, 10)
	return string(buf)
}

// ContextWithRequestID attaches a request ID to a context.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey{}, id)
}

// requestIDHeader is the canonical MIME form of X-Request-ID, for
// allocation-free direct header-map access.
const requestIDHeader = "X-Request-Id"

// ValidRequestID reports whether an inbound X-Request-ID is safe to
// adopt: non-empty, bounded, and limited to URL-ish token characters so
// a hostile client cannot smuggle log/header garbage through us.
func ValidRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9':
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// incomingRequestID adopts a valid inbound X-Request-ID (so an
// appTracker call and the portal's log line for it share one ID), or
// mints a fresh one. The header read is a direct canonical-key map
// index — no allocation on the serving path.
func incomingRequestID(h http.Header) string {
	if v := h[requestIDHeader]; len(v) > 0 && ValidRequestID(v[0]) {
		return v[0]
	}
	return NewRequestID()
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// StatusWriter wraps a ResponseWriter to capture the status code and
// bytes written for after-the-fact metrics and logging.
type StatusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

// WriteHeader records the status before delegating.
func (w *StatusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

// Write counts bytes, defaulting the status to 200 like net/http.
func (w *StatusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Status returns the recorded status (200 when the handler wrote a body
// without calling WriteHeader; 0 if nothing was written).
func (w *StatusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// Unwrap supports http.ResponseController.
func (w *StatusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Middleware wires metrics and structured logging around named routes.
// Both fields are optional and may be set after routes are registered
// (but before serving): each request consults them live. The zero value
// is ready to use.
type Middleware struct {
	// Metrics, when non-nil, receives one Observe per request.
	Metrics *HTTPMetrics
	// Logger, when non-nil, logs one structured line per request,
	// carrying the request ID.
	Logger *slog.Logger
	// Tracer, when non-nil, starts a server span per sampled request:
	// a valid inbound traceparent continues the caller's trace (or is
	// honored when unsampled — zero cost), anything else starts a fresh
	// head-sampled one.
	Tracer *trace.Tracer

	mu     sync.Mutex
	routes []string
}

// errStatus5xx marks a span errored when the handler answered 5xx, so
// the tail sampler always keeps the trace.
var errStatus5xx = errors.New("5xx response")

// Route wraps next with instrumentation under the given route name:
// a request ID is minted and attached to the context and the
// X-Request-ID response header, the status and latency are recorded
// against the route, and one slog line is emitted.
func (mw *Middleware) Route(route string, next http.Handler) http.Handler {
	mw.mu.Lock()
	mw.routes = append(mw.routes, route)
	mw.mu.Unlock()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := incomingRequestID(r.Header)
		w.Header()["X-Request-Id"] = []string{id} // canonical key, direct write
		ctx := r.Context()
		var span *trace.Span
		if mw.Tracer != nil {
			// StartServer returns a nil span (and the context untouched)
			// for unsampled traffic, keeping the hot path allocation-free;
			// every span method below is nil-safe.
			ctx, span = mw.Tracer.StartServer(ctx, route, trace.Incoming(r.Header))
			span.SetAttr("http.method", r.Method)
			span.SetAttr("request_id", id)
		}
		if mw.Logger != nil || span != nil {
			// The context copy exists so handlers, outbound client calls,
			// and the log line can recover the ID; without a logger or a
			// sampled span nothing reads it, and the two allocations
			// (value box + request clone) are the difference between a
			// zero-alloc and a chunky serving path.
			r = r.WithContext(ContextWithRequestID(ctx, id))
		}
		sw := &StatusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		d := time.Since(start)
		span.SetAttrInt("http.status", sw.Status())
		if sw.Status() >= 500 {
			span.RecordError(errStatus5xx)
		}
		span.End()
		mw.Metrics.Observe(route, sw.Status(), d)
		if mw.Logger != nil {
			mw.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("request_id", id),
				slog.String("route", route),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("remote", r.RemoteAddr),
				slog.Int("status", sw.Status()),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", d),
			)
		}
	})
}

// RouteFunc is Route for handler functions.
func (mw *Middleware) RouteFunc(route string, next http.HandlerFunc) http.Handler {
	return mw.Route(route, next)
}

// Preregister creates zero-valued metric children for every route seen
// so far, so GET /metrics shows the full schema before traffic arrives.
// Call it after setting Metrics and registering routes.
func (mw *Middleware) Preregister() {
	mw.mu.Lock()
	routes := append([]string(nil), mw.routes...)
	mw.mu.Unlock()
	for _, r := range routes {
		mw.Metrics.Preregister(r)
	}
}

// RegisterPprof mounts the net/http/pprof handlers on mux under
// /debug/pprof/. Both binaries call this behind a -pprof flag, keeping
// the profiling surface off by default.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
