package experiments

import (
	"math/rand"

	"p4p/internal/apptracker"
	"p4p/internal/charging"
	"p4p/internal/core"
	"p4p/internal/itracker"
	"p4p/internal/metrics"
	"p4p/internal/p2psim"
	"p4p/internal/topology"
	"p4p/internal/traffic"
)

// Figure10Interdomain reproduces the interdomain multihoming experiments
// of Section 7.3 (Figure 10): Abilene is split into two "virtual" ISPs
// by two interdomain circuits; virtual P2P capacities for those circuits
// are derived from historical (synthetic diurnal) traffic volumes under
// the 95th-percentile charging model; the three BitTorrent variants run
// as in Figure 6. Reported: completion-time CDFs (10a) and the charging
// volume of each interdomain circuit per policy (10b).
func Figure10Interdomain(opt Options) *Report {
	opt = opt.withDefaults()
	rep := newReport("F10", "Interdomain multihoming cost control (Figure 10)")
	g := topology.AbileneVirtualISPs()
	r := topology.ComputeRouting(g)
	cuts := topology.InterdomainCuts(g)
	n := opt.scaled(160)
	rep.note("two virtual ISPs over Abilene; %d clients; 12 MB file; 95th-percentile charging", n)

	// Virtual capacities v_e from a month of synthetic diurnal history
	// on each circuit: the first circuit is the primary (more headroom),
	// the second the expensive backup (tight headroom). Sizes are scaled
	// to the experiment's traffic so that exceeding v_e is possible, as
	// in the paper's field configuration.
	est := &charging.VirtualCapacityEstimator{
		Predictor: charging.Predictor{Model: charging.StandardMonthly(), WarmupIntervals: 288},
		Average:   charging.MovingAverage{Window: 12},
	}
	meanBps := []float64{100e6, 30e6}
	veBps := map[topology.LinkID]float64{}
	for ci, cut := range cuts {
		cfg := traffic.DefaultConfig(meanBps[ci%len(meanBps)])
		cfg.Seed = opt.Seed + int64(ci)
		hist := traffic.Generate(cfg, charging.StandardMonthly().PeriodIntervals)
		ve := est.Estimate(hist) * 8 / cfg.IntervalSec // bytes/interval -> bits/sec
		for _, e := range cut {
			if e >= 0 {
				veBps[e] = ve
			}
		}
		rep.Values[metricName("virtual-capacity-mbps/circuit", ci)] = ve / 1e6
	}

	var watch []topology.LinkID
	for _, cut := range cuts {
		for _, e := range cut {
			if e >= 0 {
				watch = append(watch, e)
			}
		}
	}

	tbl := &metrics.Table{Header: []string{"policy", "mean completion s", "p99 completion s", "charge circuit1 MB", "charge circuit2 MB"}}
	// The three policies are independent cells (the p4p cell builds its
	// own engine and iTracker; veBps is only read); they fan across the
	// worker pool and the report is assembled in policy order.
	policies := []string{policyNative, policyLocalized, policyP4P}
	results := make([]*p2psim.Result, len(policies))
	opt.forEachCell(len(policies), func(i int) {
		results[i] = runInterdomainPolicy(policies[i], g, r, n, watch, veBps, opt)
	})
	for i, policy := range policies {
		res := results[i]
		ct := metrics.NewCDF(res.CompletionTimes())
		rep.Series["completion-cdf/"+policy] = ct.Points(20)
		var charges []float64
		for ci, cut := range cuts {
			worst := 0.0
			for _, e := range cut {
				if e < 0 {
					continue
				}
				led := res.Ledgers[e]
				vols := led.Volumes()
				if len(vols) == 0 {
					continue
				}
				c := charging.Percentile(vols, 0.95)
				if c > worst {
					worst = c
				}
			}
			charges = append(charges, worst/(1<<20))
			rep.Values[metricName("charging-mb/"+policy+"/circuit", ci)] = worst / (1 << 20)
		}
		tbl.AddRow(policy, ct.Mean(), ct.Quantile(0.99), charges[0], charges[1])
		rep.Values["mean-completion/"+policy] = ct.Mean()
		rep.Values["p99-completion/"+policy] = ct.Quantile(0.99)
	}
	rep.addTable(tbl)
	// Headline ratios: the paper reports the second (backup) circuit's
	// charging volume at 3x (native) and 2x (localized) that of P4P.
	rep.Values["charge-ratio-circuit2/native-vs-p4p"] = metrics.Ratio(
		rep.Values["charging-mb/native/circuit2"], rep.Values["charging-mb/p4p/circuit2"])
	rep.Values["charge-ratio-circuit2/localized-vs-p4p"] = metrics.Ratio(
		rep.Values["charging-mb/localized/circuit2"], rep.Values["charging-mb/p4p/circuit2"])
	return rep
}

// runInterdomainPolicy runs one Figure 10 swarm under one policy: a
// self-contained cell owning its selector, engine, and iTracker. veBps
// is shared read-only across cells.
func runInterdomainPolicy(policy string, g *topology.Graph, r *topology.Routing, n int, watch []topology.LinkID, veBps map[topology.LinkID]float64, opt Options) *p2psim.Result {
	cfg := p2psim.Config{
		Graph:            g,
		Routing:          r,
		Seed:             opt.Seed,
		FileBytes:        12 << 20,
		WatchLedgers:     &p2psim.LedgerConfig{Links: watch, IntervalSec: 10},
		TCPWindowBytes:   32 << 10,
		ReselectInterval: 20,
	}
	switch policy {
	case policyNative:
		cfg.Selector = apptracker.Random{}
	case policyLocalized:
		cfg.Selector = delaySelector(r, opt.Seed+3)
	case policyP4P:
		engine := core.NewEngine(g, r, core.Config{Objective: core.MinimizeMLU, StepSize: 0.3})
		for e, ve := range veBps {
			engine.SetVirtualCapacity(e, ve)
			// Warm start: the provider prices its billing-sensitive
			// circuits from historical data before any swarm traffic
			// arrives; the super-gradient relaxes the price while
			// observed traffic stays under v_e.
			engine.SetPrice(e, 1.0)
		}
		// Both virtual ISPs run iTrackers; a single engine over the
		// shared physical graph plays both, serving each AS the same
		// external view.
		tr1 := itracker.New(itracker.Config{Name: "virtual-isp-west", ASN: 1}, engine, nil)
		cfg.Selector = &apptracker.P4P{Views: newLiveViews(tr1)}
		cfg.MeasureInterval = 5
		cfg.OnMeasure = func(now float64, rates []float64) { tr1.ObserveAndUpdate(rates) }
	default:
		panic("experiments: unknown policy " + policy)
	}
	sim := p2psim.New(cfg)
	pids := g.AggregationPIDs()
	// Clients carry their node's ASN so the staged selection's
	// inter-AS stage engages.
	addInterdomainClients(sim, g, pids, n, opt.Seed+7)
	return sim.Run()
}

func metricName(prefix string, idx int) string {
	return prefix + string(rune('1'+idx))
}

// addInterdomainClients spreads clients over both virtual ISPs with the
// Abilene population weights, tagging each with its PID's ASN, plus a
// seed in each ISP (the paper co-locates seeds; we keep one per side so
// both components can bootstrap).
func addInterdomainClients(sim *p2psim.Sim, g *topology.Graph, pids []topology.PID, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	seeded := map[int]bool{}
	for _, pid := range pids {
		asn := g.Node(pid).ASN
		if !seeded[asn] {
			sim.AddClient(p2psim.ClientSpec{PID: pid, ASN: asn, UpBps: 800e3, DownBps: 800e3, IsSeed: true, Class: "seed"})
			seeded[asn] = true
		}
	}
	weights := map[string]float64{
		"NewYork": 0.22, "WashingtonDC": 0.18, "Chicago": 0.12,
		"LosAngeles": 0.12, "Atlanta": 0.09, "Indianapolis": 0.05,
		"Houston": 0.06, "Denver": 0.05, "KansasCity": 0.04,
		"Seattle": 0.04, "Sunnyvale": 0.03,
	}
	var cum []float64
	total := 0.0
	for _, pid := range pids {
		w := weights[g.Node(pid).Name]
		if w == 0 {
			w = 0.03
		}
		total += w
		cum = append(cum, total)
	}
	for i := 0; i < n; i++ {
		x := rng.Float64() * total
		k := 0
		for k < len(cum)-1 && cum[k] < x {
			k++
		}
		pid := pids[k]
		sim.AddClient(p2psim.ClientSpec{
			PID:     pid,
			ASN:     g.Node(pid).ASN,
			UpBps:   100e6,
			DownBps: 100e6,
			JoinAt:  300 * float64(i) / float64(n),
		})
	}
}
