package experiments

import (
	"math/rand"
	"sync"

	"p4p/internal/fieldtest"
	"p4p/internal/metrics"
	"p4p/internal/topology"
)

// fieldPair runs the two parallel field-test swarms once per (scale,
// seed) and caches the results: Figure 11, Tables 2-3 and Figure 12 all
// read the same deployment.
var fieldCache sync.Map // key -> *fieldPairResult

type fieldPairKey struct {
	scale float64
	seed  int64
}

type fieldPairResult struct {
	native, p4p *fieldtest.Result
}

func runFieldPair(opt Options) *fieldPairResult {
	// The field-test emulation always runs at its deployment scale: the
	// staged quotas are availability-capped (Section 6.2), so shrinking
	// the ISP-B population would change localization for structural
	// rather than policy reasons, and shifting the ISP-B fraction would
	// distort the supply pools. The bucket-level fluid model makes the
	// full eleven-day window cheap anyway (a few seconds).
	key := fieldPairKey{1, opt.Seed}
	if v, ok := fieldCache.Load(key); ok {
		return v.(*fieldPairResult)
	}
	g := topology.ISPB()
	r := topology.ComputeRouting(g)
	// The two parallel deployments are independent cells with disjoint
	// seeds; fan them across the worker pool.
	cfgs := []fieldtest.Config{
		{Graph: g, Routing: r, Policy: fieldtest.Native, Seed: opt.Seed},
		{Graph: g, Routing: r, Policy: fieldtest.P4P, Seed: opt.Seed + 1},
	}
	results := fieldtest.RunMany(cfgs, opt.forEachCell)
	res := &fieldPairResult{native: results[0], p4p: results[1]}
	fieldCache.Store(key, res)
	return res
}

// Figure11SwarmStats reproduces Figure 11: the sizes of the two parallel
// swarms over the eleven-day window.
func Figure11SwarmStats(opt Options) *Report {
	opt = opt.withDefaults()
	rep := newReport("F11", "Field-test swarm size statistics (Figure 11)")
	pair := runFieldPair(opt)
	for name, res := range map[string]*fieldtest.Result{"native": pair.native, "p4p": pair.p4p} {
		stride := len(res.SwarmSize)/64 + 1
		for i, pt := range res.SwarmSize {
			if i%stride == 0 {
				rep.Series["swarm-size/"+name] = append(rep.Series["swarm-size/"+name],
					[2]float64{pt.TSec / 86400, float64(pt.Count)})
			}
		}
		peak, peakT := res.PeakSwarmSize()
		rep.Values["peak-size/"+name] = float64(peak)
		rep.Values["peak-day/"+name] = peakT / 86400
	}
	rep.note("paper: swarms peak within the first 3 days, then decay; the two parallel swarms track each other")
	return rep
}

// Table2FieldTestTraffic reproduces Table 2: overall traffic volumes
// between ISP-B and the rest of the Internet, native vs P4P.
func Table2FieldTestTraffic(opt Options) *Report {
	opt = opt.withDefaults()
	rep := newReport("T2", "Overall traffic statistics of field tests (Table 2)")
	pair := runFieldPair(opt)
	rows := []struct {
		label string
		key   [2]string
	}{
		{"External <-> External", [2]string{"ext", "ext"}},
		{"External -> ISP-B", [2]string{"ext", "ispb"}},
		{"ISP-B -> External", [2]string{"ispb", "ext"}},
		{"ISP-B <-> ISP-B", [2]string{"ispb", "ispb"}},
	}
	tbl := &metrics.Table{Header: []string{"flow", "Native bytes", "P4P bytes", "Ratio (Native:P4P)"}}
	var totN, totP float64
	for _, row := range rows {
		nv := pair.native.ASMatrix[row.key]
		pv := pair.p4p.ASMatrix[row.key]
		totN += nv
		totP += pv
		ratio := metrics.Ratio(nv, pv)
		tbl.AddRow(row.label, nv, pv, ratio)
		rep.Values["ratio/"+row.key[0]+"->"+row.key[1]] = ratio
	}
	tbl.AddRow("Total", totN, totP, metrics.Ratio(totN, totP))
	rep.Values["ratio/total"] = metrics.Ratio(totN, totP)
	rep.addTable(tbl)
	rep.note("paper ratios: ext<->ext 0.99, ext->ISP-B 1.53, ISP-B->ext 1.70, ISP-B<->ISP-B 0.15, total 1.01")
	return rep
}

// Table3FieldTestInternal reproduces Table 3: ISP-B internal traffic
// split into same-metro and cross-metro volumes.
func Table3FieldTestInternal(opt Options) *Report {
	opt = opt.withDefaults()
	rep := newReport("T3", "Internal traffic statistics of field tests (Table 3)")
	pair := runFieldPair(opt)
	tbl := &metrics.Table{Header: []string{"swarm", "Total", "Cross-metro", "Same-metro", "% Localization"}}
	for name, res := range map[string]*fieldtest.Result{"Native": pair.native, "P4P": pair.p4p} {
		total := res.SameMetroBytes + res.CrossMetroBytes
		tbl.AddRow(name, total, res.CrossMetroBytes, res.SameMetroBytes, res.LocalizationPercent())
		rep.Values["localization-pct/"+name] = res.LocalizationPercent()
	}
	rep.addTable(tbl)
	rep.note("paper: 6.27%% (Native) -> 57.98%% (P4P)")
	return rep
}

// Figure12aUnitBDP reproduces Figure 12a: the average number of backbone
// links a unit of ISP-B-internal P2P traffic traverses.
func Figure12aUnitBDP(opt Options) *Report {
	opt = opt.withDefaults()
	rep := newReport("F12a", "Average unit bandwidth-distance product (Figure 12a)")
	pair := runFieldPair(opt)
	tbl := &metrics.Table{Header: []string{"swarm", "unit BDP", "metro hops"}}
	tbl.AddRow("Native", pair.native.UnitBDP, pair.native.MetroHops)
	tbl.AddRow("P4P", pair.p4p.UnitBDP, pair.p4p.MetroHops)
	rep.addTable(tbl)
	rep.Values["unit-bdp/native"] = pair.native.UnitBDP
	rep.Values["unit-bdp/p4p"] = pair.p4p.UnitBDP
	rep.Values["unit-bdp-reduction"] = metrics.Ratio(pair.native.UnitBDP, pair.p4p.UnitBDP)
	rep.Values["metro-hops/native"] = pair.native.MetroHops
	rep.Values["metro-hops/p4p"] = pair.p4p.MetroHops
	rep.note("paper: 5.5 -> 0.89 (the average backbone distance between ISP-B PID pairs is 6.2; ours is ~5.0)")
	return rep
}

// Figure12bCompletion reproduces Figure 12b: completion-time CDFs of all
// ISP-B clients.
func Figure12bCompletion(opt Options) *Report {
	opt = opt.withDefaults()
	rep := newReport("F12b", "Field-test completion time, all ISP-B clients (Figure 12b)")
	pair := runFieldPair(opt)
	for name, res := range map[string]*fieldtest.Result{"native": pair.native, "p4p": pair.p4p} {
		cdf := metrics.NewCDF(res.CompletionDurations("", true))
		rep.Series["completion-cdf/"+name] = cdf.Points(20)
		rep.Values["mean-completion/"+name] = cdf.Mean()
	}
	rep.Values["improvement-pct"] = metrics.ImprovementPercent(
		rep.Values["mean-completion/native"], rep.Values["mean-completion/p4p"])
	rep.note("paper: 9460 s (Native) vs 7312 s (P4P), a 23%% improvement")
	return rep
}

// Figure12cFTTP reproduces Figure 12c: completion-time CDFs of the FTTP
// clients in ISP-B.
func Figure12cFTTP(opt Options) *Report {
	opt = opt.withDefaults()
	rep := newReport("F12c", "Field-test completion time, FTTP clients (Figure 12c)")
	pair := runFieldPair(opt)
	for name, res := range map[string]*fieldtest.Result{"native": pair.native, "p4p": pair.p4p} {
		cdf := metrics.NewCDF(res.CompletionDurations("fttp", true))
		rep.Series["fttp-completion-cdf/"+name] = cdf.Points(20)
		rep.Values["mean-fttp-completion/"+name] = cdf.Mean()
	}
	rep.Values["native-over-p4p"] = metrics.Ratio(
		rep.Values["mean-fttp-completion/native"], rep.Values["mean-fttp-completion/p4p"])
	rep.note("paper: 4164 s (Native) vs 2481 s (P4P); Native 68%% higher")
	return rep
}

// MetroHopsClaim covers the Section 1 field observation (X1): each P2P
// bit traversed 5.5 metro-hops on a major carrier; P4P-style selection
// reduces it to 0.89 without hurting completion time.
func MetroHopsClaim(opt Options) *Report {
	opt = opt.withDefaults()
	rep := newReport("X1", "Metro-hop reduction claim (Section 1)")
	pair := runFieldPair(opt)
	rep.Values["metro-hops/native"] = pair.native.MetroHops
	rep.Values["metro-hops/p4p"] = pair.p4p.MetroHops
	rep.Values["mean-completion/native"] = pair.native.MeanCompletionSec("", true)
	rep.Values["mean-completion/p4p"] = pair.p4p.MeanCompletionSec("", true)
	rep.note("paper: 5.5 metro-hops -> 0.89 without degrading application performance")
	return rep
}

// SwarmTailClaim covers the Section 8 scalability measurement (X4): of
// 34,721 movie swarms crawled from thepiratebay.org, only 0.72%% had
// more than one hundred leechers. We sample the same count from the
// calibrated heavy-tailed swarm-size distribution.
func SwarmTailClaim(opt Options) *Report {
	opt = opt.withDefaults()
	rep := newReport("X4", "Swarm-size tail (Section 8)")
	const totalSwarms = 34721
	rng := rand.New(rand.NewSource(opt.Seed))
	over100 := 0
	sum := 0.0
	for i := 0; i < totalSwarms; i++ {
		s := fieldtest.SampleSwarmSize(rng)
		sum += float64(s)
		if s > 100 {
			over100++
		}
	}
	pct := 100 * float64(over100) / float64(totalSwarms)
	rep.Values["swarms"] = totalSwarms
	rep.Values["over-100-leechers-pct"] = pct
	rep.Values["mean-size"] = sum / totalSwarms
	rep.note("paper: 0.72%% of 34,721 swarms exceeded 100 leechers")
	return rep
}
