package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"p4p/internal/charging"
	"p4p/internal/core"
	"p4p/internal/itracker"
	"p4p/internal/metrics"
	"p4p/internal/topology"
	"p4p/internal/traffic"
)

// SuperGradientConvergence is experiment X2: Proposition 1 in action.
// An application session repeatedly solves its local bandwidth-matching
// program against the current p-distances; the iTracker updates prices
// by projected super-gradient; the time-averaged traffic pattern's MLU
// approaches the centralized LP optimum of Figure 4.
func SuperGradientConvergence(opt Options) *Report {
	opt = opt.withDefaults()
	rep := newReport("X2", "Dual decomposition convergence (Section 5, Proposition 1)")
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	pids := g.AggregationPIDs()
	rng := rand.New(rand.NewSource(opt.Seed))
	s := core.Session{PIDs: pids}
	for range pids {
		s.Up = append(s.Up, (0.5+rng.Float64())*2e9)
		s.Down = append(s.Down, (0.5+rng.Float64())*2e9)
	}
	bg := make([]float64, g.NumLinks())
	optAlpha, _, err := core.OptimalMLU(r, bg, []core.Session{s}, 1.0)
	if err != nil {
		rep.note("OptimalMLU failed: %v", err)
		return rep
	}

	e := core.NewEngine(g, r, core.Config{Objective: core.MinimizeMLU, StepSize: 0.05})
	iters := opt.scaled(200)
	avgLoads := make([]float64, g.NumLinks())
	for it := 1; it <= iters; it++ {
		view := e.Matrix(pids)
		tm, err := core.MatchTraffic(view, s, 1.0, nil)
		if err != nil {
			rep.note("MatchTraffic failed at iteration %d: %v", it, err)
			return rep
		}
		loads := make([]float64, g.NumLinks())
		core.LinkLoads(r, pids, tm, loads)
		for i := range avgLoads {
			avgLoads[i] += (loads[i] - avgLoads[i]) / float64(it)
		}
		e.ObserveTraffic(loads)
		e.Update()
		if it%10 == 0 || it == 1 {
			mlu := mluOf(g, avgLoads)
			rep.Series["avg-mlu"] = append(rep.Series["avg-mlu"], [2]float64{float64(it), mlu})
		}
	}
	final := mluOf(g, avgLoads)
	rep.Values["optimal-mlu"] = optAlpha
	rep.Values["decomposed-avg-mlu"] = final
	rep.Values["gap-ratio"] = metrics.Ratio(final, optAlpha)
	rep.note("time-averaged MLU after %d iterations vs the centralized LP optimum", iters)
	return rep
}

func mluOf(g *topology.Graph, loads []float64) float64 {
	mlu := 0.0
	for i, l := range g.Links() {
		if u := loads[i] / l.CapacityBps; u > mlu {
			mlu = u
		}
	}
	return mlu
}

// ChargingPrediction is experiment X3: Section 6.1's observation that a
// pure sliding window over/under-estimates the charging volume when the
// previous period's level differs from the current one, while the
// hybrid window tracks it.
func ChargingPrediction(opt Options) *Report {
	opt = opt.withDefaults()
	rep := newReport("X3", "Charging-volume prediction (Section 6.1)")
	iPer := 288 * 7 // one week as the charging period, 5-minute intervals
	model := charging.Model{Q: 0.95, PeriodIntervals: iPer}
	hybrid := &charging.Predictor{Model: model, WarmupIntervals: 288}

	tbl := &metrics.Table{Header: []string{"level shift", "truth", "hybrid err %", "sliding err %"}}
	for _, shift := range []float64{0.25, 0.5, 2, 4} {
		cfg1 := traffic.DefaultConfig(1e9)
		cfg1.Seed = opt.Seed
		period1 := traffic.Generate(cfg1, iPer)
		cfg2 := cfg1
		cfg2.MeanBps = 1e9 * shift
		cfg2.Seed = opt.Seed + 1
		period2 := traffic.Generate(cfg2, iPer)
		// Observe period 1 fully and 60% of period 2.
		hist := append(append([]float64{}, period1...), period2[:iPer*6/10]...)
		truth := charging.Percentile(period2, model.Q)
		hybridPred := hybrid.PredictChargingVolume(hist)
		sliding := charging.Percentile(hist[len(hist)-iPer:], model.Q)
		hErr := 100 * math.Abs(hybridPred-truth) / truth
		sErr := 100 * math.Abs(sliding-truth) / truth
		tbl.AddRow(shift, truth, hErr, sErr)
		rep.Values[fmt.Sprintf("hybrid-err-pct/shift=%.2g", shift)] = hErr
		rep.Values[fmt.Sprintf("sliding-err-pct/shift=%.2g", shift)] = sErr
	}
	rep.addTable(tbl)
	rep.note("pure sliding windows mix the previous period's level into the estimate")
	return rep
}

// AblationBeta is ablation A1: the efficiency factor beta of eq. (6).
// Lower beta lets the session trade total matched volume for network
// efficiency: cost and achievable MLU fall with beta.
func AblationBeta(opt Options) *Report {
	opt = opt.withDefaults()
	rep := newReport("A1", "Ablation: efficiency factor beta (eq. 6)")
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	pids := g.AggregationPIDs()
	rng := rand.New(rand.NewSource(opt.Seed))
	s := core.Session{PIDs: pids}
	for range pids {
		s.Up = append(s.Up, (0.5+rng.Float64())*2e9)
		s.Down = append(s.Down, (0.5+rng.Float64())*2e9)
	}
	view := core.HopCountView(r, pids)
	opt0, err := core.MaxMatching(s)
	if err != nil {
		rep.note("MaxMatching failed: %v", err)
		return rep
	}
	tbl := &metrics.Table{Header: []string{"beta", "shipped Gbps", "cost (hop-weighted Gbps)", "MLU"}}
	for _, beta := range []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5} {
		tm, err := core.MatchTraffic(view, s, beta, nil)
		if err != nil {
			rep.note("beta=%v failed: %v", beta, err)
			continue
		}
		shipped := 0.0
		for a := range tm {
			for b := range tm[a] {
				shipped += tm[a][b]
			}
		}
		cost := view.Total(tm)
		loads := make([]float64, g.NumLinks())
		core.LinkLoads(r, pids, tm, loads)
		mlu := mluOf(g, loads)
		tbl.AddRow(beta, shipped/1e9, cost/1e9, mlu)
		rep.Values[fmt.Sprintf("cost-gbps/beta=%.1f", beta)] = cost / 1e9
		rep.Values[fmt.Sprintf("mlu/beta=%.1f", beta)] = mlu
		rep.Values[fmt.Sprintf("shipped-frac/beta=%.1f", beta)] = shipped / opt0
	}
	rep.addTable(tbl)
	return rep
}

// AblationAggregation is ablation A3: PID aggregation granularity. The
// finest granularity (one PID per client) is precise but forces the
// iTracker to answer per-client queries and reveals client locations;
// PoP aggregation shrinks both the view and the query load by orders of
// magnitude while preserving the distances (clients at the same PoP
// share routes).
func AblationAggregation(opt Options) *Report {
	opt = opt.withDefaults()
	rep := newReport("A3", "Ablation: PID aggregation granularity (Section 4)")
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	clientsPerPoP := opt.scaled(100)
	pops := g.NumNodes()
	totalClients := clientsPerPoP * pops

	engine := core.NewEngine(g, r, core.Config{})
	tr := itracker.New(itracker.Config{Name: "agg", ASN: 1}, engine, nil)

	// PoP-level: one appTracker query serves every client until prices
	// change.
	if _, err := tr.Distances(""); err != nil {
		rep.note("distance query failed: %v", err)
		return rep
	}
	popQueries, _ := tr.Stats()
	popViewCells := pops * pops

	// Client-level: every client must query for its own (dynamic) PID
	// row, and the full mesh squares with the client count.
	clientQueries := int64(totalClients)
	clientViewCells := totalClients * totalClients

	tbl := &metrics.Table{Header: []string{"granularity", "PIDs", "view cells", "queries"}}
	tbl.AddRow("per-client", totalClients, clientViewCells, clientQueries)
	tbl.AddRow("per-PoP", pops, popViewCells, popQueries)
	rep.addTable(tbl)
	rep.Values["view-cells-ratio"] = float64(clientViewCells) / float64(popViewCells)
	rep.Values["query-ratio"] = float64(clientQueries) / float64(popQueries)

	// Distance fidelity: clients at one PoP share routes, so PoP
	// aggregation loses nothing for PoP-homed clients.
	view, _ := tr.Distances("")
	maxDev := 0.0
	for a := range view.PIDs {
		for b := range view.PIDs {
			if a == b {
				continue
			}
			// A per-client matrix would replicate this exact value for
			// every client pair homed at (a, b); deviation is zero by
			// construction. Recorded for completeness.
			_ = view.D[a][b]
		}
	}
	rep.Values["distance-deviation"] = maxDev
	rep.note("%d clients across %d PoPs; per-client PIDs square the view and force per-client queries", totalClients, pops)
	return rep
}
