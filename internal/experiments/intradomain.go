package experiments

import (
	"fmt"
	"math/rand"

	"p4p/internal/apptracker"
	"p4p/internal/core"
	"p4p/internal/itracker"
	"p4p/internal/metrics"
	"p4p/internal/p2psim"
	"p4p/internal/topology"
)

// Table1Networks reproduces Table 1: the networks evaluated.
func Table1Networks(opt Options) *Report {
	_ = opt.withDefaults()
	r := newReport("T1", "Summary of networks evaluated (Table 1)")
	tbl := &metrics.Table{Header: []string{"Network", "Region", "Aggregation", "#Nodes", "#Links", "Usage"}}
	rows := []struct {
		g      *topology.Graph
		region string
		level  string
		usage  string
	}{
		{topology.Abilene(), "US", "router-level", "Internet experiments, simulation"},
		{topology.ISPA(), "US", "PoP-level", "simulation"},
		{topology.ISPB(), "US", "PoP-level", "Internet experiments"},
		{topology.ISPC(), "International", "PoP-level", "Internet experiments"},
	}
	for _, row := range rows {
		tbl.AddRow(row.g.Name, row.region, row.level, row.g.NumNodes(), row.g.NumLinks(), row.usage)
		r.Values["nodes/"+row.g.Name] = float64(row.g.NumNodes())
	}
	r.addTable(tbl)
	return r
}

// intradomainRun is one swarm under one policy with full measurement.
type intradomainRun struct {
	policy     string
	result     *p2psim.Result
	watchBytes float64 // cumulative bytes on the protected/bottleneck link
}

// runIntradomainSwarm runs one policy on a topology with the MLU
// iTracker in the loop for P4P.
func runIntradomainSwarm(policy string, g *topology.Graph, r *topology.Routing, n int, fileBytes int64, seedUpBps float64, seed int64, protect []topology.LinkID, gamma float64) *intradomainRun {
	asn := g.Node(0).ASN
	cfg := p2psim.Config{
		Graph:          g,
		Routing:        r,
		Seed:           seed,
		FileBytes:      fileBytes,
		SampleInterval: 2,
		WatchLinks:     protect,
		TCPWindowBytes: 32 << 10,
		// All policies re-query the tracker periodically, so evolving
		// p-distances steer running swarms (the appTracker "periodically
		// obtains p-distances from iTrackers").
		ReselectInterval: 20,
	}
	switch policy {
	case policyNative:
		cfg.Selector = apptracker.Random{}
	case policyLocalized:
		cfg.Selector = delaySelector(r, seed+3)
	case policyP4P:
		if len(protect) > 0 {
			// Figure 6 mode: protect one link.
			pv := newProtectedLinkViews(r, protect)
			cfg.Selector = &apptracker.P4P{Views: pv, Config: apptracker.P4PConfig{Gamma: gamma}}
			cfg.MeasureInterval = 10
			cfg.OnMeasure = func(now float64, rates []float64) { pv.Observe(rates) }
		} else {
			// MLU objective via the dual engine.
			engine := core.NewEngine(g, r, core.Config{Objective: core.MinimizeMLU, StepSize: 0.3})
			tr := itracker.New(itracker.Config{Name: g.Name, ASN: asn}, engine, nil)
			cfg.Selector = &apptracker.P4P{Views: newLiveViews(tr), Config: apptracker.P4PConfig{Gamma: gamma}}
			cfg.MeasureInterval = 2
			cfg.OnMeasure = func(now float64, rates []float64) { tr.ObserveAndUpdate(rates) }
		}
	default:
		panic("experiments: unknown policy " + policy)
	}
	sim := p2psim.New(cfg)
	pids := g.AggregationPIDs()
	spreadClients(sim, pids, asn, n, 100e6, 100e6, seedUpBps, 300, rand.New(rand.NewSource(seed+1)))
	res := sim.Run()
	run := &intradomainRun{policy: policy, result: res}
	if len(protect) > 0 {
		// The protected circuit's volume: the max over its directions,
		// matching the paper's per-link bottleneck-traffic bars.
		for _, e := range protect {
			if v := res.LinkBytes[e]; v > run.watchBytes {
				run.watchBytes = v
			}
		}
	} else {
		_, run.watchBytes = res.BottleneckTraffic()
	}
	return run
}

// Figure6BitTorrentInternet reproduces the PlanetLab BitTorrent
// experiments of Section 7.2 (Figure 6): three parallel swarms of 160
// university clients sharing a 12 MB file with a 100 KBps seed, and an
// iTracker protecting the high-utilization Washington DC -> New York
// link. Reported: per-client completion-time CDFs (6a) and P2P traffic
// on the protected bottleneck link (6b).
func Figure6BitTorrentInternet(opt Options) *Report {
	opt = opt.withDefaults()
	rep := newReport("F6", "BitTorrent Internet experiments (Figure 6)")
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	protect := protectedCircuit(g)
	n := opt.scaled(160)
	rep.note("swarm %d clients, 12 MB file, 100 KBps seed, protected circuit WashingtonDC<->NewYork", n)

	tbl := &metrics.Table{Header: []string{"policy", "mean completion s", "p95 completion s", "bottleneck MB"}}
	// The three policies are independent cells: each owns its selector,
	// iTracker, and RNGs, so they fan across the worker pool and the
	// report is assembled in the fixed policy order below.
	policies := []string{policyP4P, policyLocalized, policyNative}
	runs := make([]*intradomainRun, len(policies))
	opt.forEachCell(len(policies), func(i int) {
		runs[i] = runIntradomainSwarm(policies[i], g, r, n, 12<<20, 100e3*8, opt.Seed, protect, 0.5)
	})
	for i, policy := range policies {
		run := runs[i]
		ct := run.result.CompletionTimes()
		cdf := metrics.NewCDF(ct)
		rep.Series["completion-cdf/"+policy] = cdf.Points(20)
		mb := run.watchBytes / (1 << 20)
		tbl.AddRow(policy, cdf.Mean(), cdf.Quantile(0.95), mb)
		rep.Values["mean-completion/"+policy] = cdf.Mean()
		rep.Values["bottleneck-mb/"+policy] = mb
	}
	rep.addTable(tbl)
	rep.Values["bottleneck-ratio/native-vs-p4p"] = metrics.Ratio(
		rep.Values["bottleneck-mb/"+policyNative], rep.Values["bottleneck-mb/"+policyP4P])
	rep.Values["bottleneck-ratio/localized-vs-p4p"] = metrics.Ratio(
		rep.Values["bottleneck-mb/"+policyLocalized], rep.Values["bottleneck-mb/"+policyP4P])
	rep.Values["completion-improvement-pct/p4p-vs-native"] = metrics.ImprovementPercent(
		rep.Values["mean-completion/"+policyNative], rep.Values["mean-completion/"+policyP4P])
	return rep
}

// Figure7SwarmSize reproduces the swarm-size sweep of Figure 7 on
// Abilene: average completion time for swarms of 200-800 peers (7a) and
// the bottleneck link utilization over time at swarm size 700 (7b).
func Figure7SwarmSize(opt Options) *Report {
	return swarmSizeSweep(opt, "F7", topology.Abilene(), false)
}

// Figure8ISPA repeats the sweep on the ISP-A PoP-level topology
// (Figure 8), reporting values normalized by native's maximum as the
// paper does.
func Figure8ISPA(opt Options) *Report {
	return swarmSizeSweep(opt, "F8", topology.ISPA(), true)
}

func swarmSizeSweep(opt Options, id string, g *topology.Graph, normalize bool) *Report {
	opt = opt.withDefaults()
	rep := newReport(id, fmt.Sprintf("Swarm-size sweep on %s (Figure %s)", g.Name, id[1:]))
	r := topology.ComputeRouting(g)
	sizes := []int{200, 300, 400, 500, 600, 700, 800}
	utilSize := 700
	// The paper's simulations share a 256 MB file in 256 KB pieces over
	// 100 Mbps access links with a 1 Gbps seed.
	rep.note("topology %s, 256 MB file, swarm sizes %v scaled by %.2f", g.Name, sizes, opt.Scale)

	tbl := &metrics.Table{Header: []string{"swarm", "native s", "localized s", "p4p s"}}
	type key struct {
		policy string
		size   int
	}
	// Every (size, policy) pair is an independent simulation cell with
	// its own seed (opt.Seed+size), so the whole sweep fans across the
	// worker pool; results land in a slice indexed by cell and the
	// table and series are assembled afterward in the original
	// deterministic (size, policy) order.
	policies := []string{policyNative, policyLocalized, policyP4P}
	runs := make([]*intradomainRun, len(sizes)*len(policies))
	opt.forEachCell(len(runs), func(i int) {
		size, policy := sizes[i/len(policies)], policies[i%len(policies)]
		runs[i] = runIntradomainSwarm(policy, g, r, opt.scaled(size), 256<<20, 1e9, opt.Seed+int64(size), nil, 1.0)
	})
	means := map[key]float64{}
	var peakUtil = map[string]float64{}
	for si, size := range sizes {
		n := opt.scaled(size)
		row := []interface{}{n}
		for pi, policy := range policies {
			run := runs[si*len(policies)+pi]
			mean := meanOrNaN(run.result.CompletionTimes())
			means[key{policy, size}] = mean
			row = append(row, mean)
			rep.Series["completion/"+policy] = append(rep.Series["completion/"+policy], [2]float64{float64(n), mean})
			if size == utilSize {
				for _, s := range run.result.Samples {
					rep.Series["utilization/"+policy] = append(rep.Series["utilization/"+policy], [2]float64{s.T, s.MaxUtil * 100})
				}
				peakUtil[policy] = run.result.PeakUtilization()
			}
		}
		tbl.AddRow(row...)
	}
	rep.addTable(tbl)
	// Headline numbers: average improvement across sizes, peak
	// utilization ratio at the 700-peer point.
	var impSum float64
	for _, size := range sizes {
		impSum += metrics.ImprovementPercent(means[key{policyNative, size}], means[key{policyP4P, size}])
	}
	rep.Values["avg-completion-improvement-pct/p4p-vs-native"] = impSum / float64(len(sizes))
	rep.Values["peak-utilization/native"] = peakUtil[policyNative]
	rep.Values["peak-utilization/localized"] = peakUtil[policyLocalized]
	rep.Values["peak-utilization/p4p"] = peakUtil[policyP4P]
	rep.Values["peak-utilization-ratio/native-vs-p4p"] = metrics.Ratio(peakUtil[policyNative], peakUtil[policyP4P])
	rep.Values["peak-utilization-ratio/localized-vs-p4p"] = metrics.Ratio(peakUtil[policyLocalized], peakUtil[policyP4P])
	if normalize {
		// Normalize completion series by native's maximum (Figure 8a).
		maxNative := 0.0
		for _, pt := range rep.Series["completion/"+policyNative] {
			if pt[1] > maxNative {
				maxNative = pt[1]
			}
		}
		if maxNative > 0 {
			for name, series := range rep.Series {
				if len(name) >= 10 && name[:10] == "completion" {
					for i := range series {
						series[i][1] /= maxNative
					}
					rep.Series[name] = series
				}
			}
		}
	}
	return rep
}

// Figure9Liveswarms reproduces the Liveswarms streaming integration
// (Figure 9): 53 clients streaming a 90-minute video for 20 minutes;
// native versus P4P backbone traffic volume, with throughput held.
func Figure9Liveswarms(opt Options) *Report {
	opt = opt.withDefaults()
	rep := newReport("F9", "Liveswarms streaming integration (Figure 9)")
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	n := opt.scaled(53)
	duration := 1200 * opt.Scale
	if duration < 120 {
		duration = 120
	}
	rep.note("%d clients, 90-min 400 kbps stream, %.0f s runs", n, duration)
	tbl := &metrics.Table{Header: []string{"policy", "avg backbone MB", "mean goodput kbps"}}
	// Each policy is one independent streaming cell; both fan across
	// the worker pool and the table is assembled in policy order.
	policies := []string{policyNative, policyP4P}
	results := make([]*p2psim.Result, len(policies))
	opt.forEachCell(len(policies), func(i int) {
		results[i] = runLiveswarmsPolicy(policies[i], g, r, n, duration, opt)
	})
	for i, policy := range policies {
		res := results[i]
		// Average per-backbone-link traffic volume, the paper's metric.
		var totalLinkBytes float64
		for _, v := range res.LinkBytes {
			totalLinkBytes += v
		}
		avgMB := totalLinkBytes / float64(g.NumLinks()) / (1 << 20)
		goodput := res.TotalBytes * 8 / float64(n) / res.Duration / 1e3
		tbl.AddRow(policy, avgMB, goodput)
		rep.Values["avg-backbone-mb/"+policy] = avgMB
		rep.Values["goodput-kbps/"+policy] = goodput
	}
	rep.addTable(tbl)
	rep.Values["backbone-reduction-pct"] = metrics.ImprovementPercent(
		rep.Values["avg-backbone-mb/"+policyNative], rep.Values["avg-backbone-mb/"+policyP4P])
	return rep
}

// runLiveswarmsPolicy runs one Figure 9 streaming swarm under one
// policy: one self-contained cell (own engine, iTracker, and RNGs).
func runLiveswarmsPolicy(policy string, g *topology.Graph, r *topology.Routing, n int, duration float64, opt Options) *p2psim.Result {
	cfg := p2psim.Config{
		Graph:            g,
		Routing:          r,
		Seed:             opt.Seed,
		PieceBytes:       64 << 10,
		MaxTime:          duration,
		ReselectInterval: 20,
		// A small neighbor set keeps selection meaningful at the
		// paper's 53-client swarm size.
		NeighborTarget: 6,
		Streaming:      &p2psim.StreamingConfig{RateBps: 400e3, ContentSec: 90 * 60, WindowSec: 60},
	}
	switch policy {
	case policyNative:
		cfg.Selector = apptracker.Random{}
	case policyP4P:
		// The streaming integration runs against a
		// bandwidth-distance-product iTracker: its exposed distances
		// p_ij + d_ij carry locality even before congestion prices
		// build up, which is what cuts backbone volume for a
		// short-lived streaming session.
		engine := core.NewEngine(g, r, core.Config{Objective: core.MinimizeBDP, StepSize: 0.2})
		tr := itracker.New(itracker.Config{Name: g.Name, ASN: g.Node(0).ASN}, engine, nil)
		cfg.Selector = &apptracker.P4P{Views: newLiveViews(tr), Config: apptracker.P4PConfig{Gamma: 1.0}}
		cfg.MeasureInterval = 10
		cfg.OnMeasure = func(now float64, rates []float64) { tr.ObserveAndUpdate(rates) }
	default:
		panic("experiments: unknown policy " + policy)
	}
	sim := p2psim.New(cfg)
	pids := g.AggregationPIDs()
	spreadClients(sim, pids, g.Node(0).ASN, n, 10e6, 10e6, 20e6, 60, rand.New(rand.NewSource(opt.Seed+2)))
	return sim.Run()
}

// AblationConcave is design-choice ablation A2: the concave transform
// on selection weights (the paper's lightweight robustness constraint,
// eq. 7) versus raw inverse-distance weights, in the Figure 6 setting.
func AblationConcave(opt Options) *Report {
	opt = opt.withDefaults()
	rep := newReport("A2", "Ablation: concave robustness transform (eq. 7)")
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	n := opt.scaled(160)
	tbl := &metrics.Table{Header: []string{"gamma", "mean completion s", "bottleneck MB", "max-PID-share"}}
	// MLU-engine mode: prices spread across links, so the distance
	// matrix has the contrast the transform acts on. The two gamma
	// settings are independent cells.
	gammas := []float64{1.0, 0.5}
	runs := make([]*intradomainRun, len(gammas))
	opt.forEachCell(len(gammas), func(i int) {
		runs[i] = runIntradomainSwarm(policyP4P, g, r, n, 12<<20, 1e9, opt.Seed, nil, gammas[i])
	})
	for i, gamma := range gammas {
		run := runs[i]
		ct := run.result.CompletionTimes()
		// Spread measure: the largest share of traffic received from a
		// single source PID (lower = more diverse = more robust).
		perPID := map[topology.PID]float64{}
		var total float64
		for key, b := range run.result.PIDBytes {
			perPID[key[0]] += b
			total += b
		}
		maxShare := 0.0
		for _, b := range perPID {
			if s := b / total; s > maxShare {
				maxShare = s
			}
		}
		tbl.AddRow(gamma, meanOrNaN(ct), run.watchBytes/(1<<20), maxShare)
		rep.Values[fmt.Sprintf("mean-completion/gamma=%.1f", gamma)] = meanOrNaN(ct)
		rep.Values[fmt.Sprintf("max-pid-share/gamma=%.1f", gamma)] = maxShare
	}
	rep.addTable(tbl)
	return rep
}

// protectedCircuit returns the duplex Washington DC <-> New York circuit
// of Abilene — "one of the most congested links on Abilene most of the
// time" — which the Figure 6 iTracker protects.
func protectedCircuit(g *topology.Graph) []topology.LinkID {
	dc, ok := g.FindNode("WashingtonDC")
	if !ok {
		panic("experiments: Abilene has no WashingtonDC node")
	}
	ny, ok := g.FindNode("NewYork")
	if !ok {
		panic("experiments: Abilene has no NewYork node")
	}
	fwd, ok := g.FindLink(dc, ny)
	if !ok {
		panic("experiments: no WashingtonDC->NewYork link")
	}
	rev, ok := g.FindLink(ny, dc)
	if !ok {
		panic("experiments: no NewYork->WashingtonDC link")
	}
	return []topology.LinkID{fwd, rev}
}
