package experiments

import (
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stepClock advances one second per reading, making serial pool timings
// exactly predictable without any real sleeping.
type stepClock struct{ t time.Time }

func (c *stepClock) now() time.Time {
	c.t = c.t.Add(time.Second)
	return c.t
}

func TestPoolStatsSerialDeterministic(t *testing.T) {
	clk := &stepClock{}
	ps := &PoolStats{nowFn: clk.now}
	o := Options{Parallelism: 1, PoolStats: ps}
	var order []int
	o.forEachCell(3, func(i int) { order = append(order, i) })

	// Reads: beginRun (1s), then per cell start/end (one second apart),
	// then endRun. With one worker: busy = 3s, wall = 7s.
	if got := ps.BusySeconds(); got != 3 {
		t.Errorf("busy = %v, want 3", got)
	}
	if got := ps.WallSeconds(); got != 7 {
		t.Errorf("wall = %v, want 7", got)
	}
	if got := ps.Utilization(); got != 3.0/7.0 {
		t.Errorf("utilization = %v, want 3/7", got)
	}
	if ps.Runs() != 1 {
		t.Errorf("runs = %d, want 1", ps.Runs())
	}
	cells := ps.Cells()
	if len(cells) != 3 {
		t.Fatalf("cells = %d, want 3", len(cells))
	}
	for i, c := range cells {
		if c.Run != 0 || c.Cell != i || c.Seconds != 1 {
			t.Errorf("cell %d = %+v, want {Run:0 Cell:%d Seconds:1}", i, c, i)
		}
	}
	if len(order) != 3 {
		t.Fatalf("fn ran %d times, want 3", len(order))
	}
}

func TestPoolStatsParallelInvariants(t *testing.T) {
	ps := &PoolStats{}
	o := Options{Parallelism: 4, PoolStats: ps}
	const n = 16
	o.forEachCell(n, func(i int) {})
	o.forEachCell(n, func(i int) {})

	if ps.Runs() != 2 {
		t.Fatalf("runs = %d, want 2", ps.Runs())
	}
	cells := ps.Cells()
	if len(cells) != 2*n {
		t.Fatalf("cells = %d, want %d", len(cells), 2*n)
	}
	// Every cell index of every run appears exactly once.
	sort.Slice(cells, func(a, b int) bool {
		if cells[a].Run != cells[b].Run {
			return cells[a].Run < cells[b].Run
		}
		return cells[a].Cell < cells[b].Cell
	})
	for i, c := range cells {
		if c.Run != i/n || c.Cell != i%n || c.Seconds < 0 {
			t.Fatalf("cell record %d = %+v", i, c)
		}
	}
	if u := ps.Utilization(); u < 0 || u > 1.5 {
		t.Errorf("utilization %v outside sane range", u)
	}
	var sb strings.Builder
	if _, err := ps.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "pool: 2 runs, 32 cells") {
		t.Errorf("summary: %q", sb.String())
	}
}

func TestPoolStatsNilSafe(t *testing.T) {
	var ps *PoolStats
	run, start := ps.beginRun()
	ps.recordCell(run, 0, time.Second)
	ps.endRun(start, 4)
	if ps.Utilization() != 0 || ps.Cells() != nil || ps.Runs() != 0 {
		t.Fatal("nil PoolStats must be inert")
	}
	if n, err := ps.WriteTo(&strings.Builder{}); n != 0 || err != nil {
		t.Fatalf("nil WriteTo = (%d, %v)", n, err)
	}
	// Options without PoolStats takes the uninstrumented path. The
	// counter is atomic: two workers run cells concurrently.
	var ran atomic.Int32
	Options{Parallelism: 2}.forEachCell(4, func(i int) { ran.Add(1) })
	if ran.Load() != 4 {
		t.Fatalf("ran %d cells, want 4", ran.Load())
	}
}

// TestPoolStatsDoesNotChangeReports pins the pure-observability
// contract: the same experiment with and without stats attached renders
// byte-identical output.
func TestPoolStatsDoesNotChangeReports(t *testing.T) {
	plain := Figure7SwarmSize(Options{Scale: 0.02, Seed: 42, Parallelism: 4})
	ps := &PoolStats{}
	instrumented := Figure7SwarmSize(Options{Scale: 0.02, Seed: 42, Parallelism: 4, PoolStats: ps})
	got, want := renderReport(t, instrumented), renderReport(t, plain)
	if got != want {
		t.Fatalf("PoolStats changed report bytes:\n--- plain ---\n%s\n--- instrumented ---\n%s", want, got)
	}
	if len(ps.Cells()) == 0 || ps.Runs() == 0 {
		t.Fatal("instrumented run recorded no cells")
	}
}
