package experiments

import (
	"strings"
	"testing"
)

// Experiment tests run at small scale: they assert the paper's shape
// (who wins, direction of effects), not absolute numbers. Full-scale
// runs live in bench_test.go and EXPERIMENTS.md.

func TestOptionsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range scale")
		}
	}()
	Options{Scale: 2}.withDefaults()
}

func TestOptionsScaled(t *testing.T) {
	o := Options{Scale: 0.1}.withDefaults()
	if o.scaled(100) != 10 {
		t.Fatalf("scaled(100) = %d", o.scaled(100))
	}
	if o.scaled(3) != 1 {
		t.Fatal("scaled must floor at 1")
	}
}

func TestReportWriteTo(t *testing.T) {
	rep := newReport("T0", "test report")
	rep.note("a note")
	rep.Values["x"] = 1.5
	rep.Series["s"] = [][2]float64{{1, 2}}
	var b strings.Builder
	if _, err := rep.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"T0", "test report", "a note", "x", "series s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestTable1(t *testing.T) {
	rep := Table1Networks(Options{})
	if rep.Values["nodes/Abilene"] != 11 || rep.Values["nodes/ISP-B"] != 52 {
		t.Fatalf("Table 1 values wrong: %v", rep.Values)
	}
}

func TestFigure6Shape(t *testing.T) {
	rep := Figure6BitTorrentInternet(Options{Scale: 0.6, Seed: 42})
	// The ISP objective must be achieved: P4P carries the least traffic
	// on the protected circuit.
	if rep.Values["bottleneck-ratio/native-vs-p4p"] < 1.3 {
		t.Fatalf("native/p4p bottleneck ratio %v, want > 1.3 (paper > 3)", rep.Values["bottleneck-ratio/native-vs-p4p"])
	}
	if rep.Values["bottleneck-mb/p4p"] >= rep.Values["bottleneck-mb/localized"] {
		t.Fatalf("p4p bottleneck %v not below localized %v",
			rep.Values["bottleneck-mb/p4p"], rep.Values["bottleneck-mb/localized"])
	}
	// All three swarms completed.
	for _, p := range []string{"native", "localized", "p4p"} {
		if rep.Values["mean-completion/"+p] <= 0 {
			t.Fatalf("%s did not complete", p)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	rep := Figure9Liveswarms(Options{Scale: 1, Seed: 7})
	// P4P cuts backbone volume while holding goodput (Figure 9).
	if rep.Values["backbone-reduction-pct"] < 10 {
		t.Fatalf("backbone reduction %v%%, want >= 10 (paper ~60)", rep.Values["backbone-reduction-pct"])
	}
	gN, gP := rep.Values["goodput-kbps/native"], rep.Values["goodput-kbps/p4p"]
	if gP < 0.9*gN {
		t.Fatalf("p4p goodput %v dropped vs native %v", gP, gN)
	}
}

func TestFigure10Shape(t *testing.T) {
	rep := Figure10Interdomain(Options{Scale: 0.5, Seed: 42})
	if rep.Values["charge-ratio-circuit2/native-vs-p4p"] < 1.3 {
		t.Fatalf("native/p4p circuit-2 charge ratio %v, want > 1.3 (paper 3)",
			rep.Values["charge-ratio-circuit2/native-vs-p4p"])
	}
	// P4P routes its residual crossing traffic over the roomier circuit.
	if rep.Values["charging-mb/p4p/circuit2"] > rep.Values["charging-mb/p4p/circuit1"] {
		t.Fatal("p4p should protect the tight circuit 2 harder than circuit 1")
	}
}

func TestFieldTestReports(t *testing.T) {
	opt := Options{Scale: 0.25, Seed: 42}
	t2 := Table2FieldTestTraffic(opt)
	if r := t2.Values["ratio/ext->ext"]; r < 0.8 || r > 1.25 {
		t.Fatalf("ext<->ext ratio %v, want ~1", r)
	}
	if t2.Values["ratio/ispb->ispb"] > 0.8 {
		t.Fatalf("ISP-B internal concentration ratio %v, want well below 1", t2.Values["ratio/ispb->ispb"])
	}
	t3 := Table3FieldTestInternal(opt)
	if t3.Values["localization-pct/P4P"] <= t3.Values["localization-pct/Native"] {
		t.Fatal("P4P must localize more than native")
	}
	f12a := Figure12aUnitBDP(opt)
	if f12a.Values["unit-bdp-reduction"] < 2 {
		t.Fatalf("unit BDP reduction %v, want >= 2 (paper ~6)", f12a.Values["unit-bdp-reduction"])
	}
	f12b := Figure12bCompletion(opt)
	if f12b.Values["improvement-pct"] <= 0 {
		t.Fatalf("completion improvement %v%%, want positive (paper 23)", f12b.Values["improvement-pct"])
	}
	f12c := Figure12cFTTP(opt)
	if f12c.Values["native-over-p4p"] <= 1 {
		t.Fatalf("FTTP native/p4p %v, want > 1 (paper 1.68)", f12c.Values["native-over-p4p"])
	}
	f11 := Figure11SwarmStats(opt)
	if f11.Values["peak-day/native"] > 3 {
		t.Fatalf("native swarm peaked at day %v, want within 3", f11.Values["peak-day/native"])
	}
	x1 := MetroHopsClaim(opt)
	if x1.Values["metro-hops/p4p"] >= x1.Values["metro-hops/native"] {
		t.Fatal("metro hops must fall under P4P")
	}
}

func TestSuperGradientConvergenceShape(t *testing.T) {
	rep := SuperGradientConvergence(Options{Scale: 0.6, Seed: 17})
	if rep.Values["optimal-mlu"] <= 0 {
		t.Fatal("no optimal MLU computed")
	}
	if rep.Values["gap-ratio"] > 1.35 {
		t.Fatalf("decomposition gap %v, want <= 1.35x optimal", rep.Values["gap-ratio"])
	}
}

func TestChargingPredictionShape(t *testing.T) {
	rep := ChargingPrediction(Options{Seed: 42})
	// The hybrid predictor must beat the pure sliding window on the
	// large downward level shift (the paper's failure case).
	if rep.Values["hybrid-err-pct/shift=0.25"] >= rep.Values["sliding-err-pct/shift=0.25"] {
		t.Fatalf("hybrid %v%% not better than sliding %v%%",
			rep.Values["hybrid-err-pct/shift=0.25"], rep.Values["sliding-err-pct/shift=0.25"])
	}
}

func TestSwarmTailShape(t *testing.T) {
	rep := SwarmTailClaim(Options{Seed: 42})
	pct := rep.Values["over-100-leechers-pct"]
	// Paper: 0.72%.
	if pct < 0.4 || pct > 1.1 {
		t.Fatalf("tail percentage %v, want ~0.72", pct)
	}
}

func TestAblationBetaShape(t *testing.T) {
	rep := AblationBeta(Options{Seed: 42})
	// Cost must fall monotonically as beta relaxes.
	prev := rep.Values["cost-gbps/beta=1.0"]
	for _, b := range []string{"0.9", "0.8", "0.7", "0.6", "0.5"} {
		cur := rep.Values["cost-gbps/beta="+b]
		if cur > prev+1e-9 {
			t.Fatalf("cost rose when beta relaxed to %s: %v > %v", b, cur, prev)
		}
		prev = cur
	}
	if rep.Values["shipped-frac/beta=1.0"] < 0.999 {
		t.Fatalf("beta=1 shipped %v of OPT, want 1", rep.Values["shipped-frac/beta=1.0"])
	}
}

func TestAblationAggregationShape(t *testing.T) {
	rep := AblationAggregation(Options{Scale: 0.5, Seed: 42})
	if rep.Values["view-cells-ratio"] < 100 {
		t.Fatalf("view-cells ratio %v, want orders of magnitude", rep.Values["view-cells-ratio"])
	}
	if rep.Values["query-ratio"] < 10 {
		t.Fatalf("query ratio %v, want large", rep.Values["query-ratio"])
	}
}

func TestAblationConcaveShape(t *testing.T) {
	rep := AblationConcave(Options{Scale: 0.4, Seed: 42})
	// The concave transform must spread selection across source PIDs.
	if rep.Values["max-pid-share/gamma=0.5"] > rep.Values["max-pid-share/gamma=1.0"] {
		t.Fatalf("gamma=0.5 share %v not flatter than gamma=1.0 %v",
			rep.Values["max-pid-share/gamma=0.5"], rep.Values["max-pid-share/gamma=1.0"])
	}
}
