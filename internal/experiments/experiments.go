// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7) plus the quantitative side claims, one function
// per artifact. Each experiment returns a Report with the same rows or
// series the paper presents; cmd/p4pexp prints them and bench_test.go
// wraps each in a benchmark. DESIGN.md carries the experiment index and
// EXPERIMENTS.md the paper-vs-measured record.
package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"

	"p4p/internal/apptracker"
	"p4p/internal/core"
	"p4p/internal/itracker"
	"p4p/internal/metrics"
	"p4p/internal/p2psim"
	"p4p/internal/topology"
)

// Options tunes an experiment run.
type Options struct {
	// Scale in (0, 1] shrinks workloads proportionally (swarm sizes,
	// client counts) so tests and quick benches stay fast; 1.0
	// reproduces the paper's sizes.
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Parallelism bounds the worker pool that fans an experiment's
	// independent simulation cells (one (policy, size) pair of a sweep,
	// one policy of a comparison) across goroutines. 0 means
	// GOMAXPROCS; 1 runs strictly serially. Every cell derives its own
	// seed and owns its RNG, selector, engine, and iTracker, and
	// reports are assembled in deterministic cell order afterward, so
	// the output is byte-identical at any parallelism (see
	// TestParallelReportsMatchSerial).
	Parallelism int
	// PoolStats, when non-nil, records per-cell wall times and pool
	// utilization for every forEachCell run. Purely observational: it
	// never changes scheduling or report bytes.
	PoolStats *PoolStats
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Scale < 0 || o.Scale > 1 {
		panic(fmt.Sprintf("experiments: scale %v out of (0, 1]", o.Scale))
	}
	return o
}

func (o Options) scaled(n int) int {
	v := int(float64(n) * o.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// forEachCell runs fn(i) for every cell index in [0, n) on a bounded
// worker pool of o.Parallelism goroutines (GOMAXPROCS when 0). Cells
// must be independent: each writes only its own slot of a result slice
// indexed by i, and the caller assembles tables and series serially in
// cell order afterward, which keeps reports byte-identical to a serial
// run. A panic in any cell is re-raised on the caller's goroutine.
func (o Options) forEachCell(n int, fn func(i int)) {
	workers := o.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	if ps := o.PoolStats; ps != nil {
		run, start := ps.beginRun()
		defer ps.endRun(start, workers)
		inner := fn
		fn = func(i int) {
			cellStart := ps.now()
			inner(i)
			ps.recordCell(run, i, ps.now().Sub(cellStart))
		}
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		idx = make(chan int)
		wg  sync.WaitGroup

		panicMu  sync.Mutex
		panicVal interface{}
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicVal == nil {
								panicVal = r
							}
							panicMu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// Report is one experiment's output.
type Report struct {
	ID    string
	Title string
	// Tables are printed in order.
	Tables []*metrics.Table
	// Series holds named (x, y) lines for the paper's plots.
	Series map[string][][2]float64
	// Values holds the headline numbers (used by tests and
	// EXPERIMENTS.md).
	Values map[string]float64
	// Notes document workload parameters and caveats.
	Notes []string
}

func newReport(id, title string) *Report {
	return &Report{
		ID:     id,
		Title:  title,
		Series: map[string][][2]float64{},
		Values: map[string]float64{},
	}
}

func (r *Report) addTable(t *metrics.Table) { r.Tables = append(r.Tables, t) }

func (r *Report) note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// WriteTo renders the report as text.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	if len(r.Values) > 0 {
		keys := make([]string, 0, len(r.Values))
		for k := range r.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%-40s %s\n", k, metrics.FormatFloat(r.Values[k]))
		}
	}
	if len(r.Series) > 0 {
		keys := make([]string, 0, len(r.Series))
		for k := range r.Series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "series %s:", k)
			for _, pt := range r.Series[k] {
				fmt.Fprintf(&b, " (%s,%s)", metrics.FormatFloat(pt[0]), metrics.FormatFloat(pt[1]))
			}
			b.WriteByte('\n')
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// --- shared simulation scaffolding ---

// policyName labels the three compared systems as the paper does.
const (
	policyNative    = "native"
	policyLocalized = "localized"
	policyP4P       = "p4p"
)

// liveViews adapts an iTracker set to the selector's ViewProvider:
// views refresh automatically because the iTracker caches by engine
// version.
type liveViews struct {
	mu       sync.Mutex
	trackers map[int]*itracker.Server
}

func newLiveViews(trackers ...*itracker.Server) *liveViews {
	m := map[int]*itracker.Server{}
	for _, t := range trackers {
		m[t.ASN()] = t
	}
	return &liveViews{trackers: m}
}

// ViewFor implements apptracker.ViewProvider.
func (v *liveViews) ViewFor(asn int) apptracker.DistanceView {
	v.mu.Lock()
	defer v.mu.Unlock()
	tr, ok := v.trackers[asn]
	if !ok {
		// Fall back to any tracker: an integrator can aggregate multiple
		// iTrackers (Section 3).
		for _, t := range v.trackers {
			tr = t
			break
		}
	}
	if tr == nil {
		return nil
	}
	view, err := tr.Distances("")
	if err != nil {
		return nil
	}
	return view
}

// protectedLinkViews is the Figure 6 iTracker: "the iTracker initially
// assigns 0 to p-distances, and increases the p-distance of the
// protected link if clients use this link." Distances are zero
// everywhere except across the protected link.
type protectedLinkViews struct {
	mu        sync.Mutex
	r         *topology.Routing
	pids      []topology.PID
	protected []topology.LinkID // typically the duplex pair of the circuit
	price     float64
	step      float64
	cached    *core.View
	version   int
}

func newProtectedLinkViews(r *topology.Routing, protected []topology.LinkID) *protectedLinkViews {
	return &protectedLinkViews{
		r:         r,
		pids:      r.Graph().AggregationPIDs(),
		protected: protected,
		step:      1.0,
	}
}

// Observe raises the protected circuit's price when it carries traffic.
func (p *protectedLinkViews) Observe(linkRateBps []float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.protected {
		if linkRateBps[e] > 0 {
			p.price += p.step
			p.version++
			p.cached = nil
			return
		}
	}
}

// ViewFor implements apptracker.ViewProvider.
func (p *protectedLinkViews) ViewFor(asn int) apptracker.DistanceView {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cached != nil {
		return p.cached
	}
	v := &core.View{PIDs: append([]topology.PID(nil), p.pids...), Version: p.version}
	v.D = make([][]float64, len(p.pids))
	for a, i := range p.pids {
		v.D[a] = make([]float64, len(p.pids))
		for b, j := range p.pids {
			if a == b {
				continue
			}
			for _, e := range p.protected {
				if p.r.OnPath(e, i, j) {
					v.D[a][b] = p.price
					break
				}
			}
		}
	}
	p.cached = v
	return v
}

// delaySelector builds the delay-localized baseline: ranking peers by
// measured round-trip delay. Real RTT measurements carry last-mile and
// queueing noise far larger than metro-scale propagation differences,
// so the model adds a deterministic per-measurement jitter; without it,
// delay ranking would resolve same-PoP peers perfectly, which no
// Internet measurement can.
func delaySelector(r *topology.Routing, seed int64) apptracker.Selector {
	jrng := rand.New(rand.NewSource(seed))
	var mu sync.Mutex
	return &apptracker.Localized{Delay: func(a, b apptracker.Node) float64 {
		mu.Lock()
		j := jrng.Float64() * 0.015
		mu.Unlock()
		return r.PropagationDelaySeconds(a.PID, b.PID) + j
	}}
}

// spreadClients adds n leecher clients across the PIDs with joins
// spread over joinWindow seconds, plus one seed at pids[0]. Placement
// follows populationWeights: client density is highly non-uniform in
// practice ("consider the high concentration of clients in certain
// areas such as the northeastern part of US", Section 2), and that skew
// is exactly what makes pure locality-based peering concentrate traffic
// on a few backbone links.
func spreadClients(s *p2psim.Sim, pids []topology.PID, asn, n int, upBps, downBps, seedUpBps, joinWindow float64, rng *rand.Rand) {
	s.AddClient(p2psim.ClientSpec{
		PID: pids[0], ASN: asn, UpBps: seedUpBps, DownBps: seedUpBps, IsSeed: true, Class: "seed",
	})
	weights := populationWeights(s, pids)
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		total += w
		cum[i] = total
	}
	for i := 0; i < n; i++ {
		x := rng.Float64() * total
		k := sort.SearchFloat64s(cum, x)
		if k >= len(pids) {
			k = len(pids) - 1
		}
		s.AddClient(p2psim.ClientSpec{
			PID:     pids[k],
			ASN:     asn,
			UpBps:   upBps,
			DownBps: downBps,
			JoinAt:  joinWindow * float64(i) / float64(n),
		})
	}
}

// populationWeights assigns placement probability per PID. Abilene gets
// a metro-population profile with the northeastern concentration the
// paper calls out; other topologies get a Zipf profile over PIDs.
func populationWeights(s *p2psim.Sim, pids []topology.PID) []float64 {
	g := s.Graph()
	abilene := map[string]float64{
		"NewYork": 0.22, "WashingtonDC": 0.18, "Chicago": 0.12,
		"LosAngeles": 0.12, "Atlanta": 0.09, "Indianapolis": 0.05,
		"Houston": 0.06, "Denver": 0.05, "KansasCity": 0.04,
		"Seattle": 0.04, "Sunnyvale": 0.03,
	}
	out := make([]float64, len(pids))
	isAbilene := g.Name == "Abilene"
	for i, pid := range pids {
		if isAbilene {
			if w, ok := abilene[g.Node(pid).Name]; ok {
				out[i] = w
				continue
			}
		}
		out[i] = 1 / float64(i+1) // Zipf(1)
	}
	return out
}

// meanOrNaN guards empty slices.
func meanOrNaN(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	return metrics.Mean(v)
}
