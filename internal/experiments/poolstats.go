package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// CellTiming is the measured wall time of one simulation cell.
type CellTiming struct {
	Run     int     // forEachCell invocation ordinal within the experiment
	Cell    int     // cell index within that invocation
	Seconds float64 // wall time the cell's fn(i) took
}

// PoolStats, when attached to Options, observes how forEachCell's
// worker pool spends its time: per-cell wall durations, per-run wall
// time, and the busy/capacity utilization ratio. It is pure
// observability — reports stay byte-identical with or without it (see
// TestParallelReportsMatchSerial) — and exists so cmd/p4pexp can show
// whether an experiment is actually filling its workers or serializing
// on a few giant cells. Safe for concurrent use by pool workers.
type PoolStats struct {
	// nowFn is a test seam; nil means time.Now.
	nowFn func() time.Time

	mu       sync.Mutex
	runs     int
	busy     float64 // sum of per-cell wall seconds
	capacity float64 // sum over runs of workers x run wall seconds
	wall     float64 // sum of run wall seconds
	cells    []CellTiming
}

func (p *PoolStats) now() time.Time {
	if p.nowFn != nil {
		return p.nowFn()
	}
	return time.Now()
}

// beginRun opens a new forEachCell accounting window and returns its
// ordinal plus the start time. Nil-safe.
func (p *PoolStats) beginRun() (run int, start time.Time) {
	if p == nil {
		return 0, time.Time{}
	}
	start = p.now()
	p.mu.Lock()
	run = p.runs
	p.runs++
	p.mu.Unlock()
	return run, start
}

// recordCell logs one cell's duration. Nil-safe; called concurrently
// from pool workers.
func (p *PoolStats) recordCell(run, cell int, d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.busy += d.Seconds()
	p.cells = append(p.cells, CellTiming{Run: run, Cell: cell, Seconds: d.Seconds()})
	p.mu.Unlock()
}

// endRun closes a run's accounting window. Nil-safe.
func (p *PoolStats) endRun(start time.Time, workers int) {
	if p == nil {
		return
	}
	elapsed := p.now().Sub(start).Seconds()
	p.mu.Lock()
	p.wall += elapsed
	p.capacity += float64(workers) * elapsed
	p.mu.Unlock()
}

// Cells returns a copy of every recorded cell timing, in record order.
func (p *PoolStats) Cells() []CellTiming {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]CellTiming(nil), p.cells...)
}

// Runs returns how many forEachCell invocations were observed.
func (p *PoolStats) Runs() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.runs
}

// WallSeconds returns the summed wall time of all observed runs.
func (p *PoolStats) WallSeconds() float64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.wall
}

// BusySeconds returns the summed per-cell wall time across all runs.
func (p *PoolStats) BusySeconds() float64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.busy
}

// Utilization returns busy time over pool capacity (workers x wall,
// summed per run): 1.0 means every worker was busy for every run's
// whole duration; low values mean the pool idled waiting on stragglers.
// Returns 0 before any run completes.
func (p *PoolStats) Utilization() float64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.capacity <= 0 {
		return 0
	}
	return p.busy / p.capacity
}

// WriteTo renders a short human-readable summary (used by p4pexp's
// -poolstats flag).
func (p *PoolStats) WriteTo(w io.Writer) (int64, error) {
	if p == nil {
		return 0, nil
	}
	p.mu.Lock()
	runs, wall, busy, capacity := p.runs, p.wall, p.busy, p.capacity
	ncells := len(p.cells)
	var slowest CellTiming
	for _, c := range p.cells {
		if c.Seconds > slowest.Seconds {
			slowest = c
		}
	}
	p.mu.Unlock()
	util := 0.0
	if capacity > 0 {
		util = busy / capacity
	}
	n, err := fmt.Fprintf(w,
		"pool: %d runs, %d cells, wall %.3fs, busy %.3fs, utilization %.1f%%, slowest cell run=%d cell=%d %.3fs\n",
		runs, ncells, wall, busy, util*100, slowest.Run, slowest.Cell, slowest.Seconds)
	return int64(n), err
}
