package experiments

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// renderReport serializes everything a Report carries — notes, table
// rows, sorted values, and series — via WriteTo, so two reports can be
// compared byte-for-byte.
func renderReport(t *testing.T, rep *Report) string {
	t.Helper()
	var b strings.Builder
	if _, err := rep.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestParallelReportsMatchSerial is the harness's determinism contract:
// every cell derives its own seed and owns its RNGs, so fanning cells
// across the worker pool must produce reports byte-identical to
// Parallelism: 1 — same Values, same Series, same table rows. Run under
// `go test -race ./...` (the tier-1 gate) this also race-checks the
// parallel sweeps.
func TestParallelReportsMatchSerial(t *testing.T) {
	cases := []struct {
		name  string
		scale float64
		fn    func(Options) *Report
	}{
		{"F6", 0.2, Figure6BitTorrentInternet},
		{"F7", 0.02, Figure7SwarmSize},
		{"F9", 0.3, Figure9Liveswarms},
		{"F10", 0.2, Figure10Interdomain},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			serial := tc.fn(Options{Scale: tc.scale, Seed: 42, Parallelism: 1})
			parallel := tc.fn(Options{Scale: tc.scale, Seed: 42, Parallelism: 4})
			got, want := renderReport(t, parallel), renderReport(t, serial)
			if got != want {
				t.Fatalf("parallel report differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
			}
		})
	}
}

// TestForEachCellRunsEveryCellOnce checks the pool's scheduling
// contract at several parallelism settings, including more workers
// than cells and the GOMAXPROCS default.
func TestForEachCellRunsEveryCellOnce(t *testing.T) {
	for _, par := range []int{0, 1, 3, 16} {
		const n = 23
		counts := make([]int32, n)
		Options{Parallelism: par}.forEachCell(n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("parallelism %d: cell %d ran %d times", par, i, c)
			}
		}
	}
}

// TestForEachCellPropagatesPanic: a panicking cell must surface on the
// caller's goroutine, like a serial run would, not crash the process.
func TestForEachCellPropagatesPanic(t *testing.T) {
	for _, par := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "cell boom" {
					t.Fatalf("parallelism %d: recovered %v, want cell panic", par, r)
				}
			}()
			Options{Parallelism: par}.forEachCell(8, func(i int) {
				if i == 5 {
					panic("cell boom")
				}
			})
		}()
	}
}

// TestForEachCellBoundsWorkers verifies the pool never runs more cells
// concurrently than the configured parallelism.
func TestForEachCellBoundsWorkers(t *testing.T) {
	const par = 2
	var mu sync.Mutex
	active, peak := 0, 0
	Options{Parallelism: par}.forEachCell(12, func(i int) {
		mu.Lock()
		active++
		if active > peak {
			peak = active
		}
		mu.Unlock()
		mu.Lock()
		active--
		mu.Unlock()
	})
	if peak > par {
		t.Fatalf("observed %d concurrent cells, want <= %d", peak, par)
	}
}
