package experiments

import (
	"reflect"
	"testing"
)

func TestFederationPairDeterministicAndDegrades(t *testing.T) {
	opt := Options{Scale: 0.25, Seed: 42}
	r1 := FederationPair(opt)
	r2 := FederationPair(opt)
	if !reflect.DeepEqual(r1.Values, r2.Values) {
		t.Errorf("FederationPair not deterministic:\n%v\nvs\n%v", r1.Values, r2.Values)
	}

	if got := r1.Values["view-agreement-fraction"]; got != 1 {
		// Intradomain pairs always agree; with Abilene's two circuits the
		// composition may legitimately find a cheaper crossing than the
		// weight-routed path, but it must still cover every pair.
		if got <= 0 || got > 1 {
			t.Errorf("view-agreement-fraction = %v, want (0, 1]", got)
		}
		t.Logf("view agreement = %v (composition found cheaper crossings than OSPF)", got)
	}
	if r1.Values["circuits"] != 2 {
		t.Errorf("circuits = %v, want 2 (Abilene virtual-ISP cuts)", r1.Values["circuits"])
	}
	if fed, nat := r1.Values["cross-isp-fraction/p4p-federated"], r1.Values["cross-isp-fraction/native"]; fed >= nat {
		t.Errorf("federated P4P cross-ISP fraction %v not below native %v", fed, nat)
	}
	if r1.Values["degraded-full-coverage"] != 1 {
		t.Error("federation lost coverage after one portal died")
	}
	if r1.Values["dead-portal-failures"] == 0 {
		t.Error("dead portal recorded no refresh failures")
	}
	if r1.Values["cross-isp-fraction/p4p-degraded"] != r1.Values["cross-isp-fraction/p4p-federated"] {
		t.Error("selection changed after portal death despite unchanged last-known-good view")
	}
}
