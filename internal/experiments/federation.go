package experiments

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sort"
	"time"

	"p4p/internal/apptracker"
	"p4p/internal/core"
	"p4p/internal/federation"
	"p4p/internal/itracker"
	"p4p/internal/metrics"
	"p4p/internal/portal"
	"p4p/internal/topology"
)

// FederationPair exercises the multi-iTracker federation end to end in
// a two-provider scenario (DESIGN.md §14): Abilene split into two
// virtual ISPs, each served by its own live shard portal (an
// itracker.Server restricted to its ASN's PIDs over one shared engine,
// behind real HTTP), an appTracker consuming both concurrently through
// apptracker.MultiPortalViews with the interdomain cuts declared as
// circuits. Reported: how faithfully the composed federation view
// reproduces the engine's global p-distances, how federated P4P
// selection localizes traffic versus native random peering, and that
// selection keeps serving — unchanged — after one provider's portal is
// killed mid-run (the paper's graceful-degradation story, now across
// providers).
func FederationPair(opt Options) *Report {
	opt = opt.withDefaults()
	rep := newReport("FED", "Multi-iTracker federation: two providers, live portals")
	g := topology.AbileneVirtualISPs()
	r := topology.ComputeRouting(g)
	eng := core.NewEngine(g, r, core.Config{})
	// Dyadic link prices (k/8): intradomain, circuit, and composed
	// intra+inter+intra sums are all exact in binary floating point, so
	// view agreement below is an == comparison, not an epsilon one.
	for _, l := range g.Links() {
		k := 1 + (int(l.Src)+int(l.Dst))%7
		if l.Interdomain {
			k += 16 // cross-provider links visibly more expensive
		}
		eng.SetPrice(l.ID, float64(k)/8)
	}

	// One shard portal per virtual ISP, both views materialized from
	// the same engine via ServePIDs.
	pidsByASN := map[int][]topology.PID{}
	for _, p := range g.AggregationPIDs() {
		asn := g.Node(p).ASN
		pidsByASN[asn] = append(pidsByASN[asn], p)
	}
	asns := make([]int, 0, len(pidsByASN))
	for asn := range pidsByASN {
		asns = append(asns, asn)
	}
	sort.Ints(asns)
	nameOf := map[int]string{}
	refs := make([]apptracker.PortalRef, 0, len(asns))
	servers := make([]*httptest.Server, 0, len(asns))
	for _, asn := range asns {
		name := fmt.Sprintf("isp%d", asn)
		nameOf[asn] = name
		tr := itracker.New(itracker.Config{Name: name, ASN: asn, ServePIDs: pidsByASN[asn]}, eng, nil)
		srv := httptest.NewServer(portal.NewHandler(tr))
		defer srv.Close()
		servers = append(servers, srv)
		refs = append(refs, apptracker.PortalRef{Name: name, URL: srv.URL})
	}
	rep.note("%d virtual ISPs over Abilene, one live shard portal each", len(asns))

	// Every interdomain cut becomes a federation circuit, costed at the
	// provider's own price for that link — the multihoming inputs of
	// Figure 10, fed to the federation instead of a single tracker.
	var circuits []federation.Circuit
	for _, cut := range topology.InterdomainCuts(g) {
		l := g.Link(cut[0])
		circuits = append(circuits, federation.Circuit{
			A: nameOf[g.Node(l.Src).ASN], APID: l.Src,
			B: nameOf[g.Node(l.Dst).ASN], BPID: l.Dst,
			Cost: eng.Price(l.ID),
		})
	}
	rep.Values["circuits"] = float64(len(circuits))

	base := portal.NewClient(refs[0].URL, "")
	// Portals are in-process; a dead one fails with connection-refused
	// immediately, and retrying it would only add backoff sleeps to the
	// degradation phase below.
	base.Retry.MaxAttempts = 1
	mpv := apptracker.NewMultiPortalViews(base, refs, time.Hour)
	mpv.SetCircuits(circuits)
	fedView, _ := mpv.ViewFor(asns[0]).(*core.View)
	if fedView == nil {
		rep.note("federation produced no view; aborting")
		return rep
	}

	// View agreement: over every PID pair, does the federation's
	// composed distance equal the engine's global p-distance exactly?
	// Intradomain pairs always agree (copy-through); cross-provider
	// pairs agree when the weight-routed global path crosses at the
	// price-cheapest gateway pair, and the residual is the composition
	// picking a cheaper crossing than OSPF did — reported, not hidden.
	pids := g.AggregationPIDs()
	var pairs, exact int
	for _, i := range pids {
		for _, j := range pids {
			if i == j {
				continue
			}
			pairs++
			if fedView.Distance(i, j) == eng.PDistance(i, j) {
				exact++
			}
		}
	}
	rep.Values["view-pairs"] = float64(pairs)
	rep.Values["view-agreement-fraction"] = float64(exact) / float64(pairs)

	// Peer-matching: a swarm spread across both providers, selected by
	// federated P4P versus native random; count the cross-provider
	// fraction of chosen peers.
	n := opt.scaled(200)
	var swarm []apptracker.Node
	for i := 0; i < n; i++ {
		pid := pids[i%len(pids)]
		swarm = append(swarm, apptracker.Node{ID: i, PID: pid, ASN: g.Node(pid).ASN})
	}
	crossFrac := func(sel apptracker.Selector, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		var picks, cross int
		for _, self := range swarm {
			for _, idx := range sel.Select(self, swarm, 20, rng) {
				picks++
				if swarm[idx].ASN != self.ASN {
					cross++
				}
			}
		}
		if picks == 0 {
			return 0
		}
		return float64(cross) / float64(picks)
	}
	fedCross := crossFrac(&apptracker.P4P{Views: mpv}, opt.Seed)
	nativeCross := crossFrac(apptracker.Random{}, opt.Seed)
	rep.Values["cross-isp-fraction/p4p-federated"] = fedCross
	rep.Values["cross-isp-fraction/native"] = nativeCross
	rep.Values["cross-isp-reduction"] = metrics.Ratio(nativeCross, fedCross)

	// Degradation: kill one provider's portal, expire every cache, and
	// re-select. The survivor plus the dead provider's last-known-good
	// view must keep the decisions identical.
	servers[len(servers)-1].Close()
	mpv.Invalidate()
	degradedView, _ := mpv.ViewFor(asns[0]).(*core.View)
	serving := 0.0
	if degradedView != nil && len(degradedView.PIDs) == len(pids) {
		serving = 1
	}
	rep.Values["degraded-full-coverage"] = serving
	degradedCross := crossFrac(&apptracker.P4P{Views: mpv}, opt.Seed)
	rep.Values["cross-isp-fraction/p4p-degraded"] = degradedCross
	st := mpv.Stats()
	deadName := refs[len(refs)-1].Name
	rep.Values["dead-portal-failures"] = float64(st[deadName].Failures)

	tbl := &metrics.Table{Header: []string{"policy", "cross-ISP peer fraction"}}
	tbl.AddRow("native", nativeCross)
	tbl.AddRow("p4p-federated", fedCross)
	tbl.AddRow("p4p-degraded (1 portal dead)", degradedCross)
	rep.addTable(tbl)
	return rep
}
