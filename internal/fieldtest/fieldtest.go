// Package fieldtest emulates the paper's Section 7.4 field tests: an
// eleven-day deployment (Feb 21 – Mar 2 2008) in which Pando clients
// were randomly assigned to one of two parallel swarms — native Pando
// versus P4P-integrated Pando — sharing a popular 20 MB video clip,
// with iTrackers deployed for ISP-B (and ISP-C).
//
// The production client population is obviously unavailable, so the
// emulator models it (see DESIGN.md "Substitutions"): a churn process
// with an early peak and decay (Figure 11's shape), a small ISP-B
// population embedded in a large external-Internet cloud (Table 2's
// volume asymmetry), heterogeneous access classes including FTTP
// (Figure 12c), and the metro-area structure of the synthetic ISP-B
// topology (Table 3). Traffic is computed with a quasi-static fluid
// allocation over client buckets: each hour, downloaders spread their
// demand across source buckets according to the policy's selection
// weights, sources scale grants to their upload capacity, and
// completions/departures follow from the integrated per-bucket rates.
package fieldtest

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"p4p/internal/topology"
)

// Policy selects the peer-selection behaviour of the swarm.
type Policy int

const (
	// Native is stock Pando: sources chosen uniformly from the swarm,
	// so intake is proportional to source population x upload capacity.
	Native Policy = iota
	// P4P is the P4P-integrated swarm: ISP-B downloaders follow the
	// staged quotas (intra-PID, then intra-AS weighted by p-distance,
	// then external); external downloaders behave natively.
	P4P
)

func (p Policy) String() string {
	if p == Native {
		return "native"
	}
	return "p4p"
}

// Class describes one access class of ISP-B subscribers.
type Class struct {
	Name    string
	UpBps   float64
	DownBps float64
	// Frac is the share of ISP-B clients in this class.
	Frac float64
}

// DefaultClasses is a 2008-era US access mix: FTTP (fiber), cable, DSL.
func DefaultClasses() []Class {
	return []Class{
		{Name: "fttp", UpBps: 5e6, DownBps: 20e6, Frac: 0.10},
		{Name: "cable", UpBps: 1e6, DownBps: 8e6, Frac: 0.35},
		{Name: "dsl", UpBps: 768e3, DownBps: 3e6, Frac: 0.55},
	}
}

// Config parameterizes one swarm's emulation.
type Config struct {
	// Graph and Routing must be the ISP-B topology (metro labels drive
	// the locality tables).
	Graph   *topology.Graph
	Routing *topology.Routing
	Policy  Policy
	Seed    int64

	// Days is the test duration (default 11).
	Days float64
	// StepSec is the fluid time step (default 3600).
	StepSec float64
	// FileBytes is the clip size (default 20 MB).
	FileBytes float64
	// TotalClients is the number of clients that join this swarm over
	// the whole window (default 60000).
	TotalClients int
	// ISPBFraction is the share of clients inside ISP-B (default 0.06).
	ISPBFraction float64
	// Classes is the ISP-B access mix (default DefaultClasses).
	Classes []Class
	// ExternalUpBps/ExternalDownBps describe the average external
	// client (default 1 Mbps up, 6 Mbps down).
	ExternalUpBps   float64
	ExternalDownBps float64
	// OriginUpBps is the publisher's effective seed capacity, located
	// in the external cloud (default 1 Mbps — origin seeding is a
	// bootstrap, not the distribution workhorse).
	OriginUpBps float64
	// LingerSec is how long a finished client stays seeding
	// (default 2 h).
	LingerSec float64

	// IntraPIDQuota and IntraASQuota are the staged-selection bounds
	// (defaults 0.70 and 0.80, cumulative, as in Section 6.2).
	IntraPIDQuota float64
	IntraASQuota  float64

	// SeederUploadFactor scales a lingering seeder's upload relative to
	// its class capacity: finished clients keep the application open but
	// throttle seeding (default 0.15).
	SeederUploadFactor float64

	// EfficiencyFactor scales nominal access capacities down to the
	// effective P2P throughput of a background file-transfer client
	// (protocol overhead, user caps, competing traffic); default 0.02.
	// It stretches absolute durations to the multi-hour scale the field
	// test measured without changing any relative comparison.
	EfficiencyFactor float64
}

func (c *Config) withDefaults() {
	if c.Days == 0 {
		c.Days = 11
	}
	if c.StepSec == 0 {
		c.StepSec = 900
	}
	if c.FileBytes == 0 {
		c.FileBytes = 20 << 20
	}
	if c.TotalClients == 0 {
		c.TotalClients = 60000
	}
	if c.ISPBFraction == 0 {
		c.ISPBFraction = 0.06
	}
	if c.Classes == nil {
		c.Classes = DefaultClasses()
	}
	if c.ExternalUpBps == 0 {
		c.ExternalUpBps = 0.5e6
	}
	if c.ExternalDownBps == 0 {
		c.ExternalDownBps = 6e6
	}
	if c.OriginUpBps == 0 {
		c.OriginUpBps = 1e6
	}
	if c.LingerSec == 0 {
		c.LingerSec = 24 * 3600
	}
	if c.IntraPIDQuota == 0 {
		c.IntraPIDQuota = 0.70
	}
	if c.IntraASQuota == 0 {
		c.IntraASQuota = 0.80
	}
	if c.SeederUploadFactor == 0 {
		c.SeederUploadFactor = 0.15
	}
	if c.EfficiencyFactor == 0 {
		c.EfficiencyFactor = 0.02
	}
}

// bucket aggregates clients with identical location and class.
type bucket struct {
	pid     topology.PID // -1 for the external cloud
	class   int          // index into cfg.Classes; -1 for external
	name    string
	upBps   float64
	downBps float64
	frac    float64 // arrival share of this bucket

	// dynamic state
	active   []clientState // downloading clients, FIFO by arrival
	seeding  int           // lingering seeders
	seedEnds []float64     // departure times of seeders (sorted FIFO)
	integral float64       // cumulative per-client bytes downloaded
}

type clientState struct {
	arriveT    float64
	startInteg float64
}

// Completion records one finished download.
type Completion struct {
	ClassName string
	ISPB      bool
	ArriveSec float64
	FinishSec float64
}

// SizePoint is one sample of the swarm-size series (Figure 11).
type SizePoint struct {
	TSec  float64
	Count int
}

// Result aggregates everything the field-test tables and figures need.
type Result struct {
	Policy      Policy
	SwarmSize   []SizePoint
	Completions []Completion

	// ASMatrix holds traffic volumes in bytes keyed by
	// {src,dst} ∈ {"ext","ispb"} (Table 2).
	ASMatrix map[[2]string]float64
	// SameMetroBytes and CrossMetroBytes split ISP-B internal traffic
	// (Table 3).
	SameMetroBytes  float64
	CrossMetroBytes float64
	// UnitBDP is backbone-hops per byte for ISP-B internal traffic
	// (Figure 12a).
	UnitBDP float64
	// MetroHops is metro-boundary crossings per byte for ISP-B
	// internal traffic (the Section 1 Verizon-style metric).
	MetroHops float64
}

// Run emulates one swarm.
func Run(cfg Config) *Result {
	cfg.withDefaults()
	if cfg.Graph == nil || cfg.Routing == nil {
		panic("fieldtest: Graph and Routing are required")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	buckets := makeBuckets(&cfg)
	// Precompute routing hop counts and metro-crossing counts.
	pids := cfg.Graph.AggregationPIDs()
	hops := map[[2]topology.PID]float64{}
	metroHops := map[[2]topology.PID]float64{}
	for _, i := range pids {
		for _, j := range pids {
			if i == j {
				continue
			}
			path := cfg.Routing.Path(i, j)
			hops[[2]topology.PID{i, j}] = float64(len(path))
			mh := 0.0
			for _, e := range path {
				l := cfg.Graph.Link(e)
				if cfg.Graph.MetroOf(l.Src) != cfg.Graph.MetroOf(l.Dst) {
					mh++
				}
			}
			metroHops[[2]topology.PID{i, j}] = mh
		}
	}

	res := &Result{Policy: cfg.Policy, ASMatrix: map[[2]string]float64{}}

	totalSteps := int(cfg.Days * 86400 / cfg.StepSec)
	arrCarry := make([]float64, len(buckets))
	var bdpNum, metroNum, ispbBytes float64

	for step := 0; step < totalSteps; step++ {
		t := float64(step) * cfg.StepSec
		// Arrivals for this step, split across buckets.
		stepArrivals := float64(cfg.TotalClients) * arrivalShare(t, cfg.StepSec, cfg.Days)
		for bi := range buckets {
			arrCarry[bi] += stepArrivals * buckets[bi].frac
			n := int(arrCarry[bi])
			arrCarry[bi] -= float64(n)
			for k := 0; k < n; k++ {
				// Jitter arrivals uniformly within the step.
				at := t + rng.Float64()*cfg.StepSec
				buckets[bi].active = append(buckets[bi].active, clientState{arriveT: at, startInteg: buckets[bi].integral})
			}
			sort.Slice(buckets[bi].active, func(x, y int) bool {
				return buckets[bi].active[x].arriveT < buckets[bi].active[y].arriveT
			})
		}

		// Selection weights for this step reflect current candidate
		// availability: the staged quotas are upper bounds that bind
		// only when enough local candidates exist (Section 6.2).
		weights := selectionWeights(&cfg, buckets)

		// Fluid allocation: desired intake per (downloader, source)
		// bucket pair, then source-side grants.
		nB := len(buckets)
		desired := make([][]float64, nB)
		requested := make([]float64, nB)
		for d := 0; d < nB; d++ {
			desired[d] = make([]float64, nB)
			nd := float64(len(buckets[d].active))
			if nd == 0 {
				continue
			}
			demand := nd * buckets[d].downBps / 8 // bytes/sec
			for s := 0; s < nB; s++ {
				w := weights[d][s]
				if w <= 0 {
					continue
				}
				desired[d][s] = demand * w
				requested[s] += desired[d][s]
			}
		}
		granted := make([][]float64, nB)
		for d := 0; d < nB; d++ {
			granted[d] = make([]float64, nB)
		}
		for s := 0; s < nB; s++ {
			supply := supplyBps(&cfg, &buckets[s]) / 8
			if requested[s] <= 0 || supply <= 0 {
				continue
			}
			if cfg.Policy == P4P && buckets[s].pid >= 0 {
				// P4P ISP-B sources upload over the connections their
				// own staged selection formed: capacity is offered per
				// destination bucket in proportion to the source's own
				// weight row (connection reciprocity), with leftover
				// re-offered demand-proportionally — an idle upload
				// slot serves whoever is interested.
				profile := weights[s]
				profSum := 0.0
				for d := 0; d < nB; d++ {
					if desired[d][s] > 0 {
						profSum += profile[d]
					}
				}
				remaining := supply
				if profSum > 0 {
					for d := 0; d < nB; d++ {
						if desired[d][s] <= 0 {
							continue
						}
						share := supply * profile[d] / profSum
						g := math.Min(desired[d][s], share)
						granted[d][s] = g
						remaining -= g
					}
				}
				if remaining > 1e-9 {
					unmet := 0.0
					for d := 0; d < nB; d++ {
						unmet += desired[d][s] - granted[d][s]
					}
					if unmet > 0 {
						f := math.Min(1, remaining/unmet)
						for d := 0; d < nB; d++ {
							granted[d][s] += (desired[d][s] - granted[d][s]) * f
						}
					}
				}
				continue
			}
			scale := 1.0
			if requested[s] > supply {
				scale = supply / requested[s]
			}
			for d := 0; d < nB; d++ {
				granted[d][s] = desired[d][s] * scale
			}
		}

		// Account traffic and advance per-bucket integrals.
		stepProg := make([]float64, nB) // per-client bytes this step
		for d := 0; d < nB; d++ {
			nd := float64(len(buckets[d].active))
			rate := 0.0
			for s := 0; s < nB; s++ {
				g := granted[d][s]
				if g <= 0 {
					continue
				}
				rate += g
				bytes := g * cfg.StepSec
				srcKind, dstKind := asKind(&buckets[s]), asKind(&buckets[d])
				res.ASMatrix[[2]string{srcKind, dstKind}] += bytes
				if srcKind == "ispb" && dstKind == "ispb" {
					ispbBytes += bytes
					sp, dp := buckets[s].pid, buckets[d].pid
					if sp == dp || cfg.Graph.MetroOf(sp) == cfg.Graph.MetroOf(dp) {
						res.SameMetroBytes += bytes
					} else {
						res.CrossMetroBytes += bytes
					}
					if sp != dp {
						key := [2]topology.PID{sp, dp}
						bdpNum += bytes * hops[key]
						metroNum += bytes * metroHops[key]
					}
				}
			}
			if nd > 0 {
				stepProg[d] = rate / nd * cfg.StepSec
				buckets[d].integral += stepProg[d]
			}
		}

		// Clients that arrived partway through this step must not be
		// credited with progress from before their arrival.
		for bi := range buckets {
			b := &buckets[bi]
			for k := len(b.active) - 1; k >= 0; k-- {
				if b.active[k].arriveT < t {
					break
				}
				b.active[k].startInteg += (b.active[k].arriveT - t) / cfg.StepSec * stepProg[bi]
			}
		}

		// Completions and departures.
		endT := t + cfg.StepSec
		for bi := range buckets {
			b := &buckets[bi]
			for len(b.active) > 0 {
				c := b.active[0]
				got := b.integral - c.startInteg
				if got < cfg.FileBytes {
					break
				}
				// Estimate the finish instant within the step by linear
				// interpolation of this step's progress.
				finish := endT
				if prog := stepProg[bi]; prog > 0 {
					frac := 1 - (got-cfg.FileBytes)/prog
					if frac < 0 {
						frac = 0
					}
					if frac > 1 {
						frac = 1
					}
					finish = t + frac*cfg.StepSec
				}
				if finish < c.arriveT {
					finish = c.arriveT
				}
				res.Completions = append(res.Completions, Completion{
					ClassName: b.name, ISPB: b.pid >= 0,
					ArriveSec: c.arriveT, FinishSec: finish,
				})
				b.active = b.active[1:]
				b.seeding++
				b.seedEnds = append(b.seedEnds, finish+cfg.LingerSec)
			}
			for b.seeding > 0 && b.seedEnds[0] <= endT {
				b.seeding--
				b.seedEnds = b.seedEnds[1:]
			}
		}

		// Swarm size sample: everyone currently in the swarm.
		count := 0
		for bi := range buckets {
			count += len(buckets[bi].active) + buckets[bi].seeding
		}
		res.SwarmSize = append(res.SwarmSize, SizePoint{TSec: endT, Count: count})
	}

	if ispbBytes > 0 {
		res.UnitBDP = bdpNum / ispbBytes
		res.MetroHops = metroNum / ispbBytes
	}
	return res
}

// RunMany emulates several independent swarms and returns their results
// in input order. Swarms share no state, so the caller may supply a
// parallel dispatcher (typically experiments.Options' bounded worker
// pool): forEach must invoke fn(i) exactly once for every i in [0, n),
// in any order and from any goroutine. A nil forEach runs serially.
// Results are identical either way — each swarm owns its rng.
func RunMany(cfgs []Config, forEach func(n int, fn func(int))) []*Result {
	results := make([]*Result, len(cfgs))
	if forEach == nil {
		for i := range cfgs {
			results[i] = Run(cfgs[i])
		}
		return results
	}
	forEach(len(cfgs), func(i int) { results[i] = Run(cfgs[i]) })
	return results
}

// asKind maps a bucket to the Table 2 grouping.
func asKind(b *bucket) string {
	if b.pid < 0 {
		return "ext"
	}
	return "ispb"
}

// supplyBps is a bucket's total upload capacity: active downloaders
// upload while downloading (BitTorrent-style); lingering seeders keep
// uploading at a throttled rate; the external cloud also hosts the
// origin server.
func supplyBps(cfg *Config, b *bucket) float64 {
	s := (float64(len(b.active)) + cfg.SeederUploadFactor*float64(b.seeding)) * b.upBps
	if b.pid < 0 {
		s += cfg.OriginUpBps
	}
	return s
}

// arrivalShare is the fraction of all clients arriving in the step of
// length stepSec starting at t: a surge over the first three days, then
// decay — the shape of Figure 11.
func arrivalShare(t, stepSec, days float64) float64 {
	// Piecewise intensity lambda(day): ramp up day 0-0.5, plateau to day
	// 3, exponential decay after; normalized over the window.
	day := t / 86400
	lambda := func(d float64) float64 {
		switch {
		case d < 0.5:
			return 2 * d // ramp
		case d < 3:
			return 1.0
		default:
			return math.Exp(-(d - 3) / 2.5)
		}
	}
	// Normalize by the integral computed numerically (cheap; the window
	// is short).
	const dt = 1.0 / 24
	total := 0.0
	for d := 0.0; d < days; d += dt {
		total += lambda(d) * dt
	}
	return lambda(day) * (stepSec / 86400) / total
}

// makeBuckets lays out the population: one bucket per (PID, class) in
// ISP-B plus a single external-cloud bucket.
func makeBuckets(cfg *Config) []bucket {
	var out []bucket
	f := cfg.EfficiencyFactor
	pids := cfg.Graph.AggregationPIDs()
	for _, pid := range pids {
		for ci, cl := range cfg.Classes {
			out = append(out, bucket{
				pid: pid, class: ci,
				name:    cl.Name,
				upBps:   cl.UpBps * f,
				downBps: cl.DownBps * f,
				frac:    cfg.ISPBFraction / float64(len(pids)) * cl.Frac,
			})
		}
	}
	out = append(out, bucket{
		pid: -1, class: -1, name: "ext",
		upBps: cfg.ExternalUpBps * f, downBps: cfg.ExternalDownBps * f,
		frac: 1 - cfg.ISPBFraction,
	})
	return out
}

// selectionWeights builds the downloader->source weight matrix by
// policy for the current populations. Rows are normalized to 1 where
// any source weight exists. The staged quotas are treated as upper
// bounds: a stage's share is capped by candidate availability relative
// to a nominal neighbour-set size, mirroring "many PIDs may not have a
// large number of clients. Thus, Upper-Bound-IntraPID mainly serves as
// an upper bound."
func selectionWeights(cfg *Config, buckets []bucket) [][]float64 {
	const neighborTarget = 20.0
	nB := len(buckets)
	w := make([][]float64, nB)
	// Population-capacity mass of each source bucket: "uniform random
	// peer" intake is proportional to population x upload capacity.
	mass := make([]float64, nB)
	for s := range buckets {
		mass[s] = supplyBps(cfg, &buckets[s]) + float64(len(buckets[s].active)+buckets[s].seeding)
	}
	for d := range buckets {
		w[d] = make([]float64, nB)
		if cfg.Policy == Native || buckets[d].pid < 0 {
			// Native behaviour (and external clients under P4P): mass-
			// proportional over the whole swarm.
			copy(w[d], mass)
			normalize(w[d])
			continue
		}
		// P4P staged quotas for ISP-B downloaders, capped by candidate
		// availability. Within the ISP the Pando integration runs the
		// upload/download bandwidth-matching optimization (eq. 5), which
		// pairs high-download clients with high-upload sources; the
		// affinity factor below is its bucket-level effect.
		affinity := func(s int) float64 {
			a := buckets[s].upBps / buckets[d].downBps
			if a > 1 {
				a = 1
			}
			return a
		}
		var nSamePID, nSameAS float64
		samePIDMass, sameASMass := 0.0, 0.0
		for s := range buckets {
			n := float64(len(buckets[s].active) + buckets[s].seeding)
			if buckets[s].pid == buckets[d].pid {
				nSamePID += n
				samePIDMass += mass[s] * affinity(s)
			} else if buckets[s].pid >= 0 {
				nSameAS += n
				sameASMass += mass[s] * affinity(s) / pDist(cfg, buckets[d].pid, buckets[s].pid)
			}
		}
		intra := math.Min(cfg.IntraPIDQuota, nSamePID/neighborTarget)
		inAS := math.Min(cfg.IntraASQuota-intra, math.Min(cfg.IntraASQuota, nSameAS/neighborTarget))
		if samePIDMass <= 0 {
			intra = 0
		}
		if sameASMass <= 0 {
			inAS = 0
		}
		ext := 1 - intra - inAS
		for s := range buckets {
			switch {
			case buckets[s].pid == buckets[d].pid:
				if samePIDMass > 0 {
					w[d][s] = intra * mass[s] * affinity(s) / samePIDMass
				}
			case buckets[s].pid >= 0:
				if sameASMass > 0 {
					w[d][s] = inAS * (mass[s] * affinity(s) / pDist(cfg, buckets[d].pid, buckets[s].pid)) / sameASMass
				}
			default:
				w[d][s] = ext
			}
		}
		normalize(w[d])
	}
	return w
}

// pDist is the static p-distance proxy used for weighting: backbone hop
// count (never zero).
func pDist(cfg *Config, i, j topology.PID) float64 {
	h := cfg.Routing.HopCount(i, j)
	if h <= 0 {
		return 1
	}
	return float64(h)
}

func normalize(v []float64) {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if sum == 0 {
		return
	}
	for i := range v {
		v[i] /= sum
	}
}

// MeanCompletionSec averages completion durations, optionally filtered
// to one class and/or ISP-B membership.
func (r *Result) MeanCompletionSec(class string, ispbOnly bool) float64 {
	sum, n := 0.0, 0
	for _, c := range r.Completions {
		if class != "" && c.ClassName != class {
			continue
		}
		if ispbOnly && !c.ISPB {
			continue
		}
		sum += c.FinishSec - c.ArriveSec
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// CompletionDurations lists completion durations matching the filter,
// sorted ascending.
func (r *Result) CompletionDurations(class string, ispbOnly bool) []float64 {
	var out []float64
	for _, c := range r.Completions {
		if class != "" && c.ClassName != class {
			continue
		}
		if ispbOnly && !c.ISPB {
			continue
		}
		out = append(out, c.FinishSec-c.ArriveSec)
	}
	sort.Float64s(out)
	return out
}

// LocalizationPercent is Table 3's "% of Localization": the same-metro
// share of ISP-B internal traffic.
func (r *Result) LocalizationPercent() float64 {
	total := r.SameMetroBytes + r.CrossMetroBytes
	if total == 0 {
		return 0
	}
	return 100 * r.SameMetroBytes / total
}

// PeakSwarmSize returns the maximum swarm size and its time.
func (r *Result) PeakSwarmSize() (int, float64) {
	best, bestT := 0, 0.0
	for _, p := range r.SwarmSize {
		if p.Count > best {
			best, bestT = p.Count, p.TSec
		}
	}
	return best, bestT
}

// String summarizes the result.
func (r *Result) String() string {
	peak, _ := r.PeakSwarmSize()
	return fmt.Sprintf("fieldtest[%s]: %d completions, peak swarm %d, localization %.1f%%, unitBDP %.2f",
		r.Policy, len(r.Completions), peak, r.LocalizationPercent(), r.UnitBDP)
}
