package fieldtest

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"p4p/internal/topology"
)

var pairOnce sync.Once
var pairNative, pairP4P *Result

// runPair runs the two parallel swarms once at the default field-test
// scale and shares the results across tests (the emulation is
// deterministic, so sharing is safe). The clients argument is kept for
// call-site clarity but the default population is always used: the
// staged quotas are availability-capped, so a sparser ISP-B swarm
// would legitimately localize less and change the shapes under test.
func runPair(t *testing.T, clients int) (*Result, *Result) {
	t.Helper()
	_ = clients
	pairOnce.Do(func() {
		g := topology.ISPB()
		r := topology.ComputeRouting(g)
		pairNative = Run(Config{Graph: g, Routing: r, Policy: Native, Seed: 1})
		pairP4P = Run(Config{Graph: g, Routing: r, Policy: P4P, Seed: 2})
	})
	return pairNative, pairP4P
}

func TestAllClientsComplete(t *testing.T) {
	n, p := runPair(t, 20000)
	for _, r := range []*Result{n, p} {
		if len(r.Completions) < 19000 {
			t.Fatalf("%s: only %d of ~20000 completed", r.Policy, len(r.Completions))
		}
		for _, c := range r.Completions {
			if c.FinishSec < c.ArriveSec {
				t.Fatalf("%s: negative duration", r.Policy)
			}
		}
	}
}

func TestSwarmSizeShape(t *testing.T) {
	n, _ := runPair(t, 20000)
	peak, peakT := n.PeakSwarmSize()
	if peak == 0 {
		t.Fatal("empty swarm")
	}
	// Figure 11: the swarms reach their largest size in the first 3
	// days, then decrease and remain lower afterwards.
	if peakT > 3*86400 {
		t.Fatalf("peak at day %.1f, want within first 3 days", peakT/86400)
	}
	last := n.SwarmSize[len(n.SwarmSize)-1]
	if last.Count >= peak/2 {
		t.Fatalf("swarm did not decay: end %d vs peak %d", last.Count, peak)
	}
}

func TestParallelSwarmsComparable(t *testing.T) {
	// Random assignment gives the two swarms nearly equal size curves —
	// the basis for a fair comparison (Figure 11).
	n, p := runPair(t, 20000)
	pn, _ := n.PeakSwarmSize()
	pp, _ := p.PeakSwarmSize()
	ratio := float64(pn) / float64(pp)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("swarm peaks diverge: %d vs %d", pn, pp)
	}
}

func TestTable2Shape(t *testing.T) {
	n, p := runPair(t, 20000)
	// ext<->ext roughly unchanged (P4P optimizes for ISP-B only).
	ee := n.ASMatrix[[2]string{"ext", "ext"}] / p.ASMatrix[[2]string{"ext", "ext"}]
	if ee < 0.8 || ee > 1.25 {
		t.Fatalf("ext-ext ratio %v, want ~1", ee)
	}
	// Interdomain volumes shrink under P4P (paper: 1.53x and 1.70x).
	inRatio := n.ASMatrix[[2]string{"ext", "ispb"}] / p.ASMatrix[[2]string{"ext", "ispb"}]
	outRatio := n.ASMatrix[[2]string{"ispb", "ext"}] / p.ASMatrix[[2]string{"ispb", "ext"}]
	if inRatio < 1.2 {
		t.Fatalf("ext->ispb ratio %v, want > 1.2", inRatio)
	}
	if outRatio < 1.2 {
		t.Fatalf("ispb->ext ratio %v, want > 1.2", outRatio)
	}
	// Intra-ISP concentration grows severalfold (paper ratio 0.15).
	intra := n.ASMatrix[[2]string{"ispb", "ispb"}] / p.ASMatrix[[2]string{"ispb", "ispb"}]
	if intra > 0.5 {
		t.Fatalf("ispb-ispb ratio %v, want < 0.5", intra)
	}
}

func TestTable3LocalizationShape(t *testing.T) {
	n, p := runPair(t, 20000)
	// Paper: 6.27% -> 57.98%.
	if n.LocalizationPercent() > 20 {
		t.Fatalf("native localization %v%%, want low", n.LocalizationPercent())
	}
	if p.LocalizationPercent() < 40 {
		t.Fatalf("p4p localization %v%%, want high", p.LocalizationPercent())
	}
}

func TestFigure12aUnitBDPShape(t *testing.T) {
	n, p := runPair(t, 20000)
	// Paper: 5.5 -> 0.89, an ~5x reduction.
	if n.UnitBDP < 3 {
		t.Fatalf("native unit BDP %v, want several backbone hops", n.UnitBDP)
	}
	if p.UnitBDP > n.UnitBDP/2 {
		t.Fatalf("p4p unit BDP %v not well below native %v", p.UnitBDP, n.UnitBDP)
	}
}

func TestFigure12bCompletionImprovement(t *testing.T) {
	n, p := runPair(t, 20000)
	nm := n.MeanCompletionSec("", true)
	pm := p.MeanCompletionSec("", true)
	// Paper: 23% improvement; require directional improvement.
	if !(pm < nm) {
		t.Fatalf("p4p mean %v not better than native %v", pm, nm)
	}
	// And multi-hour absolute scale (the field test measured ~2-2.6h).
	if nm < 600 || nm > 86400 {
		t.Fatalf("native mean completion %v s implausible", nm)
	}
}

func TestFigure12cFTTP(t *testing.T) {
	n, p := runPair(t, 20000)
	nf := n.MeanCompletionSec("fttp", true)
	pf := p.MeanCompletionSec("fttp", true)
	if !(pf < nf) {
		t.Fatalf("p4p FTTP mean %v not better than native %v", pf, nf)
	}
	// FTTP is much faster than the overall ISP-B mean in both swarms.
	if nf >= n.MeanCompletionSec("", true) {
		t.Fatal("FTTP should beat the ISP-B average")
	}
}

func TestMetroHopsShape(t *testing.T) {
	n, p := runPair(t, 20000)
	// Section 1: metro-hops fall from 5.5 to 0.89 in the Verizon field
	// observation; require a strong reduction.
	if p.MetroHops > n.MetroHops/2 {
		t.Fatalf("metro hops %v -> %v: reduction too weak", n.MetroHops, p.MetroHops)
	}
}

func TestCompletionDurationsSorted(t *testing.T) {
	n, _ := runPair(t, 20000)
	ds := n.CompletionDurations("", false)
	for i := 1; i < len(ds); i++ {
		if ds[i] < ds[i-1] {
			t.Fatal("durations not sorted")
		}
	}
	if len(ds) == 0 {
		t.Fatal("no durations")
	}
	fttp := n.CompletionDurations("fttp", true)
	if len(fttp) == 0 || len(fttp) >= len(ds) {
		t.Fatalf("fttp filter wrong: %d of %d", len(fttp), len(ds))
	}
}

func TestDeterministicRuns(t *testing.T) {
	g := topology.ISPB()
	r := topology.ComputeRouting(g)
	a := Run(Config{Graph: g, Routing: r, Policy: P4P, Seed: 5, TotalClients: 5000})
	b := Run(Config{Graph: g, Routing: r, Policy: P4P, Seed: 5, TotalClients: 5000})
	if a.UnitBDP != b.UnitBDP || len(a.Completions) != len(b.Completions) {
		t.Fatal("field test emulation not deterministic")
	}
	if a.MeanCompletionSec("", true) != b.MeanCompletionSec("", true) {
		t.Fatal("means differ across identical runs")
	}
}

func TestArrivalShareNormalizes(t *testing.T) {
	days := 11.0
	step := 900.0
	sum := 0.0
	for t0 := 0.0; t0 < days*86400; t0 += step {
		sum += arrivalShare(t0, step, days)
	}
	if math.Abs(sum-1) > 0.02 {
		t.Fatalf("arrival shares sum to %v, want ~1", sum)
	}
}

func TestMassConservation(t *testing.T) {
	// Traffic received by completed clients must be at least
	// completions x file size (clients may also have partial progress).
	g := topology.ISPB()
	r := topology.ComputeRouting(g)
	res := Run(Config{Graph: g, Routing: r, Policy: Native, Seed: 3, TotalClients: 5000})
	var total float64
	for _, v := range res.ASMatrix {
		total += v
	}
	minExpected := float64(len(res.Completions)) * float64(20<<20)
	if total < minExpected {
		t.Fatalf("total traffic %v below completed volume %v", total, minExpected)
	}
	// And not wildly above (every client downloads the file once).
	if total > 1.5*minExpected+1e9 {
		t.Fatalf("total traffic %v too far above %v", total, minExpected)
	}
}

func TestPanicsWithoutTopology(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(Config{})
}

func TestPolicyString(t *testing.T) {
	if Native.String() != "native" || P4P.String() != "p4p" {
		t.Fatal("policy strings wrong")
	}
}

func TestSampleSwarmSizeTail(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 200000
	over100 := 0
	for i := 0; i < n; i++ {
		s := SampleSwarmSize(rng)
		if s < 1 {
			t.Fatalf("swarm size %d < 1", s)
		}
		if s > 100 {
			over100++
		}
	}
	pct := 100 * float64(over100) / n
	// Calibrated to the paper's 0.72%.
	if pct < 0.5 || pct > 1.0 {
		t.Fatalf("P(>100) = %v%%, want ~0.72", pct)
	}
}

// TestRunManyMatchesSerial proves swarm sharding is observation-free:
// dispatching independent swarms across goroutines yields results
// deep-equal to the serial path, whatever the completion order.
func TestRunManyMatchesSerial(t *testing.T) {
	g := topology.ISPB()
	r := topology.ComputeRouting(g)
	cfgs := []Config{
		{Graph: g, Routing: r, Policy: Native, Seed: 5, Days: 2, TotalClients: 4000},
		{Graph: g, Routing: r, Policy: P4P, Seed: 6, Days: 2, TotalClients: 4000},
		{Graph: g, Routing: r, Policy: P4P, Seed: 7, Days: 2, TotalClients: 4000},
	}
	serial := RunMany(cfgs, nil)
	parallel := RunMany(cfgs, func(n int, fn func(int)) {
		var wg sync.WaitGroup
		for i := n - 1; i >= 0; i-- { // reversed order on purpose
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				fn(i)
			}(i)
		}
		wg.Wait()
	})
	if len(serial) != len(parallel) {
		t.Fatalf("result count mismatch: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("swarm %d: parallel result differs from serial", i)
		}
	}
}
