package fieldtest

import (
	"math"
	"math/rand"
)

// The paper's scalability argument (Section 8) rests on a crawl of
// every movie torrent published by thepiratebay.org: 34,721 swarms, of
// which only 0.72% had more than one hundred leechers, so an appTracker
// rarely needs state for many ASes. The crawl itself is unavailable, so
// SampleSwarmSize draws from a discrete Pareto distribution calibrated
// to that statistic:
//
//	P(S > s) = s^(-alpha)  with  alpha = ln(0.0072)/ln(1/100) ≈ 1.071
//
// which reproduces the quoted tail mass at s = 100.

// swarmTailAlpha solves 100^(-alpha) = 0.0072.
var swarmTailAlpha = math.Log(0.0072) / math.Log(1.0/100)

// SampleSwarmSize draws one swarm's leecher count (>= 1).
func SampleSwarmSize(rng *rand.Rand) int {
	u := rng.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	s := math.Pow(u, -1/swarmTailAlpha)
	if s > 1e7 {
		s = 1e7 // clip the extreme tail; the crawl's largest swarms were ~10^4
	}
	return int(s)
}
