// Package charging implements the percentile-based usage charging model
// of the paper's Section 5 ("Interdomain Multihoming Cost Control") and
// the charging-volume prediction algorithm of Section 6.1.
//
// In the q-percentile model a provider records the traffic volume of
// every 5-minute interval; at the end of a charging period the volumes
// are sorted ascending and the customer is billed at the volume of the
// q-th percentile interval (the 8208th of 8640 for q=0.95 over a
// 30-day month). The iTracker predicts the current period's charging
// volume, predicts near-term background traffic with a moving average,
// and exposes the difference as the virtual capacity v_e available to
// P4P-controlled traffic on each interdomain link.
package charging

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the q-quantile (0 < q <= 1) of v using the billing
// rule: sort ascending and take the element at index ceil(q*n)-1. It
// panics on empty input or out-of-range q.
func Percentile(v []float64, q float64) float64 {
	if len(v) == 0 {
		panic("charging: Percentile of empty slice")
	}
	if q <= 0 || q > 1 {
		panic(fmt.Sprintf("charging: quantile %v out of (0, 1]", q))
	}
	sorted := append([]float64(nil), v...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Model describes one provider's billing scheme.
type Model struct {
	// Q is the billing percentile, e.g. 0.95.
	Q float64
	// PeriodIntervals is the number of 5-minute intervals per charging
	// period, e.g. 30*24*12 = 8640 for a 30-day month.
	PeriodIntervals int
}

// StandardMonthly is the 95th-percentile model over a 30-day month used
// throughout the paper (8208 = 95% x 30 x 24 x 60/5 sorted interval).
func StandardMonthly() Model {
	return Model{Q: 0.95, PeriodIntervals: 30 * 24 * 12}
}

// ChargingVolume bills one complete (or partial) period of interval
// volumes.
func (m Model) ChargingVolume(periodVolumes []float64) float64 {
	return Percentile(periodVolumes, m.Q)
}

// BillingIndex returns the 1-based sorted interval index that determines
// the bill (8208 for the standard monthly model).
func (m Model) BillingIndex() int {
	return int(math.Ceil(m.Q * float64(m.PeriodIntervals)))
}

// Predictor implements the paper's Section 6.1 hybrid sliding-window
// charging-volume prediction: a pure sliding window misestimates when
// the previous period's charging volume differs from the current one, so
// for the first M intervals of a period the predictor uses the last I
// samples (spilling into the previous period), and afterwards it uses
// only the samples of the current period.
type Predictor struct {
	Model Model
	// WarmupIntervals is M: how long into a period the cross-period
	// sliding window is used.
	WarmupIntervals int
}

// PredictChargingVolume predicts the charging volume for the next
// interval given the full history of interval volumes (oldest first).
// The next interval has index i = len(history); s = (i/I)*I is the first
// interval of its charging period. Following Section 6.1:
//
//	v~_i = qt(v[i-I : i], q)   for s <= i <= s+M  (sliding window)
//	v~_i = qt(v[s : i], q)     for s+M < i < s+I  (current period only)
//
// With insufficient history the available prefix is used.
func (p *Predictor) PredictChargingVolume(history []float64) float64 {
	i := len(history)
	if i == 0 {
		return 0
	}
	iPer := p.Model.PeriodIntervals
	s := (i / iPer) * iPer
	var window []float64
	if i <= s+p.WarmupIntervals {
		lo := i - iPer
		if lo < 0 {
			lo = 0
		}
		window = history[lo:i]
	} else {
		window = history[s:i]
	}
	return Percentile(window, p.Model.Q)
}

// MovingAverage predicts the next interval's traffic volume as the mean
// of the last Window samples (fewer if history is short). The window
// must be small relative to a day so diurnal structure is not lost
// (Section 6.1).
type MovingAverage struct {
	Window int
}

// Predict returns the moving-average forecast; 0 on empty history.
func (m MovingAverage) Predict(history []float64) float64 {
	if len(history) == 0 {
		return 0
	}
	w := m.Window
	if w <= 0 {
		w = 1
	}
	if w > len(history) {
		w = len(history)
	}
	sum := 0.0
	for _, v := range history[len(history)-w:] {
		sum += v
	}
	return sum / float64(w)
}

// VirtualCapacityEstimator produces v_e for an interdomain link: the
// headroom between the predicted charging volume and the predicted
// background traffic volume for the next interval. If background is
// predicted to exceed the charging volume, the virtual capacity is 0 —
// P4P traffic on the link would raise the bill.
type VirtualCapacityEstimator struct {
	Predictor Predictor
	Average   MovingAverage
}

// Estimate returns v_e in bytes per interval given the background
// volume history (oldest first).
func (e *VirtualCapacityEstimator) Estimate(history []float64) float64 {
	charge := e.Predictor.PredictChargingVolume(history)
	bg := e.Average.Predict(history)
	v := charge - bg
	if v < 0 {
		return 0
	}
	return v
}

// Ledger accumulates traffic volumes into fixed-size intervals, for use
// as the per-link volume record of an interdomain link.
type Ledger struct {
	IntervalSec float64
	volumes     []float64
}

// NewLedger returns a ledger with the given interval size (seconds).
func NewLedger(intervalSec float64) *Ledger {
	if intervalSec <= 0 {
		panic("charging: non-positive ledger interval")
	}
	return &Ledger{IntervalSec: intervalSec}
}

// Add records `bytes` of traffic at time tSec (seconds from epoch zero).
// Times may arrive in any order; the ledger grows as needed.
func (l *Ledger) Add(tSec, bytes float64) {
	if tSec < 0 {
		panic("charging: negative time")
	}
	idx := int(tSec / l.IntervalSec)
	for len(l.volumes) <= idx {
		l.volumes = append(l.volumes, 0)
	}
	l.volumes[idx] += bytes
}

// AddSpread records `bytes` of traffic spread uniformly over
// [startSec, endSec), splitting across interval boundaries.
func (l *Ledger) AddSpread(startSec, endSec, bytes float64) {
	if endSec <= startSec {
		l.Add(startSec, bytes)
		return
	}
	rate := bytes / (endSec - startSec)
	t := startSec
	for t < endSec {
		boundary := (math.Floor(t/l.IntervalSec) + 1) * l.IntervalSec
		segEnd := math.Min(boundary, endSec)
		l.Add(t, rate*(segEnd-t))
		t = segEnd
	}
}

// Volumes returns the recorded per-interval volumes (shared slice; do
// not modify).
func (l *Ledger) Volumes() []float64 { return l.volumes }

// Total returns the sum of all recorded volumes.
func (l *Ledger) Total() float64 {
	sum := 0.0
	for _, v := range l.volumes {
		sum += v
	}
	return sum
}

// ChargingVolume bills the ledger under the given model, padding missing
// intervals with zeros up to the period length so quiet links are billed
// correctly.
func (l *Ledger) ChargingVolume(m Model) float64 {
	v := l.volumes
	if len(v) < m.PeriodIntervals {
		padded := make([]float64, m.PeriodIntervals)
		copy(padded, v)
		v = padded
	}
	return Percentile(v, m.Q)
}
