package charging

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"p4p/internal/traffic"
)

func TestPercentileBasics(t *testing.T) {
	v := []float64{5, 1, 4, 2, 3}
	if got := Percentile(v, 1.0); got != 5 {
		t.Fatalf("p100 = %v, want 5", got)
	}
	if got := Percentile(v, 0.2); got != 1 {
		t.Fatalf("p20 = %v, want 1", got)
	}
	if got := Percentile(v, 0.6); got != 3 {
		t.Fatalf("p60 = %v, want 3", got)
	}
	// Input must not be mutated.
	if v[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Percentile(nil, 0.95) },
		func() { Percentile([]float64{1}, 0) },
		func() { Percentile([]float64{1}, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestPercentileProperty: result is always an element of the input and
// at least q of the elements are <= it.
func TestPercentileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prop := func() bool {
		n := 1 + rng.Intn(50)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64() * 100
		}
		q := 0.05 + 0.95*rng.Float64()
		got := Percentile(v, q)
		found := false
		atOrBelow := 0
		for _, x := range v {
			if x == got {
				found = true
			}
			if x <= got {
				atOrBelow++
			}
		}
		if !found {
			return false
		}
		return float64(atOrBelow) >= q*float64(n)-1e-9
	}
	if err := quick.Check(func() bool { return prop() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStandardMonthlyBillingIndex(t *testing.T) {
	m := StandardMonthly()
	// The paper: 95% x 30 x 24 x 60/5 = 8208.
	if got := m.BillingIndex(); got != 8208 {
		t.Fatalf("BillingIndex = %d, want 8208", got)
	}
	if m.PeriodIntervals != 8640 {
		t.Fatalf("PeriodIntervals = %d, want 8640", m.PeriodIntervals)
	}
}

func TestChargingVolumeIsSortedIndex(t *testing.T) {
	m := Model{Q: 0.95, PeriodIntervals: 100}
	v := make([]float64, 100)
	for i := range v {
		v[i] = float64(i + 1) // 1..100
	}
	rand.New(rand.NewSource(1)).Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
	if got := m.ChargingVolume(v); got != 95 {
		t.Fatalf("charging volume = %v, want 95", got)
	}
}

func TestPredictorWindows(t *testing.T) {
	m := Model{Q: 0.5, PeriodIntervals: 10}
	p := &Predictor{Model: m, WarmupIntervals: 3}
	// First period, warmup: uses whole (short) history.
	hist := []float64{1, 2, 3}
	got := p.PredictChargingVolume(hist)
	if got != 2 { // median of 1,2,3
		t.Fatalf("warmup prediction = %v, want 2", got)
	}
	// Second period, past warmup: history of 15 intervals; i=15, s=10,
	// i > s+M=13 so use history[10:15].
	hist = make([]float64, 15)
	for i := range hist {
		hist[i] = float64(i)
	}
	got = p.PredictChargingVolume(hist)
	want := Percentile(hist[10:15], 0.5)
	if got != want {
		t.Fatalf("in-period prediction = %v, want %v", got, want)
	}
	// Second period, inside warmup: i=11, s=10, i <= 13 so window is the
	// last I=10 samples: hist[1:11].
	got = p.PredictChargingVolume(hist[:11])
	want = Percentile(hist[1:11], 0.5)
	if got != want {
		t.Fatalf("cross-period prediction = %v, want %v", got, want)
	}
	if p.PredictChargingVolume(nil) != 0 {
		t.Fatal("empty history must predict 0")
	}
}

func TestMovingAverage(t *testing.T) {
	m := MovingAverage{Window: 3}
	if got := m.Predict([]float64{1, 2, 3, 4, 5}); got != 4 {
		t.Fatalf("MA(3) = %v, want 4", got)
	}
	if got := m.Predict([]float64{6}); got != 6 {
		t.Fatalf("MA on short history = %v, want 6", got)
	}
	if got := m.Predict(nil); got != 0 {
		t.Fatalf("MA on empty = %v, want 0", got)
	}
	if got := (MovingAverage{}).Predict([]float64{2, 8}); got != 8 {
		t.Fatalf("MA with zero window = %v, want last sample 8", got)
	}
}

func TestVirtualCapacityNonNegative(t *testing.T) {
	e := &VirtualCapacityEstimator{
		Predictor: Predictor{Model: Model{Q: 0.95, PeriodIntervals: 100}, WarmupIntervals: 10},
		Average:   MovingAverage{Window: 5},
	}
	// Rising traffic: recent average may exceed the charging percentile.
	hist := make([]float64, 50)
	for i := range hist {
		hist[i] = float64(i * i)
	}
	if v := e.Estimate(hist); v < 0 {
		t.Fatalf("virtual capacity = %v, must be >= 0", v)
	}
	// Flat traffic: estimate should be ~0 (charge == average).
	flat := make([]float64, 50)
	for i := range flat {
		flat[i] = 100
	}
	if v := e.Estimate(flat); v != 0 {
		t.Fatalf("flat-traffic virtual capacity = %v, want 0", v)
	}
	// Bursty history with quiet present: headroom appears.
	bursty := append(append([]float64{}, make([]float64, 40)...), 1000)
	for i := 0; i < 40; i++ {
		bursty[i] = 900
	}
	bursty = append(bursty, 10, 10, 10, 10, 10)
	if v := e.Estimate(bursty); v <= 0 {
		t.Fatalf("bursty virtual capacity = %v, want > 0", v)
	}
}

func TestLedgerAdd(t *testing.T) {
	l := NewLedger(300)
	l.Add(0, 10)
	l.Add(299, 5)
	l.Add(300, 7)
	l.Add(3000, 1)
	v := l.Volumes()
	if v[0] != 15 || v[1] != 7 || v[10] != 1 {
		t.Fatalf("volumes = %v", v)
	}
	if l.Total() != 23 {
		t.Fatalf("total = %v, want 23", l.Total())
	}
}

func TestLedgerAddSpread(t *testing.T) {
	l := NewLedger(100)
	l.AddSpread(50, 250, 200) // 1 byte/sec over [50,250)
	v := l.Volumes()
	if math.Abs(v[0]-50) > 1e-9 || math.Abs(v[1]-100) > 1e-9 || math.Abs(v[2]-50) > 1e-9 {
		t.Fatalf("spread volumes = %v", v)
	}
	if math.Abs(l.Total()-200) > 1e-9 {
		t.Fatalf("total = %v, want 200", l.Total())
	}
	// Degenerate span collapses to a point.
	l2 := NewLedger(100)
	l2.AddSpread(10, 10, 42)
	if l2.Volumes()[0] != 42 {
		t.Fatal("degenerate spread lost bytes")
	}
}

func TestLedgerChargingVolumePadsZeros(t *testing.T) {
	l := NewLedger(300)
	l.Add(0, 100)
	m := Model{Q: 0.95, PeriodIntervals: 100}
	// 1 busy interval out of 100: the 95th percentile must be 0.
	if got := l.ChargingVolume(m); got != 0 {
		t.Fatalf("charging volume = %v, want 0", got)
	}
}

func TestLedgerPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewLedger(0) },
		func() { NewLedger(300).Add(-1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestPredictorOnDiurnalTraces reproduces the Section 6.1 observation:
// on diurnal traffic whose level shifts between periods, the hybrid
// predictor tracks the new period's charging volume more accurately than
// a pure sliding window once warmup has passed.
func TestPredictorOnDiurnalTraces(t *testing.T) {
	iPer := 288 // one day as a mini charging period
	cfg := traffic.DefaultConfig(1e9)
	day1 := traffic.Generate(cfg, iPer)
	cfg2 := cfg
	cfg2.MeanBps = 4e9 // traffic quadruples in period 2
	cfg2.Seed = 2
	day2 := traffic.Generate(cfg2, iPer)
	hist := append(append([]float64{}, day1...), day2[:200]...)

	model := Model{Q: 0.95, PeriodIntervals: iPer}
	hybrid := &Predictor{Model: model, WarmupIntervals: 24}
	pureWindow := Percentile(hist[len(hist)-iPer:], model.Q)
	hybridPred := hybrid.PredictChargingVolume(hist)
	truth := Percentile(day2, model.Q)

	errHybrid := math.Abs(hybridPred - truth)
	errPure := math.Abs(pureWindow - truth)
	if errHybrid > errPure {
		t.Fatalf("hybrid error %v > pure sliding-window error %v", errHybrid, errPure)
	}
}

func TestPercentileMatchesSortDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		sorted := append([]float64(nil), v...)
		sort.Float64s(sorted)
		q := 0.95
		idx := int(math.Ceil(q*float64(n))) - 1
		if got := Percentile(v, q); got != sorted[idx] {
			t.Fatalf("trial %d: Percentile = %v, want %v", trial, got, sorted[idx])
		}
	}
}
