// Package lp implements a small, dependency-free linear-programming
// solver: a dense-tableau two-phase primal simplex with Bland's
// anti-cycling rule.
//
// The P4P reproduction uses it for the application-side optimizations of
// the paper's Section 4 — the upload/download matching program (eqs. 1–4),
// the β-constrained network-efficiency program (eqs. 5–7) — and for the
// MLU-optimal traffic-engineering baseline against which the dual
// decomposition of Section 5 is validated. Problems at PID granularity
// are tiny (tens of variables), so a dense tableau is both simple and
// fast enough.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of a linear constraint.
type Relation int

const (
	// LE constrains coeffs·x <= rhs.
	LE Relation = iota
	// GE constrains coeffs·x >= rhs.
	GE
	// EQ constrains coeffs·x == rhs.
	EQ
)

func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Constraint is one row of the program. Coeffs is indexed by variable;
// missing trailing coefficients are treated as zero.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
}

// Problem is a linear program over n non-negative variables.
type Problem struct {
	NumVars     int
	Objective   []float64 // length NumVars; missing entries are zero
	Maximize    bool
	Constraints []Constraint
}

// Status reports the outcome of Solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective is unbounded over the feasible set.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution holds the result of Solve.
type Solution struct {
	Status    Status
	X         []float64 // variable values (valid only when Optimal)
	Objective float64   // objective value in the problem's own sense
}

// ErrBadProblem reports a structurally invalid problem.
var ErrBadProblem = errors.New("lp: malformed problem")

const eps = 1e-9

// Solve runs two-phase simplex and returns the solution. The error is
// non-nil only for malformed input; Infeasible and Unbounded are reported
// via Solution.Status.
func Solve(p *Problem) (*Solution, error) {
	if p.NumVars <= 0 {
		return nil, fmt.Errorf("%w: NumVars = %d", ErrBadProblem, p.NumVars)
	}
	if len(p.Objective) > p.NumVars {
		return nil, fmt.Errorf("%w: objective has %d coefficients for %d variables", ErrBadProblem, len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) > p.NumVars {
			return nil, fmt.Errorf("%w: constraint %d has %d coefficients for %d variables", ErrBadProblem, i, len(c.Coeffs), p.NumVars)
		}
	}

	t := newTableau(p)
	if t.needPhase1 {
		if !t.phase1() {
			return &Solution{Status: Infeasible}, nil
		}
	}
	if !t.phase2() {
		return &Solution{Status: Unbounded}, nil
	}
	x := t.extract()
	obj := 0.0
	for i := 0; i < p.NumVars && i < len(p.Objective); i++ {
		obj += p.Objective[i] * x[i]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj}, nil
}

// tableau is a dense simplex tableau in standard maximization form with
// slack, surplus, and artificial columns appended after the structural
// variables.
type tableau struct {
	p          *Problem
	m, n       int // rows (constraints) and total columns (excluding RHS)
	a          [][]float64
	b          []float64
	cost       []float64 // phase-2 objective (maximize) per column
	basis      []int     // basis[i] = column basic in row i
	artStart   int       // first artificial column index
	needPhase1 bool
	feasTol    float64 // feasibility tolerance scaled to RHS magnitude
}

func newTableau(p *Problem) *tableau {
	m := len(p.Constraints)
	// Count slack/surplus and artificial columns.
	slack := 0
	art := 0
	for _, c := range p.Constraints {
		rhs := c.RHS
		rel := c.Rel
		if rhs < 0 { // normalize to non-negative RHS
			rel = flip(rel)
		}
		switch rel {
		case LE:
			slack++
		case GE:
			slack++
			art++
		case EQ:
			art++
		}
	}
	n := p.NumVars + slack + art
	t := &tableau{
		p:        p,
		m:        m,
		n:        n,
		a:        make([][]float64, m),
		b:        make([]float64, m),
		cost:     make([]float64, n),
		basis:    make([]int, m),
		artStart: p.NumVars + slack,
	}
	// Scale the objective so its largest coefficient has magnitude one:
	// pivoting tolerances are absolute, and P4P price vectors can be
	// O(1e-10) while capacities are O(1e10). The caller-facing objective
	// value is recomputed from the original coefficients in Solve, so
	// internal scaling never leaks out.
	objScale := 0.0
	for _, v := range p.Objective {
		if math.Abs(v) > objScale {
			objScale = math.Abs(v)
		}
	}
	if objScale == 0 {
		objScale = 1
	}
	for j := 0; j < p.NumVars && j < len(p.Objective); j++ {
		if p.Maximize {
			t.cost[j] = p.Objective[j] / objScale
		} else {
			t.cost[j] = -p.Objective[j] / objScale
		}
	}
	sj := p.NumVars
	aj := t.artStart
	for i, c := range p.Constraints {
		row := make([]float64, n)
		for j := 0; j < len(c.Coeffs); j++ {
			row[j] = c.Coeffs[j]
		}
		rhs := c.RHS
		rel := c.Rel
		if rhs < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			rhs = -rhs
			rel = flip(rel)
		}
		switch rel {
		case LE:
			row[sj] = 1
			t.basis[i] = sj
			sj++
		case GE:
			row[sj] = -1
			sj++
			row[aj] = 1
			t.basis[i] = aj
			aj++
			t.needPhase1 = true
		case EQ:
			row[aj] = 1
			t.basis[i] = aj
			aj++
			t.needPhase1 = true
		}
		t.a[i] = row
		t.b[i] = rhs
	}
	// Feasibility tolerance scales with the data so that 10^9-scale
	// capacities do not trip absolute-epsilon checks.
	maxB := 1.0
	for _, v := range t.b {
		if math.Abs(v) > maxB {
			maxB = math.Abs(v)
		}
	}
	t.feasTol = 1e-7 * maxB
	return t
}

func flip(r Relation) Relation {
	switch r {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// phase1 drives the artificial variables to zero. Reports feasibility.
func (t *tableau) phase1() bool {
	// Phase-1 objective: maximize -(sum of artificials).
	c1 := make([]float64, t.n)
	for j := t.artStart; j < t.n; j++ {
		c1[j] = -1
	}
	if !t.iterate(c1) {
		// Phase 1 is bounded by construction (objective <= 0), so a
		// failure to converge cannot be unboundedness; treat as
		// infeasible defensively.
		return false
	}
	// Feasible iff all artificials are zero (to within the scaled
	// tolerance).
	for i, col := range t.basis {
		if col >= t.artStart && t.b[i] > t.feasTol {
			return false
		}
	}
	// Pivot any degenerate artificial out of the basis if possible.
	for i, col := range t.basis {
		if col < t.artStart {
			continue
		}
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: zero it so it can never constrain.
			for j := range t.a[i] {
				t.a[i][j] = 0
			}
			t.b[i] = 0
		}
	}
	return true
}

// phase2 optimizes the real objective from a feasible basis. Reports
// false on unboundedness.
func (t *tableau) phase2() bool {
	// Forbid artificial columns from re-entering.
	c2 := make([]float64, t.n)
	copy(c2, t.cost)
	for j := t.artStart; j < t.n; j++ {
		c2[j] = math.Inf(-1)
	}
	return t.iterate(c2)
}

// iterate runs simplex pivots with Bland's rule until optimality (true)
// or unboundedness (false) for the given maximization costs.
func (t *tableau) iterate(c []float64) bool {
	// Reduced costs are computed directly: rc_j = c_j - sum_i y_i a_ij
	// where y_i = c_basis[i] after eliminating basic columns. We keep it
	// simple by maintaining a working objective row.
	z := make([]float64, t.n)
	copy(z, c)
	for j := t.artStart; j < t.n; j++ {
		if math.IsInf(z[j], -1) {
			z[j] = -1e30 // large negative surrogate keeps arithmetic finite
		}
	}
	// Eliminate basic columns from the objective row.
	for i, col := range t.basis {
		if z[col] == 0 {
			continue
		}
		f := z[col]
		for j := 0; j < t.n; j++ {
			z[j] -= f * t.a[i][j]
		}
	}
	for iter := 0; ; iter++ {
		if iter > 200000 {
			// Bland's rule guarantees termination; this is a defensive
			// bound against numerical stalls.
			return true
		}
		// Entering column: Bland — smallest index with positive reduced cost.
		enter := -1
		for j := 0; j < t.n; j++ {
			if z[j] > eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return true // optimal
		}
		// Leaving row: min ratio, ties by smallest basis column (Bland).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][enter] > eps {
				ratio := t.b[i] / t.a[i][enter]
				if ratio < best-eps || (math.Abs(ratio-best) <= eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return false // unbounded
		}
		t.pivot(leave, enter)
		// Update the objective row.
		f := z[enter]
		if f != 0 {
			for j := 0; j < t.n; j++ {
				z[j] -= f * t.a[leave][j]
			}
			// Clean tiny residue on the entering column.
			z[enter] = 0
		}
	}
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	p := t.a[leave][enter]
	inv := 1 / p
	for j := 0; j < t.n; j++ {
		t.a[leave][j] *= inv
	}
	t.b[leave] *= inv
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			t.a[i][j] -= f * t.a[leave][j]
		}
		t.b[i] -= f * t.b[leave]
		t.a[i][enter] = 0
	}
	t.basis[leave] = enter
}

// extract reads the structural variable values off the basis.
func (t *tableau) extract() []float64 {
	x := make([]float64, t.p.NumVars)
	for i, col := range t.basis {
		if col < t.p.NumVars {
			v := t.b[i]
			if v < 0 && v > -eps {
				v = 0
			}
			x[col] = v
		}
	}
	return x
}
