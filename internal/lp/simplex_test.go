package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	return s
}

func TestSimpleMaximize(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{3, 2},
		Maximize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 4},
			{Coeffs: []float64{1, 3}, Rel: LE, RHS: 6},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective-12) > 1e-6 {
		t.Fatalf("objective = %v, want 12", s.Objective)
	}
}

func TestSimpleMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x <= 8 -> y=2, x=8 gives 22;
	// but x=8,y=2 => 16+6=22; x=10 violates x<=8, so optimum is x=8,y=2.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{2, 3},
		Maximize:  false,
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: GE, RHS: 10},
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 8},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective-22) > 1e-6 {
		t.Fatalf("objective = %v, want 22", s.Objective)
	}
	if math.Abs(s.X[0]-8) > 1e-6 || math.Abs(s.X[1]-2) > 1e-6 {
		t.Fatalf("x = %v, want [8 2]", s.X)
	}
}

func TestEquality(t *testing.T) {
	// max x + y s.t. x + y == 5, x - y == 1 -> x=3, y=2.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Maximize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 5},
			{Coeffs: []float64{1, -1}, Rel: EQ, RHS: 1},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.X[0]-3) > 1e-6 || math.Abs(s.X[1]-2) > 1e-6 {
		t.Fatalf("x = %v, want [3 2]", s.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Maximize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: GE, RHS: 5},
			{Coeffs: []float64{1}, Rel: LE, RHS: 3},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 0},
		Maximize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 1},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -2 is y - x >= 2. max x s.t. that and y <= 5 -> x=3.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 0},
		Maximize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{1, -1}, Rel: LE, RHS: -2},
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 5},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.X[0]-3) > 1e-6 {
		t.Fatalf("x = %v, want x[0]=3", s.X)
	}
}

func TestDegenerateRedundantRows(t *testing.T) {
	// Duplicate equality rows must not break phase 1.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 2},
		Maximize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 4},
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 4},
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 3},
		},
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective-7) > 1e-6 { // x=1, y=3
		t.Fatalf("objective = %v, want 7", s.Objective)
	}
}

func TestMalformedProblems(t *testing.T) {
	if _, err := Solve(&Problem{NumVars: 0}); err == nil {
		t.Fatal("expected error for zero variables")
	}
	if _, err := Solve(&Problem{NumVars: 1, Objective: []float64{1, 2}}); err == nil {
		t.Fatal("expected error for oversized objective")
	}
	p := &Problem{NumVars: 1, Constraints: []Constraint{{Coeffs: []float64{1, 2}, Rel: LE, RHS: 1}}}
	if _, err := Solve(p); err == nil {
		t.Fatal("expected error for oversized constraint")
	}
}

func TestTransportationProblem(t *testing.T) {
	// Classic 2x3 transportation: supplies (20, 30), demands (10, 25, 15),
	// costs [[2 3 1], [5 4 8]]. Optimal cost is known: ship s1->d3 15,
	// s1->d1 5, s2->d1 5, s2->d2 25 => 15*1+5*2+5*5+25*4 = 150.
	// (Check: alternative s1->d1 10, s1->d3 10... supplies: s1=20.
	//  s1: d1 5 + d3 15 = 20. s2: d1 5 + d2 25 = 30. Feasible.)
	vars := func(i, j int) int { return i*3 + j }
	p := &Problem{NumVars: 6, Maximize: false, Objective: []float64{2, 3, 1, 5, 4, 8}}
	sup := []float64{20, 30}
	dem := []float64{10, 25, 15}
	for i := 0; i < 2; i++ {
		row := make([]float64, 6)
		for j := 0; j < 3; j++ {
			row[vars(i, j)] = 1
		}
		p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Rel: LE, RHS: sup[i]})
	}
	for j := 0; j < 3; j++ {
		row := make([]float64, 6)
		for i := 0; i < 2; i++ {
			row[vars(i, j)] = 1
		}
		p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Rel: EQ, RHS: dem[j]})
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective-150) > 1e-6 {
		t.Fatalf("objective = %v, want 150", s.Objective)
	}
}

// TestRandomFeasibility is a property test: on random LE-only problems
// with non-negative RHS (always feasible at x=0, bounded by box
// constraints we add), the solution must satisfy every constraint and be
// at least as good as any of a set of random feasible points.
func TestRandomFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prop := func() bool {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		p := &Problem{NumVars: n, Maximize: true}
		p.Objective = make([]float64, n)
		for j := range p.Objective {
			p.Objective[j] = rng.Float64()*4 - 2
		}
		for i := 0; i < m; i++ {
			c := Constraint{Coeffs: make([]float64, n), Rel: LE, RHS: rng.Float64() * 10}
			for j := range c.Coeffs {
				c.Coeffs[j] = rng.Float64() * 2
			}
			p.Constraints = append(p.Constraints, c)
		}
		// Box: x_j <= 10 ensures boundedness.
		for j := 0; j < n; j++ {
			c := Constraint{Coeffs: make([]float64, n), Rel: LE, RHS: 10}
			c.Coeffs[j] = 1
			p.Constraints = append(p.Constraints, c)
		}
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return false
		}
		// Every constraint satisfied.
		for _, c := range p.Constraints {
			lhs := 0.0
			for j := range c.Coeffs {
				lhs += c.Coeffs[j] * s.X[j]
			}
			if lhs > c.RHS+1e-6 {
				return false
			}
		}
		for _, x := range s.X {
			if x < -1e-9 {
				return false
			}
		}
		// Objective at least as good as origin (feasible since RHS >= 0).
		return s.Objective >= -1e-9
	}
	if err := quick.Check(func() bool { return prop() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusAndRelationStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("Status strings wrong")
	}
	if Status(7).String() == "" {
		t.Fatal("unknown status should still render")
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" || Relation(9).String() == "" {
		t.Fatal("Relation strings wrong")
	}
}
