package itracker

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p4p/internal/core"
)

// TestDistancesPanicReleasesSingleflight is the regression test for the
// singleflight leak: a panic during materialization used to leave
// t.inflight set and the done channel unclosed, wedging every future
// Distances call forever. The cleanup now runs under defer, so the
// panicking caller sees the panic and everyone else just retries.
func TestDistancesPanicReleasesSingleflight(t *testing.T) {
	tr, _ := testTracker(Config{Name: "panic", ASN: 1})
	tr.testHookPreMatrix = func() { panic("injected matrix failure") }

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("materializing caller did not observe the panic")
			}
		}()
		tr.Distances("")
	}()

	tr.mu.Lock()
	leaked := tr.inflight != nil
	tr.mu.Unlock()
	if leaked {
		t.Fatal("inflight marker still set after panic")
	}

	// A later caller must succeed, not block on a never-closed channel.
	tr.testHookPreMatrix = nil
	done := make(chan error, 1)
	go func() {
		_, err := tr.Distances("")
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Distances wedged after a panicking recompute")
	}
}

// TestDistancesPanicReleasesWaiters pins the concurrent shape of the
// same bug: callers already parked on the in-flight channel when the
// materializer panics must be released and then succeed via retry.
func TestDistancesPanicReleasesWaiters(t *testing.T) {
	tr, _ := testTracker(Config{Name: "panic-waiters", ASN: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	var fired atomic.Bool
	tr.testHookPreMatrix = func() {
		if fired.CompareAndSwap(false, true) {
			close(entered)
			<-release
			panic("injected matrix failure")
		}
	}

	go func() {
		defer func() { recover() }()
		tr.Distances("")
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("materializer never started")
	}

	const waiters = 8
	results := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := tr.Distances("")
			results <- err
		}()
	}
	close(release) // let the materializer panic with waiters parked
	for i := 0; i < waiters; i++ {
		select {
		case err := <-results:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter wedged after the materializer panicked")
		}
	}
}

// encodeJSONView is the EncodeFunc the EncodedView tests share.
func encodeJSONView(v *core.View) ([]byte, error) {
	return json.Marshal(struct {
		Version int `json:"version"`
		PIDs    int `json:"pids"`
	}{v.Version, len(v.PIDs)})
}

// TestEncodedViewCachesBytes checks the byte cache contract: repeated
// calls at one version return the identical slice without re-encoding,
// and a version bump invalidates it.
func TestEncodedViewCachesBytes(t *testing.T) {
	tr, g := testTracker(Config{Name: "enc", ASN: 1})
	var encodes atomic.Int64
	enc := func(v *core.View) ([]byte, error) {
		encodes.Add(1)
		return encodeJSONView(v)
	}

	b1, ver1, err := tr.EncodedView("", "raw", enc)
	if err != nil {
		t.Fatal(err)
	}
	b2, ver2, err := tr.EncodedView("", "raw", enc)
	if err != nil {
		t.Fatal(err)
	}
	if &b1[0] != &b2[0] || ver1 != ver2 {
		t.Fatal("second call did not return the cached bytes")
	}
	if n := encodes.Load(); n != 1 {
		t.Fatalf("encodes = %d, want 1", n)
	}

	// Forms are cached independently.
	if _, _, err := tr.EncodedView("", "ranks", enc); err != nil {
		t.Fatal(err)
	}
	if n := encodes.Load(); n != 2 {
		t.Fatalf("encodes after second form = %d, want 2", n)
	}

	tr.ObserveAndUpdate(make([]float64, g.NumLinks()))
	b3, ver3, err := tr.EncodedView("", "raw", enc)
	if err != nil {
		t.Fatal(err)
	}
	if ver3 == ver1 {
		t.Fatal("version did not advance after update")
	}
	if &b3[0] == &b1[0] {
		t.Fatal("version bump did not invalidate the byte cache")
	}
	if n := encodes.Load(); n != 3 {
		t.Fatalf("encodes after bump = %d, want 3", n)
	}
}

// TestEncodedViewSingleflight races many callers at a cold cache: the
// encoder must run exactly once and everyone must get the same bytes.
func TestEncodedViewSingleflight(t *testing.T) {
	tr, g := testTracker(Config{Name: "enc-sf", ASN: 1})
	var encodes atomic.Int64
	enc := func(v *core.View) ([]byte, error) {
		encodes.Add(1)
		return encodeJSONView(v)
	}
	const rounds, workers = 5, 32
	for r := 0; r < rounds; r++ {
		tr.ObserveAndUpdate(make([]float64, g.NumLinks()))
		var wg sync.WaitGroup
		bodies := make([][]byte, workers)
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				bodies[w], _, errs[w] = tr.EncodedView("", "raw", enc)
			}(w)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			if errs[w] != nil {
				t.Fatal(errs[w])
			}
			if &bodies[w][0] != &bodies[0][0] {
				t.Fatal("concurrent callers got different encoded bodies")
			}
		}
	}
	if n := encodes.Load(); n != rounds {
		t.Fatalf("encodes = %d, want %d (one per version bump)", n, rounds)
	}
}

// TestEncodedViewErrors checks the failure contract: access control is
// enforced before any work, and encode errors are surfaced but never
// cached — the next caller retries the encoder.
func TestEncodedViewErrors(t *testing.T) {
	tr, _ := testTracker(Config{Name: "enc-err", ASN: 1, TrustedTokens: []string{"tok"}})
	if _, _, err := tr.EncodedView("wrong", "raw", encodeJSONView); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("err = %v, want ErrAccessDenied", err)
	}

	boom := errors.New("transient encode failure")
	calls := 0
	enc := func(v *core.View) ([]byte, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return encodeJSONView(v)
	}
	if _, _, err := tr.EncodedView("tok", "raw", enc); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected encode failure", err)
	}
	if _, _, err := tr.EncodedView("tok", "raw", enc); err != nil {
		t.Fatalf("retry after encode failure: %v (error was cached?)", err)
	}
	if calls != 2 {
		t.Fatalf("encoder calls = %d, want 2", calls)
	}
}

// TestEncodedViewPanicReleasesSingleflight mirrors the Distances panic
// regression for the per-form encode singleflight: a panicking encoder
// must not strand encInflight.
func TestEncodedViewPanicReleasesSingleflight(t *testing.T) {
	tr, _ := testTracker(Config{Name: "enc-panic", ASN: 1})
	first := true
	enc := func(v *core.View) ([]byte, error) {
		if first {
			first = false
			panic("injected encode failure")
		}
		return encodeJSONView(v)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("encoding caller did not observe the panic")
			}
		}()
		tr.EncodedView("", "raw", enc)
	}()

	tr.mu.Lock()
	leaked := tr.encInflight["raw"] != nil
	tr.mu.Unlock()
	if leaked {
		t.Fatal("encInflight marker still set after panic")
	}

	done := make(chan error, 1)
	go func() {
		_, _, err := tr.EncodedView("", "raw", enc)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("EncodedView wedged after a panicking encode")
	}
}

// TestEncodedViewCountsQueries checks cache hits are accounted as
// distance queries, matching the Distances bookkeeping.
func TestEncodedViewCountsQueries(t *testing.T) {
	tr, _ := testTracker(Config{Name: "enc-count", ASN: 1})
	for i := 0; i < 3; i++ {
		if _, _, err := tr.EncodedView("", "raw", encodeJSONView); err != nil {
			t.Fatal(err)
		}
	}
	// The miss routes through Distances (1 query); the two hits add one
	// each.
	if q, _ := tr.Stats(); q != 3 {
		t.Fatalf("queries = %d, want 3", q)
	}
}

// TestEncodedViewBodyMatchesVersion cross-checks the returned version
// against the encoded payload under concurrent version bumps.
func TestEncodedViewBodyMatchesVersion(t *testing.T) {
	tr, g := testTracker(Config{Name: "enc-ver", ASN: 1})
	loads := make([]float64, g.NumLinks())
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			tr.ObserveAndUpdate(loads)
		}
		close(stop)
	}()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				body, ver, err := tr.EncodedView("", "raw", encodeJSONView)
				if err != nil {
					t.Errorf("EncodedView: %v", err)
					return
				}
				var wire struct {
					Version int `json:"version"`
				}
				if err := json.Unmarshal(body, &wire); err != nil {
					t.Errorf("cached body not valid JSON: %v", err)
					return
				}
				if wire.Version != ver {
					t.Errorf("body version %d != returned version %d", wire.Version, ver)
					return
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal(fmt.Errorf("torn version/body pairing under concurrent updates"))
	}
}
