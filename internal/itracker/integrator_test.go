package itracker

import (
	"testing"

	"p4p/internal/core"
	"p4p/internal/topology"
)

func twoProviderIntegrator(t *testing.T) (*Integrator, *Server, *Server) {
	t.Helper()
	build := func(name string, asn int, tokens ...string) *Server {
		g := topology.Abilene()
		r := topology.ComputeRouting(g)
		e := core.NewEngine(g, r, core.Config{})
		return New(Config{Name: name, ASN: asn, TrustedTokens: tokens}, e, nil)
	}
	a := build("isp-a", 1, "tok-a")
	b := build("isp-b", 2)
	in := NewIntegrator()
	in.Register(a, "tok-a")
	in.Register(b, "")
	return in, a, b
}

func TestIntegratorViews(t *testing.T) {
	in, a, _ := twoProviderIntegrator(t)
	v1, err := in.ViewForAS(1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := in.ViewForAS(2)
	if err != nil {
		t.Fatal(err)
	}
	if v1 == nil || v2 == nil {
		t.Fatal("missing views")
	}
	// Cached until the provider updates.
	again, _ := in.ViewForAS(1)
	if again != v1 {
		t.Fatal("integrator did not cache the view")
	}
	a.ObserveAndUpdate(make([]float64, a.Engine().Graph().NumLinks()))
	fresh, err := in.ViewForAS(1)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == v1 {
		t.Fatal("integrator served a stale view after a price update")
	}
}

func TestIntegratorUsesTrustTokens(t *testing.T) {
	// Provider A restricts access; the integrator holds the token, so
	// queries succeed even though anonymous access would fail.
	in, a, _ := twoProviderIntegrator(t)
	if _, err := a.Distances("wrong"); err == nil {
		t.Fatal("provider should be restricted")
	}
	if _, err := in.ViewForAS(1); err != nil {
		t.Fatalf("integrator query failed: %v", err)
	}
}

func TestIntegratorUnknownAS(t *testing.T) {
	in, _, _ := twoProviderIntegrator(t)
	if _, err := in.ViewForAS(99); err == nil {
		t.Fatal("expected error for unknown AS")
	}
	if _, err := in.PolicyForAS(99); err == nil {
		t.Fatal("expected policy error for unknown AS")
	}
	if _, err := in.CapabilitiesForAS(99, ""); err == nil {
		t.Fatal("expected capability error for unknown AS")
	}
}

func TestIntegratorPolicyAndCapabilities(t *testing.T) {
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	e := core.NewEngine(g, r, core.Config{})
	tr := New(Config{
		Name: "p", ASN: 7,
		Policy:       Policy{HeavyUsageUtil: 0.9},
		Capabilities: []Capability{{Kind: "cache", PID: 1, CapacityBps: 1e9}},
	}, e, nil)
	in := NewIntegrator()
	in.Register(tr, "")
	pol, err := in.PolicyForAS(7)
	if err != nil || pol.HeavyUsageUtil != 0.9 {
		t.Fatalf("policy = %+v, %v", pol, err)
	}
	caps, err := in.CapabilitiesForAS(7, "cache")
	if err != nil || len(caps) != 1 {
		t.Fatalf("capabilities = %+v, %v", caps, err)
	}
	if got := in.ASNs(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("ASNs = %v", got)
	}
}
