package itracker

import (
	"fmt"
	"sync"

	"p4p/internal/core"
)

// Integrator aggregates the information of multiple iTrackers behind a
// single query point — the deployment option of Section 3: "There also
// can be an integrator that aggregates the information from multiple
// iTrackers to interact with applications." An appTracker serving a
// swarm that spans providers asks the integrator instead of tracking
// every provider portal itself.
//
// The integrator holds one trust token per provider and caches each
// provider's view by engine version.
type Integrator struct {
	mu       sync.Mutex
	trackers map[int]*Server // by ASN
	tokens   map[int]string
	cache    map[int]*core.View
}

// NewIntegrator returns an empty integrator.
func NewIntegrator() *Integrator {
	return &Integrator{
		trackers: map[int]*Server{},
		tokens:   map[int]string{},
		cache:    map[int]*core.View{},
	}
}

// Register adds a provider's iTracker with the token the integrator is
// trusted under. Registering the same ASN twice replaces the entry.
func (in *Integrator) Register(tr *Server, token string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.trackers[tr.ASN()] = tr
	in.tokens[tr.ASN()] = token
	delete(in.cache, tr.ASN())
}

// ASNs lists the registered providers.
func (in *Integrator) ASNs() []int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]int, 0, len(in.trackers))
	for asn := range in.trackers {
		out = append(out, asn)
	}
	return out
}

// ViewForAS returns the current distance view of one provider,
// refreshing the cache when the provider's prices changed.
func (in *Integrator) ViewForAS(asn int) (*core.View, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	tr, ok := in.trackers[asn]
	if !ok {
		return nil, fmt.Errorf("itracker: no provider registered for AS %d", asn)
	}
	if v, ok := in.cache[asn]; ok && v.Version == tr.Engine().Version() {
		return v, nil
	}
	v, err := tr.Distances(in.tokens[asn])
	if err != nil {
		return nil, err
	}
	in.cache[asn] = v
	return v, nil
}

// PolicyForAS returns one provider's usage policy.
func (in *Integrator) PolicyForAS(asn int) (Policy, error) {
	in.mu.Lock()
	tr, ok := in.trackers[asn]
	token := in.tokens[asn]
	in.mu.Unlock()
	if !ok {
		return Policy{}, fmt.Errorf("itracker: no provider registered for AS %d", asn)
	}
	return tr.PolicyFor(token)
}

// CapabilitiesForAS returns one provider's capabilities.
func (in *Integrator) CapabilitiesForAS(asn int, kind string) ([]Capability, error) {
	in.mu.Lock()
	tr, ok := in.trackers[asn]
	token := in.tokens[asn]
	in.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("itracker: no provider registered for AS %d", asn)
	}
	return tr.Capabilities(token, kind)
}
