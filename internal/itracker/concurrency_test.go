package itracker

import (
	"sync"
	"testing"

	"p4p/internal/core"
)

// TestDistancesConcurrentSingleflight is the regression test for the
// serialized view cache: a version bump must trigger exactly one
// engine.Matrix materialization regardless of how many readers race,
// and every racer must get the same snapshot. Run with -race.
func TestDistancesConcurrentSingleflight(t *testing.T) {
	tr, g := testTracker(Config{Name: "sf", ASN: 1})
	const rounds, workers = 5, 32
	for r := 0; r < rounds; r++ {
		tr.ObserveAndUpdate(make([]float64, g.NumLinks()))
		var wg sync.WaitGroup
		views := make([]*core.View, workers)
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				views[w], errs[w] = tr.Distances("")
			}(w)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			if errs[w] != nil {
				t.Fatal(errs[w])
			}
			if views[w] != views[0] {
				t.Fatal("concurrent callers got different view snapshots")
			}
		}
	}
	if got := tr.ViewRecomputes(); got != rounds {
		t.Fatalf("recomputes = %d, want %d (one per version bump)", got, rounds)
	}
	if q, _ := tr.Stats(); q != rounds*workers {
		t.Fatalf("queries = %d, want %d", q, rounds*workers)
	}
}

// TestDistancesMixedReadersAndUpdates hammers reads while prices update
// concurrently; under -race this proves readers never hold the server
// lock across a recompute and never observe a torn cache.
func TestDistancesMixedReadersAndUpdates(t *testing.T) {
	tr, g := testTracker(Config{Name: "mix", ASN: 1})
	loads := make([]float64, g.NumLinks())
	loads[0] = 5e9
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			tr.ObserveAndUpdate(loads)
		}
		close(stop)
	}()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, err := tr.Distances("")
				if err != nil || v == nil || len(v.PIDs) == 0 {
					t.Errorf("distances during updates: v=%v err=%v", v, err)
					return
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
}

// TestViewVersionPeek checks the conditional-GET helper: it reports the
// served version without materializing, and honors access control.
func TestViewVersionPeek(t *testing.T) {
	tr, g := testTracker(Config{Name: "peek", ASN: 1, TrustedTokens: []string{"tok"}})
	if _, err := tr.ViewVersion("wrong"); err == nil {
		t.Fatal("expected access denial")
	}
	ver, err := tr.ViewVersion("tok")
	if err != nil {
		t.Fatal(err)
	}
	if n := tr.ViewRecomputes(); n != 0 {
		t.Fatalf("version peek materialized the view (%d recomputes)", n)
	}
	v, err := tr.Distances("tok")
	if err != nil {
		t.Fatal(err)
	}
	if v.Version != ver {
		t.Fatalf("served version %d, peeked %d", v.Version, ver)
	}
	tr.ObserveAndUpdate(make([]float64, g.NumLinks()))
	if ver2, _ := tr.ViewVersion("tok"); ver2 == ver {
		t.Fatal("version did not advance after update")
	}
}
