package itracker

import (
	"errors"
	"net"
	"testing"

	"p4p/internal/core"
	"p4p/internal/topology"
)

func testTracker(cfg Config) (*Server, *topology.Graph) {
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	e := core.NewEngine(g, r, core.Config{})
	return New(cfg, e, SyntheticPIDMap(g)), g
}

func TestPolicyInterface(t *testing.T) {
	pol := Policy{
		TimeOfDay:          []LinkUsagePolicy{{Link: 3, AvoidFrom: 18, AvoidTo: 23}},
		NearCongestionUtil: 0.7,
		HeavyUsageUtil:     0.9,
	}
	tr, _ := testTracker(Config{Name: "test", ASN: 1, Policy: pol})
	got, err := tr.PolicyFor("")
	if err != nil {
		t.Fatal(err)
	}
	if got.NearCongestionUtil != 0.7 || len(got.TimeOfDay) != 1 {
		t.Fatalf("policy = %+v", got)
	}
}

func TestLinkUsagePolicyWindows(t *testing.T) {
	p := LinkUsagePolicy{AvoidFrom: 18, AvoidTo: 23}
	if !p.Avoided(20) || p.Avoided(10) || p.Avoided(23) {
		t.Fatal("simple window wrong")
	}
	wrap := LinkUsagePolicy{AvoidFrom: 22, AvoidTo: 2}
	if !wrap.Avoided(23) || !wrap.Avoided(1) || wrap.Avoided(12) {
		t.Fatal("wrapping window wrong")
	}
}

func TestDistancesServeFullMesh(t *testing.T) {
	tr, g := testTracker(Config{Name: "test", ASN: 1})
	v, err := tr.Distances("")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.PIDs) != len(g.AggregationPIDs()) {
		t.Fatalf("view covers %d PIDs, want %d", len(v.PIDs), g.NumNodes())
	}
	if v.D[0][0] != 0 {
		t.Fatal("diagonal should be zero")
	}
}

func TestDistancesCachedByVersion(t *testing.T) {
	tr, g := testTracker(Config{Name: "test", ASN: 1})
	v1, _ := tr.Distances("")
	v2, _ := tr.Distances("")
	if v1 != v2 {
		t.Fatal("view not cached across queries at same engine version")
	}
	tr.ObserveAndUpdate(make([]float64, g.NumLinks()))
	v3, _ := tr.Distances("")
	if v3 == v1 {
		t.Fatal("view not refreshed after price update")
	}
	q, u := tr.Stats()
	if q != 3 || u != 1 {
		t.Fatalf("stats = %d queries, %d updates", q, u)
	}
}

func TestAccessControl(t *testing.T) {
	tr, _ := testTracker(Config{Name: "test", ASN: 1, TrustedTokens: []string{"secret"}})
	if _, err := tr.Distances("wrong"); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("err = %v, want access denied", err)
	}
	if _, err := tr.Distances("secret"); err != nil {
		t.Fatalf("trusted token rejected: %v", err)
	}
	// Open deployments accept anything.
	open, _ := testTracker(Config{Name: "open", ASN: 1})
	if _, err := open.Distances(""); err != nil {
		t.Fatal(err)
	}
}

func TestRankedDistances(t *testing.T) {
	tr, _ := testTracker(Config{Name: "test", ASN: 1})
	rv, err := tr.RankedDistances("")
	if err != nil {
		t.Fatal(err)
	}
	// Ranks are small integers starting at 1.
	for a := range rv.PIDs {
		for b := range rv.PIDs {
			if a == b {
				continue
			}
			d := rv.D[a][b]
			if d < 1 || d > float64(len(rv.PIDs)) {
				t.Fatalf("rank out of range: %v", d)
			}
		}
	}
}

func TestCapabilities(t *testing.T) {
	caps := []Capability{
		{Kind: "cache", PID: 2, CapacityBps: 1e9},
		{Kind: "on-demand-server", PID: 1, CapacityBps: 5e9, Restricted: true},
	}
	tr, _ := testTracker(Config{Name: "t", ASN: 1, TrustedTokens: []string{"tok"}, Capabilities: caps})
	pub, err := tr.Capabilities("nobody", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(pub) != 1 || pub[0].Kind != "cache" {
		t.Fatalf("public capabilities = %+v", pub)
	}
	all, _ := tr.Capabilities("tok", "")
	if len(all) != 2 {
		t.Fatalf("trusted capabilities = %+v", all)
	}
	servers, _ := tr.Capabilities("tok", "on-demand-server")
	if len(servers) != 1 || servers[0].PID != 1 {
		t.Fatalf("filtered capabilities = %+v", servers)
	}
}

func TestLookupPID(t *testing.T) {
	tr, _ := testTracker(Config{Name: "t", ASN: 42})
	pid, asn, err := tr.LookupPID(SyntheticIP(3, 7))
	if err != nil {
		t.Fatal(err)
	}
	if pid != 3 || asn != 42 {
		t.Fatalf("lookup = PID %d ASN %d", pid, asn)
	}
	if _, _, err := tr.LookupPID(net.ParseIP("192.168.1.1")); err == nil {
		t.Fatal("foreign IP should not resolve")
	}
	// Tracker without a map errors cleanly.
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	e := core.NewEngine(g, r, core.Config{})
	bare := New(Config{Name: "bare"}, e, nil)
	if _, _, err := bare.LookupPID(net.ParseIP("10.0.0.1")); err == nil {
		t.Fatal("expected error without PID map")
	}
}

func TestPIDMapLongestPrefix(t *testing.T) {
	m := NewPIDMap()
	if err := m.Add("10.0.0.0/8", 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Add("10.5.0.0/16", 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Add("10.5.5.0/24", 3); err != nil {
		t.Fatal(err)
	}
	cases := map[string]topology.PID{
		"10.1.2.3": 1,
		"10.5.9.9": 2,
		"10.5.5.7": 3,
	}
	for ip, want := range cases {
		got, ok := m.Lookup(net.ParseIP(ip))
		if !ok || got != want {
			t.Errorf("Lookup(%s) = %d, %v; want %d", ip, got, ok, want)
		}
	}
	if _, ok := m.Lookup(net.ParseIP("11.0.0.1")); ok {
		t.Fatal("unexpected match")
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	if err := m.Add("not-a-cidr", 1); err == nil {
		t.Fatal("expected CIDR parse error")
	}
}

func TestSyntheticPIDMapCoversAllPIDs(t *testing.T) {
	g := topology.ISPB()
	m := SyntheticPIDMap(g)
	for _, pid := range g.AggregationPIDs() {
		got, ok := m.Lookup(SyntheticIP(pid, 123))
		if !ok || got != pid {
			t.Fatalf("PID %d: lookup = %d, %v", pid, got, ok)
		}
	}
}
