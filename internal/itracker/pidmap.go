package itracker

import (
	"fmt"
	"net"
	"sort"
	"sync"

	"p4p/internal/topology"
)

// PIDMap maps client IP addresses to PIDs by longest-prefix match,
// implementing the paper's "A client queries the network ... to map its
// IP address to its PID and AS number". Mappings may be refreshed
// (the paper allows dynamic IP-to-PID maps), so the map is safe for
// concurrent use.
type PIDMap struct {
	mu      sync.RWMutex
	entries []pidEntry // sorted by descending prefix length
}

type pidEntry struct {
	net *net.IPNet
	pid topology.PID
}

// NewPIDMap returns an empty map.
func NewPIDMap() *PIDMap { return &PIDMap{} }

// Add registers a CIDR prefix for a PID. It returns an error for
// malformed CIDRs.
func (m *PIDMap) Add(cidr string, pid topology.PID) error {
	_, ipnet, err := net.ParseCIDR(cidr)
	if err != nil {
		return fmt.Errorf("itracker: bad CIDR %q: %w", cidr, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries = append(m.entries, pidEntry{net: ipnet, pid: pid})
	sort.SliceStable(m.entries, func(i, j int) bool {
		li, _ := m.entries[i].net.Mask.Size()
		lj, _ := m.entries[j].net.Mask.Size()
		return li > lj // longest prefix first
	})
	return nil
}

// Lookup resolves an IP to its PID by longest-prefix match.
func (m *PIDMap) Lookup(ip net.IP) (topology.PID, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, e := range m.entries {
		if e.net.Contains(ip) {
			return e.pid, true
		}
	}
	return -1, false
}

// Len reports the number of prefixes.
func (m *PIDMap) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries)
}

// SyntheticPIDMap builds a map that assigns one /16 per aggregation PID
// of a graph under 10.0.0.0/8 — the deterministic addressing scheme the
// examples and tests use in place of a provider's real provisioning
// data. PID k owns 10.k.0.0/16 (panics beyond 255 PIDs).
func SyntheticPIDMap(g *topology.Graph) *PIDMap {
	m := NewPIDMap()
	pids := g.AggregationPIDs()
	if len(pids) > 255 {
		panic("itracker: synthetic PID map supports at most 255 PIDs")
	}
	for _, pid := range pids {
		cidr := fmt.Sprintf("10.%d.0.0/16", int(pid))
		if err := m.Add(cidr, pid); err != nil {
			panic(err)
		}
	}
	return m
}

// SyntheticIP returns the i-th client address within a PID's synthetic
// /16 (10.pid.i/256.i%256).
func SyntheticIP(pid topology.PID, i int) net.IP {
	return net.IPv4(10, byte(int(pid)), byte(i/256%256), byte(i%256))
}
