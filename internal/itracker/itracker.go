// Package itracker assembles the paper's iTracker: the portal a network
// provider operates to expose the three control-plane interfaces of
// Section 3 — policy, p4p-distance, and capability — plus the IP-to-PID
// mapping clients use to locate themselves. It wraps the p-distance
// engine of internal/core with access control, view caching, and the
// per-interface data types; internal/portal serves it over HTTP.
package itracker

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"p4p/internal/core"
	"p4p/internal/telemetry"
	"p4p/internal/topology"
	"p4p/internal/trace"
)

// Policy is the network usage policy exposed by the policy interface.
// The paper names two examples, both represented here: coarse-grained
// time-of-day link usage policies, and the near-congestion /
// heavy-usage thresholds of the Comcast field tests.
type Policy struct {
	// TimeOfDay lists links applications should avoid during given
	// local hours.
	TimeOfDay []LinkUsagePolicy `json:"time_of_day,omitempty"`
	// NearCongestionUtil is the utilization above which a link is
	// considered near congestion (e.g. 0.7).
	NearCongestionUtil float64 `json:"near_congestion_util,omitempty"`
	// HeavyUsageUtil is the heavy-usage threshold (e.g. 0.9).
	HeavyUsageUtil float64 `json:"heavy_usage_util,omitempty"`
}

// LinkUsagePolicy asks applications to avoid a link during peak hours.
type LinkUsagePolicy struct {
	Link      topology.LinkID `json:"link"`
	AvoidFrom float64         `json:"avoid_from_hour"` // inclusive, [0,24)
	AvoidTo   float64         `json:"avoid_to_hour"`   // exclusive
}

// Avoided reports whether the policy asks to avoid the link at the
// given hour-of-day, handling windows that wrap midnight.
func (p LinkUsagePolicy) Avoided(hour float64) bool {
	if p.AvoidFrom <= p.AvoidTo {
		return hour >= p.AvoidFrom && hour < p.AvoidTo
	}
	return hour >= p.AvoidFrom || hour < p.AvoidTo
}

// Capability is one entry served by the capability interface: an
// on-demand server or cache a provider offers to accelerate content
// distribution.
type Capability struct {
	Kind        string       `json:"kind"` // "on-demand-server" | "cache"
	PID         topology.PID `json:"pid"`
	CapacityBps float64      `json:"capacity_bps"`
	Restricted  bool         `json:"-"` // served only to trusted callers
}

// Config parameterizes a Server.
type Config struct {
	Name string
	ASN  int
	// TrustedTokens, when non-empty, restricts the distance and
	// capability interfaces to callers presenting one of these tokens
	// ("a deployment model can be that ISPs restrict access to only
	// trusted appTrackers").
	TrustedTokens []string
	Policy        Policy
	Capabilities  []Capability
	// ServePIDs, when non-empty, restricts the external view to this
	// PID subset instead of every aggregation PID in the topology. A
	// PID-sharded deployment runs several iTrackers over one shared
	// engine, each speaking for its shard behind a federation front end
	// (internal/federation); the slice is copied, sorted, and deduped at
	// New so the served view's PID order stays canonical (ascending)
	// regardless of configuration order.
	ServePIDs []topology.PID
}

// Metrics instruments one iTracker: how long external-view recomputes
// take, which view version is being served, and — per price update —
// the super-gradient step norm and the maximum link utilization, the
// two quantities that show the paper's dual-decomposition converging
// (‖Δp‖ → 0 as the prices settle, MLU approaching the LP optimum).
// All recording methods are nil-safe.
type Metrics struct {
	// RecomputeSeconds is the view-materialization duration histogram.
	RecomputeSeconds *telemetry.Histogram
	// ViewVersion is the engine version of the cached external view.
	ViewVersion *telemetry.Gauge
	// SupergradientNorm is ‖p(τ+1) − p(τ)‖₂ of the last price update.
	SupergradientNorm *telemetry.Gauge
	// MaxLinkUtilization is the MLU implied by the last observation.
	MaxLinkUtilization *telemetry.Gauge
	// PriceUpdates counts super-gradient updates applied.
	PriceUpdates *telemetry.Counter
}

// NewMetrics registers the iTracker metric families.
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		RecomputeSeconds: r.Histogram("p4p_itracker_view_recompute_seconds",
			"Time to materialize the external p-distance view.", nil),
		ViewVersion: r.Gauge("p4p_itracker_view_version",
			"Engine version of the cached external view."),
		SupergradientNorm: r.Gauge("p4p_itracker_supergradient_norm",
			"L2 norm of the last super-gradient price step (converges toward 0)."),
		MaxLinkUtilization: r.Gauge("p4p_itracker_max_link_utilization",
			"Maximum link utilization implied by the last traffic observation."),
		PriceUpdates: r.Counter("p4p_itracker_price_updates_total",
			"Super-gradient price updates applied."),
	}
}

func (m *Metrics) recompute(d time.Duration, version int) {
	if m == nil {
		return
	}
	m.RecomputeSeconds.Observe(d.Seconds())
	m.ViewVersion.Set(float64(version))
}

func (m *Metrics) update(norm, mlu float64) {
	if m == nil {
		return
	}
	m.SupergradientNorm.Set(norm)
	m.MaxLinkUtilization.Set(mlu)
	m.PriceUpdates.Inc()
}

// Server is one provider's iTracker.
type Server struct {
	cfg    Config
	engine *core.Engine
	pidMap *PIDMap
	// Metrics, when non-nil, instruments view recomputes and price
	// updates (see NewMetrics). Set it before serving traffic.
	Metrics *Metrics

	mu          sync.Mutex
	cachedView  *core.View
	cachedVer   int
	inflight    chan struct{} // non-nil while one goroutine materializes
	recomputes  int64
	trusted     map[string]bool
	queryCount  int64
	updateCount int64

	encoded     map[string]*encodedEntry // fully-encoded bodies by form
	encInflight map[string]chan struct{} // per-form encode singleflight

	// testHookPreMatrix, when non-nil, runs inside the singleflight
	// materializer just before engine.Matrix; tests use it to inject
	// panics and to synchronize on "a recompute is in flight".
	testHookPreMatrix func()
}

// encodedEntry is one cached wire-ready response body: the bytes an
// EncodeFunc produced for the view of one engine version.
type encodedEntry struct {
	version int
	body    []byte
}

// ErrAccessDenied is returned when a caller lacks a trusted token on a
// restricted interface.
var ErrAccessDenied = errors.New("itracker: access denied")

// New builds an iTracker over a p-distance engine and an IP-to-PID map
// (which may be nil if PID lookup is not served).
func New(cfg Config, engine *core.Engine, pidMap *PIDMap) *Server {
	t := &Server{
		cfg: cfg, engine: engine, pidMap: pidMap,
		trusted:     map[string]bool{},
		encoded:     map[string]*encodedEntry{},
		encInflight: map[string]chan struct{}{},
	}
	for _, tok := range cfg.TrustedTokens {
		t.trusted[tok] = true
	}
	if len(cfg.ServePIDs) > 0 {
		pids := append([]topology.PID(nil), cfg.ServePIDs...)
		sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
		uniq := pids[:1]
		for _, p := range pids[1:] {
			if p != uniq[len(uniq)-1] {
				uniq = append(uniq, p)
			}
		}
		t.cfg.ServePIDs = uniq
	}
	return t
}

// Name returns the iTracker's name.
func (t *Server) Name() string { return t.cfg.Name }

// ASN returns the AS this iTracker speaks for.
func (t *Server) ASN() int { return t.cfg.ASN }

// Engine exposes the underlying p-distance engine (provider side only).
func (t *Server) Engine() *core.Engine { return t.engine }

// authorized reports whether a token may use restricted interfaces.
func (t *Server) authorized(token string) bool {
	if len(t.trusted) == 0 {
		return true // open deployment
	}
	return t.trusted[token]
}

// PolicyFor serves the policy interface.
func (t *Server) PolicyFor(token string) (Policy, error) {
	// The policy interface is coarse and public by design.
	return t.cfg.Policy, nil
}

// Distances serves the p4p-distance interface: the external view over
// the externally visible (aggregation) PIDs. Views are cached by engine
// version so per-client queries never recompute ("Network information
// should be aggregated and allow caching").
//
// Materialization is singleflight: when a version bump invalidates the
// cache, exactly one caller runs engine.Matrix while concurrent readers
// wait on the in-flight computation without holding the server lock, so
// a price update never serializes the whole query path behind one
// recompute. The aggregation PID set is re-derived on every recompute,
// so topology growth is picked up at the next version bump.
func (t *Server) Distances(token string) (*core.View, error) {
	//p4pvet:ignore ctxflow documented non-Context convenience wrapper; the Context variant is the library API
	return t.DistancesCtx(context.Background(), token)
}

// DistancesCtx is Distances with a caller context, used only for trace
// propagation: a sampled request records whether it paid for the
// recompute itself, waited on another goroutine's singleflight, or hit
// the cache (no span at all). The cache-hit path touches no trace code.
//
//p4p:hotpath cache-hit serving path; the recompute slow path is cut at materialize
func (t *Server) DistancesCtx(ctx context.Context, token string) (*core.View, error) {
	if !t.authorized(token) {
		return nil, ErrAccessDenied
	}
	t.mu.Lock()
	t.queryCount++
	for {
		if v := t.cachedView; v != nil && t.cachedVer == t.engine.Version() {
			t.mu.Unlock()
			return v, nil
		}
		if done := t.inflight; done != nil {
			// Another goroutine is materializing; wait for it with the
			// lock released, then re-check the cache. The wait span makes
			// a coalesced request distinguishable from the one that paid.
			t.mu.Unlock()
			_, span := trace.StartSpan(ctx, "singleflight_wait")
			<-done
			span.End()
			t.mu.Lock()
			continue
		}
		done := make(chan struct{})
		t.inflight = done
		t.mu.Unlock()
		// If a price update raced the recompute, view.Version lags the
		// engine and the next caller re-materializes; this caller still
		// gets a self-consistent snapshot.
		return t.materialize(ctx, done), nil
	}
}

// materialize runs the singleflight view recompute. Cleanup runs under
// defer: the in-flight marker is cleared and waiters are released even
// when engine.Matrix panics — otherwise one panicking recompute would
// leave t.inflight set and done unclosed, wedging every concurrent and
// future caller forever. The panic itself still propagates to the
// materializing caller; released waiters simply retry.
//
//p4p:coldpath engine.Matrix recompute, once per version bump; not on the cached serving path
func (t *Server) materialize(ctx context.Context, done chan struct{}) (view *core.View) {
	_, span := trace.StartSpan(ctx, "recompute")
	defer span.End()
	defer func() {
		t.mu.Lock()
		if view != nil {
			t.cachedView = view
			t.cachedVer = view.Version
			t.recomputes++
		}
		t.inflight = nil
		t.mu.Unlock()
		close(done)
	}()
	start := time.Now()
	pids := t.cfg.ServePIDs
	if len(pids) == 0 {
		pids = t.engine.Graph().AggregationPIDs()
	}
	if t.testHookPreMatrix != nil {
		t.testHookPreMatrix()
	}
	view = t.engine.Matrix(pids)
	t.Metrics.recompute(time.Since(start), view.Version)
	span.SetAttrInt("view_version", view.Version)
	span.SetAttrInt("pids", len(pids))
	return view
}

// EncodeFunc serializes a materialized view into wire-ready response
// bytes. It must be deterministic for a given view: EncodedView caches
// its output per (engine version, form) and replays the same bytes to
// every caller until the version bumps.
type EncodeFunc func(*core.View) ([]byte, error)

// EncodedView serves the p4p-distance interface as pre-encoded bytes:
// the fully-rendered response body for the current engine version and
// the given form, cached so steady-state portal traffic never touches
// the encoder ("network information should be aggregated and allow
// caching" — extended all the way to the wire). The returned slice is
// shared between callers and must not be mutated.
//
// Like the view itself, encoding is singleflight per form: when a
// version bump invalidates the cached bytes, exactly one caller
// materializes the view (through Distances' own singleflight) and runs
// encode, while concurrent callers wait without holding the server
// lock. Encode failures are returned, not cached.
func (t *Server) EncodedView(token, form string, encode EncodeFunc) ([]byte, int, error) {
	//p4pvet:ignore ctxflow documented non-Context convenience wrapper; the Context variant is the library API
	return t.EncodedViewCtx(context.Background(), token, form, encode)
}

// EncodedViewCtx is EncodedView with a caller context for trace
// propagation; the cache-hit fast path touches no trace code.
//
//p4p:hotpath steady-state byte replay; the encode slow path is cut at encodeView
func (t *Server) EncodedViewCtx(ctx context.Context, token, form string, encode EncodeFunc) ([]byte, int, error) {
	if !t.authorized(token) {
		return nil, 0, ErrAccessDenied
	}
	t.mu.Lock()
	for {
		if e := t.encoded[form]; e != nil && e.version == t.engine.Version() {
			t.queryCount++
			t.mu.Unlock()
			return e.body, e.version, nil
		}
		if done := t.encInflight[form]; done != nil {
			// Another goroutine is encoding this form; wait with the
			// lock released, then re-check the cache.
			t.mu.Unlock()
			_, span := trace.StartSpan(ctx, "encode_wait")
			<-done
			span.End()
			t.mu.Lock()
			continue
		}
		t.encInflight[form] = make(chan struct{})
		t.mu.Unlock()
		return t.encodeView(ctx, token, form, encode)
	}
}

// encodeView materializes and encodes the current view for one form.
// Publication and waiter release run under defer, so a panicking
// engine or encoder cannot strand the per-form singleflight.
//
//p4p:coldpath one encode per (version, form) cache miss; the hot path replays its bytes
func (t *Server) encodeView(ctx context.Context, token, form string, encode EncodeFunc) (body []byte, version int, err error) {
	ctx, span := trace.StartSpan(ctx, "encode")
	defer span.End()
	span.SetAttr("form", form)
	var entry *encodedEntry
	defer func() {
		t.mu.Lock()
		if entry != nil {
			t.encoded[form] = entry
		}
		done := t.encInflight[form]
		delete(t.encInflight, form)
		t.mu.Unlock()
		close(done)
	}()
	v, err := t.DistancesCtx(ctx, token)
	if err != nil {
		span.RecordError(err)
		return nil, 0, err
	}
	body, err = encode(v)
	if err != nil {
		span.RecordError(err)
		return nil, 0, err
	}
	span.SetAttrInt("bytes", len(body))
	entry = &encodedEntry{version: v.Version, body: body}
	return body, v.Version, nil
}

// ViewVersion reports the engine version a Distances call would serve,
// without materializing or serializing a view. The HTTP portal uses it
// to answer conditional GETs (If-None-Match) with 304 Not Modified.
//
//p4p:hotpath conditional-GET fast path; runs on every If-None-Match request
func (t *Server) ViewVersion(token string) (int, error) {
	if !t.authorized(token) {
		return 0, ErrAccessDenied
	}
	return t.engine.Version(), nil
}

// Ready reports whether a materialized view is cached — the readiness
// signal /readyz gates on, so a load balancer sends no traffic to a
// portal that would answer its first request with a cold recompute.
// cmd/itracker primes one materialization at startup.
func (t *Server) Ready() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cachedView != nil
}

// ViewRecomputes reports how many times the external view has been
// materialized from the engine — with version caching and singleflight
// this tracks version bumps, not query volume.
func (t *Server) ViewRecomputes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recomputes
}

// RankedDistances serves the coarsest form of the interface: per-source
// rankings instead of raw distances (better privacy, weaker semantics).
func (t *Server) RankedDistances(token string) (*core.View, error) {
	v, err := t.Distances(token)
	if err != nil {
		return nil, err
	}
	return core.RankView(v), nil
}

// Capabilities serves the capability interface, filtering restricted
// entries for untrusted callers ("A provider may also conduct access
// control for some contents").
func (t *Server) Capabilities(token, kind string) ([]Capability, error) {
	trusted := t.authorized(token)
	var out []Capability
	for _, c := range t.cfg.Capabilities {
		if kind != "" && c.Kind != kind {
			continue
		}
		if c.Restricted && !trusted {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].PID < out[j].PID
	})
	return out, nil
}

// LookupPID maps a client IP address to its PID and AS number. Clients
// call this once when they obtain their address.
func (t *Server) LookupPID(ip net.IP) (topology.PID, int, error) {
	if t.pidMap == nil {
		return -1, 0, fmt.Errorf("itracker %s: no PID map configured", t.cfg.Name)
	}
	pid, ok := t.pidMap.Lookup(ip)
	if !ok {
		return -1, 0, fmt.Errorf("itracker %s: %v not in this network", t.cfg.Name, ip)
	}
	return pid, t.cfg.ASN, nil
}

// ObserveAndUpdate is the provider-side measurement hook: install the
// latest per-link P4P traffic observation (bits/sec) and run one
// super-gradient price update. When instrumented, it exports the step
// norm ‖Δp‖₂ and the post-observation MLU — the live convergence
// signals of the paper's dual decomposition.
func (t *Server) ObserveAndUpdate(linkRateBps []float64) {
	t.engine.ObserveTraffic(linkRateBps)
	var before []float64
	if t.Metrics != nil {
		before = t.engine.Prices()
	}
	t.engine.Update()
	if t.Metrics != nil {
		after := t.engine.Prices()
		norm := 0.0
		for i := range after {
			d := after[i] - before[i]
			norm += d * d
		}
		t.Metrics.update(math.Sqrt(norm), t.engine.MLU())
	}
	t.mu.Lock()
	t.updateCount++
	t.mu.Unlock()
}

// Stats reports how many distance queries and price updates the
// iTracker has served (used by the aggregation-granularity ablation).
func (t *Server) Stats() (queries, updates int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.queryCount, t.updateCount
}
