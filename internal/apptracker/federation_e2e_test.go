package apptracker

// End-to-end acceptance for the federation subsystem (DESIGN.md §14):
// an appTracker aggregating three live shard portals — each an
// itracker.Server speaking for one PID shard — must produce the SAME
// peer-matching decisions as a single iTracker serving the merged view
// over the identical topology, byte-for-byte stable across independent
// federation instances, and must keep serving when one portal dies
// mid-test.
//
// Floating-point exactness makes "same decisions" a == comparison, not
// an epsilon one: every link price is dyadic (k/8), so intradomain
// sums, circuit costs, and the federation's composed
// intra + circuit + intra sums are all exact in binary floating point
// regardless of association order.

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"p4p/internal/core"
	"p4p/internal/federation"
	"p4p/internal/itracker"
	"p4p/internal/portal"
	"p4p/internal/topology"
)

// fedTopology builds a 9-PID chain-of-clusters topology: three
// 3-node provider clusters (ASNs 1,2,3) joined by single interdomain
// circuits 2–3 and 5–6, every link priced dyadically.
//
//	[0-1-2] --AB-- [3-4-5] --BC-- [6-7-8]
func fedTopology() (*core.Engine, [2]float64) {
	g := topology.NewGraph("fed-chain")
	for asn := 1; asn <= 3; asn++ {
		for i := 0; i < 3; i++ {
			g.AddNode(topology.Node{Kind: topology.Aggregation, ASN: asn})
		}
	}
	base := func(asn int) topology.PID { return topology.PID(3 * (asn - 1)) }
	for asn := 1; asn <= 3; asn++ {
		b := base(asn)
		g.AddDuplex(b, b+1, 1e9, 1, 10)
		g.AddDuplex(b+1, b+2, 1e9, 1, 10)
	}
	abF, abR := g.AddDuplex(2, 3, 1e9, 1, 100)
	bcF, bcR := g.AddDuplex(5, 6, 1e9, 1, 100)

	eng := core.NewEngine(g, topology.ComputeRouting(g), core.Config{})
	// Dyadic prices, symmetric per duplex pair: price(src↔dst) depends
	// only on the unordered endpoint sum.
	for _, l := range g.Links() {
		k := 1 + (int(l.Src)+int(l.Dst))%5
		eng.SetPrice(l.ID, float64(k)/8)
	}
	// Interdomain circuits priced higher so the selector's staging is
	// exercised (cross-AS peers are visibly more expensive).
	for _, id := range []topology.LinkID{abF, abR} {
		eng.SetPrice(id, 12.0/8)
	}
	for _, id := range []topology.LinkID{bcF, bcR} {
		eng.SetPrice(id, 20.0/8)
	}
	return eng, [2]float64{eng.PDistance(2, 3), eng.PDistance(5, 6)}
}

// fedShards starts one shard portal per provider over the shared
// engine, returning the live servers (index 0 = ASN 1, etc.).
func fedShards(t *testing.T, eng *core.Engine) []*httptest.Server {
	t.Helper()
	var servers []*httptest.Server
	for asn := 1; asn <= 3; asn++ {
		b := topology.PID(3 * (asn - 1))
		tr := itracker.New(itracker.Config{
			Name:      "shard",
			ASN:       asn,
			ServePIDs: []topology.PID{b, b + 1, b + 2},
		}, eng, nil)
		srv := httptest.NewServer(portal.NewHandler(tr))
		t.Cleanup(srv.Close)
		servers = append(servers, srv)
	}
	return servers
}

func fedCircuits(refs []PortalRef, costs [2]float64) []federation.Circuit {
	return []federation.Circuit{
		{A: refs[0].Name, APID: 2, B: refs[1].Name, BPID: 3, Cost: costs[0]},
		{A: refs[1].Name, APID: 5, B: refs[2].Name, BPID: 6, Cost: costs[1]},
	}
}

func newFederatedProvider(t *testing.T, servers []*httptest.Server, costs [2]float64) *MultiPortalViews {
	t.Helper()
	refs := make([]PortalRef, len(servers))
	for i, s := range servers {
		refs[i] = PortalRef{Name: s.URL, URL: s.URL}
	}
	mpv := NewMultiPortalViews(portal.NewClient(servers[0].URL, ""), refs, time.Hour)
	mpv.SetCircuits(fedCircuits(refs, costs))
	return mpv
}

// fedSwarm builds a deterministic 90-node swarm, 10 per PID.
func fedSwarm() []Node {
	var swarm []Node
	for pid := 0; pid < 9; pid++ {
		for i := 0; i < 10; i++ {
			swarm = append(swarm, Node{ID: pid*10 + i, PID: topology.PID(pid), ASN: pid/3 + 1})
		}
	}
	return swarm
}

func TestFederatedSelectionMatchesMergedITracker(t *testing.T) {
	eng, costs := fedTopology()
	servers := fedShards(t, eng)
	mpv := newFederatedProvider(t, servers, costs)

	// Reference: one iTracker serving the full 9-PID view directly from
	// the same engine, consumed through a plain single-portal cache.
	refSrv := httptest.NewServer(portal.NewHandler(itracker.New(itracker.Config{Name: "merged", ASN: 1}, eng, nil)))
	t.Cleanup(refSrv.Close)
	ref := NewPortalViews(portal.NewClient(refSrv.URL, ""), time.Hour)

	fedView, _ := mpv.ViewFor(1).(*core.View)
	refView, _ := ref.ViewFor(1).(*core.View)
	if fedView == nil || refView == nil {
		t.Fatal("missing view from federation or reference")
	}

	// The merged federation view is element-for-element IDENTICAL to
	// the single iTracker's: same PID universe, exactly equal distances
	// (dyadic prices make the composed sums exact).
	if !reflect.DeepEqual(fedView.PIDs, refView.PIDs) {
		t.Fatalf("PID universe differs: fed %v vs ref %v", fedView.PIDs, refView.PIDs)
	}
	for i := range fedView.D {
		for j := range fedView.D[i] {
			if fedView.D[i][j] != refView.D[i][j] {
				t.Fatalf("D[%d][%d]: federation %v != reference %v",
					i, j, fedView.D[i][j], refView.D[i][j])
			}
		}
	}

	// Identical views + identical rng streams ⇒ identical decisions for
	// every client in the swarm.
	swarm := fedSwarm()
	fedSel := &P4P{Views: mpv}
	refSel := &P4P{Views: ref}
	for _, self := range swarm {
		fedRng := rand.New(rand.NewSource(int64(self.ID)))
		refRng := rand.New(rand.NewSource(int64(self.ID)))
		got := fedSel.Select(self, swarm, 20, fedRng)
		want := refSel.Select(self, swarm, 20, refRng)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("node %d: federated selection %v != merged-iTracker selection %v",
				self.ID, got, want)
		}
	}

	// Byte stability: an independent federation instance over the same
	// shards (fresh client, fresh caches) renders the identical wire
	// body.
	mpv2 := newFederatedProvider(t, servers, costs)
	fedView2, _ := mpv2.ViewFor(1).(*core.View)
	b1, err := json.Marshal(portal.ToWire(fedView))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(portal.ToWire(fedView2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("merged wire body differs between independent federation instances")
	}
}

func TestFederatedSelectionSurvivesPortalDeath(t *testing.T) {
	eng, costs := fedTopology()
	servers := fedShards(t, eng)
	mpv := newFederatedProvider(t, servers, costs)

	before, _ := mpv.ViewFor(1).(*core.View)
	if before == nil || len(before.PIDs) != 9 {
		t.Fatalf("healthy federation view = %v", before)
	}
	swarm := fedSwarm()
	sel := &P4P{Views: mpv}
	self := swarm[0]
	want := sel.Select(self, swarm, 20, rand.New(rand.NewSource(7)))

	// Kill shard C mid-test and force a refresh round. Its
	// last-known-good view keeps the federation whole, so selection
	// still sees all 9 PIDs and — the view content being unchanged —
	// still makes the same decisions.
	servers[2].Close()
	mpv.Invalidate()
	after, _ := mpv.ViewFor(1).(*core.View)
	if after == nil {
		t.Fatal("federation stopped serving after one portal died")
	}
	if len(after.PIDs) != 9 {
		t.Fatalf("PIDs after portal death = %v, want all 9 via last-known-good", after.PIDs)
	}
	got := sel.Select(self, swarm, 20, rand.New(rand.NewSource(7)))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("selection changed after portal death: %v != %v", got, want)
	}
	st := mpv.Stats()
	dead := st[servers[2].URL]
	if dead.Failures == 0 {
		t.Errorf("dead portal shows no refresh failures: %+v", dead)
	}
	if live := st[servers[0].URL]; live.Failures != 0 {
		t.Errorf("live portal wrongly charged with failures: %+v", live)
	}
}
