package apptracker

import (
	"context"
	"log/slog"
	"sync"
	"time"

	"p4p/internal/core"
	"p4p/internal/federation"
	"p4p/internal/portal"
)

// PortalRef names one backend portal a MultiPortalViews consumes.
type PortalRef struct {
	// Name is the identity circuits reference and stats/metrics key on;
	// defaults to URL.
	Name string
	// URL is the portal root.
	URL string
}

// MultiPortalViews is the paper's real deployment shape on the
// application side: an appTracker consuming N per-provider portals at
// once and peer-matching from their union. Each portal gets its own
// PortalViews underneath — its own TTL, singleflight, failure backoff,
// and last-known-good view — so shards degrade independently: one
// stale or dead ISP keeps serving its last-known-good matrix (or drops
// out entirely) while every other shard stays fresh. The per-shard
// views compose through federation.Merge with the configured
// interdomain circuits, so src-PID-in-ISP-A → dst-PID-in-ISP-B
// resolves via intradomain + interdomain composition and the
// selector's inter-AS stage sees real cross-provider distances.
//
// The merge is cached by the identity of the input views: in steady
// state every ViewFor is N pointer-equal cache hits and one map
// lookup, and a recompose happens only when some portal actually
// delivered a new view (or dropped out).
type MultiPortalViews struct {
	// Logger, if non-nil, receives one line per merge failure.
	Logger *slog.Logger

	portals []*PortalViews
	refs    []PortalRef

	mu        sync.Mutex
	circuits  []federation.Circuit
	lastViews []*core.View // merge-cache key: input view identities
	merged    *core.View
}

// NewMultiPortalViews builds one PortalViews per ref, each backed by a
// WithBase-derived client sharing base's transport, retry policy, and
// URL-keyed ETag cache. TTL applies to every portal (zero = default).
func NewMultiPortalViews(base *portal.Client, refs []PortalRef, ttl time.Duration) *MultiPortalViews {
	m := &MultiPortalViews{}
	for _, ref := range refs {
		if ref.Name == "" {
			ref.Name = ref.URL
		}
		m.refs = append(m.refs, ref)
		m.portals = append(m.portals, NewPortalViews(base.WithBase(ref.URL), ttl))
	}
	return m
}

// Portal returns the underlying PortalViews for the i'th ref, so
// callers can tune per-portal knobs (timeouts, tracer) directly.
func (m *MultiPortalViews) Portal(i int) *PortalViews { return m.portals[i] }

// SetMetrics binds per-portal labeled metrics (satellite of DESIGN.md
// §14): each backend records under its ref name via ViewMetrics.ForPortal.
func (m *MultiPortalViews) SetMetrics(vm *ViewMetrics) {
	for i, p := range m.portals {
		p.Metrics = vm.ForPortal(m.refs[i].Name)
	}
}

// SetCircuits replaces the interdomain circuits and invalidates the
// cached merge, so the next ViewFor composes with the new costs.
// Circuit shard names are PortalRef names.
func (m *MultiPortalViews) SetCircuits(cs []federation.Circuit) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.circuits = append([]federation.Circuit(nil), cs...)
	m.lastViews = nil
	m.merged = nil
}

// Invalidate expires every portal's view and backoff, so the next
// ViewFor refreshes all of them synchronously. Experiment harnesses
// use it to observe portal-side price updates deterministically.
func (m *MultiPortalViews) Invalidate() {
	for _, p := range m.portals {
		p.Invalidate()
	}
}

// ViewFor implements ViewProvider over the union view. All portals
// refresh concurrently (each through its own TTL/singleflight/
// last-known-good machinery), portals with nothing to offer are left
// out of the merge, and with no views at all it returns nil so the
// selector degrades to native peering.
//
//p4p:coldpath fan-out refresh and merge; the steady-state cost is the pointer-identity cache check
func (m *MultiPortalViews) ViewFor(asn int) DistanceView {
	views := make([]*core.View, len(m.portals))
	var wg sync.WaitGroup
	for i, p := range m.portals {
		wg.Add(1)
		go func(i int, p *PortalViews) {
			defer wg.Done()
			if dv := p.ViewFor(asn); dv != nil {
				// PortalViews always hands back the *core.View it caches.
				views[i], _ = dv.(*core.View)
			}
		}(i, p)
	}
	wg.Wait()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lastViews != nil && sameViews(m.lastViews, views) {
		if m.merged == nil {
			return nil
		}
		return m.merged
	}
	shards := make([]federation.ShardView, 0, len(views))
	for i, v := range views {
		if v != nil {
			shards = append(shards, federation.ShardView{Name: m.refs[i].Name, View: v})
		}
	}
	m.lastViews = views
	if len(shards) == 0 {
		m.merged = nil
		return nil
	}
	merged, err := federation.Merge(shards, m.circuits)
	if err != nil {
		// Overlapping shards: a configuration error. Serve nothing
		// rather than a view known to be wrong; the selector falls back
		// to native peering.
		if m.Logger != nil {
			m.Logger.Error("federation merge failed, degrading to native peering",
				slog.String("error", err.Error()))
		}
		m.merged = nil
		return nil
	}
	m.merged = merged
	return merged
}

// sameViews reports whether two input snapshots hold identical view
// pointers (PortalViews returns the same *core.View until a refresh
// replaces it, so pointer identity is exactly "nothing changed").
func sameViews(a, b []*core.View) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BatchDistances answers src→dst queries from the merged view; pairs
// not covered (e.g. no portal serving yet) return errNoBatchSource —
// there is no single backend to fall back to for cross-shard pairs.
func (m *MultiPortalViews) BatchDistances(ctx context.Context, pairs []portal.PIDPair) ([]float64, error) {
	if len(pairs) == 0 {
		return nil, nil
	}
	dv := m.ViewFor(0)
	v, _ := dv.(*core.View)
	if v == nil || !viewCovers(v, pairs) {
		return nil, errNoBatchSource
	}
	out := make([]float64, len(pairs))
	for i, pr := range pairs {
		out[i] = v.Distance(pr.Src, pr.Dst)
	}
	return out, nil
}

// Ready reports how many portals hold a view no older than maxAge
// (maxAge <= 0 accepts any held view). An appTracker is ready when at
// least one portal serves — degraded-but-useful is the paper's
// explicit operating mode — and /readyz details the split.
func (m *MultiPortalViews) Ready(maxAge time.Duration) (serving, total int) {
	for _, p := range m.portals {
		if p.Ready(maxAge) {
			serving++
		}
	}
	return serving, len(m.portals)
}

// Stats snapshots every portal's cache counters, keyed by ref name.
func (m *MultiPortalViews) Stats() map[string]ViewStats {
	out := make(map[string]ViewStats, len(m.portals))
	for i, p := range m.portals {
		out[m.refs[i].Name] = p.Stats()
	}
	return out
}
