package apptracker

import (
	"math"
	"math/rand"
	"testing"

	"p4p/internal/core"
	"p4p/internal/topology"
)

// testViews wraps a single view served for every AS.
type testViews struct{ v *core.View }

func (t testViews) ViewFor(asn int) DistanceView {
	if t.v == nil {
		return nil
	}
	return t.v
}

// coreViews serves the concrete *core.View (needed by OptimizationService).
type coreViews struct{ v *core.View }

func (c coreViews) ViewFor(asn int) DistanceView {
	if c.v == nil {
		return nil
	}
	return c.v
}

// threePIDView: PIDs 0,1,2 with 1 close to 0, 2 far from 0.
func threePIDView() *core.View {
	return &core.View{
		PIDs: []topology.PID{0, 1, 2},
		D: [][]float64{
			{0, 1, 10},
			{1, 0, 10},
			{10, 10, 0},
		},
	}
}

func makeCandidates(spec []struct {
	pid topology.PID
	asn int
	n   int
}) []Node {
	var out []Node
	id := 1
	for _, s := range spec {
		for k := 0; k < s.n; k++ {
			out = append(out, Node{ID: id, PID: s.pid, ASN: s.asn})
			id++
		}
	}
	return out
}

func checkNoSelfNoDup(t *testing.T, self Node, candidates []Node, sel []int) {
	t.Helper()
	seen := map[int]bool{}
	for _, i := range sel {
		if i < 0 || i >= len(candidates) {
			t.Fatalf("index %d out of range", i)
		}
		if candidates[i].ID == self.ID {
			t.Fatal("selected self")
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
}

func TestRandomSelector(t *testing.T) {
	self := Node{ID: 0, PID: 0, ASN: 1}
	cands := makeCandidates([]struct {
		pid topology.PID
		asn int
		n   int
	}{{0, 1, 10}})
	cands = append(cands, Node{ID: 0, PID: 0, ASN: 1}) // self appears too
	sel := Random{}.Select(self, cands, 5, rand.New(rand.NewSource(1)))
	if len(sel) != 5 {
		t.Fatalf("selected %d, want 5", len(sel))
	}
	checkNoSelfNoDup(t, self, cands, sel)
	// Deterministic given the seed.
	sel2 := Random{}.Select(self, cands, 5, rand.New(rand.NewSource(1)))
	for i := range sel {
		if sel[i] != sel2[i] {
			t.Fatal("random selection not deterministic for fixed seed")
		}
	}
	if (Random{}).Name() != "native" {
		t.Fatal("name wrong")
	}
}

// TestRandomSelectorUniform pins the per-index selection distribution:
// an earlier Floyd's-sampling variant ran m+1 rounds with an early stop,
// which made the last candidate index unreachable whenever self was
// absent from the candidate list (the case at both simulator call
// sites). Every index must land near the uniform expectation, with and
// without self among the candidates.
func TestRandomSelectorUniform(t *testing.T) {
	const (
		n      = 40
		m      = 5
		trials = 20000
	)
	for _, tc := range []struct {
		name    string
		selfIdx int // -1: self not among candidates
	}{
		{"selfAbsent", -1},
		{"selfMid", n / 2},
		{"selfLast", n - 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			self := Node{ID: 0}
			cands := make([]Node, n)
			for i := range cands {
				cands[i] = Node{ID: i + 1}
			}
			if tc.selfIdx >= 0 {
				cands[tc.selfIdx] = self
			}
			rng := rand.New(rand.NewSource(11))
			counts := make([]int, n)
			for trial := 0; trial < trials; trial++ {
				sel := Random{}.Select(self, cands, m, rng)
				if len(sel) != m {
					t.Fatalf("selected %d, want %d", len(sel), m)
				}
				checkNoSelfNoDup(t, self, cands, sel)
				for _, i := range sel {
					counts[i]++
				}
			}
			eligible := n
			if tc.selfIdx >= 0 {
				eligible--
			}
			expected := float64(trials) * float64(m) / float64(eligible)
			for i, c := range counts {
				if i == tc.selfIdx {
					if c != 0 {
						t.Fatalf("self at index %d selected %d times", i, c)
					}
					continue
				}
				// ±20% of expectation is ~10 sigma at these sizes: loose
				// enough to never flake, tight enough that a systematically
				// unreachable or doubled index fails loudly.
				if float64(c) < 0.8*expected || float64(c) > 1.2*expected {
					t.Errorf("index %d selected %d times, want %.0f ±20%%", i, c, expected)
				}
			}
		})
	}
}

func TestRandomSelectorExhaustsCandidates(t *testing.T) {
	self := Node{ID: 0}
	cands := []Node{{ID: 1}, {ID: 2}}
	sel := Random{}.Select(self, cands, 10, rand.New(rand.NewSource(1)))
	if len(sel) != 2 {
		t.Fatalf("selected %d, want 2", len(sel))
	}
}

func TestLocalizedSelectorPicksClosest(t *testing.T) {
	self := Node{ID: 0, PID: 0}
	cands := []Node{
		{ID: 1, PID: 1}, {ID: 2, PID: 2}, {ID: 3, PID: 0}, {ID: 4, PID: 2},
	}
	delay := func(a, b Node) float64 { return math.Abs(float64(a.PID - b.PID)) }
	l := &Localized{Delay: delay}
	sel := l.Select(self, cands, 2, rand.New(rand.NewSource(1)))
	if len(sel) != 2 {
		t.Fatalf("selected %d, want 2", len(sel))
	}
	// Closest is PID 0 (index 2), then PID 1 (index 0).
	if cands[sel[0]].ID != 3 || cands[sel[1]].ID != 1 {
		t.Fatalf("localized picked %v", sel)
	}
	if l.Name() != "localized" {
		t.Fatal("name wrong")
	}
}

func TestP4PIntraPIDCap(t *testing.T) {
	self := Node{ID: 0, PID: 0, ASN: 1}
	// Plenty of candidates at self's PID plus others in the same AS.
	cands := makeCandidates([]struct {
		pid topology.PID
		asn int
		n   int
	}{{0, 1, 50}, {1, 1, 50}, {2, 1, 50}})
	p := &P4P{Views: testViews{threePIDView()}}
	m := 20
	sel := p.Select(self, cands, m, rand.New(rand.NewSource(2)))
	if len(sel) != m {
		t.Fatalf("selected %d, want %d", len(sel), m)
	}
	checkNoSelfNoDup(t, self, cands, sel)
	intra := 0
	for _, i := range sel {
		if cands[i].PID == 0 {
			intra++
		}
	}
	// Default cap: 70% of 20 = 14.
	if intra != 14 {
		t.Fatalf("intra-PID count = %d, want 14", intra)
	}
}

func TestP4PInterPIDCapAndInterAS(t *testing.T) {
	self := Node{ID: 0, PID: 0, ASN: 1}
	cands := makeCandidates([]struct {
		pid topology.PID
		asn int
		n   int
	}{{0, 1, 50}, {1, 1, 50}, {2, 2, 50}})
	// External PID 2 is as cheap as in-AS PID 1, so the adaptive bound
	// stays at its default.
	flat := &core.View{
		PIDs: []topology.PID{0, 1, 2},
		D: [][]float64{
			{0, 1, 1},
			{1, 0, 1},
			{1, 1, 0},
		},
	}
	p := &P4P{Views: testViews{flat}}
	m := 20
	sel := p.Select(self, cands, m, rand.New(rand.NewSource(3)))
	inAS := 0
	for _, i := range sel {
		if cands[i].ASN == 1 {
			inAS++
		}
	}
	// Cumulative in-AS cap: 80% of 20 = 16; the remaining 4 from AS 2.
	if inAS != 16 {
		t.Fatalf("in-AS count = %d, want 16", inAS)
	}
	if len(sel) != m {
		t.Fatalf("selected %d, want %d", len(sel), m)
	}
}

func TestP4PAdaptiveInterASQuota(t *testing.T) {
	// With the external AS ten times more expensive (the Section 6.2
	// adaptation), the in-AS bound rises toward 1 and the inter-AS
	// stage shrinks accordingly.
	self := Node{ID: 0, PID: 0, ASN: 1}
	cands := makeCandidates([]struct {
		pid topology.PID
		asn int
		n   int
	}{{0, 1, 50}, {1, 1, 50}, {2, 2, 50}})
	p := &P4P{Views: testViews{threePIDView()}} // PID 2 at distance 10
	sel := p.Select(self, cands, 20, rand.New(rand.NewSource(3)))
	external := 0
	for _, i := range sel {
		if cands[i].ASN == 2 {
			external++
		}
	}
	if external >= 4 {
		t.Fatalf("external count = %d, want < 4 (quota should adapt down)", external)
	}
	if len(sel) != 20 {
		t.Fatalf("selected %d, want 20", len(sel))
	}
}

func TestP4PPrefersNearPIDsInStage2(t *testing.T) {
	// Self at PID 0; AS has PIDs 1 (distance 1) and 2 (distance 10).
	// Stage 2 should strongly favor PID 1.
	self := Node{ID: 0, PID: 0, ASN: 1}
	cands := makeCandidates([]struct {
		pid topology.PID
		asn int
		n   int
	}{{1, 1, 100}, {2, 1, 100}})
	p := &P4P{Views: testViews{threePIDView()}, Config: P4PConfig{Gamma: 1.0}}
	rng := rand.New(rand.NewSource(4))
	near, far := 0, 0
	for trial := 0; trial < 50; trial++ {
		sel := p.Select(self, cands, 10, rng)
		for _, i := range sel[:8] { // stage 2 covers the first 80%
			switch cands[i].PID {
			case 1:
				near++
			case 2:
				far++
			}
		}
	}
	if near <= far*3 {
		t.Fatalf("stage 2 not distance-weighted: near=%d far=%d", near, far)
	}
}

func TestP4PBackfillsWhenQuotasShort(t *testing.T) {
	// Only far-PID same-AS candidates exist; the selector must still
	// return m peers via backfill.
	self := Node{ID: 0, PID: 0, ASN: 1}
	cands := makeCandidates([]struct {
		pid topology.PID
		asn int
		n   int
	}{{2, 1, 30}})
	p := &P4P{Views: testViews{threePIDView()}}
	sel := p.Select(self, cands, 10, rand.New(rand.NewSource(5)))
	if len(sel) != 10 {
		t.Fatalf("selected %d, want 10", len(sel))
	}
}

func TestP4PFallsBackWithoutView(t *testing.T) {
	self := Node{ID: 0, PID: 0, ASN: 1}
	cands := makeCandidates([]struct {
		pid topology.PID
		asn int
		n   int
	}{{0, 1, 20}})
	p := &P4P{Views: testViews{nil}}
	sel := p.Select(self, cands, 5, rand.New(rand.NewSource(6)))
	if len(sel) != 5 {
		t.Fatalf("fallback selected %d, want 5", len(sel))
	}
	if p.Name() != "p4p" {
		t.Fatal("name wrong")
	}
}

func TestP4PConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inverted bounds")
		}
	}()
	cfg := P4PConfig{UpperBoundIntraPID: 0.9, UpperBoundInterPID: 0.5}
	cfg.withDefaults()
}

func TestOptimizationServiceWeights(t *testing.T) {
	view := threePIDView()
	svc := &OptimizationService{Views: coreViews{view}}
	s := core.Session{
		PIDs: []topology.PID{0, 1, 2},
		Up:   []float64{10, 10, 10},
		Down: []float64{10, 10, 10},
	}
	m, err := svc.Optimize(1, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range s.PIDs {
		row := m.Weights[i]
		sum := 0.0
		for _, w := range row {
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("weights for PID %d sum to %v", i, sum)
		}
	}
	// PID 0 should route more weight to nearby PID 1 than to PID 2.
	if m.Weights[0][1] < m.Weights[0][2] {
		t.Fatalf("matching ignores distance: %v", m.Weights[0])
	}
}

func TestOptimizationServiceUniformFallback(t *testing.T) {
	svc := &OptimizationService{Views: coreViews{nil}}
	s := core.Session{
		PIDs: []topology.PID{0, 1},
		Up:   []float64{1, 1},
		Down: []float64{1, 1},
	}
	m, err := svc.Optimize(1, s)
	if err != nil {
		t.Fatal(err)
	}
	if m.Weights[0][1] != 1 {
		t.Fatalf("uniform fallback weights = %v", m.Weights)
	}
}

func TestPandoMatchingSelection(t *testing.T) {
	match := &Matching{Weights: map[topology.PID]map[topology.PID]float64{
		0: {1: 0.9, 2: 0.1},
	}}
	sel := &PandoMatching{MatchingFor: func(asn int) *Matching { return match }, SelfWeight: 0.5}
	self := Node{ID: 0, PID: 0, ASN: 1}
	cands := makeCandidates([]struct {
		pid topology.PID
		asn int
		n   int
	}{{0, 1, 50}, {1, 1, 50}, {2, 1, 50}})
	rng := rand.New(rand.NewSource(7))
	counts := map[topology.PID]int{}
	for trial := 0; trial < 40; trial++ {
		got := sel.Select(self, cands, 10, rng)
		checkNoSelfNoDup(t, self, cands, got)
		for _, i := range got {
			counts[cands[i].PID]++
		}
	}
	if counts[1] <= counts[2] {
		t.Fatalf("Pando matching ignores weights: %v", counts)
	}
	if sel.Name() != "p4p-pando" {
		t.Fatal("name wrong")
	}
}

func TestPandoMatchingFallback(t *testing.T) {
	sel := &PandoMatching{MatchingFor: func(asn int) *Matching { return nil }}
	self := Node{ID: 0, PID: 0, ASN: 1}
	cands := makeCandidates([]struct {
		pid topology.PID
		asn int
		n   int
	}{{0, 1, 10}})
	got := sel.Select(self, cands, 5, rand.New(rand.NewSource(8)))
	if len(got) != 5 {
		t.Fatalf("fallback selected %d", len(got))
	}
}

func TestBlackBoxImprovesCost(t *testing.T) {
	view := threePIDView()
	self := Node{ID: 0, PID: 0, ASN: 1}
	cands := makeCandidates([]struct {
		pid topology.PID
		asn int
		n   int
	}{{1, 1, 20}, {2, 1, 20}})
	bb := &BlackBox{Inner: Random{}, Views: testViews{view}, Runs: 8}
	rng := rand.New(rand.NewSource(9))
	cost := func(sel []int) float64 {
		c := 0.0
		for _, i := range sel {
			c += view.Distance(self.PID, cands[i].PID)
		}
		return c
	}
	// Expected cost of one random draw vs the best of 8: the black box
	// should be lower on average.
	var randSum, bbSum float64
	for trial := 0; trial < 30; trial++ {
		randSum += cost(Random{}.Select(self, cands, 6, rng))
		bbSum += cost(bb.Select(self, cands, 6, rng))
	}
	if bbSum >= randSum {
		t.Fatalf("black-box cost %v not below random %v", bbSum, randSum)
	}
	if bb.Name() != "native+blackbox" {
		t.Fatal("name wrong")
	}
}

func TestBlackBoxFallsBackWithoutView(t *testing.T) {
	bb := &BlackBox{Inner: Random{}, Views: testViews{nil}}
	self := Node{ID: 0}
	cands := []Node{{ID: 1}, {ID: 2}, {ID: 3}}
	sel := bb.Select(self, cands, 2, rand.New(rand.NewSource(10)))
	if len(sel) != 2 {
		t.Fatalf("selected %d", len(sel))
	}
}
