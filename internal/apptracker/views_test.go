package apptracker

import (
	"context"
	"errors"
	"math/rand"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p4p/internal/core"
	"p4p/internal/itracker"
	"p4p/internal/portal"
	"p4p/internal/telemetry"
	"p4p/internal/topology"
)

// fakeClock is an injectable clock: tests advance it explicitly
// instead of sleeping past TTL and backoff windows, so nothing here
// depends on scheduler latency (the old wall-clock sleeps flaked under
// -race on loaded machines).
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// scriptedFetcher returns canned views/errors in sequence, recording
// call counts. When started is non-nil it receives each call number as
// the fetch begins, so tests can synchronize on "the refresh is now in
// flight" instead of polling.
type scriptedFetcher struct {
	calls   atomic.Int64
	started chan int64
	fn      func(n int64) (*core.View, error)
}

func (f *scriptedFetcher) DistancesContext(ctx context.Context) (*core.View, error) {
	n := f.calls.Add(1)
	if f.started != nil {
		f.started <- n
	}
	return f.fn(n)
}

// awaitCall fails the test unless the fetcher reports call n starting
// within two seconds (a watchdog bound, not a pacing sleep).
func awaitCall(t *testing.T, started <-chan int64, n int64) {
	t.Helper()
	for {
		select {
		case got := <-started:
			if got >= n {
				return
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("fetch call %d never started", n)
		}
	}
}

func testView(version int) *core.View {
	return &core.View{
		PIDs:    []topology.PID{0, 1, 2},
		D:       [][]float64{{0, 1, 5}, {1, 0, 2}, {5, 2, 0}},
		Version: version,
	}
}

func TestPortalViewsServesLastKnownGood(t *testing.T) {
	want := testView(1)
	f := &scriptedFetcher{fn: func(n int64) (*core.View, error) {
		if n == 1 {
			return want, nil
		}
		return nil, errors.New("injected: portal down")
	}}
	clk := newFakeClock()
	p := NewPortalViews(f, time.Millisecond)
	p.FailureBackoff = time.Millisecond
	p.nowFn = clk.Now

	if got := p.ViewFor(1); got != DistanceView(want) {
		t.Fatalf("first fetch = %v", got)
	}
	clk.Advance(2 * time.Millisecond) // expire TTL and backoff
	for i := 0; i < 3; i++ {
		if got := p.ViewFor(1); got != DistanceView(want) {
			t.Fatalf("call %d: stale view not served, got %v", i, got)
		}
		clk.Advance(2 * time.Millisecond)
	}
	s := p.Stats()
	if s.Refreshes != 1 || s.Failures < 1 || s.StaleServes < 1 {
		t.Fatalf("stats = %+v", s)
	}
	if _, _, ok := p.LastKnownGood(); !ok {
		t.Fatal("last-known-good lost")
	}
}

func TestPortalViewsNilBeforeFirstFetch(t *testing.T) {
	f := &scriptedFetcher{fn: func(int64) (*core.View, error) {
		return nil, errors.New("injected: portal never up")
	}}
	p := NewPortalViews(f, time.Minute)
	if v := p.ViewFor(1); v != nil {
		t.Fatalf("expected untyped nil view, got %#v", v)
	}
	if s := p.Stats(); s.NilServes != 1 || s.Failures != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// The selector must still produce peers (native fallback).
	sel := &P4P{Views: p}
	rng := rand.New(rand.NewSource(1))
	self := Node{ID: 0, PID: 0, ASN: 1}
	var cands []Node
	for i := 1; i <= 10; i++ {
		cands = append(cands, Node{ID: i, PID: topology.PID(i % 3), ASN: 1})
	}
	idx := sel.Select(self, cands, 4, rng)
	if len(idx) != 4 {
		t.Fatalf("selection degraded to %d peers, want 4", len(idx))
	}
}

func TestPortalViewsFailureBackoff(t *testing.T) {
	f := &scriptedFetcher{fn: func(int64) (*core.View, error) {
		return nil, errors.New("injected: portal down")
	}}
	p := NewPortalViews(f, time.Nanosecond)
	p.FailureBackoff = time.Hour
	p.ViewFor(1)
	for i := 0; i < 5; i++ {
		p.ViewFor(1)
	}
	if n := f.calls.Load(); n != 1 {
		t.Fatalf("dead portal probed %d times within backoff, want 1", n)
	}
}

// TestViewMetricsMirrorStats drives the cache through refresh, failure,
// stale-serve, and nil-serve and checks the telemetry counters track
// the ViewStats struct exactly.
func TestViewMetricsMirrorStats(t *testing.T) {
	reg := telemetry.NewRegistry()
	f := &scriptedFetcher{fn: func(n int64) (*core.View, error) {
		if n == 1 {
			return testView(1), nil
		}
		return nil, errors.New("injected: portal down")
	}}
	clk := newFakeClock()
	p := NewPortalViews(f, time.Millisecond)
	p.FailureBackoff = time.Millisecond
	p.nowFn = clk.Now
	p.Metrics = NewViewMetrics(reg)

	p.ViewFor(1) // refresh
	clk.Advance(2 * time.Millisecond)
	p.ViewFor(1) // failure + stale serve
	clk.Advance(2 * time.Millisecond)
	p.ViewFor(1) // failure + stale serve

	s := p.Stats()
	checks := []struct {
		name string
		c    *telemetry.Counter
		want int64
	}{
		{"refreshes", p.Metrics.Refreshes, s.Refreshes},
		{"failures", p.Metrics.Failures, s.Failures},
		{"stale_serves", p.Metrics.StaleServes, s.StaleServes},
		{"nil_serves", p.Metrics.NilServes, s.NilServes},
		{"coalesces", p.Metrics.Coalesces, s.Coalesces},
	}
	for _, c := range checks {
		if got := int64(c.c.Value()); got != c.want {
			t.Errorf("metric %s = %d, stats say %d", c.name, got, c.want)
		}
	}
	if s.Refreshes != 1 || s.Failures < 1 || s.StaleServes < 1 {
		t.Errorf("scenario did not exercise the counters: %+v", s)
	}

	// Nil-serve path on a fresh cache that never fetched.
	p2 := NewPortalViews(&scriptedFetcher{fn: func(int64) (*core.View, error) {
		return nil, errors.New("injected: portal never up")
	}}, time.Minute)
	p2.Metrics = NewViewMetrics(telemetry.NewRegistry())
	p2.ViewFor(1)
	if got := p2.Metrics.NilServes.Value(); got != 1 {
		t.Errorf("nil serves = %v, want 1", got)
	}
}

// TestCoalescedReadsCounted checks that selections answered from the
// previous view during an in-flight refresh are counted as coalesces.
func TestCoalescedReadsCounted(t *testing.T) {
	reg := telemetry.NewRegistry()
	block := make(chan struct{})
	started := make(chan int64, 8)
	f := &scriptedFetcher{started: started, fn: func(n int64) (*core.View, error) {
		if n == 1 {
			return testView(1), nil
		}
		<-block
		return testView(2), nil
	}}
	clk := newFakeClock()
	p := NewPortalViews(f, time.Millisecond)
	p.nowFn = clk.Now
	p.Metrics = NewViewMetrics(reg)
	p.ViewFor(1) // prime
	awaitCall(t, started, 1)
	clk.Advance(2 * time.Millisecond)

	go p.ViewFor(1) // blocks in the refresh
	awaitCall(t, started, 2)
	p.ViewFor(1) // must coalesce onto the stale view
	close(block)

	if got := p.Metrics.Coalesces.Value(); got < 1 {
		t.Errorf("coalesces = %v, want >= 1", got)
	}
	if s := p.Stats(); s.Coalesces < 1 {
		t.Errorf("stats coalesces = %d, want >= 1", s.Coalesces)
	}
}

func TestPortalViewsConcurrentRefreshSingleflight(t *testing.T) {
	block := make(chan struct{})
	started := make(chan int64, 8)
	f := &scriptedFetcher{started: started, fn: func(n int64) (*core.View, error) {
		if n == 1 {
			return testView(1), nil
		}
		<-block
		return testView(2), nil
	}}
	clk := newFakeClock()
	p := NewPortalViews(f, time.Millisecond)
	p.nowFn = clk.Now
	p.ViewFor(1) // prime
	awaitCall(t, started, 1)
	clk.Advance(2 * time.Millisecond)

	// One goroutine starts a (blocked) refresh; concurrent callers must
	// be answered from the stale view immediately rather than piling up.
	go p.ViewFor(1)
	awaitCall(t, started, 2)
	done := make(chan DistanceView)
	go func() { done <- p.ViewFor(1) }()
	select {
	case v := <-done:
		if v == nil {
			t.Fatal("stale view not served during refresh")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("selection blocked behind an in-flight refresh")
	}
	close(block)
}

// TestSelectionSurvivesPortalOutage is the end-to-end acceptance test:
// a real portal server feeds a real client once; then the portal goes
// fully down and peer selection keeps running off the last-known-good
// view, flagged in the stats.
func TestSelectionSurvivesPortalOutage(t *testing.T) {
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	e := core.NewEngine(g, r, core.Config{})
	tr := itracker.New(itracker.Config{Name: "t", ASN: 1}, e, itracker.SyntheticPIDMap(g))
	srv := httptest.NewServer(portal.NewHandler(tr))

	client := portal.NewClient(srv.URL, "")
	client.Retry = portal.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, PerAttempt: time.Second}
	clk := newFakeClock()
	views := NewPortalViews(client, time.Millisecond)
	views.FailureBackoff = time.Millisecond
	views.nowFn = clk.Now

	if v := views.ViewFor(1); v == nil {
		t.Fatal("initial fetch failed")
	}

	// Portal goes fully down; advance the clock past the TTL so the
	// next selection must attempt (and fail) a refresh.
	srv.Close()
	clk.Advance(2 * time.Millisecond)

	sel := &P4P{Views: views}
	rng := rand.New(rand.NewSource(42))
	self := Node{ID: 0, PID: 0, ASN: 1}
	var cands []Node
	for i := 1; i <= 20; i++ {
		cands = append(cands, Node{ID: i, PID: topology.PID(i % 5), ASN: 1})
	}
	idx := sel.Select(self, cands, 8, rng)
	if len(idx) != 8 {
		t.Fatalf("outage selection returned %d peers, want 8", len(idx))
	}
	s := views.Stats()
	if s.Failures < 1 || s.StaleServes < 1 {
		t.Fatalf("outage not flagged in stats: %+v", s)
	}
}
