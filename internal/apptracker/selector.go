// Package apptracker implements the application-side peer selection of
// the paper's Section 6.2: the native (random) policy of stock
// BitTorrent trackers, the delay-localized policy used as the locality
// baseline, the three-stage P4P policy driven by p-distance weights, and
// the Pando-style upload/download bandwidth-matching policy built on the
// optimization of Section 4.
//
// Policies are expressed over abstract Nodes so they can serve both the
// discrete-event simulator and the HTTP appTracker binary.
package apptracker

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"p4p/internal/topology"
)

// Node is the selector's view of one client.
type Node struct {
	ID  int // opaque, unique within a swarm
	PID topology.PID
	ASN int
}

// Selector chooses up to m peers for a client from a candidate set.
// Implementations must not return self or duplicates, must be
// deterministic given the rng, and must return candidate indices.
type Selector interface {
	// Select returns indices into candidates. Fewer than m may be
	// returned when candidates run out.
	Select(self Node, candidates []Node, m int, rng *rand.Rand) []int
	// Name identifies the policy in experiment output.
	Name() string
}

// Random is the native BitTorrent appTracker: uniform random peers.
type Random struct{}

// Name implements Selector.
func (Random) Name() string { return "native" }

// Select implements Selector. It draws distinct candidates with Floyd's
// sampling algorithm — O(m) work and memory regardless of the candidate
// count, where the previous full-permutation draw was O(n) per call and
// dominated join handling in large-swarm simulations.
//
// The simulator call sites pre-exclude self from candidates, so the
// m-round draw below is plain Floyd there. Self can still appear at the
// HTTP appTracker and example call sites; node IDs are unique, so it is
// drawn at most once, and the slot it consumed is refilled with one
// uniform draw over the untouched indices. Drawing m+1 distinct uniform
// elements and discarding self leaves a uniform m-subset of the
// remaining n-1 candidates, so no index is over- or under-sampled
// either way.
func (Random) Select(self Node, candidates []Node, m int, rng *rand.Rand) []int {
	n := len(candidates)
	if m > n {
		m = n
	}
	if m <= 0 {
		return nil
	}
	chosen := make(map[int]struct{}, m+1)
	out := make([]int, 0, m)
	selfDrawn := false
	for j := n - m; j < n; j++ {
		t := rng.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		if candidates[t].ID == self.ID {
			selfDrawn = true
			continue
		}
		out = append(out, t)
	}
	if !selfDrawn || m == n {
		// m == n with self drawn: every candidate is already in the
		// draw, so the documented fewer-than-m case applies.
		return out
	}
	// Refill the slot self consumed: one uniform draw over the n-m
	// untouched indices. Rejection sampling needs n/(n-m) expected
	// attempts; the linear-scan fallback keeps the loop bounded even if
	// the rng is pathologically unlucky (at most ~(m/n)^64 probability,
	// and exact whenever a single free index remains).
	for attempts := 0; attempts < 64; attempts++ {
		t := rng.Intn(n)
		if _, dup := chosen[t]; !dup {
			return append(out, t)
		}
	}
	start := rng.Intn(n)
	for k := 0; k < n; k++ {
		t := (start + k) % n
		if _, dup := chosen[t]; !dup {
			return append(out, t)
		}
	}
	return out
}

// Localized is delay-localized BitTorrent: it ranks candidates by
// round-trip delay and picks the closest. Delay is supplied by the
// caller (the simulator derives it from propagation distances; a real
// deployment would ping).
type Localized struct {
	// Delay returns an RTT estimate between two nodes; lower is closer.
	Delay func(a, b Node) float64
}

// Name implements Selector.
func (*Localized) Name() string { return "localized" }

// Select implements Selector.
func (l *Localized) Select(self Node, candidates []Node, m int, rng *rand.Rand) []int {
	type cand struct {
		idx int
		d   float64
	}
	var cands []cand
	for i, c := range candidates {
		if c.ID == self.ID {
			continue
		}
		cands = append(cands, cand{i, l.Delay(self, c)})
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return candidates[cands[a].idx].ID < candidates[cands[b].idx].ID
	})
	if len(cands) > m {
		cands = cands[:m]
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.idx
	}
	return out
}

// ViewProvider hands a selector the current p-distance external view for
// one AS. Implementations typically query an iTracker (or its portal
// client) and cache by engine version.
type ViewProvider interface {
	// ViewFor returns the distance view from the perspective of the
	// given AS, or nil if no iTracker covers it.
	ViewFor(asn int) DistanceView
}

// DistanceView is the subset of core.View the selector needs; core.View
// satisfies it.
type DistanceView interface {
	// Weights returns normalized selection weights from PID i with the
	// concave robustness transform applied (gamma in (0,1]).
	Weights(i topology.PID, gamma float64) map[topology.PID]float64
	// Distance returns p_ij.
	Distance(i, j topology.PID) float64
}

// P4PConfig tunes the three-stage P4P selection. Zero values take the
// paper's defaults.
type P4PConfig struct {
	// UpperBoundIntraPID caps the fraction of peers chosen at the
	// client's own PID (default 0.70).
	UpperBoundIntraPID float64
	// UpperBoundInterPID caps the cumulative fraction chosen inside the
	// client's AS, including the intra-PID stage (default 0.80); it must
	// exceed UpperBoundIntraPID to be meaningful.
	UpperBoundInterPID float64
	// Gamma is the concave transform exponent applied to the inter-PID
	// weights for robustness (default 0.5; 1 disables).
	Gamma float64
}

func (c P4PConfig) withDefaults() P4PConfig {
	if c.UpperBoundIntraPID == 0 {
		c.UpperBoundIntraPID = 0.70
	}
	if c.UpperBoundInterPID == 0 {
		c.UpperBoundInterPID = 0.80
	}
	if c.Gamma == 0 {
		c.Gamma = 0.5
	}
	if c.UpperBoundInterPID < c.UpperBoundIntraPID {
		panic(fmt.Sprintf("apptracker: UpperBoundInterPID %v < UpperBoundIntraPID %v", c.UpperBoundInterPID, c.UpperBoundIntraPID))
	}
	return c
}

// P4P is the paper's three-stage staged peer selection (Section 6.2):
//
//  1. intra-PID: up to UpperBoundIntraPID*m peers at the client's PID;
//  2. inter-PID: up to UpperBoundInterPID*m peers (cumulative) inside
//     the client's AS, sampled with probability proportional to the
//     p-distance weights w_ij = 1/p_ij (concavified);
//  3. inter-AS: the remainder from other ASes, with per-AS quota
//     inversely proportional to the p-distance from the client's PID to
//     that AS, using the client's own AS's view ("the appTracker uses
//     the p-distances from AS-n's view").
type P4P struct {
	Views  ViewProvider
	Config P4PConfig
}

// Name implements Selector.
func (*P4P) Name() string { return "p4p" }

// Select implements Selector.
func (p *P4P) Select(self Node, candidates []Node, m int, rng *rand.Rand) []int {
	cfg := p.Config.withDefaults()
	view := p.Views.ViewFor(self.ASN)
	if view == nil {
		// No iTracker covers this AS: applications make default
		// decisions (the paper's robustness answer) — fall back to
		// random selection.
		return Random{}.Select(self, candidates, m, rng)
	}
	taken := make([]bool, len(candidates))
	var out []int
	take := func(i int) {
		taken[i] = true
		out = append(out, i)
	}

	// Stage 1: intra-PID.
	intraCap := int(cfg.UpperBoundIntraPID * float64(m))
	var intra []int
	for i, c := range candidates {
		if c.ID != self.ID && c.ASN == self.ASN && c.PID == self.PID {
			intra = append(intra, i)
		}
	}
	shuffle(rng, intra)
	for _, i := range intra {
		if len(out) >= intraCap {
			break
		}
		take(i)
	}

	// Stage 2: inter-PID within the AS, weighted sampling by PID. The
	// cumulative in-AS bound adapts to relative distances, per Section
	// 6.2: the default is an upper bound, raised toward 1 when external
	// ASes are far more expensive than in-AS peers (and conversely the
	// default applies when interdomain distances are comparable).
	interFrac := cfg.UpperBoundInterPID
	if adj := interASAdjustment(view, self, candidates); adj > 0 {
		interFrac += (1 - cfg.UpperBoundInterPID) * adj
	}
	interCap := int(interFrac * float64(m))
	weights := view.Weights(self.PID, cfg.Gamma)
	byPID := map[topology.PID][]int{}
	var pidsInAS []topology.PID
	for i, c := range candidates {
		if taken[i] || c.ID == self.ID || c.ASN != self.ASN || c.PID == self.PID {
			continue
		}
		if _, seen := byPID[c.PID]; !seen {
			pidsInAS = append(pidsInAS, c.PID)
		}
		byPID[c.PID] = append(byPID[c.PID], i)
	}
	sort.Slice(pidsInAS, func(a, b int) bool { return pidsInAS[a] < pidsInAS[b] })
	for _, pid := range pidsInAS {
		shuffle(rng, byPID[pid])
	}
	for len(out) < interCap {
		pid, ok := samplePID(rng, pidsInAS, byPID, weights)
		if !ok {
			break
		}
		bucket := byPID[pid]
		take(bucket[len(bucket)-1])
		byPID[pid] = bucket[:len(bucket)-1]
	}

	// Stage 3: inter-AS. The per-AS quota is inversely proportional to
	// the p-distance from the client's PID to the AS (approximated by
	// the minimum p-distance to any of that AS's candidate PIDs), and
	// within the chosen AS candidates are drawn by the same
	// inverse-distance PID weights as stage 2, so crossing traffic
	// prefers the cheaper interdomain circuits.
	var externASNs []int
	byASPID := map[int]map[topology.PID][]int{}
	asPIDs := map[int][]topology.PID{}
	asDist := map[int]float64{}
	for i, c := range candidates {
		if taken[i] || c.ID == self.ID || c.ASN == self.ASN {
			continue
		}
		if _, seen := byASPID[c.ASN]; !seen {
			externASNs = append(externASNs, c.ASN)
			byASPID[c.ASN] = map[topology.PID][]int{}
			asDist[c.ASN] = view.Distance(self.PID, c.PID)
		} else if d := view.Distance(self.PID, c.PID); d < asDist[c.ASN] {
			asDist[c.ASN] = d
		}
		if _, seen := byASPID[c.ASN][c.PID]; !seen {
			asPIDs[c.ASN] = append(asPIDs[c.ASN], c.PID)
		}
		byASPID[c.ASN][c.PID] = append(byASPID[c.ASN][c.PID], i)
	}
	sort.Ints(externASNs)
	for _, asn := range externASNs {
		sort.Slice(asPIDs[asn], func(a, b int) bool { return asPIDs[asn][a] < asPIDs[asn][b] })
		for _, pid := range asPIDs[asn] {
			shuffle(rng, byASPID[asn][pid])
		}
	}
	asWeight := map[int]float64{}
	asTotal := 0.0
	for _, asn := range externASNs {
		d := asDist[asn]
		w := 1.0
		if d > 0 {
			w = 1 / d
		} else if d == 0 {
			w = 1e6
		}
		asWeight[asn] = w
		asTotal += w
	}
	pidWeights := view.Weights(self.PID, cfg.Gamma)
	for len(out) < m && asTotal > 0 {
		// Draw the AS.
		x := rng.Float64() * asTotal
		chosen := -1
		for _, asn := range externASNs {
			if len(asPIDs[asn]) == 0 {
				continue
			}
			x -= asWeight[asn]
			if x <= 0 || chosen < 0 {
				chosen = asn
				if x <= 0 {
					break
				}
			}
		}
		if chosen < 0 {
			break
		}
		// Draw the PID within the AS by inverse p-distance.
		pid, ok := samplePID(rng, asPIDs[chosen], byASPID[chosen], pidWeights)
		if !ok {
			// AS exhausted: retire it.
			asTotal -= asWeight[chosen]
			asWeight[chosen] = 0
			asPIDs[chosen] = nil
			continue
		}
		bucket := byASPID[chosen][pid]
		take(bucket[len(bucket)-1])
		byASPID[chosen][pid] = bucket[:len(bucket)-1]
	}

	// Backfill if the staged quotas could not reach m but untaken
	// candidates remain (robustness: connectivity first). Preference
	// order keeps the locality caps meaningful: other ASes, then other
	// PIDs in this AS, then the client's own PID as a last resort.
	if len(out) < m {
		var otherAS, otherPID, samePID []int
		for i, c := range candidates {
			if taken[i] || c.ID == self.ID {
				continue
			}
			switch {
			case c.ASN != self.ASN:
				otherAS = append(otherAS, i)
			case c.PID != self.PID:
				otherPID = append(otherPID, i)
			default:
				samePID = append(samePID, i)
			}
		}
		for _, class := range [][]int{otherAS, otherPID, samePID} {
			shuffle(rng, class)
			for _, i := range class {
				if len(out) >= m {
					break
				}
				take(i)
			}
		}
	}
	return out
}

// interASAdjustment compares the mean p-distance to external-AS
// candidate PIDs against the mean to in-AS candidate PIDs and returns a
// value in [0, 1]: 0 when external peering is no more expensive than
// in-AS (keep the default bound), approaching 1 as external distances
// dwarf in-AS ones (pull nearly all peers in-AS).
func interASAdjustment(view DistanceView, self Node, candidates []Node) float64 {
	var inSum, extSum float64
	var inN, extN int
	seenIn := map[topology.PID]bool{}
	seenExt := map[topology.PID]bool{}
	for _, c := range candidates {
		if c.ID == self.ID {
			continue
		}
		d := view.Distance(self.PID, c.PID)
		if math.IsInf(d, 1) {
			continue
		}
		if c.ASN == self.ASN {
			if c.PID != self.PID && !seenIn[c.PID] {
				seenIn[c.PID] = true
				inSum += d
				inN++
			}
		} else if !seenExt[c.PID] {
			seenExt[c.PID] = true
			extSum += d
			extN++
		}
	}
	if inN == 0 || extN == 0 {
		return 0
	}
	inAvg := inSum / float64(inN)
	extAvg := extSum / float64(extN)
	if extAvg <= 0 || extAvg <= inAvg {
		return 0
	}
	// Smoothly approach 1 as extAvg/inAvg grows; at 2x the adjustment
	// is 0.5, at 10x it is 0.9.
	const eps = 1e-12
	ratio := extAvg / (inAvg + eps)
	return 1 - 1/ratio
}

// samplePID draws one key from keys with the given normalized weights,
// skipping keys with empty buckets. Returns false when nothing remains.
func samplePID(rng *rand.Rand, keys []topology.PID, buckets map[topology.PID][]int, weights map[topology.PID]float64) (topology.PID, bool) {
	total := 0.0
	for _, k := range keys {
		if len(buckets[k]) > 0 {
			w := weights[k]
			if w <= 0 {
				// PIDs absent from the weight map (e.g. unreachable)
				// still get a small floor so robustness is preserved.
				w = 1e-9
			}
			total += w
		}
	}
	if total == 0 {
		return 0, false
	}
	x := rng.Float64() * total
	for _, k := range keys {
		if len(buckets[k]) == 0 {
			continue
		}
		w := weights[k]
		if w <= 0 {
			w = 1e-9
		}
		x -= w
		if x <= 0 {
			return k, true
		}
	}
	// Floating point slack: return the last non-empty key.
	for i := len(keys) - 1; i >= 0; i-- {
		if len(buckets[keys[i]]) > 0 {
			return keys[i], true
		}
	}
	return 0, false
}

func shuffle(rng *rand.Rand, s []int) {
	rng.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}
