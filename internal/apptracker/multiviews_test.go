package apptracker

import (
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"p4p/internal/core"
	"p4p/internal/federation"
	"p4p/internal/portal"
	"p4p/internal/telemetry"
	"p4p/internal/topology"
)

func mviewEast(version int) *core.View {
	return &core.View{Version: version, PIDs: []topology.PID{0, 1}, D: [][]float64{{0, 2}, {2, 0}}}
}

func mviewWest(version int) *core.View {
	return &core.View{Version: version, PIDs: []topology.PID{10, 11}, D: [][]float64{{0, 4}, {4, 0}}}
}

// newTestMulti wires a MultiPortalViews over scripted fetchers and one
// shared fake clock, bypassing real HTTP.
func newTestMulti(t *testing.T, fetchers ...*scriptedFetcher) (*MultiPortalViews, *fakeClock) {
	t.Helper()
	refs := []PortalRef{{Name: "east", URL: "http://east.test"}, {Name: "west", URL: "http://west.test"}}
	if len(fetchers) == 3 {
		refs = append(refs, PortalRef{Name: "south", URL: "http://south.test"})
	}
	mpv := NewMultiPortalViews(portal.NewClient("http://unused.test", ""), refs[:len(fetchers)], 30*time.Second)
	clk := newFakeClock()
	for i, f := range fetchers {
		p := mpv.Portal(i)
		p.Client = f
		p.nowFn = clk.Now
	}
	mpv.SetCircuits([]federation.Circuit{{A: "east", APID: 1, B: "west", BPID: 10, Cost: 7}})
	return mpv, clk
}

func TestMultiPortalViewsMergesAcrossPortals(t *testing.T) {
	east := &scriptedFetcher{fn: func(int64) (*core.View, error) { return mviewEast(1), nil }}
	west := &scriptedFetcher{fn: func(int64) (*core.View, error) { return mviewWest(1), nil }}
	mpv, _ := newTestMulti(t, east, west)

	dv := mpv.ViewFor(0)
	if dv == nil {
		t.Fatal("ViewFor = nil with both portals healthy")
	}
	v := dv.(*core.View)
	if got := v.Distance(0, 11); got != 2+7+4 {
		t.Errorf("cross-provider d(0,11) = %v, want 13", got)
	}
	if got := v.Distance(0, 1); got != 2 {
		t.Errorf("intradomain d(0,1) = %v, want 2", got)
	}

	// Steady state: the merge is cached by view identity — repeated
	// calls return the same *core.View without refetching or remerging.
	dv2 := mpv.ViewFor(0)
	if dv2.(*core.View) != v {
		t.Error("merged view not cached across calls with unchanged inputs")
	}
	if east.calls.Load() != 1 || west.calls.Load() != 1 {
		t.Errorf("fetch counts = %d/%d, want 1/1 inside the TTL",
			east.calls.Load(), west.calls.Load())
	}
}

func TestMultiPortalViewsDegradesPerPortal(t *testing.T) {
	westUp := true
	east := &scriptedFetcher{fn: func(int64) (*core.View, error) { return mviewEast(1), nil }}
	west := &scriptedFetcher{fn: func(int64) (*core.View, error) {
		if !westUp {
			return nil, errors.New("portal down")
		}
		return mviewWest(1), nil
	}}
	mpv, clk := newTestMulti(t, east, west)

	// Healthy first: both shards in the union.
	v := mpv.ViewFor(0).(*core.View)
	if _, ok := v.Index(10); !ok {
		t.Fatal("west PIDs missing from healthy merge")
	}

	// West dies past TTL+backoff: its last-known-good view keeps the
	// union whole while stats attribute the staleness to west alone.
	westUp = false
	mpv.Invalidate()
	v2 := mpv.ViewFor(0).(*core.View)
	if v2 == nil {
		t.Fatal("ViewFor = nil with east healthy and west on last-known-good")
	}
	if _, ok := v2.Index(10); !ok {
		t.Error("west's last-known-good view dropped from the merge")
	}
	st := mpv.Stats()
	if st["west"].Failures == 0 {
		t.Errorf("west stats show no failures: %+v", st["west"])
	}
	if st["east"].Failures != 0 {
		t.Errorf("east wrongly charged with failures: %+v", st["east"])
	}

	// Degraded readiness: east refreshed just now and counts as fresh;
	// west only holds a last-known-good view, so any freshness bound
	// excludes it — exactly the "1/2 portal views fresh" split /readyz
	// reports.
	if serving, total := mpv.Ready(time.Minute); serving != 1 || total != 2 {
		t.Errorf("Ready = %d/%d, want 1/2", serving, total)
	}
	clk.Advance(2 * time.Minute)
	if serving, total := mpv.Ready(time.Minute); total != 2 || serving != 0 {
		t.Errorf("Ready after aging = %d/%d, want 0/2", serving, total)
	}
}

func TestMultiPortalViewsAllPortalsDownReturnsNil(t *testing.T) {
	down := func(int64) (*core.View, error) { return nil, errors.New("down") }
	mpv, _ := newTestMulti(t, &scriptedFetcher{fn: down}, &scriptedFetcher{fn: down})
	// Must be interface nil (not a typed-nil *core.View) so the
	// selector's `view == nil` degradation branch fires.
	if dv := mpv.ViewFor(0); dv != nil {
		t.Fatalf("ViewFor = %#v, want untyped nil", dv)
	}
	if _, err := mpv.BatchDistances(context.Background(), []portal.PIDPair{{Src: 0, Dst: 1}}); err == nil {
		t.Error("BatchDistances succeeded with no views")
	}
}

func TestMultiPortalViewsMergeConflictDegrades(t *testing.T) {
	// Two portals claiming PID 0 is a deployment misconfiguration: the
	// merge fails and selection degrades to native peering rather than
	// serving a known-wrong matrix.
	east := &scriptedFetcher{fn: func(int64) (*core.View, error) { return mviewEast(1), nil }}
	eastToo := &scriptedFetcher{fn: func(int64) (*core.View, error) { return mviewEast(9), nil }}
	mpv, _ := newTestMulti(t, east, eastToo)
	if dv := mpv.ViewFor(0); dv != nil {
		t.Fatalf("ViewFor = %#v, want nil on merge conflict", dv)
	}
	// The failure is cached like a success: no re-merge storm.
	if dv := mpv.ViewFor(0); dv != nil {
		t.Fatal("conflict result not cached")
	}
}

func TestMultiPortalViewsRecomposesOnRefresh(t *testing.T) {
	east := &scriptedFetcher{fn: func(int64) (*core.View, error) { return mviewEast(1), nil }}
	west := &scriptedFetcher{fn: func(n int64) (*core.View, error) {
		v := mviewWest(int(n))
		v.D[0][1] = float64(10 * n)
		v.D[1][0] = float64(10 * n)
		return v, nil
	}}
	mpv, _ := newTestMulti(t, east, west)
	v1 := mpv.ViewFor(0).(*core.View)
	if got := v1.Distance(10, 11); got != 10 {
		t.Fatalf("d(10,11) = %v, want 10", got)
	}
	mpv.Invalidate()
	v2 := mpv.ViewFor(0).(*core.View)
	if v2 == v1 {
		t.Fatal("merge not recomposed after west delivered a new view")
	}
	if got := v2.Distance(10, 11); got != 20 {
		t.Errorf("d(10,11) = %v after refresh, want 20", got)
	}
	if got := v2.Distance(0, 10); got != 2+7 {
		t.Errorf("cross pair lost after recompose: d(0,10) = %v", got)
	}
}

func TestMultiPortalViewsCircuitChangeInvalidatesMerge(t *testing.T) {
	east := &scriptedFetcher{fn: func(int64) (*core.View, error) { return mviewEast(1), nil }}
	west := &scriptedFetcher{fn: func(int64) (*core.View, error) { return mviewWest(1), nil }}
	mpv, _ := newTestMulti(t, east, west)
	v1 := mpv.ViewFor(0).(*core.View)
	if got := v1.Distance(1, 10); got != 7 {
		t.Fatalf("d(1,10) = %v, want 7", got)
	}
	mpv.SetCircuits(nil)
	v2 := mpv.ViewFor(0).(*core.View)
	if got := v2.Distance(1, 10); !math.IsInf(got, 1) {
		t.Errorf("d(1,10) = %v after dropping circuits, want +Inf", got)
	}
}

func TestMultiPortalViewsPerPortalMetrics(t *testing.T) {
	east := &scriptedFetcher{fn: func(int64) (*core.View, error) { return mviewEast(1), nil }}
	west := &scriptedFetcher{fn: func(int64) (*core.View, error) { return nil, errors.New("down") }}
	mpv, _ := newTestMulti(t, east, west)
	reg := telemetry.NewRegistry()
	mpv.SetMetrics(NewViewMetrics(reg))
	mpv.ViewFor(0)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, req)
	expo, _ := io.ReadAll(rec.Result().Body)
	for _, want := range []string{
		`p4p_apptracker_view_refreshes_total{portal="east"} 1`,
		`p4p_apptracker_view_refresh_failures_total{portal="west"} 1`,
	} {
		if !strings.Contains(string(expo), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The aggregate portal="" series from NewViewMetrics stays
	// registered (single-portal trackers keep their dashboards).
	if !strings.Contains(string(expo), `portal=""`) {
		t.Error(`exposition missing the default portal="" series`)
	}
}
