package apptracker

import (
	"math"
	"math/rand"
	"sort"

	"p4p/internal/core"
	"p4p/internal/topology"
)

// OptimizationService is the middleware of Section 6.2's Pando
// integration ("appTracker Optimization Service"): it sits between an
// appTracker and the iTrackers, takes the application's estimates of
// per-PID upload/download capacity, queries the p-distances, solves the
// bandwidth-matching program (eqs. 1–7), and returns per-source-PID
// peering weights w_ij = t_ij / Σ_j t_ij with the same small-weight
// boost used by P4P BitTorrent for robustness.
type OptimizationService struct {
	Views ViewProvider
	// Beta is the efficiency factor of eq. (6); default 1.0 (full OPT).
	Beta float64
	// Gamma is the concave robustness exponent applied to the weights
	// (default 0.5; 1 disables).
	Gamma float64
}

// Matching is the result of one optimization round: normalized peering
// weights per source PID.
type Matching struct {
	Weights map[topology.PID]map[topology.PID]float64
}

// Optimize runs the bandwidth-matching optimization for one AS and
// session capacities. The caller supplies, per PID, the session's
// aggregate upload and download estimates (bits/sec).
func (o *OptimizationService) Optimize(asn int, s core.Session) (*Matching, error) {
	beta := o.Beta
	if beta == 0 {
		beta = 1.0
	}
	gamma := o.Gamma
	if gamma == 0 {
		gamma = 0.5
	}
	dv := o.Views.ViewFor(asn)
	view, ok := dv.(*core.View)
	if dv == nil || !ok {
		// Without a view the matching degenerates to uniform weights.
		return uniformMatching(s), nil
	}
	t, err := core.MatchTraffic(view, s, beta, nil)
	if err != nil {
		return nil, err
	}
	m := &Matching{Weights: map[topology.PID]map[topology.PID]float64{}}
	for a, i := range s.PIDs {
		row := map[topology.PID]float64{}
		sum := 0.0
		for b, j := range s.PIDs {
			if a == b || t[a][b] <= 0 {
				continue
			}
			w := pow(t[a][b], gamma) // concave boost of small weights
			row[j] = w
			sum += w
		}
		if sum == 0 {
			// This PID ships nothing under the optimum (e.g. zero upload
			// capacity); keep it connected uniformly for robustness.
			for b, j := range s.PIDs {
				if a != b {
					row[j] = 1
					sum++
				}
			}
		}
		for j := range row {
			row[j] /= sum
		}
		m.Weights[i] = row
	}
	return m, nil
}

func uniformMatching(s core.Session) *Matching {
	m := &Matching{Weights: map[topology.PID]map[topology.PID]float64{}}
	for a, i := range s.PIDs {
		row := map[topology.PID]float64{}
		n := len(s.PIDs) - 1
		if n <= 0 {
			m.Weights[i] = row
			continue
		}
		for b, j := range s.PIDs {
			if a != b {
				row[j] = 1 / float64(n)
			}
		}
		m.Weights[i] = row
	}
	return m
}

func pow(x, g float64) float64 {
	//p4pvet:ignore floatsentinel exact fast path, not a sentinel: g is a config value set literally to 1, and math.Pow(x, g) agrees whenever g is not exactly 1
	if g == 1 {
		return x
	}
	return math.Pow(x, g)
}

// PandoMatching selects peers per the Pando integration: a client at
// PID i picks peers at PID j with probability w_ij from the latest
// optimization round. Intra-PID peers are governed by SelfWeight (the
// optimization excludes the diagonal, but clients still benefit from
// same-PID neighbors; the paper's field test shows FTTP clients serving
// each other).
type PandoMatching struct {
	// MatchingFor returns the current matching for an AS, or nil.
	MatchingFor func(asn int) *Matching
	// SelfWeight is the relative weight of the client's own PID
	// (default 1.0, i.e. as attractive as the whole remote mass).
	SelfWeight float64
}

// Name implements Selector.
func (*PandoMatching) Name() string { return "p4p-pando" }

// Select implements Selector.
func (p *PandoMatching) Select(self Node, candidates []Node, m int, rng *rand.Rand) []int {
	match := p.MatchingFor(self.ASN)
	if match == nil {
		return Random{}.Select(self, candidates, m, rng)
	}
	weights := match.Weights[self.PID]
	selfW := p.SelfWeight
	if selfW == 0 {
		selfW = 1.0
	}
	byPID := map[topology.PID][]int{}
	var pids []topology.PID
	for i, c := range candidates {
		if c.ID == self.ID {
			continue
		}
		if _, seen := byPID[c.PID]; !seen {
			pids = append(pids, c.PID)
		}
		byPID[c.PID] = append(byPID[c.PID], i)
	}
	sort.Slice(pids, func(a, b int) bool { return pids[a] < pids[b] })
	for _, pid := range pids {
		shuffle(rng, byPID[pid])
	}
	wm := map[topology.PID]float64{}
	for _, pid := range pids {
		if pid == self.PID {
			wm[pid] = selfW
		} else if w, ok := weights[pid]; ok && w > 0 {
			wm[pid] = w
		}
		// PIDs outside the matching (e.g. other ASes) keep the small
		// robustness floor inside samplePID.
	}
	var out []int
	for len(out) < m {
		pid, ok := samplePID(rng, pids, byPID, wm)
		if !ok {
			break
		}
		bucket := byPID[pid]
		out = append(out, bucket[len(bucket)-1])
		byPID[pid] = bucket[:len(bucket)-1]
	}
	return out
}

// BlackBox wraps any selector with the paper's "Black-box Peer
// Selection": run the (randomized) selection Runs times, score each
// candidate set by total p-distance from the client, and keep the
// cheapest. It lets an application with opaque internal structure
// benefit from p-distances without restructuring.
type BlackBox struct {
	Inner Selector
	Views ViewProvider
	Runs  int // default 3
}

// Name implements Selector.
func (b *BlackBox) Name() string { return b.Inner.Name() + "+blackbox" }

// Select implements Selector.
func (b *BlackBox) Select(self Node, candidates []Node, m int, rng *rand.Rand) []int {
	runs := b.Runs
	if runs <= 0 {
		runs = 3
	}
	view := b.Views.ViewFor(self.ASN)
	if view == nil || runs == 1 {
		return b.Inner.Select(self, candidates, m, rng)
	}
	best := []int(nil)
	bestScore := 0.0
	for r := 0; r < runs; r++ {
		sel := b.Inner.Select(self, candidates, m, rng)
		score := 0.0
		for _, i := range sel {
			score += view.Distance(self.PID, candidates[i].PID)
		}
		if best == nil || score < bestScore {
			best = sel
			bestScore = score
		}
	}
	return best
}
