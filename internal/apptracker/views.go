package apptracker

import (
	"context"
	"errors"
	"log/slog"
	"sync"
	"time"

	"p4p/internal/core"
	"p4p/internal/portal"
	"p4p/internal/telemetry"
	"p4p/internal/trace"
)

// ViewFetcher is the slice of the portal client PortalViews needs; the
// concrete portal.Client satisfies it, and fault-injection tests supply
// failing/slow/flaky implementations.
type ViewFetcher interface {
	DistancesContext(ctx context.Context) (*core.View, error)
}

// BatchFetcher is the optional batch-endpoint slice of the portal
// client; *portal.Client satisfies it. PortalViews falls back to it
// when it has no usable full view for a batch query.
type BatchFetcher interface {
	BatchDistancesContext(ctx context.Context, pairs []portal.PIDPair) (*portal.BatchResult, error)
}

// ViewStats counts how the view cache is behaving; appTrackers export
// it so operators can see when peers are being selected off a stale
// view (the paper's graceful-degradation mode).
type ViewStats struct {
	// Refreshes counts successful portal fetches (including cheap
	// 304 revalidations inside the client).
	Refreshes int64 `json:"refreshes"`
	// Failures counts refresh attempts that exhausted the client's
	// retries without producing a view.
	Failures int64 `json:"failures"`
	// StaleServes counts selections answered from the last-known-good
	// view after its TTL expired (portal slow or down).
	StaleServes int64 `json:"stale_serves"`
	// NilServes counts selections with no view at all (portal down and
	// never reached); the selector degrades to native random peering.
	NilServes int64 `json:"nil_serves"`
	// Coalesces counts selections answered from the previous view while
	// another caller's refresh was in flight (singleflight).
	Coalesces int64 `json:"coalesces"`
}

// ViewMetrics mirrors ViewStats into the telemetry registry so the view
// cache's behavior is scrapeable at /metrics. Every family carries a
// "portal" label: a single-portal appTracker records under portal="",
// while a multi-portal one binds one ViewMetrics per backend via
// ForPortal, so a stale ISP is attributable from /metrics alone instead
// of vanishing into an aggregate. All methods on the counters are
// nil-safe via the nil-receiver guards below.
type ViewMetrics struct {
	Refreshes   *telemetry.Counter
	Failures    *telemetry.Counter
	StaleServes *telemetry.Counter
	NilServes   *telemetry.Counter
	Coalesces   *telemetry.Counter

	vecs *viewMetricVecs
}

// viewMetricVecs holds the labeled families ViewMetrics instances bind
// children from.
type viewMetricVecs struct {
	refreshes   *telemetry.CounterVec
	failures    *telemetry.CounterVec
	staleServes *telemetry.CounterVec
	nilServes   *telemetry.CounterVec
	coalesces   *telemetry.CounterVec
}

func (v *viewMetricVecs) bind(portalURL string) *ViewMetrics {
	return &ViewMetrics{
		Refreshes:   v.refreshes.With(portalURL),
		Failures:    v.failures.With(portalURL),
		StaleServes: v.staleServes.With(portalURL),
		NilServes:   v.nilServes.With(portalURL),
		Coalesces:   v.coalesces.With(portalURL),
		vecs:        v,
	}
}

// NewViewMetrics registers the view-cache metric families and returns
// the instance bound to the default portal label (""). Multi-portal
// consumers derive per-backend instances with ForPortal.
func NewViewMetrics(r *telemetry.Registry) *ViewMetrics {
	vecs := &viewMetricVecs{
		refreshes: r.CounterVec("p4p_apptracker_view_refreshes_total",
			"Successful portal view fetches (including 304 revalidations).", "portal"),
		failures: r.CounterVec("p4p_apptracker_view_refresh_failures_total",
			"View refreshes that exhausted the portal client's retries.", "portal"),
		staleServes: r.CounterVec("p4p_apptracker_stale_serves_total",
			"Selections served from the last-known-good view past its TTL.", "portal"),
		nilServes: r.CounterVec("p4p_apptracker_nil_serves_total",
			"Selections with no view at all (degraded to native peering).", "portal"),
		coalesces: r.CounterVec("p4p_apptracker_view_coalesced_reads_total",
			"Selections answered from the previous view during an in-flight refresh.", "portal"),
	}
	return vecs.bind("")
}

// ForPortal returns a ViewMetrics recording into the same registered
// families, with the portal label set to portalURL. Nil-safe: a nil
// receiver (uninstrumented tracker) returns nil, which every recording
// method tolerates.
func (m *ViewMetrics) ForPortal(portalURL string) *ViewMetrics {
	if m == nil || m.vecs == nil {
		return nil
	}
	return m.vecs.bind(portalURL)
}

func (m *ViewMetrics) refresh() {
	if m != nil {
		m.Refreshes.Inc()
	}
}

func (m *ViewMetrics) failure() {
	if m != nil {
		m.Failures.Inc()
	}
}

func (m *ViewMetrics) staleServe() {
	if m != nil {
		m.StaleServes.Inc()
	}
}

func (m *ViewMetrics) nilServe() {
	if m != nil {
		m.NilServes.Inc()
	}
}

func (m *ViewMetrics) coalesce() {
	if m != nil {
		m.Coalesces.Inc()
	}
}

// PortalViews adapts a portal client to the selector's ViewProvider
// with the availability behavior the paper's deployment story needs:
// views are cached for a TTL, refreshed with conditional GET, and when
// the portal is unreachable the last-known-good view keeps serving
// (flagged in Stats) instead of failing the selection — "applications
// can make default decisions without the iTracker".
//
// Refreshes are singleflight: the first caller past the TTL performs
// the fetch while concurrent callers are answered immediately from the
// previous view, so a slow portal never stalls the selection path.
type PortalViews struct {
	// Client fetches views (typically a *portal.Client).
	Client ViewFetcher
	// TTL is how long a fetched view is served without revalidation
	// (default 30s).
	TTL time.Duration
	// RefreshTimeout bounds one refresh, on top of the client's own
	// retry policy (default 10s).
	RefreshTimeout time.Duration
	// FailureBackoff is how long to serve stale after a failed refresh
	// before trying the portal again (default 5s); it stops a dead
	// portal from being hammered on every selection.
	FailureBackoff time.Duration
	// Logger, if non-nil, receives one structured line per refresh
	// failure.
	Logger *slog.Logger
	// Metrics, when non-nil, mirrors the ViewStats counters into the
	// telemetry registry (see NewViewMetrics).
	Metrics *ViewMetrics
	// Tracer, when non-nil, records each portal refresh as a root span
	// (the refresh happens off any caller's request path, so it starts
	// its own trace) annotated with the outcome: refreshed, or a
	// stale/nil fallback. The portal client's spans nest under it, so a
	// refresh that retried three times and fell back is one readable
	// trace in /debug/traces.
	Tracer *trace.Tracer

	// nowFn, when non-nil, replaces time.Now so tests can drive the
	// TTL and backoff windows with a fake clock instead of sleeping.
	nowFn func() time.Time

	mu         sync.Mutex
	view       *core.View
	fetched    time.Time
	nextRetry  time.Time
	refreshing bool
	stats      ViewStats
}

// now reads the injected clock, defaulting to the wall clock.
func (p *PortalViews) now() time.Time {
	if p.nowFn != nil {
		return p.nowFn()
	}
	return time.Now()
}

// NewPortalViews builds a PortalViews with default timings.
func NewPortalViews(client ViewFetcher, ttl time.Duration) *PortalViews {
	return &PortalViews{Client: client, TTL: ttl}
}

func (p *PortalViews) ttl() time.Duration {
	if p.TTL > 0 {
		return p.TTL
	}
	return 30 * time.Second
}

func (p *PortalViews) refreshTimeout() time.Duration {
	if p.RefreshTimeout > 0 {
		return p.RefreshTimeout
	}
	return 10 * time.Second
}

func (p *PortalViews) failureBackoff() time.Duration {
	if p.FailureBackoff > 0 {
		return p.FailureBackoff
	}
	return 5 * time.Second
}

// ViewFor implements ViewProvider. The ASN argument is unused: one
// PortalViews speaks for the one iTracker its client points at.
//
//p4p:coldpath the refresh slow path (network fetch, tracing, logging) dominates this function; the held-view fast path is a mutex check and a pointer return
func (p *PortalViews) ViewFor(asn int) DistanceView {
	now := p.now()
	p.mu.Lock()
	fresh := p.view != nil && now.Sub(p.fetched) < p.ttl()
	if fresh || p.refreshing || now.Before(p.nextRetry) {
		v := p.view
		if !fresh && p.refreshing {
			p.stats.Coalesces++
			p.Metrics.coalesce()
		}
		if !fresh && v != nil {
			p.stats.StaleServes++
			p.Metrics.staleServe()
		}
		if v == nil {
			p.stats.NilServes++
			p.Metrics.nilServe()
		}
		p.mu.Unlock()
		if v == nil {
			return nil // not a typed-nil interface
		}
		return v
	}
	p.refreshing = true
	p.mu.Unlock()

	//p4pvet:ignore ctxflow ViewFor implements the context-free ViewProvider interface; RefreshTimeout is the refresh's only ancestor deadline
	ctx, cancel := context.WithTimeout(context.Background(), p.refreshTimeout())
	defer cancel()
	ctx, span := p.Tracer.StartRoot(ctx, "view_refresh")
	defer span.End()
	v, err := p.Client.DistancesContext(ctx)

	p.mu.Lock()
	p.refreshing = false
	if err != nil {
		p.stats.Failures++
		p.Metrics.failure()
		p.nextRetry = p.now().Add(p.failureBackoff())
		if p.Logger != nil {
			p.Logger.Warn("portal refresh failed, serving last-known-good",
				slog.String("error", err.Error()))
		}
		stale := p.view
		if stale != nil {
			p.stats.StaleServes++
			p.Metrics.staleServe()
		} else {
			p.stats.NilServes++
			p.Metrics.nilServe()
		}
		p.mu.Unlock()
		span.RecordError(err)
		if stale == nil {
			span.SetAttr("outcome", "nil_fallback")
			return nil
		}
		span.SetAttr("outcome", "stale_fallback")
		return stale
	}
	p.stats.Refreshes++
	p.Metrics.refresh()
	p.view = v
	p.fetched = p.now()
	p.nextRetry = time.Time{}
	p.mu.Unlock()
	span.SetAttr("outcome", "refreshed")
	span.SetAttrInt("view_version", v.Version)
	return v
}

// errNoBatchSource reports a batch query with neither a cached view
// covering the pairs nor a batch-capable client.
var errNoBatchSource = errors.New("apptracker: no cached view covers the pairs and the portal client has no batch support")

// BatchDistances answers a set of src→dst distance queries. It prefers
// the cached full view — refreshed through the usual TTL /
// singleflight / last-known-good machinery of ViewFor, so it costs no
// network in steady state — and falls back to the portal's batch
// endpoint (many pairs per request, no square matrix on the wire) when
// no held view covers the requested PIDs. Unreachable pairs come back
// as +Inf, mirroring core.View.
//
//p4p:hotpath held-view branch backs the portal batch endpoint's serving path
func (p *PortalViews) BatchDistances(ctx context.Context, pairs []portal.PIDPair) ([]float64, error) {
	if len(pairs) == 0 {
		return nil, nil
	}
	ctx, span := trace.StartSpan(ctx, "batch_distances")
	defer span.End()
	span.SetAttrInt("pairs", len(pairs))
	if dv := p.ViewFor(0); dv != nil {
		if v, ok := dv.(*core.View); ok && viewCovers(v, pairs) {
			span.SetAttr("source", "held_view")
			out := make([]float64, len(pairs))
			for i, pr := range pairs {
				out[i] = v.Distance(pr.Src, pr.Dst)
			}
			return out, nil
		}
	}
	bf, ok := p.Client.(BatchFetcher)
	if !ok {
		span.RecordError(errNoBatchSource)
		return nil, errNoBatchSource
	}
	span.SetAttr("source", "batch_endpoint")
	//p4pvet:ignore allochot portal fallback is a network round-trip; its allocations are noise next to the HTTP request
	res, err := bf.BatchDistancesContext(ctx, pairs)
	if err != nil {
		span.RecordError(err)
		return nil, err
	}
	return res.Distances, nil
}

// viewCovers reports whether every PID in pairs is present in the view
// (View.Distance panics on absent PIDs).
func viewCovers(v *core.View, pairs []portal.PIDPair) bool {
	for _, pr := range pairs {
		if _, ok := v.Index(pr.Src); !ok {
			return false
		}
		if _, ok := v.Index(pr.Dst); !ok {
			return false
		}
	}
	return true
}

// Ready reports whether the appTracker holds portal data fresh enough
// to serve: a view exists and, when maxAge > 0, it was fetched within
// maxAge. /readyz gates on it so a load balancer never routes to an
// appTracker that would answer every selection from nothing (native
// random peering) because its portal was unreachable since boot.
func (p *PortalViews) Ready(maxAge time.Duration) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.view == nil {
		return false
	}
	if maxAge <= 0 {
		return true
	}
	return p.now().Sub(p.fetched) <= maxAge
}

// Stats returns a snapshot of the cache counters.
func (p *PortalViews) Stats() ViewStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Invalidate expires the held view and any failure backoff, so the next
// ViewFor refreshes synchronously. The last-known-good view is kept: if
// the refresh fails, degradation semantics are unchanged. Experiment
// harnesses call it after a portal-side price update to observe the new
// view deterministically instead of waiting out the TTL.
func (p *PortalViews) Invalidate() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fetched = time.Time{}
	p.nextRetry = time.Time{}
}

// LastKnownGood reports the currently held view (possibly stale) and
// when it was fetched; ok is false before any successful fetch.
func (p *PortalViews) LastKnownGood() (v *core.View, fetched time.Time, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.view, p.fetched, p.view != nil
}
