package apptracker

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"p4p/internal/core"
	"p4p/internal/portal"
)

// batchingFetcher is a scriptedFetcher that also implements the
// optional BatchFetcher slice, recording batch calls.
type batchingFetcher struct {
	scriptedFetcher
	batchCalls atomic.Int64
	batchFn    func(pairs []portal.PIDPair) (*portal.BatchResult, error)
}

func (f *batchingFetcher) BatchDistancesContext(ctx context.Context, pairs []portal.PIDPair) (*portal.BatchResult, error) {
	f.batchCalls.Add(1)
	return f.batchFn(pairs)
}

// TestBatchDistancesFromCachedView checks the steady-state path: when
// the held view covers every requested PID, batch queries are answered
// locally with zero portal traffic.
func TestBatchDistancesFromCachedView(t *testing.T) {
	f := &batchingFetcher{
		scriptedFetcher: scriptedFetcher{fn: func(n int64) (*core.View, error) { return testView(1), nil }},
		batchFn: func(pairs []portal.PIDPair) (*portal.BatchResult, error) {
			return nil, errors.New("injected: batch endpoint must not be hit")
		},
	}
	p := NewPortalViews(f, time.Minute)
	p.nowFn = newFakeClock().Now

	got, err := p.BatchDistances(context.Background(), []portal.PIDPair{{Src: 0, Dst: 2}, {Src: 1, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 || got[1] != 0 {
		t.Fatalf("distances = %v, want [5 0]", got)
	}
	if n := f.batchCalls.Load(); n != 0 {
		t.Fatalf("batch endpoint hit %d times for a covered query", n)
	}
}

// TestBatchDistancesFallsBackToEndpoint checks the uncovered path: a
// PID absent from the held view routes the whole query to the portal's
// batch endpoint instead of panicking in View.Distance.
func TestBatchDistancesFallsBackToEndpoint(t *testing.T) {
	want := []float64{7, math.Inf(1)}
	f := &batchingFetcher{
		scriptedFetcher: scriptedFetcher{fn: func(n int64) (*core.View, error) { return testView(1), nil }},
		batchFn: func(pairs []portal.PIDPair) (*portal.BatchResult, error) {
			return &portal.BatchResult{Version: 1, Distances: want}, nil
		},
	}
	p := NewPortalViews(f, time.Minute)
	p.nowFn = newFakeClock().Now

	// PID 9 is not in testView's {0,1,2}.
	got, err := p.BatchDistances(context.Background(), []portal.PIDPair{{Src: 0, Dst: 9}, {Src: 9, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 || !math.IsInf(got[1], 1) {
		t.Fatalf("distances = %v, want [7 +Inf]", got)
	}
	if n := f.batchCalls.Load(); n != 1 {
		t.Fatalf("batch endpoint hit %d times, want 1", n)
	}
}

// TestBatchDistancesNoSource checks the error contract: uncovered
// pairs with a client that has no batch support fail cleanly.
func TestBatchDistancesNoSource(t *testing.T) {
	f := &scriptedFetcher{fn: func(n int64) (*core.View, error) { return testView(1), nil }}
	p := NewPortalViews(f, time.Minute)
	p.nowFn = newFakeClock().Now

	if _, err := p.BatchDistances(context.Background(), []portal.PIDPair{{Src: 0, Dst: 9}}); !errors.Is(err, errNoBatchSource) {
		t.Fatalf("err = %v, want errNoBatchSource", err)
	}
	// Empty queries succeed trivially regardless of sources.
	got, err := p.BatchDistances(context.Background(), nil)
	if err != nil || got != nil {
		t.Fatalf("empty batch = (%v, %v), want (nil, nil)", got, err)
	}
}
