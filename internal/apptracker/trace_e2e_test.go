package apptracker

import (
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"p4p/internal/core"
	"p4p/internal/itracker"
	"p4p/internal/portal"
	"p4p/internal/topology"
	"p4p/internal/trace"
)

// TestStitchedTraceAcrossProcesses is the end-to-end tracing
// acceptance test: an appTracker view refresh against a real portal
// server must produce ONE trace ID whose spans cover every layer —
// the refresh root and the client attempt on the appTracker side, and
// the server route plus the engine recompute/encode on the portal side
// — stitched across the HTTP boundary by the W3C traceparent header.
// Each side keeps its spans in its own collector, exactly as the two
// binaries would behind their /debug/traces endpoints.
func TestStitchedTraceAcrossProcesses(t *testing.T) {
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	e := core.NewEngine(g, r, core.Config{})
	itr := itracker.New(itracker.Config{Name: "t", ASN: 1}, e, itracker.SyntheticPIDMap(g))

	portalCol := trace.NewCollector(16, 0, 1)
	h := portal.NewHandler(itr)
	h.Telemetry.Tracer = &trace.Tracer{Collector: portalCol, SampleRate: 1}
	srv := httptest.NewServer(h)
	defer srv.Close()

	appCol := trace.NewCollector(16, 0, 1)
	views := NewPortalViews(portal.NewClient(srv.URL, ""), time.Minute)
	views.Tracer = &trace.Tracer{Collector: appCol, SampleRate: 1}

	if v := views.ViewFor(1); v == nil {
		t.Fatal("view refresh against live portal failed")
	}

	appSnap := appCol.Snapshot()
	if len(appSnap.Traces) != 1 {
		t.Fatalf("appTracker collector kept %d traces, want 1", len(appSnap.Traces))
	}
	appTrace := appSnap.Traces[0]
	traceID := appTrace.TraceID

	// The portal's server span ends on the server goroutine just after
	// the response is flushed, so it can land in the collector a beat
	// after the client returns; spin (no sleeping) until it shows up.
	var portalTrace *trace.WireTrace
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap := portalCol.Snapshot()
		for i := range snap.Traces {
			if snap.Traces[i].TraceID == traceID {
				portalTrace = &snap.Traces[i]
			}
		}
		if portalTrace != nil && len(portalTrace.Spans) >= 3 {
			break
		}
		portalTrace = nil
		runtime.Gosched()
	}
	if portalTrace == nil {
		t.Fatalf("portal collector never kept trace %s; snapshot: %+v", traceID, portalCol.Snapshot())
	}

	names := map[string]trace.WireSpan{}
	total := 0
	for _, s := range append(append([]trace.WireSpan(nil), appTrace.Spans...), portalTrace.Spans...) {
		names[s.Name] = s
		total++
	}
	if total < 4 {
		t.Fatalf("stitched trace has %d spans, want >= 4: %v", total, names)
	}
	for _, want := range []string{"view_refresh", "attempt", "distances", "encode", "recompute"} {
		if _, ok := names[want]; !ok {
			t.Errorf("stitched trace missing span %q; have %v", want, names)
		}
	}
	clientSpanSeen := false
	for n := range names {
		if strings.HasPrefix(n, "client GET ") {
			clientSpanSeen = true
		}
	}
	if !clientSpanSeen {
		t.Errorf("no client-side HTTP span; have %v", names)
	}

	// The refresh root starts the trace...
	if root := names["view_refresh"]; root.ParentSpanID != "" {
		t.Errorf("view_refresh has parent %q, want none", root.ParentSpanID)
	}
	// ...and the server span parents to the specific client attempt
	// whose headers it read, proving the traceparent crossed the wire.
	if att, srvSpan := names["attempt"], names["distances"]; srvSpan.ParentSpanID != att.SpanID {
		t.Errorf("server span parent = %q, want attempt span %q", srvSpan.ParentSpanID, att.SpanID)
	}
}
