package p2psim

import "math/bits"

// The simulator's event queue. Two interchangeable implementations share
// one total event order, so the simulation trace is independent of which
// queue is active:
//
//   - eventHeap: the reference binary min-heap (also reused as the
//     calendar queue's overflow bucket);
//   - calendarQueue: a bucketed time wheel with O(1) amortized push/pop,
//     the default since mid-swarm runs are dominated by heap churn (the
//     sift paths were ~40-55%% of BenchmarkSimMidSwarm CPU).
//
// The total order is (t, kind, qseq): qseq is a global push counter, so
// ties in time and kind resolve FIFO. The old heap broke such ties by
// heap structure — deterministic but unreproducible outside a binary
// heap; making the order total is what lets TestQueueEquivalence pin the
// two implementations byte-identical against each other.

type event struct {
	t    float64 // absolute simulation time
	qseq uint64  // global push counter: FIFO tie-break for equal (t, kind)
	kind uint8
	id   int32 // client ID (evJoin, evStreamPiece) or flow arena index (evFlowFinish)
	seq  int32 // flow schedule stamp (evFlowFinish lazy deletion)
}

const (
	evJoin uint8 = iota
	evRechoke
	evFlowFinish
	evMeasure
	evSample
	evStreamPiece
	evReselect
)

// eventBefore is the total order shared by both queue implementations.
func eventBefore(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.qseq < b.qseq
}

// siftUp restores the min-heap property after appending an element.
func siftUp(ev []event) {
	j := len(ev) - 1
	for j > 0 {
		i := (j - 1) / 2 // parent
		if !eventBefore(ev[j], ev[i]) {
			break
		}
		ev[i], ev[j] = ev[j], ev[i]
		j = i
	}
}

// siftDown restores the min-heap property over ev[:n] starting at the
// root.
func siftDown(ev []event, n int) {
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && eventBefore(ev[j2], ev[j1]) {
			j = j2
		}
		if !eventBefore(ev[j], ev[i]) {
			break
		}
		ev[i], ev[j] = ev[j], ev[i]
		i = j
	}
}

// heapify builds a min-heap in place (Floyd's bottom-up construction,
// O(n)).
func heapify(ev []event) {
	for i := len(ev)/2 - 1; i >= 0; i-- {
		// Sift ev[i] down within the subtree rooted at i.
		j := i
		for {
			c1 := 2*j + 1
			if c1 >= len(ev) {
				break
			}
			c := c1
			if c2 := c1 + 1; c2 < len(ev) && eventBefore(ev[c2], ev[c1]) {
				c = c2
			}
			if !eventBefore(ev[c], ev[j]) {
				break
			}
			ev[j], ev[c] = ev[c], ev[j]
			j = c
		}
	}
}

// eventHeap is a typed binary min-heap over events: the reference
// implementation the calendar queue is verified against, the overflow
// bucket for events beyond the wheel horizon, and (via the forceHeapQueue
// test knob) a drop-in replacement for the whole queue.
type eventHeap struct {
	ev []event
}

func (h *eventHeap) len() int { return len(h.ev) }

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	siftUp(h.ev)
}

func (h *eventHeap) pop() (event, bool) {
	if len(h.ev) == 0 {
		return event{}, false
	}
	n := len(h.ev) - 1
	h.ev[0], h.ev[n] = h.ev[n], h.ev[0]
	siftDown(h.ev, n)
	e := h.ev[n]
	h.ev[n] = event{}
	h.ev = h.ev[:n]
	return e, true
}

// calendarQueue is a classic calendar queue (Brown 1988) specialized for
// the simulator: a power-of-two ring of time buckets of fixed width plus
// an overflow heap for events beyond the wheel horizon.
//
// Invariant: every event in the wheel has slot(t) in [curSlot,
// curSlot+len(buckets)), so a bucket only ever holds events of a single
// slot and the head bucket's minimum (by eventBefore) is the global
// wheel minimum. Overflow events migrate into the wheel as soon as their
// slot enters the horizon — checked on every pop, before the head bucket
// is consulted, so an overflow event can never be overtaken by a later
// wheel event.
//
// The wheel resizes (doubling buckets, re-deriving the bucket width from
// the observed event span) whenever the wheel population exceeds twice
// the bucket count, keeping expected bucket occupancy O(1) from
// mid-swarm (hundreds of in-flight events) to 100k-peer scale.
type calendarQueue struct {
	buckets [][]event
	// occ is an occupancy bitset over bucket indices (one bit per
	// bucket), letting pop jump straight to the next populated slot
	// instead of stepping the head bucket-by-bucket across gaps.
	occ      []uint64
	mask     int64
	width    float64
	invWidth float64
	curSlot  int64
	// heapSlot is the slot whose bucket is currently maintained as a
	// min-heap: when the head reaches an occupied bucket it is heapified
	// once (O(k)), after which pops sift down and same-slot pushes sift
	// up, both O(log k). This matters because the simulator's events
	// arrive in huge same-instant clusters (flows sharing a bottleneck
	// get synchronized finish times by the max-min rate allocation), so
	// a single bucket routinely holds hundreds of events no matter how
	// narrow the buckets are — per-pop min-scans or sorted-insert shifts
	// over such a bucket are O(k) each. -1 when no bucket is heapified.
	heapSlot int64
	wheelN   int
	overflow eventHeap
}

const (
	calInitialBuckets = 64
	calMaxBuckets     = 1 << 17
	calMinWidth       = 1e-9
)

func newCalendarQueue(width float64) *calendarQueue {
	if width < calMinWidth {
		width = calMinWidth
	}
	return &calendarQueue{
		buckets:  make([][]event, calInitialBuckets),
		occ:      make([]uint64, calInitialBuckets/64),
		mask:     calInitialBuckets - 1,
		width:    width,
		invWidth: 1 / width,
		heapSlot: -1,
	}
}

// place inserts an in-horizon event into its wheel bucket, maintaining
// the occupancy bitset. An event landing in the currently heapified
// head bucket sifts up to keep the heap property; other buckets are
// plain appends.
func (q *calendarQueue) place(e event, s int64) {
	b := s & q.mask
	if len(q.buckets[b]) == 0 {
		q.occ[b>>6] |= 1 << uint(b&63)
	}
	q.buckets[b] = append(q.buckets[b], e)
	if s == q.heapSlot {
		siftUp(q.buckets[b])
	}
	q.wheelN++
}

// nextOccDelta returns the ring distance from the head position to the
// first occupied bucket (0 when the head bucket itself is occupied).
// Must only be called with wheelN > 0.
func (q *calendarQueue) nextOccDelta() int64 {
	pos := q.curSlot & q.mask
	w := int(pos >> 6)
	off := uint(pos & 63)
	if m := q.occ[w] >> off; m != 0 {
		return int64(bits.TrailingZeros64(m))
	}
	d := int64(64) - int64(off)
	for i := 1; ; i++ {
		wi := w + i
		if wi >= len(q.occ) {
			wi -= len(q.occ)
		}
		if m := q.occ[wi]; m != 0 {
			return d + int64(bits.TrailingZeros64(m))
		}
		d += 64
	}
}

func (q *calendarQueue) slotOf(t float64) int64 {
	return int64(t * q.invWidth)
}

func (q *calendarQueue) len() int { return q.wheelN + q.overflow.len() }

func (q *calendarQueue) push(e event) {
	s := q.slotOf(e.t)
	if s < q.curSlot {
		// Defensive: an event at the current instant whose slot rounds
		// just below the head lands in the head bucket; the head heap
		// still orders it correctly.
		s = q.curSlot
	}
	if s >= q.curSlot+int64(len(q.buckets)) {
		q.overflow.push(e)
		return
	}
	q.place(e, s)
	if q.wheelN > 2*len(q.buckets) && len(q.buckets) < calMaxBuckets {
		q.resize()
	}
}

func (q *calendarQueue) pop() (event, bool) {
	if q.wheelN == 0 && q.overflow.len() == 0 {
		return event{}, false
	}
	for {
		// Migrate overflow events whose slot has entered the horizon.
		horizon := q.curSlot + int64(len(q.buckets))
		for q.overflow.len() > 0 {
			s := q.slotOf(q.overflow.ev[0].t)
			if s >= horizon {
				break
			}
			e, _ := q.overflow.pop()
			if s < q.curSlot {
				s = q.curSlot
			}
			q.place(e, s)
		}
		if q.wheelN == 0 {
			// Wheel drained but overflow has far-future events: jump the
			// head straight to the overflow minimum's slot.
			q.curSlot = q.slotOf(q.overflow.ev[0].t)
			continue
		}
		if d := q.nextOccDelta(); d > 0 {
			// Jump over the empty slots, then re-run the overflow
			// migration: the horizon moved with the head.
			q.curSlot += d
			continue
		}
		bi := q.curSlot & q.mask
		if q.heapSlot != q.curSlot {
			heapify(q.buckets[bi])
			q.heapSlot = q.curSlot
		}
		b := q.buckets[bi]
		n := len(b) - 1
		b[0], b[n] = b[n], b[0]
		siftDown(b, n)
		e := b[n]
		b[n] = event{}
		q.buckets[bi] = b[:n]
		if n == 0 {
			q.occ[bi>>6] &^= 1 << uint(bi&63)
		}
		q.wheelN--
		return e, true
	}
}

// resize doubles the bucket count and re-derives the bucket width from
// the span of events currently in the wheel, targeting ~O(1) occupancy.
//
//p4p:coldpath fires O(log wheel-population) times per run; the rebuild allocation is amortized across thousands of pushes
func (q *calendarQueue) resize() {
	var all []event
	minT, maxT := 0.0, 0.0
	for i := range q.buckets {
		for _, e := range q.buckets[i] {
			if len(all) == 0 || e.t < minT {
				minT = e.t
			}
			if len(all) == 0 || e.t > maxT {
				maxT = e.t
			}
			all = append(all, e)
		}
		q.buckets[i] = nil
	}
	size := len(q.buckets)
	for size < 2*len(all) && size < calMaxBuckets {
		size <<= 1
	}
	if span := maxT - minT; span > 0 && len(all) > 0 {
		w := 2 * span / float64(len(all))
		if w < calMinWidth {
			w = calMinWidth
		}
		q.width = w
		q.invWidth = 1 / w
	}
	q.buckets = make([][]event, size)
	q.occ = make([]uint64, size/64)
	q.mask = int64(size) - 1
	q.wheelN = 0
	q.heapSlot = -1
	if len(all) > 0 {
		q.curSlot = q.slotOf(minT)
	}
	for _, e := range all {
		s := q.slotOf(e.t)
		if s < q.curSlot {
			s = q.curSlot
		}
		if s >= q.curSlot+int64(size) {
			q.overflow.push(e)
			continue
		}
		q.place(e, s)
	}
}
