package p2psim

import (
	"testing"

	"p4p/internal/apptracker"
	"p4p/internal/topology"
)

// The simulator microbenchmarks measure the discrete-event engine
// itself (ns/op, B/op, allocs/op for a full mid-size swarm run), as
// opposed to the end-to-end experiment benchmarks in the repo root.
// scripts/bench_json.sh sim emits both into BENCH_sim.json so the
// hot-path numbers are tracked across commits.

// benchMidSwarm builds the mid-size reference swarm: 100 leechers plus
// one seed on Abilene, 16 MB file, with the reselection, sampling, and
// measurement hooks all armed (the configuration the Section 7 sweeps
// exercise).
func benchMidSwarm(g *topology.Graph, r *topology.Routing, seed int64) *Sim {
	s := New(Config{
		Graph:            g,
		Routing:          r,
		Selector:         apptracker.Random{},
		Seed:             seed,
		FileBytes:        16 << 20,
		ReselectInterval: 20,
		SampleInterval:   5,
		MeasureInterval:  10,
		OnMeasure:        func(now float64, rates []float64) {},
	})
	pids := g.AggregationPIDs()
	s.AddClient(ClientSpec{PID: pids[0], ASN: 1, UpBps: 100e6, DownBps: 100e6, IsSeed: true})
	for i := 0; i < 100; i++ {
		s.AddClient(ClientSpec{
			PID:     pids[i%len(pids)],
			ASN:     1,
			UpBps:   20e6,
			DownBps: 50e6,
			JoinAt:  float64(i),
		})
	}
	return s
}

// BenchmarkSimMidSwarm runs the mid-size swarm to completion. This is
// the repo's headline simulator microbenchmark: allocs/op here is the
// number the hot-path work is judged against.
func BenchmarkSimMidSwarm(b *testing.B) {
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := benchMidSwarm(g, r, 42)
		res := s.Run()
		if got := len(res.CompletionTimes()); got != 100 {
			b.Fatalf("%d of 100 clients completed", got)
		}
	}
}

// BenchmarkSimStreaming runs the Liveswarms mode (sliding-window piece
// selection, continuous publishing) for a simulated 10 minutes.
func BenchmarkSimStreaming(b *testing.B) {
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	pids := g.AggregationPIDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(Config{
			Graph: g, Routing: r, Selector: apptracker.Random{}, Seed: 7,
			PieceBytes: 64 << 10,
			MaxTime:    600,
			Streaming:  &StreamingConfig{RateBps: 400e3, ContentSec: 1200, WindowSec: 60},
		})
		s.AddClient(ClientSpec{PID: pids[0], ASN: 1, UpBps: 20e6, DownBps: 20e6, IsSeed: true})
		for j := 0; j < 30; j++ {
			s.AddClient(ClientSpec{PID: pids[(j+1)%len(pids)], ASN: 1, UpBps: 4e6, DownBps: 4e6})
		}
		res := s.Run()
		if res.TotalBytes <= 0 {
			b.Fatal("no streaming bytes delivered")
		}
	}
}

// BenchmarkSimHundredK exercises the million-peer-scale machinery: a
// hundred-thousand-client swarm on Abilene with a small file, which
// stresses the calendar queue's resize path, the struct-of-arrays
// client state, and the O(m) tracker sampling. Runs 10k clients under
// -short so CI can smoke it inside the time box; run it with
// -benchtime 1x — a single run is the measurement.
func BenchmarkSimHundredK(b *testing.B) {
	n := 100_000
	if testing.Short() {
		n = 10_000
	}
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	pids := g.AggregationPIDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(Config{
			Graph:     g,
			Routing:   r,
			Selector:  apptracker.Random{},
			Seed:      42,
			FileBytes: 4 << 20,
		})
		s.AddClient(ClientSpec{PID: pids[0], ASN: 1, UpBps: 1e9, DownBps: 1e9, IsSeed: true})
		for j := 0; j < n; j++ {
			s.AddClient(ClientSpec{
				PID:     pids[j%len(pids)],
				ASN:     1,
				UpBps:   20e6,
				DownBps: 50e6,
				JoinAt:  float64(j) * 0.005,
			})
		}
		res := s.Run()
		if got := len(res.CompletionTimes()); got < n*99/100 {
			b.Fatalf("only %d of %d clients completed", got, n)
		}
	}
}
