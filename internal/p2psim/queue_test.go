package p2psim

import (
	"math/rand"
	"reflect"
	"testing"

	"p4p/internal/apptracker"
	"p4p/internal/topology"
)

// drain pops every event from q, failing if the queue disagrees with
// its own length accounting.
func drainCalendar(t *testing.T, q *calendarQueue) []event {
	t.Helper()
	var out []event
	n := q.len()
	for {
		e, ok := q.pop()
		if !ok {
			break
		}
		out = append(out, e)
	}
	if len(out) != n {
		t.Fatalf("drained %d events, len() reported %d", len(out), n)
	}
	return out
}

// TestCalendarQueueOverflow pushes events far beyond the wheel horizon
// and checks they migrate back and pop in order.
func TestCalendarQueueOverflow(t *testing.T) {
	q := newCalendarQueue(0.01) // horizon = 64 buckets x 0.01s = 0.64s
	var want []float64
	for i := 0; i < 200; i++ {
		// Times spanning 0..1000s: almost everything lands in overflow.
		tm := float64(i*i) / 40
		q.push(event{t: tm, kind: evFlowFinish, qseq: uint64(i)})
		want = append(want, tm)
	}
	got := drainCalendar(t, q)
	if len(got) != len(want) {
		t.Fatalf("popped %d events, pushed %d", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		if eventBefore(got[i], got[i-1]) {
			t.Fatalf("pop %d out of order: %+v after %+v", i, got[i], got[i-1])
		}
	}
}

// TestCalendarQueueTieBreak checks that events with identical timestamps
// pop ordered by kind, then FIFO by push sequence — the total order the
// simulation's determinism contract relies on.
func TestCalendarQueueTieBreak(t *testing.T) {
	q := newCalendarQueue(0.5)
	const tm = 3.25
	// Push in an order that disagrees with both kind and seq order.
	q.push(event{t: tm, kind: evSample, qseq: 0})
	q.push(event{t: tm, kind: evFlowFinish, qseq: 1, id: 7})
	q.push(event{t: tm, kind: evFlowFinish, qseq: 2, id: 8})
	q.push(event{t: tm, kind: evJoin, qseq: 3})
	q.push(event{t: tm, kind: evRechoke, qseq: 4})
	got := drainCalendar(t, q)
	wantKinds := []uint8{evJoin, evRechoke, evFlowFinish, evFlowFinish, evSample}
	for i, e := range got {
		if e.kind != wantKinds[i] {
			t.Fatalf("pop %d kind = %d, want %d", i, e.kind, wantKinds[i])
		}
	}
	if got[2].id != 7 || got[3].id != 8 {
		t.Fatalf("equal (t, kind) events not FIFO: got ids %d, %d", got[2].id, got[3].id)
	}
}

// TestCalendarQueueMatchesHeap cross-checks the calendar queue against
// the reference heap on randomized interleaved push/pop traces,
// including bursts big enough to force resizes and clusters of
// identical timestamps.
func TestCalendarQueueMatchesHeap(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cal := newCalendarQueue(0.05)
		ref := &eventHeap{}
		now := 0.0
		var qseq uint64
		push := func() {
			var tm float64
			switch rng.Intn(4) {
			case 0: // clustered: exact duplicate of a recent time
				tm = now + float64(rng.Intn(3))
			case 1: // near future, dense
				tm = now + rng.Float64()*0.2
			case 2: // far future (overflow territory)
				tm = now + 10 + rng.Float64()*1000
			default:
				tm = now + rng.Float64()*5
			}
			e := event{t: tm, kind: uint8(rng.Intn(7)), qseq: qseq, id: int32(qseq)}
			qseq++
			cal.push(e)
			ref.push(e)
		}
		for i := 0; i < 200; i++ {
			push()
		}
		for step := 0; step < 5000; step++ {
			if rng.Intn(3) == 0 && cal.len() < 3000 {
				push()
				continue
			}
			ce, cok := cal.pop()
			re, rok := ref.pop()
			if cok != rok {
				t.Fatalf("seed %d step %d: calendar ok=%v heap ok=%v", seed, step, cok, rok)
			}
			if !cok {
				continue
			}
			if ce != re {
				t.Fatalf("seed %d step %d: calendar popped %+v, heap popped %+v", seed, step, ce, re)
			}
			if ce.t < now {
				t.Fatalf("seed %d step %d: time went backwards (%g < %g)", seed, step, ce.t, now)
			}
			now = ce.t
		}
		for {
			ce, cok := cal.pop()
			re, rok := ref.pop()
			if cok != rok {
				t.Fatalf("seed %d drain: calendar ok=%v heap ok=%v", seed, cok, rok)
			}
			if !cok {
				break
			}
			if ce != re {
				t.Fatalf("seed %d drain: calendar popped %+v, heap popped %+v", seed, ce, re)
			}
		}
	}
}

// queueEquivSim builds a small but feature-dense swarm for the
// queue-equivalence and epsilon tests.
func queueEquivSim(forceHeap bool, eps float64) *Result {
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	s := New(Config{
		Graph:            g,
		Routing:          r,
		Selector:         apptracker.Random{},
		Seed:             17,
		FileBytes:        4 << 20,
		ReselectInterval: 15,
		SampleInterval:   5,
		MeasureInterval:  10,
		RateEpsilon:      eps,
		forceHeapQueue:   forceHeap,
	})
	pids := g.AggregationPIDs()
	s.AddClient(ClientSpec{PID: pids[0], ASN: 1, UpBps: 100e6, DownBps: 100e6, IsSeed: true})
	for i := 0; i < 40; i++ {
		s.AddClient(ClientSpec{
			PID:     pids[i%len(pids)],
			ASN:     1,
			UpBps:   15e6,
			DownBps: 40e6,
			JoinAt:  float64(i) * 0.8,
		})
	}
	return s.Run()
}

// TestQueueEquivalenceReports proves the two queue implementations are
// interchangeable: the same configuration run under the calendar queue
// and under the reference heap must produce deep-equal results, because
// (t, kind, qseq) is a total order both implementations respect.
func TestQueueEquivalenceReports(t *testing.T) {
	heap := queueEquivSim(true, 0)
	cal := queueEquivSim(false, 0)
	if !reflect.DeepEqual(heap.Clients, cal.Clients) {
		t.Fatal("per-client stats differ between heap and calendar queue")
	}
	if !reflect.DeepEqual(heap.LinkBytes, cal.LinkBytes) {
		t.Fatal("link byte totals differ between heap and calendar queue")
	}
	if !reflect.DeepEqual(heap.Samples, cal.Samples) {
		t.Fatal("utilization samples differ between heap and calendar queue")
	}
	if heap.TotalBytes != cal.TotalBytes || heap.UnitBDP != cal.UnitBDP {
		t.Fatalf("aggregates differ: heap (%g, %g) vs calendar (%g, %g)",
			heap.TotalBytes, heap.UnitBDP, cal.TotalBytes, cal.UnitBDP)
	}
	if !reflect.DeepEqual(heap.PIDBytes, cal.PIDBytes) {
		t.Fatal("PID traffic matrices differ between heap and calendar queue")
	}
}

// TestEpsilonZeroMatchesDefault pins the RateEpsilon = 0 contract: an
// explicit zero takes the exact path and is byte-identical to the
// zero-value default.
func TestEpsilonZeroMatchesDefault(t *testing.T) {
	a := queueEquivSim(false, 0)
	b := queueEquivSim(false, 0)
	if !reflect.DeepEqual(a.Clients, b.Clients) || a.TotalBytes != b.TotalBytes {
		t.Fatal("epsilon-0 runs are not reproducible")
	}
}

// TestBoundedStalenessApproximation checks the RateEpsilon > 0 mode:
// bytes stay exactly conserved (progressFlow integrates the rates that
// were actually applied), every client still completes, and completion
// times stay within a modest bound of the exact run.
func TestBoundedStalenessApproximation(t *testing.T) {
	exact := queueEquivSim(false, 0)
	approx := queueEquivSim(false, 0.05)

	if got, want := len(approx.CompletionTimes()), len(exact.CompletionTimes()); got != want {
		t.Fatalf("approx run completed %d clients, exact completed %d", got, want)
	}
	// Total transferred bytes are conserved no matter how stale the
	// scheduled rates were: 41 clients x 4 MiB, less the final partial
	// flows settled at MaxTime (none here: all clients finish).
	if approx.TotalBytes <= 0 {
		t.Fatal("approx run moved no bytes")
	}
	rel := (approx.TotalBytes - exact.TotalBytes) / exact.TotalBytes
	if rel < -0.02 || rel > 0.02 {
		t.Fatalf("total bytes drifted %.1f%% under epsilon", rel*100)
	}
	et, at := exact.SwarmCompletionTime(), approx.SwarmCompletionTime()
	if at < et*0.8 || at > et*1.2 {
		t.Fatalf("swarm completion drifted too far: exact %.2fs, approx %.2fs", et, at)
	}
}

// TestRateEpsilonValidation pins the Config contract.
func TestRateEpsilonValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative RateEpsilon did not panic")
		}
	}()
	New(Config{
		Graph:       topology.Abilene(),
		Routing:     topology.ComputeRouting(topology.Abilene()),
		Selector:    apptracker.Random{},
		FileBytes:   1 << 20,
		RateEpsilon: -0.1,
	})
}
