package p2psim

import (
	"math"
	"sort"

	"p4p/internal/charging"
	"p4p/internal/topology"
)

// Metrics accumulates the measurements the paper's evaluation reports:
// per-client completion times, per-link cumulative P4P traffic (for
// bottleneck traffic and charging volumes), utilization samples over
// time, unit bandwidth-distance product, and PID-pair / class-pair
// traffic matrices for the locality tables.
type Metrics struct {
	cfg        *Config
	linkBytes  []float64
	samples    []Sample
	pidBytes   map[[2]topology.PID]float64
	classBytes map[[2]string]float64
	bdpSum     float64 // Σ bytes x backbone hops
	totalBytes float64
	ledgers    map[topology.LinkID]*charging.Ledger
}

// LedgerConfig attaches 5-minute volume ledgers to selected links
// (typically interdomain links under percentile billing). Set on
// Config via WatchLedgers.
type LedgerConfig struct {
	Links       []topology.LinkID
	IntervalSec float64
}

// Sample is one utilization snapshot.
type Sample struct {
	T float64
	// MaxUtil is the highest (background + P4P) utilization across
	// links at time T.
	MaxUtil float64
	// MaxLink is the link achieving MaxUtil.
	MaxLink topology.LinkID
	// Watch holds the P4P rate (bits/sec) of each Config.WatchLinks
	// entry at time T.
	Watch []float64
}

func (m *Metrics) init(cfg *Config) {
	m.cfg = cfg
	m.linkBytes = make([]float64, cfg.Graph.NumLinks())
	m.pidBytes = map[[2]topology.PID]float64{}
	m.classBytes = map[[2]string]float64{}
	m.ledgers = map[topology.LinkID]*charging.Ledger{}
	if cfg.WatchLedgers != nil {
		interval := cfg.WatchLedgers.IntervalSec
		if interval <= 0 {
			interval = 300
		}
		for _, e := range cfg.WatchLedgers.Links {
			m.ledgers[e] = charging.NewLedger(interval)
		}
	}
}

// flush commits a finished (or settled) flow's accumulated bytes to the
// aggregates. Ledgers are maintained incrementally in progressFlow
// because they need the time profile, not just the total.
func (m *Metrics) flush(s *Sim, f *flowS) {
	bytes := f.moved
	m.totalBytes += bytes
	m.bdpSum += bytes * float64(len(f.links))
	for _, e := range f.links {
		m.linkBytes[e] += bytes
	}
	uc, dc := s.clients[f.u], s.clients[f.d]
	m.pidBytes[[2]topology.PID{uc.Spec.PID, dc.Spec.PID}] += bytes
	if m.cfg.TrackClassBytes {
		m.classBytes[[2]string{uc.Spec.Class, dc.Spec.Class}] += bytes
		if dc.DownBytesByClass != nil {
			dc.DownBytesByClass[uc.Spec.Class] += bytes
		}
	}
}

// sample snapshots link utilizations.
func (m *Metrics) sample(s *Sim) {
	smp := Sample{T: s.now}
	for i, l := range s.cfg.Graph.Links() {
		u := (s.bgBytesPS[i] + s.linkRate[i]) * 8 / l.CapacityBps
		if u > smp.MaxUtil {
			smp.MaxUtil = u
			smp.MaxLink = topology.LinkID(i)
		}
	}
	for _, e := range s.cfg.WatchLinks {
		smp.Watch = append(smp.Watch, s.linkRate[e]*8)
	}
	m.samples = append(m.samples, smp)
}

// ClientStat is the per-client summary exposed in results.
type ClientStat struct {
	ID          int
	PID         topology.PID
	ASN         int
	Class       string
	JoinAt      float64
	Done        bool
	DoneAt      float64
	IsSeed      bool
	DownByClass map[string]float64
}

// Result is the outcome of a simulation run.
type Result struct {
	Duration   float64
	Clients    []ClientStat
	LinkBytes  []float64
	Samples    []Sample
	TotalBytes float64
	// UnitBDP is Σ(bytes x backbone hops) / Σ bytes: the average number
	// of backbone links a unit of P2P traffic traverses (Figure 12a).
	UnitBDP float64
	// PIDBytes is the PID-pair traffic matrix.
	PIDBytes map[[2]topology.PID]float64
	// ClassBytes is the access-class-pair traffic matrix (uploader,
	// downloader), populated when TrackClassBytes is set.
	ClassBytes map[[2]string]float64
	// Ledgers holds per-link interval volume ledgers for links listed
	// in Config.WatchLedgers.
	Ledgers map[topology.LinkID]*charging.Ledger

	graph *topology.Graph
}

func (m *Metrics) result(s *Sim) *Result {
	r := &Result{
		Duration:   s.now,
		LinkBytes:  m.linkBytes,
		Samples:    m.samples,
		TotalBytes: m.totalBytes,
		PIDBytes:   m.pidBytes,
		ClassBytes: m.classBytes,
		Ledgers:    m.ledgers,
		graph:      s.cfg.Graph,
	}
	if m.totalBytes > 0 {
		r.UnitBDP = m.bdpSum / m.totalBytes
	}
	for _, c := range s.clients {
		r.Clients = append(r.Clients, ClientStat{
			ID: c.ID, PID: c.Spec.PID, ASN: c.Spec.ASN, Class: c.Spec.Class,
			JoinAt: c.Spec.JoinAt, Done: s.done[c.ID], DoneAt: s.doneAt[c.ID],
			IsSeed: c.Spec.IsSeed, DownByClass: c.DownBytesByClass,
		})
	}
	return r
}

// CompletionTimes returns the relative completion times (done - join)
// of all completed non-seed clients, sorted ascending.
func (r *Result) CompletionTimes() []float64 {
	var out []float64
	for _, c := range r.Clients {
		if c.IsSeed || !c.Done {
			continue
		}
		out = append(out, c.DoneAt-c.JoinAt)
	}
	sort.Float64s(out)
	return out
}

// MeanCompletionTime averages CompletionTimes (NaN when empty).
func (r *Result) MeanCompletionTime() float64 {
	ct := r.CompletionTimes()
	if len(ct) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range ct {
		sum += v
	}
	return sum / float64(len(ct))
}

// SwarmCompletionTime is the paper's "completion time" metric: the
// total time for the whole swarm to finish (the max relative time).
func (r *Result) SwarmCompletionTime() float64 {
	ct := r.CompletionTimes()
	if len(ct) == 0 {
		return math.NaN()
	}
	return ct[len(ct)-1]
}

// BottleneckTraffic returns the link carrying the most cumulative P4P
// bytes and its volume — the paper's "P2P traffic on top of the most
// utilized link" metric.
func (r *Result) BottleneckTraffic() (topology.LinkID, float64) {
	best, bestV := topology.LinkID(-1), 0.0
	for i, v := range r.LinkBytes {
		if v > bestV {
			best, bestV = topology.LinkID(i), v
		}
	}
	return best, bestV
}

// PeakUtilization returns the maximum sampled utilization.
func (r *Result) PeakUtilization() float64 {
	peak := 0.0
	for _, s := range r.Samples {
		if s.MaxUtil > peak {
			peak = s.MaxUtil
		}
	}
	return peak
}

// MetroBreakdown splits the PID-pair traffic of PIDs within `asn` into
// same-metro and cross-metro volumes (Table 3). Intra-PID traffic is
// same-metro by definition.
func (r *Result) MetroBreakdown(asn int) (sameMetro, crossMetro float64) {
	for key, bytes := range r.PIDBytes {
		src, dst := r.graph.Node(key[0]), r.graph.Node(key[1])
		if src.ASN != asn || dst.ASN != asn {
			continue
		}
		if src.Metro == dst.Metro {
			sameMetro += bytes
		} else {
			crossMetro += bytes
		}
	}
	return sameMetro, crossMetro
}

// ASBreakdown aggregates the PID-pair traffic by (source ASN, dest
// ASN) — the basis of the field test's Table 2.
func (r *Result) ASBreakdown() map[[2]int]float64 {
	out := map[[2]int]float64{}
	for key, bytes := range r.PIDBytes {
		out[[2]int{r.graph.Node(key[0]).ASN, r.graph.Node(key[1]).ASN}] += bytes
	}
	return out
}

// IntraPIDBytes returns the traffic that never left its PID.
func (r *Result) IntraPIDBytes() float64 {
	sum := 0.0
	for key, bytes := range r.PIDBytes {
		if key[0] == key[1] {
			sum += bytes
		}
	}
	return sum
}
