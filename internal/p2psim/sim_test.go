package p2psim

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"p4p/internal/apptracker"
	"p4p/internal/topology"
)

// buildSwarm sets up a simulation on Abilene with one seed and n
// leechers spread round-robin across PIDs.
func buildSwarm(t *testing.T, sel apptracker.Selector, n int, seed int64, mutate func(*Config)) (*Sim, *topology.Graph) {
	t.Helper()
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	cfg := Config{
		Graph:     g,
		Routing:   r,
		Selector:  sel,
		Seed:      seed,
		FileBytes: 4 << 20, // small file keeps tests fast
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s := New(cfg)
	pids := g.AggregationPIDs()
	s.AddClient(ClientSpec{PID: pids[0], ASN: 11537, UpBps: 10e6, DownBps: 10e6, IsSeed: true})
	for i := 0; i < n; i++ {
		s.AddClient(ClientSpec{
			PID:     pids[i%len(pids)],
			ASN:     11537,
			UpBps:   5e6,
			DownBps: 20e6,
			JoinAt:  float64(i) * 2,
		})
	}
	return s, g
}

func TestSwarmCompletes(t *testing.T) {
	s, _ := buildSwarm(t, apptracker.Random{}, 20, 1, nil)
	res := s.Run()
	ct := res.CompletionTimes()
	if len(ct) != 20 {
		t.Fatalf("%d clients completed, want 20", len(ct))
	}
	for _, v := range ct {
		if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("bad completion time %v", v)
		}
	}
	if res.SwarmCompletionTime() < res.MeanCompletionTime() {
		t.Fatal("max completion below mean")
	}
}

func TestByteConservation(t *testing.T) {
	const n = 15
	s, _ := buildSwarm(t, apptracker.Random{}, n, 2, nil)
	res := s.Run()
	want := float64(n) * float64(4<<20)
	if math.Abs(res.TotalBytes-want) > 1 {
		t.Fatalf("TotalBytes = %v, want %v", res.TotalBytes, want)
	}
	// PID-pair matrix must sum to the same total.
	pidSum := 0.0
	for _, v := range res.PIDBytes {
		pidSum += v
	}
	if math.Abs(pidSum-want) > 1 {
		t.Fatalf("PIDBytes sum = %v, want %v", pidSum, want)
	}
	// Per-link bytes must equal UnitBDP x total (each byte counted once
	// per backbone hop).
	linkSum := 0.0
	for _, v := range res.LinkBytes {
		linkSum += v
	}
	if math.Abs(linkSum-res.UnitBDP*res.TotalBytes) > 1 {
		t.Fatalf("Σ linkBytes %v != UnitBDP x total %v", linkSum, res.UnitBDP*res.TotalBytes)
	}
}

func TestDeterminism(t *testing.T) {
	s1, _ := buildSwarm(t, apptracker.Random{}, 12, 7, nil)
	s2, _ := buildSwarm(t, apptracker.Random{}, 12, 7, nil)
	r1, r2 := s1.Run(), s2.Run()
	if r1.TotalBytes != r2.TotalBytes || r1.UnitBDP != r2.UnitBDP {
		t.Fatal("simulation is not deterministic")
	}
	c1, c2 := r1.CompletionTimes(), r2.CompletionTimes()
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("completion times differ between identical runs")
		}
	}
}

func TestSeedVariesOutcome(t *testing.T) {
	s1, _ := buildSwarm(t, apptracker.Random{}, 12, 7, nil)
	s2, _ := buildSwarm(t, apptracker.Random{}, 12, 8, nil)
	r1, r2 := s1.Run(), s2.Run()
	if r1.UnitBDP == r2.UnitBDP && r1.MeanCompletionTime() == r2.MeanCompletionTime() {
		t.Fatal("different seeds produced identical outcomes; RNG unused?")
	}
}

func TestLocalizedReducesBDP(t *testing.T) {
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	delay := func(a, b apptracker.Node) float64 {
		return r.PropagationDelaySeconds(a.PID, b.PID)
	}
	random, _ := buildSwarm(t, apptracker.Random{}, 30, 3, nil)
	localized, _ := buildSwarm(t, &apptracker.Localized{Delay: delay}, 30, 3, nil)
	rr, rl := random.Run(), localized.Run()
	if rl.UnitBDP >= rr.UnitBDP {
		t.Fatalf("localized UnitBDP %v not below random %v", rl.UnitBDP, rr.UnitBDP)
	}
}

func TestIntraPIDTrafficSkipsBackbone(t *testing.T) {
	// Everyone in one PID: no backbone traffic at all.
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	s := New(Config{Graph: g, Routing: r, Selector: apptracker.Random{}, Seed: 4, FileBytes: 1 << 20})
	pid := g.AggregationPIDs()[0]
	s.AddClient(ClientSpec{PID: pid, ASN: 1, UpBps: 10e6, DownBps: 10e6, IsSeed: true})
	for i := 0; i < 6; i++ {
		s.AddClient(ClientSpec{PID: pid, ASN: 1, UpBps: 5e6, DownBps: 5e6})
	}
	res := s.Run()
	if res.UnitBDP != 0 {
		t.Fatalf("intra-PID swarm has UnitBDP %v, want 0", res.UnitBDP)
	}
	for i, v := range res.LinkBytes {
		if v != 0 {
			t.Fatalf("backbone link %d carried %v bytes", i, v)
		}
	}
	if res.IntraPIDBytes() != res.TotalBytes {
		t.Fatal("intra-PID bytes should equal total")
	}
}

func TestSamplesRecorded(t *testing.T) {
	s, g := buildSwarm(t, apptracker.Random{}, 10, 5, func(c *Config) {
		c.SampleInterval = 5
		c.WatchLinks = []topology.LinkID{0, 1}
	})
	_ = g
	res := s.Run()
	if len(res.Samples) == 0 {
		t.Fatal("no samples recorded")
	}
	for _, smp := range res.Samples {
		if len(smp.Watch) != 2 {
			t.Fatalf("sample watch size %d", len(smp.Watch))
		}
		if smp.MaxUtil < 0 || smp.MaxUtil > 1.5 {
			t.Fatalf("implausible utilization %v", smp.MaxUtil)
		}
	}
}

func TestMeasureHookFires(t *testing.T) {
	calls := 0
	s, _ := buildSwarm(t, apptracker.Random{}, 10, 6, func(c *Config) {
		c.MeasureInterval = 10
		c.OnMeasure = func(now float64, rates []float64) {
			calls++
			for _, v := range rates {
				if v < 0 {
					t.Fatal("negative measured rate")
				}
			}
		}
	})
	s.Run()
	if calls == 0 {
		t.Fatal("OnMeasure never fired")
	}
}

func TestLedgerAccounting(t *testing.T) {
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	pids := g.AggregationPIDs()
	// Two clients on opposite coasts; ledger on every link of the path.
	path := r.Path(pids[0], pids[10])
	s := New(Config{
		Graph: g, Routing: r, Selector: apptracker.Random{}, Seed: 9,
		FileBytes:    1 << 20,
		WatchLedgers: &LedgerConfig{Links: path, IntervalSec: 60},
	})
	s.AddClient(ClientSpec{PID: pids[0], ASN: 1, UpBps: 10e6, DownBps: 10e6, IsSeed: true})
	s.AddClient(ClientSpec{PID: pids[10], ASN: 1, UpBps: 5e6, DownBps: 5e6})
	res := s.Run()
	led := res.Ledgers[path[0]]
	if led == nil {
		t.Fatal("missing ledger")
	}
	if math.Abs(led.Total()-float64(1<<20)) > 1 {
		t.Fatalf("ledger total = %v, want %v", led.Total(), 1<<20)
	}
}

func TestClassBytesTracking(t *testing.T) {
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	pids := g.AggregationPIDs()
	s := New(Config{
		Graph: g, Routing: r, Selector: apptracker.Random{}, Seed: 10,
		FileBytes: 1 << 20, TrackClassBytes: true,
	})
	s.AddClient(ClientSpec{PID: pids[0], ASN: 1, UpBps: 10e6, DownBps: 10e6, IsSeed: true, Class: "seed"})
	s.AddClient(ClientSpec{PID: pids[1], ASN: 1, UpBps: 50e6, DownBps: 50e6, Class: "fttp"})
	s.AddClient(ClientSpec{PID: pids[2], ASN: 1, UpBps: 1e6, DownBps: 3e6, Class: "dsl"})
	res := s.Run()
	sum := 0.0
	for _, v := range res.ClassBytes {
		sum += v
	}
	if math.Abs(sum-res.TotalBytes) > 1 {
		t.Fatalf("class bytes sum %v != total %v", sum, res.TotalBytes)
	}
	// Per-client breakdown must add up per client.
	for _, c := range res.Clients {
		if c.IsSeed || c.DownByClass == nil {
			continue
		}
		perClient := 0.0
		for _, v := range c.DownByClass {
			perClient += v
		}
		if c.Done && math.Abs(perClient-float64(1<<20)) > 1 {
			t.Fatalf("client %d class bytes %v != file size", c.ID, perClient)
		}
	}
}

func TestMaxTimeStops(t *testing.T) {
	s, _ := buildSwarm(t, apptracker.Random{}, 10, 11, func(c *Config) {
		c.MaxTime = 5 // far too short to finish
	})
	res := s.Run()
	if res.Duration > 5 {
		t.Fatalf("sim ran past MaxTime: %v", res.Duration)
	}
	if len(res.CompletionTimes()) != 0 {
		t.Fatal("no client should have finished in 5 s")
	}
}

func TestConfigValidation(t *testing.T) {
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	for _, fn := range []func(){
		func() { New(Config{Routing: r, Selector: apptracker.Random{}}) },
		func() { New(Config{Graph: g, Routing: r}) },
		func() {
			s := New(Config{Graph: g, Routing: r, Selector: apptracker.Random{}})
			s.AddClient(ClientSpec{UpBps: 0, DownBps: 1})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestStreamingDeliversData(t *testing.T) {
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	pids := g.AggregationPIDs()
	s := New(Config{
		Graph: g, Routing: r, Selector: apptracker.Random{}, Seed: 12,
		PieceBytes: 64 << 10,
		MaxTime:    120,
		Streaming:  &StreamingConfig{RateBps: 400e3, ContentSec: 600, WindowSec: 30},
	})
	s.AddClient(ClientSpec{PID: pids[0], ASN: 1, UpBps: 20e6, DownBps: 20e6, IsSeed: true})
	for i := 0; i < 8; i++ {
		s.AddClient(ClientSpec{PID: pids[(i+1)%len(pids)], ASN: 1, UpBps: 4e6, DownBps: 4e6})
	}
	res := s.Run()
	if res.Duration < 119 {
		t.Fatalf("streaming run ended early at %v", res.Duration)
	}
	if res.TotalBytes <= 0 {
		t.Fatal("no streaming bytes delivered")
	}
	// Streaming clients never complete.
	if got := len(res.CompletionTimes()); got != 0 {
		t.Fatalf("%d streaming clients 'completed'", got)
	}
	// Delivered volume cannot exceed published content times receivers.
	published := res.Duration * 400e3 / 8
	if res.TotalBytes > published*8*1.01 {
		t.Fatalf("delivered %v bytes > plausible bound", res.TotalBytes)
	}
}

func TestStreamingThroughputNearStreamRate(t *testing.T) {
	// With ample capacity every client should receive close to the
	// stream rate once warmed up.
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	pids := g.AggregationPIDs()
	s := New(Config{
		Graph: g, Routing: r, Selector: apptracker.Random{}, Seed: 13,
		PieceBytes: 64 << 10,
		MaxTime:    300,
		Streaming:  &StreamingConfig{RateBps: 400e3, ContentSec: 600, WindowSec: 60},
	})
	s.AddClient(ClientSpec{PID: pids[0], ASN: 1, UpBps: 50e6, DownBps: 50e6, IsSeed: true})
	const n = 6
	for i := 0; i < n; i++ {
		s.AddClient(ClientSpec{PID: pids[(i+1)%len(pids)], ASN: 1, UpBps: 10e6, DownBps: 10e6})
	}
	res := s.Run()
	perClient := res.TotalBytes / n
	goodput := perClient * 8 / res.Duration
	if goodput < 0.5*400e3 {
		t.Fatalf("mean goodput %v bps, want >= half the stream rate", goodput)
	}
}

// reselectionSelector switches from random to strictly-local selection
// partway through the run, so the test can observe connections being
// replaced.
type reselectionSelector struct {
	local bool
}

func (r *reselectionSelector) Name() string { return "test-switch" }

func (r *reselectionSelector) Select(self apptracker.Node, cands []apptracker.Node, m int, rng *rand.Rand) []int {
	var out []int
	// Local candidates first (when enabled), then fill with the rest so
	// connectivity is preserved.
	if r.local {
		for i, c := range cands {
			if c.ID != self.ID && c.PID == self.PID && len(out) < m {
				out = append(out, i)
			}
		}
	}
	for i, c := range cands {
		if c.ID == self.ID || len(out) >= m {
			break
		}
		dup := false
		for _, j := range out {
			if j == i {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, i)
		}
	}
	return out
}

func TestReselectionReplacesConnections(t *testing.T) {
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	sel := &reselectionSelector{}
	s := New(Config{
		Graph: g, Routing: r, Selector: sel, Seed: 3,
		FileBytes:        4 << 20,
		ReselectInterval: 5,
		NeighborTarget:   8, // leaves room for cross-PID links after locals
		MaxTime:          5000,
	})
	pids := g.AggregationPIDs()
	// Two PIDs, with the seed and half the clients at each.
	s.AddClient(ClientSpec{PID: pids[0], ASN: 1, UpBps: 10e6, DownBps: 10e6, IsSeed: true})
	for i := 0; i < 10; i++ {
		s.AddClient(ClientSpec{PID: pids[i%2], ASN: 1, UpBps: 5e6, DownBps: 20e6})
	}
	// Local-preferred selection plus periodic reselection: connections
	// churn as the candidate set grows while the swarm still completes.
	sel.local = true
	res := s.Run()
	if got := len(res.CompletionTimes()); got != 10 {
		t.Fatalf("%d of 10 clients completed under reselection churn", got)
	}
	// Availability bookkeeping survived connect/disconnect cycles.
	for _, c := range s.Clients() {
		id := int32(c.ID)
		for p := 0; p < s.pieces; p++ {
			want := int32(0)
			for _, ci := range s.connsOf[id] {
				if s.hasPiece(peerOf(&s.conns[ci], id), p) {
					want++
				}
			}
			if got := s.availOf(id)[p]; got != want {
				t.Fatalf("client %d avail[%d] = %d, want %d", c.ID, p, got, want)
			}
		}
	}
}

func TestDisconnectPanicsWithActiveFlow(t *testing.T) {
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	s := New(Config{Graph: g, Routing: r, Selector: apptracker.Random{}, Seed: 4})
	a := s.AddClient(ClientSpec{PID: 0, ASN: 1, UpBps: 1e6, DownBps: 1e6})
	b := s.AddClient(ClientSpec{PID: 1, ASN: 1, UpBps: 1e6, DownBps: 1e6})
	s.connect(int32(a.ID), int32(b.ID))
	ci := s.connOf[a.ID][int32(b.ID)]
	s.conns[ci].flow[0] = 0 // simulate an in-flight transfer
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when disconnecting an active connection")
		}
	}()
	s.disconnect(ci)
}

func TestTCPWindowCapsLongPaths(t *testing.T) {
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	pids := g.AggregationPIDs()
	// Seattle -> NewYork spans the country; with a 64 KiB window the
	// transfer must be far slower than the access rate allows.
	sttl, _ := g.FindNode("Seattle")
	nyc, _ := g.FindNode("NewYork")
	_ = pids
	run := func(window float64) float64 {
		s := New(Config{
			Graph: g, Routing: r, Selector: apptracker.Random{}, Seed: 5,
			FileBytes: 4 << 20, TCPWindowBytes: window,
		})
		s.AddClient(ClientSpec{PID: sttl, ASN: 1, UpBps: 1e9, DownBps: 1e9, IsSeed: true})
		s.AddClient(ClientSpec{PID: nyc, ASN: 1, UpBps: 1e9, DownBps: 1e9})
		res := s.Run()
		return res.MeanCompletionTime()
	}
	slow := run(64 << 10)
	fast := run(-1) // disabled
	if slow <= fast {
		t.Fatalf("window cap had no effect: capped %v vs uncapped %v", slow, fast)
	}
	// Sanity: the extra time should approximate transferring at
	// window/RTT (both runs share the same rechoke ramp-up).
	rtt := 0.004 + 2*r.PropagationDelaySeconds(sttl, nyc)
	wantSec := float64(4<<20) / (float64(64<<10) / rtt)
	if extra := slow - fast; extra < 0.5*wantSec || extra > 2*wantSec {
		t.Fatalf("capped transfer took %v s extra, want ~%v s", extra, wantSec)
	}
}

func TestBackgroundBpsLengthValidated(t *testing.T) {
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	// A correctly sized vector is accepted.
	New(Config{
		Graph: g, Routing: r, Selector: apptracker.Random{},
		BackgroundBps: make([]float64, g.NumLinks()),
	})
	// A short vector used to crash deep in handleMeasure with a raw
	// index-out-of-range; New must reject it up front with a message
	// naming the mismatch.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic for short BackgroundBps")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "BackgroundBps") {
			t.Fatalf("panic %v does not name BackgroundBps", r)
		}
	}()
	New(Config{
		Graph: g, Routing: r, Selector: apptracker.Random{},
		BackgroundBps: make([]float64, g.NumLinks()-1),
	})
}

func TestMeasureRatesBufferReused(t *testing.T) {
	// Config.OnMeasure documents that the rates slice is reused across
	// intervals: callbacks must copy anything they retain. Pin the
	// contract so a future change to handleMeasure can't silently start
	// allocating again (or callers can't start depending on retention).
	var (
		calls    int
		retained []float64 // alias of the callback's slice (the hazard)
		snapshot []float64 // copy of the first call's values (the fix)
	)
	s, _ := buildSwarm(t, apptracker.Random{}, 10, 5, func(c *Config) {
		c.MeasureInterval = 3
		c.OnMeasure = func(now float64, rates []float64) {
			if len(rates) == 0 {
				t.Fatal("empty rates slice")
			}
			if calls == 0 {
				retained = rates
				snapshot = append([]float64(nil), rates...)
			} else if &rates[0] != &retained[0] {
				t.Fatal("handleMeasure allocated a fresh rates slice")
			}
			calls++
		}
	})
	s.Run()
	if calls < 2 {
		t.Fatalf("OnMeasure fired %d times, want >= 2", calls)
	}
	// The retained alias was overwritten in place by later intervals:
	// exactly why callbacks must copy. The snapshot still holds the
	// first interval's values.
	changed := false
	for i := range retained {
		if retained[i] != snapshot[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("retained slice matches first-interval snapshot; reuse contract untested (rates constant?)")
	}
}

// recountNovel recomputes a connection's interest counter for the
// direction u -> peer(u) from first principles.
func recountNovel(s *Sim, cn *connS, u int32) int32 {
	d := peerOf(cn, u)
	n := int32(0)
	for p := 0; p < s.pieces; p++ {
		if s.hasPiece(u, p) && !s.hasPiece(d, p) {
			n++
		}
	}
	return n
}

func TestNovelCountersMatchRecount(t *testing.T) {
	// Stop mid-download so the counters are checked while non-trivial
	// (after completion every counter is zero by construction).
	s, _ := buildSwarm(t, apptracker.Random{}, 14, 9, func(c *Config) {
		c.MaxTime = 30
		c.ReselectInterval = 10 // exercise connect/disconnect churn too
	})
	s.Run()
	checked, nonzero := 0, 0
	for _, c := range s.Clients() {
		id := int32(c.ID)
		for _, ci := range s.connsOf[id] {
			cn := &s.conns[ci]
			if cn.a != id {
				continue // visit each conn once, from its a side
			}
			for _, u := range [2]int32{cn.a, cn.b} {
				want := recountNovel(s, cn, u)
				got := cn.novel[dirOf(cn, u)]
				if got != want {
					t.Fatalf("conn %d<->%d novel[%d->%d] = %d, want %d",
						cn.a, cn.b, u, peerOf(cn, u), got, want)
				}
				checked++
				if want > 0 {
					nonzero++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no connections to check")
	}
	if nonzero == 0 {
		t.Fatal("every counter was zero; shorten MaxTime so the check has teeth")
	}
}
