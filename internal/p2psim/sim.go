// Package p2psim is a discrete-event, session-level simulator for
// BitTorrent-style P2P swarms over PID-level topologies, following the
// simulation methodology the paper adopts from Bharambe et al. [3] and
// Bindal et al. [4]: packet-level behaviour is abstracted away and each
// active piece transfer is a fluid flow whose rate is the minimum of its
// two endpoints' fair shares (upload capacity split across active
// uploads, download capacity across active downloads). Backbone links
// are accounted (for utilization, bottleneck-traffic, and BDP metrics)
// but are not rate-limiting, matching the evaluated regimes where access
// links bound TCP throughput.
//
// The simulator models the BitTorrent control plane explicitly: tracker
// peer selection (pluggable via apptracker.Selector), piece bitfields,
// local-rarest-first piece selection, periodic tit-for-tat rechoking
// with optimistic unchoke, and seeding after completion. A streaming
// mode (Liveswarms) layers a sliding playback window on the same engine.
//
// The engine is sized for 10^5-10^6-peer swarms (ROADMAP item 4, the
// paper's 10M-user Pando field test): hot per-client and per-flow state
// lives in struct-of-arrays index-addressed slices (piece bitfields as
// flat bitsets, availability as a flat counter array, connections and
// flows in free-listed arenas addressed by int32 handles), with the
// pointer-bearing Client struct kept only at the API boundary. Events
// flow through a calendar queue (see queue.go). See DESIGN.md §13.
package p2psim

import (
	"cmp"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"slices"

	"p4p/internal/apptracker"
	"p4p/internal/topology"
)

// Config parameterizes a simulation.
type Config struct {
	Graph   *topology.Graph
	Routing *topology.Routing
	// Selector chooses neighbors at join time; required.
	Selector apptracker.Selector
	// Seed drives all randomness.
	Seed int64

	// PieceBytes is the piece size (default 256 KiB).
	PieceBytes int64
	// FileBytes is the shared file size (default 12 MiB).
	FileBytes int64
	// NeighborTarget m is how many peers the tracker returns (default 20).
	NeighborTarget int
	// UploadSlots is the number of concurrent unchoked peers per client,
	// including the optimistic slot (default 4).
	UploadSlots int
	// RechokeInterval is the tit-for-tat period in seconds (default 10).
	RechokeInterval float64
	// ReselectInterval, if positive, makes every client re-query the
	// tracker periodically and replace idle connections that the fresh
	// selection no longer includes — the appTracker re-optimization that
	// lets evolving p-distances steer an already-running swarm.
	ReselectInterval float64
	// OptimisticEvery rotates the optimistic unchoke every this many
	// rechokes (default 3, i.e. 30 s).
	OptimisticEvery int

	// BackgroundBps holds per-link background traffic (bits/sec) used
	// for utilization accounting; nil means zero.
	BackgroundBps []float64

	// MeasureInterval, if positive, invokes OnMeasure with the current
	// per-link P4P traffic rates (bits/sec) every interval — the hook
	// that feeds an iTracker's ObserveTraffic/Update loop. The rate
	// slice is reused between invocations: callbacks must copy it if
	// they retain it past the call.
	MeasureInterval float64
	OnMeasure       func(now float64, linkRateBps []float64)

	// SampleInterval, if positive, records utilization samples.
	SampleInterval float64
	// WatchLinks lists links whose rates are recorded in each sample.
	WatchLinks []topology.LinkID
	// WatchLedgers attaches interval volume ledgers to selected links
	// for percentile-charging analysis.
	WatchLedgers *LedgerConfig

	// TCPWindowBytes caps each transfer's rate at window/RTT, modelling
	// window-limited TCP over long paths — the reason "transport layer
	// connections over low-latency network paths would be more
	// efficient" (Section 2). RTT is twice the route propagation delay
	// plus BaseRTTSec. Default 64 KiB (the common 2008-era default
	// socket buffer); set negative to disable.
	TCPWindowBytes float64
	// BaseRTTSec is the fixed RTT floor covering access and processing
	// delays (default 4 ms).
	BaseRTTSec float64

	// MaxTime hard-stops the simulation (default 10^7 s).
	MaxTime float64

	// Streaming, if non-nil, runs the Liveswarms mode instead of file
	// download: pieces are produced continuously by the source and
	// clients fetch within a sliding window until MaxTime.
	Streaming *StreamingConfig

	// TrackClassBytes enables the per-client map of bytes downloaded by
	// uploader class (used by the FTTP analysis).
	TrackClassBytes bool

	// RateEpsilon enables bounded-staleness rate resolving: when the
	// relative change of a flow's fair-share rate is small, the flow
	// keeps transferring at its stale rate and the finish-event
	// reschedule is deferred until the accumulated relative drift
	// crosses RateEpsilon. Byte totals stay exactly conserved (flows
	// integrate whatever rate they actually ran at); completion times
	// become approximate within the bound. The default 0 is the exact
	// mode: every rate change reschedules, and simulation traces are
	// byte-identical to the pre-epsilon engine (the setting every
	// EXPERIMENTS.md reproduction uses). Negative values panic.
	RateEpsilon float64

	// forceHeapQueue pins the reference binary-heap event queue instead
	// of the calendar queue. Both produce identical simulation traces
	// (same total event order); the heap is kept as the oracle for the
	// queue-equivalence tests.
	forceHeapQueue bool
}

func (c *Config) withDefaults() {
	if c.PieceBytes == 0 {
		c.PieceBytes = 256 << 10
	}
	if c.FileBytes == 0 {
		c.FileBytes = 12 << 20
	}
	if c.NeighborTarget == 0 {
		c.NeighborTarget = 20
	}
	if c.UploadSlots == 0 {
		c.UploadSlots = 4
	}
	if c.RechokeInterval == 0 {
		c.RechokeInterval = 10
	}
	if c.OptimisticEvery == 0 {
		c.OptimisticEvery = 3
	}
	if c.TCPWindowBytes == 0 {
		c.TCPWindowBytes = 64 << 10
	}
	if c.BaseRTTSec == 0 {
		c.BaseRTTSec = 0.004
	}
	if c.MaxTime == 0 {
		c.MaxTime = 1e7
	}
}

// ClientSpec describes one client to be added to the swarm.
type ClientSpec struct {
	PID     topology.PID
	ASN     int
	UpBps   float64
	DownBps float64
	JoinAt  float64
	IsSeed  bool
	// Class is a free-form access-class label ("fttp", "dsl", ...)
	// used in per-class traffic breakdowns.
	Class string
}

// Client is the per-peer API handle. The simulator's hot per-client
// state (bitfields, rates, choke state) lives in index-addressed
// struct-of-arrays slices on Sim, keyed by Client.ID; this struct holds
// only the identity and the accessors tests and experiments use.
type Client struct {
	ID   int
	Spec ClientSpec

	sim *Sim

	// DownBytesByClass accumulates bytes received per uploader class
	// when Config.TrackClassBytes is set.
	DownBytesByClass map[string]float64
}

// Done reports whether the client has completed the file.
func (c *Client) Done() bool { return c.sim.done[c.ID] }

// DoneAt returns the completion time (absolute simulation seconds).
func (c *Client) DoneAt() float64 { return c.sim.doneAt[c.ID] }

// CompletionTime returns seconds from join to completion, or NaN.
func (c *Client) CompletionTime() float64 {
	if !c.Done() {
		return math.NaN()
	}
	return c.DoneAt() - c.Spec.JoinAt
}

// connS is one (symmetric) neighbor relationship, stored in the Sim's
// conn arena and addressed by int32 handle.
type connS struct {
	a, b int32
	// unchoked[0]: a unchokes b; unchoked[1]: b unchokes a.
	unchoked [2]bool
	// flow[0]: transfer a->b; flow[1]: transfer b->a (arena handle, -1
	// when idle).
	flow [2]int32
	// recv[0]: bytes b sent to a in the current rechoke interval;
	// recv[1]: bytes a sent to b.
	recv [2]float64
	// novel[i] counts the pieces the direction-i uploader has that its
	// downloader still lacks (novel[0]: a has, b lacks; novel[1]: b has,
	// a lacks). Maintained incrementally at connect time and whenever a
	// piece lands, so interest checks are O(1) instead of O(pieces).
	novel [2]int32
}

// dirOf returns the index for the direction u -> peer in flow/unchoked.
func dirOf(cn *connS, u int32) int {
	if cn.a == u {
		return 0
	}
	return 1
}

func peerOf(cn *connS, c int32) int32 {
	if cn.a == c {
		return cn.b
	}
	return cn.a
}

// flowS is one active piece transfer, stored in the Sim's flow arena.
// seq survives slot reuse (it is never reset by alloc), so a stale
// finish event addressed to a recycled slot can never match.
type flowS struct {
	u, d   int32
	cn     int32 // conn arena handle
	piece  int32
	self   int32 // own arena handle (finish events carry it)
	seq    int32
	active bool

	remaining float64 // bytes
	rate      float64 // bytes/sec
	rateCap   float64 // TCP window cap, bytes/sec (+Inf when disabled)
	lastT     float64
	moved     float64 // bytes transferred so far (flushed at teardown)
	drift     float64 // accumulated relative rate drift (RateEpsilon)
	eventT    float64 // time of the live scheduled finish event (+Inf when none)
	epoch     int64   // dedup stamp against Sim.flowEpoch (ratesChanged)

	links    []topology.LinkID
	ledgered []topology.LinkID // links on the path with volume ledgers
}

// flowRef snapshots the sort key of one flow for ratesChanged, so the
// deterministic (uploader, downloader) ordering can be established with
// a capture-free comparator over values.
type flowRef struct {
	idx  int32
	u, d int32
}

// Sim is a single swarm simulation. Build with New, add clients, Run.
type Sim struct {
	cfg     Config
	rng     *rand.Rand
	now     float64
	clients []*Client
	pieces  int
	hasW    int // bitset words per client

	// Event queue: exactly one of heapQ/calQ is non-nil. Kept as two
	// concrete fields (not an interface) so hot-path pushes stay
	// statically dispatched.
	qseq  uint64
	heapQ *eventHeap
	calQ  *calendarQueue

	incomplete int // clients still downloading

	// Per-client struct-of-arrays hot state, indexed by client ID.
	upBps, downBps []float64 // bytes/sec internally
	pid            []topology.PID
	asn            []int
	isSeed         []bool
	joined         []bool
	done           []bool
	doneAt         []float64
	numHas         []int32
	nUp, nDown     []int32 // active transfer counts
	rechokeNum     []int32
	optimistic     []int32 // optimistic-unchoke peer ID, -1 none
	unchokeMark    []int64 // epoch stamps replacing per-call sets
	wantMark       []int64
	hasBits        []uint64 // piece bitfields, hasW words per client
	pendBits       []uint64 // in-flight pieces, same layout
	avail          []int32  // neighbor availability, pieces per client
	connsOf        [][]int32
	connOf         []map[int32]int32 // peer ID -> conn handle
	joinedPos      []int32           // position in joinedIDs

	// Conn and flow arenas with free lists.
	conns    []connS
	connFree []int32
	flows    []flowS
	flowFree []int32

	// Incrementally maintained tracker candidate list (every joined
	// client, in join order); replaces the per-query O(clients) rebuild.
	joinedIDs   []int32
	joinedNodes []apptracker.Node

	linkRate  []float64 // bytes/sec per backbone link, P4P traffic only
	bgBytesPS []float64 // background, bytes/sec

	// Reusable scratch state keeping the event hot paths allocation-free
	// (see DESIGN.md §9). Epoch counters pair with the stamps on flows
	// and clients so membership checks need no per-call maps.
	flowEpoch    int64
	flowScratch  []flowRef
	unchokeEpoch int64
	wantEpoch    int64
	candScratch  []rechokeCand
	poolScratch  []int32
	selScratch   []int32
	connScratch  []int32
	measureBuf   []float64

	metrics Metrics
}

// New builds a simulation.
func New(cfg Config) *Sim {
	cfg.withDefaults()
	if cfg.Graph == nil || cfg.Routing == nil {
		panic("p2psim: Graph and Routing are required")
	}
	if cfg.Selector == nil {
		panic("p2psim: Selector is required")
	}
	if cfg.BackgroundBps != nil && len(cfg.BackgroundBps) != cfg.Graph.NumLinks() {
		panic(fmt.Sprintf("p2psim: BackgroundBps has %d entries, graph %q has %d links",
			len(cfg.BackgroundBps), cfg.Graph.Name, cfg.Graph.NumLinks()))
	}
	if cfg.RateEpsilon < 0 {
		panic(fmt.Sprintf("p2psim: negative RateEpsilon %v", cfg.RateEpsilon))
	}
	s := &Sim{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		linkRate: make([]float64, cfg.Graph.NumLinks()),
	}
	if cfg.forceHeapQueue {
		s.heapQ = &eventHeap{}
	} else {
		// Initial bucket width ~ the spacing of control events; the
		// queue re-derives it from the observed span as it grows.
		s.calQ = newCalendarQueue(cfg.RechokeInterval / 256)
	}
	s.pieces = int((cfg.FileBytes + cfg.PieceBytes - 1) / cfg.PieceBytes)
	if cfg.Streaming != nil {
		s.pieces = cfg.Streaming.totalPieces(&cfg)
	}
	s.hasW = (s.pieces + 63) / 64
	s.bgBytesPS = make([]float64, cfg.Graph.NumLinks())
	for i := range s.bgBytesPS {
		if cfg.BackgroundBps != nil {
			s.bgBytesPS[i] = cfg.BackgroundBps[i] / 8
		}
	}
	s.metrics.init(&cfg)
	return s
}

// AddClient registers a client; call before Run.
func (s *Sim) AddClient(spec ClientSpec) *Client {
	if spec.UpBps <= 0 || spec.DownBps <= 0 {
		panic(fmt.Sprintf("p2psim: non-positive access capacity for client %d", len(s.clients)))
	}
	id := len(s.clients)
	c := &Client{ID: id, Spec: spec, sim: s}
	if s.cfg.TrackClassBytes {
		c.DownBytesByClass = map[string]float64{}
	}
	s.clients = append(s.clients, c)

	s.upBps = append(s.upBps, spec.UpBps/8)
	s.downBps = append(s.downBps, spec.DownBps/8)
	s.pid = append(s.pid, spec.PID)
	s.asn = append(s.asn, spec.ASN)
	s.isSeed = append(s.isSeed, spec.IsSeed)
	s.joined = append(s.joined, false)
	s.done = append(s.done, false)
	s.doneAt = append(s.doneAt, 0)
	s.numHas = append(s.numHas, 0)
	s.nUp = append(s.nUp, 0)
	s.nDown = append(s.nDown, 0)
	s.rechokeNum = append(s.rechokeNum, 0)
	s.optimistic = append(s.optimistic, -1)
	s.unchokeMark = append(s.unchokeMark, 0)
	s.wantMark = append(s.wantMark, 0)
	s.joinedPos = append(s.joinedPos, 0)
	s.hasBits = append(s.hasBits, make([]uint64, s.hasW)...)
	s.pendBits = append(s.pendBits, make([]uint64, s.hasW)...)
	s.avail = append(s.avail, make([]int32, s.pieces)...)
	s.connsOf = append(s.connsOf, nil)
	s.connOf = append(s.connOf, map[int32]int32{})

	if spec.IsSeed {
		s.done[id] = true
		s.doneAt[id] = spec.JoinAt
		if s.cfg.Streaming == nil {
			// Only bits [0, pieces) are ever set: the tail bits of the
			// last word stay zero so word-level scans cannot surface
			// phantom pieces.
			hw := s.hasWords(int32(id))
			for p := 0; p < s.pieces; p++ {
				hw[p>>6] |= 1 << uint(p&63)
			}
			s.numHas[id] = int32(s.pieces)
		}
		// A streaming source starts with nothing published; pieces
		// appear over time (see streaming.go).
	}
	return c
}

// Clients returns the registered clients.
func (s *Sim) Clients() []*Client { return s.clients }

// Graph returns the simulation's topology.
func (s *Sim) Graph() *topology.Graph { return s.cfg.Graph }

// Now returns the current simulation time.
func (s *Sim) Now() float64 { return s.now }

// --- bitset accessors ---

func (s *Sim) hasWords(c int32) []uint64 {
	return s.hasBits[int(c)*s.hasW : (int(c)+1)*s.hasW]
}

func (s *Sim) pendWords(c int32) []uint64 {
	return s.pendBits[int(c)*s.hasW : (int(c)+1)*s.hasW]
}

func (s *Sim) availOf(c int32) []int32 {
	return s.avail[int(c)*s.pieces : (int(c)+1)*s.pieces]
}

func (s *Sim) hasPiece(c int32, p int) bool {
	return s.hasBits[int(c)*s.hasW+(p>>6)]&(1<<uint(p&63)) != 0
}

func (s *Sim) setHas(c int32, p int) {
	s.hasBits[int(c)*s.hasW+(p>>6)] |= 1 << uint(p&63)
}

func (s *Sim) setPending(c int32, p int) {
	s.pendBits[int(c)*s.hasW+(p>>6)] |= 1 << uint(p&63)
}

func (s *Sim) clearPending(c int32, p int) {
	s.pendBits[int(c)*s.hasW+(p>>6)] &^= 1 << uint(p&63)
}

// --- event queue ---

// push stamps the event with the global push counter (the FIFO
// tie-break of the total event order) and enqueues it. The queue choice
// branches on concrete types so the hot path has no dynamic dispatch.
func (s *Sim) push(ev event) {
	s.qseq++
	ev.qseq = s.qseq
	if s.heapQ != nil {
		s.heapQ.push(ev)
	} else {
		s.calQ.push(ev)
	}
}

func (s *Sim) popEvent() (event, bool) {
	if s.heapQ != nil {
		return s.heapQ.pop()
	}
	return s.calQ.pop()
}

// Run executes the simulation to completion (all non-seed clients done)
// or MaxTime, and returns the collected metrics.
func (s *Sim) Run() *Result {
	for _, c := range s.clients {
		if !c.Spec.IsSeed {
			s.incomplete++
		}
		s.push(event{t: c.Spec.JoinAt, kind: evJoin, id: int32(c.ID)})
	}
	s.push(event{t: s.cfg.RechokeInterval, kind: evRechoke})
	if s.cfg.ReselectInterval > 0 {
		s.push(event{t: s.cfg.ReselectInterval, kind: evReselect})
	}
	if s.cfg.MeasureInterval > 0 {
		s.push(event{t: s.cfg.MeasureInterval, kind: evMeasure})
	}
	if s.cfg.SampleInterval > 0 {
		s.push(event{t: s.cfg.SampleInterval, kind: evSample})
	}
	if s.cfg.Streaming != nil {
		s.cfg.Streaming.schedule(s)
	}

	for {
		ev, ok := s.popEvent()
		if !ok {
			break
		}
		if ev.t > s.cfg.MaxTime {
			s.now = s.cfg.MaxTime
			break
		}
		s.now = ev.t
		switch ev.kind {
		case evJoin:
			s.handleJoin(ev.id)
		case evRechoke:
			s.handleRechoke()
		case evFlowFinish:
			f := &s.flows[ev.id]
			if f.active && f.seq == ev.seq {
				s.handleFlowFinish(ev.id)
			}
		case evMeasure:
			s.handleMeasure()
		case evSample:
			s.handleSample()
		case evStreamPiece:
			s.handleStreamPiece(ev.id)
		case evReselect:
			s.handleReselect()
		}
		if s.incomplete == 0 && s.cfg.Streaming == nil {
			break
		}
	}
	// Final flow settlement for accurate byte accounting.
	for fi := range s.flows {
		f := &s.flows[fi]
		if f.active {
			s.progressFlow(f)
			s.flushFlow(f)
		}
	}
	return s.metrics.result(s)
}

// --- join and neighbor management ---

func (s *Sim) handleJoin(c int32) {
	s.joined[c] = true
	// Tracker query: candidates are all previously joined clients (c is
	// appended to the list only after the query, so it never sees
	// itself).
	self := apptracker.Node{ID: int(c), PID: s.pid[c], ASN: s.asn[c]}
	sel := s.cfg.Selector.Select(self, s.joinedNodes, s.cfg.NeighborTarget, s.rng)
	picks := s.selScratch[:0]
	for _, idx := range sel {
		picks = append(picks, s.joinedIDs[idx])
	}
	s.selScratch = picks
	s.joinedPos[c] = int32(len(s.joinedIDs))
	s.joinedIDs = append(s.joinedIDs, c)
	s.joinedNodes = append(s.joinedNodes, self)
	for _, p := range picks {
		s.connect(c, p)
	}
	// Newly joined clients try to attract an unchoke at the very next
	// rechoke; nothing to start yet (no pieces, not unchoked).
	// A seed joining late can immediately serve: rechoke handles it.
}

// candidatesExcluding serves the tracker candidate list with client c
// removed, by swapping c's entry to the tail and returning the prefix.
// The swap persists (joinedPos tracks it), so exclusion is O(1) instead
// of an O(clients) rebuild per query. Selectors receive the node slice
// for the duration of Select only and must not retain it.
func (s *Sim) candidatesExcluding(c int32) []apptracker.Node {
	pos := s.joinedPos[c]
	last := int32(len(s.joinedIDs) - 1)
	if pos != last {
		oc := s.joinedIDs[last]
		s.joinedIDs[pos], s.joinedIDs[last] = oc, c
		s.joinedNodes[pos], s.joinedNodes[last] = s.joinedNodes[last], s.joinedNodes[pos]
		s.joinedPos[oc], s.joinedPos[c] = pos, last
	}
	return s.joinedNodes[:last]
}

// connect establishes a symmetric neighbor relationship.
func (s *Sim) connect(a, b int32) {
	if a == b {
		return
	}
	if _, dup := s.connOf[a][b]; dup {
		return
	}
	var ci int32
	if n := len(s.connFree); n > 0 {
		ci = s.connFree[n-1]
		s.connFree = s.connFree[:n-1]
	} else {
		s.conns = append(s.conns, connS{})
		ci = int32(len(s.conns) - 1)
	}
	s.conns[ci] = connS{a: a, b: b, flow: [2]int32{-1, -1}}
	s.connsOf[a] = append(s.connsOf[a], ci)
	s.connsOf[b] = append(s.connsOf[b], ci)
	s.connOf[a][b] = ci
	s.connOf[b][a] = ci
	// Availability and interest bookkeeping, word at a time.
	ah, bh := s.hasWords(a), s.hasWords(b)
	availA, availB := s.availOf(a), s.availOf(b)
	var novel [2]int32
	for w := range ah {
		aw, bw := ah[w], bh[w]
		novel[0] += int32(bits.OnesCount64(aw &^ bw)) // a has, b lacks
		novel[1] += int32(bits.OnesCount64(bw &^ aw)) // b has, a lacks
		for m := bw; m != 0; m &= m - 1 {
			availA[w<<6+bits.TrailingZeros64(m)]++
		}
		for m := aw; m != 0; m &= m - 1 {
			availB[w<<6+bits.TrailingZeros64(m)]++
		}
	}
	s.conns[ci].novel = novel
}

// interested reports whether d wants data from its neighbor u: O(1)
// via the incrementally maintained per-conn novel-piece counters.
func (s *Sim) interested(d, u int32) bool {
	if s.done[d] {
		return false
	}
	ci, ok := s.connOf[u][d]
	if !ok {
		return false
	}
	cn := &s.conns[ci]
	return cn.novel[dirOf(cn, u)] > 0
}

// gainPiece records that d now has the given piece, updating neighbor
// availability and the per-conn interest counters.
func (s *Sim) gainPiece(d int32, piece int) {
	s.setHas(d, piece)
	s.numHas[d]++
	for _, ci := range s.connsOf[d] {
		cn := &s.conns[ci]
		p := peerOf(cn, d)
		s.avail[int(p)*s.pieces+piece]++
		if s.hasPiece(p, piece) {
			cn.novel[dirOf(cn, p)]-- // d no longer lacks a piece p has
		} else {
			cn.novel[dirOf(cn, d)]++ // d gained a piece p still lacks
		}
	}
}

// handleReselect re-runs tracker selection for every joined client and
// swaps out idle connections that the fresh selection dropped.
func (s *Sim) handleReselect() {
	for id := int32(0); int(id) < len(s.clients); id++ {
		if !s.joined[id] || s.isSeed[id] {
			continue
		}
		s.reselectClient(id)
	}
	if s.incomplete > 0 || s.cfg.Streaming != nil {
		s.push(event{t: s.now + s.cfg.ReselectInterval, kind: evReselect})
	}
}

func (s *Sim) reselectClient(c int32) {
	cands := s.candidatesExcluding(c)
	self := apptracker.Node{ID: int(c), PID: s.pid[c], ASN: s.asn[c]}
	sel := s.cfg.Selector.Select(self, cands, s.cfg.NeighborTarget, s.rng)
	picks := s.selScratch[:0]
	for _, idx := range sel {
		picks = append(picks, s.joinedIDs[idx])
	}
	s.selScratch = picks
	s.wantEpoch++
	for _, p := range picks {
		s.wantMark[p] = s.wantEpoch
	}
	// Drop idle connections the fresh selection no longer includes,
	// iterating over a scratch snapshot because disconnect mutates
	// connsOf[c].
	snapshot := append(s.connScratch[:0], s.connsOf[c]...)
	for _, ci := range snapshot {
		cn := &s.conns[ci]
		p := peerOf(cn, c)
		if s.wantMark[p] == s.wantEpoch || cn.flow[0] >= 0 || cn.flow[1] >= 0 {
			continue
		}
		s.disconnect(ci)
	}
	s.connScratch = snapshot
	// Connect the newly selected peers (connect dedupes).
	for _, p := range picks {
		s.connect(c, p)
	}
}

// disconnect tears down an idle neighbor relationship and returns its
// arena slot to the free list.
func (s *Sim) disconnect(ci int32) {
	cn := &s.conns[ci]
	if cn.flow[0] >= 0 || cn.flow[1] >= 0 {
		panic("p2psim: disconnect with active flow")
	}
	a, b := cn.a, cn.b
	s.removeConnRef(a, ci)
	s.removeConnRef(b, ci)
	delete(s.connOf[a], b)
	delete(s.connOf[b], a)
	ah, bh := s.hasWords(a), s.hasWords(b)
	availA, availB := s.availOf(a), s.availOf(b)
	for w := range ah {
		for m := bh[w]; m != 0; m &= m - 1 {
			availA[w<<6+bits.TrailingZeros64(m)]--
		}
		for m := ah[w]; m != 0; m &= m - 1 {
			availB[w<<6+bits.TrailingZeros64(m)]--
		}
	}
	if s.optimistic[a] == b {
		s.optimistic[a] = -1
	}
	if s.optimistic[b] == a {
		s.optimistic[b] = -1
	}
	s.connFree = append(s.connFree, ci)
}

// removeConnRef drops the handle ci from c's connection list, keeping
// the remaining order (rechoke and tryStart iteration order is part of
// the deterministic trace).
func (s *Sim) removeConnRef(c, ci int32) {
	list := s.connsOf[c]
	for i, x := range list {
		if x == ci {
			s.connsOf[c] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// --- rechoke ---

//p4p:hotpath fires every RechokeInterval for every client; the allocation-free contract is what keeps large sweeps tractable
func (s *Sim) handleRechoke() {
	for id := int32(0); int(id) < len(s.clients); id++ {
		if s.joined[id] {
			s.rechokeClient(id)
		}
	}
	// Reset interval byte counters (free arena slots included: zeroing
	// them is harmless and the straight sweep is cache-friendly).
	for i := range s.conns {
		s.conns[i].recv[0], s.conns[i].recv[1] = 0, 0
	}
	if s.incomplete > 0 || s.cfg.Streaming != nil {
		s.push(event{t: s.now + s.cfg.RechokeInterval, kind: evRechoke})
	}
}

// rechokeCand is one interested neighbor under rechoke evaluation.
// Candidates accumulate in Sim.candScratch so the per-client rechoke
// allocates nothing.
type rechokeCand struct {
	ci    int32
	peer  int32
	score float64
}

// cmpRechoke orders candidates by score descending, peer ID ascending;
// package-level so the sort call stays closure-free.
func cmpRechoke(a, b rechokeCand) int {
	if a.score != b.score {
		if a.score > b.score {
			return -1
		}
		return 1
	}
	return cmp.Compare(a.peer, b.peer)
}

// rechokeClient re-evaluates u's unchoke set: top (slots-1) interested
// peers by bytes they sent us during the last interval (random for
// seeds), plus one optimistic slot rotated every OptimisticEvery
// rechokes. Membership in the new unchoke set is tracked by stamping
// peers with the current unchoke epoch instead of building a set.
func (s *Sim) rechokeClient(u int32) {
	s.rechokeNum[u]++
	interested := s.candScratch[:0]
	for _, ci := range s.connsOf[u] {
		cn := &s.conns[ci]
		p := peerOf(cn, u)
		if !s.joined[p] || s.done[p] || cn.novel[dirOf(cn, u)] == 0 {
			continue
		}
		// Tit-for-tat: bytes p uploaded to u during the last interval.
		score := cn.recv[dirOf(cn, p)]
		if s.done[u] {
			// Seeds have no download to reciprocate; randomize.
			score = s.rng.Float64()
		}
		interested = append(interested, rechokeCand{ci: ci, peer: p, score: score})
	}
	slices.SortStableFunc(interested, cmpRechoke)
	s.candScratch = interested
	regular := s.cfg.UploadSlots - 1
	if regular < 0 {
		regular = 0
	}
	s.unchokeEpoch++
	mark := s.unchokeEpoch
	for i := 0; i < len(interested) && i < regular; i++ {
		s.unchokeMark[interested[i].peer] = mark
	}
	// Optimistic slot.
	opt := s.optimistic[u]
	rotate := opt < 0 || !s.interested(opt, u) ||
		int(s.rechokeNum[u])%s.cfg.OptimisticEvery == 0
	if rotate {
		pool := s.poolScratch[:0]
		for _, c := range interested {
			if s.unchokeMark[c.peer] != mark {
				pool = append(pool, c.peer)
			}
		}
		if len(pool) > 0 {
			s.optimistic[u] = pool[s.rng.Intn(len(pool))]
		} else {
			s.optimistic[u] = -1
		}
		s.poolScratch = pool
		opt = s.optimistic[u]
	}
	if opt >= 0 && s.unchokeMark[opt] != mark && s.interested(opt, u) {
		s.unchokeMark[opt] = mark
	}
	// Apply: choke removed peers (in-flight pieces finish), unchoke new.
	for _, ci := range s.connsOf[u] {
		cn := &s.conns[ci]
		p := peerOf(cn, u)
		dir := dirOf(cn, u)
		was := cn.unchoked[dir]
		cn.unchoked[dir] = s.unchokeMark[p] == mark
		if !was && cn.unchoked[dir] {
			s.tryStartCn(ci, u, p)
		}
	}
}

// --- transfers ---

// tryStart begins a transfer u->d if they are connected, u unchokes d,
// the connection is idle in that direction, and d wants a piece u has.
func (s *Sim) tryStart(u, d int32) {
	if ci, ok := s.connOf[u][d]; ok {
		s.tryStartCn(ci, u, d)
	}
}

// tryStartCn is tryStart for a known conn handle (rarest-first piece
// choice, flow arena slot alloc, initial rate resolve).
//
//p4p:coldpath allocates or recycles one flow arena slot per started transfer by design; flows are the simulation's unit of work
func (s *Sim) tryStartCn(ci, u, d int32) {
	if s.done[d] || !s.joined[d] || !s.joined[u] {
		return
	}
	{
		cn := &s.conns[ci]
		dir := dirOf(cn, u)
		if !cn.unchoked[dir] || cn.flow[dir] >= 0 {
			return
		}
	}
	piece := s.pickPiece(u, d)
	if piece < 0 {
		return
	}
	fi := s.allocFlow()
	f := &s.flows[fi]
	f.u, f.d, f.cn, f.piece, f.self = u, d, ci, int32(piece), fi
	f.active = true
	f.remaining = float64(s.cfg.PieceBytes)
	f.rate = 0
	f.rateCap = math.Inf(1)
	f.lastT = s.now
	f.moved = 0
	f.drift = 0
	f.eventT = math.Inf(1)
	f.links = nil
	f.ledgered = f.ledgered[:0]
	if s.pid[u] != s.pid[d] {
		f.links = s.cfg.Routing.Path(s.pid[u], s.pid[d])
	}
	if s.cfg.TCPWindowBytes > 0 {
		rtt := s.cfg.BaseRTTSec + 2*s.cfg.Routing.PropagationDelaySeconds(s.pid[u], s.pid[d])
		f.rateCap = s.cfg.TCPWindowBytes / rtt
	}
	if len(s.metrics.ledgers) > 0 {
		for _, e := range f.links {
			if _, ok := s.metrics.ledgers[e]; ok {
				f.ledgered = append(f.ledgered, e)
			}
		}
	}
	cn := &s.conns[ci]
	cn.flow[dirOf(cn, u)] = fi
	s.setPending(d, piece)
	s.nUp[u]++
	s.nDown[d]++
	s.ratesChanged(u, d)
}

// allocFlow returns a flow arena slot: recycled from the free list when
// possible, freshly appended otherwise. The slot's seq stamp is
// deliberately NOT reset — it outlives reuse so stale finish events
// addressed to the slot keep failing their seq check.
func (s *Sim) allocFlow() int32 {
	if n := len(s.flowFree); n > 0 {
		fi := s.flowFree[n-1]
		s.flowFree = s.flowFree[:n-1]
		return fi
	}
	s.flows = append(s.flows, flowS{})
	return int32(len(s.flows) - 1)
}

func (s *Sim) freeFlow(fi int32) {
	f := &s.flows[fi]
	f.links = nil // owned by Routing; drop the alias
	s.flowFree = append(s.flowFree, fi)
}

// pickPiece chooses the locally-rarest piece that u has, d lacks, and d
// is not already fetching; ties break uniformly at random. The
// candidate set is computed word-at-a-time from the piece bitsets.
// Streaming mode instead fetches in order within the playback window.
func (s *Sim) pickPiece(u, d int32) int {
	if s.cfg.Streaming != nil {
		return s.pickStreamPiece(u, d)
	}
	uh, dh := s.hasWords(u), s.hasWords(d)
	dp := s.pendWords(d)
	avail := s.availOf(d)
	best, count := -1, 0
	bestAvail := int32(math.MaxInt32)
	for w := range uh {
		for m := uh[w] &^ dh[w] &^ dp[w]; m != 0; m &= m - 1 {
			p := w<<6 + bits.TrailingZeros64(m)
			a := avail[p]
			switch {
			case a < bestAvail:
				best, bestAvail, count = p, a, 1
			case a == bestAvail:
				count++
				if s.rng.Intn(count) == 0 {
					best = p
				}
			}
		}
	}
	return best
}

// progressFlow advances a flow's byte accounting to the current time.
// Cheap counters update here; per-PID and per-class aggregates flush
// once at flow teardown (flushFlow) to keep the hot path map-free.
func (s *Sim) progressFlow(f *flowS) {
	dt := s.now - f.lastT
	if dt > 0 && f.rate > 0 {
		bytes := f.rate * dt
		if bytes > f.remaining {
			bytes = f.remaining
		}
		f.remaining -= bytes
		f.moved += bytes
		cn := &s.conns[f.cn]
		cn.recv[dirOf(cn, f.d)] += bytes
		for _, e := range f.ledgered {
			s.metrics.ledgers[e].AddSpread(f.lastT, s.now, bytes)
		}
	}
	f.lastT = s.now
}

// flushFlow commits a flow's accumulated bytes to the aggregate
// metrics. Call exactly once, after the final progressFlow.
func (s *Sim) flushFlow(f *flowS) {
	if f.moved == 0 {
		return
	}
	s.metrics.flush(s, f)
	f.moved = 0
}

// cmpFlowRef orders flows by (uploader, downloader); package-level so
// the ratesChanged sort stays closure-free.
func cmpFlowRef(x, y flowRef) int {
	if x.u != y.u {
		return cmp.Compare(x.u, y.u)
	}
	return cmp.Compare(x.d, y.d)
}

// ratesChanged recomputes the rates of all flows incident to the two
// endpoints (their fair shares changed) and reschedules finish events.
// Flows are deduplicated by stamping them with a fresh epoch and
// collected into a scratch slice reused across calls; the sort keeps
// the deterministic (uploader, downloader) iteration order.
//
// With Config.RateEpsilon > 0, small relative deltas are absorbed into
// a per-flow drift accumulator instead of rescheduling: the flow keeps
// running at its stale rate until the accumulated drift crosses the
// bound. Bytes remain exactly conserved (progressFlow integrates the
// rate the flow actually ran at); finish times are approximate within
// the bound. Epsilon 0 takes the exact branch-free path.
func (s *Sim) ratesChanged(a, b int32) {
	s.flowEpoch++
	flows := s.flowScratch[:0]
	for _, c := range [2]int32{a, b} {
		for _, ci := range s.connsOf[c] {
			cn := &s.conns[ci]
			for dir := 0; dir < 2; dir++ {
				fi := cn.flow[dir]
				if fi < 0 {
					continue
				}
				f := &s.flows[fi]
				if f.active && f.epoch != s.flowEpoch {
					f.epoch = s.flowEpoch
					flows = append(flows, flowRef{idx: fi, u: f.u, d: f.d})
				}
			}
		}
	}
	slices.SortFunc(flows, cmpFlowRef)
	s.flowScratch = flows
	eps := s.cfg.RateEpsilon
	for _, ref := range flows {
		f := &s.flows[ref.idx]
		newRate := s.flowRate(f)
		if newRate == f.rate {
			// Unchanged rate: the previously scheduled finish event is
			// still exact; skip the reschedule and the progress flush.
			continue
		}
		if eps > 0 && f.rate > 0 {
			rel := math.Abs(newRate-f.rate) / f.rate
			if f.drift+rel <= eps {
				f.drift += rel
				continue
			}
		}
		f.drift = 0
		s.progressFlow(f)
		s.applyRate(f, newRate)
		s.scheduleFinish(f)
	}
}

// flowRate is the session-level TCP model of [3]/[4]: the transfer gets
// the minimum of the uploader's and downloader's per-connection fair
// shares, additionally capped by the window/RTT limit of the path.
func (s *Sim) flowRate(f *flowS) float64 {
	up := s.upBps[f.u] / float64(s.nUp[f.u])
	down := s.downBps[f.d] / float64(s.nDown[f.d])
	return math.Min(f.rateCap, math.Min(up, down))
}

// applyRate updates the flow's rate and the per-link rate accounting.
func (s *Sim) applyRate(f *flowS, rate float64) {
	delta := rate - f.rate
	for _, e := range f.links {
		s.linkRate[e] += delta
	}
	f.rate = rate
}

// scheduleFinish (re)arms the flow's finish event. A reschedule is only
// pushed when the projected finish moved EARLIER than the currently
// scheduled event: a later finish keeps the old event live, which then
// fires early, integrates exactly, and re-arms (handleFlowFinish's
// remaining > 0 branch). Rate decreases — the common case, every new
// flow joining a bottleneck slows its neighbours — therefore push
// nothing, collapsing what used to be a stale-event reschedule storm
// into at most one early fire per scheduled event. Byte accounting is
// unaffected: progressFlow integrates the actually-applied rates
// regardless of when events fire.
func (s *Sim) scheduleFinish(f *flowS) {
	if f.rate <= 0 {
		f.seq++ // kill the live event, if any
		f.eventT = math.Inf(1)
		return // re-armed when a rate change occurs
	}
	t := s.now + f.remaining/f.rate
	if t >= f.eventT {
		return // finish moved later: the live event fires early and re-arms
	}
	f.seq++
	f.eventT = t
	s.push(event{t: t, kind: evFlowFinish, id: f.self, seq: f.seq})
}

//p4p:hotpath fires once per transferred piece, the highest-frequency event in a run
func (s *Sim) handleFlowFinish(fi int32) {
	f := &s.flows[fi]
	f.eventT = math.Inf(1) // the live event just fired
	s.progressFlow(f)
	if f.remaining > 1e-6 {
		// Rate dropped since scheduling; progress and re-arm.
		s.scheduleFinish(f)
		return
	}
	u, d, ci, piece := f.u, f.d, f.cn, int(f.piece)
	// Tear down the flow.
	f.active = false
	s.flushFlow(f)
	s.applyRate(f, 0)
	f.seq++ // stale events addressed to this slot can never match again
	s.freeFlow(fi)
	// f is dead past this point: the tryStart calls below may recycle
	// the slot or grow the arena (moving its backing array).
	cn := &s.conns[ci]
	cn.flow[dirOf(cn, u)] = -1
	s.nUp[u]--
	s.nDown[d]--
	s.clearPending(d, piece)
	// The downloader gains the piece.
	if !s.hasPiece(d, piece) {
		s.gainPiece(d, piece)
		if int(s.numHas[d]) == s.pieces && !s.done[d] {
			s.done[d] = true
			s.doneAt[d] = s.now
			s.incomplete--
		}
	}
	s.ratesChanged(u, d)
	// Continue on this connection and wake up d's other connections:
	// the new piece may unblock transfers in both roles.
	s.tryStartCn(ci, u, d)
	for _, ch := range s.connsOf[d] {
		cn := &s.conns[ch]
		p := peerOf(cn, d)
		if cn.unchoked[dirOf(cn, d)] {
			s.tryStartCn(ch, d, p)
		}
		if cn.unchoked[dirOf(cn, p)] {
			s.tryStartCn(ch, p, d)
		}
	}
	// u's freed upload slot may serve another pending unchoked peer.
	for _, ch := range s.connsOf[u] {
		cn := &s.conns[ch]
		p := peerOf(cn, u)
		if cn.unchoked[dirOf(cn, u)] {
			s.tryStartCn(ch, u, p)
		}
	}
}

// --- measurement hooks ---

//p4p:hotpath fires every MeasureInterval; reuses measureBuf so steady-state sampling allocates nothing
func (s *Sim) handleMeasure() {
	if s.cfg.OnMeasure != nil {
		if s.measureBuf == nil {
			s.measureBuf = make([]float64, len(s.linkRate))
		}
		for i, r := range s.linkRate {
			s.measureBuf[i] = r * 8 // bytes/sec -> bits/sec
		}
		// The buffer is reused every interval; per the Config.OnMeasure
		// contract, callbacks copy it if they retain it.
		//p4pvet:ignore allochot measurement callback is caller-supplied; the event loop hands it a reused buffer and cannot vouch for its body
		s.cfg.OnMeasure(s.now, s.measureBuf)
	}
	if s.incomplete > 0 || s.cfg.Streaming != nil {
		s.push(event{t: s.now + s.cfg.MeasureInterval, kind: evMeasure})
	}
}

//p4p:hotpath fires every SampleInterval on the event loop
func (s *Sim) handleSample() {
	s.metrics.sample(s)
	if s.incomplete > 0 || s.cfg.Streaming != nil {
		s.push(event{t: s.now + s.cfg.SampleInterval, kind: evSample})
	}
}
