// Package p2psim is a discrete-event, session-level simulator for
// BitTorrent-style P2P swarms over PID-level topologies, following the
// simulation methodology the paper adopts from Bharambe et al. [3] and
// Bindal et al. [4]: packet-level behaviour is abstracted away and each
// active piece transfer is a fluid flow whose rate is the minimum of its
// two endpoints' fair shares (upload capacity split across active
// uploads, download capacity across active downloads). Backbone links
// are accounted (for utilization, bottleneck-traffic, and BDP metrics)
// but are not rate-limiting, matching the evaluated regimes where access
// links bound TCP throughput.
//
// The simulator models the BitTorrent control plane explicitly: tracker
// peer selection (pluggable via apptracker.Selector), piece bitfields,
// local-rarest-first piece selection, periodic tit-for-tat rechoking
// with optimistic unchoke, and seeding after completion. A streaming
// mode (Liveswarms) layers a sliding playback window on the same engine.
package p2psim

import (
	"cmp"
	"fmt"
	"math"
	"math/rand"
	"slices"

	"p4p/internal/apptracker"
	"p4p/internal/topology"
)

// Config parameterizes a simulation.
type Config struct {
	Graph   *topology.Graph
	Routing *topology.Routing
	// Selector chooses neighbors at join time; required.
	Selector apptracker.Selector
	// Seed drives all randomness.
	Seed int64

	// PieceBytes is the piece size (default 256 KiB).
	PieceBytes int64
	// FileBytes is the shared file size (default 12 MiB).
	FileBytes int64
	// NeighborTarget m is how many peers the tracker returns (default 20).
	NeighborTarget int
	// UploadSlots is the number of concurrent unchoked peers per client,
	// including the optimistic slot (default 4).
	UploadSlots int
	// RechokeInterval is the tit-for-tat period in seconds (default 10).
	RechokeInterval float64
	// ReselectInterval, if positive, makes every client re-query the
	// tracker periodically and replace idle connections that the fresh
	// selection no longer includes — the appTracker re-optimization that
	// lets evolving p-distances steer an already-running swarm.
	ReselectInterval float64
	// OptimisticEvery rotates the optimistic unchoke every this many
	// rechokes (default 3, i.e. 30 s).
	OptimisticEvery int

	// BackgroundBps holds per-link background traffic (bits/sec) used
	// for utilization accounting; nil means zero.
	BackgroundBps []float64

	// MeasureInterval, if positive, invokes OnMeasure with the current
	// per-link P4P traffic rates (bits/sec) every interval — the hook
	// that feeds an iTracker's ObserveTraffic/Update loop. The rate
	// slice is reused between invocations: callbacks must copy it if
	// they retain it past the call.
	MeasureInterval float64
	OnMeasure       func(now float64, linkRateBps []float64)

	// SampleInterval, if positive, records utilization samples.
	SampleInterval float64
	// WatchLinks lists links whose rates are recorded in each sample.
	WatchLinks []topology.LinkID
	// WatchLedgers attaches interval volume ledgers to selected links
	// for percentile-charging analysis.
	WatchLedgers *LedgerConfig

	// TCPWindowBytes caps each transfer's rate at window/RTT, modelling
	// window-limited TCP over long paths — the reason "transport layer
	// connections over low-latency network paths would be more
	// efficient" (Section 2). RTT is twice the route propagation delay
	// plus BaseRTTSec. Default 64 KiB (the common 2008-era default
	// socket buffer); set negative to disable.
	TCPWindowBytes float64
	// BaseRTTSec is the fixed RTT floor covering access and processing
	// delays (default 4 ms).
	BaseRTTSec float64

	// MaxTime hard-stops the simulation (default 10^7 s).
	MaxTime float64

	// Streaming, if non-nil, runs the Liveswarms mode instead of file
	// download: pieces are produced continuously by the source and
	// clients fetch within a sliding window until MaxTime.
	Streaming *StreamingConfig

	// TrackClassBytes enables the per-client map of bytes downloaded by
	// uploader class (used by the FTTP analysis).
	TrackClassBytes bool
}

func (c *Config) withDefaults() {
	if c.PieceBytes == 0 {
		c.PieceBytes = 256 << 10
	}
	if c.FileBytes == 0 {
		c.FileBytes = 12 << 20
	}
	if c.NeighborTarget == 0 {
		c.NeighborTarget = 20
	}
	if c.UploadSlots == 0 {
		c.UploadSlots = 4
	}
	if c.RechokeInterval == 0 {
		c.RechokeInterval = 10
	}
	if c.OptimisticEvery == 0 {
		c.OptimisticEvery = 3
	}
	if c.TCPWindowBytes == 0 {
		c.TCPWindowBytes = 64 << 10
	}
	if c.BaseRTTSec == 0 {
		c.BaseRTTSec = 0.004
	}
	if c.MaxTime == 0 {
		c.MaxTime = 1e7
	}
}

// ClientSpec describes one client to be added to the swarm.
type ClientSpec struct {
	PID     topology.PID
	ASN     int
	UpBps   float64
	DownBps float64
	JoinAt  float64
	IsSeed  bool
	// Class is a free-form access-class label ("fttp", "dsl", ...)
	// used in per-class traffic breakdowns.
	Class string
}

// Client is the simulator's per-peer state.
type Client struct {
	ID   int
	Spec ClientSpec

	upBps, downBps float64 // bytes/sec internally

	has     []bool
	numHas  int
	avail   []int // availability of each piece among neighbors
	pending map[int]bool

	conns  []*conn
	connOf map[int]*conn // by peer ID

	nUp, nDown int // active transfer counts

	joined     bool
	done       bool
	doneAt     float64
	rechokeNum int
	optimistic *Client

	// unchokeMark and wantMark are epoch stamps (against Sim.unchokeEpoch
	// and Sim.wantEpoch) that replace the per-call membership maps in
	// rechokeClient and reselectClient.
	unchokeMark int
	wantMark    int

	// DownBytesByClass accumulates bytes received per uploader class
	// when Config.TrackClassBytes is set.
	DownBytesByClass map[string]float64
}

// Done reports whether the client has completed the file.
func (c *Client) Done() bool { return c.done }

// DoneAt returns the completion time (absolute simulation seconds).
func (c *Client) DoneAt() float64 { return c.doneAt }

// CompletionTime returns seconds from join to completion, or NaN.
func (c *Client) CompletionTime() float64 {
	if !c.done {
		return math.NaN()
	}
	return c.doneAt - c.Spec.JoinAt
}

// conn is the state of one (symmetric) neighbor relationship.
type conn struct {
	a, b *Client
	// unchoked[0]: a unchokes b; unchoked[1]: b unchokes a.
	unchoked [2]bool
	// flow[0]: transfer a->b; flow[1]: transfer b->a.
	flow [2]*flow
	// recv[0]: bytes b sent to a in the current rechoke interval;
	// recv[1]: bytes a sent to b.
	recv [2]float64
	// novel[i] counts the pieces the direction-i uploader has that its
	// downloader still lacks (novel[0]: a has, b lacks; novel[1]: b has,
	// a lacks). Maintained incrementally at connect time and whenever a
	// piece lands, so interest checks are O(1) instead of O(pieces).
	novel [2]int
}

func (cn *conn) peer(c *Client) *Client {
	if cn.a == c {
		return cn.b
	}
	return cn.a
}

// dirIndex returns the index for the direction u -> d in flow/unchoked.
func (cn *conn) dirIndex(u *Client) int {
	if cn.a == u {
		return 0
	}
	return 1
}

type flow struct {
	u, d      *Client
	cn        *conn
	piece     int
	remaining float64 // bytes
	rate      float64 // bytes/sec
	rateCap   float64 // TCP window cap, bytes/sec (+Inf when disabled)
	lastT     float64
	links     []topology.LinkID
	moved     float64           // bytes transferred so far (flushed at teardown)
	ledgered  []topology.LinkID // links on the path with volume ledgers
	seq       int
	epoch     int // dedup stamp against Sim.flowEpoch (ratesChanged)
	active    bool
}

// Sim is a single swarm simulation. Build with New, add clients, Run.
type Sim struct {
	cfg     Config
	rng     *rand.Rand
	now     float64
	events  eventHeap
	clients []*Client
	pieces  int

	incomplete int // clients still downloading

	linkRate  []float64 // bytes/sec per backbone link, P4P traffic only
	bgBytesPS []float64 // background, bytes/sec

	// Reusable scratch state keeping the event hot paths allocation-free
	// (see DESIGN.md §9). Epoch counters pair with the stamps on flow
	// and Client so membership checks need no per-call maps.
	flowEpoch    int
	flowScratch  []*flow
	unchokeEpoch int
	wantEpoch    int
	candScratch  []rechokeCand
	poolScratch  []*Client
	candNodes    []apptracker.Node
	candClients  []*Client
	connScratch  []*conn
	measureBuf   []float64

	metrics Metrics
}

// New builds a simulation.
func New(cfg Config) *Sim {
	cfg.withDefaults()
	if cfg.Graph == nil || cfg.Routing == nil {
		panic("p2psim: Graph and Routing are required")
	}
	if cfg.Selector == nil {
		panic("p2psim: Selector is required")
	}
	if cfg.BackgroundBps != nil && len(cfg.BackgroundBps) != cfg.Graph.NumLinks() {
		panic(fmt.Sprintf("p2psim: BackgroundBps has %d entries, graph %q has %d links",
			len(cfg.BackgroundBps), cfg.Graph.Name, cfg.Graph.NumLinks()))
	}
	s := &Sim{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		linkRate: make([]float64, cfg.Graph.NumLinks()),
	}
	s.pieces = int((cfg.FileBytes + cfg.PieceBytes - 1) / cfg.PieceBytes)
	if cfg.Streaming != nil {
		s.pieces = cfg.Streaming.totalPieces(&cfg)
	}
	s.bgBytesPS = make([]float64, cfg.Graph.NumLinks())
	for i := range s.bgBytesPS {
		if cfg.BackgroundBps != nil {
			s.bgBytesPS[i] = cfg.BackgroundBps[i] / 8
		}
	}
	s.metrics.init(&cfg)
	return s
}

// AddClient registers a client; call before Run.
func (s *Sim) AddClient(spec ClientSpec) *Client {
	if spec.UpBps <= 0 || spec.DownBps <= 0 {
		panic(fmt.Sprintf("p2psim: non-positive access capacity for client %d", len(s.clients)))
	}
	c := &Client{
		ID:      len(s.clients),
		Spec:    spec,
		upBps:   spec.UpBps / 8,
		downBps: spec.DownBps / 8,
		has:     make([]bool, s.pieces),
		avail:   make([]int, s.pieces),
		pending: map[int]bool{},
		connOf:  map[int]*conn{},
	}
	if s.cfg.TrackClassBytes {
		c.DownBytesByClass = map[string]float64{}
	}
	if spec.IsSeed {
		for i := range c.has {
			c.has[i] = true
		}
		c.numHas = s.pieces
		c.done = true
		c.doneAt = spec.JoinAt
	}
	if s.cfg.Streaming != nil && spec.IsSeed {
		// The streaming source starts with nothing published; pieces
		// appear over time (see streaming.go).
		for i := range c.has {
			c.has[i] = false
		}
		c.numHas = 0
	}
	s.clients = append(s.clients, c)
	return c
}

// Clients returns the registered clients.
func (s *Sim) Clients() []*Client { return s.clients }

// Graph returns the simulation's topology.
func (s *Sim) Graph() *topology.Graph { return s.cfg.Graph }

// Now returns the current simulation time.
func (s *Sim) Now() float64 { return s.now }

// Run executes the simulation to completion (all non-seed clients done)
// or MaxTime, and returns the collected metrics.
func (s *Sim) Run() *Result {
	for _, c := range s.clients {
		if !c.Spec.IsSeed {
			s.incomplete++
		}
		s.push(event{t: c.Spec.JoinAt, kind: evJoin, client: c})
	}
	s.push(event{t: s.cfg.RechokeInterval, kind: evRechoke})
	if s.cfg.ReselectInterval > 0 {
		s.push(event{t: s.cfg.ReselectInterval, kind: evReselect})
	}
	if s.cfg.MeasureInterval > 0 {
		s.push(event{t: s.cfg.MeasureInterval, kind: evMeasure})
	}
	if s.cfg.SampleInterval > 0 {
		s.push(event{t: s.cfg.SampleInterval, kind: evSample})
	}
	if s.cfg.Streaming != nil {
		s.cfg.Streaming.schedule(s)
	}

	for s.events.len() > 0 {
		ev := s.events.pop()
		if ev.t > s.cfg.MaxTime {
			s.now = s.cfg.MaxTime
			break
		}
		s.now = ev.t
		switch ev.kind {
		case evJoin:
			s.handleJoin(ev.client)
		case evRechoke:
			s.handleRechoke()
		case evFlowFinish:
			if ev.flow.active && ev.flow.seq == ev.seq {
				s.handleFlowFinish(ev.flow)
			}
		case evMeasure:
			s.handleMeasure()
		case evSample:
			s.handleSample()
		case evStreamPiece:
			s.handleStreamPiece(ev.client)
		case evReselect:
			s.handleReselect()
		}
		if s.incomplete == 0 && s.cfg.Streaming == nil {
			break
		}
	}
	// Final flow settlement for accurate byte accounting.
	for _, c := range s.clients {
		for _, cn := range c.conns {
			for dir := 0; dir < 2; dir++ {
				if f := cn.flow[dir]; f != nil && f.active && f.u == c {
					s.progressFlow(f)
					s.flushFlow(f)
				}
			}
		}
	}
	return s.metrics.result(s)
}

// --- events ---

const (
	evJoin = iota
	evRechoke
	evFlowFinish
	evMeasure
	evSample
	evStreamPiece
	evReselect
)

type event struct {
	t      float64
	kind   int
	client *Client
	flow   *flow
	seq    int
}

// eventHeap is a typed binary min-heap over events. It replaces the
// container/heap implementation, whose interface{}-boxed Push/Pop
// allocated on every event; the sift algorithms mirror container/heap
// exactly so the pop order (and hence every simulation trace) is
// unchanged.
type eventHeap struct {
	ev []event
}

func (h *eventHeap) len() int { return len(h.ev) }

func (h *eventHeap) less(i, j int) bool {
	if h.ev[i].t != h.ev[j].t {
		return h.ev[i].t < h.ev[j].t
	}
	return h.ev[i].kind < h.ev[j].kind
}

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	// Sift up.
	j := len(h.ev) - 1
	for j > 0 {
		i := (j - 1) / 2 // parent
		if !h.less(j, i) {
			break
		}
		h.ev[i], h.ev[j] = h.ev[j], h.ev[i]
		j = i
	}
}

func (h *eventHeap) pop() event {
	n := len(h.ev) - 1
	h.ev[0], h.ev[n] = h.ev[n], h.ev[0]
	// Sift down over the first n elements.
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2
		}
		if !h.less(j, i) {
			break
		}
		h.ev[i], h.ev[j] = h.ev[j], h.ev[i]
		i = j
	}
	e := h.ev[n]
	h.ev[n] = event{} // drop references held by the vacated slot
	h.ev = h.ev[:n]
	return e
}

func (s *Sim) push(ev event) { s.events.push(ev) }

// --- join and neighbor management ---

func (s *Sim) handleJoin(c *Client) {
	c.joined = true
	// Tracker query: candidates are all currently joined clients.
	candidates, candClients := s.trackerCandidates(c)
	self := apptracker.Node{ID: c.ID, PID: c.Spec.PID, ASN: c.Spec.ASN}
	sel := s.cfg.Selector.Select(self, candidates, s.cfg.NeighborTarget, s.rng)
	for _, idx := range sel {
		s.connect(c, candClients[idx])
	}
	// Newly joined clients try to attract an unchoke at the very next
	// rechoke; nothing to start yet (no pieces, not unchoked).
	// A seed joining late can immediately serve: rechoke handles it.
}

// trackerCandidates assembles the tracker's candidate set for c into
// buffers reused across queries. Selectors receive the node slice for
// the duration of Select only and must not retain it.
func (s *Sim) trackerCandidates(c *Client) ([]apptracker.Node, []*Client) {
	nodes, clients := s.candNodes[:0], s.candClients[:0]
	for _, o := range s.clients {
		if o.joined && o != c {
			nodes = append(nodes, apptracker.Node{ID: o.ID, PID: o.Spec.PID, ASN: o.Spec.ASN})
			clients = append(clients, o)
		}
	}
	s.candNodes, s.candClients = nodes, clients
	return nodes, clients
}

// connect establishes a symmetric neighbor relationship.
func (s *Sim) connect(a, b *Client) {
	if a == b {
		return
	}
	if _, dup := a.connOf[b.ID]; dup {
		return
	}
	cn := &conn{a: a, b: b}
	a.conns = append(a.conns, cn)
	b.conns = append(b.conns, cn)
	a.connOf[b.ID] = cn
	b.connOf[a.ID] = cn
	// Availability and interest bookkeeping.
	for p := 0; p < s.pieces; p++ {
		if b.has[p] {
			a.avail[p]++
			if !a.has[p] {
				cn.novel[1]++ // b has a piece a lacks
			}
		}
		if a.has[p] {
			b.avail[p]++
			if !b.has[p] {
				cn.novel[0]++ // a has a piece b lacks
			}
		}
	}
}

// interestedIn reports whether d wants data from its neighbor u: O(1)
// via the incrementally maintained per-conn novel-piece counters.
func (s *Sim) interestedIn(d, u *Client) bool {
	if d.done {
		return false
	}
	cn := u.connOf[d.ID]
	return cn != nil && cn.novel[cn.dirIndex(u)] > 0
}

// gainPiece records that d now has the given piece, updating neighbor
// availability and the per-conn interest counters.
func (s *Sim) gainPiece(d *Client, piece int) {
	d.has[piece] = true
	d.numHas++
	for _, cn := range d.conns {
		p := cn.peer(d)
		p.avail[piece]++
		if p.has[piece] {
			cn.novel[cn.dirIndex(p)]-- // d no longer lacks a piece p has
		} else {
			cn.novel[cn.dirIndex(d)]++ // d gained a piece p still lacks
		}
	}
}

// handleReselect re-runs tracker selection for every joined client and
// swaps out idle connections that the fresh selection dropped.
func (s *Sim) handleReselect() {
	for _, c := range s.clients {
		if !c.joined || c.Spec.IsSeed {
			continue
		}
		s.reselectClient(c)
	}
	if s.incomplete > 0 || s.cfg.Streaming != nil {
		s.push(event{t: s.now + s.cfg.ReselectInterval, kind: evReselect})
	}
}

func (s *Sim) reselectClient(c *Client) {
	candidates, candClients := s.trackerCandidates(c)
	self := apptracker.Node{ID: c.ID, PID: c.Spec.PID, ASN: c.Spec.ASN}
	sel := s.cfg.Selector.Select(self, candidates, s.cfg.NeighborTarget, s.rng)
	s.wantEpoch++
	for _, idx := range sel {
		candClients[idx].wantMark = s.wantEpoch
	}
	// Drop idle connections the fresh selection no longer includes,
	// iterating over a scratch snapshot because disconnect mutates
	// c.conns.
	snapshot := append(s.connScratch[:0], c.conns...)
	for _, cn := range snapshot {
		p := cn.peer(c)
		if p.wantMark == s.wantEpoch || cn.flow[0] != nil || cn.flow[1] != nil {
			continue
		}
		s.disconnect(cn)
	}
	s.connScratch = snapshot
	// Connect the newly selected peers (connect dedupes).
	for _, idx := range sel {
		s.connect(c, candClients[idx])
	}
}

// disconnect tears down an idle neighbor relationship.
func (s *Sim) disconnect(cn *conn) {
	if cn.flow[0] != nil || cn.flow[1] != nil {
		panic("p2psim: disconnect with active flow")
	}
	for _, c := range []*Client{cn.a, cn.b} {
		p := cn.peer(c)
		for i, x := range c.conns {
			if x == cn {
				c.conns = append(c.conns[:i], c.conns[i+1:]...)
				break
			}
		}
		delete(c.connOf, p.ID)
		for piece := 0; piece < s.pieces; piece++ {
			if p.has[piece] {
				c.avail[piece]--
			}
		}
	}
	if cn.a.optimistic == cn.b {
		cn.a.optimistic = nil
	}
	if cn.b.optimistic == cn.a {
		cn.b.optimistic = nil
	}
}

// --- rechoke ---

//p4p:hotpath fires every RechokeInterval for every client; the allocation-free contract is what keeps large sweeps tractable
func (s *Sim) handleRechoke() {
	for _, u := range s.clients {
		if u.joined {
			s.rechokeClient(u)
		}
	}
	// Reset interval byte counters.
	for _, c := range s.clients {
		for _, cn := range c.conns {
			if cn.a == c { // visit each conn once
				cn.recv[0], cn.recv[1] = 0, 0
			}
		}
	}
	if s.incomplete > 0 || s.cfg.Streaming != nil {
		s.push(event{t: s.now + s.cfg.RechokeInterval, kind: evRechoke})
	}
}

// rechokeCand is one interested neighbor under rechoke evaluation.
// Candidates accumulate in Sim.candScratch so the per-client rechoke
// allocates nothing.
type rechokeCand struct {
	cn    *conn
	peer  *Client
	score float64
}

// rechokeClient re-evaluates u's unchoke set: top (slots-1) interested
// peers by bytes they sent us during the last interval (random for
// seeds), plus one optimistic slot rotated every OptimisticEvery
// rechokes. Membership in the new unchoke set is tracked by stamping
// peers with the current unchoke epoch instead of building a set.
func (s *Sim) rechokeClient(u *Client) {
	u.rechokeNum++
	interested := s.candScratch[:0]
	for _, cn := range u.conns {
		p := cn.peer(u)
		if !p.joined || !s.interestedIn(p, u) {
			continue
		}
		// Tit-for-tat: bytes p uploaded to u during the last interval.
		score := cn.recv[cn.dirIndex(p)]
		if u.done {
			// Seeds have no download to reciprocate; randomize.
			score = s.rng.Float64()
		}
		interested = append(interested, rechokeCand{cn, p, score})
	}
	slices.SortStableFunc(interested, func(a, b rechokeCand) int {
		if a.score != b.score {
			if a.score > b.score {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.peer.ID, b.peer.ID)
	})
	s.candScratch = interested
	regular := s.cfg.UploadSlots - 1
	if regular < 0 {
		regular = 0
	}
	s.unchokeEpoch++
	mark := s.unchokeEpoch
	for i := 0; i < len(interested) && i < regular; i++ {
		interested[i].peer.unchokeMark = mark
	}
	// Optimistic slot.
	rotate := u.optimistic == nil || !s.interestedIn(u.optimistic, u) ||
		u.rechokeNum%s.cfg.OptimisticEvery == 0
	if rotate {
		pool := s.poolScratch[:0]
		for _, c := range interested {
			if c.peer.unchokeMark != mark {
				pool = append(pool, c.peer)
			}
		}
		if len(pool) > 0 {
			u.optimistic = pool[s.rng.Intn(len(pool))]
		} else {
			u.optimistic = nil
		}
		s.poolScratch = pool
	}
	if u.optimistic != nil && u.optimistic.unchokeMark != mark && s.interestedIn(u.optimistic, u) {
		u.optimistic.unchokeMark = mark
	}
	// Apply: choke removed peers (in-flight pieces finish), unchoke new.
	for _, cn := range u.conns {
		p := cn.peer(u)
		dir := cn.dirIndex(u)
		was := cn.unchoked[dir]
		cn.unchoked[dir] = p.unchokeMark == mark
		if !was && cn.unchoked[dir] {
			s.tryStart(u, p)
		}
	}
}

// --- transfers ---

// tryStart begins a transfer u->d if u unchokes d, the connection is
// idle in that direction, and d wants a piece u has (rarest-first).
//
//p4p:coldpath allocates one flow object per started transfer by design; flows are the simulation's unit of work
func (s *Sim) tryStart(u, d *Client) {
	cn := u.connOf[d.ID]
	if cn == nil || d.done || !d.joined || !u.joined {
		return
	}
	dir := cn.dirIndex(u)
	if !cn.unchoked[dir] || cn.flow[dir] != nil {
		return
	}
	piece := s.pickPiece(u, d)
	if piece < 0 {
		return
	}
	f := &flow{
		u: u, d: d, cn: cn, piece: piece,
		remaining: float64(s.cfg.PieceBytes),
		rateCap:   math.Inf(1),
		lastT:     s.now,
		active:    true,
	}
	if u.Spec.PID != d.Spec.PID {
		f.links = s.cfg.Routing.Path(u.Spec.PID, d.Spec.PID)
	}
	if s.cfg.TCPWindowBytes > 0 {
		rtt := s.cfg.BaseRTTSec + 2*s.cfg.Routing.PropagationDelaySeconds(u.Spec.PID, d.Spec.PID)
		f.rateCap = s.cfg.TCPWindowBytes / rtt
	}
	for _, e := range f.links {
		if _, ok := s.metrics.ledgers[e]; ok {
			f.ledgered = append(f.ledgered, e)
		}
	}
	cn.flow[dir] = f
	d.pending[piece] = true
	u.nUp++
	d.nDown++
	s.ratesChanged(u, d)
}

// pickPiece chooses the locally-rarest piece that u has, d lacks, and d
// is not already fetching; ties break uniformly at random. Streaming
// mode instead fetches in order within the playback window.
func (s *Sim) pickPiece(u, d *Client) int {
	if s.cfg.Streaming != nil {
		return s.pickStreamPiece(u, d)
	}
	best, bestAvail, count := -1, math.MaxInt32, 0
	for p := 0; p < s.pieces; p++ {
		if !u.has[p] || d.has[p] || d.pending[p] {
			continue
		}
		a := d.avail[p]
		switch {
		case a < bestAvail:
			best, bestAvail, count = p, a, 1
		case a == bestAvail:
			count++
			if s.rng.Intn(count) == 0 {
				best = p
			}
		}
	}
	return best
}

// progressFlow advances a flow's byte accounting to the current time.
// Cheap counters update here; per-PID and per-class aggregates flush
// once at flow teardown (flushFlow) to keep the hot path map-free.
func (s *Sim) progressFlow(f *flow) {
	dt := s.now - f.lastT
	if dt > 0 && f.rate > 0 {
		bytes := f.rate * dt
		if bytes > f.remaining {
			bytes = f.remaining
		}
		f.remaining -= bytes
		f.moved += bytes
		f.cn.recv[f.cn.dirIndex(f.d)] += bytes
		for _, e := range f.ledgered {
			s.metrics.ledgers[e].AddSpread(f.lastT, s.now, bytes)
		}
	}
	f.lastT = s.now
}

// flushFlow commits a flow's accumulated bytes to the aggregate
// metrics. Call exactly once, after the final progressFlow.
func (s *Sim) flushFlow(f *flow) {
	if f.moved == 0 {
		return
	}
	s.metrics.flush(s, f)
	f.moved = 0
}

// ratesChanged recomputes the rates of all flows incident to the two
// endpoints (their fair shares changed) and reschedules finish events.
// Flows are deduplicated by stamping them with a fresh epoch and
// collected into a scratch slice reused across calls; the sort keeps
// the same deterministic (uploader, downloader) iteration order the
// map-based implementation produced.
func (s *Sim) ratesChanged(a, b *Client) {
	s.flowEpoch++
	flows := s.flowScratch[:0]
	for _, c := range [2]*Client{a, b} {
		for _, cn := range c.conns {
			for dir := 0; dir < 2; dir++ {
				if f := cn.flow[dir]; f != nil && f.active && f.epoch != s.flowEpoch {
					f.epoch = s.flowEpoch
					flows = append(flows, f)
				}
			}
		}
	}
	slices.SortFunc(flows, func(x, y *flow) int {
		if x.u.ID != y.u.ID {
			return cmp.Compare(x.u.ID, y.u.ID)
		}
		return cmp.Compare(x.d.ID, y.d.ID)
	})
	s.flowScratch = flows
	for _, f := range flows {
		newRate := flowRate(f)
		if newRate == f.rate {
			// Unchanged rate: the previously scheduled finish event is
			// still exact; skip the reschedule and the progress flush.
			continue
		}
		s.progressFlow(f)
		s.applyRate(f, newRate)
		s.scheduleFinish(f)
	}
}

// flowRate is the session-level TCP model of [3]/[4]: the transfer gets
// the minimum of the uploader's and downloader's per-connection fair
// shares, additionally capped by the window/RTT limit of the path.
func flowRate(f *flow) float64 {
	up := f.u.upBps / float64(f.u.nUp)
	down := f.d.downBps / float64(f.d.nDown)
	return math.Min(f.rateCap, math.Min(up, down))
}

// applyRate updates the flow's rate and the per-link rate accounting.
func (s *Sim) applyRate(f *flow, rate float64) {
	delta := rate - f.rate
	for _, e := range f.links {
		s.linkRate[e] += delta
	}
	f.rate = rate
}

func (s *Sim) scheduleFinish(f *flow) {
	f.seq++
	if f.rate <= 0 {
		return // re-armed when a rate change occurs
	}
	t := s.now + f.remaining/f.rate
	s.push(event{t: t, kind: evFlowFinish, flow: f, seq: f.seq})
}

//p4p:hotpath fires once per transferred piece, the highest-frequency event in a run
func (s *Sim) handleFlowFinish(f *flow) {
	s.progressFlow(f)
	if f.remaining > 1e-6 {
		// Rate changed since scheduling; progress and re-arm.
		s.scheduleFinish(f)
		return
	}
	u, d := f.u, f.d
	// Tear down the flow.
	f.active = false
	s.flushFlow(f)
	s.applyRate(f, 0)
	dir := f.cn.dirIndex(u)
	f.cn.flow[dir] = nil
	u.nUp--
	d.nDown--
	delete(d.pending, f.piece)
	// The downloader gains the piece.
	if !d.has[f.piece] {
		s.gainPiece(d, f.piece)
		if d.numHas == s.pieces && !d.done {
			d.done = true
			d.doneAt = s.now
			s.incomplete--
		}
	}
	s.ratesChanged(u, d)
	// Continue on this connection and wake up d's other connections:
	// the new piece may unblock transfers in both roles.
	s.tryStart(u, d)
	for _, cn := range d.conns {
		p := cn.peer(d)
		if cn.unchoked[cn.dirIndex(d)] {
			s.tryStart(d, p)
		}
		if cn.unchoked[cn.dirIndex(p)] {
			s.tryStart(p, d)
		}
	}
	// u's freed upload slot may serve another pending unchoked peer.
	for _, cn := range u.conns {
		p := cn.peer(u)
		if cn.unchoked[cn.dirIndex(u)] {
			s.tryStart(u, p)
		}
	}
}

// --- measurement hooks ---

//p4p:hotpath fires every MeasureInterval; reuses measureBuf so steady-state sampling allocates nothing
func (s *Sim) handleMeasure() {
	if s.cfg.OnMeasure != nil {
		if s.measureBuf == nil {
			s.measureBuf = make([]float64, len(s.linkRate))
		}
		for i, r := range s.linkRate {
			s.measureBuf[i] = r * 8 // bytes/sec -> bits/sec
		}
		// The buffer is reused every interval; per the Config.OnMeasure
		// contract, callbacks copy it if they retain it.
		//p4pvet:ignore allochot measurement callback is caller-supplied; the event loop hands it a reused buffer and cannot vouch for its body
		s.cfg.OnMeasure(s.now, s.measureBuf)
	}
	if s.incomplete > 0 || s.cfg.Streaming != nil {
		s.push(event{t: s.now + s.cfg.MeasureInterval, kind: evMeasure})
	}
}

//p4p:hotpath fires every SampleInterval on the event loop
func (s *Sim) handleSample() {
	s.metrics.sample(s)
	if s.incomplete > 0 || s.cfg.Streaming != nil {
		s.push(event{t: s.now + s.cfg.SampleInterval, kind: evSample})
	}
}
