package p2psim

import "math"

// StreamingConfig switches the simulator into the Liveswarms mode of
// Section 6.2: a swarm-based streaming application whose clients are
// "very similar to BitTorrent clients, but with admission control and
// resource monitoring to accommodate real-time streaming requirements".
// Sources publish pieces at the stream rate; clients fetch pieces
// within a sliding playback window; the run ends at Config.MaxTime
// (the paper streams a 90-minute video but runs each experiment for
// 20 minutes).
type StreamingConfig struct {
	// RateBps is the stream bit rate (default 400 kbit/s).
	RateBps float64
	// ContentSec is the content duration in seconds; with RateBps it
	// determines the total piece count (default 90 minutes).
	ContentSec float64
	// WindowSec is the sliding playback window within which clients
	// request pieces (default 60 s).
	WindowSec float64

	head int // highest published piece index + 1
}

func (sc *StreamingConfig) withDefaults() {
	if sc.RateBps == 0 {
		sc.RateBps = 400e3
	}
	if sc.ContentSec == 0 {
		sc.ContentSec = 90 * 60
	}
	if sc.WindowSec == 0 {
		sc.WindowSec = 60
	}
}

// pieceInterval is the wall-clock spacing between published pieces.
func (sc *StreamingConfig) pieceInterval(cfg *Config) float64 {
	return float64(cfg.PieceBytes) * 8 / sc.RateBps
}

func (sc *StreamingConfig) totalPieces(cfg *Config) int {
	sc.withDefaults()
	n := int(math.Ceil(sc.ContentSec * sc.RateBps / 8 / float64(cfg.PieceBytes)))
	if n < 1 {
		n = 1
	}
	return n
}

// windowPieces converts the playback window into a piece count.
func (sc *StreamingConfig) windowPieces(cfg *Config) int {
	w := int(math.Ceil(sc.WindowSec / sc.pieceInterval(cfg)))
	if w < 1 {
		w = 1
	}
	return w
}

// schedule arms the first publish event on every source (IsSeed) client.
func (sc *StreamingConfig) schedule(s *Sim) {
	for _, c := range s.clients {
		if c.Spec.IsSeed {
			s.push(event{t: c.Spec.JoinAt, kind: evStreamPiece, id: int32(c.ID)})
		}
	}
}

// handleStreamPiece publishes the next piece at a source and pokes its
// unchoked connections so the fresh data starts flowing.
func (s *Sim) handleStreamPiece(src int32) {
	sc := s.cfg.Streaming
	if sc.head >= s.pieces {
		return // content fully published
	}
	p := sc.head
	sc.head++
	if !s.hasPiece(src, p) {
		s.gainPiece(src, p)
	}
	for _, ci := range s.connsOf[src] {
		cn := &s.conns[ci]
		if cn.unchoked[dirOf(cn, src)] {
			s.tryStartCn(ci, src, peerOf(cn, src))
		}
	}
	s.push(event{t: s.now + sc.pieceInterval(&s.cfg), kind: evStreamPiece, id: src})
}

// pickStreamPiece selects the earliest missing piece within the sliding
// window [head-window, head): streaming favours in-order delivery over
// rarest-first.
func (s *Sim) pickStreamPiece(u, d int32) int {
	sc := s.cfg.Streaming
	lo := sc.head - sc.windowPieces(&s.cfg)
	if lo < 0 {
		lo = 0
	}
	for p := lo; p < sc.head; p++ {
		if s.hasPiece(u, p) && !s.hasPiece(d, p) &&
			s.pendBits[int(d)*s.hasW+(p>>6)]&(1<<uint(p&63)) == 0 {
			return p
		}
	}
	return -1
}
