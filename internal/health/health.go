// Package health serves the two conventional probe endpoints both
// binaries mount:
//
//	GET /healthz — liveness: the process is up and serving HTTP.
//	GET /readyz  — readiness: the process can usefully answer traffic.
//
// Liveness is unconditional. Readiness runs the registered checks —
// the iTracker gates on having a materialized view, the appTracker on
// fresh-enough portal data — and answers 503 with per-check detail
// when any fails, so a load balancer drains the instance instead of
// routing requests that would be served cold or from nothing.
package health

import (
	"encoding/json"
	"net/http"
)

// Check is one named readiness probe. Probe returns whether the
// condition holds and an optional human-readable detail (shown in the
// /readyz body either way).
type Check struct {
	Name  string
	Probe func() (ok bool, detail string)
}

// checkWire is one check's JSON form in the /readyz body.
type checkWire struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// readyWire is the /readyz response body.
type readyWire struct {
	Status string      `json:"status"` // "ok" | "unavailable"
	Checks []checkWire `json:"checks,omitempty"`
}

var livenessBody = []byte("{\"status\":\"ok\"}\n")

// Handler serves liveness: 200 whenever the process can run a handler.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write(livenessBody)
	})
}

// ReadyHandler serves readiness over the given checks, evaluated in
// order on every request: 200 when all pass, 503 when any fails. With
// no checks it degrades to liveness. The body is marshaled before the
// first write so it is never truncated mid-stream.
func ReadyHandler(checks ...Check) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		out := readyWire{Status: "ok"}
		status := http.StatusOK
		for _, c := range checks {
			ok, detail := c.Probe()
			out.Checks = append(out.Checks, checkWire{Name: c.Name, OK: ok, Detail: detail})
			if !ok {
				out.Status = "unavailable"
				status = http.StatusServiceUnavailable
			}
		}
		body, err := json.Marshal(out)
		if err != nil {
			http.Error(w, `{"error":"readyz encode failed"}`, http.StatusInternalServerError)
			return
		}
		body = append(body, '\n')
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(status)
		w.Write(body)
	})
}
