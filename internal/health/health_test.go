package health

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestLivenessAlwaysOK(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var body struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Status != "ok" {
		t.Fatalf("body %q err %v", rec.Body.String(), err)
	}
}

func TestReadyAllPass(t *testing.T) {
	h := ReadyHandler(
		Check{Name: "view", Probe: func() (bool, string) { return true, "version 3" }},
		Check{Name: "disk", Probe: func() (bool, string) { return true, "" }},
	)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200", rec.Code)
	}
	var out struct {
		Status string `json:"status"`
		Checks []struct {
			Name   string `json:"name"`
			OK     bool   `json:"ok"`
			Detail string `json:"detail"`
		} `json:"checks"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "ok" || len(out.Checks) != 2 || !out.Checks[0].OK || out.Checks[0].Detail != "version 3" {
		t.Fatalf("body: %s", rec.Body.String())
	}
}

func TestReadyOneFails(t *testing.T) {
	flip := true
	h := ReadyHandler(
		Check{Name: "view", Probe: func() (bool, string) { return flip, "stale" }},
		Check{Name: "other", Probe: func() (bool, string) { return true, "" }},
	)
	flip = false
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	var out struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out.Status != "unavailable" {
		t.Fatalf("body %q err %v", rec.Body.String(), err)
	}

	// Checks are re-evaluated per request: once the probe recovers,
	// readiness flips back without restarting anything.
	flip = true
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("recovered status %d, want 200", rec.Code)
	}
}

func TestReadyNoChecks(t *testing.T) {
	rec := httptest.NewRecorder()
	ReadyHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 with no checks", rec.Code)
	}
}
