package analysis

import (
	"strings"
	"testing"
)

// FuzzIgnoreDirective hammers the //p4pvet:ignore comment parser with
// arbitrary comment text. Invariants: it never panics; a comment that
// is not a directive is (_, _, false); a well-formed directive for a
// known rule round-trips the rule name with no error; a malformed
// directive always carries a diagnostic, never a rule — the driver
// relies on exactly one of (rule, errMsg) being set to decide between
// suppressing and reporting.
func FuzzIgnoreDirective(f *testing.F) {
	seeds := []string{
		"//p4pvet:ignore lockheld held across a copy on purpose",
		"// p4pvet:ignore allochot error formatting off the hot path",
		"//p4pvet:ignore goroleak",
		"//p4pvet:ignore",
		"//p4pvet:ignore nosuchrule some reason",
		"//p4pvet:ignoreallochot reason glued to the marker",
		"// just a comment",
		"//p4pvet:ignore atomicmix\ttab separated reason",
		"/* p4pvet:ignore respwrite block comment */",
		"//P4PVET:IGNORE lockheld wrong case",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	f.Fuzz(func(t *testing.T, comment string) {
		rule, errMsg, ok := parseIgnoreDirective(comment, known)
		if !ok {
			if rule != "" || errMsg != "" {
				t.Fatalf("non-directive %q returned rule=%q errMsg=%q", comment, rule, errMsg)
			}
			return
		}
		if (rule == "") == (errMsg == "") {
			t.Fatalf("directive %q: exactly one of rule (%q) and errMsg (%q) must be set", comment, rule, errMsg)
		}
		if rule != "" && !known[rule] {
			t.Fatalf("directive %q validated unknown rule %q", comment, rule)
		}
		// A validated directive must actually contain its rule name.
		if rule != "" && !strings.Contains(comment, rule) {
			t.Fatalf("directive %q claims rule %q not present in the text", comment, rule)
		}
	})
}
