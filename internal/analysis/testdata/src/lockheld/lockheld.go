// Package lockheld exercises the lockheld analyzer: blocking calls
// under a held sync.Mutex/RWMutex fire; the release-first and
// branch-local-unlock shapes stay silent.
package lockheld

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"
)

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
}

// bad sleeps and performs an HTTP round-trip under the mutex.
func (s *store) bad(c *http.Client, req *http.Request) error {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want lockheld
	_, err := c.Do(req)          // want lockheld
	s.mu.Unlock()
	return err
}

// badDefer holds the lock across the encode via defer.
func (s *store) badDefer(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return json.NewEncoder(w).Encode(s.data) // want lockheld
}

// badRead holds the read lock across io.Copy.
func (s *store) badRead(dst io.Writer, src io.Reader) {
	s.rw.RLock()
	io.Copy(dst, src) // want lockheld
	s.rw.RUnlock()
}

// good snapshots under the lock and encodes after releasing it.
func (s *store) good(w io.Writer) error {
	s.mu.Lock()
	snapshot := make(map[string]int, len(s.data))
	for k, v := range s.data {
		snapshot[k] = v
	}
	s.mu.Unlock()
	return json.NewEncoder(w).Encode(snapshot)
}

// goodBranch unlocks early in a branch; the held state must not leak
// past the branch's return, and goroutine bodies are independent.
func (s *store) goodBranch(w io.Writer, fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		io.WriteString(w, "fast")
		return
	}
	n := len(s.data)
	s.mu.Unlock()
	go func() { // want goroleak
		io.WriteString(w, "released")
	}()
	_ = n
	io.WriteString(w, "slow")
}

// badDeferredBranch defers the unlock inside a conditional. The defer
// does not release anything until the function returns, so the write
// below still runs with the mutex held — the false negative the
// deferred-held tracking exists to catch.
func (s *store) badDeferredBranch(w io.Writer, fast bool) error {
	s.mu.Lock()
	if fast {
		defer s.mu.Unlock()
	} else {
		defer s.mu.Unlock()
	}
	return json.NewEncoder(w).Encode(s.data) // want lockheld
}

// goodDeferredBranch defers the unlock inside a conditional but does
// nothing blocking before returning.
func (s *store) goodDeferredBranch(fast bool) int {
	s.mu.Lock()
	if fast {
		defer s.mu.Unlock()
		return len(s.data)
	}
	defer s.mu.Unlock()
	return -len(s.data)
}
