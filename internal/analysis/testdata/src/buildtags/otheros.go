//go:build someother_goos && !someother_goos

package buildtags

// Never buildable; the loader must skip it rather than typecheck the
// undefined identifier below.
const broken = definitelyNotDeclared
