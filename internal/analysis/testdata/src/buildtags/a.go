// Package buildtags exercises the loader's //go:build handling: the
// race / !race pair declares the same constant, so including both
// halves would fail typechecking.
package buildtags

const uses = guarded
