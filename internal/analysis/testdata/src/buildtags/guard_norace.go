//go:build !race

package buildtags

const guarded = false
