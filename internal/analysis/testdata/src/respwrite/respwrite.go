// Package respwrite exercises the respwrite analyzer: a json.Encoder
// constructed on an http.ResponseWriter fires; buffered writes and
// encoders over plain buffers stay silent.
package respwrite

import (
	"bytes"
	"encoding/json"
	"net/http"
)

type payload struct{ OK bool }

// bad encodes straight into the response, committing the 200 before
// the encode can fail.
func bad(w http.ResponseWriter, r *http.Request) {
	json.NewEncoder(w).Encode(payload{OK: true}) // want respwrite
}

// badVar is the same defect with the encoder named first.
func badVar(w http.ResponseWriter, r *http.Request) {
	enc := json.NewEncoder(w) // want respwrite
	enc.Encode(payload{OK: true})
}

// good marshals to a buffer first so failures become clean 500s.
func good(w http.ResponseWriter, r *http.Request) {
	body, err := json.Marshal(payload{OK: true})
	if err != nil {
		http.Error(w, "encode failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// goodBuffer encodes into a plain buffer; no response is at stake.
func goodBuffer(buf *bytes.Buffer) error {
	return json.NewEncoder(buf).Encode(payload{OK: true})
}
