// Package allochot exercises the allochot analyzer: allocating
// constructs inside //p4p:hotpath functions (and their call-graph
// descendants) fire; pre-sized buffers, value literals, cold-path
// cuts, panic arguments, and goroutine callees stay silent.
package allochot

import (
	"context"
	"fmt"
	"io"
)

type point struct{ x, y int }

type ring struct {
	buf []int
}

type sourcer interface{ value() int }

var hook func()

// root is the annotated seed: every allocation below must fire.
//
//p4p:hotpath fixture root
func root(ctx context.Context, w io.Writer, s sourcer, name string, n int) string {
	m := map[string]int{"a": 1} // want allochot
	_ = m
	xs := []int{1, 2, 3} // want allochot
	_ = xs
	p := &point{x: 1, y: 2} // want allochot
	q := point{x: 3, y: 4}  // value literal lives on the stack: silent
	_, _ = p, q
	f := func() int { return n } // want allochot
	g := func() int { return 1 } // non-capturing literal: silent
	_, _ = f, g
	fmt.Fprintf(w, "%d", n) // want allochot
	msg := name + "!"       // want allochot
	hook()                  // want allochot
	_ = s.value()           // want allochot
	sink(n)                 // want allochot
	sink(p)                 // pointer-shaped: no boxing, silent
	_ = any(n)              // want allochot
	var grown []int
	grown = append(grown, n) // want allochot
	presized := make([]int, 0, 8)
	presized = append(presized, n) // pre-sized: capacity reuse, silent
	_, _ = grown, presized
	_ = coldFormat(name + "?") // cold cut: the call and its args are exempt
	go spawnWork(ctx)          // goroutine callees are not on the hot path
	return helper(msg)
}

// helper is unannotated but reachable from root, so its findings carry
// the discovery chain.
func helper(s string) string {
	return fmt.Sprintf("<%s>", s) // want allochot
}

// sink's interface parameter is what root's boxing cases exercise.
func sink(v interface{}) { _ = v }

// push appends into a struct field: the reusable amortized-buffer
// idiom stays silent even in hot code.
//
//p4p:hotpath fixture: field appends are the sanctioned buffer idiom
func (r *ring) push(v int) {
	r.buf = append(r.buf, v)
}

// coldFormat is a deliberate slow path: its body is never scanned and
// calls to it are wholly exempt.
//
//p4p:coldpath fixture: formatting is off the measured path
func coldFormat(s string) string {
	return fmt.Sprintf("[%s]", s)
}

// spawnWork allocates freely: goroutines spawned from hot code run on
// their own schedule and do not inherit the obligation.
func spawnWork(ctx context.Context) {
	select {
	case <-ctx.Done():
	default:
	}
	_ = map[int]int{1: 1}
}

// offPath is not reachable from any hot root: silent.
func offPath() []int {
	return []int{1, 2, 3}
}

// guard's fmt call sits under panic: a panicking path is by definition
// not the hot path.
//
//p4p:hotpath fixture: panic arguments are exempt
func guard(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative: %d", n))
	}
}
