// Package spanend exercises the spanend analyzer. The local Span and
// Tracer stand in for internal/trace — the analyzer matches any Start*
// callee returning *Span, so the fixture stays dependency-free.
package spanend

type Span struct{ name string }

func (s *Span) End()                {}
func (s *Span) SetAttr(k, v string) {}
func (s *Span) RecordError(e error) {}

type Tracer struct{}

func (t *Tracer) StartRoot(name string) *Span { return &Span{name: name} }
func StartSpan(name string) (int, *Span)      { return 0, &Span{name: name} }
func startHelper(name string) *Span           { return &Span{name: name} } // lowercase: not matched

func deferredEnd(t *Tracer) {
	s := t.StartRoot("ok")
	defer s.End()
	s.SetAttr("k", "v")
}

func explicitOnAllPaths(cond bool) {
	_, s := StartSpan("ok")
	if cond {
		s.End()
		return
	}
	s.End()
}

func endAfterWait(t *Tracer, ch chan struct{}) {
	s := t.StartRoot("wait")
	<-ch
	s.End()
}

func neverEnded(t *Tracer) {
	s := t.StartRoot("leak") // want spanend
	s.SetAttr("k", "v")
}

func endOnOnePathOnly(cond bool) {
	_, s := StartSpan("partial") // want spanend
	if cond {
		s.End()
	}
}

func earlyReturnSkipsEnd(cond bool) error {
	_, s := StartSpan("early") // want spanend
	if cond {
		return nil
	}
	s.End()
	return nil
}

func ownershipReturned(t *Tracer) *Span {
	s := t.StartRoot("handoff")
	return s // caller now owns the span; not a leak here
}

func blankResultIgnored() {
	_, _ = StartSpan("discarded") // no variable escapes; out of scope
}

func lowercaseStartIgnored() {
	s := startHelper("x") // not a Start* constructor by convention
	_ = s
}

func loopEachIterationEnds(t *Tracer, n int) {
	for i := 0; i < n; i++ {
		s := t.StartRoot("iter")
		s.End()
	}
}

func loopLeaksEachIteration(t *Tracer, n int) {
	for i := 0; i < n; i++ {
		s := t.StartRoot("iter") // want spanend
		s.SetAttr("i", "v")
	}
}

func continueBeforeEnd(t *Tracer, ch chan int) {
	for v := range ch {
		s := t.StartRoot("recv") // want spanend
		if v > 0 {
			continue
		}
		s.End()
	}
}

func assignedNotDefined(t *Tracer, cond bool) {
	var s *Span
	if cond {
		s = t.StartRoot("cond")
	}
	s.End()
}

func switchEndsWithDefault(t *Tracer, v int) {
	s := t.StartRoot("sw")
	switch v {
	case 1:
		s.End()
	default:
		s.End()
	}
}

func switchWithoutDefaultLeaks(t *Tracer, v int) {
	s := t.StartRoot("sw") // want spanend
	switch v {
	case 1:
		s.End()
	}
}

func selectAlwaysEnds(t *Tracer, a, b chan int) {
	s := t.StartRoot("sel")
	select {
	case <-a:
		s.End()
	case <-b:
		s.End()
	}
}

func funcLitIsOwnUnit(t *Tracer) func() {
	return func() {
		s := t.StartRoot("lit")
		defer s.End()
	}
}

func funcLitLeaks(t *Tracer) func() {
	return func() {
		s := t.StartRoot("lit") // want spanend
		s.SetAttr("k", "v")
	}
}
