// Package lockheldip exercises lockheld's interprocedural pass: a
// mutex held across a call whose callee transitively blocks — here two
// hops from the I/O — is reported with the full call chain. The same
// helpers called after release, and non-blocking helpers called under
// the lock, stay silent.
package lockheldip

import (
	"io"
	"sync"
)

type server struct {
	mu   sync.Mutex
	data map[string]int
}

// flush holds the lock across persist, which reaches io.Copy two calls
// down: flush -> persist -> copyOut -> io.Copy.
func (s *server) flush(dst io.Writer, src io.Reader) {
	s.mu.Lock()
	s.persist(dst, src) // want lockheld
	s.mu.Unlock()
}

func (s *server) persist(dst io.Writer, src io.Reader) {
	s.copyOut(dst, src)
}

func (s *server) copyOut(dst io.Writer, src io.Reader) {
	io.Copy(dst, src)
}

// flushUnlocked calls the same blocking helper after releasing the
// lock: silent.
func (s *server) flushUnlocked(dst io.Writer, src io.Reader) {
	s.mu.Lock()
	n := len(s.data)
	s.mu.Unlock()
	_ = n
	s.persist(dst, src)
}

// bump calls a helper that never blocks: fine under the lock.
func (s *server) bump(k string) {
	s.mu.Lock()
	s.inc(k)
	s.mu.Unlock()
}

func (s *server) inc(k string) {
	s.data[k]++
}
