// Package floatsentinel exercises the floatsentinel analyzer: exact
// float equality against non-zero constants fires; range predicates,
// zero checks, and integer comparisons stay silent.
package floatsentinel

const unreachable = -1

// bad compares exactly against the wire sentinel.
func bad(d float64) bool {
	return d == unreachable // want floatsentinel
}

// badNeq is the same defect with a literal and !=.
func badNeq(d float64) bool {
	return d != 1.5 // want floatsentinel
}

// good uses a range predicate for the sentinel.
func good(d float64) bool {
	return d < 0
}

// goodZero compares against exactly zero, the idiomatic unset value.
func goodZero(d float64) bool {
	return d == 0
}

// goodInt compares integers, which is exact.
func goodInt(n int) bool {
	return n == -1
}

// goodVars compares two non-constant floats; not a sentinel check.
func goodVars(a, b float64) bool {
	return a == b
}
