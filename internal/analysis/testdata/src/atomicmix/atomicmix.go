// Package atomicmix exercises the atomicmix analyzer: plain accesses
// to fields and package variables used with sync/atomic fire, as do
// value copies of typed atomics; sanctioned accesses (atomic call
// arguments, method receivers, &-operands) and untracked fields stay
// silent.
package atomicmix

import "sync/atomic"

type counter struct {
	hits  uint64
	drops uint64 // never touched atomically: plain access is fine
	ptr   atomic.Pointer[counter]
	gauge atomic.Int64
}

var total uint64

func (c *counter) record() {
	atomic.AddUint64(&c.hits, 1)
	atomic.AddUint64(&total, 1)
	c.gauge.Store(5)
}

func (c *counter) read() uint64 {
	return c.hits // want atomicmix
}

func (c *counter) readOK() uint64 {
	return atomic.LoadUint64(&c.hits)
}

func (c *counter) dropCount() uint64 {
	return c.drops // untracked: silent
}

func readTotal() uint64 {
	return total // want atomicmix
}

func (c *counter) copyGauge() atomic.Int64 {
	return c.gauge // want atomicmix
}

func (c *counter) gaugeOK() int64 {
	return c.gauge.Load()
}

// handOff passes the atomic by pointer: the callee uses its methods.
func (c *counter) handOff(f func(*atomic.Int64)) {
	f(&c.gauge)
}

func (c *counter) swap(n *counter) *counter {
	c.ptr.Store(n)
	return c.ptr.Load()
}

func (c *counter) copyPtr() atomic.Pointer[counter] {
	return c.ptr // want atomicmix
}
