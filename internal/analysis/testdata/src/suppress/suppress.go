// Package suppress exercises //p4pvet:ignore handling: reasoned
// suppressions (preceding line or trailing) silence a finding;
// missing reasons and unknown rules are themselves reported.
package suppress

import "context"

// wrapped carries a reasoned suppression on the preceding line.
func wrapped() error {
	//p4pvet:ignore ctxflow documented convenience wrapper kept for callers without a context
	return work(context.Background())
}

// trailing carries a reasoned suppression at the end of the line.
func trailing() error {
	return work(context.TODO()) //p4pvet:ignore ctxflow scheduled for removal with the legacy non-context API
}

// missingReason does not suppress: the marker lacks its reason.
func missingReason() error {
	//p4pvet:ignore ctxflow
	return work(context.Background()) // want ctxflow
}

// unknownRule does not suppress: no analyzer is named nosuchrule.
func unknownRule() error {
	//p4pvet:ignore nosuchrule because the rule name is mistyped
	return work(context.Background()) // want ctxflow
}

func work(ctx context.Context) error {
	return ctx.Err()
}
