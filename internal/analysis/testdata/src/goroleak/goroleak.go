// Package goroleak exercises the goroleak analyzer: go statements
// without a termination witness fire; context plumbing, WaitGroup
// ties, channel ranges, completion closes, and bounded sends stay
// silent.
package goroleak

import (
	"context"
	"sync"
)

func work() {}

func compute() int { return 1 }

// leak spawns a goroutine with no witness at all.
func leak() {
	go func() { // want goroleak
		work()
	}()
}

// leakNamed spawns a named function without a context argument; the
// analysis does not chase the callee's body.
func leakNamed() {
	go work() // want goroleak
}

// goodCtx references the plumbed context.
func goodCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// goodNamedCtx hands a named function a context.
func goodNamedCtx(ctx context.Context) {
	go runWithCtx(ctx)
}

func runWithCtx(ctx context.Context) {
	<-ctx.Done()
}

// goodWG ties the goroutine's lifetime to a WaitGroup.
func goodWG(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// goodRange is the worker-pool shape: the goroutine exits when the
// channel is closed.
func goodRange(ch chan int) {
	go func() {
		for range ch {
			work()
		}
	}()
}

// goodDeferClose signals completion with a deferred close, covering
// every path by construction.
func goodDeferClose() chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	return done
}

// goodBranchClose closes on every CFG path through the body.
func goodBranchClose(fast bool) chan struct{} {
	done := make(chan struct{})
	go func() {
		if fast {
			close(done)
			return
		}
		work()
		close(done)
	}()
	return done
}

// leakPartialClose closes on only one branch: a receiver blocked on
// done can wait forever.
func leakPartialClose(fast bool) chan struct{} {
	done := make(chan struct{})
	go func() { // want goroleak
		if fast {
			close(done)
			return
		}
		work()
	}()
	return done
}

// goodBoundedSend is the one-shot result-channel shape: the buffered
// send always completes, so the goroutine ends.
func goodBoundedSend() chan int {
	res := make(chan int, 1)
	go func() {
		res <- compute()
	}()
	return res
}

// leakUnbufferedSend can block forever if the receiver leaves.
func leakUnbufferedSend() chan int {
	res := make(chan int)
	go func() { // want goroleak
		res <- compute()
	}()
	return res
}
