// Command ctxmain exercises the ctxflow analyzer's exemption for
// package main: binaries own their root contexts.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
