// Package sleeptest exercises the sleeptest analyzer: production code
// may sleep (backoff loops do); _test.go files may not.
package sleeptest

import "time"

// Backoff sleeps in production code; the rule does not apply here.
func Backoff() {
	time.Sleep(time.Millisecond)
}
