package sleeptest

import (
	"testing"
	"time"
)

// TestBad paces itself with a wall-clock sleep.
func TestBad(t *testing.T) {
	time.Sleep(time.Millisecond) // want sleeptest
}

// TestGoodWatchdog uses time.After only to bound a hang, which is not
// flagged: it does not pace the test.
func TestGoodWatchdog(t *testing.T) {
	done := make(chan struct{}, 1)
	done <- struct{}{}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("watchdog")
	}
}
