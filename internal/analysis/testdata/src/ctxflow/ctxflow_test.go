package ctxflow

import (
	"context"
	"testing"
)

// Tests are the program edge: a root context here is fine.
func TestRootContextAllowed(t *testing.T) {
	if err := work(context.Background()); err != nil {
		t.Fatal(err)
	}
}
