// Package ctxflow exercises the ctxflow analyzer: library code minting
// context roots fires; threading the caller's context stays silent.
package ctxflow

import (
	"context"
	"time"
)

// bad mints its own root, detaching work from the caller's deadline.
func bad() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second) // want ctxflow
	defer cancel()
	return work(ctx)
}

// badTODO is the same defect spelled TODO.
func badTODO() error {
	return work(context.TODO()) // want ctxflow
}

// good threads the caller's context.
func good(ctx context.Context) error {
	return work(ctx)
}

func work(ctx context.Context) error {
	return ctx.Err()
}
