package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AllocHot enforces the module's allocation-free hot paths. Functions
// annotated //p4p:hotpath are roots; everything statically reachable
// from them through the module call graph inherits the obligation,
// except callees annotated //p4p:coldpath (deliberate slow paths:
// cache misses, error envelopes, once-per-version recomputes), whose
// entire call expressions — argument evaluation included — are exempt.
//
// Inside hot code the analyzer flags the allocation vocabulary the
// AllocsPerRun tests keep catching one entry point at a time:
//
//   - append growth into a plain local that was not pre-sized with a
//     3-arg make or derived by reslicing (appends into struct fields
//     are the amortized reusable-buffer idiom and stay silent);
//   - map and slice composite literals, and composite literals that
//     escape via & (a value struct literal on the stack is free);
//   - function literals that capture variables (a non-capturing
//     literal compiles to a static function);
//   - interface boxing: a concrete non-pointer-shaped value passed to
//     an interface parameter or converted to an interface type;
//   - any fmt.* call, and string concatenation not folded at compile
//     time;
//   - dynamic dispatch the call graph cannot follow: calls through
//     function values and through module-declared interfaces (calls
//     via standard-library interfaces, e.g. http.ResponseWriter, are
//     the platform's contract and stay silent).
//
// Allocations inside panic(...) arguments are exempt: a panicking path
// is by definition not the hot path.
var AllocHot = &Analyzer{
	Name:      "allochot",
	Doc:       "code reachable from //p4p:hotpath functions must not allocate",
	RunModule: runAllocHot,
}

func runAllocHot(m *Module) []Finding {
	var seeds []string
	for k, fi := range m.Funcs {
		if fi.Hot {
			seeds = append(seeds, k)
		}
	}
	sort.Strings(seeds)
	less := func(a, b string) bool { return a < b }
	parent := Reachable(seeds, func(k string) []string {
		fi := m.Funcs[k]
		if fi == nil || fi.Cold {
			return nil
		}
		var out []string
		for _, cs := range fi.Calls {
			if cs.Kind == CallGo {
				// A goroutine spawned from hot code runs on its own
				// schedule; it is not part of the hot path.
				continue
			}
			callee := m.Funcs[cs.CalleeKey]
			if callee == nil || callee.Cold {
				continue
			}
			out = append(out, cs.CalleeKey)
		}
		return out
	}, less)

	keys := make([]string, 0, len(parent))
	for k := range parent {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Finding
	for _, k := range keys {
		fi := m.Funcs[k]
		if fi == nil || fi.Cold {
			continue
		}
		s := &allocScanner{m: m, fi: fi, why: hotChain(m, parent, k)}
		s.collectPresized()
		ast.Inspect(fi.Decl.Body, s.walk)
		out = append(out, s.out...)
	}
	return out
}

// hotChain renders why a function is hot: either its own annotation,
// or the discovery chain back to an annotated root.
func hotChain(m *Module, parent map[string]string, k string) string {
	if fi := m.Funcs[k]; fi != nil && fi.Hot {
		return "marked //p4p:hotpath"
	}
	var chain []string
	for cur := k; ; cur = parent[cur] {
		chain = append(chain, shortFuncKey(cur))
		if parent[cur] == cur {
			break
		}
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return "hot via " + strings.Join(chain, " -> ")
}

type allocScanner struct {
	m   *Module
	fi  *FuncInfo
	why string
	// presized holds locals initialized from a 3-arg make or a slice
	// expression; appends into them reuse capacity by design.
	presized map[types.Object]bool
	// handled marks nodes already reported (or deliberately silenced)
	// by an ancestor, e.g. the composite literal under an &.
	handled map[ast.Node]bool
	out     []Finding
}

func (s *allocScanner) report(pos token.Pos, msg string) {
	s.out = append(s.out, Finding{
		Pos:  s.fi.Pkg.Fset.Position(pos),
		Rule: "allochot",
		Msg:  fmt.Sprintf("%s in hot path (%s)", msg, s.why),
	})
}

// collectPresized records locals whose appends are capacity reuse, not
// growth: x := make([]T, n, c) and every reslicing x := buf[:0].
func (s *allocScanner) collectPresized() {
	s.presized = map[types.Object]bool{}
	s.handled = map[ast.Node]bool{}
	info := s.fi.Pkg.Info
	mark := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		switch r := ast.Unparen(rhs).(type) {
		case *ast.SliceExpr:
			_ = r
		case *ast.CallExpr:
			fn, ok := ast.Unparen(r.Fun).(*ast.Ident)
			if !ok || fn.Name != "make" || len(r.Args) != 3 {
				return
			}
			if _, isBuiltin := info.Uses[fn].(*types.Builtin); !isBuiltin {
				return
			}
		default:
			return
		}
		if obj := info.Defs[id]; obj != nil {
			s.presized[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			s.presized[obj] = true
		}
	}
	ast.Inspect(s.fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					mark(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					mark(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
}

func (s *allocScanner) walk(n ast.Node) bool {
	if n != nil && s.handled[n] {
		return false
	}
	switch n := n.(type) {
	case *ast.CallExpr:
		return s.call(n)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				s.report(n.Pos(), fmt.Sprintf("&%s escapes to the heap", typeLabel(s.fi.Pkg, cl)))
				s.handled[cl] = true
			}
		}
	case *ast.CompositeLit:
		s.composite(n)
	case *ast.FuncLit:
		if capt := s.captures(n); capt != "" {
			s.report(n.Pos(), fmt.Sprintf("closure captures %s and allocates", capt))
		}
	case *ast.BinaryExpr:
		s.concat(n)
	}
	return true
}

func (s *allocScanner) composite(n *ast.CompositeLit) {
	tv, ok := s.fi.Pkg.Info.Types[n]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		s.report(n.Pos(), "map literal allocates")
	case *types.Slice:
		s.report(n.Pos(), "slice literal allocates")
	}
	// Value struct and array literals live on the stack: silent.
}

func (s *allocScanner) concat(n *ast.BinaryExpr) {
	if n.Op != token.ADD {
		return
	}
	info := s.fi.Pkg.Info
	tv, ok := info.Types[n]
	if !ok || tv.Value != nil { // constant-folded concat is free
		return
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsString == 0 {
		return
	}
	// Report only the outermost + of a chain.
	for _, sub := range []ast.Expr{n.X, n.Y} {
		if be, ok := ast.Unparen(sub).(*ast.BinaryExpr); ok && be.Op == token.ADD {
			s.handled[be] = true
		}
	}
	s.report(n.Pos(), "string concatenation allocates")
}

// call classifies one call expression; the return value feeds
// ast.Inspect (false prunes the subtree for exempt calls).
func (s *allocScanner) call(n *ast.CallExpr) bool {
	p := s.fi.Pkg
	// Type conversions: only interface conversions allocate.
	if tv, ok := p.Info.Types[n.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type.Underlying()) && len(n.Args) == 1 {
			if at, ok := p.Info.Types[n.Args[0]]; ok && boxes(at.Type) {
				s.report(n.Pos(), "conversion to interface boxes its operand")
			}
		}
		return true
	}
	// Builtins: append may grow, panic exempts its arguments, the rest
	// are free or covered elsewhere (a bare 2-arg make returning a
	// buffer that is then appended into is caught at the append).
	if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "panic":
				return false
			case "append":
				s.append_(n)
			}
			return true
		}
	}
	f := calleeFunc(p, n)
	if f == nil {
		// No static callee and not a builtin or conversion: a call
		// through a function value.
		s.report(n.Pos(), "dynamic call through a function value; the hot-path call graph cannot follow it")
		return true
	}
	if s.m.IsLocal(f) {
		if sel, ok := s.m.selectionFor(p, n); ok && sel.Kind() == types.MethodVal &&
			types.IsInterface(sel.Recv().Underlying()) {
			s.report(n.Pos(), fmt.Sprintf("dynamic call through interface method %s; the hot-path call graph cannot follow it", shortFuncKey(f.FullName())))
			s.boxingCheck(n)
			return true
		}
		if callee := s.m.Funcs[f.FullName()]; callee != nil && callee.Cold {
			// The whole cut call — argument evaluation included — is
			// the cold path's cost.
			return false
		}
		s.boxingCheck(n)
		return true
	}
	// Standard library (or other out-of-module) callee.
	if funcPkgPath(f) == "fmt" {
		s.report(n.Pos(), "fmt."+f.Name()+" allocates (formatting state and boxed arguments)")
		return true
	}
	if sel, ok := s.m.selectionFor(p, n); ok && sel.Kind() == types.MethodVal &&
		types.IsInterface(sel.Recv().Underlying()) {
		// Calls via stdlib interfaces (http.ResponseWriter.Write,
		// io.Writer) are the platform contract; trust them.
		return true
	}
	s.boxingCheck(n)
	return true
}

// append_ flags append calls that can grow their destination: the
// destination is a plain local that was not pre-sized. Appends into
// struct fields or elements are the reusable amortized-buffer idiom
// (h.ev = append(h.ev, e)) and stay silent, as do appends into locals
// born from a 3-arg make or a reslice (buf[:0]).
func (s *allocScanner) append_(n *ast.CallExpr) {
	if len(n.Args) == 0 {
		return
	}
	dst, ok := ast.Unparen(n.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := s.fi.Pkg.Info.Uses[dst]
	if obj == nil || s.presized[obj] {
		return
	}
	if v, ok := obj.(*types.Var); !ok || v.IsField() {
		return
	}
	s.report(n.Pos(), fmt.Sprintf("append into %s may grow; pre-size it with a 3-arg make or reslice a reusable buffer", dst.Name))
}

// boxingCheck flags concrete non-pointer-shaped arguments passed to
// interface parameters.
func (s *allocScanner) boxingCheck(n *ast.CallExpr) {
	p := s.fi.Pkg
	tv, ok := p.Info.Types[n.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range n.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if n.Ellipsis.IsValid() {
				continue // the slice is passed through, nothing boxes
			}
			pt = params.At(params.Len() - 1).Type().Underlying().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at, ok := p.Info.Types[arg]
		if !ok || at.IsNil() || !boxes(at.Type) {
			continue
		}
		s.report(arg.Pos(), fmt.Sprintf("argument %s boxes into interface parameter", types.ExprString(arg)))
	}
}

// boxes reports whether storing a value of type t in an interface
// allocates: pointer-shaped types (pointers, channels, maps, funcs,
// unsafe pointers) and interfaces themselves fit in the word; anything
// else is copied to the heap.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	}
	return true
}

// captures names the first variable a function literal closes over, or
// "" when the literal is non-capturing (and thus allocation-free).
func (s *allocScanner) captures(lit *ast.FuncLit) string {
	info := s.fi.Pkg.Info
	declPos, declEnd := s.fi.Decl.Pos(), s.fi.Decl.End()
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured = declared inside the enclosing function but
		// outside the literal itself (package-level vars are shared,
		// not captured).
		if v.Pos() >= declPos && v.Pos() < declEnd &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			name = v.Name()
			return false
		}
		return true
	})
	return name
}

// typeLabel renders a composite literal's type for a finding message.
func typeLabel(p *Pkg, cl *ast.CompositeLit) string {
	if cl.Type != nil {
		return types.ExprString(cl.Type)
	}
	if tv, ok := p.Info.Types[cl]; ok && tv.Type != nil {
		return tv.Type.String()
	}
	return "composite literal"
}
