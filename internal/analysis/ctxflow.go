package analysis

import "go/ast"

// CtxFlow flags context.Background() and context.TODO() in library
// packages. A library that mints its own root context detaches the
// work from the caller's deadline and cancellation — the portal client
// and view cache must die with their caller, not outlive it. Roots
// belong at the program edge: package main (cmd/, examples/) and test
// files are exempt, and the documented non-Context convenience
// wrappers carry explicit //p4pvet:ignore suppressions.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "library code threads the caller's context; no Background()/TODO() outside main and tests",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pkg) []Finding {
	if p.Types.Name() == "main" {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		if p.IsTestFile[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || funcPkgPath(fn) != "context" {
				return true
			}
			if name := fn.Name(); name == "Background" || name == "TODO" {
				out = append(out, Finding{
					Pos:  p.Fset.Position(call.Pos()),
					Rule: "ctxflow",
					Msg:  "context." + name + "() in library code detaches work from the caller's deadline; accept and thread a context.Context",
				})
			}
			return true
		})
	}
	return out
}
