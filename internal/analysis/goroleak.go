package analysis

import (
	"go/ast"
	"go/types"
)

// GoroLeak requires every go statement in non-test code to carry a
// termination witness — structural evidence that the goroutine can
// stop. Accepted witnesses, checked against the spawned function:
//
//   - it references a context.Context (plumbed parameter or captured
//     variable; selecting on ctx.Done() is the canonical exit);
//   - it calls (*sync.WaitGroup).Done, deferred or not, tying its
//     lifetime to a Wait elsewhere;
//   - it ranges over a channel (the worker-pool shape: the goroutine
//     exits when the channel is closed);
//   - it closes a captured channel on every CFG path (including by
//     defer), signaling completion to a receiver;
//   - it sends on a channel created in the enclosing function with a
//     non-zero buffer (the one-shot errCh <- srv.ListenAndServe()
//     shape: the send cannot block forever, so the goroutine ends).
//
// A `go someFunc(...)` spawning a named function counts as witnessed
// only when an argument is a context.Context; the analysis does not
// chase the callee's body. Test files are exempt — tests leak bounded
// goroutines into a process that is about to exit.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "every go statement needs a termination witness (context, WaitGroup.Done, or channel signal)",
	Run:  runGoroLeak,
}

func runGoroLeak(p *Pkg) []Finding {
	var out []Finding
	for _, f := range p.Files {
		if p.IsTestFile[f] {
			continue
		}
		// Walk per function declaration so the enclosing body is at
		// hand for bounded-channel lookups.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !hasTerminationWitness(p, g, fd) {
					out = append(out, Finding{
						Pos:  p.Fset.Position(g.Pos()),
						Rule: "goroleak",
						Msg: "go statement has no termination witness: plumb a context, tie it to a WaitGroup (defer wg.Done()), " +
							"or signal completion on a channel (close on all paths, or send on a buffered channel)",
					})
				}
				return true
			})
		}
	}
	return out
}

func hasTerminationWitness(p *Pkg, g *ast.GoStmt, enclosing *ast.FuncDecl) bool {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		// Named function or method value: witnessed only when the
		// caller hands it a context.
		for _, a := range g.Call.Args {
			if tv, ok := p.Info.Types[a]; ok && isContextType(tv.Type) {
				return true
			}
		}
		return false
	}
	if referencesContext(p, lit.Body) {
		return true
	}
	if callsWaitGroupDone(p, lit.Body) {
		return true
	}
	if rangesOverChannel(p, lit.Body) {
		return true
	}
	if closesChannelOnAllPaths(p, lit) {
		return true
	}
	if sendsOnBoundedChannel(p, lit.Body, enclosing) {
		return true
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func referencesContext(p *Pkg, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := p.Info.Uses[id]; obj != nil {
			if _, isVar := obj.(*types.Var); isVar && isContextType(obj.Type()) {
				found = true
			}
		}
		return true
	})
	return found
}

func callsWaitGroupDone(p *Pkg, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(p, call)
		if f != nil && f.Name() == "Done" && funcPkgPath(f) == "sync" && isMethod(f) {
			found = true
		}
		return true
	})
	return found
}

func rangesOverChannel(p *Pkg, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		r, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if tv, ok := p.Info.Types[r.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				found = true
			}
		}
		return true
	})
	return found
}

// closesChannelOnAllPaths reports whether the literal closes some one
// channel object on every entry-to-exit path of its CFG (deferred
// closes cover all paths by construction).
func closesChannelOnAllPaths(p *Pkg, lit *ast.FuncLit) bool {
	// Gather candidate channels that are closed anywhere in the body.
	closed := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if obj := closedChannel(p, n); obj != nil {
			closed[obj] = true
		}
		return true
	})
	if len(closed) == 0 {
		return false
	}
	cfg := BuildCFG(lit.Body)
	for obj := range closed {
		if closeCoversAllPaths(p, cfg, obj) {
			return true
		}
	}
	return false
}

// closedChannel returns the channel object of a close(ch) call (or a
// deferred one), if n is one.
func closedChannel(p *Pkg, n ast.Node) types.Object {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return nil
	}
	if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	switch arg := ast.Unparen(call.Args[0]).(type) {
	case *ast.Ident:
		return p.Info.Uses[arg]
	case *ast.SelectorExpr:
		return p.Info.Uses[arg.Sel]
	}
	return nil
}

// closeCoversAllPaths checks, on the CFG, that no entry-to-exit path
// avoids a block that closes obj. Defer blocks hang off Exit, so a
// deferred close covers every path automatically.
func closeCoversAllPaths(p *Pkg, cfg *CFG, obj types.Object) bool {
	closes := func(b *Block) bool {
		for _, n := range b.Nodes {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if found {
					return false
				}
				if closedChannel(p, m) == obj {
					found = true
				}
				return true
			})
			if found {
				return true
			}
		}
		return false
	}
	// Deferred closes run after Exit on every path.
	for b := cfg.Exit; len(b.Succs) > 0; {
		b = b.Succs[0]
		if b.Kind != "defer" {
			break
		}
		if closes(b) {
			return true
		}
	}
	// Otherwise: Exit must be unreachable once close-blocks are
	// removed from the graph.
	if closes(cfg.Entry) {
		return true
	}
	reach := Reachable([]*Block{cfg.Entry}, func(b *Block) []*Block {
		if closes(b) {
			return nil
		}
		return b.Succs
	}, func(a, b *Block) bool { return a.Index < b.Index })
	_, exitReached := reach[cfg.Exit]
	return !exitReached
}

// sendsOnBoundedChannel reports whether the literal sends on a channel
// that the enclosing function made with a constant non-zero buffer —
// the one-shot result-channel shape, where the send always completes.
func sendsOnBoundedChannel(p *Pkg, body *ast.BlockStmt, enclosing *ast.FuncDecl) bool {
	bounded := map[types.Object]bool{}
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				continue
			}
			fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || fn.Name != "make" {
				continue
			}
			if _, isBuiltin := p.Info.Uses[fn].(*types.Builtin); !isBuiltin {
				continue
			}
			if tv, ok := p.Info.Types[call.Args[1]]; !ok || tv.Value == nil || tv.Value.String() == "0" {
				continue
			}
			if id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident); ok {
				if obj := p.Info.Defs[id]; obj != nil {
					if _, isChan := obj.Type().Underlying().(*types.Chan); isChan {
						bounded[obj] = true
					}
				}
			}
		}
		return true
	})
	if len(bounded) == 0 {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(send.Chan).(*ast.Ident); ok {
			if bounded[p.Info.Uses[id]] {
				found = true
			}
		}
		return true
	})
	return found
}
