package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix enforces all-or-nothing atomicity: a struct field or
// package-level variable accessed through sync/atomic anywhere in the
// module must never be read or written plainly anywhere else. Mixing
// the two is a data race the race detector only catches when the
// interleaving actually happens; statically it is always wrong.
//
// Two classes of atomics are tracked module-wide:
//
//   - untyped atomics: a field/var passed by address to an atomic
//     function (atomic.AddUint64(&s.n, 1)). Every other appearance of
//     that field/var that is not an atomic call argument is flagged.
//   - typed atomics (atomic.Uint64, atomic.Pointer[T], ...): the type
//     itself is the declaration of intent, so uses are fine only as
//     method-call receivers or under & (handing the atomic to a
//     helper); copying the value reads it plainly and is flagged.
//
// Identity is by declaration position, which survives the two
// type-checking universes (direct check vs. source importer) because
// all units share one FileSet. Only named struct fields and
// package-level variables are tracked; locals are single-goroutine by
// construction unless captured, which goroleak's territory covers.
var AtomicMix = &Analyzer{
	Name:      "atomicmix",
	Doc:       "fields accessed via sync/atomic must never be accessed plainly",
	RunModule: runAtomicMix,
}

func runAtomicMix(m *Module) []Finding {
	// Pass 1: find every field/var used atomically, keyed by decl
	// position.
	atomicObjs := map[string]string{} // decl position -> display name
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p, call)
				if fn == nil || funcPkgPath(fn) != "sync/atomic" || isMethod(fn) {
					return true
				}
				for _, a := range call.Args {
					un, ok := ast.Unparen(a).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					if obj := targetObject(p, un.X); obj != nil {
						atomicObjs[position(p.Fset, obj.Pos())] = obj.Name()
					}
				}
				return true
			})
		}
	}

	var out []Finding
	seen := map[string]bool{}
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			out = append(out, scanAtomicUses(p, f, atomicObjs, seen)...)
		}
	}
	return out
}

// targetObject resolves the field or package-level variable an
// expression denotes, or nil for anything else (locals, indexing).
func targetObject(p *Pkg, e ast.Expr) types.Object {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[e]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[e.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	if v.IsField() {
		return v
	}
	// Package-level variable: its parent scope is the package scope.
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v
	}
	return nil
}

// isAtomicType reports whether t is one of sync/atomic's typed
// wrappers (atomic.Uint64, atomic.Pointer[T], ...).
func isAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// scanAtomicUses flags plain accesses in one file: uses of
// untyped-atomic objects outside atomic call arguments, and value
// copies of typed atomics.
func scanAtomicUses(p *Pkg, f *ast.File, atomicObjs map[string]string, seen map[string]bool) []Finding {
	var out []Finding
	report := func(pos token.Pos, msg string) {
		position := p.Fset.Position(pos)
		key := fmt.Sprintf("%s|%s", position, msg)
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, Finding{Pos: position, Rule: "atomicmix", Msg: msg})
	}

	// ok marks expression nodes whose use of an atomic object is
	// legitimate: atomic call arguments, method receivers, &-operands.
	okNodes := map[ast.Node]bool{}
	markOK := func(e ast.Expr) {
		for {
			okNodes[e] = true
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			default:
				return
			}
		}
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(p, n); fn != nil && funcPkgPath(fn) == "sync/atomic" {
				if !isMethod(fn) {
					// atomic.AddUint64(&x.f, 1): the &arg is the
					// sanctioned access.
					for _, a := range n.Args {
						if un, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && un.Op == token.AND {
							markOK(un.X)
						}
					}
				} else {
					// x.f.Store(v): the receiver selector is sanctioned.
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
						markOK(sel.X)
					}
				}
			}
		case *ast.UnaryExpr:
			// &x.f where f is a typed atomic: passing the atomic by
			// pointer is fine (the callee uses its methods).
			if n.Op == token.AND {
				if tv, ok := p.Info.Types[n.X]; ok && tv.Type != nil && isAtomicType(tv.Type) {
					markOK(n.X)
				}
			}
		}

		// Judge this node itself if it denotes a tracked object.
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch e := e.(type) {
		case *ast.SelectorExpr:
			// The whole selector is the access; its .Sel ident resolves
			// to the same object and must not be judged twice.
			okNodes[e.Sel] = true
		case *ast.Ident:
		default:
			return true
		}
		if okNodes[e] {
			return true
		}
		obj := targetObject(p, e)
		if obj == nil {
			return true
		}
		if isAtomicType(obj.Type()) {
			report(e.Pos(), fmt.Sprintf("%s has an atomic type; copying its value bypasses the atomic API (call its methods on the field directly)", obj.Name()))
			return true
		}
		declPos := position(p.Fset, obj.Pos())
		if name, tracked := atomicObjs[declPos]; tracked {
			report(e.Pos(), fmt.Sprintf("%s is accessed with sync/atomic elsewhere; this plain access races with it", name))
		}
		return true
	})
	return out
}
