package analysis

import "go/ast"

// SleepTest flags wall-clock time.Sleep calls in _test.go files. A
// sleep in a test encodes an assumption about scheduler latency that
// loaded CI machines routinely violate, producing flakes that are then
// "fixed" by sleeping longer; under -race the slowdown makes the
// assumption worse. Tests must synchronize on channels or inject a
// fake clock (see internal/apptracker's views tests for both
// patterns). time.After inside a select used as a watchdog timeout is
// deliberately not flagged: it bounds a hang, it does not pace the
// test.
var SleepTest = &Analyzer{
	Name: "sleeptest",
	Doc:  "no wall-clock time.Sleep in _test.go files; synchronize on channels or inject a clock",
	Run:  runSleepTest,
}

func runSleepTest(p *Pkg) []Finding {
	var out []Finding
	for _, f := range p.Files {
		if !p.IsTestFile[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Name() != "Sleep" || funcPkgPath(fn) != "time" || isMethod(fn) {
				return true
			}
			out = append(out, Finding{
				Pos:  p.Fset.Position(call.Pos()),
				Rule: "sleeptest",
				Msg:  "time.Sleep in a test races the scheduler; synchronize on a channel or inject a clock",
			})
			return true
		})
	}
	return out
}
