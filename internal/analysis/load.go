package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Pkg is one typechecked unit handed to the analyzers: a package's
// compiled files plus its in-package test files, or the external
// _test package of a directory. Test files ride in the same unit so
// rules that care about them (sleeptest) and rules that exempt them
// (ctxflow, respwrite, floatsentinel) see one consistent view.
type Pkg struct {
	Fset       *token.FileSet
	ImportPath string
	Dir        string
	Files      []*ast.File
	// IsTestFile marks files named *_test.go.
	IsTestFile map[*ast.File]bool
	Info       *types.Info
	Types      *types.Package
}

// Loader parses and typechecks packages with nothing beyond the
// standard library: go/parser for syntax and the go/importer "source"
// importer for dependencies, which resolves module-local import paths
// through go/build (and caches each dependency across packages, so the
// module is typechecked roughly once).
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader builds a loader. It forces cgo off in go/build's default
// context so that cgo-using stdlib packages (net, os/user) resolve to
// their pure-Go variants, which the source importer can typecheck
// without invoking the C toolchain.
func NewLoader() *Loader {
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: &lockedImporter{imp: importer.ForCompiler(fset, "source", nil)}}
}

// lockedImporter serializes Import calls: the go/importer "source"
// importer type-checks dependencies on demand and is not safe for
// concurrent use. Wrapping it in a mutex makes one Loader shareable
// across the parallel driver's workers while the importer's internal
// cache still checks each dependency only once. The shared FileSet is
// safe without help (token.FileSet synchronizes internally).
type lockedImporter struct {
	mu  sync.Mutex
	imp types.Importer
}

func (l *lockedImporter) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.imp.Import(path)
}

// LoadDir parses and typechecks the package in dir under the given
// import path. It returns up to two units: the package itself
// (including in-package test files) and, when present, the external
// _test package. A directory with no Go files returns no units.
func (l *Loader) LoadDir(dir, importPath string) ([]*Pkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []parsedFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !l.buildIncluded(f) {
			// Files excluded by //go:build constraints (e.g. the race /
			// !race const-guard pairs) would redeclare symbols if both
			// halves were typechecked together; keep the same view the
			// default build does.
			continue
		}
		files = append(files, parsedFile{file: f, isTest: strings.HasSuffix(name, "_test.go")})
	}
	if len(files) == 0 {
		return nil, nil
	}

	// Split into the package unit and the external _test unit by
	// package clause; in-package test files stay with the package.
	var baseName string
	for _, p := range files {
		if !strings.HasSuffix(p.file.Name.Name, "_test") {
			baseName = p.file.Name.Name
			break
		}
	}
	var base, xtest []parsedFile
	for _, p := range files {
		if strings.HasSuffix(p.file.Name.Name, "_test") && p.file.Name.Name != baseName {
			xtest = append(xtest, p)
		} else {
			base = append(base, p)
		}
	}

	var pkgs []*Pkg
	if len(base) > 0 {
		pkg, err := l.check(importPath, dir, base)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", importPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	if len(xtest) > 0 {
		pkg, err := l.check(importPath+"_test", dir, xtest)
		if err != nil {
			return nil, fmt.Errorf("%s_test: %w", importPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// parsedFile pairs a parsed file with whether it is a _test.go file.
type parsedFile struct {
	file   *ast.File
	isTest bool
}

// buildIncluded evaluates a file's //go:build constraint (if any)
// against go/build's default context — GOOS, GOARCH, compiler, release
// tags, and any configured build tags — mirroring which files `go
// build` would compile. Files with no constraint are always included.
func (l *Loader) buildIncluded(f *ast.File) bool {
	expr := buildConstraint(f)
	if expr == nil {
		return true
	}
	ctxt := &build.Default
	return expr.Eval(func(tag string) bool {
		switch tag {
		case ctxt.GOOS, ctxt.GOARCH, ctxt.Compiler:
			return true
		case "unix":
			// The unix pseudo-tag covers every GOOS this repo targets in
			// practice; windows/plan9 builders would refine this.
			return ctxt.GOOS != "windows" && ctxt.GOOS != "plan9"
		case "cgo":
			return ctxt.CgoEnabled
		}
		for _, t := range ctxt.BuildTags {
			if tag == t {
				return true
			}
		}
		for _, t := range ctxt.ReleaseTags {
			if tag == t {
				return true
			}
		}
		return false
	})
}

// buildConstraint returns the file's //go:build expression, or nil.
// Only comments above the package clause can carry one.
func buildConstraint(f *ast.File) constraint.Expr {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if constraint.IsGoBuild(c.Text) {
				if expr, err := constraint.Parse(c.Text); err == nil {
					return expr
				}
			}
		}
	}
	return nil
}

func (l *Loader) check(importPath, dir string, files []parsedFile) (*Pkg, error) {
	asts := make([]*ast.File, len(files))
	isTest := make(map[*ast.File]bool, len(files))
	for i, p := range files {
		asts[i] = p.file
		isTest[p.file] = p.isTest
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.fset, asts, info)
	if err != nil {
		return nil, err
	}
	return &Pkg{
		Fset:       l.fset,
		ImportPath: importPath,
		Dir:        dir,
		Files:      asts,
		IsTestFile: isTest,
		Info:       info,
		Types:      tpkg,
	}, nil
}

// LoadModule walks the module rooted at root (its go.mod names the
// module path) and loads every package directory, skipping testdata,
// VCS, and hidden directories.
func (l *Loader) LoadModule(root string) ([]*Pkg, error) {
	return l.LoadTree(root, root)
}

// LoadTree loads every package directory under start, resolving import
// paths against the module rooted at root.
func (l *Loader) LoadTree(root, start string) ([]*Pkg, error) {
	return l.LoadTreeParallel(root, start, 1)
}

// LoadTreeParallel is LoadTree across a bounded worker pool (the
// experiments.forEachCell shape): each package directory is parsed and
// typechecked on one of `workers` goroutines, with 0 meaning
// GOMAXPROCS. Results come back in sorted directory order regardless
// of completion order, so diagnostic output stays deterministic.
func (l *Loader) LoadTreeParallel(root, start string, workers int) ([]*Pkg, error) {
	modPath, dirs, err := moduleDirs(root, start)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(dirs) {
		workers = len(dirs)
	}
	results := make([][]*Pkg, len(dirs))
	errs := make([]error, len(dirs))
	if workers <= 1 {
		for i, dir := range dirs {
			results[i], errs[i] = l.loadDirAt(modPath, root, dir)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i], errs[i] = l.loadDirAt(modPath, root, dirs[i])
				}
			}()
		}
		for i := range dirs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	var pkgs []*Pkg
	for i := range dirs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		pkgs = append(pkgs, results[i]...)
	}
	return pkgs, nil
}

// moduleDirs walks the tree under start, returning the module path and
// the sorted package directory candidates (testdata, hidden, and
// underscore directories skipped).
func moduleDirs(root, start string) (string, []string, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", nil, err
	}
	var dirs []string
	err = filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != start && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return "", nil, err
	}
	sort.Strings(dirs)
	return modPath, dirs, nil
}

// loadDirAt loads one directory with its module-relative import path.
func (l *Loader) loadDirAt(modPath, root, dir string) ([]*Pkg, error) {
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	importPath := modPath
	if rel != "." {
		importPath = modPath + "/" + filepath.ToSlash(rel)
	}
	return l.LoadDir(dir, importPath)
}

// modulePath reads the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s", gomod)
}
