package analysis

import "sort"

// Solve runs a forward worklist fixed point over an arbitrary directed
// graph. Seeds carry the initial facts; whenever a node's fact is set
// or changed, its successors (per out) are revisited. transfer merges
// an incoming fact into the target node's current fact: it receives
// the edge (from, fact) and the target's current fact (with ok=false
// on first visit) and returns the new fact plus whether it changed.
// The result maps every node that ended up with a fact to that fact.
//
// Nodes are processed in sorted key order (per less) so runs are
// deterministic regardless of map iteration; analyzers rely on this
// for stable diagnostic output (e.g. which hot-path chain a shared
// callee is attributed to).
//
// Termination is the caller's contract: transfer must be monotone over
// a finite fact domain (hot-reachability and transitive-blocking both
// use "fact present" as their lattice, which trivially converges).
func Solve[N comparable, F any](
	seeds map[N]F,
	out func(N) []N,
	transfer func(node N, cur F, ok bool, from N, fact F) (F, bool),
	less func(a, b N) bool,
) map[N]F {
	facts := make(map[N]F, len(seeds))
	var work []N
	for n, f := range seeds {
		facts[n] = f
		work = append(work, n)
	}
	sort.Slice(work, func(i, j int) bool { return less(work[i], work[j]) })
	queued := make(map[N]bool, len(work))
	for _, n := range work {
		queued[n] = true
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		queued[n] = false
		fact := facts[n]
		for _, succ := range sortedNodes(out(n), less) {
			cur, ok := facts[succ]
			next, changed := transfer(succ, cur, ok, n, fact)
			if !changed {
				continue
			}
			facts[succ] = next
			if !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return facts
}

func sortedNodes[N comparable](nodes []N, less func(a, b N) bool) []N {
	if len(nodes) < 2 {
		return nodes
	}
	cp := make([]N, len(nodes))
	copy(cp, nodes)
	sort.Slice(cp, func(i, j int) bool { return less(cp[i], cp[j]) })
	return cp
}

// Reachable is the common degenerate Solve instance: the set of nodes
// reachable from seeds along out edges, with each reached node mapped
// to its predecessor on some shortest discovery path (seeds map to
// themselves). The predecessor chain reconstructs a witness path for
// diagnostics.
func Reachable[N comparable](
	seeds []N,
	out func(N) []N,
	less func(a, b N) bool,
) map[N]N {
	seedFacts := make(map[N]N, len(seeds))
	for _, n := range seeds {
		seedFacts[n] = n
	}
	return Solve(seedFacts, out,
		func(_ N, cur N, ok bool, from N, _ N) (N, bool) {
			if ok {
				return cur, false
			}
			return from, true
		}, less)
}
