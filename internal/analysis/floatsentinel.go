package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatSentinel flags ==/!= comparisons between a floating-point
// expression and a non-zero constant in non-test code. The wire format
// encodes unreachable distances as -1; FromWire's original
// `d == Unreachable` accepted exactly -1 and mis-decoded every other
// negative (or nearly-minus-one) value a hostile or lossy peer could
// send. Sentinel checks on floats must be range predicates (d < 0) or
// math.IsInf/IsNaN, not exact equality. Comparison against exactly
// zero is exempt: zero is preserved by the wire and is the idiomatic
// unset value.
var FloatSentinel = &Analyzer{
	Name: "floatsentinel",
	Doc:  "no ==/!= between float expressions and non-zero constants; use range predicates",
	Run:  runFloatSentinel,
}

func runFloatSentinel(p *Pkg) []Finding {
	var out []Finding
	for _, f := range p.Files {
		if p.IsTestFile[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(p, bin.X) && !isFloat(p, bin.Y) {
				return true
			}
			cx, cy := constValue(p, bin.X), constValue(p, bin.Y)
			if cx != nil && cy != nil {
				return true // constant folding; decided at compile time
			}
			c := cx
			if c == nil {
				c = cy
			}
			if c == nil || isZero(c) {
				return true
			}
			out = append(out, Finding{
				Pos:  p.Fset.Position(bin.Pos()),
				Rule: "floatsentinel",
				Msg:  "float compared " + bin.Op.String() + " against constant " + c.String() + "; use a range predicate (e.g. d < 0) or math.IsInf/IsNaN for sentinels",
			})
			return true
		})
	}
	return out
}

func isFloat(p *Pkg, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func constValue(p *Pkg, e ast.Expr) constant.Value {
	return p.Info.Types[e].Value
}

func isZero(v constant.Value) bool {
	if v.Kind() != constant.Int && v.Kind() != constant.Float {
		return false
	}
	return constant.Compare(v, token.EQL, constant.MakeInt64(0))
}
