package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildTestCFG parses body as the statements of a function and builds
// its control-flow graph.
func buildTestCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package x\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body)
}

// TestBuildCFG pins the block structure of every statement shape the
// builder handles, via the String rendering ("index:kind -> succs").
// Entry is always block 0 and Exit block 1.
func TestBuildCFG(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{
			name: "straight line",
			body: "a()\nb()",
			want: "0:entry -> 1\n1:exit\n",
		},
		{
			name: "if else",
			body: "if c {\n\ta()\n} else {\n\tb()\n}\nd()",
			want: "0:entry -> 2,4\n" +
				"1:exit\n" +
				"2:if.then -> 3\n" +
				"3:if.done -> 1\n" +
				"4:if.else -> 3\n",
		},
		{
			name: "if without else",
			body: "if c {\n\ta()\n}\nb()",
			want: "0:entry -> 2,3\n" +
				"1:exit\n" +
				"2:if.then -> 3\n" +
				"3:if.done -> 1\n",
		},
		{
			name: "early return",
			body: "if c {\n\treturn\n}\na()",
			want: "0:entry -> 2,4\n" +
				"1:exit\n" +
				"2:if.then -> 1\n" +
				"3:unreachable -> 4\n" +
				"4:if.done -> 1\n",
		},
		{
			name: "for with break and continue",
			body: "for i := 0; i < n; i++ {\n" +
				"\tif i == 3 {\n\t\tbreak\n\t}\n" +
				"\tif i == 1 {\n\t\tcontinue\n\t}\n" +
				"\ta()\n}\nb()",
			want: "0:entry -> 2\n" +
				"1:exit\n" +
				"2:for.head -> 3,5\n" +
				"3:for.done -> 1\n" +
				"4:for.post -> 2\n" +
				"5:for.body -> 6,8\n" +
				"6:if.then -> 3\n" +
				"7:unreachable -> 8\n" +
				"8:if.done -> 9,11\n" +
				"9:if.then -> 4\n" +
				"10:unreachable -> 11\n" +
				"11:if.done -> 4\n",
		},
		{
			name: "conditionless for never reaches done",
			body: "for {\n\ta()\n}",
			want: "0:entry -> 2\n" +
				"1:exit\n" +
				"2:for.head -> 4\n" +
				"3:for.done -> 1\n" +
				"4:for.body -> 2\n",
		},
		{
			name: "range",
			body: "for _, v := range xs {\n\ta(v)\n}\nb()",
			want: "0:entry -> 2\n" +
				"1:exit\n" +
				"2:range.head -> 3,4\n" +
				"3:range.done -> 1\n" +
				"4:range.body -> 2\n",
		},
		{
			name: "switch with fallthrough and default",
			body: "switch x {\ncase 1:\n\ta()\n\tfallthrough\ncase 2:\n\tb()\ndefault:\n\tc()\n}\nd()",
			want: "0:entry -> 3,4,5\n" +
				"1:exit\n" +
				"2:switch.done -> 1\n" +
				"3:case -> 4\n" +
				"4:case -> 2\n" +
				"5:case -> 2\n",
		},
		{
			name: "switch without default can skip every case",
			body: "switch x {\ncase 1:\n\ta()\n}",
			want: "0:entry -> 2,3\n" +
				"1:exit\n" +
				"2:switch.done -> 1\n" +
				"3:case -> 2\n",
		},
		{
			name: "select without default has no fall-through edge",
			body: "select {\ncase v := <-ch:\n\ta(v)\ncase ch2 <- 1:\n\tb()\n}\nc()",
			want: "0:entry -> 3,4\n" +
				"1:exit\n" +
				"2:select.done -> 1\n" +
				"3:comm -> 2\n" +
				"4:comm -> 2\n",
		},
		{
			name: "defer chains off exit, panic exits",
			body: "defer a()\nif c {\n\tpanic(\"boom\")\n}\nb()",
			want: "0:entry -> 2,4\n" +
				"1:exit -> 5\n" +
				"2:if.then -> 1\n" +
				"3:unreachable -> 4\n" +
				"4:if.done -> 1\n" +
				"5:defer\n",
		},
		{
			name: "lifo defers",
			body: "defer a()\ndefer b()\nc()",
			want: "0:entry -> 1\n" +
				"1:exit -> 2\n" +
				"2:defer -> 3\n" +
				"3:defer\n",
		},
		{
			name: "goto and labeled break",
			body: "loop:\n\tfor {\n\t\tif c {\n\t\t\tbreak loop\n\t\t}\n\t\tgoto out\n\t}\nout:\n\ta()",
			want: "0:entry -> 2\n" +
				"1:exit\n" +
				"2:label.loop -> 3\n" +
				"3:for.head -> 5\n" +
				"4:for.done -> 10\n" +
				"5:for.body -> 6,8\n" +
				"6:if.then -> 4\n" +
				"7:unreachable -> 8\n" +
				"8:if.done -> 10\n" +
				"9:unreachable -> 3\n" +
				"10:label.out -> 1\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := buildTestCFG(t, tc.body).String()
			if got != tc.want {
				t.Errorf("CFG mismatch\n got:\n%s\nwant:\n%s", got, tc.want)
			}
		})
	}
}

// TestSolveJoins checks that Solve merges facts flowing in over
// multiple edges and converges on a cyclic graph: shortest hop count
// from node 1 over edges with a cycle.
func TestSolveJoins(t *testing.T) {
	edges := map[int][]int{1: {2, 3}, 2: {4}, 3: {4}, 4: {2, 5}}
	dist := Solve(map[int]int{1: 0},
		func(n int) []int { return edges[n] },
		func(_ int, cur int, ok bool, _ int, fact int) (int, bool) {
			if ok && cur <= fact+1 {
				return cur, false
			}
			return fact + 1, true
		},
		func(a, b int) bool { return a < b })
	want := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 5: 3}
	if len(dist) != len(want) {
		t.Fatalf("dist = %v, want %v", dist, want)
	}
	for n, d := range want {
		if dist[n] != d {
			t.Errorf("dist[%d] = %d, want %d", n, dist[n], d)
		}
	}
}

// TestReachableWitness checks the parent map: seeds map to themselves
// and every reached node's chain walks back to a seed.
func TestReachableWitness(t *testing.T) {
	edges := map[string][]string{"root": {"a"}, "a": {"b"}, "b": {"a"}, "x": {"y"}}
	parent := Reachable([]string{"root"},
		func(n string) []string { return edges[n] },
		func(a, b string) bool { return a < b })
	if parent["root"] != "root" {
		t.Errorf("seed parent = %q, want itself", parent["root"])
	}
	if parent["a"] != "root" || parent["b"] != "a" {
		t.Errorf("parents = %v, want a<-root, b<-a", parent)
	}
	if _, ok := parent["x"]; ok {
		t.Errorf("unreachable node x has a parent")
	}
	if _, ok := parent["y"]; ok {
		t.Errorf("unreachable node y has a parent")
	}
}
