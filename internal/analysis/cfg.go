package analysis

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// CFG is a per-function control-flow graph over basic blocks. It is
// built purely from syntax (go/ast): every function body yields one
// Entry block, one Exit block that all returns, panics, and the final
// fallthrough feed into, and a chain of deferred-call blocks hanging
// off Exit in LIFO order (so path-sensitive analyses see deferred
// work as running after every exit).
//
// The graph is conservative rather than precise: conditions are not
// evaluated (both branch edges always exist), `for { ... }` with no
// condition has no exit edge past break/return, and a select with no
// default has no fall-through edge (it blocks until a case fires).
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// Block is one basic block: a straight-line run of statements and
// sub-expressions with branching only at the end, via Succs.
type Block struct {
	Index int
	// Kind labels where the block came from ("entry", "exit",
	// "if.then", "for.head", "case", "defer", ...); it exists for
	// tests and debugging, not analysis logic.
	Kind  string
	Nodes []ast.Node
	Succs []*Block
}

func (b *Block) add(n ast.Node) { b.Nodes = append(b.Nodes, n) }

// String renders the graph one block per line as
// "index:kind -> succ,succ" for table-driven tests.
func (c *CFG) String() string {
	var sb strings.Builder
	for _, b := range c.Blocks {
		fmt.Fprintf(&sb, "%d:%s", b.Index, b.Kind)
		if len(b.Succs) > 0 {
			idx := make([]int, len(b.Succs))
			for i, s := range b.Succs {
				idx[i] = s.Index
			}
			sort.Ints(idx)
			sb.WriteString(" -> ")
			for i, n := range idx {
				if i > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "%d", n)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// BuildCFG builds the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		c:      &CFG{},
		labels: map[string]*Block{},
	}
	b.c.Entry = b.newBlock("entry")
	b.c.Exit = b.newBlock("exit")
	b.cur = b.c.Entry
	b.stmts(body.List)
	b.edge(b.cur, b.c.Exit)
	for _, g := range b.gotos {
		if target := b.labels[g.label]; target != nil {
			b.edge(g.from, target)
		}
	}
	// Deferred calls run after every function exit, last-in first-out.
	tail := b.c.Exit
	for i := len(b.defers) - 1; i >= 0; i-- {
		db := b.newBlock("defer")
		db.add(b.defers[i])
		b.edge(tail, db)
		tail = db
	}
	return b.c
}

type cfgBuilder struct {
	c   *CFG
	cur *Block
	// frames tracks enclosing breakable statements (loops, switch,
	// select) for break/continue resolution, innermost last.
	frames []breakFrame
	labels map[string]*Block
	gotos  []pendingGoto
	defers []*ast.DeferStmt
	// pendingLabel is the label of a LabeledStmt whose inner statement
	// is about to be built; loops and switches consume it so labeled
	// break/continue can find them.
	pendingLabel string
}

type breakFrame struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.c.Blocks), Kind: kind}
	b.c.Blocks = append(b.c.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// deadBlock starts a predecessor-less block for statements after an
// unconditional jump; they stay in the graph but are unreachable from
// Entry, which is exactly what path analyses should see.
func (b *cfgBuilder) deadBlock() {
	b.cur = b.newBlock("unreachable")
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, st := range list {
		b.stmt(st)
	}
}

func (b *cfgBuilder) stmt(st ast.Stmt) {
	label := b.takeLabel()
	switch st := st.(type) {
	case *ast.ReturnStmt:
		b.cur.add(st)
		b.edge(b.cur, b.c.Exit)
		b.deadBlock()
	case *ast.BranchStmt:
		b.branch(st)
	case *ast.ExprStmt:
		b.cur.add(st)
		if isPanicCall(st.X) {
			b.edge(b.cur, b.c.Exit)
			b.deadBlock()
		}
	case *ast.DeferStmt:
		b.cur.add(st)
		b.defers = append(b.defers, st)
	case *ast.BlockStmt:
		b.stmts(st.List)
	case *ast.IfStmt:
		b.ifStmt(st)
	case *ast.ForStmt:
		b.forStmt(st, label)
	case *ast.RangeStmt:
		b.rangeStmt(st, label)
	case *ast.SwitchStmt:
		b.switchLike(st, st.Init, st.Tag, st.Body, label, "switch")
	case *ast.TypeSwitchStmt:
		b.switchLike(st, st.Init, nil, st.Body, label, "typeswitch")
	case *ast.SelectStmt:
		b.selectStmt(st, label)
	case *ast.LabeledStmt:
		target := b.newBlock("label." + st.Label.Name)
		b.edge(b.cur, target)
		b.cur = target
		b.labels[st.Label.Name] = target
		b.pendingLabel = st.Label.Name
		b.stmt(st.Stmt)
	default:
		b.cur.add(st)
	}
}

func (b *cfgBuilder) branch(st *ast.BranchStmt) {
	b.cur.add(st)
	label := ""
	if st.Label != nil {
		label = st.Label.Name
	}
	switch st.Tok.String() {
	case "break":
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if label == "" || f.label == label {
				b.edge(b.cur, f.brk)
				break
			}
		}
		b.deadBlock()
	case "continue":
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.cont != nil && (label == "" || f.label == label) {
				b.edge(b.cur, f.cont)
				break
			}
		}
		b.deadBlock()
	case "goto":
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
		b.deadBlock()
	case "fallthrough":
		// The edge to the next case clause is wired by switchLike.
	}
}

func (b *cfgBuilder) ifStmt(st *ast.IfStmt) {
	if st.Init != nil {
		b.cur.add(st.Init)
	}
	b.cur.add(st.Cond)
	cond := b.cur

	then := b.newBlock("if.then")
	b.edge(cond, then)
	b.cur = then
	b.stmts(st.Body.List)
	thenEnd := b.cur

	done := b.newBlock("if.done")
	if st.Else != nil {
		els := b.newBlock("if.else")
		b.edge(cond, els)
		b.cur = els
		b.stmt(st.Else)
		b.edge(b.cur, done)
	} else {
		b.edge(cond, done)
	}
	b.edge(thenEnd, done)
	b.cur = done
}

func (b *cfgBuilder) forStmt(st *ast.ForStmt, label string) {
	if st.Init != nil {
		b.cur.add(st.Init)
	}
	head := b.newBlock("for.head")
	b.edge(b.cur, head)
	done := b.newBlock("for.done")
	if st.Cond != nil {
		head.add(st.Cond)
		b.edge(head, done)
	}
	cont := head
	var post *Block
	if st.Post != nil {
		post = b.newBlock("for.post")
		post.add(st.Post)
		b.edge(post, head)
		cont = post
	}
	body := b.newBlock("for.body")
	b.edge(head, body)
	b.frames = append(b.frames, breakFrame{label: label, brk: done, cont: cont})
	b.cur = body
	b.stmts(st.Body.List)
	b.edge(b.cur, cont)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *cfgBuilder) rangeStmt(st *ast.RangeStmt, label string) {
	b.cur.add(st.X)
	head := b.newBlock("range.head")
	b.edge(b.cur, head)
	done := b.newBlock("range.done")
	b.edge(head, done)
	body := b.newBlock("range.body")
	b.edge(head, body)
	b.frames = append(b.frames, breakFrame{label: label, brk: done, cont: head})
	b.cur = body
	b.stmts(st.Body.List)
	b.edge(b.cur, head)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

// switchLike builds switch and type-switch graphs: the tag block fans
// out to every case clause; clauses without fallthrough feed the done
// block; a missing default adds a tag->done edge.
func (b *cfgBuilder) switchLike(st ast.Stmt, init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, label, kind string) {
	if init != nil {
		b.cur.add(init)
	}
	if tag != nil {
		b.cur.add(tag)
	}
	if ts, ok := st.(*ast.TypeSwitchStmt); ok {
		b.cur.add(ts.Assign)
	}
	cond := b.cur
	done := b.newBlock(kind + ".done")
	b.frames = append(b.frames, breakFrame{label: label, brk: done})

	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock("case")
		for _, e := range c.List {
			blocks[i].add(e)
		}
		if c.List == nil {
			hasDefault = true
		}
		b.edge(cond, blocks[i])
	}
	if !hasDefault {
		b.edge(cond, done)
	}
	for i, c := range clauses {
		b.cur = blocks[i]
		b.stmts(c.Body)
		if endsInFallthrough(c.Body) && i+1 < len(blocks) {
			b.edge(b.cur, blocks[i+1])
		} else {
			b.edge(b.cur, done)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *cfgBuilder) selectStmt(st *ast.SelectStmt, label string) {
	cond := b.cur
	done := b.newBlock("select.done")
	b.frames = append(b.frames, breakFrame{label: label, brk: done})
	// No default clause means the select blocks until some case fires,
	// so there is never a cond->done edge: either a case runs, or (with
	// zero cases) the statement never completes.
	for _, c := range st.Body.List {
		comm := c.(*ast.CommClause)
		blk := b.newBlock("comm")
		if comm.Comm != nil {
			blk.add(comm.Comm)
		}
		b.edge(cond, blk)
		b.cur = blk
		b.stmts(comm.Body)
		b.edge(b.cur, done)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

// endsInFallthrough reports whether a case clause body's final
// statement is a fallthrough (which the spec only allows there).
func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

// isPanicCall reports whether e is a call to the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
