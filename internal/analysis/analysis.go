// Package analysis hosts p4pvet's repo-specific static analyzers. Each
// analyzer mechanically enforces an invariant whose violation has
// already cost this codebase a production-class bug (see DESIGN.md §8):
//
//   - lockheld: no sync mutex held across I/O, network, or JSON
//     encode/decode calls (the serialized-distance-query bug).
//   - respwrite: no json.Encoder writing straight into an
//     http.ResponseWriter (the truncated-200 bug).
//   - ctxflow: library code threads the caller's context.Context
//     instead of minting context.Background()/TODO().
//   - floatsentinel: no ==/!= between float expressions and non-zero
//     constants (the d == Unreachable wire-sentinel pattern).
//   - sleeptest: no wall-clock time.Sleep in _test.go files (the
//     flaky-under-race test class).
//   - spanend: every *Span assigned from a Start* call is ended on
//     all paths (a leaked span silently drops its trace subtree).
//   - allochot: functions annotated //p4p:hotpath — and everything
//     statically reachable from them in the module call graph, minus
//     //p4p:coldpath cuts — must be allocation-free.
//   - goroleak: every go statement carries a termination witness
//     (context plumbed in, WaitGroup.Done, or a channel signal).
//   - atomicmix: a field or variable accessed through sync/atomic is
//     never read or written plainly anywhere in the module.
//
// lockheld additionally runs an interprocedural pass over the module
// call graph: a mutex held across a call whose callee transitively
// blocks is reported with the full call chain.
//
// Findings can be suppressed, one rule at a time, with a mandatory
// reason:
//
//	//p4pvet:ignore <rule> <reason...>
//
// placed either at the end of the offending line or on its own line
// immediately above it. A suppression without a reason (or naming an
// unknown rule) is itself reported under the rule name "suppress".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at a position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Analyzer is one named check. Run (if set) inspects one typechecked
// unit at a time; RunModule (if set) inspects the whole module at once
// with the call graph available. An analyzer may implement either or
// both — lockheld does both: its intraprocedural pass reports direct
// blocking calls per package, its module pass adds transitive ones.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(p *Pkg) []Finding
	RunModule func(m *Module) []Finding
}

// Analyzers returns every registered analyzer, in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{LockHeld, RespWrite, CtxFlow, FloatSentinel, SleepTest, SpanEnd,
		AllocHot, GoroLeak, AtomicMix}
}

// suppressRule names the pseudo-rule under which malformed
// //p4pvet:ignore comments are reported.
const suppressRule = "suppress"

const ignoreMarker = "p4pvet:ignore"

// Suppressions indexes //p4pvet:ignore comments by file and line.
type Suppressions struct {
	// byLine maps filename -> line -> set of suppressed rules.
	byLine map[string]map[int]map[string]bool
}

// Suppressed reports whether a finding is covered by an ignore comment
// on its own line or the line above.
func (s *Suppressions) Suppressed(f Finding) bool {
	lines := s.byLine[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		if lines[line][f.Rule] {
			return true
		}
	}
	return false
}

// ParseSuppressions scans a package's comments for //p4pvet:ignore
// markers. Malformed markers — a missing reason, or a rule no analyzer
// implements — are returned as findings so they fail the build instead
// of silently suppressing nothing.
func ParseSuppressions(p *Pkg) (*Suppressions, []Finding) {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	s := &Suppressions{byLine: map[string]map[int]map[string]bool{}}
	var bad []Finding
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rule, errMsg, ok := parseIgnoreDirective(c.Text, known)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				if errMsg != "" {
					bad = append(bad, Finding{Pos: pos, Rule: suppressRule, Msg: errMsg})
					continue
				}
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					s.byLine[pos.Filename] = lines
				}
				if lines[pos.Line] == nil {
					lines[pos.Line] = map[string]bool{}
				}
				lines[pos.Line][rule] = true
			}
		}
	}
	return s, bad
}

// parseIgnoreDirective parses one comment's text as a p4pvet:ignore
// directive. ok is false when the comment is not a directive at all.
// For directives, errMsg is non-empty when the directive is malformed
// (no rule, unknown rule, or missing reason) and describes why;
// otherwise rule names the validated suppressed rule. This is the unit
// the FuzzIgnoreDirective target exercises.
func parseIgnoreDirective(comment string, known map[string]bool) (rule, errMsg string, ok bool) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, ignoreMarker)
	if !ok {
		return "", "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "p4pvet:ignore needs a rule name and a reason", true
	}
	rule = fields[0]
	if !known[rule] {
		return "", fmt.Sprintf("p4pvet:ignore names unknown rule %q", rule), true
	}
	if len(fields) < 2 {
		return "", fmt.Sprintf("p4pvet:ignore %s is missing its mandatory reason", rule), true
	}
	return rule, "", true
}

// RunAll runs the given analyzers over a package and applies its
// suppressions, returning the live findings and the count of
// suppressed ones. Malformed suppressions are appended as "suppress"
// findings.
func RunAll(p *Pkg, analyzers []*Analyzer) (kept []Finding, suppressed int) {
	sup, bad := ParseSuppressions(p)
	var all []Finding
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		all = append(all, a.Run(p)...)
	}
	for _, f := range all {
		if sup.Suppressed(f) {
			suppressed++
			continue
		}
		kept = append(kept, f)
	}
	kept = append(kept, bad...)
	SortFindings(kept)
	return kept, suppressed
}

// RunModuleAll runs the module-wide passes of the given analyzers over
// one module, applying the union of every unit's suppressions (a
// module finding lands in some unit's file, so its ignore comment
// lives there too). Malformed suppressions are NOT re-reported here —
// RunAll already owns that per unit.
func RunModuleAll(m *Module, analyzers []*Analyzer) (kept []Finding, suppressed int) {
	sups := make([]*Suppressions, 0, len(m.Pkgs))
	for _, p := range m.Pkgs {
		s, _ := ParseSuppressions(p)
		sups = append(sups, s)
	}
	var all []Finding
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		all = append(all, a.RunModule(m)...)
	}
	for _, f := range all {
		sup := false
		for _, s := range sups {
			if s.Suppressed(f) {
				sup = true
				break
			}
		}
		if sup {
			suppressed++
			continue
		}
		kept = append(kept, f)
	}
	SortFindings(kept)
	return kept, suppressed
}

// sortFindings orders findings by file, then line, then rule, the
// order every driver and test relies on.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
}

// inspectSkippingFuncLits walks n, calling fn for every node, but does
// not descend into function literals: their bodies execute under their
// own locking discipline, not the enclosing function's.
func inspectSkippingFuncLits(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
