// Package analysis hosts p4pvet's repo-specific static analyzers. Each
// analyzer mechanically enforces an invariant whose violation has
// already cost this codebase a production-class bug (see DESIGN.md §8):
//
//   - lockheld: no sync mutex held across I/O, network, or JSON
//     encode/decode calls (the serialized-distance-query bug).
//   - respwrite: no json.Encoder writing straight into an
//     http.ResponseWriter (the truncated-200 bug).
//   - ctxflow: library code threads the caller's context.Context
//     instead of minting context.Background()/TODO().
//   - floatsentinel: no ==/!= between float expressions and non-zero
//     constants (the d == Unreachable wire-sentinel pattern).
//   - sleeptest: no wall-clock time.Sleep in _test.go files (the
//     flaky-under-race test class).
//   - spanend: every *Span assigned from a Start* call is ended on
//     all paths (a leaked span silently drops its trace subtree).
//
// Findings can be suppressed, one rule at a time, with a mandatory
// reason:
//
//	//p4pvet:ignore <rule> <reason...>
//
// placed either at the end of the offending line or on its own line
// immediately above it. A suppression without a reason (or naming an
// unknown rule) is itself reported under the rule name "suppress".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at a position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Analyzer is one named check over a typechecked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pkg) []Finding
}

// Analyzers returns every registered analyzer, in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{LockHeld, RespWrite, CtxFlow, FloatSentinel, SleepTest, SpanEnd}
}

// suppressRule names the pseudo-rule under which malformed
// //p4pvet:ignore comments are reported.
const suppressRule = "suppress"

const ignoreMarker = "p4pvet:ignore"

// Suppressions indexes //p4pvet:ignore comments by file and line.
type Suppressions struct {
	// byLine maps filename -> line -> set of suppressed rules.
	byLine map[string]map[int]map[string]bool
}

// Suppressed reports whether a finding is covered by an ignore comment
// on its own line or the line above.
func (s *Suppressions) Suppressed(f Finding) bool {
	lines := s.byLine[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		if lines[line][f.Rule] {
			return true
		}
	}
	return false
}

// ParseSuppressions scans a package's comments for //p4pvet:ignore
// markers. Malformed markers — a missing reason, or a rule no analyzer
// implements — are returned as findings so they fail the build instead
// of silently suppressing nothing.
func ParseSuppressions(p *Pkg) (*Suppressions, []Finding) {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	s := &Suppressions{byLine: map[string]map[int]map[string]bool{}}
	var bad []Finding
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignoreMarker)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Finding{Pos: pos, Rule: suppressRule,
						Msg: "p4pvet:ignore needs a rule name and a reason"})
					continue
				}
				rule := fields[0]
				if !known[rule] {
					bad = append(bad, Finding{Pos: pos, Rule: suppressRule,
						Msg: fmt.Sprintf("p4pvet:ignore names unknown rule %q", rule)})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Finding{Pos: pos, Rule: suppressRule,
						Msg: fmt.Sprintf("p4pvet:ignore %s is missing its mandatory reason", rule)})
					continue
				}
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					s.byLine[pos.Filename] = lines
				}
				if lines[pos.Line] == nil {
					lines[pos.Line] = map[string]bool{}
				}
				lines[pos.Line][rule] = true
			}
		}
	}
	return s, bad
}

// RunAll runs the given analyzers over a package and applies its
// suppressions, returning the live findings and the count of
// suppressed ones. Malformed suppressions are appended as "suppress"
// findings.
func RunAll(p *Pkg, analyzers []*Analyzer) (kept []Finding, suppressed int) {
	sup, bad := ParseSuppressions(p)
	var all []Finding
	for _, a := range analyzers {
		all = append(all, a.Run(p)...)
	}
	for _, f := range all {
		if sup.Suppressed(f) {
			suppressed++
			continue
		}
		kept = append(kept, f)
	}
	kept = append(kept, bad...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return kept, suppressed
}

// inspectSkippingFuncLits walks n, calling fn for every node, but does
// not descend into function literals: their bodies execute under their
// own locking discipline, not the enclosing function's.
func inspectSkippingFuncLits(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
