package analysis

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// sharedLoader is reused across fixture tests so the source importer
// typechecks each stdlib dependency once.
var sharedLoader = sync.OnceValue(NewLoader)

func loadFixture(t *testing.T, name string) []*Pkg {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkgs, err := sharedLoader().LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s is empty", name)
	}
	return pkgs
}

// wantMarkers collects "// want rule..." comments as "file:line rule"
// expectation keys.
func wantMarkers(pkgs []*Pkg) map[string]bool {
	want := map[string]bool{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					for _, rule := range strings.Fields(rest) {
						want[fmt.Sprintf("%s:%d %s", filepath.Base(pos.Filename), pos.Line, rule)] = true
					}
				}
			}
		}
	}
	return want
}

// TestAnalyzersOnFixtures runs every analyzer — both the per-unit
// passes and the module-wide ones, with each fixture treated as its own
// mini-module — over each fixture package and requires the surviving
// findings to match the fixture's // want markers exactly: every bad
// pattern fires, every good pattern stays silent, in both directions.
func TestAnalyzersOnFixtures(t *testing.T) {
	cases := []struct {
		name string
		// extra expectations that cannot be expressed as trailing
		// markers (findings reported at a comment's own position).
		extra []string
	}{
		{name: "lockheld"},
		{name: "lockheldip"},
		{name: "respwrite"},
		{name: "ctxflow"},
		{name: "ctxmain"},
		{name: "floatsentinel"},
		{name: "sleeptest"},
		{name: "spanend"},
		{name: "allochot"},
		{name: "goroleak"},
		{name: "atomicmix"},
		{name: "suppress", extra: []string{
			"suppress.go:21 suppress",
			"suppress.go:27 suppress",
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkgs := loadFixture(t, tc.name)
			want := wantMarkers(pkgs)
			for _, e := range tc.extra {
				want[e] = true
			}
			got := map[string]bool{}
			for _, p := range pkgs {
				kept, _ := RunAll(p, Analyzers())
				for _, f := range kept {
					got[fmt.Sprintf("%s:%d %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule)] = true
				}
			}
			modKept, _ := RunModuleAll(NewModule(pkgs), Analyzers())
			for _, f := range modKept {
				got[fmt.Sprintf("%s:%d %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule)] = true
			}
			for k := range want {
				if !got[k] {
					t.Errorf("expected finding missing: %s", k)
				}
			}
			for k := range got {
				if !want[k] {
					t.Errorf("unexpected finding: %s", k)
				}
			}
		})
	}
}

// TestSuppressionCounting checks that reasoned suppressions are
// counted rather than silently dropped.
func TestSuppressionCounting(t *testing.T) {
	pkgs := loadFixture(t, "suppress")
	total := 0
	for _, p := range pkgs {
		_, suppressed := RunAll(p, Analyzers())
		total += suppressed
	}
	if total != 2 {
		t.Fatalf("suppressed = %d, want 2 (wrapped + trailing)", total)
	}
}

// TestFindingsSorted checks RunAll's output ordering is by file, line,
// then rule, so driver output is stable across runs.
func TestFindingsSorted(t *testing.T) {
	pkgs := loadFixture(t, "lockheld")
	for _, p := range pkgs {
		kept, _ := RunAll(p, Analyzers())
		sorted := sort.SliceIsSorted(kept, func(i, j int) bool {
			a, b := kept[i], kept[j]
			if a.Pos.Filename != b.Pos.Filename {
				return a.Pos.Filename < b.Pos.Filename
			}
			if a.Pos.Line != b.Pos.Line {
				return a.Pos.Line < b.Pos.Line
			}
			return a.Rule < b.Rule
		})
		if !sorted {
			t.Fatalf("findings not sorted: %v", kept)
		}
	}
}

// TestLoaderSplitsTestFiles checks the loader marks _test.go files and
// keeps in-package tests in the same unit.
func TestLoaderSplitsTestFiles(t *testing.T) {
	pkgs := loadFixture(t, "sleeptest")
	if len(pkgs) != 1 {
		t.Fatalf("got %d units, want 1 (in-package test rides along)", len(pkgs))
	}
	var test, prod int
	for _, f := range pkgs[0].Files {
		if pkgs[0].IsTestFile[f] {
			test++
		} else {
			prod++
		}
	}
	if test != 1 || prod != 1 {
		t.Fatalf("test/prod split = %d/%d, want 1/1", test, prod)
	}
}

// TestLoaderHonorsBuildConstraints checks //go:build evaluation: of a
// race / !race const-guard pair only the default-build half loads (the
// pair would redeclare the constant), and a never-satisfiable
// constraint excludes its file entirely.
func TestLoaderHonorsBuildConstraints(t *testing.T) {
	pkgs := loadFixture(t, "buildtags")
	if len(pkgs) != 1 {
		t.Fatalf("got %d units, want 1", len(pkgs))
	}
	var names []string
	for _, f := range pkgs[0].Files {
		names = append(names, filepath.Base(pkgs[0].Fset.Position(f.Pos()).Filename))
	}
	sort.Strings(names)
	want := []string{"a.go", "guard_norace.go"}
	if len(names) != len(want) {
		t.Fatalf("loaded %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("loaded %v, want %v", names, want)
		}
	}
}
