package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// SpanEnd flags spans that can leak: a `Start*` call whose `*Span`
// result escapes into a variable must be ended on every path out of
// the function — `defer span.End()` anywhere in the function, or an
// explicit `span.End()` (or a return of the span itself, which hands
// ownership to the caller) reachable on all control-flow paths after
// the Start. A span that is never ended never reaches the collector:
// the trace silently loses its subtree, and for a root span the whole
// trace is dropped, which is exactly the kind of observability hole
// that only shows up during an outage. Matching is structural — any
// callee named Start* returning a pointer to a type named Span — so
// the fixture package needs no dependency on internal/trace.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "every *Span from a Start* call must be ended on all paths (prefer defer span.End())",
	Run:  runSpanEnd,
}

// endState is the verdict for one statement list during the path scan.
type endState int

const (
	// stFallthru: control reaches the end of the list with the span
	// still open.
	stFallthru endState = iota
	// stEnded: the span was ended (or its ownership returned) before
	// control left the list.
	stEnded
	// stBadExit: some path leaves the function (return, branch out)
	// with the span still open.
	stBadExit
)

func runSpanEnd(p *Pkg) []Finding {
	var out []Finding
	for _, f := range p.Files {
		if p.IsTestFile[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				out = append(out, checkSpanUnit(p, body)...)
			}
			return true // keep descending: nested funclits are their own units
		})
	}
	return out
}

// checkSpanUnit checks one function body (FuncDecl or FuncLit),
// ignoring nested function literals — they are separate units with
// their own span discipline.
func checkSpanUnit(p *Pkg, body *ast.BlockStmt) []Finding {
	var out []Finding
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(p, call)
		if callee == nil || !strings.HasPrefix(callee.Name(), "Start") {
			return true
		}
		for _, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			if obj == nil || !isSpanPointer(obj.Type()) {
				continue
			}
			if hasDeferredEnd(p, body, obj) {
				continue
			}
			found, st := checkAfterTarget(p, body.List, assign, obj)
			if !found || st != stEnded {
				out = append(out, Finding{
					Pos:  p.Fset.Position(assign.Pos()),
					Rule: "spanend",
					Msg: fmt.Sprintf("span %q from %s is not ended on every path; add `defer %s.End()` right after the Start call",
						id.Name, callee.Name(), id.Name),
				})
			}
		}
		return true
	})
	return out
}

// isSpanPointer reports whether t is *Span for any named type Span.
func isSpanPointer(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Span"
}

// isEndCall reports whether e is a call of obj.End(...).
func isEndCall(p *Pkg, e ast.Expr, obj types.Object) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && p.Info.Uses[id] == obj
}

// identRefers reports whether e is an identifier bound to obj.
func identRefers(p *Pkg, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && p.Info.Uses[id] == obj
}

// hasDeferredEnd reports whether the unit registers `defer obj.End()`
// anywhere (outside nested funclits). A deferred End runs on every exit
// path including panics, so its presence settles the check.
func hasDeferredEnd(p *Pkg, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && isEndCall(p, d.Call, obj) {
			found = true
		}
		return !found
	})
	return found
}

// containsStmt reports whether target sits anywhere inside n (funclits
// excluded; a target was collected outside them).
func containsStmt(n ast.Node, target ast.Stmt) bool {
	found := false
	inspectSkippingFuncLits(n, func(m ast.Node) bool {
		if m == ast.Node(target) {
			found = true
		}
		return !found
	})
	return found
}

// checkAfterTarget locates target within stmts (descending into the
// block structure) and scans the statements that execute after it.
func checkAfterTarget(p *Pkg, stmts []ast.Stmt, target ast.Stmt, obj types.Object) (bool, endState) {
	for i, s := range stmts {
		if ast.Node(s) == ast.Node(target) {
			return true, scanStmts(p, stmts[i+1:], obj)
		}
		if !containsStmt(s, target) {
			continue
		}
		found, st := targetInStmt(p, s, target, obj)
		if !found {
			// The target hides in a construct the scanner does not model
			// (e.g. an if-statement Init clause); be conservative.
			return true, stBadExit
		}
		if st == stEnded || st == stBadExit {
			return true, st
		}
		switch s.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			// Fell off a loop body with the span open: the next
			// iteration starts a fresh span and this one leaks.
			return true, stBadExit
		}
		return true, scanStmts(p, stmts[i+1:], obj)
	}
	return false, stFallthru
}

// targetInStmt descends into the sub-blocks of s looking for target.
func targetInStmt(p *Pkg, s ast.Stmt, target ast.Stmt, obj types.Object) (bool, endState) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return checkAfterTarget(p, st.List, target, obj)
	case *ast.LabeledStmt:
		return targetInStmt(p, st.Stmt, target, obj)
	case *ast.IfStmt:
		if containsStmt(st.Body, target) {
			return checkAfterTarget(p, st.Body.List, target, obj)
		}
		if st.Else != nil && containsStmt(st.Else, target) {
			switch el := st.Else.(type) {
			case *ast.BlockStmt:
				return checkAfterTarget(p, el.List, target, obj)
			case *ast.IfStmt:
				return targetInStmt(p, el, target, obj)
			}
		}
	case *ast.ForStmt:
		if containsStmt(st.Body, target) {
			return checkAfterTarget(p, st.Body.List, target, obj)
		}
	case *ast.RangeStmt:
		if containsStmt(st.Body, target) {
			return checkAfterTarget(p, st.Body.List, target, obj)
		}
	case *ast.SwitchStmt:
		return targetInClauses(p, st.Body.List, target, obj)
	case *ast.TypeSwitchStmt:
		return targetInClauses(p, st.Body.List, target, obj)
	case *ast.SelectStmt:
		return targetInClauses(p, st.Body.List, target, obj)
	}
	return false, stFallthru
}

// targetInClauses descends into switch/select clause bodies.
func targetInClauses(p *Pkg, clauses []ast.Stmt, target ast.Stmt, obj types.Object) (bool, endState) {
	for _, c := range clauses {
		switch cl := c.(type) {
		case *ast.CaseClause:
			if found, st := checkAfterTarget(p, cl.Body, target, obj); found {
				return true, st
			}
		case *ast.CommClause:
			if found, st := checkAfterTarget(p, cl.Body, target, obj); found {
				return true, st
			}
		}
	}
	return false, stFallthru
}

// scanStmts walks a statement list executed after the Start call and
// reports whether the span is ended before control leaves it.
func scanStmts(p *Pkg, stmts []ast.Stmt, obj types.Object) endState {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.ExprStmt:
			if isEndCall(p, st.X, obj) {
				return stEnded
			}
		case *ast.DeferStmt:
			if isEndCall(p, st.Call, obj) {
				return stEnded
			}
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if identRefers(p, r, obj) {
					return stEnded // ownership handed to the caller
				}
			}
			return stBadExit
		case *ast.BranchStmt:
			return stBadExit // break/continue/goto with the span open
		case *ast.BlockStmt:
			switch scanStmts(p, st.List, obj) {
			case stEnded:
				return stEnded
			case stBadExit:
				return stBadExit
			}
		case *ast.LabeledStmt:
			switch scanStmts(p, []ast.Stmt{st.Stmt}, obj) {
			case stEnded:
				return stEnded
			case stBadExit:
				return stBadExit
			}
		case *ast.IfStmt:
			thenSt := scanStmts(p, st.Body.List, obj)
			elseSt := stFallthru
			if st.Else != nil {
				switch el := st.Else.(type) {
				case *ast.BlockStmt:
					elseSt = scanStmts(p, el.List, obj)
				case *ast.IfStmt:
					elseSt = scanStmts(p, []ast.Stmt{el}, obj)
				}
			}
			if thenSt == stBadExit || elseSt == stBadExit {
				return stBadExit
			}
			if thenSt == stEnded && elseSt == stEnded {
				return stEnded
			}
			// Mixed: some path continues with the span open; keep scanning.
		case *ast.ForStmt:
			// The body may run zero times, so an End inside cannot prove
			// the span ends — but a bad exit inside is still bad.
			if scanStmts(p, st.Body.List, obj) == stBadExit {
				return stBadExit
			}
		case *ast.RangeStmt:
			if scanStmts(p, st.Body.List, obj) == stBadExit {
				return stBadExit
			}
		case *ast.SwitchStmt:
			switch scanClauses(p, st.Body.List, obj, hasDefaultClause(st.Body.List)) {
			case stEnded:
				return stEnded
			case stBadExit:
				return stBadExit
			}
		case *ast.TypeSwitchStmt:
			switch scanClauses(p, st.Body.List, obj, hasDefaultClause(st.Body.List)) {
			case stEnded:
				return stEnded
			case stBadExit:
				return stBadExit
			}
		case *ast.SelectStmt:
			// A select always executes exactly one clause.
			switch scanClauses(p, st.Body.List, obj, true) {
			case stEnded:
				return stEnded
			case stBadExit:
				return stBadExit
			}
		}
	}
	return stFallthru
}

// hasDefaultClause reports whether a switch body has a default case.
func hasDefaultClause(clauses []ast.Stmt) bool {
	for _, c := range clauses {
		if cl, ok := c.(*ast.CaseClause); ok && cl.List == nil {
			return true
		}
	}
	return false
}

// scanClauses merges the clause bodies of a switch/select: any bad exit
// is bad; all clauses ending (and the construct being exhaustive) ends
// the span; anything else falls through.
func scanClauses(p *Pkg, clauses []ast.Stmt, obj types.Object, exhaustive bool) endState {
	allEnded := len(clauses) > 0
	for _, c := range clauses {
		var body []ast.Stmt
		switch cl := c.(type) {
		case *ast.CaseClause:
			body = cl.Body
		case *ast.CommClause:
			body = cl.Body
		default:
			continue
		}
		switch scanStmts(p, body, obj) {
		case stBadExit:
			return stBadExit
		case stEnded:
		default:
			allEnded = false
		}
	}
	if allEnded && exhaustive {
		return stEnded
	}
	return stFallthru
}
