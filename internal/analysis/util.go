package analysis

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the *types.Func a call expression statically
// invokes: a package-level function, a method (through the selection),
// or nil for builtins, conversions, and calls of stored function
// values.
func calleeFunc(p *Pkg, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := p.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		// Package-qualified call (pkg.Func).
		f, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// funcPkgPath returns the import path of the package declaring f, or
// "" when there is none (builtins, error.Error).
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// isMethod reports whether f has a receiver.
func isMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// findImport locates an import path in the transitive imports of a
// typechecked package, so analyzers can reference types (e.g.
// net/http.ResponseWriter) from whichever load of that package this
// unit saw.
func findImport(start *types.Package, path string) *types.Package {
	seen := map[*types.Package]bool{}
	var walk func(p *types.Package) *types.Package
	walk = func(p *types.Package) *types.Package {
		if p == nil || seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == path {
			return p
		}
		for _, imp := range p.Imports() {
			if got := walk(imp); got != nil {
				return got
			}
		}
		return nil
	}
	return walk(start)
}
