package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// RespWrite flags json.NewEncoder constructed directly on an
// http.ResponseWriter in non-test code. Encoding straight into the
// response commits the 200 status on the first internal write; if the
// value then fails to encode (a NaN in a matrix, a broken Marshaler)
// the client receives a truncated 200 instead of an error. This is the
// PR 1 bug class; the fix is a buffered helper (portal's writeJSON)
// that marshals fully before touching the writer and turns encode
// failures into 500 envelopes.
var RespWrite = &Analyzer{
	Name: "respwrite",
	Doc:  "no json.Encoder writing directly into an http.ResponseWriter; buffer first",
	Run:  runRespWrite,
}

func runRespWrite(p *Pkg) []Finding {
	iface := responseWriterInterface(p)
	if iface == nil {
		return nil // package graph never touches net/http
	}
	var out []Finding
	for _, f := range p.Files {
		if p.IsTestFile[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Name() != "NewEncoder" || funcPkgPath(fn) != "encoding/json" {
				return true
			}
			argT := p.Info.TypeOf(call.Args[0])
			if argT == nil || !types.Implements(argT, iface) {
				return true
			}
			out = append(out, Finding{
				Pos:  p.Fset.Position(call.Pos()),
				Rule: "respwrite",
				Msg: fmt.Sprintf("json.NewEncoder on %s commits the status before encoding can fail; marshal to a buffer (writeJSON) so errors become 500 envelopes",
					types.TypeString(argT, types.RelativeTo(p.Types))),
			})
			return true
		})
	}
	return out
}

// responseWriterInterface digs net/http.ResponseWriter out of the
// package's transitive imports, or nil when net/http is not imported.
func responseWriterInterface(p *Pkg) *types.Interface {
	httpPkg := findImport(p.Types, "net/http")
	if httpPkg == nil {
		return nil
	}
	obj, ok := httpPkg.Scope().Lookup("ResponseWriter").(*types.TypeName)
	if !ok {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}
