package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockHeld flags blocking calls — network, file, and pipe I/O, JSON
// stream encode/decode, time.Sleep, sync.Cond/WaitGroup waits — made
// while a sync.Mutex or sync.RWMutex is held. This is the PR 1 bug
// class: the iTracker held its view mutex across the distance-matrix
// recompute and serialized every concurrent query behind it; held
// across actual I/O the same shape turns one slow client into a
// stalled portal.
//
// The per-package pass is intraprocedural and linear: it tracks
// Lock/RLock and Unlock/RUnlock on each mutex expression through a
// function body, treating `defer mu.Unlock()` as held-until-return
// (which it is — the point is what runs under the lock, not whether it
// is eventually released). Branch bodies are scanned with a copy of
// the held set, so the common early-unlock-and-return shape does not
// leak state out of its branch; a deferred unlock inside a branch,
// however, means the lock outlives the branch (it is released only at
// function return), so those locks are merged back into the outer
// held set. Function literals are scanned independently with an empty
// held set.
//
// The module pass extends the same check across function boundaries:
// a call made under a lock to a module function that *transitively*
// reaches a blocking call (through any chain of static, synchronous
// module-local calls) is reported with the full chain. Dynamic calls
// — interface methods and function values — are not followed; the
// analysis prefers silence over guessed targets there.
var LockHeld = &Analyzer{
	Name:      "lockheld",
	Doc:       "no sync mutex held across I/O, network, JSON encode/decode, or sleeps (directly or transitively)",
	Run:       runLockHeld,
	RunModule: runLockHeldModule,
}

// blockingFuncs lists package-level functions that block on I/O or the
// clock, by package path.
var blockingFuncs = map[string]map[string]bool{
	"time": set("Sleep"),
	"io": set("Copy", "CopyN", "CopyBuffer", "ReadAll", "ReadFull",
		"ReadAtLeast", "WriteString"),
	"os": set("Open", "OpenFile", "Create", "ReadFile", "WriteFile",
		"Remove", "RemoveAll", "Mkdir", "MkdirAll", "Rename", "Stat",
		"Lstat", "ReadDir", "Truncate"),
	"net": set("Dial", "DialTimeout", "DialIP", "DialTCP", "DialUDP",
		"DialUnix", "Listen", "ListenTCP", "ListenUDP", "ListenUnix",
		"ListenPacket", "LookupAddr", "LookupCNAME", "LookupHost",
		"LookupIP", "LookupMX", "LookupNS", "LookupPort", "LookupSRV",
		"LookupTXT"),
	"net/http": set("Get", "Head", "Post", "PostForm", "ReadRequest",
		"ReadResponse", "Serve", "ServeTLS", "ListenAndServe",
		"ListenAndServeTLS", "ServeContent", "ServeFile", "ServeFileFS",
		"Error", "NotFound", "Redirect"),
}

// blockingMethods lists methods that block, keyed by the package that
// declares them. A nil set means every method from that package (io's
// interfaces are I/O by definition).
var blockingMethods = map[string]map[string]bool{
	"io": nil,
	"net": set("Read", "Write", "Close", "Accept", "ReadFrom", "WriteTo",
		"ReadFromUDP", "WriteToUDP", "ReadMsgUDP", "WriteMsgUDP",
		"LookupAddr", "LookupCNAME", "LookupHost", "LookupIP", "LookupMX",
		"LookupNS", "LookupPort", "LookupSRV", "LookupTXT"),
	"net/http": set("Do", "Get", "Head", "Post", "PostForm", "Write",
		"WriteHeader", "Flush", "Shutdown", "Close", "Serve", "ServeTLS",
		"ListenAndServe", "ListenAndServeTLS", "ServeHTTP", "Read"),
	"bufio": set("Flush", "Read", "ReadByte", "ReadBytes", "ReadLine",
		"ReadRune", "ReadSlice", "ReadString", "Write", "WriteByte",
		"WriteRune", "WriteString", "WriteTo", "ReadFrom", "Peek",
		"Scan", "Discard"),
	"encoding/json": set("Encode", "Decode", "Token", "More"),
	"os": set("Read", "ReadAt", "ReadFrom", "Write", "WriteAt",
		"WriteString", "Close", "Sync", "Seek", "Readdir", "ReadDir",
		"Readdirnames", "Truncate", "Chmod", "Chown"),
	"sync": set("Wait"),
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// heldLock records where a mutex was taken and whether its release is
// deferred — a deferred unlock keeps the lock held until function
// return, so it escapes the branch that took it.
type heldLock struct {
	pos      token.Pos
	deferred bool
}

func runLockHeld(p *Pkg) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				s := &lockScanner{p: p}
				s.stmts(body.List, map[string]heldLock{})
				out = append(out, s.out...)
			}
			return true
		})
	}
	return out
}

type lockScanner struct {
	p   *Pkg
	out []Finding
	// summaries, when non-nil, switches the scanner to the
	// interprocedural pass: direct blocking calls are skipped (the
	// per-package pass already reported them) and calls to module
	// functions that transitively block are reported with their chain.
	summaries map[string]blockFact
	mod       *Module
}

// stmts walks a statement list, mutating held as Lock/Unlock calls are
// seen and reporting blocking calls made while held is non-empty.
func (s *lockScanner) stmts(list []ast.Stmt, held map[string]heldLock) {
	for _, st := range list {
		s.stmt(st, held)
	}
}

// branchStmts scans a branch body against a copy of the held set, then
// merges deferred locks back: `if cond { mu.Lock(); defer mu.Unlock() }`
// leaves the mutex held on every path after the branch.
func (s *lockScanner) branchStmts(list []ast.Stmt, held map[string]heldLock) {
	cp := copyHeld(held)
	s.stmts(list, cp)
	mergeDeferred(held, cp)
}

func (s *lockScanner) stmt(st ast.Stmt, held map[string]heldLock) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if op, key := s.mutexOp(call); op != "" {
				switch op {
				case "Lock", "RLock":
					held[key] = heldLock{pos: call.Pos()}
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				return
			}
		}
		s.check(st.X, held)
	case *ast.DeferStmt:
		if op, key := s.mutexOp(st.Call); op == "Unlock" || op == "RUnlock" {
			// The mutex stays held until return; later statements are
			// still scanned against it, and the deferred release makes
			// it outlive any branch it was taken in.
			if h, ok := held[key]; ok {
				h.deferred = true
				held[key] = h
			}
			return
		}
		// The deferred call itself runs at return, in an unknowable
		// order relative to deferred unlocks; only its arguments are
		// evaluated now.
		for _, a := range st.Call.Args {
			s.check(a, held)
		}
	case *ast.GoStmt:
		// The spawned goroutine does not hold this function's locks;
		// only the call's arguments are evaluated here.
		for _, a := range st.Call.Args {
			s.check(a, held)
		}
	case *ast.BlockStmt:
		s.stmts(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		s.check(st.Cond, held)
		s.branchStmts(st.Body.List, held)
		if st.Else != nil {
			cp := copyHeld(held)
			s.stmt(st.Else, cp)
			mergeDeferred(held, cp)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			s.check(st.Cond, held)
		}
		s.branchStmts(st.Body.List, held)
	case *ast.RangeStmt:
		s.check(st.X, held)
		s.branchStmts(st.Body.List, held)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			s.check(st.Tag, held)
		}
		for _, c := range st.Body.List {
			s.branchStmts(c.(*ast.CaseClause).Body, held)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			s.branchStmts(c.(*ast.CaseClause).Body, held)
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			s.branchStmts(c.(*ast.CommClause).Body, held)
		}
	case *ast.LabeledStmt:
		s.stmt(st.Stmt, held)
	default:
		s.check(st, held)
	}
}

func copyHeld(held map[string]heldLock) map[string]heldLock {
	cp := make(map[string]heldLock, len(held))
	for k, v := range held {
		cp[k] = v
	}
	return cp
}

// mergeDeferred copies branch-local locks with deferred releases back
// into the outer held set; they are held until function return.
func mergeDeferred(dst, branch map[string]heldLock) {
	for k, v := range branch {
		if v.deferred {
			if _, ok := dst[k]; !ok {
				dst[k] = v
			}
		}
	}
}

// check reports every blocking call inside n while held is non-empty.
func (s *lockScanner) check(n ast.Node, held map[string]heldLock) {
	if n == nil || len(held) == 0 {
		return
	}
	inspectSkippingFuncLits(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if what := directBlocking(s.p, call); what != "" {
			if s.summaries == nil {
				for key, h := range held {
					s.out = append(s.out, Finding{
						Pos:  s.p.Fset.Position(call.Pos()),
						Rule: "lockheld",
						Msg: fmt.Sprintf("%s called while %s is locked (at line %d); release the mutex before blocking",
							what, key, s.p.Fset.Position(h.pos).Line),
					})
				}
			}
			return true
		}
		if s.summaries != nil {
			s.checkTransitive(call, held)
		}
		return true
	})
}

// checkTransitive reports a call to a module function whose summary
// says it transitively blocks.
func (s *lockScanner) checkTransitive(call *ast.CallExpr, held map[string]heldLock) {
	f := calleeFunc(s.p, call)
	if f == nil || !s.mod.IsLocal(f) {
		return
	}
	if sel, ok := s.mod.selectionFor(s.p, call); ok && sel.Kind() == types.MethodVal &&
		types.IsInterface(sel.Recv().Underlying()) {
		return // dynamic dispatch: target unknown
	}
	key := f.FullName()
	if _, ok := s.summaries[key]; !ok {
		return
	}
	chain := blockChainString(s.summaries, key)
	for mutex, h := range held {
		s.out = append(s.out, Finding{
			Pos:  s.p.Fset.Position(call.Pos()),
			Rule: "lockheld",
			Msg: fmt.Sprintf("call to %s while %s is locked (at line %d) transitively blocks: %s; release the mutex before calling",
				shortFuncKey(key), mutex, s.p.Fset.Position(h.pos).Line, chain),
		})
	}
}

// mutexOp reports whether call is Lock/RLock/Unlock/RUnlock on a
// sync.Mutex, sync.RWMutex, or sync.Locker, returning the operation
// and the receiver expression as the mutex key.
func (s *lockScanner) mutexOp(call *ast.CallExpr) (op, key string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	f := calleeFunc(s.p, call)
	if funcPkgPath(f) != "sync" || !isMethod(f) {
		return "", ""
	}
	return name, types.ExprString(sel.X)
}

// directBlocking classifies a call as directly blocking, returning a
// short description of the callee or "".
func directBlocking(p *Pkg, call *ast.CallExpr) string {
	f := calleeFunc(p, call)
	if f == nil {
		return ""
	}
	pkg, name := funcPkgPath(f), f.Name()
	if isMethod(f) {
		names, ok := blockingMethods[pkg]
		if ok && (names == nil || names[name]) {
			return fmt.Sprintf("(%s).%s", pkg, name)
		}
		return ""
	}
	if blockingFuncs[pkg][name] {
		return pkg + "." + name
	}
	return ""
}

// blockFact is the transitive-blocking summary for one module
// function: either what blocks directly inside it, or via which callee
// the blocking is reached.
type blockFact struct {
	what string // non-empty for direct blockers: "(encoding/json).Encode"
	via  string // key of the callee the blocking flows through
}

// blockingSummaries computes, for every module function, whether
// calling it can block: seeded with functions containing a direct
// blocking call (deferred calls included — they run before the
// function returns; goroutine bodies and calls inside function
// literals excluded), then propagated caller-ward over static,
// synchronous call edges.
func blockingSummaries(m *Module) map[string]blockFact {
	seeds := map[string]blockFact{}
	keys := make([]string, 0, len(m.Funcs))
	for k := range m.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fi := m.Funcs[k]
		var what string
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if what != "" {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				return false
			case *ast.CallExpr:
				what = directBlocking(fi.Pkg, n)
			}
			return true
		})
		if what != "" {
			seeds[k] = blockFact{what: what}
		}
	}
	less := func(a, b string) bool { return a < b }
	return Solve(seeds, func(k string) []string {
		var out []string
		for _, cs := range m.Callers(k) {
			if cs.Kind == CallGo || cs.InFuncLit {
				continue
			}
			out = append(out, cs.Caller.Key)
		}
		return out
	}, func(_ string, cur blockFact, ok bool, from string, _ blockFact) (blockFact, bool) {
		if ok {
			return cur, false
		}
		return blockFact{via: from}, true
	}, less)
}

// blockChainString renders the chain from a transitively-blocking
// function down to the call that actually blocks:
// "helper -> writeOut -> (encoding/json).Encode".
func blockChainString(summaries map[string]blockFact, key string) string {
	var parts []string
	for cur := key; ; {
		parts = append(parts, shortFuncKey(cur))
		f := summaries[cur]
		if f.via == "" {
			parts = append(parts, f.what)
			break
		}
		cur = f.via
	}
	return strings.Join(parts, " -> ")
}

func runLockHeldModule(m *Module) []Finding {
	summaries := blockingSummaries(m)
	if len(summaries) == 0 {
		return nil
	}
	var out []Finding
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
				case *ast.FuncLit:
					body = fn.Body
				default:
					return true
				}
				if body != nil {
					s := &lockScanner{p: p, mod: m, summaries: summaries}
					s.stmts(body.List, map[string]heldLock{})
					out = append(out, s.out...)
				}
				return true
			})
		}
	}
	return out
}
