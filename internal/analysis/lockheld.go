package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LockHeld flags blocking calls — network, file, and pipe I/O, JSON
// stream encode/decode, time.Sleep, sync.Cond/WaitGroup waits — made
// while a sync.Mutex or sync.RWMutex is held. This is the PR 1 bug
// class: the iTracker held its view mutex across the distance-matrix
// recompute and serialized every concurrent query behind it; held
// across actual I/O the same shape turns one slow client into a
// stalled portal.
//
// The analysis is intraprocedural and linear: it tracks Lock/RLock and
// Unlock/RUnlock on each mutex expression through a function body,
// treating `defer mu.Unlock()` as held-until-return (which it is — the
// point is what runs under the lock, not whether it is eventually
// released). Branch bodies are scanned with a copy of the held set, so
// the common early-unlock-and-return shape does not leak state out of
// its branch. Function literals are scanned independently with an
// empty held set.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "no sync mutex held across I/O, network, JSON encode/decode, or sleeps",
	Run:  runLockHeld,
}

// blockingFuncs lists package-level functions that block on I/O or the
// clock, by package path.
var blockingFuncs = map[string]map[string]bool{
	"time": set("Sleep"),
	"io": set("Copy", "CopyN", "CopyBuffer", "ReadAll", "ReadFull",
		"ReadAtLeast", "WriteString"),
	"os": set("Open", "OpenFile", "Create", "ReadFile", "WriteFile",
		"Remove", "RemoveAll", "Mkdir", "MkdirAll", "Rename", "Stat",
		"Lstat", "ReadDir", "Truncate"),
	"net": set("Dial", "DialTimeout", "DialIP", "DialTCP", "DialUDP",
		"DialUnix", "Listen", "ListenTCP", "ListenUDP", "ListenUnix",
		"ListenPacket", "LookupAddr", "LookupCNAME", "LookupHost",
		"LookupIP", "LookupMX", "LookupNS", "LookupPort", "LookupSRV",
		"LookupTXT"),
	"net/http": set("Get", "Head", "Post", "PostForm", "ReadRequest",
		"ReadResponse", "Serve", "ServeTLS", "ListenAndServe",
		"ListenAndServeTLS", "ServeContent", "ServeFile", "ServeFileFS",
		"Error", "NotFound", "Redirect"),
}

// blockingMethods lists methods that block, keyed by the package that
// declares them. A nil set means every method from that package (io's
// interfaces are I/O by definition).
var blockingMethods = map[string]map[string]bool{
	"io": nil,
	"net": set("Read", "Write", "Close", "Accept", "ReadFrom", "WriteTo",
		"ReadFromUDP", "WriteToUDP", "ReadMsgUDP", "WriteMsgUDP",
		"LookupAddr", "LookupCNAME", "LookupHost", "LookupIP", "LookupMX",
		"LookupNS", "LookupPort", "LookupSRV", "LookupTXT"),
	"net/http": set("Do", "Get", "Head", "Post", "PostForm", "Write",
		"WriteHeader", "Flush", "Shutdown", "Close", "Serve", "ServeTLS",
		"ListenAndServe", "ListenAndServeTLS", "ServeHTTP", "Read"),
	"bufio": set("Flush", "Read", "ReadByte", "ReadBytes", "ReadLine",
		"ReadRune", "ReadSlice", "ReadString", "Write", "WriteByte",
		"WriteRune", "WriteString", "WriteTo", "ReadFrom", "Peek",
		"Scan", "Discard"),
	"encoding/json": set("Encode", "Decode", "Token", "More"),
	"os": set("Read", "ReadAt", "ReadFrom", "Write", "WriteAt",
		"WriteString", "Close", "Sync", "Seek", "Readdir", "ReadDir",
		"Readdirnames", "Truncate", "Chmod", "Chown"),
	"sync": set("Wait"),
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func runLockHeld(p *Pkg) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				s := &lockScanner{p: p}
				s.stmts(body.List, map[string]token.Pos{})
				out = append(out, s.out...)
			}
			return true
		})
	}
	return out
}

type lockScanner struct {
	p   *Pkg
	out []Finding
}

// stmts walks a statement list, mutating held as Lock/Unlock calls are
// seen and reporting blocking calls made while held is non-empty.
func (s *lockScanner) stmts(list []ast.Stmt, held map[string]token.Pos) {
	for _, st := range list {
		s.stmt(st, held)
	}
}

func (s *lockScanner) stmt(st ast.Stmt, held map[string]token.Pos) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if op, key := s.mutexOp(call); op != "" {
				switch op {
				case "Lock", "RLock":
					held[key] = call.Pos()
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				return
			}
		}
		s.check(st.X, held)
	case *ast.DeferStmt:
		if op, _ := s.mutexOp(st.Call); op == "Unlock" || op == "RUnlock" {
			// The mutex stays held until return; later statements are
			// still scanned against it.
			return
		}
		// The deferred call itself runs at return, in an unknowable
		// order relative to deferred unlocks; only its arguments are
		// evaluated now.
		for _, a := range st.Call.Args {
			s.check(a, held)
		}
	case *ast.GoStmt:
		// The spawned goroutine does not hold this function's locks;
		// only the call's arguments are evaluated here.
		for _, a := range st.Call.Args {
			s.check(a, held)
		}
	case *ast.BlockStmt:
		s.stmts(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		s.check(st.Cond, held)
		s.stmts(st.Body.List, copyHeld(held))
		if st.Else != nil {
			s.stmt(st.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			s.check(st.Cond, held)
		}
		s.stmts(st.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		s.check(st.X, held)
		s.stmts(st.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			s.check(st.Tag, held)
		}
		for _, c := range st.Body.List {
			s.stmts(c.(*ast.CaseClause).Body, copyHeld(held))
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			s.stmts(c.(*ast.CaseClause).Body, copyHeld(held))
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			s.stmts(c.(*ast.CommClause).Body, copyHeld(held))
		}
	case *ast.LabeledStmt:
		s.stmt(st.Stmt, held)
	default:
		s.check(st, held)
	}
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	cp := make(map[string]token.Pos, len(held))
	for k, v := range held {
		cp[k] = v
	}
	return cp
}

// check reports every blocking call inside n while held is non-empty.
func (s *lockScanner) check(n ast.Node, held map[string]token.Pos) {
	if n == nil || len(held) == 0 {
		return
	}
	inspectSkippingFuncLits(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		what := s.blocking(call)
		if what == "" {
			return true
		}
		for key, pos := range held {
			s.out = append(s.out, Finding{
				Pos:  s.p.Fset.Position(call.Pos()),
				Rule: "lockheld",
				Msg: fmt.Sprintf("%s called while %s is locked (at line %d); release the mutex before blocking",
					what, key, s.p.Fset.Position(pos).Line),
			})
		}
		return true
	})
}

// mutexOp reports whether call is Lock/RLock/Unlock/RUnlock on a
// sync.Mutex, sync.RWMutex, or sync.Locker, returning the operation
// and the receiver expression as the mutex key.
func (s *lockScanner) mutexOp(call *ast.CallExpr) (op, key string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	f := calleeFunc(s.p, call)
	if funcPkgPath(f) != "sync" || !isMethod(f) {
		return "", ""
	}
	return name, types.ExprString(sel.X)
}

// blocking classifies a call as blocking, returning a short
// description of the callee or "".
func (s *lockScanner) blocking(call *ast.CallExpr) string {
	f := calleeFunc(s.p, call)
	if f == nil {
		return ""
	}
	pkg, name := funcPkgPath(f), f.Name()
	if isMethod(f) {
		names, ok := blockingMethods[pkg]
		if ok && (names == nil || names[name]) {
			return fmt.Sprintf("(%s).%s", pkg, name)
		}
		return ""
	}
	if blockingFuncs[pkg][name] {
		return pkg + "." + name
	}
	return ""
}
