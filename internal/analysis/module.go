package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Annotation markers recognized in function doc comments. hotMarker
// declares an allocation-free root for allochot: the function and
// everything statically reachable from it must not allocate. coldMarker
// cuts the traversal: a call to a cold function is exempt — including
// the allocations its arguments perform — because the callee is a
// deliberate slow path (cache miss, error path, once-per-version work).
const (
	hotMarker  = "p4p:hotpath"
	coldMarker = "p4p:coldpath"
)

// CallKind distinguishes how a call site transfers control.
type CallKind int

const (
	// CallSync is an ordinary synchronous call.
	CallSync CallKind = iota
	// CallGo is the function called by a go statement.
	CallGo
	// CallDefer is the function called by a defer statement.
	CallDefer
)

// CallSite is one statically resolved call from a module function to
// another module function. Calls into the standard library and dynamic
// calls (interface methods, function values) are not edges; analyzers
// that care about them classify the call expression at its site.
type CallSite struct {
	Caller    *FuncInfo
	CalleeKey string
	Call      *ast.CallExpr
	Kind      CallKind
	// InFuncLit marks calls made inside a function literal nested in
	// the caller; lockheld's interprocedural pass skips these (the
	// literal may run on another goroutine or at defer time).
	InFuncLit bool
}

// FuncInfo is one declared function or method in the module.
type FuncInfo struct {
	// Key is types.Func.FullName(), unique and stable across the
	// directly-typechecked and importer-loaded views of a package.
	Key  string
	Pkg  *Pkg
	Decl *ast.FuncDecl
	Hot  bool // //p4p:hotpath in the doc comment
	Cold bool // //p4p:coldpath in the doc comment
	// Calls lists this function's resolved module-local call sites in
	// source order.
	Calls []*CallSite
}

// Name returns a short human form of the key: pkg.Func or
// pkg.(*Recv).Method with the module path prefix dropped.
func (f *FuncInfo) Name() string { return shortFuncKey(f.Key) }

// Module is the whole-module view consumed by interprocedural
// analyzers: every loaded unit plus a static call graph over all
// declared functions, keyed so that the same function reached through
// different type-checking universes (checked directly vs. pulled in by
// the source importer) collapses to one node.
type Module struct {
	Pkgs  []*Pkg
	Funcs map[string]*FuncInfo
	// callers indexes call sites by callee key.
	callers map[string][]*CallSite
	// localPkgs holds the import paths of the loaded units (the _test
	// suffix stripped), so analyzers can ask whether a types.Func is
	// declared in this module rather than the standard library.
	localPkgs map[string]bool
}

// NewModule builds the call graph over the given units.
func NewModule(pkgs []*Pkg) *Module {
	m := &Module{
		Pkgs:      pkgs,
		Funcs:     map[string]*FuncInfo{},
		callers:   map[string][]*CallSite{},
		localPkgs: map[string]bool{},
	}
	for _, p := range pkgs {
		m.localPkgs[strings.TrimSuffix(p.ImportPath, "_test")] = true
	}
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{
					Key:  obj.FullName(),
					Pkg:  p,
					Decl: fd,
					Hot:  hasMarker(fd.Doc, hotMarker),
					Cold: hasMarker(fd.Doc, coldMarker),
				}
				// A unit and its compiled sibling can both declare a key
				// (in-package tests re-check the package); first wins, and
				// iteration over sorted units keeps that deterministic.
				if m.Funcs[fi.Key] == nil {
					m.Funcs[fi.Key] = fi
				}
			}
		}
	}
	for _, fi := range m.Funcs {
		m.collectCalls(fi)
		for _, cs := range fi.Calls {
			m.callers[cs.CalleeKey] = append(m.callers[cs.CalleeKey], cs)
		}
	}
	return m
}

// IsLocal reports whether a types.Func is declared by a package of
// this module.
func (m *Module) IsLocal(f *types.Func) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	return m.localPkgs[strings.TrimSuffix(f.Pkg().Path(), "_test")]
}

// Callers returns the call sites targeting the function with key.
func (m *Module) Callers(key string) []*CallSite { return m.callers[key] }

// collectCalls resolves fi's outgoing static calls to module
// functions.
func (m *Module) collectCalls(fi *FuncInfo) {
	var litDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			litDepth++
			ast.Inspect(n.Body, walk)
			litDepth--
			return false
		case *ast.GoStmt:
			m.addCall(fi, n.Call, CallGo, litDepth > 0)
			for _, a := range n.Call.Args {
				ast.Inspect(a, walk)
			}
			ast.Inspect(n.Call.Fun, walk)
			return false
		case *ast.DeferStmt:
			m.addCall(fi, n.Call, CallDefer, litDepth > 0)
			for _, a := range n.Call.Args {
				ast.Inspect(a, walk)
			}
			ast.Inspect(n.Call.Fun, walk)
			return false
		case *ast.CallExpr:
			m.addCall(fi, n, CallSync, litDepth > 0)
		}
		return true
	}
	ast.Inspect(fi.Decl.Body, walk)
}

func (m *Module) addCall(fi *FuncInfo, call *ast.CallExpr, kind CallKind, inLit bool) {
	f := calleeFunc(fi.Pkg, call)
	if f == nil || !m.IsLocal(f) {
		return
	}
	if sel, ok := m.selectionFor(fi.Pkg, call); ok && sel.Kind() == types.MethodVal {
		if types.IsInterface(sel.Recv().Underlying()) {
			// Interface dispatch: no static edge. allochot flags these
			// at the call site in hot code instead of guessing targets.
			return
		}
	}
	fi.Calls = append(fi.Calls, &CallSite{
		Caller:    fi,
		CalleeKey: f.FullName(),
		Call:      call,
		Kind:      kind,
		InFuncLit: inLit,
	})
}

func (m *Module) selectionFor(p *Pkg, call *ast.CallExpr) (*types.Selection, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	s, ok := p.Info.Selections[sel]
	return s, ok
}

// hasMarker reports whether a doc comment contains the given
// annotation on a line of its own (modulo spaces).
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// shortFuncKey strips the module path from a FullName-style key for
// readable diagnostics: "p4p/internal/portal.(*Handler).cacheFor" ->
// "portal.(*Handler).cacheFor".
func shortFuncKey(key string) string {
	shorten := func(qual string) string {
		if i := strings.LastIndexByte(qual, '/'); i >= 0 {
			return qual[i+1:]
		}
		return qual
	}
	// Method keys look like "(*pkg/path.Recv).Name" or
	// "(pkg/path.Recv).Name"; function keys like "pkg/path.Name".
	if strings.HasPrefix(key, "(") {
		end := strings.IndexByte(key, ')')
		if end < 0 {
			return key
		}
		recv := key[1:end]
		star := ""
		if strings.HasPrefix(recv, "*") {
			star, recv = "*", recv[1:]
		}
		if i := strings.LastIndexByte(recv, '.'); i >= 0 {
			return shorten(recv[:i]) + ".(" + star + recv[i+1:] + ")" + key[end+1:]
		}
		return key
	}
	return shorten(key)
}

// position is the stable cross-universe identity for an object: the
// shared FileSet means a field or function seen through two
// type-checking universes still lands on the same file:line:column.
func position(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return p.String()
}
