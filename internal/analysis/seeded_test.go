package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadSeeded writes src as a one-file package in a temp dir, loads it,
// and returns the module findings — the seeded-regression harness: if
// an analyzer regresses, the injected defect stops being reported and
// these tests fail.
func loadSeeded(t *testing.T, name, src string) []Finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, name+".go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := sharedLoader().LoadDir(dir, "seeded/"+name)
	if err != nil {
		t.Fatalf("load seeded package: %v", err)
	}
	var all []Finding
	for _, p := range pkgs {
		kept, _ := RunAll(p, Analyzers())
		all = append(all, kept...)
	}
	modKept, _ := RunModuleAll(NewModule(pkgs), Analyzers())
	return append(all, modKept...)
}

func findRule(fs []Finding, rule string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

// TestSeededAllocInHotPath injects an allocating construct into an
// otherwise-clean //p4p:hotpath function and requires allochot to
// fire; the clean baseline next to it must stay silent. This is the
// canary for the hot-reachability machinery: if annotation parsing,
// the call graph, or the scanner regress, the injected map literal
// goes unreported.
func TestSeededAllocInHotPath(t *testing.T) {
	const src = `package seeded

//p4p:hotpath seeded
func serve(n int) int {
	scratch := map[int]int{}
	scratch[n] = n
	return tally(scratch[n])
}

func tally(n int) int {
	var total int
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}
`
	findings := findRule(loadSeeded(t, "allocseed", src), "allochot")
	if len(findings) != 1 {
		t.Fatalf("allochot findings = %v, want exactly the injected map literal", findings)
	}
	f := findings[0]
	if f.Pos.Line != 5 {
		t.Errorf("finding at line %d, want 5 (the map literal)", f.Pos.Line)
	}
	if !strings.Contains(f.Msg, "map literal allocates") {
		t.Errorf("finding message %q does not name the map literal", f.Msg)
	}
	if !strings.Contains(f.Msg, "marked //p4p:hotpath") {
		t.Errorf("finding message %q does not explain why the function is hot", f.Msg)
	}
}

// TestSeededAllocViaCallChain moves the injected allocation one call
// away from the annotated root and requires the finding to carry the
// discovery chain.
func TestSeededAllocViaCallChain(t *testing.T) {
	const src = `package seeded

//p4p:hotpath seeded
func serve(n int) []int {
	return grow(n)
}

func grow(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
`
	findings := findRule(loadSeeded(t, "chainseed", src), "allochot")
	if len(findings) != 1 {
		t.Fatalf("allochot findings = %v, want exactly the unsized append", findings)
	}
	if want := "hot via chainseed.serve -> chainseed.grow"; !strings.Contains(findings[0].Msg, want) {
		t.Errorf("finding message %q does not carry the chain %q", findings[0].Msg, want)
	}
}

// TestSeededTransitiveLockHeld injects a lock held across a helper
// that reaches I/O two calls down and requires the interprocedural
// lockheld pass to report the full chain to the blocking call.
func TestSeededTransitiveLockHeld(t *testing.T) {
	const src = `package seeded

import (
	"io"
	"sync"
)

type box struct{ mu sync.Mutex }

func (b *box) flush(dst io.Writer, src io.Reader) {
	b.mu.Lock()
	b.helperA(dst, src)
	b.mu.Unlock()
}

func (b *box) helperA(dst io.Writer, src io.Reader) {
	b.helperB(dst, src)
}

func (b *box) helperB(dst io.Writer, src io.Reader) {
	io.Copy(dst, src)
}
`
	findings := findRule(loadSeeded(t, "lockseed", src), "lockheld")
	if len(findings) != 1 {
		t.Fatalf("lockheld findings = %v, want exactly the transitive call", findings)
	}
	msg := findings[0].Msg
	for _, want := range []string{
		"while b.mu is locked",
		"transitively blocks",
		"lockseed.(*box).helperA -> lockseed.(*box).helperB -> io.Copy",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("finding message %q is missing %q", msg, want)
		}
	}
}
