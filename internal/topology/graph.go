// Package topology provides the PID-level network substrate used by the
// P4P reproduction: directed graphs of PoP-level nodes and capacitated
// links, OSPF-style shortest-path routing, and the built-in topologies
// evaluated by the paper (Abilene plus synthetic stand-ins for the
// proprietary ISP-A, ISP-B and ISP-C PoP-level maps).
//
// Terminology follows the paper: a node is a PID (an opaque ID that most
// commonly aggregates the clients of one point of presence), links carry a
// capacity c_e, a routing weight, and a distance d_e, and routing induces
// the indicator I_e(i,j) of link e being on the route from PID i to PID j.
package topology

import (
	"fmt"
	"sort"
)

// PID identifies a node in a Graph. PIDs are dense indices assigned in
// insertion order, so they can be used directly as slice indices.
type PID int

// LinkID identifies a directed link in a Graph, dense in insertion order.
type LinkID int

// NodeKind distinguishes the PID types of the paper's internal view.
type NodeKind int

const (
	// Aggregation PIDs represent sets of clients (e.g. one PoP). They are
	// the externally visible PIDs of the p4p-distance interface.
	Aggregation NodeKind = iota
	// Core PIDs represent internal routers. They appear only in the
	// internal view and are never exposed to applications.
	Core
	// External PIDs represent external-domain attachment points, e.g. the
	// far end of an interdomain link.
	External
)

func (k NodeKind) String() string {
	switch k {
	case Aggregation:
		return "aggregation"
	case Core:
		return "core"
	case External:
		return "external"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a PID-level node of the internal view.
type Node struct {
	ID    PID
	Name  string
	Kind  NodeKind
	Metro string  // metro area label; empty if the topology has no metros
	ASN   int     // autonomous system number of the owning network
	Lat   float64 // degrees; used to derive propagation distances
	Lon   float64
}

// Link is a directed PID-level link of the internal view.
type Link struct {
	ID          LinkID
	Src, Dst    PID
	CapacityBps float64 // capacity c_e in bits per second
	Weight      float64 // OSPF-style routing weight (>0)
	DistanceKm  float64 // distance metric d_e; km for real topologies
	Interdomain bool    // true if this link crosses an AS boundary
}

// Graph is a directed multigraph of PID-level nodes and links. The zero
// value is an empty graph ready for use.
type Graph struct {
	Name  string
	nodes []Node
	links []Link
	out   [][]LinkID // out[pid] lists links with Src == pid
	in    [][]LinkID // in[pid] lists links with Dst == pid
}

// NewGraph returns an empty graph with the given name.
func NewGraph(name string) *Graph {
	return &Graph{Name: name}
}

// AddNode appends a node and returns its PID. The ID, if set by the
// caller, is overwritten with the assigned dense index.
func (g *Graph) AddNode(n Node) PID {
	n.ID = PID(len(g.nodes))
	g.nodes = append(g.nodes, n)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return n.ID
}

// AddLink appends a directed link and returns its LinkID. It panics if an
// endpoint is out of range, the capacity is not positive, or the weight is
// not positive; topologies are constructed by code, so a malformed one is
// a programming error.
func (g *Graph) AddLink(l Link) LinkID {
	if int(l.Src) < 0 || int(l.Src) >= len(g.nodes) || int(l.Dst) < 0 || int(l.Dst) >= len(g.nodes) {
		panic(fmt.Sprintf("topology: link endpoint out of range: %d->%d (have %d nodes)", l.Src, l.Dst, len(g.nodes)))
	}
	if l.Src == l.Dst {
		panic(fmt.Sprintf("topology: self-loop on PID %d", l.Src))
	}
	if l.CapacityBps <= 0 {
		panic(fmt.Sprintf("topology: non-positive capacity on link %d->%d", l.Src, l.Dst))
	}
	if l.Weight <= 0 {
		panic(fmt.Sprintf("topology: non-positive weight on link %d->%d", l.Src, l.Dst))
	}
	l.ID = LinkID(len(g.links))
	g.links = append(g.links, l)
	g.out[l.Src] = append(g.out[l.Src], l.ID)
	g.in[l.Dst] = append(g.in[l.Dst], l.ID)
	return l.ID
}

// AddDuplex adds a pair of directed links, one in each direction, sharing
// capacity, weight and distance, and returns their IDs (forward, reverse).
func (g *Graph) AddDuplex(src, dst PID, capacityBps, weight, distanceKm float64) (LinkID, LinkID) {
	f := g.AddLink(Link{Src: src, Dst: dst, CapacityBps: capacityBps, Weight: weight, DistanceKm: distanceKm})
	r := g.AddLink(Link{Src: dst, Dst: src, CapacityBps: capacityBps, Weight: weight, DistanceKm: distanceKm})
	return f, r
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks reports the number of directed links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Node returns the node with the given PID.
func (g *Graph) Node(id PID) Node { return g.nodes[id] }

// Link returns the link with the given ID.
func (g *Graph) Link(id LinkID) Link { return g.links[id] }

// SetLink replaces the stored attributes of a link. The endpoints and ID
// must not change; use it to mark links interdomain or adjust capacity.
func (g *Graph) SetLink(l Link) {
	old := g.links[l.ID]
	if old.Src != l.Src || old.Dst != l.Dst {
		panic("topology: SetLink must not change endpoints")
	}
	g.links[l.ID] = l
}

// Nodes returns a copy of the node list.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Links returns a copy of the link list.
func (g *Graph) Links() []Link {
	out := make([]Link, len(g.links))
	copy(out, g.links)
	return out
}

// OutLinks returns the IDs of links leaving pid. The returned slice must
// not be modified.
func (g *Graph) OutLinks(pid PID) []LinkID { return g.out[pid] }

// InLinks returns the IDs of links entering pid. The returned slice must
// not be modified.
func (g *Graph) InLinks(pid PID) []LinkID { return g.in[pid] }

// FindNode returns the PID of the node with the given name.
func (g *Graph) FindNode(name string) (PID, bool) {
	for _, n := range g.nodes {
		if n.Name == name {
			return n.ID, true
		}
	}
	return -1, false
}

// FindLink returns the ID of the first link from src to dst.
func (g *Graph) FindLink(src, dst PID) (LinkID, bool) {
	for _, id := range g.out[src] {
		if g.links[id].Dst == dst {
			return id, true
		}
	}
	return -1, false
}

// AggregationPIDs returns the externally visible PIDs — the aggregation
// nodes — in ascending order.
func (g *Graph) AggregationPIDs() []PID {
	var out []PID
	for _, n := range g.nodes {
		if n.Kind == Aggregation {
			out = append(out, n.ID)
		}
	}
	return out
}

// Metros returns the sorted list of distinct non-empty metro labels.
func (g *Graph) Metros() []string {
	seen := map[string]bool{}
	for _, n := range g.nodes {
		if n.Metro != "" {
			seen[n.Metro] = true
		}
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// MetroOf returns the metro label of a PID ("" if none).
func (g *Graph) MetroOf(pid PID) string { return g.nodes[pid].Metro }

// InterdomainLinks returns the IDs of all links marked interdomain.
func (g *Graph) InterdomainLinks() []LinkID {
	var out []LinkID
	for _, l := range g.links {
		if l.Interdomain {
			out = append(out, l.ID)
		}
	}
	return out
}

// Validate checks structural invariants: weak connectivity over
// aggregation nodes and positive capacities/weights (enforced on insert,
// re-checked here for graphs mutated via SetLink).
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return fmt.Errorf("topology %q: empty graph", g.Name)
	}
	for _, l := range g.links {
		if l.CapacityBps <= 0 {
			return fmt.Errorf("topology %q: link %d has non-positive capacity", g.Name, l.ID)
		}
		if l.Weight <= 0 {
			return fmt.Errorf("topology %q: link %d has non-positive weight", g.Name, l.ID)
		}
	}
	// Weak connectivity: union of both directions must connect all nodes.
	visited := make([]bool, len(g.nodes))
	stack := []PID{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range g.out[u] {
			v := g.links[id].Dst
			if !visited[v] {
				visited[v] = true
				count++
				stack = append(stack, v)
			}
		}
		for _, id := range g.in[u] {
			v := g.links[id].Src
			if !visited[v] {
				visited[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	if count != len(g.nodes) {
		return fmt.Errorf("topology %q: graph is disconnected (%d of %d nodes reachable)", g.Name, count, len(g.nodes))
	}
	return nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.Name)
	c.nodes = append([]Node(nil), g.nodes...)
	c.links = append([]Link(nil), g.links...)
	c.out = make([][]LinkID, len(g.out))
	c.in = make([][]LinkID, len(g.in))
	for i := range g.out {
		c.out[i] = append([]LinkID(nil), g.out[i]...)
		c.in[i] = append([]LinkID(nil), g.in[i]...)
	}
	return c
}
