package topology

import (
	"math"
	"testing"
	"testing/quick"
)

// line builds a 4-node path a-b-c-d with unit weights.
func line() *Graph {
	g := NewGraph("line")
	a := g.AddNode(Node{Name: "a"})
	b := g.AddNode(Node{Name: "b"})
	c := g.AddNode(Node{Name: "c"})
	d := g.AddNode(Node{Name: "d"})
	g.AddDuplex(a, b, 1e9, 1, 10)
	g.AddDuplex(b, c, 1e9, 1, 10)
	g.AddDuplex(c, d, 1e9, 1, 10)
	return g
}

func TestRoutingLine(t *testing.T) {
	g := line()
	r := ComputeRouting(g)
	if hc := r.HopCount(0, 3); hc != 3 {
		t.Fatalf("HopCount(0,3) = %d, want 3", hc)
	}
	if hc := r.HopCount(2, 2); hc != 0 {
		t.Fatalf("HopCount(2,2) = %d, want 0", hc)
	}
	if d := r.DistanceKm(0, 3); d != 30 {
		t.Fatalf("DistanceKm(0,3) = %v, want 30", d)
	}
	if w := r.WeightSum(0, 3); w != 3 {
		t.Fatalf("WeightSum(0,3) = %v, want 3", w)
	}
	if !r.Reachable(0, 3) || !r.Reachable(1, 1) {
		t.Fatal("Reachable wrong")
	}
	delay := r.PropagationDelaySeconds(0, 3)
	if math.Abs(delay-30*5e-6) > 1e-12 {
		t.Fatalf("PropagationDelaySeconds = %v", delay)
	}
}

func TestRoutingPicksShorterPath(t *testing.T) {
	// Triangle where the direct edge a-c is heavier than the detour a-b-c.
	g := NewGraph("tri")
	a := g.AddNode(Node{Name: "a"})
	b := g.AddNode(Node{Name: "b"})
	c := g.AddNode(Node{Name: "c"})
	g.AddDuplex(a, b, 1e9, 1, 1)
	g.AddDuplex(b, c, 1e9, 1, 1)
	g.AddDuplex(a, c, 1e9, 5, 5)
	r := ComputeRouting(g)
	if hc := r.HopCount(a, c); hc != 2 {
		t.Fatalf("HopCount(a,c) = %d, want 2 (detour)", hc)
	}
	path := r.Path(a, c)
	if g.Link(path[0]).Dst != b {
		t.Fatalf("path does not pass through b: %v", path)
	}
}

func TestRoutingUnreachable(t *testing.T) {
	// Directed-only edge: b cannot reach a.
	g := NewGraph("oneway")
	a := g.AddNode(Node{Name: "a"})
	b := g.AddNode(Node{Name: "b"})
	g.AddLink(Link{Src: a, Dst: b, CapacityBps: 1, Weight: 1})
	r := ComputeRouting(g)
	if r.Reachable(b, a) {
		t.Fatal("b should not reach a")
	}
	if hc := r.HopCount(b, a); hc != -1 {
		t.Fatalf("HopCount(b,a) = %d, want -1", hc)
	}
	if !math.IsInf(r.DistanceKm(b, a), 1) {
		t.Fatal("DistanceKm(b,a) should be +Inf")
	}
	if !math.IsInf(r.PropagationDelaySeconds(b, a), 1) {
		t.Fatal("PropagationDelaySeconds(b,a) should be +Inf")
	}
}

func TestOnPathMatchesPath(t *testing.T) {
	g := Abilene()
	r := ComputeRouting(g)
	n := g.NumNodes()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			onPath := map[LinkID]bool{}
			for _, e := range r.Path(PID(i), PID(j)) {
				onPath[e] = true
			}
			for e := 0; e < g.NumLinks(); e++ {
				if got := r.OnPath(LinkID(e), PID(i), PID(j)); got != onPath[LinkID(e)] {
					t.Fatalf("OnPath(%d,%d,%d) = %v, want %v", e, i, j, got, onPath[LinkID(e)])
				}
			}
		}
	}
}

// TestPathsAreContiguous is a property test: on every built-in topology,
// every path's links chain src->...->dst and its length equals HopCount.
func TestPathsAreContiguous(t *testing.T) {
	for _, g := range []*Graph{Abilene(), ISPA(), ISPB(), ISPC()} {
		r := ComputeRouting(g)
		n := g.NumNodes()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				path := r.Path(PID(i), PID(j))
				if path == nil {
					t.Fatalf("%s: no path %d->%d", g.Name, i, j)
				}
				at := PID(i)
				for _, e := range path {
					l := g.Link(e)
					if l.Src != at {
						t.Fatalf("%s: discontiguous path %d->%d at link %d", g.Name, i, j, e)
					}
					at = l.Dst
				}
				if at != PID(j) {
					t.Fatalf("%s: path %d->%d ends at %d", g.Name, i, j, at)
				}
				if len(path) != r.HopCount(PID(i), PID(j)) {
					t.Fatalf("%s: HopCount mismatch for %d->%d", g.Name, i, j)
				}
			}
		}
	}
}

// TestRoutingSymmetricOnDuplex: weights are symmetric on duplex
// topologies, so shortest-path weights must be symmetric too.
func TestRoutingSymmetricOnDuplex(t *testing.T) {
	g := Abilene()
	r := ComputeRouting(g)
	n := g.NumNodes()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			wf, wb := r.WeightSum(PID(i), PID(j)), r.WeightSum(PID(j), PID(i))
			if math.Abs(wf-wb) > 1e-9 {
				t.Fatalf("asymmetric weights %d<->%d: %v vs %v", i, j, wf, wb)
			}
		}
	}
}

// TestRoutingDeterministic: recomputation must yield identical paths.
func TestRoutingDeterministic(t *testing.T) {
	g := ISPA()
	r1 := ComputeRouting(g)
	r2 := ComputeRouting(g)
	n := g.NumNodes()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p1, p2 := r1.Path(PID(i), PID(j)), r2.Path(PID(i), PID(j))
			if len(p1) != len(p2) {
				t.Fatalf("nondeterministic path %d->%d", i, j)
			}
			for k := range p1 {
				if p1[k] != p2[k] {
					t.Fatalf("nondeterministic path %d->%d", i, j)
				}
			}
		}
	}
}

// TestGreatCircleProperties uses testing/quick: distance is symmetric,
// non-negative, zero for identical points, and bounded by half the
// Earth's circumference.
func TestGreatCircleProperties(t *testing.T) {
	clamp := func(v, lo, hi float64) float64 {
		return lo + math.Mod(math.Abs(v), hi-lo)
	}
	prop := func(lat1, lon1, lat2, lon2 float64) bool {
		la1, lo1 := clamp(lat1, -90, 90), clamp(lon1, -180, 180)
		la2, lo2 := clamp(lat2, -90, 90), clamp(lon2, -180, 180)
		d12 := GreatCircleKm(la1, lo1, la2, lo2)
		d21 := GreatCircleKm(la2, lo2, la1, lo1)
		if d12 < 0 || math.Abs(d12-d21) > 1e-6 {
			return false
		}
		if d12 > math.Pi*earthRadiusKm+1e-6 {
			return false
		}
		return GreatCircleKm(la1, lo1, la1, lo1) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGreatCircleKnownDistance(t *testing.T) {
	// New York to Los Angeles is roughly 3940 km.
	d := GreatCircleKm(40.71, -74.01, 34.05, -118.24)
	if d < 3800 || d > 4100 {
		t.Fatalf("NY-LA distance = %v km, want ~3940", d)
	}
}
