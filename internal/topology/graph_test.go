package topology

import (
	"testing"
)

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := NewGraph("t")
	for i := 0; i < 5; i++ {
		id := g.AddNode(Node{Name: "n"})
		if id != PID(i) {
			t.Fatalf("node %d got PID %d", i, id)
		}
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
}

func TestAddLinkValidation(t *testing.T) {
	g := NewGraph("t")
	a := g.AddNode(Node{Name: "a"})
	b := g.AddNode(Node{Name: "b"})
	mustPanic(t, "out of range", func() {
		g.AddLink(Link{Src: a, Dst: 99, CapacityBps: 1, Weight: 1})
	})
	mustPanic(t, "self loop", func() {
		g.AddLink(Link{Src: a, Dst: a, CapacityBps: 1, Weight: 1})
	})
	mustPanic(t, "zero capacity", func() {
		g.AddLink(Link{Src: a, Dst: b, CapacityBps: 0, Weight: 1})
	})
	mustPanic(t, "zero weight", func() {
		g.AddLink(Link{Src: a, Dst: b, CapacityBps: 1, Weight: 0})
	})
	id := g.AddLink(Link{Src: a, Dst: b, CapacityBps: 1, Weight: 1})
	if id != 0 {
		t.Fatalf("first link ID = %d, want 0", id)
	}
}

func TestDuplexAdjacency(t *testing.T) {
	g := NewGraph("t")
	a := g.AddNode(Node{Name: "a"})
	b := g.AddNode(Node{Name: "b"})
	f, r := g.AddDuplex(a, b, 100, 2, 3)
	if g.Link(f).Src != a || g.Link(f).Dst != b {
		t.Fatalf("forward link endpoints wrong: %+v", g.Link(f))
	}
	if g.Link(r).Src != b || g.Link(r).Dst != a {
		t.Fatalf("reverse link endpoints wrong: %+v", g.Link(r))
	}
	if len(g.OutLinks(a)) != 1 || g.OutLinks(a)[0] != f {
		t.Fatalf("OutLinks(a) = %v", g.OutLinks(a))
	}
	if len(g.InLinks(a)) != 1 || g.InLinks(a)[0] != r {
		t.Fatalf("InLinks(a) = %v", g.InLinks(a))
	}
}

func TestSetLinkPreservesEndpoints(t *testing.T) {
	g := NewGraph("t")
	a := g.AddNode(Node{Name: "a"})
	b := g.AddNode(Node{Name: "b"})
	c := g.AddNode(Node{Name: "c"})
	id := g.AddLink(Link{Src: a, Dst: b, CapacityBps: 1, Weight: 1})
	l := g.Link(id)
	l.Interdomain = true
	g.SetLink(l)
	if !g.Link(id).Interdomain {
		t.Fatal("SetLink did not persist Interdomain flag")
	}
	l.Dst = c
	mustPanic(t, "endpoint change", func() { g.SetLink(l) })
}

func TestFindNodeAndLink(t *testing.T) {
	g := NewGraph("t")
	a := g.AddNode(Node{Name: "alpha"})
	b := g.AddNode(Node{Name: "beta"})
	g.AddDuplex(a, b, 1, 1, 1)
	if pid, ok := g.FindNode("beta"); !ok || pid != b {
		t.Fatalf("FindNode(beta) = %d, %v", pid, ok)
	}
	if _, ok := g.FindNode("gamma"); ok {
		t.Fatal("FindNode(gamma) should fail")
	}
	if id, ok := g.FindLink(a, b); !ok || g.Link(id).Dst != b {
		t.Fatalf("FindLink(a,b) = %d, %v", id, ok)
	}
	if _, ok := g.FindLink(b, PID(0)); !ok {
		t.Fatal("FindLink(b,a) should succeed")
	}
}

func TestValidateDisconnected(t *testing.T) {
	g := NewGraph("t")
	g.AddNode(Node{Name: "a"})
	g.AddNode(Node{Name: "b"})
	if err := g.Validate(); err == nil {
		t.Fatal("expected disconnected graph to fail validation")
	}
}

func TestValidateEmpty(t *testing.T) {
	g := NewGraph("t")
	if err := g.Validate(); err == nil {
		t.Fatal("expected empty graph to fail validation")
	}
}

func TestAggregationPIDsFiltersKinds(t *testing.T) {
	g := NewGraph("t")
	a := g.AddNode(Node{Name: "a", Kind: Aggregation})
	g.AddNode(Node{Name: "r", Kind: Core})
	b := g.AddNode(Node{Name: "b", Kind: Aggregation})
	g.AddNode(Node{Name: "x", Kind: External})
	got := g.AggregationPIDs()
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("AggregationPIDs = %v", got)
	}
}

func TestMetros(t *testing.T) {
	g := NewGraph("t")
	g.AddNode(Node{Name: "a", Metro: "nyc"})
	g.AddNode(Node{Name: "b", Metro: "chi"})
	g.AddNode(Node{Name: "c", Metro: "nyc"})
	g.AddNode(Node{Name: "d"})
	got := g.Metros()
	if len(got) != 2 || got[0] != "chi" || got[1] != "nyc" {
		t.Fatalf("Metros = %v", got)
	}
	if g.MetroOf(0) != "nyc" || g.MetroOf(3) != "" {
		t.Fatal("MetroOf wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Abilene()
	c := g.Clone()
	l := c.Link(0)
	l.Interdomain = true
	c.SetLink(l)
	if g.Link(0).Interdomain {
		t.Fatal("mutating clone affected original")
	}
	if c.NumNodes() != g.NumNodes() || c.NumLinks() != g.NumLinks() {
		t.Fatal("clone dimensions differ")
	}
}

func TestNodeKindString(t *testing.T) {
	cases := map[NodeKind]string{Aggregation: "aggregation", Core: "core", External: "external", NodeKind(9): "NodeKind(9)"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("NodeKind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
