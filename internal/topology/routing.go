package topology

import (
	"container/heap"
	"math"
)

// Routing holds all-pairs shortest paths over a graph, computed with
// Dijkstra's algorithm on the link weights (an OSPF-style interior
// gateway protocol). It answers the paper's I_e(i,j) indicator — whether
// link e lies on the route from PID i to PID j — as well as path link
// lists, hop counts and distance sums.
type Routing struct {
	g *Graph
	// pathLinks[i][j] holds the link IDs along the route i->j in order;
	// nil when i == j or j is unreachable from i.
	pathLinks [][][]LinkID
	// dist[i][j] is the total routing weight of the path, +Inf if
	// unreachable, 0 when i == j.
	dist [][]float64
}

// ComputeRouting runs Dijkstra from every node and materializes all-pairs
// paths. Ties are broken deterministically by predecessor link ID so that
// repeated runs yield identical routing.
func ComputeRouting(g *Graph) *Routing {
	n := g.NumNodes()
	r := &Routing{
		g:         g,
		pathLinks: make([][][]LinkID, n),
		dist:      make([][]float64, n),
	}
	for src := 0; src < n; src++ {
		dist, prev := dijkstra(g, PID(src))
		r.dist[src] = dist
		r.pathLinks[src] = make([][]LinkID, n)
		for dst := 0; dst < n; dst++ {
			if dst == src || math.IsInf(dist[dst], 1) {
				continue
			}
			// Walk predecessors backwards, then reverse.
			var rev []LinkID
			at := PID(dst)
			for at != PID(src) {
				e := prev[at]
				rev = append(rev, e)
				at = g.Link(e).Src
			}
			path := make([]LinkID, len(rev))
			for i := range rev {
				path[len(rev)-1-i] = rev[i]
			}
			r.pathLinks[src][dst] = path
		}
	}
	return r
}

// Graph returns the graph this routing was computed over.
func (r *Routing) Graph() *Graph { return r.g }

// Path returns the link IDs along the route from i to j, in order. It is
// nil when i == j or j is unreachable. The returned slice must not be
// modified.
func (r *Routing) Path(i, j PID) []LinkID { return r.pathLinks[i][j] }

// Reachable reports whether j is reachable from i.
func (r *Routing) Reachable(i, j PID) bool {
	return i == j || r.pathLinks[i][j] != nil
}

// OnPath reports the indicator I_e(i,j): whether link e is on the route
// from i to j.
func (r *Routing) OnPath(e LinkID, i, j PID) bool {
	for _, id := range r.pathLinks[i][j] {
		if id == e {
			return true
		}
	}
	return false
}

// HopCount returns the number of links on the route from i to j
// (0 when i == j, -1 if unreachable).
func (r *Routing) HopCount(i, j PID) int {
	if i == j {
		return 0
	}
	p := r.pathLinks[i][j]
	if p == nil {
		return -1
	}
	return len(p)
}

// WeightSum returns the total routing weight along the route
// (+Inf if unreachable).
func (r *Routing) WeightSum(i, j PID) float64 { return r.dist[i][j] }

// DistanceKm returns the sum of link distances d_e along the route: the
// paper's end-to-end distance d_ij (0 when i == j, +Inf if unreachable).
func (r *Routing) DistanceKm(i, j PID) float64 {
	if i == j {
		return 0
	}
	p := r.pathLinks[i][j]
	if p == nil {
		return math.Inf(1)
	}
	sum := 0.0
	for _, e := range p {
		sum += r.g.Link(e).DistanceKm
	}
	return sum
}

// PropagationDelaySeconds estimates the one-way propagation delay along
// the route from the link distances, at 5 microseconds per kilometre
// (speed of light in fibre). Delay-localized peer selection ranks peers
// by twice this value (an idealized RTT).
func (r *Routing) PropagationDelaySeconds(i, j PID) float64 {
	d := r.DistanceKm(i, j)
	if math.IsInf(d, 1) {
		return math.Inf(1)
	}
	return d * 5e-6
}

// dijkstra computes single-source shortest paths by link weight,
// returning per-node distance and the predecessor link on the shortest
// path tree (valid where distance is finite and node != src).
func dijkstra(g *Graph, src PID) (dist []float64, prev []LinkID) {
	n := g.NumNodes()
	dist = make([]float64, n)
	prev = make([]LinkID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	pq := &nodeHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(nodeItem)
		if item.dist > dist[item.node] {
			continue // stale entry
		}
		for _, id := range g.OutLinks(item.node) {
			l := g.Link(id)
			nd := item.dist + l.Weight
			switch {
			case nd < dist[l.Dst]:
				dist[l.Dst] = nd
				prev[l.Dst] = id
				heap.Push(pq, nodeItem{node: l.Dst, dist: nd})
			case nd == dist[l.Dst] && prev[l.Dst] >= 0 && id < prev[l.Dst]:
				// Deterministic tie-break: prefer the lower link ID.
				prev[l.Dst] = id
			}
		}
	}
	return dist, prev
}

type nodeItem struct {
	node PID
	dist float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].node < h[j].node
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
