package topology

import "math"

// earthRadiusKm is the mean Earth radius used for great-circle distances.
const earthRadiusKm = 6371.0

// GreatCircleKm returns the great-circle distance in kilometres between
// two (lat, lon) points given in degrees, via the haversine formula.
func GreatCircleKm(lat1, lon1, lat2, lon2 float64) float64 {
	const deg = math.Pi / 180
	phi1, phi2 := lat1*deg, lat2*deg
	dPhi := (lat2 - lat1) * deg
	dLam := (lon2 - lon1) * deg
	a := math.Sin(dPhi/2)*math.Sin(dPhi/2) +
		math.Cos(phi1)*math.Cos(phi2)*math.Sin(dLam/2)*math.Sin(dLam/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// nodeDistanceKm returns the great-circle distance between two nodes of a
// graph, falling back to 1 km when coordinates are absent (both zero) so
// that distance metrics stay positive.
func nodeDistanceKm(a, b Node) float64 {
	if a.Lat == 0 && a.Lon == 0 && b.Lat == 0 && b.Lon == 0 {
		return 1
	}
	d := GreatCircleKm(a.Lat, a.Lon, b.Lat, b.Lon)
	if d < 1 {
		return 1
	}
	return d
}
