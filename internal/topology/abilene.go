package topology

// Abilene returns the router-level Abilene (Internet2) backbone as
// evaluated in the paper's Table 1: 11 nodes and 28 directed links (14
// duplex backbone circuits). Coordinates are the PoP cities; capacities
// are the 10 Gbps OC-192 circuits of the 2007-era backbone. Link weights
// follow distance so that routing prefers geographically short paths, as
// Abilene's IS-IS metrics did.
func Abilene() *Graph {
	g := NewGraph("Abilene")
	add := func(name string, lat, lon float64) PID {
		return g.AddNode(Node{Name: name, Kind: Aggregation, ASN: 11537, Lat: lat, Lon: lon})
	}
	sttl := add("Seattle", 47.61, -122.33)
	snva := add("Sunnyvale", 37.37, -122.04)
	losa := add("LosAngeles", 34.05, -118.24)
	dnvr := add("Denver", 39.74, -104.99)
	kscy := add("KansasCity", 39.10, -94.58)
	hstn := add("Houston", 29.76, -95.37)
	ipls := add("Indianapolis", 39.77, -86.16)
	chin := add("Chicago", 41.88, -87.63)
	atla := add("Atlanta", 33.75, -84.39)
	wash := add("WashingtonDC", 38.91, -77.04)
	nycm := add("NewYork", 40.71, -74.01)

	const gbps = 1e9
	duplex := func(a, b PID) {
		na, nb := g.Node(a), g.Node(b)
		d := nodeDistanceKm(na, nb)
		g.AddDuplex(a, b, 10*gbps, d, d)
	}
	// The 14 duplex circuits of the Abilene core.
	duplex(sttl, snva)
	duplex(sttl, dnvr)
	duplex(snva, losa)
	duplex(snva, dnvr)
	duplex(losa, hstn)
	duplex(dnvr, kscy)
	duplex(kscy, hstn)
	duplex(kscy, ipls)
	duplex(hstn, atla)
	duplex(ipls, chin)
	duplex(ipls, atla)
	duplex(chin, nycm)
	duplex(atla, wash)
	duplex(wash, nycm)
	return g
}

// AbileneVirtualISPs returns the Abilene topology partitioned into the
// two "virtual" ISPs of the paper's interdomain experiments (Section
// 7.3): the links Chicago–KansasCity and Atlanta–Houston are declared
// interdomain, splitting the network into an eastern component (4 nodes)
// and a western/midwestern component (5 nodes of the 7 remaining; the
// paper counts PoPs hosting clients). Nodes are re-labelled with ASN 1
// (west) and ASN 2 (east); the two cut links are marked Interdomain.
//
// Note the paper's experiment uses Chicago–KansasCity, which is not a
// physical Abilene circuit; the corresponding physical cut is
// Chicago–Indianapolis–KansasCity. We mark Indianapolis–KansasCity and
// Atlanta–Houston as the two interdomain links: this produces the same
// east/west partition (east: Chicago, Indianapolis, NewYork, WashingtonDC,
// Atlanta; west: Seattle, Sunnyvale, LosAngeles, Denver, KansasCity,
// Houston) with exactly two duplex circuits crossing the boundary.
func AbileneVirtualISPs() *Graph {
	g := Abilene()
	east := map[string]bool{
		"Chicago": true, "Indianapolis": true, "NewYork": true,
		"WashingtonDC": true, "Atlanta": true,
	}
	for _, n := range g.Nodes() {
		if east[n.Name] {
			n.ASN = 2
		} else {
			n.ASN = 1
		}
		// Nodes are stored by value; rewrite via the link-safe path.
		g.nodes[n.ID] = n
	}
	for _, l := range g.Links() {
		if g.Node(l.Src).ASN != g.Node(l.Dst).ASN {
			l.Interdomain = true
			g.SetLink(l)
		}
	}
	return g
}

// InterdomainCuts returns, for a graph whose nodes carry ASNs, the duplex
// interdomain circuits as pairs of (forward, reverse) link IDs, ordered
// by forward link ID. Links without a reverse twin are returned with
// reverse == -1.
func InterdomainCuts(g *Graph) [][2]LinkID {
	var cuts [][2]LinkID
	seen := map[LinkID]bool{}
	for _, l := range g.Links() {
		if !l.Interdomain || seen[l.ID] {
			continue
		}
		rev := LinkID(-1)
		if r, ok := g.FindLink(l.Dst, l.Src); ok {
			rev = r
			seen[r] = true
		}
		seen[l.ID] = true
		cuts = append(cuts, [2]LinkID{l.ID, rev})
	}
	return cuts
}
