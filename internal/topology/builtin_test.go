package topology

import "testing"

// TestTable1Dimensions pins the topology sizes reported in the paper's
// Table 1: Abilene 11 nodes / 28 links (router-level), ISP-A 20 PoPs,
// ISP-B 52 PoPs, ISP-C 37 PoPs.
func TestTable1Dimensions(t *testing.T) {
	cases := []struct {
		g     *Graph
		nodes int
		links int // -1 means unspecified by the paper
	}{
		{Abilene(), 11, 28},
		{ISPA(), 20, -1},
		{ISPB(), 52, -1},
		{ISPC(), 37, -1},
	}
	for _, c := range cases {
		if got := c.g.NumNodes(); got != c.nodes {
			t.Errorf("%s: %d nodes, want %d", c.g.Name, got, c.nodes)
		}
		if c.links >= 0 {
			if got := c.g.NumLinks(); got != c.links {
				t.Errorf("%s: %d links, want %d", c.g.Name, got, c.links)
			}
		}
	}
}

func TestBuiltinsValidate(t *testing.T) {
	for _, g := range []*Graph{Abilene(), AbileneVirtualISPs(), ISPA(), ISPB(), ISPC()} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestBuiltinsDeterministic(t *testing.T) {
	for _, build := range []func() *Graph{Abilene, ISPA, ISPB, ISPC} {
		a, b := build(), build()
		if a.NumNodes() != b.NumNodes() || a.NumLinks() != b.NumLinks() {
			t.Fatalf("%s: nondeterministic dimensions", a.Name)
		}
		for i := 0; i < a.NumLinks(); i++ {
			la, lb := a.Link(LinkID(i)), b.Link(LinkID(i))
			if la != lb {
				t.Fatalf("%s: link %d differs between builds", a.Name, i)
			}
		}
		for i := 0; i < a.NumNodes(); i++ {
			if a.Node(PID(i)) != b.Node(PID(i)) {
				t.Fatalf("%s: node %d differs between builds", a.Name, i)
			}
		}
	}
}

func TestAbileneHasProtectedLink(t *testing.T) {
	// The paper's Figure 6 experiment protects the high-utilization
	// Washington DC -> New York link; it must exist.
	g := Abilene()
	dc, ok := g.FindNode("WashingtonDC")
	if !ok {
		t.Fatal("no WashingtonDC node")
	}
	ny, ok := g.FindNode("NewYork")
	if !ok {
		t.Fatal("no NewYork node")
	}
	if _, ok := g.FindLink(dc, ny); !ok {
		t.Fatal("no WashingtonDC->NewYork link")
	}
}

func TestAbileneVirtualISPs(t *testing.T) {
	g := AbileneVirtualISPs()
	cuts := InterdomainCuts(g)
	if len(cuts) != 2 {
		t.Fatalf("want exactly 2 interdomain duplex circuits, got %d", len(cuts))
	}
	for _, cut := range cuts {
		f := g.Link(cut[0])
		if !f.Interdomain {
			t.Fatal("cut link not marked interdomain")
		}
		if cut[1] >= 0 {
			r := g.Link(cut[1])
			if r.Src != f.Dst || r.Dst != f.Src {
				t.Fatal("reverse link mismatched")
			}
		}
		if g.Node(f.Src).ASN == g.Node(f.Dst).ASN {
			t.Fatal("interdomain link endpoints share an ASN")
		}
	}
	// Partition sizes: the paper's east component has 4 client PoPs plus
	// the counting difference noted in abilene.go; ours is 5/6.
	east, west := 0, 0
	for _, n := range g.Nodes() {
		switch n.ASN {
		case 1:
			west++
		case 2:
			east++
		default:
			t.Fatalf("node %s has unexpected ASN %d", n.Name, n.ASN)
		}
	}
	if east != 5 || west != 6 {
		t.Fatalf("partition = east %d / west %d, want 5/6", east, west)
	}
}

func TestISPBMetroStructure(t *testing.T) {
	g := ISPB()
	metros := g.Metros()
	if len(metros) != 13 {
		t.Fatalf("ISP-B metros = %d, want 13", len(metros))
	}
	counts := map[string]int{}
	for _, n := range g.Nodes() {
		counts[n.Metro]++
	}
	for m, c := range counts {
		if c != 4 {
			t.Errorf("metro %s has %d PoPs, want 4", m, c)
		}
	}
}

func TestISPCRegions(t *testing.T) {
	g := ISPC()
	counts := map[string]int{}
	for _, n := range g.Nodes() {
		counts[n.Metro]++
	}
	if counts["na"] != 15 || counts["eu"] != 13 || counts["as"] != 9 {
		t.Fatalf("ISP-C regions = %v", counts)
	}
}

func TestInterdomainCutsNone(t *testing.T) {
	if cuts := InterdomainCuts(Abilene()); len(cuts) != 0 {
		t.Fatalf("Abilene should have no interdomain cuts, got %d", len(cuts))
	}
}
