package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// The paper evaluates three proprietary PoP-level ISP topologies (Table
// 1): ISP-A (US, 20 PoPs), ISP-B (US, 52 PoPs, organized in metro areas)
// and ISP-C (international, 37 PoPs). The real maps are not public, so
// this file provides deterministic synthetic generators with matching
// sizes and the structural features the experiments depend on: a meshy
// long-haul backbone with heterogeneous capacities for ISP-A, a
// two-level metro/backbone hierarchy for ISP-B, and continent-clustered
// structure for ISP-C. See DESIGN.md ("Substitutions") for the argument
// that this preserves the evaluated behaviour.

// SyntheticConfig parameterizes generateGeometric.
type syntheticConfig struct {
	name        string
	asn         int
	pops        int
	seed        int64
	regionLatLo float64
	regionLatHi float64
	regionLonLo float64
	regionLonHi float64
	degree      int     // nearest-neighbour links per new node
	chords      int     // extra long-haul chords for redundancy
	capacityBps float64 // backbone link capacity
}

// generateGeometric builds a connected random-geometric backbone: PoPs
// are placed uniformly in a lat/lon box, each new PoP links to its
// `degree` nearest predecessors (guaranteeing connectivity), and `chords`
// extra links join the most distant poorly-connected pairs.
func generateGeometric(cfg syntheticConfig) *Graph {
	rng := rand.New(rand.NewSource(cfg.seed))
	g := NewGraph(cfg.name)
	for i := 0; i < cfg.pops; i++ {
		g.AddNode(Node{
			Name: fmt.Sprintf("%s-pop%02d", cfg.name, i),
			Kind: Aggregation,
			ASN:  cfg.asn,
			Lat:  cfg.regionLatLo + rng.Float64()*(cfg.regionLatHi-cfg.regionLatLo),
			Lon:  cfg.regionLonLo + rng.Float64()*(cfg.regionLonHi-cfg.regionLonLo),
		})
	}
	type cand struct {
		pid PID
		d   float64
	}
	for i := 1; i < cfg.pops; i++ {
		var cands []cand
		for j := 0; j < i; j++ {
			cands = append(cands, cand{PID(j), nodeDistanceKm(g.Node(PID(i)), g.Node(PID(j)))})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].d != cands[b].d {
				return cands[a].d < cands[b].d
			}
			return cands[a].pid < cands[b].pid
		})
		k := cfg.degree
		if k > len(cands) {
			k = len(cands)
		}
		for _, c := range cands[:k] {
			d := c.d
			g.AddDuplex(PID(i), c.pid, cfg.capacityBps, d, d)
		}
	}
	// Redundancy chords between random distinct pairs not yet linked.
	for added := 0; added < cfg.chords; {
		a := PID(rng.Intn(cfg.pops))
		b := PID(rng.Intn(cfg.pops))
		if a == b {
			continue
		}
		if _, ok := g.FindLink(a, b); ok {
			continue
		}
		d := nodeDistanceKm(g.Node(a), g.Node(b))
		g.AddDuplex(a, b, cfg.capacityBps, d, d)
		added++
	}
	return g
}

// ISPA returns the synthetic stand-in for the paper's ISP-A: a US
// PoP-level network with 20 PoPs (Table 1) and a meshy 10 Gbps backbone.
func ISPA() *Graph {
	return generateGeometric(syntheticConfig{
		name: "ISP-A", asn: 64512, pops: 20, seed: 20080817,
		regionLatLo: 26, regionLatHi: 48, regionLonLo: -123, regionLonHi: -71,
		degree: 2, chords: 4, capacityBps: 10e9,
	})
}

// ISPB returns the synthetic stand-in for the paper's ISP-B: a US
// network with 52 PoPs (Table 1) organized as 13 metro areas of 4 PoPs
// each. In each metro, one hub PoP aggregates three access PoPs over
// 2.5 Gbps metro links; hubs are joined by a 10 Gbps long-haul backbone.
// The metro labels drive the field-test localization statistics
// (Table 3) and the unit-BDP metric (Figure 12a).
func ISPB() *Graph {
	const (
		metros      = 13
		popsPerArea = 4
		backbone    = 10e9
		metroLink   = 2.5e9
	)
	rng := rand.New(rand.NewSource(20080221))
	g := NewGraph("ISP-B")
	hubs := make([]PID, 0, metros)
	for m := 0; m < metros; m++ {
		metro := fmt.Sprintf("metro%02d", m)
		lat := 26 + rng.Float64()*22
		lon := -123 + rng.Float64()*52
		hub := g.AddNode(Node{
			Name: fmt.Sprintf("ISP-B-%s-hub", metro), Kind: Aggregation,
			ASN: 64513, Metro: metro, Lat: lat, Lon: lon,
		})
		hubs = append(hubs, hub)
		for p := 1; p < popsPerArea; p++ {
			// Access PoPs scatter within ~60 km of the hub and home to it
			// in a star: metro traffic hairpins through the hub, as in a
			// typical metro aggregation design.
			pid := g.AddNode(Node{
				Name: fmt.Sprintf("ISP-B-%s-pop%d", metro, p), Kind: Aggregation,
				ASN: 64513, Metro: metro,
				Lat: lat + (rng.Float64() - 0.5), Lon: lon + (rng.Float64() - 0.5),
			})
			d := nodeDistanceKm(g.Node(hub), g.Node(pid))
			g.AddDuplex(hub, pid, metroLink, d, d)
		}
	}
	// Long-haul backbone: a geographic ring over the hubs (sorted by
	// longitude). This sparse design gives
	// PID pairs the multi-hop backbone distances of a national carrier
	// (the paper reports an average of 6.2 backbone links between ISP-B
	// PID pairs).
	order := append([]PID(nil), hubs...)
	sort.Slice(order, func(a, b int) bool {
		if g.Node(order[a]).Lon != g.Node(order[b]).Lon {
			return g.Node(order[a]).Lon < g.Node(order[b]).Lon
		}
		return order[a] < order[b]
	})
	for i := range order {
		a, b := order[i], order[(i+1)%len(order)]
		d := nodeDistanceKm(g.Node(a), g.Node(b))
		g.AddDuplex(a, b, backbone, d, d)
	}
	return g
}

// ISPC returns the synthetic stand-in for the paper's ISP-C: an
// international network with 37 PoPs (Table 1) clustered on three
// continents (North America, Europe, Asia) joined by a small number of
// expensive transoceanic circuits.
func ISPC() *Graph {
	rng := rand.New(rand.NewSource(20080302))
	g := NewGraph("ISP-C")
	type region struct {
		name         string
		pops         int
		latLo, latHi float64
		lonLo, lonHi float64
	}
	regions := []region{
		{"na", 15, 26, 48, -123, -71},
		{"eu", 13, 38, 58, -8, 24},
		{"as", 9, 1, 40, 100, 140},
	}
	var regionPIDs [][]PID
	for _, rgn := range regions {
		var pids []PID
		for i := 0; i < rgn.pops; i++ {
			pid := g.AddNode(Node{
				Name: fmt.Sprintf("ISP-C-%s%02d", rgn.name, i), Kind: Aggregation,
				ASN: 64514, Metro: rgn.name,
				Lat: rgn.latLo + rng.Float64()*(rgn.latHi-rgn.latLo),
				Lon: rgn.lonLo + rng.Float64()*(rgn.lonHi-rgn.lonLo),
			})
			pids = append(pids, pid)
			// Nearest-neighbour growth inside the region.
			if i > 0 {
				best, bestD := PID(-1), math.Inf(1)
				second, secondD := PID(-1), math.Inf(1)
				for _, q := range pids[:i] {
					d := nodeDistanceKm(g.Node(pid), g.Node(q))
					if d < bestD {
						second, secondD = best, bestD
						best, bestD = q, d
					} else if d < secondD {
						second, secondD = q, d
					}
				}
				g.AddDuplex(pid, best, 10e9, bestD, bestD)
				if second >= 0 && i >= 2 {
					g.AddDuplex(pid, second, 10e9, secondD, secondD)
				}
			}
		}
		regionPIDs = append(regionPIDs, pids)
	}
	// Transoceanic circuits: two per region pair, 2.5 Gbps, high weight.
	cross := func(a, b []PID) {
		for k := 0; k < 2; k++ {
			u := a[rng.Intn(len(a))]
			v := b[rng.Intn(len(b))]
			if _, ok := g.FindLink(u, v); ok {
				continue
			}
			d := nodeDistanceKm(g.Node(u), g.Node(v))
			g.AddDuplex(u, v, 2.5e9, d, d)
		}
	}
	cross(regionPIDs[0], regionPIDs[1])
	cross(regionPIDs[1], regionPIDs[2])
	cross(regionPIDs[0], regionPIDs[2])
	return g
}
