package core

import (
	"fmt"
	"math"
	"sort"

	"p4p/internal/topology"
)

// View is the external view of the p4p-distance interface: a full-mesh
// distance matrix over externally visible PIDs. Applications see only
// this — never the topology, prices, or link state.
type View struct {
	PIDs    []topology.PID
	D       [][]float64 // D[a][b] = distance from PIDs[a] to PIDs[b]
	Version int         // engine version at materialization time
}

// Index returns the row/column of a PID in the view.
func (v *View) Index(pid topology.PID) (int, bool) {
	for i, p := range v.PIDs {
		if p == pid {
			return i, true
		}
	}
	return -1, false
}

// Distance returns the distance between two PIDs in the view. It panics
// if either PID is absent; views are full-mesh by construction.
func (v *View) Distance(i, j topology.PID) float64 {
	a, ok := v.Index(i)
	if !ok {
		panic(fmt.Sprintf("core: PID %d not in view", i))
	}
	b, ok := v.Index(j)
	if !ok {
		panic(fmt.Sprintf("core: PID %d not in view", j))
	}
	return v.D[a][b]
}

// Ranks converts the row for source PID i into the "coarsest" usage of
// the interface (Section 4, "ISP Use Cases"): PIDs ranked by ascending
// distance, the most preferred first, excluding i itself. Ties keep PID
// order for determinism.
func (v *View) Ranks(i topology.PID) []topology.PID {
	a, ok := v.Index(i)
	if !ok {
		panic(fmt.Sprintf("core: PID %d not in view", i))
	}
	type pd struct {
		pid topology.PID
		d   float64
	}
	var rows []pd
	for b, j := range v.PIDs {
		if b == a {
			continue
		}
		rows = append(rows, pd{j, v.D[a][b]})
	}
	sort.SliceStable(rows, func(x, y int) bool {
		if rows[x].d != rows[y].d {
			return rows[x].d < rows[y].d
		}
		return rows[x].pid < rows[y].pid
	})
	out := make([]topology.PID, len(rows))
	for k, r := range rows {
		out[k] = r.pid
	}
	return out
}

// Weights converts the row for source PID i into the P4P-BitTorrent
// selection weights of Section 6.2: w_ij = 1/p_ij (a large value when
// p_ij = 0), normalized to sum to one, with an optional concave
// transform applied first to raise the relative weight of small w_ij —
// the paper's simple implementation of the robustness constraint (7).
// gamma in (0,1] is the concavity exponent; gamma = 1 disables the
// transform. Unreachable PIDs get weight 0.
func (v *View) Weights(i topology.PID, gamma float64) map[topology.PID]float64 {
	if gamma <= 0 || gamma > 1 {
		panic(fmt.Sprintf("core: concavity exponent %v out of (0, 1]", gamma))
	}
	a, ok := v.Index(i)
	if !ok {
		panic(fmt.Sprintf("core: PID %d not in view", i))
	}
	// The "large value" substituted for 1/0. Anything much larger than
	// the other weights works; it is normalized away below.
	const largeWeight = 1e6
	raw := map[topology.PID]float64{}
	sum := 0.0
	for b, j := range v.PIDs {
		if b == a {
			continue
		}
		d := v.D[a][b]
		if math.IsInf(d, 1) {
			continue
		}
		var w float64
		if d <= 0 {
			w = largeWeight
		} else {
			w = 1 / d
		}
		w = math.Pow(w, gamma)
		raw[j] = w
		sum += w
	}
	if sum == 0 {
		return raw
	}
	for j := range raw {
		raw[j] /= sum
	}
	return raw
}

// Total returns Σ d_ij t_ij for a traffic matrix indexed like the view,
// the quantity applications minimize (eq. 5).
func (v *View) Total(t [][]float64) float64 {
	sum := 0.0
	for a := range v.PIDs {
		for b := range v.PIDs {
			if a == b || t[a][b] == 0 {
				continue
			}
			sum += v.D[a][b] * t[a][b]
		}
	}
	return sum
}
