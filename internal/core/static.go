package core

import (
	"p4p/internal/topology"

	"math"
)

// This file covers the static side of the paper's "ISP Use Cases": an
// ISP can assign p-distances without running the dual engine at all —
// from OSPF weights, from hop counts, from per-link financial costs, or
// coarsened to ranks.

// HopCountView builds an external view whose distances are route hop
// counts — the simplest static assignment (d_e = 1 degenerates BDP to
// hop count, per Section 5).
func HopCountView(r *topology.Routing, pids []topology.PID) *View {
	return staticView(r, pids, func(i, j topology.PID) float64 {
		hc := r.HopCount(i, j)
		if hc < 0 {
			return math.Inf(1)
		}
		return float64(hc)
	})
}

// OSPFView builds an external view whose distances are the sums of OSPF
// link weights along routes ("It derives p-distances from OSPF weights
// and BGP preferences").
func OSPFView(r *topology.Routing, pids []topology.PID) *View {
	return staticView(r, pids, r.WeightSum)
}

// LinkCostView builds an external view from arbitrary per-link financial
// costs ("assigns higher p-distances to links with higher financial
// costs"); cost is indexed by LinkID.
func LinkCostView(r *topology.Routing, pids []topology.PID, cost []float64) *View {
	g := r.Graph()
	if len(cost) != g.NumLinks() {
		panic("core: cost vector length mismatch")
	}
	return staticView(r, pids, func(i, j topology.PID) float64 {
		if i == j {
			return 0
		}
		p := r.Path(i, j)
		if p == nil {
			return math.Inf(1)
		}
		sum := 0.0
		for _, e := range p {
			sum += cost[e]
		}
		return sum
	})
}

func staticView(r *topology.Routing, pids []topology.PID, dist func(i, j topology.PID) float64) *View {
	v := &View{PIDs: append([]topology.PID(nil), pids...), D: make([][]float64, len(pids))}
	for a, i := range pids {
		v.D[a] = make([]float64, len(pids))
		for b, j := range pids {
			if a == b {
				v.D[a][b] = 0
				continue
			}
			v.D[a][b] = dist(i, j)
		}
	}
	return v
}

// RankView coarsens a view to the "coarsest" granularity of Section 4:
// for each source PID the most preferred destination gets distance 1,
// the next 2, and so on (ties share the smaller rank). This trades
// precision ("it is unclear how to compare two sets") for robustness —
// the tradeoff the paper discusses — and is also the semantics of the
// oracle proposal of Aggarwal et al. that the paper subsumes.
func RankView(v *View) *View {
	out := &View{PIDs: append([]topology.PID(nil), v.PIDs...), D: make([][]float64, len(v.PIDs)), Version: v.Version}
	for a := range v.PIDs {
		out.D[a] = make([]float64, len(v.PIDs))
		ranked := v.Ranks(v.PIDs[a])
		rank := 1.0
		var prevD float64
		for k, pid := range ranked {
			b, _ := v.Index(pid)
			d := v.D[a][b]
			if k > 0 && d != prevD {
				rank = float64(k + 1)
			}
			if math.IsInf(d, 1) {
				out.D[a][b] = math.Inf(1)
			} else {
				out.D[a][b] = rank
			}
			prevD = d
		}
	}
	return out
}
