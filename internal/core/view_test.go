package core

import (
	"math"
	"testing"

	"p4p/internal/topology"
)

func sampleView() *View {
	return &View{
		PIDs: []topology.PID{0, 1, 2},
		D: [][]float64{
			{0, 2, 5},
			{2, 0, 1},
			{5, 1, 0},
		},
	}
}

func TestViewIndexAndDistance(t *testing.T) {
	v := sampleView()
	if i, ok := v.Index(2); !ok || i != 2 {
		t.Fatalf("Index(2) = %d, %v", i, ok)
	}
	if _, ok := v.Index(7); ok {
		t.Fatal("Index(7) should fail")
	}
	if d := v.Distance(0, 2); d != 5 {
		t.Fatalf("Distance(0,2) = %v, want 5", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Distance with unknown PID should panic")
		}
	}()
	v.Distance(0, 9)
}

func TestViewRanks(t *testing.T) {
	v := sampleView()
	ranks := v.Ranks(0)
	if len(ranks) != 2 || ranks[0] != 1 || ranks[1] != 2 {
		t.Fatalf("Ranks(0) = %v, want [1 2]", ranks)
	}
	ranks = v.Ranks(2)
	if ranks[0] != 1 || ranks[1] != 0 {
		t.Fatalf("Ranks(2) = %v, want [1 0]", ranks)
	}
}

func TestViewWeightsNormalize(t *testing.T) {
	v := sampleView()
	w := v.Weights(0, 1.0)
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
	// w ~ 1/d: PID 1 (d=2) should outweigh PID 2 (d=5).
	if w[1] <= w[2] {
		t.Fatalf("weights not inverse to distance: %v", w)
	}
	// Exact ratio check: (1/2)/(1/5) = 2.5.
	if math.Abs(w[1]/w[2]-2.5) > 1e-9 {
		t.Fatalf("weight ratio = %v, want 2.5", w[1]/w[2])
	}
}

func TestViewWeightsConcaveTransformFlattens(t *testing.T) {
	v := sampleView()
	sharp := v.Weights(0, 1.0)
	flat := v.Weights(0, 0.5)
	// The concave transform must shrink the ratio of large to small.
	if flat[1]/flat[2] >= sharp[1]/sharp[2] {
		t.Fatalf("concave transform did not flatten: %v vs %v", flat, sharp)
	}
	// Still normalized.
	if math.Abs(flat[1]+flat[2]-1) > 1e-9 {
		t.Fatal("concave weights not normalized")
	}
}

func TestViewWeightsZeroDistance(t *testing.T) {
	v := &View{
		PIDs: []topology.PID{0, 1, 2},
		D: [][]float64{
			{0, 0, 4},
			{0, 0, 4},
			{4, 4, 0},
		},
	}
	w := v.Weights(0, 1.0)
	// Zero-distance PID must dominate overwhelmingly.
	if w[1] < 0.999 {
		t.Fatalf("zero-distance weight = %v, want ~1", w[1])
	}
}

func TestViewWeightsSkipsUnreachable(t *testing.T) {
	v := &View{
		PIDs: []topology.PID{0, 1, 2},
		D: [][]float64{
			{0, math.Inf(1), 4},
			{math.Inf(1), 0, 4},
			{4, 4, 0},
		},
	}
	w := v.Weights(0, 1.0)
	if _, ok := w[1]; ok {
		t.Fatal("unreachable PID must be absent from weights")
	}
	if math.Abs(w[2]-1) > 1e-9 {
		t.Fatalf("weights = %v", w)
	}
}

func TestViewWeightsPanics(t *testing.T) {
	v := sampleView()
	for _, fn := range []func(){
		func() { v.Weights(0, 0) },
		func() { v.Weights(0, 1.5) },
		func() { v.Weights(9, 1) },
		func() { v.Ranks(9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestViewTotal(t *testing.T) {
	v := sampleView()
	tm := [][]float64{
		{0, 1, 1},
		{0, 0, 2},
		{0, 0, 0},
	}
	// 2*1 + 5*1 + 1*2 = 9.
	if got := v.Total(tm); got != 9 {
		t.Fatalf("Total = %v, want 9", got)
	}
}

func TestStaticViews(t *testing.T) {
	g, r := fourLine()
	pids := g.AggregationPIDs()
	hv := HopCountView(r, pids)
	if hv.Distance(0, 3) != 3 || hv.Distance(0, 0) != 0 {
		t.Fatalf("hop view wrong: %v", hv.D)
	}
	ov := OSPFView(r, pids)
	if ov.Distance(0, 3) != 3 { // unit weights on the line
		t.Fatalf("ospf view wrong: %v", ov.D)
	}
	cost := make([]float64, g.NumLinks())
	for i := range cost {
		cost[i] = 10
	}
	cv := LinkCostView(r, pids, cost)
	if cv.Distance(0, 2) != 20 {
		t.Fatalf("cost view wrong: %v", cv.D)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad cost vector")
		}
	}()
	LinkCostView(r, pids, []float64{1})
}

func TestRankView(t *testing.T) {
	v := sampleView()
	rv := RankView(v)
	// From PID 0: PID 1 (d=2) rank 1, PID 2 (d=5) rank 2.
	if rv.Distance(0, 1) != 1 || rv.Distance(0, 2) != 2 {
		t.Fatalf("rank view row 0 = %v", rv.D[0])
	}
	// Ties share a rank.
	tied := &View{
		PIDs: []topology.PID{0, 1, 2},
		D: [][]float64{
			{0, 3, 3},
			{3, 0, 3},
			{3, 3, 0},
		},
	}
	rt := RankView(tied)
	if rt.Distance(0, 1) != 1 || rt.Distance(0, 2) != 1 {
		t.Fatalf("tied ranks = %v", rt.D[0])
	}
	// Unreachable stays unreachable.
	inf := &View{
		PIDs: []topology.PID{0, 1},
		D: [][]float64{
			{0, math.Inf(1)},
			{1, 0},
		},
	}
	ri := RankView(inf)
	if !math.IsInf(ri.Distance(0, 1), 1) {
		t.Fatal("rank view must preserve unreachability")
	}
}
