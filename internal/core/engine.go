// Package core implements the paper's primary contribution: the
// p4p-distance interface backed by optimization decomposition
// (Sections 4–5).
//
// The iTracker's internal view is a PID-level topology with per-link
// state: capacity c_e, background traffic b_e, and — for interdomain
// links under percentile billing — a virtual capacity v_e. The engine
// maintains a dual price p_e on every link and exposes to applications
// only the external view: the full-mesh PID-pair distances
//
//	p_ij = Σ_{e on route(i,j)} price_e
//
// where price_e is p_e for the MLU objective and p_e + d_e for the
// bandwidth-distance-product objective (eq. 15).
//
// Prices evolve by the projected super-gradient method of Section 5:
//
//	p_e(τ+1) = [ p_e(τ) + μ(τ) ξ_e(τ) ]⁺_S
//
// with ξ_e = b_e + t̄_e − α c_e for MLU (Proposition 1), where t̄_e is
// the observed P4P traffic on link e and α the current maximum link
// utilization, projected onto S = {p ≥ 0, Σ_e c_e p_e = 1}; and
// ξ_e = b_e + t̄_e − c_e for BDP, projected onto the non-negative
// orthant. Interdomain links instead price the virtual-capacity
// constraint (eq. 16): ξ_e = t̄_e − v_e, p_e ≥ 0.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"p4p/internal/topology"
)

// Objective selects the ISP traffic-engineering objective that the dual
// prices optimize (Section 5 and its "Extensions to ISP Objective").
type Objective int

const (
	// MinimizeMLU minimizes the maximum link utilization (eqs. 8–14).
	MinimizeMLU Objective = iota
	// MinimizeBDP minimizes the bandwidth-distance product (eq. 15); the
	// exposed distances become p_ij + d_ij.
	MinimizeBDP
)

func (o Objective) String() string {
	switch o {
	case MinimizeMLU:
		return "min-mlu"
	case MinimizeBDP:
		return "min-bdp"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// BackgroundPolicy selects which background volumes enter the gradient
// (Section 5, "Peak Bandwidth").
type BackgroundPolicy int

const (
	// CurrentBackground uses the most recently set background rates.
	CurrentBackground BackgroundPolicy = iota
	// PeakBackground uses the per-link peak rates registered with
	// SetPeakBackground, so the ISP optimizes for peak-time conditions
	// and P4P traffic yields to background traffic at peak.
	PeakBackground
)

// Config parameterizes an Engine.
type Config struct {
	// Objective is the ISP objective; default MinimizeMLU.
	Objective Objective
	// Background selects current or peak background volumes.
	Background BackgroundPolicy
	// StepSize is the constant super-gradient step μ. The paper notes
	// that, with networks and applications continuously evolving, a
	// constant step is used in practice. Default 0.1.
	StepSize float64
	// PerturbFrac, if positive, multiplies each exposed distance by a
	// uniform factor in [1-PerturbFrac, 1+PerturbFrac] to enhance
	// privacy ("An iTracker may perturb the distances").
	PerturbFrac float64
	// PerturbSeed seeds the perturbation generator.
	PerturbSeed int64
	// IntraPID is the distance reported for p_ii (traffic staying inside
	// one PID never crosses a backbone link); default 0.
	IntraPID float64
}

// Engine is the dual-decomposition p-distance engine. It is safe for
// concurrent use: queries take a read lock, updates a write lock.
type Engine struct {
	mu sync.RWMutex

	g   *topology.Graph
	r   *topology.Routing
	cfg Config

	prices  []float64 // p_e per link
	bg      []float64 // current background rate per link, bits/sec
	bgPeak  []float64 // peak background rate per link, bits/sec
	virtual []float64 // v_e per link (bits/sec); NaN when not set
	lastT   []float64 // last observed P4P traffic per link, bits/sec

	rng     *rand.Rand
	version int // incremented on every price update
}

// NewEngine builds an engine over a routed topology. Initial prices are
// uniform on the projection set for MLU (p_e = 1/Σc_e) and zero for BDP.
func NewEngine(g *topology.Graph, r *topology.Routing, cfg Config) *Engine {
	if cfg.StepSize == 0 {
		cfg.StepSize = 0.1
	}
	if cfg.StepSize < 0 {
		panic("core: negative step size")
	}
	n := g.NumLinks()
	e := &Engine{
		g:       g,
		r:       r,
		cfg:     cfg,
		prices:  make([]float64, n),
		bg:      make([]float64, n),
		bgPeak:  make([]float64, n),
		virtual: make([]float64, n),
		lastT:   make([]float64, n),
		rng:     rand.New(rand.NewSource(cfg.PerturbSeed)),
	}
	for i := range e.virtual {
		e.virtual[i] = math.NaN()
	}
	if cfg.Objective == MinimizeMLU {
		var capSum float64
		for _, l := range g.Links() {
			capSum += l.CapacityBps
		}
		for i := range e.prices {
			e.prices[i] = 1 / capSum
		}
	}
	return e
}

// Graph returns the engine's internal-view topology.
func (e *Engine) Graph() *topology.Graph { return e.g }

// Routing returns the engine's routing.
func (e *Engine) Routing() *topology.Routing { return e.r }

// Version returns a counter incremented on every price update, letting
// callers cache distance matrices until they change.
func (e *Engine) Version() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.version
}

// SetBackground installs current background rates (bits/sec per link).
func (e *Engine) SetBackground(bps []float64) {
	if len(bps) != len(e.bg) {
		panic(fmt.Sprintf("core: background for %d links, graph has %d", len(bps), len(e.bg)))
	}
	e.mu.Lock()
	copy(e.bg, bps)
	e.mu.Unlock()
}

// SetPeakBackground installs per-link peak background rates used under
// the PeakBackground policy.
func (e *Engine) SetPeakBackground(bps []float64) {
	if len(bps) != len(e.bgPeak) {
		panic(fmt.Sprintf("core: peak background for %d links, graph has %d", len(bps), len(e.bgPeak)))
	}
	e.mu.Lock()
	copy(e.bgPeak, bps)
	e.mu.Unlock()
}

// SetVirtualCapacity installs the virtual capacity v_e (bits/sec) for an
// interdomain link; its price then tracks the eq. 16 constraint instead
// of the intradomain objective.
func (e *Engine) SetVirtualCapacity(link topology.LinkID, bps float64) {
	if bps < 0 {
		panic("core: negative virtual capacity")
	}
	e.mu.Lock()
	e.virtual[link] = bps
	e.mu.Unlock()
}

// backgroundFor returns the background slice selected by policy.
func (e *Engine) backgroundFor() []float64 {
	if e.cfg.Background == PeakBackground {
		return e.bgPeak
	}
	return e.bg
}

// ObserveTraffic records measured P4P traffic t̄_e (bits/sec per link),
// as estimated from traffic measurements at each edge (Section 5).
func (e *Engine) ObserveTraffic(bps []float64) {
	if len(bps) != len(e.lastT) {
		panic(fmt.Sprintf("core: observation for %d links, graph has %d", len(bps), len(e.lastT)))
	}
	e.mu.Lock()
	copy(e.lastT, bps)
	e.mu.Unlock()
}

// MLU returns the maximum link utilization implied by the current
// background plus last observed P4P traffic.
func (e *Engine) MLU() float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.mluLocked()
}

func (e *Engine) mluLocked() float64 {
	bg := e.backgroundFor()
	alpha := 0.0
	for i, l := range e.g.Links() {
		u := (bg[i] + e.lastT[i]) / l.CapacityBps
		if u > alpha {
			alpha = u
		}
	}
	return alpha
}

// Update performs one projected super-gradient step from the last
// observation, following Proposition 1 and its extensions.
func (e *Engine) Update() {
	e.mu.Lock()
	defer e.mu.Unlock()
	links := e.g.Links()
	bg := e.backgroundFor()
	mu := e.cfg.StepSize

	switch e.cfg.Objective {
	case MinimizeMLU:
		alpha := e.mluLocked()
		// Gradient step on intradomain links, capacity-weighted simplex
		// projection afterwards. Interdomain links with a virtual
		// capacity use the eq. 16 price instead and stay out of the
		// simplex.
		var intraIdx []int
		var intraY []float64
		var intraCap []float64
		for i, l := range links {
			if l.Interdomain && !math.IsNaN(e.virtual[i]) {
				// Normalize the constraint t_e <= v_e by v_e so the step
				// size is comparable across links of different scale.
				scale := e.virtual[i]
				if scale <= 0 {
					scale = l.CapacityBps
				}
				g := (e.lastT[i] - e.virtual[i]) / scale
				e.prices[i] = math.Max(0, e.prices[i]+mu*g)
				continue
			}
			// ξ_e = b_e + t̄_e − α c_e, normalized by Σc to keep the
			// simplex step well-scaled.
			g := (bg[i] + e.lastT[i] - alpha*l.CapacityBps) / l.CapacityBps
			intraIdx = append(intraIdx, i)
			intraY = append(intraY, e.prices[i]+mu*g/l.CapacityBps)
			intraCap = append(intraCap, l.CapacityBps)
		}
		proj := projectWeightedSimplex(intraY, intraCap)
		for k, i := range intraIdx {
			e.prices[i] = proj[k]
		}
	case MinimizeBDP:
		for i, l := range links {
			if l.Interdomain && !math.IsNaN(e.virtual[i]) {
				scale := e.virtual[i]
				if scale <= 0 {
					scale = l.CapacityBps
				}
				g := (e.lastT[i] - e.virtual[i]) / scale
				e.prices[i] = math.Max(0, e.prices[i]+mu*g)
				continue
			}
			// ξ_e = b_e + t̄_e − c_e (eq. 15), normalized by c_e.
			g := (bg[i] + e.lastT[i] - l.CapacityBps) / l.CapacityBps
			e.prices[i] = math.Max(0, e.prices[i]+mu*g)
		}
	}
	e.version++
}

// SetPrice overrides one link's dual price — a provider-side warm
// start. Typical use: initializing an interdomain link's price from
// historical billing data so the very first applications already avoid
// it; the super-gradient updates then relax or reinforce it.
func (e *Engine) SetPrice(link topology.LinkID, price float64) {
	if price < 0 {
		panic("core: negative price")
	}
	e.mu.Lock()
	e.prices[link] = price
	e.version++
	e.mu.Unlock()
}

// Price returns the current dual price of one link.
func (e *Engine) Price(link topology.LinkID) float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.prices[link]
}

// Prices returns a copy of all link prices.
func (e *Engine) Prices() []float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]float64, len(e.prices))
	copy(out, e.prices)
	return out
}

// linkPrice is the per-link contribution to exposed distances.
func (e *Engine) linkPrice(i int, l topology.Link) float64 {
	if e.cfg.Objective == MinimizeBDP {
		// Exposed distances for BDP are {p_ij + d_ij} (eq. 15 and the
		// derivation following it).
		return e.prices[i] + l.DistanceKm
	}
	return e.prices[i]
}

// PDistance returns the external-view distance p_ij between two PIDs
// under the current prices (perturbation not applied; see Matrix).
func (e *Engine) PDistance(i, j topology.PID) float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.pDistanceLocked(i, j)
}

func (e *Engine) pDistanceLocked(i, j topology.PID) float64 {
	if i == j {
		return e.cfg.IntraPID
	}
	path := e.r.Path(i, j)
	if path == nil {
		return math.Inf(1)
	}
	sum := 0.0
	for _, id := range path {
		sum += e.linkPrice(int(id), e.g.Link(id))
	}
	return sum
}

// Matrix materializes the external view over the given PIDs, applying
// the configured privacy perturbation. This is what the p4p-distance
// interface serves to applications.
func (e *Engine) Matrix(pids []topology.PID) *View {
	e.mu.Lock() // full lock: the perturbation RNG mutates
	defer e.mu.Unlock()
	v := &View{PIDs: append([]topology.PID(nil), pids...), D: make([][]float64, len(pids))}
	for a, i := range pids {
		v.D[a] = make([]float64, len(pids))
		for b, j := range pids {
			d := e.pDistanceLocked(i, j)
			if e.cfg.PerturbFrac > 0 && a != b && !math.IsInf(d, 1) {
				d *= 1 + e.cfg.PerturbFrac*(2*e.rng.Float64()-1)
			}
			v.D[a][b] = d
		}
	}
	v.Version = e.version
	return v
}
