package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func onSimplex(p, c []float64) bool {
	sum := 0.0
	for i := range p {
		if p[i] < 0 {
			return false
		}
		sum += c[i] * p[i]
	}
	return math.Abs(sum-1) < 1e-6
}

func TestProjectionLandsOnSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prop := func() bool {
		n := 1 + rng.Intn(20)
		y := make([]float64, n)
		c := make([]float64, n)
		for i := range y {
			y[i] = rng.NormFloat64() * 10
			c[i] = 0.5 + rng.Float64()*10
		}
		return onSimplex(projectWeightedSimplex(y, c), c)
	}
	if err := quick.Check(func() bool { return prop() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProjectionIdempotentOnSimplexPoints(t *testing.T) {
	// A point already on the simplex must map (near) to itself.
	c := []float64{2, 3, 5}
	p := []float64{0.1, 0.1, 0.1} // Σ c p = 0.2+0.3+0.5 = 1
	got := projectWeightedSimplex(p, c)
	for i := range p {
		if math.Abs(got[i]-p[i]) > 1e-6 {
			t.Fatalf("projection moved simplex point: %v -> %v", p, got)
		}
	}
}

func TestProjectionIsClosestPoint(t *testing.T) {
	// Compare against random feasible points: none may be closer to y.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(5)
		y := make([]float64, n)
		c := make([]float64, n)
		for i := range y {
			y[i] = rng.NormFloat64()
			c[i] = 0.5 + rng.Float64()*3
		}
		proj := projectWeightedSimplex(y, c)
		dProj := dist2(proj, y)
		for probe := 0; probe < 100; probe++ {
			q := randomSimplexPoint(rng, c)
			if dist2(q, y) < dProj-1e-9 {
				t.Fatalf("trial %d: found feasible point closer than projection", trial)
			}
		}
	}
}

func dist2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// randomSimplexPoint samples a point with p >= 0 and Σ c p = 1.
func randomSimplexPoint(rng *rand.Rand, c []float64) []float64 {
	n := len(c)
	p := make([]float64, n)
	sum := 0.0
	for i := range p {
		p[i] = rng.Float64()
		sum += c[i] * p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

func TestProjectionEmptyAndMismatch(t *testing.T) {
	if got := projectWeightedSimplex(nil, nil); got != nil {
		t.Fatal("empty projection should be nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	projectWeightedSimplex([]float64{1}, []float64{1, 2})
}
