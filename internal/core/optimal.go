package core

import (
	"fmt"
	"math"

	"p4p/internal/lp"
	"p4p/internal/mcmf"
	"p4p/internal/topology"
)

// Session holds one application session's aggregated per-PID capacities,
// the T^k of Section 4: Up[i] is the total uploading (supply) capacity
// u_i of the session's PID-i peers toward other PIDs, Down[i] the total
// downloading (demand) capacity d_i, both in bits/sec.
type Session struct {
	PIDs []topology.PID
	Up   []float64
	Down []float64
}

func (s *Session) validate() error {
	if len(s.Up) != len(s.PIDs) || len(s.Down) != len(s.PIDs) {
		return fmt.Errorf("core: session has %d PIDs, %d ups, %d downs", len(s.PIDs), len(s.Up), len(s.Down))
	}
	for i := range s.Up {
		if s.Up[i] < 0 || s.Down[i] < 0 {
			return fmt.Errorf("core: negative capacity at PID index %d", i)
		}
	}
	return nil
}

// MaxMatching computes OPT of eqs. (1)–(4): the maximum total inter-PID
// traffic the session can sustain, ignoring network efficiency. It is a
// transportation max-flow with the diagonal forbidden.
func MaxMatching(s Session) (float64, error) {
	if err := s.validate(); err != nil {
		return 0, err
	}
	n := len(s.PIDs)
	if n == 0 {
		return 0, nil
	}
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		cost[i][i] = math.Inf(1) // t_ii excluded (j != i in eqs. 1-4)
	}
	_, total, _ := mcmf.Transportation(s.Up, s.Down, cost)
	return total, nil
}

// MatchTraffic solves the application program of eqs. (5)–(7): minimize
// Σ p_ij t_ij subject to the capacity constraints (2)–(3), shipping at
// least beta*OPT total (6), with optional per-lane robustness floors
// rho[i][j] (7) interpreted as minimum fractions of PID-i's outbound
// traffic. view supplies p_ij; rho may be nil. Returns the traffic
// matrix indexed like session PIDs.
func MatchTraffic(view *View, s Session, beta float64, rho [][]float64) ([][]float64, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("core: beta %v out of [0, 1]", beta)
	}
	n := len(s.PIDs)
	if n == 0 {
		return nil, nil
	}
	// Work in normalized bandwidth units so LP coefficients are O(1):
	// capacities are O(1e9) bits/sec, far outside the solver's comfort.
	scale := 1.0
	for i := range s.Up {
		scale = math.Max(scale, math.Max(s.Up[i], s.Down[i]))
	}
	s = Session{PIDs: s.PIDs, Up: scaled(s.Up, 1/scale), Down: scaled(s.Down, 1/scale)}
	opt, err := MaxMatching(s)
	if err != nil {
		return nil, err
	}
	idx := func(i, j int) int { return i*n + j }
	p := &lp.Problem{NumVars: n * n, Maximize: false}
	p.Objective = make([]float64, n*n)
	for a := 0; a < n; a++ {
		ra, ok := view.Index(s.PIDs[a])
		if !ok {
			return nil, fmt.Errorf("core: session PID %d not in view", s.PIDs[a])
		}
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			rb, _ := view.Index(s.PIDs[b])
			d := view.D[ra][rb]
			if math.IsInf(d, 1) {
				d = 1e12 // unreachable lanes are effectively forbidden
			}
			p.Objective[idx(a, b)] = d
		}
	}
	// Diagonal pinned to zero.
	for a := 0; a < n; a++ {
		row := make([]float64, n*n)
		row[idx(a, a)] = 1
		p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: row, Rel: lp.EQ, RHS: 0})
	}
	// (2) upload capacity per PID.
	for a := 0; a < n; a++ {
		row := make([]float64, n*n)
		for b := 0; b < n; b++ {
			if b != a {
				row[idx(a, b)] = 1
			}
		}
		p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: row, Rel: lp.LE, RHS: s.Up[a]})
	}
	// (3) download capacity per PID.
	for a := 0; a < n; a++ {
		row := make([]float64, n*n)
		for b := 0; b < n; b++ {
			if b != a {
				row[idx(b, a)] = 1
			}
		}
		p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: row, Rel: lp.LE, RHS: s.Down[a]})
	}
	// (6) efficiency floor.
	all := make([]float64, n*n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				all[idx(a, b)] = 1
			}
		}
	}
	p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: all, Rel: lp.GE, RHS: beta * opt})
	// (7) robustness floors: t_ij >= rho_ij * Σ_j' t_ij'.
	if rho != nil {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b || rho[a][b] <= 0 {
					continue
				}
				row := make([]float64, n*n)
				for bp := 0; bp < n; bp++ {
					if bp == a {
						continue
					}
					row[idx(a, bp)] = -rho[a][b]
				}
				row[idx(a, b)] += 1
				p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: row, Rel: lp.GE, RHS: 0})
			}
		}
	}
	sol, err := lp.Solve(p)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: matching program %v", sol.Status)
	}
	t := make([][]float64, n)
	for a := 0; a < n; a++ {
		t[a] = make([]float64, n)
		for b := 0; b < n; b++ {
			t[a][b] = sol.X[idx(a, b)] * scale
		}
	}
	return t, nil
}

// scaled returns v multiplied elementwise by f.
func scaled(v []float64, f float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x * f
	}
	return out
}

// LinkLoads converts session traffic matrices into per-link loads
// (bits/sec per LinkID) under the given routing; loads accumulates.
func LinkLoads(r *topology.Routing, pids []topology.PID, t [][]float64, loads []float64) {
	for a, i := range pids {
		for b, j := range pids {
			if a == b || t[a][b] == 0 {
				continue
			}
			for _, e := range r.Path(i, j) {
				loads[e] += t[a][b]
			}
		}
	}
}

// OptimalMLU solves the centralized program of Figure 4 / eqs. (8)–(9)
// jointly over all sessions with the LP solver: minimize α subject to
// every session's feasibility set T^k (capacity constraints plus a
// beta*OPT_k total-traffic floor) and b_e + Σ_k t^k_e <= α c_e on every
// link. It is the infeasible-in-practice benchmark that validates the
// decomposed engine (Proposition 1). Returns α and per-session traffic
// matrices.
func OptimalMLU(r *topology.Routing, background []float64, sessions []Session, beta float64) (float64, [][][]float64, error) {
	g := r.Graph()
	if len(background) != g.NumLinks() {
		return 0, nil, fmt.Errorf("core: background for %d links, graph has %d", len(background), g.NumLinks())
	}
	// Normalize bandwidth units to keep LP coefficients O(1); α is
	// scale-invariant, flows are rescaled on the way out.
	scale := 1.0
	for _, l := range g.Links() {
		scale = math.Max(scale, l.CapacityBps)
	}
	background = scaled(background, 1/scale)
	normalized := make([]Session, len(sessions))
	for k, s := range sessions {
		if err := s.validate(); err != nil {
			return 0, nil, err
		}
		normalized[k] = Session{PIDs: s.PIDs, Up: scaled(s.Up, 1/scale), Down: scaled(s.Down, 1/scale)}
	}
	sessions = normalized
	// Variable layout: per-session lane variables, then α last.
	offsets := make([]int, len(sessions))
	nvar := 0
	for k, s := range sessions {
		offsets[k] = nvar
		nvar += len(s.PIDs) * len(s.PIDs)
	}
	alphaVar := nvar
	nvar++

	p := &lp.Problem{NumVars: nvar, Maximize: false}
	p.Objective = make([]float64, nvar)
	p.Objective[alphaVar] = 1

	for k, s := range sessions {
		n := len(s.PIDs)
		idx := func(i, j int) int { return offsets[k] + i*n + j }
		opt, err := MaxMatching(s)
		if err != nil {
			return 0, nil, err
		}
		for a := 0; a < n; a++ {
			row := make([]float64, nvar)
			row[idx(a, a)] = 1
			p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: row, Rel: lp.EQ, RHS: 0})
		}
		for a := 0; a < n; a++ {
			row := make([]float64, nvar)
			for b := 0; b < n; b++ {
				if b != a {
					row[idx(a, b)] = 1
				}
			}
			p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: row, Rel: lp.LE, RHS: s.Up[a]})
		}
		for a := 0; a < n; a++ {
			row := make([]float64, nvar)
			for b := 0; b < n; b++ {
				if b != a {
					row[idx(b, a)] = 1
				}
			}
			p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: row, Rel: lp.LE, RHS: s.Down[a]})
		}
		row := make([]float64, nvar)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b {
					row[idx(a, b)] = 1
				}
			}
		}
		p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: row, Rel: lp.GE, RHS: beta * opt})
	}
	// Link utilization rows: b_e + Σ t^k_ij I_e(i,j) − α c_e <= 0.
	for e := 0; e < g.NumLinks(); e++ {
		row := make([]float64, nvar)
		touched := false
		for k, s := range sessions {
			n := len(s.PIDs)
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					if a == b {
						continue
					}
					if r.OnPath(topology.LinkID(e), s.PIDs[a], s.PIDs[b]) {
						row[offsets[k]+a*n+b] = 1
						touched = true
					}
				}
			}
		}
		if !touched && background[e] == 0 {
			continue
		}
		row[alphaVar] = -g.Link(topology.LinkID(e)).CapacityBps / scale
		p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: row, Rel: lp.LE, RHS: -background[e]})
	}
	sol, err := lp.Solve(p)
	if err != nil {
		return 0, nil, err
	}
	if sol.Status != lp.Optimal {
		return 0, nil, fmt.Errorf("core: MLU program %v", sol.Status)
	}
	flows := make([][][]float64, len(sessions))
	for k, s := range sessions {
		n := len(s.PIDs)
		flows[k] = make([][]float64, n)
		for a := 0; a < n; a++ {
			flows[k][a] = make([]float64, n)
			for b := 0; b < n; b++ {
				flows[k][a][b] = sol.X[offsets[k]+a*n+b] * scale
			}
		}
	}
	return sol.X[alphaVar], flows, nil
}
