package core

import (
	"math"
	"math/rand"
	"testing"

	"p4p/internal/topology"
)

func TestMaxMatchingTwoPIDs(t *testing.T) {
	s := Session{
		PIDs: []topology.PID{0, 1},
		Up:   []float64{10, 5},
		Down: []float64{5, 10},
	}
	opt, err := MaxMatching(s)
	if err != nil {
		t.Fatal(err)
	}
	// t01 <= min(10,10)=10 and t10 <= min(5,5)=5 -> 15.
	if math.Abs(opt-15) > 1e-6 {
		t.Fatalf("OPT = %v, want 15", opt)
	}
}

func TestMaxMatchingExcludesDiagonal(t *testing.T) {
	// One PID alone can never match.
	s := Session{PIDs: []topology.PID{0}, Up: []float64{100}, Down: []float64{100}}
	opt, err := MaxMatching(s)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 0 {
		t.Fatalf("single-PID OPT = %v, want 0", opt)
	}
}

func TestMaxMatchingEmptyAndInvalid(t *testing.T) {
	if opt, err := MaxMatching(Session{}); err != nil || opt != 0 {
		t.Fatalf("empty session: %v, %v", opt, err)
	}
	if _, err := MaxMatching(Session{PIDs: []topology.PID{0}, Up: []float64{1, 2}, Down: []float64{1}}); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := MaxMatching(Session{PIDs: []topology.PID{0}, Up: []float64{-1}, Down: []float64{1}}); err == nil {
		t.Fatal("expected negativity error")
	}
}

func TestMatchTrafficShipsBetaOPT(t *testing.T) {
	g, r := fourLine()
	pids := g.AggregationPIDs()
	view := HopCountView(r, pids)
	s := Session{
		PIDs: pids,
		Up:   []float64{10, 10, 10, 10},
		Down: []float64{10, 10, 10, 10},
	}
	opt, _ := MaxMatching(s)
	for _, beta := range []float64{1.0, 0.8, 0.5} {
		tm, err := MatchTraffic(view, s, beta, nil)
		if err != nil {
			t.Fatalf("beta=%v: %v", beta, err)
		}
		total := 0.0
		for a := range tm {
			for b := range tm[a] {
				if a == b && tm[a][b] != 0 {
					t.Fatal("diagonal traffic")
				}
				if tm[a][b] < -1e-9 {
					t.Fatal("negative traffic")
				}
				total += tm[a][b]
			}
		}
		if total < beta*opt-1e-6 {
			t.Fatalf("beta=%v: shipped %v < %v", beta, total, beta*opt)
		}
		// Capacity constraints.
		for a := range tm {
			rowSum, colSum := 0.0, 0.0
			for b := range tm {
				rowSum += tm[a][b]
				colSum += tm[b][a]
			}
			if rowSum > s.Up[a]+1e-6 || colSum > s.Down[a]+1e-6 {
				t.Fatalf("beta=%v: capacity violated at PID %d", beta, a)
			}
		}
	}
}

func TestMatchTrafficPrefersCheapLanes(t *testing.T) {
	// With beta < 1 the optimizer should drop the expensive long lanes
	// and keep adjacent ones.
	g, r := fourLine()
	pids := g.AggregationPIDs()
	view := HopCountView(r, pids)
	s := Session{
		PIDs: pids,
		Up:   []float64{10, 10, 10, 10},
		Down: []float64{10, 10, 10, 10},
	}
	tm, err := MatchTraffic(view, s, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	costHalf := view.Total(tm)
	tmFull, err := MatchTraffic(view, s, 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	costFull := view.Total(tmFull)
	if costHalf >= costFull {
		t.Fatalf("relaxing beta did not reduce cost: %v vs %v", costHalf, costFull)
	}
	// The extreme lane 0->3 (distance 3) should carry nothing at beta=0.5.
	if tm[0][3] > 1e-6 {
		t.Fatalf("expensive lane used at beta=0.5: %v", tm[0][3])
	}
}

func TestMatchTrafficRobustnessFloor(t *testing.T) {
	g, r := fourLine()
	pids := g.AggregationPIDs()
	view := HopCountView(r, pids)
	s := Session{
		PIDs: pids,
		Up:   []float64{10, 0, 0, 0},
		Down: []float64{0, 10, 10, 10},
	}
	// Demand that at least 30% of PID-0 outbound goes to PID 3 (eq. 7)
	// even though it is the most expensive lane.
	rho := make([][]float64, 4)
	for i := range rho {
		rho[i] = make([]float64, 4)
	}
	rho[0][3] = 0.3
	tm, err := MatchTraffic(view, s, 1.0, rho)
	if err != nil {
		t.Fatal(err)
	}
	out := tm[0][1] + tm[0][2] + tm[0][3]
	if out <= 0 {
		t.Fatal("no traffic shipped")
	}
	if tm[0][3] < 0.3*out-1e-6 {
		t.Fatalf("robustness floor violated: %v of %v", tm[0][3], out)
	}
	// Without the floor, lane 0->3 is unused.
	tmFree, err := MatchTraffic(view, s, 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tmFree[0][3] > 1e-6 {
		t.Fatalf("unexpected traffic on 0->3 without floor: %v", tmFree[0][3])
	}
}

func TestMatchTrafficErrors(t *testing.T) {
	g, r := fourLine()
	pids := g.AggregationPIDs()
	view := HopCountView(r, pids)
	s := Session{PIDs: pids, Up: []float64{1, 1, 1, 1}, Down: []float64{1, 1, 1, 1}}
	if _, err := MatchTraffic(view, s, -0.1, nil); err == nil {
		t.Fatal("expected beta range error")
	}
	if _, err := MatchTraffic(view, s, 1.1, nil); err == nil {
		t.Fatal("expected beta range error")
	}
	alien := Session{PIDs: []topology.PID{99}, Up: []float64{1}, Down: []float64{1}}
	if _, err := MatchTraffic(view, alien, 1, nil); err == nil {
		t.Fatal("expected unknown-PID error")
	}
	if tm, err := MatchTraffic(view, Session{}, 1, nil); err != nil || tm != nil {
		t.Fatalf("empty session: %v, %v", tm, err)
	}
}

func TestLinkLoads(t *testing.T) {
	g, r := fourLine()
	pids := g.AggregationPIDs()
	tm := make([][]float64, 4)
	for i := range tm {
		tm[i] = make([]float64, 4)
	}
	tm[0][2] = 5 // traverses links 0->1 and 1->2
	loads := make([]float64, g.NumLinks())
	LinkLoads(r, pids, tm, loads)
	path := r.Path(0, 2)
	for _, e := range path {
		if loads[e] != 5 {
			t.Fatalf("load on path link %d = %v, want 5", e, loads[e])
		}
	}
	total := 0.0
	for _, v := range loads {
		total += v
	}
	if total != 10 {
		t.Fatalf("total load = %v, want 10 (2 hops x 5)", total)
	}
}

func TestOptimalMLUOnLine(t *testing.T) {
	g, r := fourLine()
	pids := g.AggregationPIDs()
	// One session: PID 0 uploads 1 Gbps, PID 3 downloads 1 Gbps. All
	// traffic must cross every link: optimal alpha = 1.0 at beta=1.
	s := Session{
		PIDs: pids,
		Up:   []float64{1e9, 0, 0, 0},
		Down: []float64{0, 0, 0, 1e9},
	}
	alpha, flows, err := OptimalMLU(r, make([]float64, g.NumLinks()), []Session{s}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alpha-1.0) > 1e-6 {
		t.Fatalf("alpha = %v, want 1.0", alpha)
	}
	if math.Abs(flows[0][0][3]-1e9) > 1 {
		t.Fatalf("flow 0->3 = %v, want 1e9", flows[0][0][3])
	}
	// With beta=0.5 the LP halves the traffic: alpha = 0.5.
	alpha, _, err = OptimalMLU(r, make([]float64, g.NumLinks()), []Session{s}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alpha-0.5) > 1e-6 {
		t.Fatalf("alpha at beta=0.5 = %v, want 0.5", alpha)
	}
}

func TestOptimalMLUSpreadsAcrossPIDs(t *testing.T) {
	// Star-free choice: PID 0 can send to PID 1 (1 hop) or PID 3 (3
	// hops). The LP must prefer balanced low-utilization patterns.
	g, r := fourLine()
	pids := g.AggregationPIDs()
	s := Session{
		PIDs: pids,
		Up:   []float64{1e9, 0, 0, 0},
		Down: []float64{0, 1e9, 0, 1e9},
	}
	alpha, flows, err := OptimalMLU(r, make([]float64, g.NumLinks()), []Session{s}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// All upload fits on the first link either way: alpha = 1, but the
	// optimum must not push any avoidable traffic deep into the chain.
	if alpha > 1+1e-6 {
		t.Fatalf("alpha = %v, want <= 1", alpha)
	}
	if flows[0][0][1] < 1e9-1e3 {
		t.Fatalf("LP should satisfy demand at the near PID; got %v", flows[0][0][1])
	}
}

func TestOptimalMLUBackgroundCounts(t *testing.T) {
	g, r := fourLine()
	pids := g.AggregationPIDs()
	bg := make([]float64, g.NumLinks())
	bg[0] = 0.5e9
	s := Session{
		PIDs: pids,
		Up:   []float64{0.5e9, 0, 0, 0},
		Down: []float64{0, 0.5e9, 0, 0},
	}
	alpha, _, err := OptimalMLU(r, bg, []Session{s}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Link 0 carries 0.5 background + 0.5 P4P = full.
	if math.Abs(alpha-1.0) > 1e-6 {
		t.Fatalf("alpha = %v, want 1.0", alpha)
	}
}

// TestDecompositionConvergesToOptimal is the paper's Proposition 1 in
// action (experiment X2): iterating (application optimizes against
// prices) <-> (iTracker updates prices by projected super-gradient)
// drives the time-averaged traffic pattern's MLU close to the
// centralized LP optimum.
func TestDecompositionConvergesToOptimal(t *testing.T) {
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	pids := g.AggregationPIDs()
	rng := rand.New(rand.NewSource(17))
	s := Session{PIDs: pids}
	for range pids {
		s.Up = append(s.Up, (0.5+rng.Float64())*2e9)
		s.Down = append(s.Down, (0.5+rng.Float64())*2e9)
	}
	bg := make([]float64, g.NumLinks())
	optAlpha, _, err := OptimalMLU(r, bg, []Session{s}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if optAlpha <= 0 {
		t.Fatalf("degenerate optimal alpha %v", optAlpha)
	}

	e := NewEngine(g, r, Config{Objective: MinimizeMLU, StepSize: 0.05})
	avgLoads := make([]float64, g.NumLinks())
	iters := 120
	for it := 1; it <= iters; it++ {
		view := e.Matrix(pids)
		tm, err := MatchTraffic(view, s, 1.0, nil)
		if err != nil {
			t.Fatal(err)
		}
		loads := make([]float64, g.NumLinks())
		LinkLoads(r, pids, tm, loads)
		// Primal averaging: the time-averaged pattern converges even
		// though each iterate is an extreme point.
		for i := range avgLoads {
			avgLoads[i] += (loads[i] - avgLoads[i]) / float64(it)
		}
		e.ObserveTraffic(loads)
		e.Update()
	}
	mlu := 0.0
	for i, l := range g.Links() {
		u := avgLoads[i] / l.CapacityBps
		if u > mlu {
			mlu = u
		}
	}
	if mlu > 1.35*optAlpha {
		t.Fatalf("decomposed MLU %v too far above optimal %v", mlu, optAlpha)
	}
}
