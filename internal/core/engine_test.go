package core

import (
	"math"
	"testing"

	"p4p/internal/topology"
)

// fourLine builds a 4-node chain with 1 Gbps links.
func fourLine() (*topology.Graph, *topology.Routing) {
	g := topology.NewGraph("line")
	var pids []topology.PID
	for i := 0; i < 4; i++ {
		pids = append(pids, g.AddNode(topology.Node{Name: string(rune('a' + i)), Kind: topology.Aggregation}))
	}
	for i := 0; i < 3; i++ {
		g.AddDuplex(pids[i], pids[i+1], 1e9, 1, 100)
	}
	return g, topology.ComputeRouting(g)
}

func TestEngineInitialPricesOnSimplex(t *testing.T) {
	g, r := fourLine()
	e := NewEngine(g, r, Config{Objective: MinimizeMLU})
	sum := 0.0
	for i, l := range g.Links() {
		sum += l.CapacityBps * e.Prices()[i]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("initial prices off simplex: Σcp = %v", sum)
	}
}

func TestEnginePricesStayOnSimplexAfterUpdates(t *testing.T) {
	g, r := fourLine()
	e := NewEngine(g, r, Config{Objective: MinimizeMLU, StepSize: 0.2})
	obs := make([]float64, g.NumLinks())
	obs[0] = 0.9e9 // hammer the first link
	for iter := 0; iter < 30; iter++ {
		e.ObserveTraffic(obs)
		e.Update()
		sum := 0.0
		for i, l := range g.Links() {
			p := e.Price(topology.LinkID(i))
			if p < 0 {
				t.Fatalf("negative price at iter %d", iter)
			}
			sum += l.CapacityBps * p
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("prices off simplex at iter %d: %v", iter, sum)
		}
	}
}

func TestEngineRaisesPriceOfCongestedLink(t *testing.T) {
	g, r := fourLine()
	e := NewEngine(g, r, Config{Objective: MinimizeMLU, StepSize: 0.2})
	obs := make([]float64, g.NumLinks())
	obs[0] = 0.9e9
	obs[2] = 0.1e9
	for iter := 0; iter < 50; iter++ {
		e.ObserveTraffic(obs)
		e.Update()
	}
	if e.Price(0) <= e.Price(2) {
		t.Fatalf("congested link price %v not above lighter link %v", e.Price(0), e.Price(2))
	}
	// The idle links' prices must decay relative to the congested one.
	if e.Price(4) >= e.Price(0) {
		t.Fatalf("idle link price %v >= congested %v", e.Price(4), e.Price(0))
	}
}

func TestEngineMLUMetric(t *testing.T) {
	g, r := fourLine()
	e := NewEngine(g, r, Config{})
	bg := make([]float64, g.NumLinks())
	bg[1] = 0.5e9
	e.SetBackground(bg)
	obs := make([]float64, g.NumLinks())
	obs[1] = 0.25e9
	e.ObserveTraffic(obs)
	if got := e.MLU(); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("MLU = %v, want 0.75", got)
	}
}

func TestEnginePeakBackgroundPolicy(t *testing.T) {
	g, r := fourLine()
	e := NewEngine(g, r, Config{Background: PeakBackground})
	cur := make([]float64, g.NumLinks())
	peak := make([]float64, g.NumLinks())
	cur[0] = 0.1e9
	peak[0] = 0.8e9
	e.SetBackground(cur)
	e.SetPeakBackground(peak)
	if got := e.MLU(); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("peak-policy MLU = %v, want 0.8", got)
	}
}

func TestEngineBDPDistancesIncludeLinkDistance(t *testing.T) {
	g, r := fourLine()
	e := NewEngine(g, r, Config{Objective: MinimizeBDP})
	// Initial BDP prices are zero, so p_ij = d_ij = 100 km per hop.
	if d := e.PDistance(0, 3); math.Abs(d-300) > 1e-9 {
		t.Fatalf("BDP distance = %v, want 300", d)
	}
	// Uncongested network: prices stay at zero after updates.
	e.ObserveTraffic(make([]float64, g.NumLinks()))
	e.Update()
	if d := e.PDistance(0, 3); math.Abs(d-300) > 1e-9 {
		t.Fatalf("BDP distance after idle update = %v, want 300", d)
	}
	// Overloaded link gains a positive price.
	obs := make([]float64, g.NumLinks())
	obs[0] = 1.5e9
	e.ObserveTraffic(obs)
	e.Update()
	if e.Price(0) <= 0 {
		t.Fatal("overloaded BDP link price should rise above 0")
	}
	if e.Price(2) != 0 {
		t.Fatalf("idle BDP link price = %v, want 0", e.Price(2))
	}
}

func TestEngineIntraPIDDistance(t *testing.T) {
	g, r := fourLine()
	e := NewEngine(g, r, Config{IntraPID: 0.25})
	if d := e.PDistance(1, 1); d != 0.25 {
		t.Fatalf("intra-PID distance = %v, want 0.25", d)
	}
}

func TestEngineUnreachableDistance(t *testing.T) {
	g := topology.NewGraph("oneway")
	a := g.AddNode(topology.Node{Name: "a"})
	b := g.AddNode(topology.Node{Name: "b"})
	g.AddLink(topology.Link{Src: a, Dst: b, CapacityBps: 1e9, Weight: 1})
	r := topology.ComputeRouting(g)
	e := NewEngine(g, r, Config{})
	if !math.IsInf(e.PDistance(b, a), 1) {
		t.Fatal("unreachable distance should be +Inf")
	}
}

func TestEngineInterdomainVirtualCapacityPricing(t *testing.T) {
	g, r := fourLine()
	// Mark link 0 interdomain with a small virtual capacity.
	l := g.Link(0)
	l.Interdomain = true
	g.SetLink(l)
	e := NewEngine(g, r, Config{StepSize: 0.5})
	e.SetVirtualCapacity(0, 0.1e9)
	obs := make([]float64, g.NumLinks())
	obs[0] = 0.5e9 // five times the virtual capacity
	before := e.Price(0)
	for i := 0; i < 5; i++ {
		e.ObserveTraffic(obs)
		e.Update()
	}
	if e.Price(0) <= before {
		t.Fatal("interdomain price should rise when traffic exceeds v_e")
	}
	// Under-capacity traffic drives the price back toward zero.
	obs[0] = 0.01e9
	for i := 0; i < 50; i++ {
		e.ObserveTraffic(obs)
		e.Update()
	}
	if e.Price(0) != 0 {
		t.Fatalf("interdomain price = %v after sustained headroom, want 0", e.Price(0))
	}
}

func TestEngineVersionIncrements(t *testing.T) {
	g, r := fourLine()
	e := NewEngine(g, r, Config{})
	v0 := e.Version()
	e.ObserveTraffic(make([]float64, g.NumLinks()))
	e.Update()
	if e.Version() != v0+1 {
		t.Fatalf("version = %d, want %d", e.Version(), v0+1)
	}
}

func TestEngineMatrixPerturbation(t *testing.T) {
	g, r := fourLine()
	plain := NewEngine(g, r, Config{})
	noisy := NewEngine(g, r, Config{PerturbFrac: 0.1, PerturbSeed: 3})
	pids := g.AggregationPIDs()
	vp := plain.Matrix(pids)
	vn := noisy.Matrix(pids)
	sawDifference := false
	for a := range pids {
		for b := range pids {
			if a == b {
				if vn.D[a][b] != vp.D[a][b] {
					t.Fatal("diagonal must not be perturbed")
				}
				continue
			}
			ratio := vn.D[a][b] / vp.D[a][b]
			if ratio < 0.9-1e-9 || ratio > 1.1+1e-9 {
				t.Fatalf("perturbation out of bounds: ratio %v", ratio)
			}
			if ratio != 1 {
				sawDifference = true
			}
		}
	}
	if !sawDifference {
		t.Fatal("perturbation had no effect")
	}
}

func TestEnginePanicsOnBadInput(t *testing.T) {
	g, r := fourLine()
	e := NewEngine(g, r, Config{})
	for _, fn := range []func(){
		func() { e.SetBackground([]float64{1}) },
		func() { e.SetPeakBackground([]float64{1}) },
		func() { e.ObserveTraffic([]float64{1}) },
		func() { e.SetVirtualCapacity(0, -1) },
		func() { NewEngine(g, r, Config{StepSize: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestObjectiveString(t *testing.T) {
	if MinimizeMLU.String() != "min-mlu" || MinimizeBDP.String() != "min-bdp" || Objective(9).String() == "" {
		t.Fatal("Objective strings wrong")
	}
}

func TestEngineSetPriceWarmStart(t *testing.T) {
	g, r := fourLine()
	e := NewEngine(g, r, Config{})
	v0 := e.Version()
	e.SetPrice(1, 2.5)
	if e.Price(1) != 2.5 {
		t.Fatalf("price = %v, want 2.5", e.Price(1))
	}
	if e.Version() == v0 {
		t.Fatal("SetPrice must advance the version so cached views refresh")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative price")
		}
	}()
	e.SetPrice(0, -1)
}
