package core

import "math"

// projectWeightedSimplex computes the Euclidean projection of y onto the
// weighted simplex S = { p >= 0 : Σ_e c_e p_e = 1 } used by the MLU
// decomposition (eq. 14). The KKT conditions give p_e = max(0, y_e − λ c_e)
// for the λ solving f(λ) = Σ_e c_e max(0, y_e − λ c_e) = 1; f is
// continuous, piecewise-linear and strictly decreasing wherever positive,
// so bisection converges.
func projectWeightedSimplex(y, c []float64) []float64 {
	if len(y) != len(c) {
		panic("core: projection dimensions differ")
	}
	if len(y) == 0 {
		return nil
	}
	f := func(lambda float64) float64 {
		sum := 0.0
		for i := range y {
			v := y[i] - lambda*c[i]
			if v > 0 {
				sum += c[i] * v
			}
		}
		return sum
	}
	// Bracket the root. λ_hi such that f(λ_hi) <= 1: at
	// λ = max_i y_i/c_i every term is zero, so f = 0 <= 1.
	lo := math.Inf(-1)
	hi := math.Inf(1)
	for i := range y {
		r := y[i] / c[i]
		if math.IsInf(lo, -1) || r < lo {
			lo = r
		}
		if math.IsInf(hi, 1) || r > hi {
			hi = r
		}
	}
	// Push lo down until f(lo) >= 1.
	span := hi - lo
	if span <= 0 {
		span = math.Abs(hi) + 1
	}
	for f(lo) < 1 {
		lo -= span
		span *= 2
	}
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if f(mid) > 1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	lambda := (lo + hi) / 2
	out := make([]float64, len(y))
	for i := range y {
		v := y[i] - lambda*c[i]
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	// Exact renormalization to absorb bisection residue.
	sum := 0.0
	for i := range out {
		sum += c[i] * out[i]
	}
	if sum > 0 {
		inv := 1 / sum
		for i := range out {
			out[i] *= inv
		}
	}
	return out
}
