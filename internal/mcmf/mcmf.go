// Package mcmf implements min-cost flow on directed graphs with float64
// capacities and costs, using successive shortest augmenting paths
// (Bellman–Ford, which tolerates the negative reduced costs that appear
// with real-valued data).
//
// The P4P reproduction uses it for the upload/download bandwidth-matching
// optimization of the paper's Section 4 (eqs. 1–7): matching is a
// transportation problem, so min-cost flow solves it exactly and serves
// as an independent cross-check of the simplex solver in internal/lp.
package mcmf

import (
	"fmt"
	"math"
)

// EdgeID identifies an edge added with AddEdge.
type EdgeID int

// Graph is a flow network. Nodes are dense integers [0, n).
type Graph struct {
	n     int
	heads [][]int // adjacency: indices into arcs
	arcs  []arc   // arcs stored in pairs: forward at 2k, residual at 2k+1
}

type arc struct {
	to   int
	cap  float64
	cost float64
}

// New returns an empty flow network on n nodes.
func New(n int) *Graph {
	return &Graph{n: n, heads: make([][]int, n)}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// AddEdge adds a directed edge with the given capacity and per-unit cost
// and returns its ID. Capacity must be non-negative.
func (g *Graph) AddEdge(from, to int, capacity, cost float64) EdgeID {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("mcmf: edge endpoint out of range: %d->%d (n=%d)", from, to, g.n))
	}
	if capacity < 0 {
		panic(fmt.Sprintf("mcmf: negative capacity on %d->%d", from, to))
	}
	id := EdgeID(len(g.arcs) / 2)
	g.heads[from] = append(g.heads[from], len(g.arcs))
	g.arcs = append(g.arcs, arc{to: to, cap: capacity, cost: cost})
	g.heads[to] = append(g.heads[to], len(g.arcs))
	g.arcs = append(g.arcs, arc{to: from, cap: 0, cost: -cost})
	return id
}

// Flow returns the flow currently routed on the edge (the residual
// capacity of its reverse arc).
func (g *Graph) Flow(id EdgeID) float64 { return g.arcs[2*int(id)+1].cap }

// Capacity returns the remaining capacity of the edge.
func (g *Graph) Capacity(id EdgeID) float64 { return g.arcs[2*int(id)].cap }

const eps = 1e-9

// Run augments flow from s to t along successive cheapest paths until
// either maxFlow units have been sent or no augmenting path remains. It
// returns the flow actually sent and its total cost. Pass
// math.Inf(1) as maxFlow for a full min-cost max-flow.
func (g *Graph) Run(s, t int, maxFlow float64) (flow, cost float64) {
	if s == t {
		return 0, 0
	}
	for flow < maxFlow-eps {
		dist, prevArc := g.bellmanFord(s)
		if math.IsInf(dist[t], 1) {
			break
		}
		// Bottleneck along the path.
		push := maxFlow - flow
		for v := t; v != s; {
			a := prevArc[v]
			if g.arcs[a].cap < push {
				push = g.arcs[a].cap
			}
			v = g.arcs[a^1].to
		}
		if push <= eps {
			break
		}
		for v := t; v != s; {
			a := prevArc[v]
			g.arcs[a].cap -= push
			g.arcs[a^1].cap += push
			v = g.arcs[a^1].to
		}
		flow += push
		cost += push * dist[t]
	}
	return flow, cost
}

// MaxFlow computes a min-cost max-flow from s to t.
func (g *Graph) MaxFlow(s, t int) (flow, cost float64) {
	return g.Run(s, t, math.Inf(1))
}

// bellmanFord returns shortest distances by cost in the residual graph
// and the arc used to reach each node (valid where dist is finite).
func (g *Graph) bellmanFord(s int) (dist []float64, prevArc []int) {
	dist = make([]float64, g.n)
	prevArc = make([]int, g.n)
	inQueue := make([]bool, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevArc[i] = -1
	}
	dist[s] = 0
	queue := []int{s}
	inQueue[s] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		for _, ai := range g.heads[u] {
			a := g.arcs[ai]
			if a.cap <= eps {
				continue
			}
			nd := dist[u] + a.cost
			if nd < dist[a.to]-eps {
				dist[a.to] = nd
				prevArc[a.to] = ai
				if !inQueue[a.to] {
					queue = append(queue, a.to)
					inQueue[a.to] = true
				}
			}
		}
	}
	return dist, prevArc
}

// Transportation solves the transportation problem directly: supplies[i]
// units available at sources, demands[j] required at sinks,
// cost[i][j] per unit (use math.Inf(1) to forbid a lane). It returns the
// shipment matrix, the total shipped, and the total cost. Total shipped
// is min(Σsupply, Σdemand) when all lanes are open.
func Transportation(supplies, demands []float64, cost [][]float64) (ship [][]float64, total, totalCost float64) {
	ns, nd := len(supplies), len(demands)
	// Node layout: 0 = source, 1..ns = supply nodes, ns+1..ns+nd = demand
	// nodes, ns+nd+1 = sink.
	g := New(ns + nd + 2)
	src, snk := 0, ns+nd+1
	laneEdges := make([][]EdgeID, ns)
	for i := 0; i < ns; i++ {
		g.AddEdge(src, 1+i, supplies[i], 0)
		laneEdges[i] = make([]EdgeID, nd)
		for j := 0; j < nd; j++ {
			if math.IsInf(cost[i][j], 1) {
				laneEdges[i][j] = -1
				continue
			}
			laneEdges[i][j] = g.AddEdge(1+i, 1+ns+j, math.Inf(1), cost[i][j])
		}
	}
	for j := 0; j < nd; j++ {
		g.AddEdge(1+ns+j, snk, demands[j], 0)
	}
	total, totalCost = g.MaxFlow(src, snk)
	ship = make([][]float64, ns)
	for i := 0; i < ns; i++ {
		ship[i] = make([]float64, nd)
		for j := 0; j < nd; j++ {
			if laneEdges[i][j] >= 0 {
				ship[i][j] = g.Flow(laneEdges[i][j])
			}
		}
	}
	return ship, total, totalCost
}
