package mcmf

import (
	"math"
	"math/rand"
	"testing"

	"p4p/internal/lp"
)

func TestSimpleMaxFlow(t *testing.T) {
	// s(0) -> a(1) -> t(2) with caps 5 and 3: max flow 3.
	g := New(3)
	g.AddEdge(0, 1, 5, 1)
	g.AddEdge(1, 2, 3, 1)
	flow, cost := g.MaxFlow(0, 2)
	if math.Abs(flow-3) > 1e-9 {
		t.Fatalf("flow = %v, want 3", flow)
	}
	if math.Abs(cost-6) > 1e-9 {
		t.Fatalf("cost = %v, want 6", cost)
	}
}

func TestPrefersCheaperPath(t *testing.T) {
	// Two parallel paths s->t: cost 1 cap 2, cost 5 cap 10. Send 5 units.
	g := New(4)
	g.AddEdge(0, 1, 2, 1)
	g.AddEdge(1, 3, 2, 0)
	g.AddEdge(0, 2, 10, 5)
	g.AddEdge(2, 3, 10, 0)
	flow, cost := g.Run(0, 3, 5)
	if math.Abs(flow-5) > 1e-9 {
		t.Fatalf("flow = %v, want 5", flow)
	}
	// 2 units at cost 1 + 3 units at cost 5 = 17.
	if math.Abs(cost-17) > 1e-9 {
		t.Fatalf("cost = %v, want 17", cost)
	}
}

func TestRunRespectsTarget(t *testing.T) {
	g := New(2)
	e := g.AddEdge(0, 1, 10, 2)
	flow, cost := g.Run(0, 1, 4)
	if math.Abs(flow-4) > 1e-9 || math.Abs(cost-8) > 1e-9 {
		t.Fatalf("flow, cost = %v, %v; want 4, 8", flow, cost)
	}
	if math.Abs(g.Flow(e)-4) > 1e-9 {
		t.Fatalf("edge flow = %v, want 4", g.Flow(e))
	}
	if math.Abs(g.Capacity(e)-6) > 1e-9 {
		t.Fatalf("edge residual = %v, want 6", g.Capacity(e))
	}
}

func TestSameSourceSink(t *testing.T) {
	g := New(1)
	flow, cost := g.MaxFlow(0, 0)
	if flow != 0 || cost != 0 {
		t.Fatalf("flow, cost = %v, %v; want 0, 0", flow, cost)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(2)
	flow, cost := g.MaxFlow(0, 1)
	if flow != 0 || cost != 0 {
		t.Fatalf("flow, cost = %v, %v; want 0, 0", flow, cost)
	}
}

func TestNegativeCostRerouting(t *testing.T) {
	// The residual network must allow rerouting: classic diamond where the
	// second augmentation partially cancels the first.
	g := New(4)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(0, 2, 1, 3)
	g.AddEdge(1, 2, 1, -2)
	g.AddEdge(1, 3, 1, 4)
	g.AddEdge(2, 3, 2, 1)
	flow, cost := g.MaxFlow(0, 3)
	if math.Abs(flow-2) > 1e-9 {
		t.Fatalf("flow = %v, want 2", flow)
	}
	// Cheapest routing: 0->1->2->3 (cost 0) and 0->2->3 (cost 4) = 4.
	if math.Abs(cost-4) > 1e-9 {
		t.Fatalf("cost = %v, want 4", cost)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(2)
	for _, fn := range []func(){
		func() { g.AddEdge(-1, 0, 1, 0) },
		func() { g.AddEdge(0, 5, 1, 0) },
		func() { g.AddEdge(0, 1, -1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTransportationMatchesLP(t *testing.T) {
	// Cross-check min-cost flow against the simplex solver on random
	// transportation instances.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		ns := 1 + rng.Intn(4)
		nd := 1 + rng.Intn(4)
		sup := make([]float64, ns)
		dem := make([]float64, nd)
		cost := make([][]float64, ns)
		var totalSup, totalDem float64
		for i := range sup {
			sup[i] = 1 + float64(rng.Intn(20))
			totalSup += sup[i]
		}
		for j := range dem {
			dem[j] = 1 + float64(rng.Intn(20))
			totalDem += dem[j]
		}
		for i := range cost {
			cost[i] = make([]float64, nd)
			for j := range cost[i] {
				cost[i][j] = float64(1 + rng.Intn(9))
			}
		}
		ship, total, totalCost := Transportation(sup, dem, cost)
		wantTotal := math.Min(totalSup, totalDem)
		if math.Abs(total-wantTotal) > 1e-6 {
			t.Fatalf("trial %d: shipped %v, want %v", trial, total, wantTotal)
		}
		// Feasibility of the shipment matrix.
		for i := 0; i < ns; i++ {
			rowSum := 0.0
			for j := 0; j < nd; j++ {
				if ship[i][j] < -1e-9 {
					t.Fatalf("negative shipment")
				}
				rowSum += ship[i][j]
			}
			if rowSum > sup[i]+1e-6 {
				t.Fatalf("supply %d exceeded", i)
			}
		}
		for j := 0; j < nd; j++ {
			colSum := 0.0
			for i := 0; i < ns; i++ {
				colSum += ship[i][j]
			}
			if colSum > dem[j]+1e-6 {
				t.Fatalf("demand %d exceeded", j)
			}
		}
		// LP formulation: maximize shipped is fixed at wantTotal; minimize
		// cost subject to shipping wantTotal.
		nvar := ns * nd
		p := &lp.Problem{NumVars: nvar, Maximize: false}
		p.Objective = make([]float64, nvar)
		for i := 0; i < ns; i++ {
			for j := 0; j < nd; j++ {
				p.Objective[i*nd+j] = cost[i][j]
			}
		}
		for i := 0; i < ns; i++ {
			row := make([]float64, nvar)
			for j := 0; j < nd; j++ {
				row[i*nd+j] = 1
			}
			p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: row, Rel: lp.LE, RHS: sup[i]})
		}
		for j := 0; j < nd; j++ {
			row := make([]float64, nvar)
			for i := 0; i < ns; i++ {
				row[i*nd+j] = 1
			}
			p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: row, Rel: lp.LE, RHS: dem[j]})
		}
		// Total-shipment constraint.
		all := make([]float64, nvar)
		for k := range all {
			all[k] = 1
		}
		p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: all, Rel: lp.GE, RHS: wantTotal})
		sol, err := lp.Solve(p)
		if err != nil || sol.Status != lp.Optimal {
			t.Fatalf("trial %d: LP failed: %v %v", trial, err, sol)
		}
		if math.Abs(sol.Objective-totalCost) > 1e-5 {
			t.Fatalf("trial %d: LP cost %v != mcmf cost %v", trial, sol.Objective, totalCost)
		}
	}
}

func TestTransportationForbiddenLane(t *testing.T) {
	sup := []float64{5}
	dem := []float64{3, 3}
	cost := [][]float64{{math.Inf(1), 2}}
	ship, total, totalCost := Transportation(sup, dem, cost)
	if ship[0][0] != 0 {
		t.Fatal("forbidden lane carried flow")
	}
	if math.Abs(total-3) > 1e-9 || math.Abs(totalCost-6) > 1e-9 {
		t.Fatalf("total, cost = %v, %v; want 3, 6", total, totalCost)
	}
}
