package portal

import (
	"encoding/json"
	"math"
	"testing"

	"p4p/internal/core"
)

// FuzzFromWire feeds arbitrary JSON through the wire decoder and
// checks the decode invariants the selector depends on: an accepted
// view is square over its PID list, every distance is either finite in
// [0, MaxDistance] or exactly +Inf (never NaN, never negative), and a
// decoded view survives an encode/decode round trip unchanged.
func FuzzFromWire(f *testing.F) {
	f.Add([]byte(`{"pids":[0,1],"matrix":[[0,-1],[-1,0]],"version":3}`))
	f.Add([]byte(`{"pids":[0,1,2],"matrix":[[0,1.5,-1],[1.5,0,2],[-1,2,0]],"version":7}`))
	f.Add([]byte(`{"pids":[0],"matrix":[[0]],"version":1}`))
	f.Add([]byte(`{"pids":[0,1],"matrix":[[0,1e300],[2,0]]}`))
	f.Add([]byte(`{"pids":[0,1],"matrix":[[0,-0.9999999],[5e14,0]],"version":2}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var w ViewWire
		if err := json.Unmarshal(data, &w); err != nil {
			return
		}
		v, err := FromWire(&w)
		if err != nil {
			return
		}
		checkViewInvariants(t, v)
		rt, err := FromWire(ToWire(v))
		if err != nil {
			t.Fatalf("round trip rejected a decoded view: %v", err)
		}
		checkViewInvariants(t, rt)
		for i := range v.D {
			for j := range v.D[i] {
				a, b := v.D[i][j], rt.D[i][j]
				if math.IsInf(a, 1) != math.IsInf(b, 1) || (!math.IsInf(a, 1) && a != b) {
					t.Fatalf("round trip drifted at (%d,%d): %v -> %v", i, j, a, b)
				}
			}
		}
	})
}

func checkViewInvariants(t *testing.T, v *core.View) {
	t.Helper()
	if len(v.D) != len(v.PIDs) {
		t.Fatalf("accepted non-square view: %d rows for %d PIDs", len(v.D), len(v.PIDs))
	}
	for i, row := range v.D {
		if len(row) != len(v.PIDs) {
			t.Fatalf("accepted ragged row %d: %d columns for %d PIDs", i, len(row), len(v.PIDs))
		}
		for j, d := range row {
			switch {
			case math.IsNaN(d):
				t.Fatalf("NaN leaked through decode at (%d,%d)", i, j)
			case math.IsInf(d, 1):
				// unreachable; fine
			case d < 0:
				t.Fatalf("negative finite distance %v at (%d,%d)", d, i, j)
			case d > MaxDistance:
				t.Fatalf("out-of-range distance %v at (%d,%d)", d, i, j)
			}
		}
	}
}
