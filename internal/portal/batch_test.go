package portal

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"

	"p4p/internal/itracker"
)

func TestBatchEndpointGET(t *testing.T) {
	srv, tr := newTestPortal(t, itracker.Config{Name: "t", ASN: 1})
	full, err := tr.Distances("")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/p4p/v1/distances/batch?pairs=0-1,1-2,2-0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var w BatchResponseWire
	if err := decodeBody(resp, &w); err != nil {
		t.Fatal(err)
	}
	if w.Version != full.Version {
		t.Fatalf("batch version %d, view version %d", w.Version, full.Version)
	}
	want := []float64{full.Distance(0, 1), full.Distance(1, 2), full.Distance(2, 0)}
	if len(w.Distances) != len(want) {
		t.Fatalf("got %d distances, want %d", len(w.Distances), len(want))
	}
	for i, d := range w.Distances {
		if d != want[i] {
			t.Fatalf("pair %d: batch %v, full view %v", i, d, want[i])
		}
	}
}

func TestBatchEndpointClientRoundTrip(t *testing.T) {
	srv, tr := newTestPortal(t, itracker.Config{Name: "t", ASN: 1, TrustedTokens: []string{"tok"}})
	c := NewClient(srv.URL, "tok")
	pairs := []PIDPair{{Src: 0, Dst: 1}, {Src: 3, Dst: 7}, {Src: 5, Dst: 5}}
	res, err := c.BatchDistances(pairs)
	if err != nil {
		t.Fatal(err)
	}
	full, err := tr.Distances("tok")
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != full.Version {
		t.Fatalf("batch version %d, view version %d", res.Version, full.Version)
	}
	for i, pr := range pairs {
		if got, want := res.Distances[i], full.Distance(pr.Src, pr.Dst); got != want {
			t.Fatalf("pair %v: batch %v, full view %v", pr, got, want)
		}
	}

	denied := NewClient(srv.URL, "nope")
	if _, err := denied.BatchDistances(pairs); err == nil {
		t.Fatal("expected denial for untrusted token")
	}
}

func TestBatchEmptyPairsShortCircuits(t *testing.T) {
	// No server: an empty batch must not issue a request at all.
	c := NewClient("http://127.0.0.1:0", "")
	res, err := c.BatchDistancesContext(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 0 || len(res.Distances) != 0 {
		t.Fatalf("empty batch returned %+v", res)
	}
}

func TestBatchEndpointBadRequests(t *testing.T) {
	srv, _ := newTestPortal(t, itracker.Config{Name: "t", ASN: 1})
	cases := []struct {
		name   string
		method string
		url    string
		body   string
	}{
		{"missing pairs", http.MethodGet, "/p4p/v1/distances/batch", ""},
		{"malformed pair", http.MethodGet, "/p4p/v1/distances/batch?pairs=0_1", ""},
		{"non-numeric pair", http.MethodGet, "/p4p/v1/distances/batch?pairs=a-b", ""},
		{"unknown PID", http.MethodGet, "/p4p/v1/distances/batch?pairs=0-9999", ""},
		{"empty POST pairs", http.MethodPost, "/p4p/v1/distances/batch", `{"pairs":[]}`},
		{"bad JSON body", http.MethodPost, "/p4p/v1/distances/batch", `{"pairs":`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body *strings.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			} else {
				body = strings.NewReader("")
			}
			req, err := http.NewRequest(tc.method, srv.URL+tc.url, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}
}

func TestBatchPairLimit(t *testing.T) {
	srv, _ := newTestPortal(t, itracker.Config{Name: "t", ASN: 1})
	pairs := make([]PIDPair, maxBatchPairs+1)
	c := NewClient(srv.URL, "")
	_, err := c.BatchDistances(pairs)
	if err == nil || !strings.Contains(err.Error(), "batch limit") {
		t.Fatalf("err = %v, want batch-limit rejection", err)
	}
}

// TestBatchFromWireSentinel checks the decoder applies the same
// hostile-payload rules as FromWire: negatives restore to +Inf, and
// non-finite or absurd values are rejected.
func TestBatchFromWireSentinel(t *testing.T) {
	res, err := batchFromWire(&BatchResponseWire{Version: 3, Distances: []float64{1.5, Unreachable, -0.25}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Distances[0] != 1.5 || !math.IsInf(res.Distances[1], 1) || !math.IsInf(res.Distances[2], 1) {
		t.Fatalf("decoded %v", res.Distances)
	}
	bad := []*BatchResponseWire{
		{Distances: []float64{1}},                  // wrong length for 2 pairs
		{Distances: []float64{math.NaN(), 0}},      // NaN
		{Distances: []float64{math.Inf(1), 0}},     // Inf
		{Distances: []float64{MaxDistance * 2, 0}}, // absurd magnitude
	}
	for i, w := range bad {
		if _, err := batchFromWire(w, 2); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestBatchMatchesCachedMatrix cross-checks the two serving paths stay
// consistent after a version bump: the batch answer must track the new
// matrix, not a stale PID index.
func TestBatchMatchesCachedMatrix(t *testing.T) {
	srv, tr := newTestPortal(t, itracker.Config{Name: "t", ASN: 1})
	c := NewClient(srv.URL, "")
	if _, err := c.BatchDistances([]PIDPair{{Src: 0, Dst: 1}}); err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, tr.Engine().Graph().NumLinks())
	loads[0] = 5e9
	tr.ObserveAndUpdate(loads)
	res, err := c.BatchDistances([]PIDPair{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	full, err := tr.Distances("")
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != full.Version {
		t.Fatalf("batch served version %d after bump to %d", res.Version, full.Version)
	}
	if res.Distances[0] != full.Distance(0, 1) {
		t.Fatalf("batch %v != view %v after bump", res.Distances[0], full.Distance(0, 1))
	}
}

func decodeBody(resp *http.Response, out interface{}) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}
