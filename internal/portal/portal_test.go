package portal

import (
	"context"
	"math"
	"net"
	"net/http/httptest"
	"strings"
	"testing"

	"p4p/internal/core"
	"p4p/internal/itracker"
	"p4p/internal/topology"
)

func newTestPortal(t *testing.T, cfg itracker.Config) (*httptest.Server, *itracker.Server) {
	t.Helper()
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	e := core.NewEngine(g, r, core.Config{})
	tr := itracker.New(cfg, e, itracker.SyntheticPIDMap(g))
	srv := httptest.NewServer(NewHandler(tr))
	t.Cleanup(srv.Close)
	return srv, tr
}

func TestWireRoundTrip(t *testing.T) {
	v := &core.View{
		PIDs: []topology.PID{0, 1, 2},
		D: [][]float64{
			{0, 1.5, math.Inf(1)},
			{1.5, 0, 2},
			{math.Inf(1), 2, 0},
		},
		Version: 7,
	}
	got, err := FromWire(ToWire(v))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 7 {
		t.Fatal("version lost")
	}
	for i := range v.D {
		for j := range v.D[i] {
			a, b := v.D[i][j], got.D[i][j]
			if math.IsInf(a, 1) != math.IsInf(b, 1) || (!math.IsInf(a, 1) && a != b) {
				t.Fatalf("round trip mismatch at (%d,%d): %v vs %v", i, j, a, b)
			}
		}
	}
}

func TestFromWireValidation(t *testing.T) {
	bad := []*ViewWire{
		{PIDs: []topology.PID{0, 1}, Matrix: [][]float64{{0, 1}}},
		{PIDs: []topology.PID{0}, Matrix: [][]float64{{0, 1}}},
		{PIDs: []topology.PID{0}, Matrix: [][]float64{{math.NaN()}}},
		{PIDs: []topology.PID{0}, Matrix: [][]float64{{math.Inf(1)}}},
		{PIDs: []topology.PID{0}, Matrix: [][]float64{{math.Inf(-1)}}},
		{PIDs: []topology.PID{0}, Matrix: [][]float64{{MaxDistance * 2}}},
	}
	for i, w := range bad {
		if _, err := FromWire(w); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestFromWireTolerantSentinel checks that every negative distance —
// not only the exact -1 the encoder emits — decodes as unreachable, so
// a perturbed sentinel can never read as a very cheap path.
func TestFromWireTolerantSentinel(t *testing.T) {
	for _, d := range []float64{Unreachable, -1.0000001, -0.5, -5, -1e300} {
		w := &ViewWire{PIDs: []topology.PID{0, 1}, Matrix: [][]float64{{0, d}, {1, 0}}}
		v, err := FromWire(w)
		if err != nil {
			t.Fatalf("d=%v: %v", d, err)
		}
		if !math.IsInf(v.D[0][1], 1) {
			t.Errorf("d=%v decoded as %v, want +Inf", d, v.D[0][1])
		}
	}
}

func TestPolicyEndpoint(t *testing.T) {
	pol := itracker.Policy{NearCongestionUtil: 0.7}
	srv, _ := newTestPortal(t, itracker.Config{Name: "t", ASN: 1, Policy: pol})
	c := NewClient(srv.URL, "")
	got, err := c.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if got.NearCongestionUtil != 0.7 {
		t.Fatalf("policy = %+v", got)
	}
}

func TestDistancesEndpoint(t *testing.T) {
	srv, _ := newTestPortal(t, itracker.Config{Name: "t", ASN: 1})
	c := NewClient(srv.URL, "")
	v, err := c.Distances()
	if err != nil {
		t.Fatal(err)
	}
	if len(v.PIDs) != 11 {
		t.Fatalf("view has %d PIDs, want 11", len(v.PIDs))
	}
	rv, err := c.RankedDistances()
	if err != nil {
		t.Fatal(err)
	}
	if rv.D[0][1] < 1 {
		t.Fatal("rank view malformed")
	}
}

func TestDistancesAuth(t *testing.T) {
	srv, _ := newTestPortal(t, itracker.Config{Name: "t", ASN: 1, TrustedTokens: []string{"s3cr3t"}})
	denied := NewClient(srv.URL, "nope")
	if _, err := denied.Distances(); err == nil || !strings.Contains(err.Error(), "403") && !strings.Contains(err.Error(), "denied") {
		t.Fatalf("expected denial, got %v", err)
	}
	allowed := NewClient(srv.URL, "s3cr3t")
	if _, err := allowed.Distances(); err != nil {
		t.Fatal(err)
	}
}

func TestCapabilitiesEndpoint(t *testing.T) {
	caps := []itracker.Capability{
		{Kind: "cache", PID: 3, CapacityBps: 1e9},
		{Kind: "on-demand-server", PID: 4, CapacityBps: 2e9, Restricted: true},
	}
	srv, _ := newTestPortal(t, itracker.Config{Name: "t", ASN: 1, TrustedTokens: []string{"tok"}, Capabilities: caps})
	pub := NewClient(srv.URL, "")
	got, err := pub.Capabilities("")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Kind != "cache" {
		t.Fatalf("public caps = %+v", got)
	}
	trusted := NewClient(srv.URL, "tok")
	got, err = trusted.Capabilities("on-demand-server")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].PID != 4 {
		t.Fatalf("trusted caps = %+v", got)
	}
}

func TestPIDEndpoint(t *testing.T) {
	srv, _ := newTestPortal(t, itracker.Config{Name: "t", ASN: 9})
	c := NewClient(srv.URL, "")
	got, err := c.LookupPID(itracker.SyntheticIP(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got.PID != 5 || got.ASN != 9 {
		t.Fatalf("lookup = %+v", got)
	}
	if _, err := c.LookupPID(net.ParseIP("8.8.8.8")); err == nil {
		t.Fatal("foreign IP should 404")
	}
}

func TestBadForm(t *testing.T) {
	srv, _ := newTestPortal(t, itracker.Config{Name: "t", ASN: 1})
	c := NewClient(srv.URL, "")
	var w ViewWire
	err := c.getJSON(context.Background(), "/p4p/v1/distances", map[string][]string{"form": {"bogus"}}, &w)
	if err == nil {
		t.Fatal("expected error for unknown form")
	}
	if !strings.Contains(err.Error(), "400") {
		t.Fatalf("unknown form should be HTTP 400, got %v", err)
	}
}

func TestRegistryDiscovery(t *testing.T) {
	r := Registry{"isp-b.example": "http://localhost:9999"}
	url, err := r.Discover("isp-b.example")
	if err != nil || url != "http://localhost:9999" {
		t.Fatalf("discover = %q, %v", url, err)
	}
	if _, err := r.Discover("unknown.example"); err == nil {
		t.Fatal("expected discovery failure")
	}
}

func TestViewRefreshAfterUpdate(t *testing.T) {
	srv, tr := newTestPortal(t, itracker.Config{Name: "t", ASN: 1})
	c := NewClient(srv.URL, "")
	v1, err := c.Distances()
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, tr.Engine().Graph().NumLinks())
	loads[0] = 5e9
	tr.ObserveAndUpdate(loads)
	v2, err := c.Distances()
	if err != nil {
		t.Fatal(err)
	}
	if v2.Version == v1.Version {
		t.Fatal("version did not advance after update")
	}
}
