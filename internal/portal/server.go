package portal

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strings"

	"p4p/internal/core"
	"p4p/internal/itracker"
	"p4p/internal/telemetry"
)

// tokenHeader carries the caller's trust token.
const tokenHeader = "X-P4P-Token"

// Handler serves one iTracker's interfaces over HTTP:
//
//	GET /p4p/v1/policy
//	GET /p4p/v1/distances[?form=ranks]
//	GET /p4p/v1/capabilities[?kind=...]
//	GET /p4p/v1/pid?ip=a.b.c.d
//
// All responses are JSON; errors use {"error": "..."} envelopes. The
// distances endpoint is version-cacheable: responses carry an ETag
// derived from the engine version, and requests presenting a current
// version via If-None-Match get 304 Not Modified with no body, so
// refreshing appTrackers pay nothing when the view has not changed.
//
// Every route runs through Telemetry, which mints a request ID (echoed
// in X-Request-ID and carried on the request context), records
// per-route request counts, status classes, and latency histograms,
// counts 304 ETag hits, and emits one structured log line per request.
// Set Telemetry.Metrics and Telemetry.Logger after NewHandler, before
// serving.
type Handler struct {
	Tracker *itracker.Server
	// Telemetry instruments and logs every route; its zero value is
	// inert. Set its fields, do not replace the struct (route
	// registrations live inside it).
	Telemetry telemetry.Middleware
	mux       *http.ServeMux
}

// NewHandler builds the HTTP handler for an iTracker.
func NewHandler(tr *itracker.Server) *Handler {
	h := &Handler{Tracker: tr, mux: http.NewServeMux()}
	h.route("GET /p4p/v1/policy", "policy", h.handlePolicy)
	h.route("GET /p4p/v1/distances", "distances", h.handleDistances)
	h.route("GET /p4p/v1/capabilities", "capabilities", h.handleCapabilities)
	h.route("GET /p4p/v1/pid", "pid", h.handlePID)
	return h
}

func (h *Handler) route(pattern, name string, fn http.HandlerFunc) {
	h.mux.Handle(pattern, h.Telemetry.RouteFunc(name, fn))
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// writeJSON encodes v to a buffer before touching the ResponseWriter,
// so an encoding failure (e.g. a NaN sneaking into a matrix) yields a
// clean 500 error envelope instead of a truncated HTTP 200.
func (h *Handler) writeJSON(w http.ResponseWriter, r *http.Request, status int, v interface{}) {
	body, err := json.Marshal(v)
	if err != nil {
		if l := h.Telemetry.Logger; l != nil {
			l.Error("encode response",
				slog.String("request_id", telemetry.RequestID(r.Context())),
				slog.String("error", err.Error()))
		}
		status = http.StatusInternalServerError
		body, _ = json.Marshal(errorWire{Error: "response encoding failed"})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

func (h *Handler) writeErr(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusInternalServerError
	if errors.Is(err, itracker.ErrAccessDenied) {
		status = http.StatusForbidden
	}
	h.writeJSON(w, r, status, errorWire{Error: err.Error()})
}

func (h *Handler) handlePolicy(w http.ResponseWriter, r *http.Request) {
	pol, err := h.Tracker.PolicyFor(r.Header.Get(tokenHeader))
	if err != nil {
		h.writeErr(w, r, err)
		return
	}
	h.writeJSON(w, r, http.StatusOK, pol)
}

// viewETag derives the distances ETag from the engine version and the
// requested form (raw and ranked views of one version differ).
func viewETag(version int, form string) string {
	return fmt.Sprintf("%q", fmt.Sprintf("v%d-%s", version, form))
}

// etagMatches reports whether an If-None-Match header value matches the
// given ETag, honoring comma-separated lists and the "*" wildcard.
func etagMatches(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

func (h *Handler) handleDistances(w http.ResponseWriter, r *http.Request) {
	token := r.Header.Get(tokenHeader)
	form := r.URL.Query().Get("form")
	if form == "" {
		form = "raw"
	}
	if form != "raw" && form != "ranks" {
		h.writeJSON(w, r, http.StatusBadRequest, errorWire{Error: "unknown form; use raw or ranks"})
		return
	}
	// Conditional GET: a client whose cached version is still current
	// skips view materialization and serialization entirely.
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		ver, err := h.Tracker.ViewVersion(token)
		if err == nil && etagMatches(inm, viewETag(ver, form)) {
			w.Header().Set("ETag", viewETag(ver, form))
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	var v *core.View
	var err error
	if form == "raw" {
		v, err = h.Tracker.Distances(token)
	} else {
		v, err = h.Tracker.RankedDistances(token)
	}
	if err != nil {
		h.writeErr(w, r, err)
		return
	}
	w.Header().Set("ETag", viewETag(v.Version, form))
	h.writeJSON(w, r, http.StatusOK, ToWire(v))
}

func (h *Handler) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	caps, err := h.Tracker.Capabilities(r.Header.Get(tokenHeader), r.URL.Query().Get("kind"))
	if err != nil {
		h.writeErr(w, r, err)
		return
	}
	if caps == nil {
		caps = []itracker.Capability{}
	}
	h.writeJSON(w, r, http.StatusOK, caps)
}

func (h *Handler) handlePID(w http.ResponseWriter, r *http.Request) {
	ipStr := r.URL.Query().Get("ip")
	ip := net.ParseIP(ipStr)
	if ip == nil {
		h.writeJSON(w, r, http.StatusBadRequest, errorWire{Error: "missing or malformed ip parameter"})
		return
	}
	pid, asn, err := h.Tracker.LookupPID(ip)
	if err != nil {
		h.writeJSON(w, r, http.StatusNotFound, errorWire{Error: err.Error()})
		return
	}
	h.writeJSON(w, r, http.StatusOK, PIDLookupWire{PID: pid, ASN: asn})
}
