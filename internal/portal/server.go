package portal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand/v2"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"p4p/internal/core"
	"p4p/internal/itracker"
	"p4p/internal/telemetry"
	"p4p/internal/topology"
)

// tokenHeader carries the caller's trust token.
const tokenHeader = "X-P4P-Token"

// tokenHeaderCanon is tokenHeader in canonical MIME form. Header.Get
// re-canonicalizes non-canonical keys on every call, which allocates;
// incoming headers are stored canonically, so reading with this key is
// equivalent and allocation-free.
const tokenHeaderCanon = "X-P4p-Token"

// maxBatchPairs bounds one batch request; anything larger should fetch
// the full matrix instead.
const maxBatchPairs = 65536

// maxBatchBody bounds the POST body of a batch request.
const maxBatchBody = 8 << 20

// jsonCTVals is the Content-Type header value shared by every cached
// response entry (header maps hold []string; sharing one immutable
// slice keeps the steady-state path allocation-free).
var jsonCTVals = []string{"application/json"}

// Handler serves one iTracker's interfaces over HTTP:
//
//	GET  /p4p/v1/policy
//	GET  /p4p/v1/distances[?form=ranks]
//	GET  /p4p/v1/distances/batch?pairs=src-dst,...
//	POST /p4p/v1/distances/batch
//	GET  /p4p/v1/capabilities[?kind=...]
//	GET  /p4p/v1/pid?ip=a.b.c.d
//
// All responses are JSON; errors use {"error": "..."} envelopes. The
// distances endpoint is version-cacheable: responses carry an ETag
// derived from the engine version and a per-process boot nonce, and
// requests presenting a current version via If-None-Match get 304 Not
// Modified with no body, so refreshing appTrackers pay nothing when the
// view has not changed.
//
// The 200 path is cached too: the fully-encoded JSON body and its
// ETag/Content-Length header values are kept per (engine version, form)
// — materialized under the iTracker's singleflight, invalidated by
// version bump — so a steady-state response is a byte copy that never
// touches json.Marshal (see DESIGN.md §10).
//
// Every route runs through Telemetry, which mints a request ID (echoed
// in X-Request-ID and carried on the request context when a Logger is
// attached), records per-route request counts, status classes, and
// latency histograms, counts 304 ETag hits, and emits one structured
// log line per request. Set Telemetry.Metrics and Telemetry.Logger
// after NewHandler, before serving.
type Handler struct {
	Tracker *itracker.Server
	// Telemetry instruments and logs every route; its zero value is
	// inert. Set its fields, do not replace the struct (route
	// registrations live inside it).
	Telemetry telemetry.Middleware
	// CacheMetrics, when non-nil, counts encoded-response-cache hits
	// and misses on the distances path (see NewCacheMetrics).
	CacheMetrics *CacheMetrics
	mux          *http.ServeMux

	// bootNonce distinguishes this process's ETags from a restarted
	// portal at the same engine version: version counters restart at
	// zero, so without the nonce a client's stale If-None-Match could
	// spuriously revalidate against a fresh process serving different
	// data.
	bootNonce string

	// cacheRaw/cacheRanks hold the current fully-rendered response per
	// form; batchIdx holds the PID→row index for the batch endpoint.
	cacheRaw   atomic.Pointer[respEntry]
	cacheRanks atomic.Pointer[respEntry]
	batchIdx   atomic.Pointer[pidIndex]
}

// respEntry is one fully-rendered distances response: the encoded body
// plus precomputed header value slices, so serving it writes no new
// strings. Entries are immutable once published.
type respEntry struct {
	version  int
	body     []byte
	etag     string
	etagVals []string // {etag}
	clenVals []string // {strconv.Itoa(len(body))}
}

// pidIndex maps view PIDs to matrix rows for one materialized view
// (keyed by pointer identity, not version: the PID set is re-derived
// per recompute).
type pidIndex struct {
	view *core.View
	idx  map[topology.PID]int
}

// CacheMetrics counts how the encoded-response cache behaves. All
// recording methods are nil-safe.
type CacheMetrics struct {
	// Hits counts distances responses served as a cached byte copy.
	Hits *telemetry.Counter
	// Misses counts distances requests that re-encoded the view (first
	// request of a version/form, or post-invalidation).
	Misses *telemetry.Counter
}

// NewCacheMetrics registers the encoded-response-cache metric families.
func NewCacheMetrics(r *telemetry.Registry) *CacheMetrics {
	return &CacheMetrics{
		Hits: r.Counter("p4p_portal_encoded_cache_hits_total",
			"Distances responses served from the encoded-response cache."),
		Misses: r.Counter("p4p_portal_encoded_cache_misses_total",
			"Distances requests that re-encoded the view (version bump or cold cache)."),
	}
}

func (m *CacheMetrics) hit() {
	if m != nil {
		m.Hits.Inc()
	}
}

func (m *CacheMetrics) miss() {
	if m != nil {
		m.Misses.Inc()
	}
}

// NewHandler builds the HTTP handler for an iTracker.
func NewHandler(tr *itracker.Server) *Handler {
	h := &Handler{
		Tracker:   tr,
		mux:       http.NewServeMux(),
		bootNonce: fmt.Sprintf("%08x", rand.Uint32()),
	}
	h.route("GET /p4p/v1/policy", "policy", h.handlePolicy)
	h.route("GET /p4p/v1/distances", "distances", h.handleDistances)
	h.route("GET /p4p/v1/distances/batch", "distances_batch", h.handleBatch)
	h.route("POST /p4p/v1/distances/batch", "distances_batch", h.handleBatch)
	h.route("GET /p4p/v1/capabilities", "capabilities", h.handleCapabilities)
	h.route("GET /p4p/v1/pid", "pid", h.handlePID)
	return h
}

func (h *Handler) route(pattern, name string, fn http.HandlerFunc) {
	h.mux.Handle(pattern, h.Telemetry.RouteFunc(name, fn))
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// writeJSON encodes v to a buffer before touching the ResponseWriter,
// so an encoding failure (e.g. a NaN sneaking into a matrix) yields a
// clean 500 error envelope instead of a truncated HTTP 200. Buffering
// also supplies Content-Length, keeping responses out of chunked
// transfer encoding.
//
//p4p:coldpath fresh JSON encode; the zero-alloc contract covers the cached byte-copy path, not per-request marshaling
func (h *Handler) writeJSON(w http.ResponseWriter, r *http.Request, status int, v interface{}) {
	body, err := json.Marshal(v)
	if err != nil {
		if l := h.Telemetry.Logger; l != nil {
			l.Error("encode response",
				slog.String("request_id", telemetry.RequestID(r.Context())),
				slog.String("error", err.Error()))
		}
		status = http.StatusInternalServerError
		body, _ = json.Marshal(errorWire{Error: "response encoding failed"})
	}
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	w.Write(body)
}

//p4p:coldpath error responses are off the measured serving path
func (h *Handler) writeErr(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusInternalServerError
	if errors.Is(err, itracker.ErrAccessDenied) {
		status = http.StatusForbidden
	}
	h.writeJSON(w, r, status, errorWire{Error: err.Error()})
}

func (h *Handler) handlePolicy(w http.ResponseWriter, r *http.Request) {
	pol, err := h.Tracker.PolicyFor(r.Header.Get(tokenHeaderCanon))
	if err != nil {
		h.writeErr(w, r, err)
		return
	}
	h.writeJSON(w, r, http.StatusOK, pol)
}

// ETagMatches reports whether an If-None-Match header value matches the
// given ETag, honoring comma-separated lists, W/ weak prefixes, and the
// "*" wildcard. It scans in place — no splitting — because it runs on
// the revalidation fast path.
func ETagMatches(header, etag string) bool {
	for len(header) > 0 {
		part := header
		if i := strings.IndexByte(header, ','); i >= 0 {
			part, header = header[:i], header[i+1:]
		} else {
			header = ""
		}
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

// cacheFor returns the response-cache slot for a form. Forms are
// validated before this is reached.
func (h *Handler) cacheFor(form string) *atomic.Pointer[respEntry] {
	if form == "ranks" {
		return &h.cacheRanks
	}
	return &h.cacheRaw
}

// newRespEntry renders the headers for an encoded body once, so serving
// the entry later formats nothing.
//
//p4p:coldpath runs once per (version, form) cache miss; its fmt work is the point of pre-rendering
func (h *Handler) newRespEntry(version int, form string, body []byte) *respEntry {
	etag := fmt.Sprintf("%q", fmt.Sprintf("%s-v%d-%s", h.bootNonce, version, form))
	return &respEntry{
		version:  version,
		body:     body,
		etag:     etag,
		etagVals: []string{etag},
		clenVals: []string{strconv.Itoa(len(body))},
	}
}

// encodeRawView and encodeRankedView are the EncodeFuncs the portal
// installs into the iTracker's encoded-view cache. Bodies include the
// trailing newline writeJSON appends, so cached and freshly-encoded
// responses are byte-identical.
func encodeRawView(v *core.View) ([]byte, error) {
	b, err := json.Marshal(ToWire(v))
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func encodeRankedView(v *core.View) ([]byte, error) {
	b, err := json.Marshal(ToWire(core.RankView(v)))
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func encoderFor(form string) itracker.EncodeFunc {
	if form == "ranks" {
		return encodeRankedView
	}
	return encodeRawView
}

// handleDistances is the steady-state serving path pinned by
// BenchmarkPortalDistances and TestCachedDistancesAllocs: a cache hit
// must be a byte copy.
//
//p4p:hotpath
func (h *Handler) handleDistances(w http.ResponseWriter, r *http.Request) {
	token := r.Header.Get(tokenHeaderCanon)
	form := "raw"
	if r.URL.RawQuery != "" { // parsing the query allocates; skip it when absent
		if f := r.URL.Query().Get("form"); f != "" {
			form = f
		}
		if form != "raw" && form != "ranks" {
			h.writeJSON(w, r, http.StatusBadRequest, errorWire{Error: "unknown form; use raw or ranks"})
			return
		}
	}
	ver, err := h.Tracker.ViewVersion(token)
	if err != nil {
		h.writeErr(w, r, err)
		return
	}
	cache := h.cacheFor(form)
	ent := cache.Load()
	if ent == nil || ent.version != ver {
		// Cold cache or version bump: re-encode under the iTracker's
		// singleflight and publish the rendered entry. A price update
		// racing the encode can leave the entry one version behind; the
		// next request simply misses again.
		h.CacheMetrics.miss()
		body, version, err := h.Tracker.EncodedViewCtx(r.Context(), token, form, encoderFor(form))
		if err != nil {
			h.writeErr(w, r, err)
			return
		}
		ent = h.newRespEntry(version, form, body)
		cache.Store(ent)
	} else {
		h.CacheMetrics.hit()
	}
	// Direct map assignment with pre-canonicalized keys ("Etag" is the
	// canonical MIME form) and shared value slices: zero allocations.
	if inm := r.Header.Get("If-None-Match"); inm != "" && ETagMatches(inm, ent.etag) {
		w.Header()["Etag"] = ent.etagVals
		w.WriteHeader(http.StatusNotModified)
		return
	}
	hdr := w.Header()
	hdr["Content-Type"] = jsonCTVals
	hdr["Etag"] = ent.etagVals
	hdr["Content-Length"] = ent.clenVals
	w.WriteHeader(http.StatusOK)
	w.Write(ent.body)
}

// ParsePairs parses the GET form of a batch request:
// pairs=src-dst,src-dst with decimal PIDs.
func ParsePairs(s string) ([]PIDPair, error) {
	if s == "" {
		return nil, errors.New("missing pairs parameter; use pairs=src-dst,src-dst")
	}
	parts := strings.Split(s, ",")
	out := make([]PIDPair, 0, len(parts))
	for _, p := range parts {
		dash := strings.IndexByte(p, '-')
		if dash < 0 {
			//p4pvet:ignore allochot error formatting runs only for malformed requests, off the measured path
			return nil, fmt.Errorf("malformed pair %q; want src-dst", p)
		}
		src, err := strconv.Atoi(p[:dash])
		if err != nil {
			//p4pvet:ignore allochot error formatting runs only for malformed requests, off the measured path
			return nil, fmt.Errorf("malformed pair %q: %v", p, err)
		}
		dst, err := strconv.Atoi(p[dash+1:])
		if err != nil {
			//p4pvet:ignore allochot error formatting runs only for malformed requests, off the measured path
			return nil, fmt.Errorf("malformed pair %q: %v", p, err)
		}
		out = append(out, PIDPair{Src: topology.PID(src), Dst: topology.PID(dst)})
	}
	return out, nil
}

// pidIndexFor returns the PID→row map for a view, cached by view
// identity so batch requests do one map lookup per PID instead of a
// linear scan of View.Index.
func (h *Handler) pidIndexFor(v *core.View) map[topology.PID]int {
	if cached := h.batchIdx.Load(); cached != nil && cached.view == v {
		return cached.idx
	}
	idx := make(map[topology.PID]int, len(v.PIDs))
	for i, p := range v.PIDs {
		idx[p] = i
	}
	//p4pvet:ignore allochot index entry is rebuilt once per view identity change, then hit by every batch request
	h.batchIdx.Store(&pidIndex{view: v, idx: idx})
	return idx
}

// handleBatch serves many src/dst distance queries from the same cached
// view as the full-matrix endpoint, without shipping the whole matrix:
// appTrackers that poll N portals for a handful of pairs each (the
// federation workload) stop re-downloading square matrices.
//
//p4p:hotpath
func (h *Handler) handleBatch(w http.ResponseWriter, r *http.Request) {
	token := r.Header.Get(tokenHeaderCanon)
	var pairs []PIDPair
	if r.Method == http.MethodPost {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBatchBody))
		if err != nil {
			h.writeJSON(w, r, http.StatusBadRequest, errorWire{Error: "read request body: " + err.Error()})
			return
		}
		var req BatchRequestWire
		if err := json.Unmarshal(body, &req); err != nil {
			h.writeJSON(w, r, http.StatusBadRequest, errorWire{Error: "decode request body: " + err.Error()})
			return
		}
		pairs = req.Pairs
	} else {
		var err error
		pairs, err = ParsePairs(r.URL.Query().Get("pairs"))
		if err != nil {
			h.writeJSON(w, r, http.StatusBadRequest, errorWire{Error: err.Error()})
			return
		}
	}
	if len(pairs) == 0 {
		h.writeJSON(w, r, http.StatusBadRequest, errorWire{Error: "empty pairs list"})
		return
	}
	if len(pairs) > maxBatchPairs {
		h.writeJSON(w, r, http.StatusBadRequest,
			errorWire{Error: fmt.Sprintf("%d pairs exceeds the %d-pair batch limit", len(pairs), maxBatchPairs)})
		return
	}
	v, err := h.Tracker.DistancesCtx(r.Context(), token)
	if err != nil {
		h.writeErr(w, r, err)
		return
	}
	idx := h.pidIndexFor(v)
	out := BatchResponseWire{Version: v.Version, Distances: make([]float64, len(pairs))}
	for k, pr := range pairs {
		a, okA := idx[pr.Src]
		b, okB := idx[pr.Dst]
		if !okA || !okB {
			pid := pr.Src
			if okA {
				pid = pr.Dst
			}
			h.writeJSON(w, r, http.StatusBadRequest,
				errorWire{Error: fmt.Sprintf("PID %d not in the external view", pid)})
			return
		}
		if d := v.D[a][b]; math.IsInf(d, 0) {
			out.Distances[k] = Unreachable
		} else {
			out.Distances[k] = d
		}
	}
	h.writeJSON(w, r, http.StatusOK, out)
}

func (h *Handler) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	caps, err := h.Tracker.Capabilities(r.Header.Get(tokenHeaderCanon), r.URL.Query().Get("kind"))
	if err != nil {
		h.writeErr(w, r, err)
		return
	}
	if caps == nil {
		caps = []itracker.Capability{}
	}
	h.writeJSON(w, r, http.StatusOK, caps)
}

func (h *Handler) handlePID(w http.ResponseWriter, r *http.Request) {
	ipStr := r.URL.Query().Get("ip")
	ip := net.ParseIP(ipStr)
	if ip == nil {
		h.writeJSON(w, r, http.StatusBadRequest, errorWire{Error: "missing or malformed ip parameter"})
		return
	}
	pid, asn, err := h.Tracker.LookupPID(ip)
	if err != nil {
		h.writeJSON(w, r, http.StatusNotFound, errorWire{Error: err.Error()})
		return
	}
	h.writeJSON(w, r, http.StatusOK, PIDLookupWire{PID: pid, ASN: asn})
}
