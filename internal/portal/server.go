package portal

import (
	"encoding/json"
	"errors"
	"log"
	"net"
	"net/http"

	"p4p/internal/itracker"
)

// tokenHeader carries the caller's trust token.
const tokenHeader = "X-P4P-Token"

// Handler serves one iTracker's interfaces over HTTP:
//
//	GET /p4p/v1/policy
//	GET /p4p/v1/distances[?form=ranks]
//	GET /p4p/v1/capabilities[?kind=...]
//	GET /p4p/v1/pid?ip=a.b.c.d
//
// All responses are JSON; errors use {"error": "..."} envelopes.
type Handler struct {
	Tracker *itracker.Server
	// Log, if non-nil, receives one line per request.
	Log *log.Logger
	mux *http.ServeMux
}

// NewHandler builds the HTTP handler for an iTracker.
func NewHandler(tr *itracker.Server) *Handler {
	h := &Handler{Tracker: tr, mux: http.NewServeMux()}
	h.mux.HandleFunc("GET /p4p/v1/policy", h.handlePolicy)
	h.mux.HandleFunc("GET /p4p/v1/distances", h.handleDistances)
	h.mux.HandleFunc("GET /p4p/v1/capabilities", h.handleCapabilities)
	h.mux.HandleFunc("GET /p4p/v1/pid", h.handlePID)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.Log != nil {
		h.Log.Printf("%s %s from %s", r.Method, r.URL, r.RemoteAddr)
	}
	h.mux.ServeHTTP(w, r)
}

func (h *Handler) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil && h.Log != nil {
		h.Log.Printf("encode response: %v", err)
	}
}

func (h *Handler) writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if errors.Is(err, itracker.ErrAccessDenied) {
		status = http.StatusForbidden
	}
	h.writeJSON(w, status, errorWire{Error: err.Error()})
}

func (h *Handler) handlePolicy(w http.ResponseWriter, r *http.Request) {
	pol, err := h.Tracker.PolicyFor(r.Header.Get(tokenHeader))
	if err != nil {
		h.writeErr(w, err)
		return
	}
	h.writeJSON(w, http.StatusOK, pol)
}

func (h *Handler) handleDistances(w http.ResponseWriter, r *http.Request) {
	token := r.Header.Get(tokenHeader)
	switch r.URL.Query().Get("form") {
	case "", "raw":
		v, err := h.Tracker.Distances(token)
		if err != nil {
			h.writeErr(w, err)
			return
		}
		h.writeJSON(w, http.StatusOK, ToWire(v))
	case "ranks":
		v, err := h.Tracker.RankedDistances(token)
		if err != nil {
			h.writeErr(w, err)
			return
		}
		h.writeJSON(w, http.StatusOK, ToWire(v))
	default:
		h.writeJSON(w, http.StatusBadRequest, errorWire{Error: "unknown form; use raw or ranks"})
	}
}

func (h *Handler) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	caps, err := h.Tracker.Capabilities(r.Header.Get(tokenHeader), r.URL.Query().Get("kind"))
	if err != nil {
		h.writeErr(w, err)
		return
	}
	if caps == nil {
		caps = []itracker.Capability{}
	}
	h.writeJSON(w, http.StatusOK, caps)
}

func (h *Handler) handlePID(w http.ResponseWriter, r *http.Request) {
	ipStr := r.URL.Query().Get("ip")
	ip := net.ParseIP(ipStr)
	if ip == nil {
		h.writeJSON(w, http.StatusBadRequest, errorWire{Error: "missing or malformed ip parameter"})
		return
	}
	pid, asn, err := h.Tracker.LookupPID(ip)
	if err != nil {
		h.writeJSON(w, http.StatusNotFound, errorWire{Error: err.Error()})
		return
	}
	h.writeJSON(w, http.StatusOK, PIDLookupWire{PID: pid, ASN: asn})
}
