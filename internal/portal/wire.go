// Package portal carries the iTracker interfaces over HTTP+JSON. The
// paper defines the interfaces in WSDL and serves them with SOAP
// toolkits; this reproduction keeps the interface semantics — policy,
// p4p-distance (raw or ranked), capability, and PID lookup — but uses
// the standard library's net/http and encoding/json (see DESIGN.md,
// "Substitutions"). It also provides the DNS-SRV-style discovery shim
// that maps a provider domain to its portal ("one possibility is
// through DNS query (using DNS SRV with symbolic name p4p)").
package portal

import (
	"fmt"
	"math"

	"p4p/internal/core"
	"p4p/internal/topology"
)

// Unreachable is the wire sentinel for an infinite p-distance: JSON has
// no encoding for +Inf, so unreachable PID pairs are sent as -1.
const Unreachable = -1

// ViewWire is the JSON form of a distance view.
type ViewWire struct {
	PIDs    []topology.PID `json:"pids"`
	Matrix  [][]float64    `json:"matrix"`
	Version int            `json:"version"`
}

// ToWire converts a core.View for transmission.
func ToWire(v *core.View) *ViewWire {
	w := &ViewWire{PIDs: append([]topology.PID(nil), v.PIDs...), Version: v.Version}
	w.Matrix = make([][]float64, len(v.D))
	for i, row := range v.D {
		w.Matrix[i] = make([]float64, len(row))
		for j, d := range row {
			if math.IsInf(d, 1) {
				w.Matrix[i][j] = Unreachable
			} else {
				w.Matrix[i][j] = d
			}
		}
	}
	return w
}

// FromWire converts a received view back to a core.View, restoring
// infinities and validating shape.
func FromWire(w *ViewWire) (*core.View, error) {
	if len(w.Matrix) != len(w.PIDs) {
		return nil, fmt.Errorf("portal: matrix has %d rows for %d PIDs", len(w.Matrix), len(w.PIDs))
	}
	v := &core.View{PIDs: append([]topology.PID(nil), w.PIDs...), Version: w.Version}
	v.D = make([][]float64, len(w.Matrix))
	for i, row := range w.Matrix {
		if len(row) != len(w.PIDs) {
			return nil, fmt.Errorf("portal: matrix row %d has %d columns for %d PIDs", i, len(row), len(w.PIDs))
		}
		v.D[i] = make([]float64, len(row))
		for j, d := range row {
			if d == Unreachable {
				v.D[i][j] = math.Inf(1)
			} else if d < 0 {
				return nil, fmt.Errorf("portal: negative distance at (%d,%d)", i, j)
			} else {
				v.D[i][j] = d
			}
		}
	}
	return v, nil
}

// PIDLookupWire is the JSON response of the PID lookup endpoint.
type PIDLookupWire struct {
	PID topology.PID `json:"pid"`
	ASN int          `json:"asn"`
}

// errorWire is the JSON error envelope.
type errorWire struct {
	Error string `json:"error"`
}

// Registry is the discovery shim: it plays the role of the DNS SRV
// record _p4p._tcp.<domain> by mapping provider domains to portal base
// URLs.
type Registry map[string]string

// Discover resolves a provider domain to its iTracker base URL.
func (r Registry) Discover(domain string) (string, error) {
	if url, ok := r[domain]; ok {
		return url, nil
	}
	return "", fmt.Errorf("portal: no p4p portal registered for domain %q", domain)
}
