// Package portal carries the iTracker interfaces over HTTP+JSON. The
// paper defines the interfaces in WSDL and serves them with SOAP
// toolkits; this reproduction keeps the interface semantics — policy,
// p4p-distance (raw or ranked), capability, and PID lookup — but uses
// the standard library's net/http and encoding/json (see DESIGN.md,
// "Substitutions"). It also provides the DNS-SRV-style discovery shim
// that maps a provider domain to its portal ("one possibility is
// through DNS query (using DNS SRV with symbolic name p4p)").
package portal

import (
	"fmt"
	"math"

	"p4p/internal/core"
	"p4p/internal/topology"
)

// Unreachable is the wire sentinel for an infinite p-distance: JSON has
// no encoding for +Inf, so unreachable PID pairs are sent as -1. The
// decoder is deliberately more tolerant than the encoder: any negative
// distance decodes as unreachable, so a peer that perturbs the sentinel
// (lossy re-encoding, a hostile portal shaving ulps off -1) cannot
// smuggle a "negative cost" path into selection.
const Unreachable = -1

// MaxDistance bounds a plausible finite wire distance. The paper's
// p-distances are link costs and MLU-scaled prices, single-digit to a
// few thousand; anything beyond this is a corrupt or hostile payload,
// not a far-away network, and is rejected rather than fed into the
// weight transform where it would collapse every other weight to zero.
const MaxDistance = 1e15

// ViewWire is the JSON form of a distance view.
type ViewWire struct {
	PIDs    []topology.PID `json:"pids"`
	Matrix  [][]float64    `json:"matrix"`
	Version int            `json:"version"`
}

// ToWire converts a core.View for transmission. Infinities in either
// direction become the Unreachable sentinel (JSON cannot carry them);
// a NaN is left in place so the buffered response writer's encode step
// fails closed with a 500 instead of shipping a poisoned matrix.
func ToWire(v *core.View) *ViewWire {
	w := &ViewWire{PIDs: append([]topology.PID(nil), v.PIDs...), Version: v.Version}
	w.Matrix = make([][]float64, len(v.D))
	for i, row := range v.D {
		w.Matrix[i] = make([]float64, len(row))
		for j, d := range row {
			if math.IsInf(d, 0) {
				w.Matrix[i][j] = Unreachable
			} else {
				w.Matrix[i][j] = d
			}
		}
	}
	return w
}

// FromWire converts a received view back to a core.View, restoring
// infinities and validating shape and range against hostile payloads:
// the matrix must be square over the PID list, every entry must be a
// finite number no larger than MaxDistance, and any negative entry —
// not just exactly -1 — decodes as unreachable (see Unreachable).
func FromWire(w *ViewWire) (*core.View, error) {
	if len(w.Matrix) != len(w.PIDs) {
		return nil, fmt.Errorf("portal: matrix has %d rows for %d PIDs", len(w.Matrix), len(w.PIDs))
	}
	v := &core.View{PIDs: append([]topology.PID(nil), w.PIDs...), Version: w.Version}
	v.D = make([][]float64, len(w.Matrix))
	for i, row := range w.Matrix {
		if len(row) != len(w.PIDs) {
			return nil, fmt.Errorf("portal: matrix row %d has %d columns for %d PIDs", i, len(row), len(w.PIDs))
		}
		v.D[i] = make([]float64, len(row))
		for j, d := range row {
			switch {
			case math.IsNaN(d) || math.IsInf(d, 0):
				// Unreachable JSON decode of a numeric literal, but
				// reachable when a ViewWire is built in-process.
				return nil, fmt.Errorf("portal: non-finite distance at (%d,%d)", i, j)
			case d < 0:
				v.D[i][j] = math.Inf(1)
			case d > MaxDistance:
				return nil, fmt.Errorf("portal: distance %g at (%d,%d) exceeds MaxDistance", d, i, j)
			default:
				v.D[i][j] = d
			}
		}
	}
	return v, nil
}

// PIDPair is one src→dst distance query in a batch request.
type PIDPair struct {
	Src topology.PID `json:"src"`
	Dst topology.PID `json:"dst"`
}

// BatchRequestWire is the JSON body of POST /p4p/v1/distances/batch.
// The GET form carries the same pairs as ?pairs=src-dst,src-dst.
type BatchRequestWire struct {
	Pairs []PIDPair `json:"pairs"`
}

// BatchResponseWire is the JSON response of the batch endpoint:
// distances aligned index-for-index with the requested pairs, encoded
// with the same Unreachable sentinel as the full-matrix endpoint.
type BatchResponseWire struct {
	Version   int       `json:"version"`
	Distances []float64 `json:"distances"`
}

// BatchResult is a decoded batch response: sentinels restored to +Inf
// and every entry range-validated like FromWire.
type BatchResult struct {
	Version   int
	Distances []float64
}

// batchFromWire validates a batch response against the request size and
// the same hostile-payload rules as FromWire: finite, bounded by
// MaxDistance, any negative value decoding as unreachable.
func batchFromWire(w *BatchResponseWire, pairs int) (*BatchResult, error) {
	if len(w.Distances) != pairs {
		return nil, fmt.Errorf("portal: batch returned %d distances for %d pairs", len(w.Distances), pairs)
	}
	out := &BatchResult{Version: w.Version, Distances: make([]float64, len(w.Distances))}
	for i, d := range w.Distances {
		switch {
		case math.IsNaN(d) || math.IsInf(d, 0):
			return nil, fmt.Errorf("portal: non-finite batch distance at %d", i)
		case d < 0:
			out.Distances[i] = math.Inf(1)
		case d > MaxDistance:
			return nil, fmt.Errorf("portal: batch distance %g at %d exceeds MaxDistance", d, i)
		default:
			out.Distances[i] = d
		}
	}
	return out, nil
}

// PIDLookupWire is the JSON response of the PID lookup endpoint.
type PIDLookupWire struct {
	PID topology.PID `json:"pid"`
	ASN int          `json:"asn"`
}

// errorWire is the JSON error envelope.
type errorWire struct {
	Error string `json:"error"`
}

// Registry is the discovery shim: it plays the role of the DNS SRV
// record _p4p._tcp.<domain> by mapping provider domains to portal base
// URLs.
type Registry map[string]string

// Discover resolves a provider domain to its iTracker base URL.
func (r Registry) Discover(domain string) (string, error) {
	if url, ok := r[domain]; ok {
		return url, nil
	}
	return "", fmt.Errorf("portal: no p4p portal registered for domain %q", domain)
}
