package portal

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"p4p/internal/core"
	"p4p/internal/itracker"
	"p4p/internal/telemetry"
	"p4p/internal/topology"
)

// TestContentLengthSet is the regression test for chunked cached
// responses: both the buffered writeJSON path and the cached-bytes
// distances path must carry a Content-Length matching the body.
func TestContentLengthSet(t *testing.T) {
	srv, _ := newTestPortal(t, itracker.Config{Name: "t", ASN: 1})
	for _, path := range []string{"/p4p/v1/policy", "/p4p/v1/distances", "/p4p/v1/distances", "/p4p/v1/capabilities"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		cl := resp.Header.Get("Content-Length")
		if cl == "" {
			t.Fatalf("%s: no Content-Length (chunked response)", path)
		}
		if n, _ := strconv.Atoi(cl); n != len(body) {
			t.Fatalf("%s: Content-Length %s, body %d bytes", path, cl, len(body))
		}
	}
}

// TestBootNonceETagPerProcess is the regression test for cross-restart
// ETag collisions: two portal processes at the same engine version must
// not validate each other's ETags, because their matrices can differ
// while the version counters match.
func TestBootNonceETagPerProcess(t *testing.T) {
	newHandler := func() *Handler {
		g := topology.Abilene()
		r := topology.ComputeRouting(g)
		e := core.NewEngine(g, r, core.Config{})
		return NewHandler(itracker.New(itracker.Config{Name: "t", ASN: 1}, e, nil))
	}
	h1, h2 := newHandler(), newHandler()

	get := func(h *Handler, inm string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, "/p4p/v1/distances", nil)
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	etag1 := get(h1, "").Header().Get("ETag")
	if etag1 == "" {
		t.Fatal("no ETag on distances response")
	}
	// Same process, same version: revalidates.
	if rec := get(h1, etag1); rec.Code != http.StatusNotModified {
		t.Fatalf("same-process revalidation: status %d, want 304", rec.Code)
	}
	// Different process at the same engine version: must re-send.
	if rec := get(h2, etag1); rec.Code != http.StatusOK {
		t.Fatalf("cross-process revalidation: status %d, want 200 (boot nonce missing from ETag?)", rec.Code)
	}
	if etag2 := get(h2, "").Header().Get("ETag"); etag2 == etag1 {
		t.Fatalf("two processes minted the same ETag %q", etag1)
	}
}

// TestClientDropsCacheWhenETagWithdrawn is the regression test for the
// client staleness bug: a 200 without an ETag used to leave the old
// cache entry (old view + old validator) in place, so later requests
// kept revalidating against a dead ETag — and a spurious match would
// serve the stale matrix forever. Any 200 must replace or drop the
// entry.
func TestClientDropsCacheWhenETagWithdrawn(t *testing.T) {
	view := func(version int) []byte {
		b, _ := json.Marshal(ViewWire{PIDs: []topology.PID{0, 1}, Matrix: [][]float64{{0, float64(version)}, {float64(version), 0}}, Version: version})
		return b
	}
	var mu sync.Mutex
	var inmSeen []string
	step := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inm := r.Header.Get("If-None-Match")
		mu.Lock()
		inmSeen = append(inmSeen, inm)
		step++
		s := step
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		switch s {
		case 1:
			w.Header().Set("ETag", `"A"`)
			w.Write(view(1))
		case 2:
			// Validator withdrawn: 200 with a newer view, no ETag.
			w.Write(view(2))
		default:
			w.Header().Set("ETag", `"B"`)
			w.Write(view(3))
		}
	}))
	defer srv.Close()

	c := NewClient(srv.URL, "")
	for i, wantVer := range []int{1, 2, 3} {
		v, err := c.Distances()
		if err != nil {
			t.Fatalf("fetch %d: %v", i+1, err)
		}
		if v.Version != wantVer {
			t.Fatalf("fetch %d: version %d, want %d (stale cache served?)", i+1, v.Version, wantVer)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if inmSeen[0] != "" {
		t.Fatalf("first request sent If-None-Match %q", inmSeen[0])
	}
	if inmSeen[1] != `"A"` {
		t.Fatalf("second request sent If-None-Match %q, want %q", inmSeen[1], `"A"`)
	}
	if inmSeen[2] != "" {
		t.Fatalf("third request sent If-None-Match %q after the validator was withdrawn", inmSeen[2])
	}
}

// TestEncodedCacheMetrics checks the hit/miss counters: first request
// per (version, form) misses, repeats hit, version bumps miss again.
func TestEncodedCacheMetrics(t *testing.T) {
	h, tr := newBenchPortal(t)
	get := func() {
		req := httptest.NewRequest(http.MethodGet, "/p4p/v1/distances", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
	}
	get()
	get()
	get()
	if hits, misses := h.CacheMetrics.Hits.Value(), h.CacheMetrics.Misses.Value(); hits != 2 || misses != 1 {
		t.Fatalf("hits=%v misses=%v, want 2/1", hits, misses)
	}
	tr.ObserveAndUpdate(make([]float64, tr.Engine().Graph().NumLinks()))
	get()
	if hits, misses := h.CacheMetrics.Hits.Value(), h.CacheMetrics.Misses.Value(); hits != 2 || misses != 2 {
		t.Fatalf("after bump: hits=%v misses=%v, want 2/2", hits, misses)
	}
}

// etagVersion extracts the engine version from a portal ETag
// ("nonce-vN-form", quoted).
func etagVersion(t *testing.T, etag string) int {
	t.Helper()
	s, err := strconv.Unquote(etag)
	if err != nil {
		t.Fatalf("unquote ETag %q: %v", etag, err)
	}
	i := strings.Index(s, "-v")
	if i < 0 {
		t.Fatalf("no version in ETag %q", etag)
	}
	rest := s[i+2:]
	j := strings.IndexByte(rest, '-')
	if j < 0 {
		t.Fatalf("no form suffix in ETag %q", etag)
	}
	n, err := strconv.Atoi(rest[:j])
	if err != nil {
		t.Fatalf("version in ETag %q: %v", etag, err)
	}
	return n
}

// TestCachedDistancesConsistency hammers the cached serving path while
// prices update concurrently. Every 200 must be internally consistent:
// the body's version matches the ETag's version and Content-Length
// matches the body — a torn read (new ETag, old body) would make
// clients cache a wrong validator and never refetch. Run with -race.
func TestCachedDistancesConsistency(t *testing.T) {
	h, tr := newBenchPortal(t)
	loads := make([]float64, tr.Engine().Graph().NumLinks())
	loads[0] = 3e9

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			tr.ObserveAndUpdate(loads)
		}
		close(stop)
	}()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		form := "raw"
		if w%2 == 1 {
			form = "ranks"
		}
		go func(form string) {
			defer wg.Done()
			url := "/p4p/v1/distances"
			if form != "raw" {
				url += "?form=" + form
			}
			for {
				req := httptest.NewRequest(http.MethodGet, url, nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("status %d", rec.Code)
					return
				}
				body := rec.Body.Bytes()
				if cl, _ := strconv.Atoi(rec.Header().Get("Content-Length")); cl != len(body) {
					t.Errorf("Content-Length %d, body %d bytes", cl, len(body))
					return
				}
				var w ViewWire
				if err := json.Unmarshal(body, &w); err != nil {
					t.Errorf("body not valid JSON: %v", err)
					return
				}
				if ev := etagVersion(t, rec.Header().Get("ETag")); ev != w.Version {
					t.Errorf("ETag version %d, body version %d (torn cache entry)", ev, w.Version)
					return
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(form)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal(fmt.Errorf("cached serving path returned inconsistent responses under concurrent updates"))
	}
}

// TestCachedDistancesAllocs pins the acceptance bar for the tentpole:
// the steady-state distances path must stay at or under 5 allocations
// per request (the seed path spent 41 on json.Marshal alone).
func TestCachedDistancesAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	h, _ := newBenchPortal(t)
	req := httptest.NewRequest(http.MethodGet, "/p4p/v1/distances", nil)
	h.ServeHTTP(httptest.NewRecorder(), req) // prime the caches
	w := newBenchWriter()
	allocs := testing.AllocsPerRun(500, func() {
		w.reset()
		h.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			t.Fatalf("status %d", w.status)
		}
	})
	if allocs > 5 {
		t.Fatalf("cached distances path: %.1f allocs/op, want <= 5", allocs)
	}
}

// TestTracedUnsampledDistancesAllocs pins the tracing acceptance bar:
// with the tracing middleware installed, an unsampled request through
// the cached distances path costs no more than the untraced budget of
// TestCachedDistancesAllocs — whether unsampled because head sampling
// is off (no inbound header) or because the caller said so (inbound
// traceparent with the sampled flag clear, which must be honored).
func TestTracedUnsampledDistancesAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	h, _ := newBenchPortal(t) // tracer installed, SampleRate 0
	collector := h.Telemetry.Tracer.Collector

	cases := []struct {
		name        string
		traceparent string
	}{
		{"head_sampling_off", ""},
		{"inbound_unsampled", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodGet, "/p4p/v1/distances", nil)
			if tc.traceparent != "" {
				req.Header.Set("Traceparent", tc.traceparent)
			}
			h.ServeHTTP(httptest.NewRecorder(), req) // prime the caches
			w := newBenchWriter()
			allocs := testing.AllocsPerRun(500, func() {
				w.reset()
				h.ServeHTTP(w, req)
				if w.status != http.StatusOK {
					t.Fatalf("status %d", w.status)
				}
			})
			if allocs > 5 {
				t.Fatalf("traced unsampled distances path: %.1f allocs/op, want <= 5", allocs)
			}
		})
	}
	if kept := collector.Snapshot().Kept; kept != 0 {
		t.Fatalf("unsampled requests recorded %d traces", kept)
	}

	// Control: a sampled inbound request with the same tracer does
	// record, proving the zero-alloc runs above exercised live tracing
	// middleware rather than a disabled one.
	req := httptest.NewRequest(http.MethodGet, "/p4p/v1/distances", nil)
	req.Header.Set("Traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	h.ServeHTTP(httptest.NewRecorder(), req)
	if kept := collector.Snapshot().Kept; kept != 1 {
		t.Fatalf("sampled request recorded %d traces, want 1", kept)
	}
}

// TestCacheMetricsRegistered checks the new families land in /metrics
// via the shared registry.
func TestCacheMetricsRegistered(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewCacheMetrics(reg)
	m.hit()
	m.miss()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"p4p_portal_encoded_cache_hits_total 1", "p4p_portal_encoded_cache_misses_total 1"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
}
