package portal

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"p4p/internal/core"
	"p4p/internal/itracker"
	"p4p/internal/telemetry"
	"p4p/internal/topology"
	"p4p/internal/trace"
)

// newBenchPortal builds a fully instrumented handler so the benchmarks
// measure the serving path with telemetry attached — the configuration
// the binaries actually run (minus the slog logger, whose per-line cost
// would swamp the handler).
func newBenchPortal(b testing.TB) (*Handler, *itracker.Server) {
	b.Helper()
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	e := core.NewEngine(g, r, core.Config{})
	tr := itracker.New(itracker.Config{Name: "bench", ASN: 1}, e, itracker.SyntheticPIDMap(g))
	reg := telemetry.NewRegistry()
	tr.Metrics = itracker.NewMetrics(reg)
	h := NewHandler(tr)
	h.Telemetry.Metrics = telemetry.NewHTTPMetrics(reg, "p4p_http")
	// Tracing middleware installed with head sampling off: the
	// production steady state for the hot path, where an unsampled
	// request must cost nothing. TestTracedUnsampledDistancesAllocs pins
	// it; the sampled path has its own tests.
	h.Telemetry.Tracer = &trace.Tracer{Collector: trace.NewCollector(64, 0, 1), SampleRate: 0}
	h.CacheMetrics = NewCacheMetrics(reg)
	h.Telemetry.Preregister()
	return h, tr
}

// benchWriter is a reusable ResponseWriter: header map allocated once,
// body discarded. Benchmarks measure the handler, not the recorder
// httptest would rebuild per request (a real server reuses its
// connection buffers the same way).
type benchWriter struct {
	hdr    http.Header
	status int
	bytes  int
}

func newBenchWriter() *benchWriter { return &benchWriter{hdr: make(http.Header, 8)} }

func (w *benchWriter) Header() http.Header { return w.hdr }

func (w *benchWriter) WriteHeader(status int) { w.status = status }

func (w *benchWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	w.bytes += len(p)
	return len(p), nil
}

func (w *benchWriter) reset() { w.status = 0; w.bytes = 0 }

// BenchmarkPortalDistances measures a full p4p-distance request in
// steady state: routing, middleware, and the encoded-response cache
// serving the current view as a byte copy (≤5 allocs/op is the
// acceptance bar; TestCachedDistancesAllocs pins it).
func BenchmarkPortalDistances(b *testing.B) {
	h, _ := newBenchPortal(b)
	req := httptest.NewRequest(http.MethodGet, "/p4p/v1/distances", nil)
	// Prime the caches so iterations measure the steady state.
	h.ServeHTTP(httptest.NewRecorder(), req)
	w := newBenchWriter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		h.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			b.Fatalf("status %d", w.status)
		}
	}
}

// BenchmarkPortalDistances304 measures the conditional-GET fast path:
// an If-None-Match revalidation that short-circuits to 304.
func BenchmarkPortalDistances304(b *testing.B) {
	h, _ := newBenchPortal(b)
	prime := httptest.NewRequest(http.MethodGet, "/p4p/v1/distances", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, prime)
	etag := rec.Header().Get("ETag")
	if etag == "" {
		b.Fatal("no ETag on primed response")
	}
	req := httptest.NewRequest(http.MethodGet, "/p4p/v1/distances", nil)
	req.Header.Set("If-None-Match", etag)
	w := newBenchWriter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		h.ServeHTTP(w, req)
		if w.status != http.StatusNotModified {
			b.Fatalf("status %d", w.status)
		}
	}
}

// BenchmarkPortalBatch measures the batch endpoint: 16 src/dst pairs
// answered from the cached view without shipping the matrix.
func BenchmarkPortalBatch(b *testing.B) {
	h, _ := newBenchPortal(b)
	prime := httptest.NewRequest(http.MethodGet, "/p4p/v1/distances", nil)
	h.ServeHTTP(httptest.NewRecorder(), prime)
	pairs := make([]string, 16)
	for i := range pairs {
		pairs[i] = "0-" + string(rune('0'+i%10))
	}
	req := httptest.NewRequest(http.MethodGet,
		"/p4p/v1/distances/batch?pairs="+strings.Join(pairs, ","), nil)
	w := newBenchWriter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.reset()
		h.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			b.Fatalf("status %d", w.status)
		}
	}
}

// BenchmarkViewRecompute measures the price-update + view
// materialization cycle: one super-gradient step and the p-distance
// matrix rebuild + re-encode it invalidates.
func BenchmarkViewRecompute(b *testing.B) {
	h, tr := newBenchPortal(b)
	loads := make([]float64, tr.Engine().Graph().NumLinks())
	for i := range loads {
		loads[i] = 1e9 * float64(i%7)
	}
	req := httptest.NewRequest(http.MethodGet, "/p4p/v1/distances", nil)
	w := newBenchWriter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ObserveAndUpdate(loads) // bumps the view version
		w.reset()
		h.ServeHTTP(w, req) // forces the recompute + re-encode
		if w.status != http.StatusOK {
			b.Fatalf("status %d", w.status)
		}
	}
}
