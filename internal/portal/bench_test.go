package portal

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"p4p/internal/core"
	"p4p/internal/itracker"
	"p4p/internal/telemetry"
	"p4p/internal/topology"
)

// newBenchPortal builds a fully instrumented handler so the benchmarks
// measure the serving path with telemetry attached — the configuration
// the binaries actually run.
func newBenchPortal(b *testing.B) (*Handler, *itracker.Server) {
	b.Helper()
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	e := core.NewEngine(g, r, core.Config{})
	tr := itracker.New(itracker.Config{Name: "bench", ASN: 1}, e, itracker.SyntheticPIDMap(g))
	reg := telemetry.NewRegistry()
	tr.Metrics = itracker.NewMetrics(reg)
	h := NewHandler(tr)
	h.Telemetry.Metrics = telemetry.NewHTTPMetrics(reg, "p4p_http")
	h.Telemetry.Preregister()
	return h, tr
}

// BenchmarkPortalDistances measures a full p4p-distance request:
// routing, middleware, JSON encoding of the cached view.
func BenchmarkPortalDistances(b *testing.B) {
	h, _ := newBenchPortal(b)
	req := httptest.NewRequest(http.MethodGet, "/p4p/v1/distances", nil)
	// Prime the view cache so iterations measure the steady state.
	h.ServeHTTP(httptest.NewRecorder(), req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkPortalDistances304 measures the conditional-GET fast path:
// an If-None-Match revalidation that short-circuits to 304.
func BenchmarkPortalDistances304(b *testing.B) {
	h, _ := newBenchPortal(b)
	prime := httptest.NewRequest(http.MethodGet, "/p4p/v1/distances", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, prime)
	etag := rec.Header().Get("ETag")
	if etag == "" {
		b.Fatal("no ETag on primed response")
	}
	req := httptest.NewRequest(http.MethodGet, "/p4p/v1/distances", nil)
	req.Header.Set("If-None-Match", etag)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotModified {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkViewRecompute measures the price-update + view
// materialization cycle: one super-gradient step and the p-distance
// matrix rebuild it invalidates.
func BenchmarkViewRecompute(b *testing.B) {
	h, tr := newBenchPortal(b)
	loads := make([]float64, tr.Engine().Graph().NumLinks())
	for i := range loads {
		loads[i] = 1e9 * float64(i%7)
	}
	req := httptest.NewRequest(http.MethodGet, "/p4p/v1/distances", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ObserveAndUpdate(loads) // bumps the view version
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // forces the recompute
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}
