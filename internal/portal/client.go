package portal

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"p4p/internal/core"
	"p4p/internal/itracker"
	"p4p/internal/telemetry"
	"p4p/internal/trace"
)

// RetryPolicy bounds the client's retry loop. Attempts are spaced by
// exponential backoff with full jitter and each attempt runs under its
// own deadline, so one slow or dead portal replica cannot wedge a
// caller for longer than the policy allows.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, including the first
	// (default 3; values < 1 behave as 1).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
	// PerAttempt is the per-attempt timeout (default 5s). The deadline
	// of the caller's context, when sooner, wins.
	PerAttempt time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.PerAttempt <= 0 {
		p.PerAttempt = 5 * time.Second
	}
	return p
}

// backoff returns the sleep before attempt n (n = 1 after the first
// try), exponential in n with full jitter. A non-positive computed
// delay (zero-valued policy fields, or a shift overflow on large n)
// yields zero sleep instead of panicking in the jitter draw; the
// concurrency-safe math/rand/v2 source avoids both the global-lock
// contention and the seeding pitfalls of the old math/rand global.
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BaseDelay << uint(n-1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	if d <= 0 {
		return 0
	}
	return time.Duration(rand.Int64N(int64(d)) + 1)
}

// cachedView pairs a decoded view with the ETag it arrived under, for
// conditional refresh.
type cachedView struct {
	view *core.View
	etag string
}

// viewCache holds cached views keyed by base URL and form. It is shared
// by every Client derived via WithBase, so a federation front end
// fanning one logical client out across N portals keeps one cache: the
// key includes the full base URL precisely so portal A's ETag is never
// presented to portal B (a spurious If-None-Match match across portals
// would pair A's matrix with B's version).
type viewCache struct {
	mu    sync.Mutex
	views map[string]*cachedView
}

// viewKey scopes a cache entry to one (portal, form) pair.
func viewKey(baseURL, form string) string {
	return baseURL + "\x00" + form
}

func (vc *viewCache) get(baseURL, form string) *cachedView {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.views[viewKey(baseURL, form)]
}

func (vc *viewCache) put(baseURL, form string, cv *cachedView) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if vc.views == nil {
		vc.views = map[string]*cachedView{}
	}
	if cv != nil {
		vc.views[viewKey(baseURL, form)] = cv
	} else {
		delete(vc.views, viewKey(baseURL, form))
	}
}

// ClientMetrics instruments a portal client. All methods are nil-safe,
// so an uninstrumented client pays only a nil check per event.
type ClientMetrics struct {
	// Retries counts attempts beyond the first per request.
	Retries *telemetry.Counter
	// BackoffSeconds accumulates time spent sleeping between attempts.
	BackoffSeconds *telemetry.Counter
	// ETagHits counts 304 revalidations answered from the client's
	// cached view (no matrix bytes moved over the wire).
	ETagHits *telemetry.Counter
	// Failures counts requests that exhausted every attempt.
	Failures *telemetry.Counter
}

// NewClientMetrics registers the portal-client metric families.
func NewClientMetrics(r *telemetry.Registry) *ClientMetrics {
	return &ClientMetrics{
		Retries: r.Counter("p4p_client_retries_total",
			"Portal request attempts beyond the first."),
		BackoffSeconds: r.Counter("p4p_client_backoff_seconds_total",
			"Total time spent sleeping in retry backoff."),
		ETagHits: r.Counter("p4p_client_etag_hits_total",
			"Distance refreshes answered 304 from the client's ETag cache."),
		Failures: r.Counter("p4p_client_failures_total",
			"Portal requests that exhausted every retry attempt."),
	}
}

func (m *ClientMetrics) retry() {
	if m != nil {
		m.Retries.Inc()
	}
}

func (m *ClientMetrics) backoff(d time.Duration) {
	if m != nil {
		m.BackoffSeconds.Add(d.Seconds())
	}
}

func (m *ClientMetrics) etagHit() {
	if m != nil {
		m.ETagHits.Inc()
	}
}

func (m *ClientMetrics) failure() {
	if m != nil {
		m.Failures.Inc()
	}
}

// Client talks to one iTracker portal. It is what an appTracker (or a
// peer in a trackerless system) embeds to consume the P4P interfaces.
//
// All methods have context-taking variants; the plain forms use
// context.Background(). Calls retry transient failures (network errors,
// HTTP 5xx/429) per Retry, and the distance methods revalidate a cached
// view with If-None-Match so an unchanged matrix is never re-downloaded.
type Client struct {
	// BaseURL is the portal root, e.g. "http://isp-b.example:8080".
	BaseURL string
	// Token is presented on restricted interfaces.
	Token string
	// HTTPClient defaults to a client with a 10 s timeout. Tests inject
	// faults by setting its Transport.
	HTTPClient *http.Client
	// Retry bounds the retry loop; zero values take defaults.
	Retry RetryPolicy
	// Metrics, when non-nil, counts retries, backoff time, ETag-cache
	// hits, and exhausted requests (see NewClientMetrics).
	Metrics *ClientMetrics

	// cache holds decoded views keyed by (base URL, form); lazily
	// initialized, shared across WithBase-derived clients.
	cache atomic.Pointer[viewCache]
}

// NewClient builds a portal client.
func NewClient(baseURL, token string) *Client {
	return &Client{
		BaseURL:    baseURL,
		Token:      token,
		HTTPClient: &http.Client{Timeout: 10 * time.Second},
	}
}

// viewCacheRef returns the client's view cache, initializing it on
// first use. The CAS keeps exactly one cache live even when concurrent
// first fetches race.
func (c *Client) viewCacheRef() *viewCache {
	if vc := c.cache.Load(); vc != nil {
		return vc
	}
	vc := &viewCache{views: map[string]*cachedView{}}
	if c.cache.CompareAndSwap(nil, vc) {
		return vc
	}
	return c.cache.Load()
}

// WithBase returns a client identical to c but pointed at a different
// portal root. The derived client shares c's HTTP client (connection
// pool), metrics, retry policy, and ETag/view cache — the cache is
// keyed by full URL, so entries never bleed between portals — which is
// how a multi-portal consumer (apptracker.MultiPortalViews, the
// federation router) fans one configured client out across N backends.
func (c *Client) WithBase(baseURL string) *Client {
	nc := &Client{
		BaseURL:    baseURL,
		Token:      c.Token,
		HTTPClient: c.HTTPClient,
		Retry:      c.Retry,
		Metrics:    c.Metrics,
	}
	nc.cache.Store(c.viewCacheRef())
	return nc
}

// ViewETag reports the ETag under which the client's cached view for a
// form ("raw" or "ranks") last arrived, or "" when no view is cached.
// The federation router composes these per-shard validators into its
// federation ETag.
func (c *Client) ViewETag(form string) string {
	if cv := c.viewCacheRef().get(c.BaseURL, form); cv != nil {
		return cv.etag
	}
	return ""
}

// errHTTP carries a non-2xx portal response through the retry loop.
type errHTTP struct {
	status int
	msg    string
	path   string
}

func (e *errHTTP) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("portal: %s: %s (HTTP %d)", e.path, e.msg, e.status)
	}
	return fmt.Sprintf("portal: %s: HTTP %d", e.path, e.status)
}

// retryable reports whether an attempt's failure is worth retrying.
func retryable(status int, err error) bool {
	if err != nil {
		// Network-level failures (refused, reset, per-attempt timeout)
		// are transient; the caller's own cancellation is checked
		// separately against the parent context.
		return true
	}
	return status >= 500 || status == http.StatusTooManyRequests
}

// do performs one request with retries. It returns the final status,
// body, and response ETag; err is non-nil only when no attempt produced
// an HTTP response. Every portal endpoint is read-only (the batch POST
// carries a query, not a mutation), so re-issuing any method is safe.
func (c *Client) do(ctx context.Context, method, path string, query url.Values, payload []byte, etag string) (status int, body []byte, respETag string, err error) {
	u := c.BaseURL + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	// Reuse the inbound handler's request ID when this call originates
	// from one (so appTracker and portal logs line up), else mint. The
	// client span is a child of whatever span the caller's context
	// carries; with no active span it is nil and tracing costs nothing.
	reqID := telemetry.RequestID(ctx)
	if !telemetry.ValidRequestID(reqID) {
		reqID = telemetry.NewRequestID()
	}
	ctx, span := trace.StartSpan(ctx, "client "+method+" "+path)
	defer span.End()
	span.SetAttr("request_id", reqID)
	pol := c.Retry.withDefaults()
	var lastErr error
	for attempt := 1; ; attempt++ {
		status, body, respETag, lastErr = c.attempt(ctx, hc, method, u, path, payload, etag, pol.PerAttempt, reqID, attempt)
		if lastErr == nil && !retryable(status, nil) {
			span.SetAttrInt("attempts", attempt)
			return status, body, respETag, nil
		}
		if lastErr == nil {
			// Retryable HTTP status: keep the envelope in case this is
			// the last attempt.
			lastErr = httpErrFromBody(path, status, body)
		}
		if attempt >= pol.MaxAttempts || ctx.Err() != nil {
			c.Metrics.failure()
			err = fmt.Errorf("portal: %s: giving up after %d attempt(s): %w", path, attempt, lastErr)
			span.SetAttrInt("attempts", attempt)
			span.RecordError(err)
			return 0, nil, "", err
		}
		sleep := pol.backoff(attempt)
		c.Metrics.retry()
		slept := time.Now()
		select {
		case <-time.After(sleep):
			c.Metrics.backoff(time.Since(slept))
		case <-ctx.Done():
			c.Metrics.backoff(time.Since(slept))
			c.Metrics.failure()
			err = fmt.Errorf("portal: %s: %w (after %d attempt(s): %v)", path, ctx.Err(), attempt, lastErr)
			span.SetAttrInt("attempts", attempt)
			span.RecordError(err)
			return 0, nil, "", err
		}
	}
}

// attempt issues one request under a per-attempt deadline. A non-nil
// payload is re-read from scratch on every attempt. Each attempt gets
// its own child span, and the traceparent injected on the wire names
// that attempt — so the portal's server span parents to the specific
// try that reached it, and a retried request is visibly two hops.
func (c *Client) attempt(ctx context.Context, hc *http.Client, method, u, path string, payload []byte, etag string, perAttempt time.Duration, reqID string, attempt int) (int, []byte, string, error) {
	actx, cancel := context.WithTimeout(ctx, perAttempt)
	defer cancel()
	actx, span := trace.StartSpan(actx, "attempt")
	defer span.End()
	span.SetAttrInt("attempt", attempt)
	var reqBody io.Reader
	if payload != nil {
		reqBody = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(actx, method, u, reqBody)
	if err != nil {
		err = fmt.Errorf("build request: %w", err)
		span.RecordError(err)
		return 0, nil, "", err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Token != "" {
		req.Header.Set(tokenHeader, c.Token)
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	req.Header.Set("X-Request-Id", reqID)
	trace.Inject(actx, req.Header)
	resp, err := hc.Do(req)
	if err != nil {
		span.RecordError(err)
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		err = fmt.Errorf("read body: %w", err)
		span.RecordError(err)
		return 0, nil, "", err
	}
	span.SetAttrInt("http.status", resp.StatusCode)
	return resp.StatusCode, body, resp.Header.Get("ETag"), nil
}

// httpErrFromBody builds the error for a non-2xx response, preferring
// the server's JSON error envelope.
func httpErrFromBody(path string, status int, body []byte) error {
	var e errorWire
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return &errHTTP{status: status, msg: e.Error, path: path}
	}
	return &errHTTP{status: status, path: path}
}

// getJSON fetches path and decodes a 200 response into out.
func (c *Client) getJSON(ctx context.Context, path string, query url.Values, out interface{}) error {
	status, body, _, err := c.do(ctx, http.MethodGet, path, query, nil, "")
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return httpErrFromBody(path, status, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("portal: decode %s: %w", path, err)
	}
	return nil
}

// fetchView fetches /p4p/v1/distances in the given form, revalidating
// the cached copy with If-None-Match; a 304 returns the cached view
// without moving matrix bytes over the wire.
func (c *Client) fetchView(ctx context.Context, form string) (*core.View, error) {
	const path = "/p4p/v1/distances"
	q := url.Values{}
	if form != "raw" {
		q.Set("form", form)
	}
	vc := c.viewCacheRef()
	cached := vc.get(c.BaseURL, form)
	etag := ""
	if cached != nil {
		etag = cached.etag
	}
	status, body, respETag, err := c.do(ctx, http.MethodGet, path, q, nil, etag)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusNotModified:
		if cached == nil {
			return nil, fmt.Errorf("portal: %s: 304 with no cached view", path)
		}
		c.Metrics.etagHit()
		return cached.view, nil
	case http.StatusOK:
		var w ViewWire
		if err := json.Unmarshal(body, &w); err != nil {
			return nil, fmt.Errorf("portal: decode %s: %w", path, err)
		}
		v, err := FromWire(&w)
		if err != nil {
			return nil, err
		}
		// Any 200 replaces the cache entry. A 200 without an ETag has
		// withdrawn the server's validator: keeping the old entry would
		// revalidate future requests against a dead ETag, and a spurious
		// match would pair the old matrix with a new version. Drop it.
		if respETag != "" {
			vc.put(c.BaseURL, form, &cachedView{view: v, etag: respETag})
		} else {
			vc.put(c.BaseURL, form, nil)
		}
		return v, nil
	default:
		return nil, httpErrFromBody(path, status, body)
	}
}

// PolicyContext fetches the network usage policy.
func (c *Client) PolicyContext(ctx context.Context) (itracker.Policy, error) {
	var pol itracker.Policy
	err := c.getJSON(ctx, "/p4p/v1/policy", nil, &pol)
	return pol, err
}

// Policy fetches the network usage policy.
func (c *Client) Policy() (itracker.Policy, error) {
	//p4pvet:ignore ctxflow documented non-Context convenience wrapper; the Context variant is the library API
	return c.PolicyContext(context.Background())
}

// DistancesContext fetches the raw p-distance view.
func (c *Client) DistancesContext(ctx context.Context) (*core.View, error) {
	return c.fetchView(ctx, "raw")
}

// Distances fetches the raw p-distance view.
func (c *Client) Distances() (*core.View, error) {
	//p4pvet:ignore ctxflow documented non-Context convenience wrapper; the Context variant is the library API
	return c.DistancesContext(context.Background())
}

// BatchDistancesContext queries /p4p/v1/distances/batch for the given
// src/dst pairs (POST body). The batch endpoint serves from the same
// cached view as the full matrix but ships only the requested entries,
// so clients that poll many portals for a handful of pairs each stop
// re-downloading square matrices. Retries follow the client's
// RetryPolicy; the endpoint is read-only, so re-issuing is safe.
func (c *Client) BatchDistancesContext(ctx context.Context, pairs []PIDPair) (*BatchResult, error) {
	const path = "/p4p/v1/distances/batch"
	if len(pairs) == 0 {
		return &BatchResult{}, nil
	}
	payload, err := json.Marshal(BatchRequestWire{Pairs: pairs})
	if err != nil {
		return nil, fmt.Errorf("portal: encode batch request: %w", err)
	}
	status, body, _, err := c.do(ctx, http.MethodPost, path, nil, payload, "")
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, httpErrFromBody(path, status, body)
	}
	var w BatchResponseWire
	if err := json.Unmarshal(body, &w); err != nil {
		return nil, fmt.Errorf("portal: decode %s: %w", path, err)
	}
	return batchFromWire(&w, len(pairs))
}

// BatchDistances queries the batch endpoint for src/dst pairs.
func (c *Client) BatchDistances(pairs []PIDPair) (*BatchResult, error) {
	//p4pvet:ignore ctxflow documented non-Context convenience wrapper; the Context variant is the library API
	return c.BatchDistancesContext(context.Background(), pairs)
}

// RankedDistancesContext fetches the coarsened rank view.
func (c *Client) RankedDistancesContext(ctx context.Context) (*core.View, error) {
	return c.fetchView(ctx, "ranks")
}

// RankedDistances fetches the coarsened rank view.
func (c *Client) RankedDistances() (*core.View, error) {
	//p4pvet:ignore ctxflow documented non-Context convenience wrapper; the Context variant is the library API
	return c.RankedDistancesContext(context.Background())
}

// CapabilitiesContext fetches provider capabilities, optionally filtered.
func (c *Client) CapabilitiesContext(ctx context.Context, kind string) ([]itracker.Capability, error) {
	var caps []itracker.Capability
	q := url.Values{}
	if kind != "" {
		q.Set("kind", kind)
	}
	err := c.getJSON(ctx, "/p4p/v1/capabilities", q, &caps)
	return caps, err
}

// Capabilities fetches provider capabilities, optionally filtered.
func (c *Client) Capabilities(kind string) ([]itracker.Capability, error) {
	//p4pvet:ignore ctxflow documented non-Context convenience wrapper; the Context variant is the library API
	return c.CapabilitiesContext(context.Background(), kind)
}

// errNilIP rejects LookupPID calls before any request is issued.
var errNilIP = errors.New("portal: lookup of nil or invalid IP")

// LookupPIDContext resolves an IP to PID and ASN.
func (c *Client) LookupPIDContext(ctx context.Context, ip net.IP) (PIDLookupWire, error) {
	var out PIDLookupWire
	if ip == nil || ip.To16() == nil {
		return out, errNilIP
	}
	err := c.getJSON(ctx, "/p4p/v1/pid", url.Values{"ip": {ip.String()}}, &out)
	return out, err
}

// LookupPID resolves an IP to PID and ASN.
func (c *Client) LookupPID(ip net.IP) (PIDLookupWire, error) {
	//p4pvet:ignore ctxflow documented non-Context convenience wrapper; the Context variant is the library API
	return c.LookupPIDContext(context.Background(), ip)
}
