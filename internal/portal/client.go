package portal

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"time"

	"p4p/internal/core"
	"p4p/internal/itracker"
)

// Client talks to one iTracker portal. It is what an appTracker (or a
// peer in a trackerless system) embeds to consume the P4P interfaces.
type Client struct {
	// BaseURL is the portal root, e.g. "http://isp-b.example:8080".
	BaseURL string
	// Token is presented on restricted interfaces.
	Token string
	// HTTPClient defaults to a client with a 10 s timeout.
	HTTPClient *http.Client
}

// NewClient builds a portal client.
func NewClient(baseURL, token string) *Client {
	return &Client{
		BaseURL:    baseURL,
		Token:      token,
		HTTPClient: &http.Client{Timeout: 10 * time.Second},
	}
}

func (c *Client) get(path string, query url.Values, out interface{}) error {
	u := c.BaseURL + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("portal: build request: %w", err)
	}
	if c.Token != "" {
		req.Header.Set(tokenHeader, c.Token)
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("portal: %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("portal: read %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var e errorWire
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("portal: %s: %s (HTTP %d)", path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("portal: %s: HTTP %d", path, resp.StatusCode)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("portal: decode %s: %w", path, err)
	}
	return nil
}

// Policy fetches the network usage policy.
func (c *Client) Policy() (itracker.Policy, error) {
	var pol itracker.Policy
	err := c.get("/p4p/v1/policy", nil, &pol)
	return pol, err
}

// Distances fetches the raw p-distance view.
func (c *Client) Distances() (*core.View, error) {
	var w ViewWire
	if err := c.get("/p4p/v1/distances", nil, &w); err != nil {
		return nil, err
	}
	return FromWire(&w)
}

// RankedDistances fetches the coarsened rank view.
func (c *Client) RankedDistances() (*core.View, error) {
	var w ViewWire
	q := url.Values{"form": {"ranks"}}
	if err := c.get("/p4p/v1/distances", q, &w); err != nil {
		return nil, err
	}
	return FromWire(&w)
}

// Capabilities fetches provider capabilities, optionally filtered.
func (c *Client) Capabilities(kind string) ([]itracker.Capability, error) {
	var caps []itracker.Capability
	q := url.Values{}
	if kind != "" {
		q.Set("kind", kind)
	}
	err := c.get("/p4p/v1/capabilities", q, &caps)
	return caps, err
}

// LookupPID resolves an IP to PID and ASN.
func (c *Client) LookupPID(ip net.IP) (PIDLookupWire, error) {
	var out PIDLookupWire
	err := c.get("/p4p/v1/pid", url.Values{"ip": {ip.String()}}, &out)
	return out, err
}
