package portal

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"p4p/internal/itracker"
	"p4p/internal/topology"
)

// roundTripperFunc adapts a function to http.RoundTripper for fault
// injection.
type roundTripperFunc func(*http.Request) (*http.Response, error)

func (f roundTripperFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// recordingTransport forwards to the default transport while recording
// each response's status and body size.
type recordingTransport struct {
	statuses []int
	bodies   []int64
}

func (rt *recordingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(r)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	rt.statuses = append(rt.statuses, resp.StatusCode)
	rt.bodies = append(rt.bodies, int64(len(body)))
	resp.Body = io.NopCloser(strings.NewReader(string(body)))
	return resp, nil
}

func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		PerAttempt:  2 * time.Second,
	}
}

func TestWriteJSONEncodeFailure(t *testing.T) {
	h := &Handler{}
	rec := httptest.NewRecorder()
	// NaN is not encodable as JSON; before the fix this produced a
	// truncated 200.
	h.writeJSON(rec, httptest.NewRequest(http.MethodGet, "/", nil), http.StatusOK, map[string]float64{"d": math.NaN()})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "encoding failed") {
		t.Fatalf("body = %q, want error envelope", rec.Body.String())
	}
}

func TestConditionalGETServer(t *testing.T) {
	srv, tr := newTestPortal(t, itracker.Config{Name: "t", ASN: 1})

	get := func(etag string) *http.Response {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/p4p/v1/distances", nil)
		if etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	first := get("")
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first GET = %d", first.StatusCode)
	}
	etag := first.Header.Get("ETag")
	if etag == "" {
		t.Fatal("distances response missing ETag")
	}

	// Same version: 304, no body.
	second := get(etag)
	if second.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation = %d, want 304", second.StatusCode)
	}
	body, _ := io.ReadAll(second.Body)
	if len(body) != 0 {
		t.Fatalf("304 carried %d body bytes", len(body))
	}

	// Wildcard and list forms match too.
	if got := get("*").StatusCode; got != http.StatusNotModified {
		t.Fatalf("wildcard revalidation = %d", got)
	}
	if got := get(`"bogus", ` + etag).StatusCode; got != http.StatusNotModified {
		t.Fatalf("list revalidation = %d", got)
	}

	// A stale ETag re-downloads.
	if got := get(`"v999-raw"`).StatusCode; got != http.StatusOK {
		t.Fatalf("stale etag = %d, want 200", got)
	}

	// A version bump invalidates.
	tr.ObserveAndUpdate(make([]float64, tr.Engine().Graph().NumLinks()))
	bumped := get(etag)
	if bumped.StatusCode != http.StatusOK {
		t.Fatalf("post-update revalidation = %d, want 200", bumped.StatusCode)
	}
	if bumped.Header.Get("ETag") == etag {
		t.Fatal("ETag did not change with version")
	}
}

func TestConditionalGETFormsAreDistinct(t *testing.T) {
	srv, _ := newTestPortal(t, itracker.Config{Name: "t", ASN: 1})
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/p4p/v1/distances", nil)
	raw, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	// The raw ETag must not validate the ranks form.
	req2, _ := http.NewRequest(http.MethodGet, srv.URL+"/p4p/v1/distances?form=ranks", nil)
	req2.Header.Set("If-None-Match", raw.Header.Get("ETag"))
	ranks, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer ranks.Body.Close()
	if ranks.StatusCode != http.StatusOK {
		t.Fatalf("ranks with raw etag = %d, want 200", ranks.StatusCode)
	}
	if ranks.Header.Get("ETag") == raw.Header.Get("ETag") {
		t.Fatal("raw and ranks share an ETag")
	}
}

// TestClientConditionalGETReuse is the wire-level acceptance check: a
// repeat Distances() against an unchanged engine returns HTTP 304 with
// zero matrix bytes, and the client serves its cached view.
func TestClientConditionalGETReuse(t *testing.T) {
	srv, tr := newTestPortal(t, itracker.Config{Name: "t", ASN: 1})
	rt := &recordingTransport{}
	c := NewClient(srv.URL, "")
	c.HTTPClient = &http.Client{Transport: rt}

	v1, err := c.Distances()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := c.Distances()
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v1 {
		t.Fatal("revalidated fetch did not reuse the cached view")
	}
	if len(rt.statuses) != 2 || rt.statuses[1] != http.StatusNotModified {
		t.Fatalf("statuses = %v, want [200 304]", rt.statuses)
	}
	if rt.bodies[1] != 0 {
		t.Fatalf("304 moved %d body bytes over the wire", rt.bodies[1])
	}

	// Version bump: full re-download with a fresh view.
	tr.ObserveAndUpdate(make([]float64, tr.Engine().Graph().NumLinks()))
	v3, err := c.Distances()
	if err != nil {
		t.Fatal(err)
	}
	if v3 == v1 || v3.Version == v1.Version {
		t.Fatal("view not refreshed after version bump")
	}
	if rt.statuses[2] != http.StatusOK || rt.bodies[2] == 0 {
		t.Fatalf("post-bump fetch = %d (%d bytes), want a full 200", rt.statuses[2], rt.bodies[2])
	}
}

func TestClientRetriesFlakyTransport(t *testing.T) {
	srv, _ := newTestPortal(t, itracker.Config{Name: "t", ASN: 1})
	var calls atomic.Int64
	c := NewClient(srv.URL, "")
	c.Retry = fastRetry(3)
	c.HTTPClient = &http.Client{Transport: roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		if calls.Add(1) <= 2 {
			return nil, errors.New("injected: connection reset")
		}
		return http.DefaultTransport.RoundTrip(r)
	})}
	v, err := c.Distances()
	if err != nil {
		t.Fatalf("flaky transport should succeed on 3rd attempt: %v", err)
	}
	if len(v.PIDs) == 0 {
		t.Fatal("empty view")
	}
	if calls.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", calls.Load())
	}
}

func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	c := NewClient("http://portal.invalid", "")
	c.Retry = fastRetry(3)
	c.HTTPClient = &http.Client{Transport: roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		calls.Add(1)
		return nil, errors.New("injected: no route to host")
	})}
	_, err := c.Distances()
	if err == nil {
		t.Fatal("expected failure")
	}
	if calls.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", calls.Load())
	}
	if !strings.Contains(err.Error(), "giving up after 3") {
		t.Fatalf("err = %v, want attempt count", err)
	}
}

func TestClientRetriesServerErrors(t *testing.T) {
	var hits atomic.Int64
	inner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"warming up"}`)
			return
		}
		fmt.Fprintln(w, `{"near_congestion_util":0.7}`)
	}))
	defer inner.Close()
	c := NewClient(inner.URL, "")
	c.Retry = fastRetry(5)
	pol, err := c.Policy()
	if err != nil {
		t.Fatalf("5xx should be retried: %v", err)
	}
	if pol.NearCongestionUtil != 0.7 {
		t.Fatalf("policy = %+v", pol)
	}
	if hits.Load() != 3 {
		t.Fatalf("requests = %d, want 3", hits.Load())
	}
}

func TestClientDoesNotRetryAccessDenied(t *testing.T) {
	srv, _ := newTestPortal(t, itracker.Config{Name: "t", ASN: 1, TrustedTokens: []string{"s3cr3t"}})
	var calls atomic.Int64
	c := NewClient(srv.URL, "wrong")
	c.Retry = fastRetry(5)
	c.HTTPClient = &http.Client{Transport: roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		calls.Add(1)
		return http.DefaultTransport.RoundTrip(r)
	})}
	_, err := c.Distances()
	if err == nil {
		t.Fatal("expected denial")
	}
	if calls.Load() != 1 {
		t.Fatalf("403 was retried: %d attempts", calls.Load())
	}
	if !strings.Contains(err.Error(), "403") || !strings.Contains(err.Error(), "denied") {
		t.Fatalf("err = %v, want decoded 403 envelope", err)
	}
}

func TestClientPerAttemptTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var hits atomic.Int64
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	c := NewClient(slow.URL, "")
	c.HTTPClient = &http.Client{}
	c.Retry = RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, PerAttempt: 30 * time.Millisecond}
	start := time.Now()
	_, err := c.Distances()
	if err == nil {
		t.Fatal("expected timeout")
	}
	if hits.Load() != 2 {
		t.Fatalf("slow server hit %d times, want 2 (per-attempt deadline per try)", hits.Load())
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("took %v; per-attempt deadlines not enforced", elapsed)
	}
}

func TestClientHonorsCallerContext(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	c := NewClient(slow.URL, "")
	c.HTTPClient = &http.Client{}
	c.Retry = RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, PerAttempt: 10 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.DistancesContext(ctx)
	if err == nil {
		t.Fatal("expected cancellation")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; caller context not honored", elapsed)
	}
}

func TestLookupPIDRejectsInvalidIP(t *testing.T) {
	var calls atomic.Int64
	c := NewClient("http://portal.invalid", "")
	c.HTTPClient = &http.Client{Transport: roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		calls.Add(1)
		return nil, errors.New("should not be reached")
	})}
	if _, err := c.LookupPID(nil); err == nil {
		t.Fatal("nil IP should fail before any request")
	}
	if _, err := c.LookupPID(net.IP{1, 2}); err == nil {
		t.Fatal("malformed IP should fail before any request")
	}
	if calls.Load() != 0 {
		t.Fatalf("invalid IP still issued %d request(s)", calls.Load())
	}
}

func TestMalformedIPParam(t *testing.T) {
	srv, _ := newTestPortal(t, itracker.Config{Name: "t", ASN: 1})
	for _, q := range []string{"", "?ip=", "?ip=not-an-ip"} {
		resp, err := http.Get(srv.URL + "/p4p/v1/pid" + q)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("pid%s = %d, want 400", q, resp.StatusCode)
		}
		if !strings.Contains(string(body), "malformed ip") {
			t.Fatalf("pid%s body = %q", q, body)
		}
	}
}

func TestAccessDeniedStatus(t *testing.T) {
	srv, _ := newTestPortal(t, itracker.Config{Name: "t", ASN: 1, TrustedTokens: []string{"tok"}})
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/p4p/v1/distances", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status = %d, want 403", resp.StatusCode)
	}
	var e errorWire
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("403 missing error envelope: %v %+v", err, e)
	}
}

func TestFromWireRejectsRaggedAndNonFinite(t *testing.T) {
	good := &ViewWire{PIDs: []topology.PID{0, 1}, Matrix: [][]float64{{0, 2}, {2, 0}}, Version: 3}
	v, err := FromWire(good)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip back out preserves everything, including the
	// unreachable sentinel.
	v.D[0][1] = math.Inf(1)
	rt, err := FromWire(ToWire(v))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(rt.D[0][1], 1) || rt.Version != 3 {
		t.Fatalf("round trip = %+v", rt)
	}
	bad := []*ViewWire{
		{PIDs: []topology.PID{0, 1}, Matrix: [][]float64{{0, 1}, {1}}},
		{PIDs: []topology.PID{0, 1}, Matrix: [][]float64{{0, 1}, {1, 0}, {0, 0}}},
		{PIDs: []topology.PID{0, 1}, Matrix: [][]float64{{0, math.NaN()}, {1, 0}}},
	}
	for i, w := range bad {
		if _, err := FromWire(w); err == nil {
			t.Errorf("case %d: malformed wire view accepted", i)
		}
	}
	// Negatives are not malformed: they decode as unreachable.
	neg, err := FromWire(&ViewWire{PIDs: []topology.PID{0, 1}, Matrix: [][]float64{{0, -0.5}, {1, 0}}})
	if err != nil || !math.IsInf(neg.D[0][1], 1) {
		t.Fatalf("negative distance not tolerated as unreachable: %v %v", neg, err)
	}
}
