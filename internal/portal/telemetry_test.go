package portal

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"p4p/internal/core"
	"p4p/internal/itracker"
	"p4p/internal/telemetry"
	"p4p/internal/topology"
)

// newInstrumentedPortal builds a portal with a full telemetry registry
// attached: HTTP middleware on the server, engine metrics on the
// tracker, and client metrics on the returned client.
func newInstrumentedPortal(t *testing.T) (*httptest.Server, *itracker.Server, *Client, *telemetry.Registry) {
	t.Helper()
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	e := core.NewEngine(g, r, core.Config{})
	tr := itracker.New(itracker.Config{Name: "t", ASN: 1}, e, itracker.SyntheticPIDMap(g))
	reg := telemetry.NewRegistry()
	tr.Metrics = itracker.NewMetrics(reg)
	h := NewHandler(tr)
	h.Telemetry.Metrics = telemetry.NewHTTPMetrics(reg, "p4p_http")
	h.Telemetry.Preregister()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL, "")
	c.Metrics = NewClientMetrics(reg)
	return srv, tr, c, reg
}

func exposition(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestEndToEndRequestMetrics is the acceptance test for the telemetry
// wiring: a portal request increments the per-route request counter and
// latency histogram, the 304 revalidation path increments both the
// server's and the client's ETag-hit counters, and the engine metrics
// record the view recompute. No wall-clock sleeps anywhere.
func TestEndToEndRequestMetrics(t *testing.T) {
	_, tr, c, reg := newInstrumentedPortal(t)

	// First fetch: full download, one recompute.
	if _, err := c.Distances(); err != nil {
		t.Fatal(err)
	}
	exp := exposition(t, reg)
	for _, want := range []string{
		`p4p_http_requests_total{route="distances",class="2xx"} 1`,
		`p4p_http_requests_total{route="distances",class="3xx"} 0`,
		`p4p_http_etag_hits_total{route="distances"} 0`,
		`p4p_itracker_view_version 0`,
		`p4p_client_etag_hits_total 0`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("after first fetch, exposition missing %q", want)
		}
	}
	if !strings.Contains(exp, `p4p_itracker_view_recompute_seconds_count 1`) {
		t.Error("recompute histogram did not record the materialization")
	}
	if !strings.Contains(exp, `p4p_http_request_duration_seconds_count{route="distances"} 1`) {
		t.Error("latency histogram did not record the request")
	}

	// Second fetch: client revalidates, server answers 304.
	if _, err := c.Distances(); err != nil {
		t.Fatal(err)
	}
	exp = exposition(t, reg)
	for _, want := range []string{
		`p4p_http_requests_total{route="distances",class="3xx"} 1`,
		`p4p_http_etag_hits_total{route="distances"} 1`,
		`p4p_client_etag_hits_total 1`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("after revalidation, exposition missing %q", want)
		}
	}
	// The 304 path must not re-materialize the view.
	if !strings.Contains(exp, `p4p_itracker_view_recompute_seconds_count 1`) {
		t.Error("304 path re-materialized the view")
	}

	// A price update moves the convergence gauges and version.
	loads := make([]float64, tr.Engine().Graph().NumLinks())
	loads[0] = 5e9
	tr.ObserveAndUpdate(loads)
	if _, err := c.Distances(); err != nil {
		t.Fatal(err)
	}
	exp = exposition(t, reg)
	for _, want := range []string{
		`p4p_itracker_price_updates_total 1`,
		`p4p_itracker_view_version 1`,
		`p4p_itracker_view_recompute_seconds_count 2`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("after price update, exposition missing %q", want)
		}
	}
	if strings.Contains(exp, "p4p_itracker_supergradient_norm 0\n") {
		t.Error("supergradient norm still zero after a loaded update")
	}
	if strings.Contains(exp, "p4p_itracker_max_link_utilization 0\n") {
		t.Error("MLU gauge still zero after a loaded update")
	}
}

// TestClientRetryMetrics drives the retry loop with an injected flaky
// transport and checks the retry/backoff/failure counters.
func TestClientRetryMetrics(t *testing.T) {
	srv, _, c, reg := newInstrumentedPortal(t)
	var calls atomic.Int64
	c.Retry = fastRetry(3)
	c.HTTPClient = &http.Client{Transport: roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		if calls.Add(1) <= 2 {
			return nil, errors.New("injected: connection reset")
		}
		return http.DefaultTransport.RoundTrip(r)
	})}
	if _, err := c.Distances(); err != nil {
		t.Fatal(err)
	}
	if got := c.Metrics.Retries.Value(); got != 2 {
		t.Errorf("retries = %v, want 2", got)
	}
	if got := c.Metrics.BackoffSeconds.Value(); got <= 0 {
		t.Errorf("backoff seconds = %v, want > 0", got)
	}
	if got := c.Metrics.Failures.Value(); got != 0 {
		t.Errorf("failures = %v, want 0", got)
	}

	// Now a permanently dead transport: the request exhausts attempts.
	c2 := NewClient(srv.URL, "")
	c2.Metrics = c.Metrics
	c2.Retry = fastRetry(2)
	c2.HTTPClient = &http.Client{Transport: roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		return nil, errors.New("injected: no route to host")
	})}
	if _, err := c2.Distances(); err == nil {
		t.Fatal("expected failure")
	}
	if got := c.Metrics.Failures.Value(); got != 1 {
		t.Errorf("failures = %v, want 1", got)
	}
	exp := exposition(t, reg)
	if !strings.Contains(exp, "p4p_client_retries_total 3") {
		t.Errorf("exposition missing retry counter:\n%s", exp)
	}
}

// TestBackoffGuardsNonPositiveDurations covers the jitter fix: the old
// rand.Int63n(int64(d)) panicked whenever the computed delay was <= 0
// (zero-valued policies or shift overflow on deep attempts).
func TestBackoffGuardsNonPositiveDurations(t *testing.T) {
	cases := []struct {
		name string
		pol  RetryPolicy
		n    int
	}{
		{"zero policy", RetryPolicy{}, 1},
		{"negative base", RetryPolicy{BaseDelay: -time.Second, MaxDelay: -time.Second}, 1},
		{"shift overflow", RetryPolicy{BaseDelay: time.Second, MaxDelay: time.Hour}.withDefaults(), 80},
		{"defaults", RetryPolicy{}.withDefaults(), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.pol.backoff(tc.n) // must not panic
			if d < 0 {
				t.Errorf("backoff(%d) = %v, want >= 0", tc.n, d)
			}
			if max := tc.pol.MaxDelay; max > 0 && d > max {
				t.Errorf("backoff(%d) = %v exceeds MaxDelay %v", tc.n, d, max)
			}
		})
	}
}

// TestRequestIDPropagation checks the middleware stamps X-Request-ID on
// portal responses.
func TestRequestIDPropagation(t *testing.T) {
	srv, _, _, _ := newInstrumentedPortal(t)
	resp, err := http.Get(srv.URL + "/p4p/v1/policy")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("portal response missing X-Request-ID")
	}
}
