package portal

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"p4p/internal/core"
	"p4p/internal/topology"
)

// markedPortal serves a distances view whose Version doubles as a
// portal marker, with full ETag revalidation, counting 200s and 304s.
type markedPortal struct {
	mu     sync.Mutex
	marker int
	full   int
	reval  int
}

func (p *markedPortal) etagLocked() string {
	return fmt.Sprintf("%q", fmt.Sprintf("portal-%d", p.marker))
}

func (p *markedPortal) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/p4p/v1/distances" {
		http.NotFound(w, r)
		return
	}
	// Snapshot under the lock, write without it (lockheld: never hold a
	// mutex across ResponseWriter calls).
	p.mu.Lock()
	marker, etag := p.marker, p.etagLocked()
	p.mu.Unlock()
	if inm := r.Header.Get("If-None-Match"); inm == etag {
		p.mu.Lock()
		p.reval++
		p.mu.Unlock()
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	p.mu.Lock()
	p.full++
	p.mu.Unlock()
	v := &core.View{
		Version: marker,
		PIDs:    []topology.PID{0, 1},
		D:       [][]float64{{0, float64(marker)}, {float64(marker), 0}},
	}
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ToWire(v))
}

// TestClientSharedCacheAcrossBases hammers two distinct portals through
// WithBase clones of a single client, concurrently, and asserts the
// URL-keyed view cache never bleeds one portal's view or ETag into the
// other's revalidation. Run under -race this also exercises the cache's
// concurrency safety; before the cache was keyed by URL, one base's 304
// could resurrect the other base's cached matrix.
func TestClientSharedCacheAcrossBases(t *testing.T) {
	p1 := &markedPortal{marker: 101}
	p2 := &markedPortal{marker: 202}
	s1 := httptest.NewServer(p1)
	s2 := httptest.NewServer(p2)
	t.Cleanup(s1.Close)
	t.Cleanup(s2.Close)

	base := NewClient(s1.URL, "")
	c1 := base // the base client itself targets portal 1
	c2 := base.WithBase(s2.URL)

	const iters = 50
	var wg sync.WaitGroup
	errs := make(chan error, 2*iters)
	hammer := func(c *Client, marker int) {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			v, err := c.Distances()
			if err != nil {
				errs <- err
				return
			}
			if v.Version != marker {
				errs <- fmt.Errorf("portal %d served version %d: cross-base cache bleed", marker, v.Version)
				return
			}
		}
	}
	wg.Add(2)
	go hammer(c1, 101)
	go hammer(c2, 202)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Each portal served exactly one full body; everything after was a
	// 304 against that portal's own ETag.
	p1.mu.Lock()
	full1, reval1 := p1.full, p1.reval
	p1.mu.Unlock()
	p2.mu.Lock()
	full2, reval2 := p2.full, p2.reval
	p2.mu.Unlock()
	if full1 != 1 || full2 != 1 {
		t.Errorf("full fetches = %d/%d, want 1/1 (conditional GETs not scoped per base?)", full1, full2)
	}
	if reval1 != iters-1 || reval2 != iters-1 {
		t.Errorf("revalidations = %d/%d, want %d each", reval1, reval2, iters-1)
	}

	// ViewETag is per base URL too.
	if e1, e2 := c1.ViewETag("raw"), c2.ViewETag("raw"); e1 == e2 || e1 == "" || e2 == "" {
		t.Errorf("ViewETag not scoped per base: %q vs %q", e1, e2)
	}

	// A marker bump on one portal invalidates only that portal's entry.
	p2.mu.Lock()
	p2.marker = 203
	p2.mu.Unlock()
	v, err := c2.Distances()
	if err != nil {
		t.Fatal(err)
	}
	if v.Version != 203 {
		t.Fatalf("portal 2 after bump served version %d", v.Version)
	}
	v, err = c1.Distances()
	if err != nil {
		t.Fatal(err)
	}
	if v.Version != 101 {
		t.Fatalf("portal 1 disturbed by portal 2's bump: version %d", v.Version)
	}
	p1.mu.Lock()
	full1 = p1.full
	p1.mu.Unlock()
	if full1 != 1 {
		t.Errorf("portal 1 refetched a full body (%d) after portal 2 changed", full1)
	}
}
