package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2})
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.At(0.5); got != 0 {
		t.Fatalf("At(0.5) = %v", got)
	}
	if got := c.At(1); got != 1.0/3 {
		t.Fatalf("At(1) = %v", got)
	}
	if got := c.At(10); got != 1 {
		t.Fatalf("At(10) = %v", got)
	}
	if c.Quantile(0.5) != 2 || c.Quantile(0) != 1 || c.Quantile(1) != 3 {
		t.Fatal("quantiles wrong")
	}
	if c.Mean() != 2 {
		t.Fatalf("Mean = %v", c.Mean())
	}
	if c.Min() != 1 || c.Max() != 3 {
		t.Fatal("extremes wrong")
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if !math.IsNaN(c.At(1)) || !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Mean()) {
		t.Fatal("empty CDF should be NaN everywhere")
	}
	if c.Points(5) != nil {
		t.Fatal("empty CDF points should be nil")
	}
}

// TestCDFMonotone is a property test: At is non-decreasing and Quantile
// inverts At within sample resolution.
func TestCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	prop := func() bool {
		n := 1 + rng.Intn(60)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.NormFloat64() * 50
		}
		c := NewCDF(samples)
		prev := -1.0
		for x := -150.0; x <= 150; x += 10 {
			f := c.At(x)
			if f < prev-1e-12 {
				return false
			}
			prev = f
		}
		// Quantile(At(x)) <= x for x at sample points.
		for _, x := range samples {
			if c.Quantile(c.At(x)) > x+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return prop() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	pts := c.Points(4)
	if len(pts) != 4 {
		t.Fatalf("points = %v", pts)
	}
	if pts[0][0] != 1 || pts[3][0] != 4 || pts[3][1] != 1 {
		t.Fatalf("points = %v", pts)
	}
}

func TestMeanAndRatio(t *testing.T) {
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
	if Ratio(6, 3) != 2 {
		t.Fatal("Ratio wrong")
	}
	if !math.IsInf(Ratio(1, 0), 1) {
		t.Fatal("Ratio by zero should be +Inf")
	}
}

func TestImprovementPercent(t *testing.T) {
	if got := ImprovementPercent(100, 80); math.Abs(got-20) > 1e-9 {
		t.Fatalf("improvement = %v", got)
	}
	if got := ImprovementPercent(100, 120); math.Abs(got+20) > 1e-9 {
		t.Fatalf("improvement = %v", got)
	}
	if !math.IsNaN(ImprovementPercent(0, 5)) {
		t.Fatal("improvement over zero should be NaN")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:        "3",
		3.14159:  "3.142",
		1e9:      "1.000e+09",
		0.000001: "1.000e-06",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if FormatFloat(math.NaN()) != "NaN" || FormatFloat(math.Inf(1)) != "Inf" {
		t.Fatal("special values wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Header: []string{"name", "value"}}
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("b", 42.0)
	out := tbl.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") || !strings.Contains(out, "42") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Fatalf("table has %d lines", len(lines))
	}
}
