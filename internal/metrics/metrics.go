// Package metrics provides the small statistical helpers the experiment
// harness uses to report results in the paper's terms: empirical CDFs
// (completion-time distributions), means, quantiles, and ratio helpers.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len reports the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns the fraction of samples <= x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (0 <= q <= 1) by the nearest-rank rule.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	// The small epsilon guards against float noise in q*n (e.g. when q
	// came from an integer ratio i/n) flipping the ceiling up a rank.
	idx := int(math.Ceil(q*float64(len(c.sorted))-1e-9)) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range c.sorted {
		sum += v
	}
	return sum / float64(len(c.sorted))
}

// Min and Max return the extremes.
func (c *CDF) Min() float64 { return c.Quantile(0) }

// Max returns the largest sample.
func (c *CDF) Max() float64 { return c.Quantile(1) }

// Points samples the CDF at n evenly spaced fractions for plotting: the
// returned pairs are (value, cumulative fraction).
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	out := make([][2]float64, 0, n)
	for k := 1; k <= n; k++ {
		q := float64(k) / float64(n)
		out = append(out, [2]float64{c.Quantile(q), q})
	}
	return out
}

// Mean returns the mean of a sample slice.
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// Ratio formats a ratio a/b defensively.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}

// ImprovementPercent is 100*(1 - new/old): positive when new is better
// (smaller) than old.
func ImprovementPercent(oldVal, newVal float64) float64 {
	if oldVal == 0 {
		return math.NaN()
	}
	return 100 * (1 - newVal/oldVal)
}

// Table renders rows as an aligned text table; the experiment harness
// prints these in the same layout as the paper's tables.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells formatted with fmt.Sprint.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders floats compactly: integers without decimals,
// large magnitudes in scientific notation, the rest with 3 significant
// decimals.
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 0):
		return "Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e7:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1e7 || (v != 0 && math.Abs(v) < 1e-3):
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
