package federation

import (
	"fmt"
	"strconv"
	"strings"

	"p4p/internal/topology"
)

// ParseCircuit parses the flag form of a circuit,
//
//	shardA:pidA,shardB:pidB,cost
//
// e.g. "east:3,west:7,2.5". The PID is everything after the endpoint's
// last colon, so shard names may themselves contain colons (ports in a
// URL-derived name); they may not contain commas.
func ParseCircuit(s string) (Circuit, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return Circuit{}, fmt.Errorf("federation: circuit %q: want shardA:pidA,shardB:pidB,cost", s)
	}
	a, apid, err := parseEndpoint(parts[0])
	if err != nil {
		return Circuit{}, fmt.Errorf("federation: circuit %q: %v", s, err)
	}
	b, bpid, err := parseEndpoint(parts[1])
	if err != nil {
		return Circuit{}, fmt.Errorf("federation: circuit %q: %v", s, err)
	}
	cost, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	if err != nil || cost < 0 {
		return Circuit{}, fmt.Errorf("federation: circuit %q: bad cost %q", s, parts[2])
	}
	return Circuit{A: a, APID: apid, B: b, BPID: bpid, Cost: cost}, nil
}

func parseEndpoint(s string) (shard string, pid topology.PID, err error) {
	s = strings.TrimSpace(s)
	i := strings.LastIndexByte(s, ':')
	if i <= 0 {
		return "", 0, fmt.Errorf("endpoint %q: want shard:pid", s)
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil || n < 0 {
		return "", 0, fmt.Errorf("endpoint %q: bad PID %q", s, s[i+1:])
	}
	return s[:i], topology.PID(n), nil
}
