package federation

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"p4p/internal/core"
	"p4p/internal/portal"
	"p4p/internal/telemetry"
	"p4p/internal/topology"
)

// fakeClock drives the router's TTL and backoff windows without
// sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// fakeBackend is a scriptable stand-in for one shard portal: it serves
// /p4p/v1/distances with ETag revalidation and /p4p/v1/pid, and can be
// flipped into a failure mode.
type fakeBackend struct {
	mu    sync.Mutex
	view  *core.View
	pid   *portal.PIDLookupWire // nil = 404 on /p4p/v1/pid
	fail  bool
	gets  int // 200 responses served on distances
	nmods int // 304 responses served
}

func (f *fakeBackend) etagLocked() string {
	return fmt.Sprintf("%q", fmt.Sprintf("fake-v%d", f.view.Version))
}

func (f *fakeBackend) setView(v *core.View) {
	f.mu.Lock()
	f.view = v
	f.mu.Unlock()
}

func (f *fakeBackend) setFail(fail bool) {
	f.mu.Lock()
	f.fail = fail
	f.mu.Unlock()
}

func (f *fakeBackend) counts() (gets, nmods int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gets, f.nmods
}

func (f *fakeBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Snapshot under the lock, write without it (lockheld: never hold a
	// mutex across ResponseWriter calls).
	f.mu.Lock()
	fail, view, pid, etag := f.fail, f.view, f.pid, f.etagLocked()
	f.mu.Unlock()
	if fail {
		http.Error(w, `{"error":"injected failure"}`, http.StatusInternalServerError)
		return
	}
	switch r.URL.Path {
	case "/p4p/v1/distances":
		if inm := r.Header.Get("If-None-Match"); inm != "" && inm == etag {
			f.mu.Lock()
			f.nmods++
			f.mu.Unlock()
			w.Header().Set("ETag", etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		f.mu.Lock()
		f.gets++
		f.mu.Unlock()
		w.Header().Set("ETag", etag)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(portal.ToWire(view))
	case "/p4p/v1/pid":
		if pid == nil {
			http.Error(w, `{"error":"no mapping"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(pid)
	default:
		http.NotFound(w, r)
	}
}

// fastClient is a client template with no retries and short attempt
// timeouts, so failure-path tests do not sit in backoff sleeps.
func fastClient() *portal.Client {
	c := portal.NewClient("", "")
	c.Retry = portal.RetryPolicy{MaxAttempts: 1, PerAttempt: 2 * time.Second}
	return c
}

// testFederation wires two fake backends behind a router:
// shard a = PIDs {0,1}, shard b = PIDs {10,11}, one circuit 1-10 @ 7.
func testFederation(t *testing.T, extra ...ShardConfig) (*Router, *fakeClock, *fakeBackend, *fakeBackend) {
	t.Helper()
	fa := &fakeBackend{view: viewA()}
	fb := &fakeBackend{view: viewB()}
	sa := httptest.NewServer(fa)
	sb := httptest.NewServer(fb)
	t.Cleanup(sa.Close)
	t.Cleanup(sb.Close)
	cfg := Config{
		Shards: append([]ShardConfig{
			{Name: "a", BaseURL: sa.URL},
			{Name: "b", BaseURL: sb.URL},
		}, extra...),
		Circuits: []Circuit{{A: "a", APID: 1, B: "b", BPID: 10, Cost: 7}},
		TTL:      30 * time.Second,
		Client:   fastClient(),
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	rt.nowFn = clk.now
	return rt, clk, fa, fb
}

func get(t *testing.T, h http.Handler, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeView(t *testing.T, body []byte) *core.View {
	t.Helper()
	var w portal.ViewWire
	if err := json.Unmarshal(body, &w); err != nil {
		t.Fatalf("decode view: %v", err)
	}
	v, err := portal.FromWire(&w)
	if err != nil {
		t.Fatalf("FromWire: %v", err)
	}
	return v
}

func TestRouterServesMergedView(t *testing.T) {
	rt, _, _, _ := testFederation(t)
	rec := get(t, rt, "/p4p/v1/distances", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.Bytes())
	}
	v := decodeView(t, rec.Body.Bytes())
	want := []topology.PID{0, 1, 10, 11}
	if len(v.PIDs) != 4 {
		t.Fatalf("merged PIDs = %v, want %v", v.PIDs, want)
	}
	if got := v.Distance(0, 11); got != 2+7+4 {
		t.Errorf("cross-shard d(0,11) = %v, want 13", got)
	}
	if got := v.Distance(0, 1); got != 2 {
		t.Errorf("intra-shard d(0,1) = %v, want 2", got)
	}
	// The ranks form serves the same PID set, rank-coarsened.
	rec = get(t, rt, "/p4p/v1/distances?form=ranks", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("ranks status = %d", rec.Code)
	}
	rv := decodeView(t, rec.Body.Bytes())
	if len(rv.PIDs) != 4 {
		t.Errorf("ranks PIDs = %v", rv.PIDs)
	}
	if rec := get(t, rt, "/p4p/v1/distances?form=bogus", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bogus form status = %d, want 400", rec.Code)
	}
}

func TestRouterFederationETagRevalidation(t *testing.T) {
	rt, clk, fa, _ := testFederation(t)
	rec := get(t, rt, "/p4p/v1/distances", nil)
	etag := rec.Header().Get("Etag")
	if etag == "" {
		t.Fatal("no federation ETag on 200")
	}
	body := append([]byte(nil), rec.Body.Bytes()...)

	// Within the TTL: a conditional GET revalidates without touching
	// the backends.
	rec = get(t, rt, "/p4p/v1/distances", map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusNotModified {
		t.Fatalf("status = %d, want 304", rec.Code)
	}

	// Past the TTL with unchanged backends: the refresh pass 304s
	// against each shard and republishes the identical entry — same
	// ETag, byte-identical body.
	clk.advance(31 * time.Second)
	rec = get(t, rt, "/p4p/v1/distances", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if got := rec.Header().Get("Etag"); got != etag {
		t.Errorf("ETag changed across no-op revalidation: %s -> %s", etag, got)
	}
	if !bytes.Equal(rec.Body.Bytes(), body) {
		t.Error("body changed across no-op revalidation")
	}
	if _, nmods := fa.counts(); nmods == 0 {
		t.Error("backend a saw no 304 revalidation")
	}

	// A backend version bump past the TTL recomposes: new ETag, and the
	// old validator no longer matches.
	va := viewA()
	va.Version = 4
	va.D[0][1] = 2.5
	va.D[1][0] = 2.5
	fa.setView(va)
	clk.advance(31 * time.Second)
	rec = get(t, rt, "/p4p/v1/distances", map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusOK {
		t.Fatalf("status after version bump = %d, want 200", rec.Code)
	}
	if got := rec.Header().Get("Etag"); got == etag {
		t.Error("federation ETag did not change after a shard version bump")
	}
	if v := decodeView(t, rec.Body.Bytes()); v.Distance(0, 1) != 2.5 {
		t.Errorf("merged view did not pick up the new shard matrix: d(0,1) = %v", v.Distance(0, 1))
	}
}

func TestRouterBatch(t *testing.T) {
	rt, _, _, _ := testFederation(t)
	rec := get(t, rt, "/p4p/v1/distances/batch?pairs=0-11,1-10,0-1", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.Bytes())
	}
	var out portal.BatchResponseWire
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	want := []float64{13, 7, 2}
	for i, w := range want {
		if out.Distances[i] != w {
			t.Errorf("distances[%d] = %v, want %v", i, out.Distances[i], w)
		}
	}

	// POST form.
	payload, _ := json.Marshal(portal.BatchRequestWire{Pairs: []portal.PIDPair{{Src: 11, Dst: 0}}})
	req := httptest.NewRequest(http.MethodPost, "/p4p/v1/distances/batch", bytes.NewReader(payload))
	rec2 := httptest.NewRecorder()
	rt.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusOK {
		t.Fatalf("POST status = %d", rec2.Code)
	}
	if err := json.Unmarshal(rec2.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Distances[0] != 4+7+2 {
		t.Errorf("POST d(11,0) = %v, want 13", out.Distances[0])
	}

	// Unknown PID is a 400, not a panic.
	if rec := get(t, rt, "/p4p/v1/distances/batch?pairs=0-99", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown PID status = %d, want 400", rec.Code)
	}
}

func TestRouterDegradesPerShard(t *testing.T) {
	rt, clk, _, fb := testFederation(t)
	// Healthy first pass.
	if rec := get(t, rt, "/p4p/v1/distances", nil); rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}

	// Shard b dies. Past the TTL the refresh fails for b only; its
	// last-known-good view keeps the federation whole.
	fb.setFail(true)
	clk.advance(31 * time.Second)
	rec := get(t, rt, "/p4p/v1/distances", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status with one dead shard = %d, want 200", rec.Code)
	}
	v := decodeView(t, rec.Body.Bytes())
	if _, ok := v.Index(10); !ok {
		t.Error("dead shard's PIDs dropped despite last-known-good view")
	}

	st := rt.Stats()
	var bStat ShardStatus
	for _, s := range st.Shards {
		if s.Name == "b" {
			bStat = s
		}
	}
	if bStat.Failures == 0 {
		t.Error("shard b shows no failures after dying")
	}
	if bStat.StaleServes == 0 {
		t.Error("shard b shows no stale serves while serving last-known-good")
	}
	if bStat.Fresh {
		t.Error("shard b still reported fresh")
	}
	if !bStat.HasView {
		t.Error("shard b lost its last-known-good view")
	}
	if st.Merged == nil || st.Merged.ShardsServing != 2 || st.Merged.ShardsFresh != 1 {
		t.Errorf("merged status = %+v, want 2 serving / 1 fresh", st.Merged)
	}

	// Degraded is still ready: one shard holding a view suffices.
	if rec := get(t, rt, "/readyz", nil); rec.Code != http.StatusOK {
		t.Errorf("readyz = %d with a last-known-good federation, want 200", rec.Code)
	}
	if ok, detail := rt.Ready(); !ok || !strings.Contains(detail, "2/2") {
		t.Errorf("Ready() = %v %q", ok, detail)
	}
	if rec := get(t, rt, "/healthz", nil); rec.Code != http.StatusOK {
		t.Errorf("healthz = %d", rec.Code)
	}
}

func TestRouterColdStartAllShardsDown(t *testing.T) {
	fa := &fakeBackend{view: viewA(), fail: true}
	sa := httptest.NewServer(fa)
	t.Cleanup(sa.Close)
	rt, err := NewRouter(Config{
		Shards: []ShardConfig{{Name: "a", BaseURL: sa.URL}},
		Client: fastClient(),
	})
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	rt.nowFn = clk.now
	if rec := get(t, rt, "/p4p/v1/distances", nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503 before any view exists", rec.Code)
	}
	if rec := get(t, rt, "/readyz", nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz = %d, want 503 with zero shards serving", rec.Code)
	}
	// Backend recovers: after the failure backoff the router heals.
	fa.setFail(false)
	clk.advance(6 * time.Second)
	if rec := get(t, rt, "/p4p/v1/distances", nil); rec.Code != http.StatusOK {
		t.Errorf("status after recovery = %d, want 200", rec.Code)
	}
	if rec := get(t, rt, "/readyz", nil); rec.Code != http.StatusOK {
		t.Errorf("readyz after recovery = %d, want 200", rec.Code)
	}
}

func TestRouterTrustedTokens(t *testing.T) {
	fa := &fakeBackend{view: viewA()}
	sa := httptest.NewServer(fa)
	t.Cleanup(sa.Close)
	rt, err := NewRouter(Config{
		Shards:        []ShardConfig{{Name: "a", BaseURL: sa.URL}},
		TrustedTokens: []string{"sekrit"},
		Client:        fastClient(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.nowFn = newFakeClock().now
	if rec := get(t, rt, "/p4p/v1/distances", nil); rec.Code != http.StatusForbidden {
		t.Errorf("no-token status = %d, want 403", rec.Code)
	}
	if rec := get(t, rt, "/p4p/v1/distances/batch?pairs=0-1", nil); rec.Code != http.StatusForbidden {
		t.Errorf("no-token batch status = %d, want 403", rec.Code)
	}
	hdr := map[string]string{"X-P4P-Token": "sekrit"}
	if rec := get(t, rt, "/p4p/v1/distances", hdr); rec.Code != http.StatusOK {
		t.Errorf("token status = %d, want 200", rec.Code)
	}
}

func TestRouterPIDRangeGate(t *testing.T) {
	// Shard a claims PIDs [0,1] but serves {0,1} fine; shard b claims
	// [5,6] and serves {10,11} — rejected, so the merge only ever holds
	// shard a and the collision never reaches appTrackers.
	fa := &fakeBackend{view: viewA()}
	fb := &fakeBackend{view: viewB()}
	sa := httptest.NewServer(fa)
	sb := httptest.NewServer(fb)
	t.Cleanup(sa.Close)
	t.Cleanup(sb.Close)
	rt, err := NewRouter(Config{
		Shards: []ShardConfig{
			{Name: "a", BaseURL: sa.URL, MinPID: 0, MaxPID: 1},
			{Name: "b", BaseURL: sb.URL, MinPID: 5, MaxPID: 6},
		},
		Client: fastClient(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.nowFn = newFakeClock().now
	rec := get(t, rt, "/p4p/v1/distances", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	v := decodeView(t, rec.Body.Bytes())
	if _, ok := v.Index(10); ok {
		t.Error("out-of-range shard view made it into the merge")
	}
	st := rt.Stats()
	for _, s := range st.Shards {
		if s.Name == "b" && (s.Failures == 0 || s.LastError == "") {
			t.Errorf("range-violating shard not counted as failed: %+v", s)
		}
	}
}

func TestRouterPIDLookupProxy(t *testing.T) {
	rt, _, _, fb := testFederation(t)
	fb.mu.Lock()
	fb.pid = &portal.PIDLookupWire{PID: 11, ASN: 2}
	fb.mu.Unlock()
	rec := get(t, rt, "/p4p/v1/pid?ip=10.0.0.7", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.Bytes())
	}
	var out portal.PIDLookupWire
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.PID != 11 || out.ASN != 2 {
		t.Errorf("lookup = %+v", out)
	}
	if rec := get(t, rt, "/p4p/v1/pid?ip=not-an-ip", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed ip status = %d, want 400", rec.Code)
	}
}

func TestRouterStatsEndpointAndMetrics(t *testing.T) {
	rt, clk, _, fb := testFederation(t)
	reg := telemetry.NewRegistry()
	rt.Metrics = NewRouterMetrics(reg)
	if rec := get(t, rt, "/p4p/v1/distances", nil); rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	fb.setFail(true)
	clk.advance(31 * time.Second)
	if rec := get(t, rt, "/p4p/v1/distances", nil); rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}

	rec := get(t, rt, "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rec.Code)
	}
	var st RouterStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("stats shards = %d", len(st.Shards))
	}

	// The labeled families mirror the per-shard counters.
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mrec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(mrec, req)
	expo, _ := io.ReadAll(mrec.Result().Body)
	for _, want := range []string{
		`p4p_federation_shard_refreshes_total{shard="a"}`,
		`p4p_federation_shard_failures_total{shard="b"}`,
		`p4p_federation_shard_stale_serves_total{shard="b"}`,
	} {
		if !strings.Contains(string(expo), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

func TestNewRouterValidation(t *testing.T) {
	cases := []Config{
		{}, // no shards
		{Shards: []ShardConfig{{Name: "", BaseURL: "http://x"}}},
		{Shards: []ShardConfig{{Name: "a", BaseURL: ""}}},
		{Shards: []ShardConfig{{Name: "a", BaseURL: "http://x"}, {Name: "a", BaseURL: "http://y"}}},
		{Shards: []ShardConfig{{Name: "a", BaseURL: "http://x", MinPID: 5, MaxPID: 2}}},
		{
			Shards:   []ShardConfig{{Name: "a", BaseURL: "http://x"}},
			Circuits: []Circuit{{A: "a", APID: 0, B: "ghost", BPID: 1, Cost: 1}},
		},
		{
			Shards:   []ShardConfig{{Name: "a", BaseURL: "http://x"}, {Name: "b", BaseURL: "http://y"}},
			Circuits: []Circuit{{A: "a", APID: 0, B: "b", BPID: 1, Cost: -2}},
		},
	}
	for i, cfg := range cases {
		if _, err := NewRouter(cfg); err == nil {
			t.Errorf("case %d: want configuration error", i)
		}
	}
}
