package federation

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"log/slog"
	"math"
	"math/rand/v2"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p4p/internal/core"
	"p4p/internal/health"
	"p4p/internal/portal"
	"p4p/internal/telemetry"
	"p4p/internal/topology"
	"p4p/internal/trace"
)

// tokenHeaderCanon is portal's X-P4P-Token trust-token header in
// canonical MIME form (incoming headers are stored canonically, so
// reading with this key never re-canonicalizes or allocates).
const tokenHeaderCanon = "X-P4p-Token"

// ShardConfig names one backend portal and the PID shard it speaks for.
type ShardConfig struct {
	// Name is the shard's identity in circuits, stats, and metrics.
	Name string
	// BaseURL is the backend portal root.
	BaseURL string
	// Token, when non-empty, is presented to the backend (the router
	// holds the trust relationship with each provider).
	Token string
	// MinPID/MaxPID, when not both zero, declare the inclusive PID
	// range this shard may serve; a fetched view containing a PID
	// outside the range is rejected as misconfigured (or hostile) and
	// the last-known-good view kept instead. Merge additionally rejects
	// any PID served by two shards, so the range gate is defense ahead
	// of that collision, attributable to the offending backend.
	MinPID, MaxPID topology.PID
}

// Config parameterizes a Router.
type Config struct {
	// Shards lists the backend portals; at least one is required and
	// names must be unique.
	Shards []ShardConfig
	// Circuits joins the shards' PID spaces (see Circuit). Each circuit
	// must reference configured shard names.
	Circuits []Circuit
	// TrustedTokens, when non-empty, restricts the distance interfaces
	// to callers presenting one of these tokens, mirroring the backend
	// portals' own access model.
	TrustedTokens []string
	// TTL is how long a merged view serves before shard revalidation
	// (default 30s). Revalidation is cheap when nothing changed: each
	// backend answers 304 off the client's per-URL ETag cache and the
	// previous merged encoding is republished untouched.
	TTL time.Duration
	// RefreshTimeout bounds one shard fetch on top of the client's
	// retry policy (default 10s).
	RefreshTimeout time.Duration
	// FailureBackoff is how long a failed shard serves last-known-good
	// before being retried (default 5s).
	FailureBackoff time.Duration
	// Client, when non-nil, is the template the per-shard clients are
	// derived from via WithBase (sharing its HTTP transport, retry
	// policy, metrics, and URL-keyed ETag cache); tests inject short
	// retries and fake transports here.
	Client *portal.Client
}

// shardState is one backend portal's live state: its client, its
// last-known-good view, and its health counters.
type shardState struct {
	cfg    ShardConfig
	client *portal.Client

	mu        sync.Mutex
	view      *core.View
	etag      string // client's validator for view, "" when none
	fetched   time.Time
	nextRetry time.Time
	lastErr   string
	stats     ShardStats
}

// ShardStats counts one shard's refresh behavior (see ShardStatus for
// the /stats wire form).
type ShardStats struct {
	// Refreshes counts successful view fetches (including 304
	// revalidations inside the client).
	Refreshes int64 `json:"refreshes"`
	// Failures counts fetch attempts that exhausted the client's
	// retries or returned an out-of-range view.
	Failures int64 `json:"failures"`
	// StaleServes counts merge passes that served this shard's
	// last-known-good view past its TTL (backend slow or down).
	StaleServes int64 `json:"stale_serves"`
}

// encodedForm is one fully-rendered response for a view form: encoded
// body plus precomputed header value slices, so serving writes no new
// strings (the portal handler's respEntry pattern).
type encodedForm struct {
	body     []byte
	etag     string
	etagVals []string
	clenVals []string
}

// mergedEntry is one published federation state: the merged view, its
// batch index, and both encoded forms. Immutable once stored.
type mergedEntry struct {
	// key fingerprints the inputs: per-shard ETag + version, or
	// "absent". Same key ⇒ same merged bytes, so a revalidation pass
	// where every backend said 304 republishes the previous encoding.
	key           string
	view          *core.View
	idx           map[topology.PID]int
	builtAt       time.Time
	shardsServing int
	shardsFresh   int
	raw           encodedForm
	ranks         encodedForm
}

// RouterMetrics instruments the federation router. Per-shard families
// carry a "shard" label. All recording methods are nil-safe.
type RouterMetrics struct {
	// ShardRefreshes counts successful per-shard view fetches.
	ShardRefreshes *telemetry.CounterVec
	// ShardFailures counts per-shard fetches that exhausted retries or
	// returned an invalid view.
	ShardFailures *telemetry.CounterVec
	// ShardStaleServes counts merge passes serving a shard's
	// last-known-good view past its TTL.
	ShardStaleServes *telemetry.CounterVec
	// Merges counts merged-view rebuilds (input fingerprint changed).
	Merges *telemetry.Counter
	// MergedPIDs is the PID count of the current merged view.
	MergedPIDs *telemetry.Gauge
	// ShardsServing is how many shards contributed a view to the
	// current merge (fresh or stale).
	ShardsServing *telemetry.Gauge
}

// NewRouterMetrics registers the federation router metric families.
func NewRouterMetrics(r *telemetry.Registry) *RouterMetrics {
	return &RouterMetrics{
		ShardRefreshes: r.CounterVec("p4p_federation_shard_refreshes_total",
			"Successful backend view fetches (including 304 revalidations).", "shard"),
		ShardFailures: r.CounterVec("p4p_federation_shard_failures_total",
			"Backend fetches that exhausted retries or returned an invalid view.", "shard"),
		ShardStaleServes: r.CounterVec("p4p_federation_shard_stale_serves_total",
			"Merge passes serving a shard's last-known-good view past its TTL.", "shard"),
		Merges: r.Counter("p4p_federation_merges_total",
			"Merged-view rebuilds (per-shard input fingerprint changed)."),
		MergedPIDs: r.Gauge("p4p_federation_merged_pids",
			"PID count of the current merged view."),
		ShardsServing: r.Gauge("p4p_federation_shards_serving",
			"Shards contributing a view (fresh or stale) to the current merge."),
	}
}

func (m *RouterMetrics) shardRefresh(name string) {
	if m != nil {
		m.ShardRefreshes.With(name).Inc()
	}
}

func (m *RouterMetrics) shardFailure(name string) {
	if m != nil {
		m.ShardFailures.With(name).Inc()
	}
}

func (m *RouterMetrics) shardStale(name string) {
	if m != nil {
		m.ShardStaleServes.With(name).Inc()
	}
}

func (m *RouterMetrics) merge(pids, serving int) {
	if m != nil {
		m.Merges.Inc()
		m.MergedPIDs.Set(float64(pids))
		m.ShardsServing.Set(float64(serving))
	}
}

func (m *RouterMetrics) serving(n int) {
	if m != nil {
		m.ShardsServing.Set(float64(n))
	}
}

// errWire mirrors the portal's error envelope.
type errWire struct {
	Error string `json:"error"`
}

// jsonCTVals is the Content-Type value shared by every cached response.
var jsonCTVals = []string{"application/json"}

// Router is the federation front end: it owns the shard map, keeps one
// last-known-good view per backend portal, and serves the merged
// federation view over the standard portal wire protocol —
//
//	GET  /p4p/v1/distances[?form=ranks]
//	GET  /p4p/v1/distances/batch?pairs=src-dst,...
//	POST /p4p/v1/distances/batch
//	GET  /p4p/v1/pid?ip=a.b.c.d   (proxied shard by shard)
//	GET  /healthz, /readyz, /stats
//
// so an appTracker cannot tell it from a single very wide iTracker.
// The federation ETag fingerprints every shard's own validator: it
// changes iff some backend's view (or reachability) changed, and a
// revalidation pass where every backend answers 304 republishes the
// previous encoding byte-for-byte. Shards degrade independently: a
// dead backend keeps serving its last-known-good view, and /readyz
// fails only when no shard has ever produced one. Policy and
// capability interfaces stay per-provider and are deliberately not
// proxied — they are meaningless merged.
type Router struct {
	// Telemetry instruments and logs every route; its zero value is
	// inert. Set its fields, do not replace the struct.
	Telemetry telemetry.Middleware
	// Metrics, when non-nil, instruments shard refreshes and merges
	// (see NewRouterMetrics).
	Metrics *RouterMetrics

	cfg       Config
	mux       *http.ServeMux
	bootNonce string
	shards    []*shardState
	trusted   map[string]bool

	merged     atomic.Pointer[mergedEntry]
	mu         sync.Mutex
	refreshing chan struct{} // non-nil while one refresh is in flight

	// nowFn, when non-nil, replaces time.Now so tests drive TTL and
	// backoff windows with a fake clock instead of sleeping.
	nowFn func() time.Time
}

// NewRouter builds the federation front end. Configuration errors —
// no shards, duplicate names, circuits referencing unknown shards —
// fail here, loudly, not at serve time.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("federation: no shards configured")
	}
	names := make(map[string]bool, len(cfg.Shards))
	for _, s := range cfg.Shards {
		if s.Name == "" || s.BaseURL == "" {
			return nil, fmt.Errorf("federation: shard needs both a name and a base URL (got name=%q url=%q)", s.Name, s.BaseURL)
		}
		if names[s.Name] {
			return nil, fmt.Errorf("federation: duplicate shard name %q", s.Name)
		}
		if s.MaxPID < s.MinPID {
			return nil, fmt.Errorf("federation: shard %q: MaxPID %d < MinPID %d", s.Name, s.MaxPID, s.MinPID)
		}
		names[s.Name] = true
	}
	for _, c := range cfg.Circuits {
		if !names[c.A] || !names[c.B] {
			return nil, fmt.Errorf("federation: circuit %s:%d-%s:%d references an unknown shard", c.A, c.APID, c.B, c.BPID)
		}
		if c.Cost < 0 || math.IsNaN(c.Cost) {
			return nil, fmt.Errorf("federation: circuit %s:%d-%s:%d has invalid cost %v", c.A, c.APID, c.B, c.BPID, c.Cost)
		}
	}
	base := cfg.Client
	if base == nil {
		base = portal.NewClient("", "")
	}
	rt := &Router{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		bootNonce: fmt.Sprintf("%08x", rand.Uint32()),
		trusted:   map[string]bool{},
	}
	for _, tok := range cfg.TrustedTokens {
		rt.trusted[tok] = true
	}
	for _, sc := range cfg.Shards {
		c := base.WithBase(sc.BaseURL)
		if sc.Token != "" {
			c.Token = sc.Token
		}
		rt.shards = append(rt.shards, &shardState{cfg: sc, client: c})
	}
	rt.route("GET /p4p/v1/distances", "distances", rt.handleDistances)
	rt.route("GET /p4p/v1/distances/batch", "distances_batch", rt.handleBatch)
	rt.route("POST /p4p/v1/distances/batch", "distances_batch", rt.handleBatch)
	rt.route("GET /p4p/v1/pid", "pid", rt.handlePID)
	rt.route("GET /stats", "stats", rt.handleStats)
	rt.mux.Handle("GET /healthz", health.Handler())
	rt.mux.Handle("GET /readyz", health.ReadyHandler(health.Check{
		Name: "federation_view",
		Probe: func() (bool, string) {
			ok, detail := rt.Ready()
			return ok, detail
		},
	}))
	return rt, nil
}

func (rt *Router) route(pattern, name string, fn http.HandlerFunc) {
	rt.mux.Handle(pattern, rt.Telemetry.RouteFunc(name, fn))
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

func (rt *Router) now() time.Time {
	if rt.nowFn != nil {
		// Injectable clock so tests drive TTL/backoff windows without
		// sleeping; nil in production, where the branch below runs.
		//p4pvet:ignore allochot indirect clock call allocates nothing; needed for sleep-free fake-clock tests
		return rt.nowFn()
	}
	return time.Now()
}

func (rt *Router) ttl() time.Duration {
	if rt.cfg.TTL > 0 {
		return rt.cfg.TTL
	}
	return 30 * time.Second
}

func (rt *Router) refreshTimeout() time.Duration {
	if rt.cfg.RefreshTimeout > 0 {
		return rt.cfg.RefreshTimeout
	}
	return 10 * time.Second
}

func (rt *Router) failureBackoff() time.Duration {
	if rt.cfg.FailureBackoff > 0 {
		return rt.cfg.FailureBackoff
	}
	return 5 * time.Second
}

func (rt *Router) authorized(token string) bool {
	if len(rt.trusted) == 0 {
		return true // open deployment
	}
	return rt.trusted[token]
}

//p4p:coldpath fresh JSON encode; the zero-alloc contract covers the cached byte-copy path
func (rt *Router) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	body, err := json.Marshal(v)
	if err != nil {
		status = http.StatusInternalServerError
		body = []byte(`{"error":"response encoding failed"}`)
	}
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	w.Write(body)
}

// handleDistances serves the merged federation view. Steady state is
// the portal handler's shape: one atomic load, an ETag compare, and a
// byte copy of the pre-rendered body.
//
//p4p:hotpath
func (rt *Router) handleDistances(w http.ResponseWriter, r *http.Request) {
	if !rt.authorized(r.Header.Get(tokenHeaderCanon)) {
		rt.writeJSON(w, http.StatusForbidden, errWire{Error: "access denied"})
		return
	}
	form := "raw"
	if r.URL.RawQuery != "" { // parsing the query allocates; skip it when absent
		if f := r.URL.Query().Get("form"); f != "" {
			form = f
		}
		if form != "raw" && form != "ranks" {
			rt.writeJSON(w, http.StatusBadRequest, errWire{Error: "unknown form; use raw or ranks"})
			return
		}
	}
	ent := rt.current(r.Context())
	if ent == nil {
		rt.writeJSON(w, http.StatusServiceUnavailable, errWire{Error: "no shard views available"})
		return
	}
	ef := &ent.raw
	if form == "ranks" {
		ef = &ent.ranks
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" && portal.ETagMatches(inm, ef.etag) {
		w.Header()["Etag"] = ef.etagVals
		w.WriteHeader(http.StatusNotModified)
		return
	}
	hdr := w.Header()
	hdr["Content-Type"] = jsonCTVals
	hdr["Etag"] = ef.etagVals
	hdr["Content-Length"] = ef.clenVals
	w.WriteHeader(http.StatusOK)
	w.Write(ef.body)
}

// current returns the entry to serve: the published merge when inside
// its TTL, else whatever a refresh pass produces. Returns nil only
// when no shard has ever produced a view.
//
//p4p:hotpath the fresh branch is one atomic load and a clock read
func (rt *Router) current(ctx context.Context) *mergedEntry {
	ent := rt.merged.Load()
	if ent != nil && rt.now().Sub(ent.builtAt) < rt.ttl() {
		return ent
	}
	return rt.refresh(ctx, ent)
}

// refresh runs (or waits out) one singleflight refresh pass. A caller
// holding a previous entry is answered from it immediately while the
// winner refreshes — stale-while-revalidate, so a slow backend never
// stalls the serving path once the router has any state.
//
//p4p:coldpath runs at most once per TTL window
func (rt *Router) refresh(ctx context.Context, prev *mergedEntry) *mergedEntry {
	rt.mu.Lock()
	if ch := rt.refreshing; ch != nil {
		rt.mu.Unlock()
		if prev != nil {
			return prev
		}
		// Cold start: block on the in-flight refresh instead of bouncing
		// the caller with a 503 the winner is about to obsolete.
		select {
		case <-ch:
			return rt.merged.Load()
		case <-ctx.Done():
			return nil
		}
	}
	ch := make(chan struct{})
	rt.refreshing = ch
	rt.mu.Unlock()
	ent := rt.refreshMerged(ctx, prev)
	rt.mu.Lock()
	rt.refreshing = nil
	rt.mu.Unlock()
	close(ch)
	return ent
}

// refreshMerged revalidates every due shard concurrently, then
// publishes the merge of whatever views exist. Shards in failure
// backoff, and shards that fail now, contribute their last-known-good
// view; only a shard with no view at all drops out of the merge.
//
//p4p:coldpath
func (rt *Router) refreshMerged(ctx context.Context, prev *mergedEntry) *mergedEntry {
	ctx, span := trace.StartSpan(ctx, "federation_refresh")
	defer span.End()
	now := rt.now()
	var wg sync.WaitGroup
	for _, s := range rt.shards {
		s.mu.Lock()
		due := (s.view == nil || now.Sub(s.fetched) >= rt.ttl()) && !now.Before(s.nextRetry)
		s.mu.Unlock()
		if !due {
			continue
		}
		wg.Add(1)
		go func(s *shardState) {
			defer wg.Done()
			rt.fetchShard(ctx, s)
		}(s)
	}
	wg.Wait()

	views := make([]ShardView, 0, len(rt.shards))
	var keyb strings.Builder
	serving, fresh := 0, 0
	for _, s := range rt.shards {
		s.mu.Lock()
		v, etag, fetched := s.view, s.etag, s.fetched
		stale := v != nil && now.Sub(fetched) >= rt.ttl()
		if stale {
			s.stats.StaleServes++
		}
		s.mu.Unlock()
		if stale {
			rt.Metrics.shardStale(s.cfg.Name)
		}
		keyb.WriteString(s.cfg.Name)
		keyb.WriteByte('=')
		if v == nil {
			keyb.WriteString("absent")
		} else {
			keyb.WriteString(etag)
			keyb.WriteByte('#')
			keyb.WriteString(strconv.Itoa(v.Version))
			views = append(views, ShardView{Name: s.cfg.Name, View: v})
			serving++
			if !stale {
				fresh++
			}
		}
		keyb.WriteByte(';')
	}
	span.SetAttrInt("shards_serving", serving)
	if serving == 0 {
		rt.Metrics.serving(0)
		return nil
	}
	key := keyb.String()
	if prev != nil && prev.key == key {
		// Nothing changed: republish the previous encoding under a new
		// TTL window. Bodies and header slices are shared, immutable.
		ent := *prev
		ent.builtAt = now
		ent.shardsServing = serving
		ent.shardsFresh = fresh
		rt.merged.Store(&ent)
		return &ent
	}
	merged, err := Merge(views, rt.cfg.Circuits)
	if err != nil {
		// Two shards serving the same PID: a deployment error, not a
		// transient. Keep the previous merge (if any) rather than serve
		// a view we know is wrong.
		span.RecordError(err)
		if l := rt.Telemetry.Logger; l != nil {
			l.Error("federation merge failed, keeping previous view",
				slog.String("error", err.Error()))
		}
		return prev
	}
	ent, err := rt.render(merged, key, now, serving, fresh)
	if err != nil {
		span.RecordError(err)
		if l := rt.Telemetry.Logger; l != nil {
			l.Error("federation view encode failed, keeping previous view",
				slog.String("error", err.Error()))
		}
		return prev
	}
	rt.merged.Store(ent)
	rt.Metrics.merge(len(merged.PIDs), serving)
	span.SetAttrInt("merged_pids", len(merged.PIDs))
	return ent
}

// fetchShard refreshes one backend's view. The shard mutex is taken
// only after the network round-trip resolves.
//
//p4p:coldpath
func (rt *Router) fetchShard(ctx context.Context, s *shardState) {
	ctx, cancel := context.WithTimeout(ctx, rt.refreshTimeout())
	defer cancel()
	v, err := s.client.DistancesContext(ctx)
	if err == nil {
		err = s.cfg.checkRange(v)
	}
	now := rt.now()
	s.mu.Lock()
	if err != nil {
		s.stats.Failures++
		s.lastErr = err.Error()
		s.nextRetry = now.Add(rt.failureBackoff())
		s.mu.Unlock()
		rt.Metrics.shardFailure(s.cfg.Name)
		if l := rt.Telemetry.Logger; l != nil {
			l.Warn("shard refresh failed, serving last-known-good",
				slog.String("shard", s.cfg.Name),
				slog.String("error", err.Error()))
		}
		return
	}
	s.view = v
	s.etag = s.client.ViewETag("raw")
	s.fetched = now
	s.nextRetry = time.Time{}
	s.lastErr = ""
	s.stats.Refreshes++
	s.mu.Unlock()
	rt.Metrics.shardRefresh(s.cfg.Name)
}

// checkRange rejects a view whose PIDs fall outside the shard's
// declared range.
func (sc ShardConfig) checkRange(v *core.View) error {
	if sc.MinPID == 0 && sc.MaxPID == 0 {
		return nil
	}
	for _, pid := range v.PIDs {
		if pid < sc.MinPID || pid > sc.MaxPID {
			return fmt.Errorf("federation: shard %q served PID %d outside its declared range [%d,%d]",
				sc.Name, pid, sc.MinPID, sc.MaxPID)
		}
	}
	return nil
}

// render encodes both wire forms of a merged view and composes the
// federation ETags from the input fingerprint.
//
//p4p:coldpath runs once per input change; the fmt work is the point of pre-rendering
func (rt *Router) render(v *core.View, key string, now time.Time, serving, fresh int) (*mergedEntry, error) {
	raw, err := json.Marshal(portal.ToWire(v))
	if err != nil {
		return nil, err
	}
	ranks, err := json.Marshal(portal.ToWire(core.RankView(v)))
	if err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	sum := h.Sum64()
	idx := make(map[topology.PID]int, len(v.PIDs))
	for i, p := range v.PIDs {
		idx[p] = i
	}
	return &mergedEntry{
		key:           key,
		view:          v,
		idx:           idx,
		builtAt:       now,
		shardsServing: serving,
		shardsFresh:   fresh,
		raw:           rt.newForm(sum, "raw", append(raw, '\n')),
		ranks:         rt.newForm(sum, "ranks", append(ranks, '\n')),
	}, nil
}

func (rt *Router) newForm(sum uint64, form string, body []byte) encodedForm {
	etag := fmt.Sprintf("%q", fmt.Sprintf("fed-%s-%016x-%s", rt.bootNonce, sum, form))
	return encodedForm{
		body:     body,
		etag:     etag,
		etagVals: []string{etag},
		clenVals: []string{strconv.Itoa(len(body))},
	}
}

// handleBatch answers src/dst pair queries from the merged view — the
// cross-shard pairs are exactly what a single backend cannot answer.
//
//p4p:hotpath
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !rt.authorized(r.Header.Get(tokenHeaderCanon)) {
		rt.writeJSON(w, http.StatusForbidden, errWire{Error: "access denied"})
		return
	}
	pairs, ok := rt.readBatchPairs(w, r)
	if !ok {
		return
	}
	ent := rt.current(r.Context())
	if ent == nil {
		rt.writeJSON(w, http.StatusServiceUnavailable, errWire{Error: "no shard views available"})
		return
	}
	out := portal.BatchResponseWire{Version: ent.view.Version, Distances: make([]float64, len(pairs))}
	for k, pr := range pairs {
		a, okA := ent.idx[pr.Src]
		b, okB := ent.idx[pr.Dst]
		if !okA || !okB {
			pid := pr.Src
			if okA {
				pid = pr.Dst
			}
			//p4pvet:ignore allochot error formatting runs only for unknown PIDs, off the measured path
			rt.writeJSON(w, http.StatusBadRequest, errWire{Error: fmt.Sprintf("PID %d not in the federation view", pid)})
			return
		}
		if d := ent.view.D[a][b]; math.IsInf(d, 0) {
			out.Distances[k] = portal.Unreachable
		} else {
			out.Distances[k] = d
		}
	}
	rt.writeJSON(w, http.StatusOK, out)
}

// maxBatchBody bounds the POST body of a batch request, mirroring the
// backend portals' limit.
const maxBatchBody = 8 << 20

// maxBatchPairs mirrors the portal's per-request pair bound.
const maxBatchPairs = 65536

// readBatchPairs parses either wire form of a batch request; on error
// it writes the 400 and reports !ok.
//
//p4p:coldpath request parsing allocates by nature; the batch hot loop is the lookup above
func (rt *Router) readBatchPairs(w http.ResponseWriter, r *http.Request) ([]portal.PIDPair, bool) {
	var pairs []portal.PIDPair
	if r.Method == http.MethodPost {
		var req portal.BatchRequestWire
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody))
		if err := dec.Decode(&req); err != nil {
			rt.writeJSON(w, http.StatusBadRequest, errWire{Error: "decode request body: " + err.Error()})
			return nil, false
		}
		pairs = req.Pairs
	} else {
		var err error
		pairs, err = portal.ParsePairs(r.URL.Query().Get("pairs"))
		if err != nil {
			rt.writeJSON(w, http.StatusBadRequest, errWire{Error: err.Error()})
			return nil, false
		}
	}
	if len(pairs) == 0 {
		rt.writeJSON(w, http.StatusBadRequest, errWire{Error: "empty pairs list"})
		return nil, false
	}
	if len(pairs) > maxBatchPairs {
		rt.writeJSON(w, http.StatusBadRequest,
			errWire{Error: fmt.Sprintf("%d pairs exceeds the %d-pair batch limit", len(pairs), maxBatchPairs)})
		return nil, false
	}
	return pairs, true
}

// handlePID proxies IP→PID lookup shard by shard: PID assignment is
// per-provider state the router does not replicate, so it asks each
// backend in configuration order and returns the first answer.
//
//p4p:coldpath network round-trips dominate; nothing here is steady-state
func (rt *Router) handlePID(w http.ResponseWriter, r *http.Request) {
	if !rt.authorized(r.Header.Get(tokenHeaderCanon)) {
		rt.writeJSON(w, http.StatusForbidden, errWire{Error: "access denied"})
		return
	}
	ip := net.ParseIP(r.URL.Query().Get("ip"))
	if ip == nil {
		rt.writeJSON(w, http.StatusBadRequest, errWire{Error: "missing or malformed ip parameter"})
		return
	}
	for _, s := range rt.shards {
		out, err := s.client.LookupPIDContext(r.Context(), ip)
		if err == nil {
			rt.writeJSON(w, http.StatusOK, out)
			return
		}
	}
	rt.writeJSON(w, http.StatusNotFound, errWire{Error: "no shard maps this IP"})
}

// ShardStatus is one shard's row in the /stats body.
type ShardStatus struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	HasView bool   `json:"has_view"`
	// Fresh is true when the view was fetched within the TTL.
	Fresh     bool   `json:"fresh"`
	Version   int    `json:"version,omitempty"`
	PIDs      int    `json:"pids,omitempty"`
	ETag      string `json:"etag,omitempty"`
	LastError string `json:"last_error,omitempty"`
	ShardStats
}

// MergedStatus describes the published merge in the /stats body.
type MergedStatus struct {
	Version       int    `json:"version"`
	PIDs          int    `json:"pids"`
	ShardsServing int    `json:"shards_serving"`
	ShardsFresh   int    `json:"shards_fresh"`
	ETag          string `json:"etag"`
}

// RouterStats is the /stats body.
type RouterStats struct {
	Shards []ShardStatus `json:"shards"`
	Merged *MergedStatus `json:"merged,omitempty"`
}

// Stats snapshots per-shard and merged state for /stats.
func (rt *Router) Stats() RouterStats {
	now := rt.now()
	out := RouterStats{Shards: make([]ShardStatus, 0, len(rt.shards))}
	for _, s := range rt.shards {
		s.mu.Lock()
		st := ShardStatus{
			Name:       s.cfg.Name,
			URL:        s.cfg.BaseURL,
			HasView:    s.view != nil,
			ETag:       s.etag,
			LastError:  s.lastErr,
			ShardStats: s.stats,
		}
		if s.view != nil {
			st.Fresh = now.Sub(s.fetched) < rt.ttl()
			st.Version = s.view.Version
			st.PIDs = len(s.view.PIDs)
		}
		s.mu.Unlock()
		out.Shards = append(out.Shards, st)
	}
	if ent := rt.merged.Load(); ent != nil {
		out.Merged = &MergedStatus{
			Version:       ent.view.Version,
			PIDs:          len(ent.view.PIDs),
			ShardsServing: ent.shardsServing,
			ShardsFresh:   ent.shardsFresh,
			ETag:          ent.raw.etag,
		}
	}
	return out
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	rt.writeJSON(w, http.StatusOK, rt.Stats())
}

// Ready reports whether the router can serve: at least one shard holds
// a view (fresh or last-known-good). The detail string distinguishes a
// full federation from a degraded one for /readyz readers.
func (rt *Router) Ready() (bool, string) {
	now := rt.now()
	serving, fresh := 0, 0
	for _, s := range rt.shards {
		s.mu.Lock()
		if s.view != nil {
			serving++
			if now.Sub(s.fetched) < rt.ttl() {
				fresh++
			}
		}
		s.mu.Unlock()
	}
	detail := fmt.Sprintf("%d/%d shards serving (%d fresh)", serving, len(rt.shards), fresh)
	return serving > 0, detail
}
