// Package federation composes many per-provider iTracker portals into
// one logical p4p-distance view. The paper's deployment story — "each
// provider maintains an iTracker for its own network", appTrackers
// consuming many portals at once — means nobody ever holds a global
// engine: every participant sees only per-shard external views plus
// the interdomain circuits that join them. This package owns the two
// consumers of that shape:
//
//   - Merge composes N shard views and the circuits between them into
//     one union *core.View (intradomain distances authoritative from
//     the owning provider, cross-shard distances via intradomain +
//     interdomain composition, Section 5.4 generalized to live views).
//   - Router (router.go) is the shard-routing front end that serves the
//     merged view over the standard portal wire protocol, with per-shard
//     ETags composed into a federation ETag and per-shard degradation.
//
// apptracker.MultiPortalViews builds on Merge from the consuming side.
package federation

import (
	"fmt"
	"math"
	"sort"

	"p4p/internal/core"
	"p4p/internal/topology"
)

// Circuit is one interdomain adjacency between two shards: traffic from
// shard A's gateway PID to shard B's gateway PID costs Cost on top of
// the intradomain distances to reach the gateways. Circuits are duplex
// (the paper's interdomain links are duplex pairs); model an asymmetric
// peering as two shards whose intradomain views already price the
// asymmetry. Multihomed shard pairs list several circuits; composition
// takes the cheapest, which is exactly the Figure 10 multihoming
// machinery lifted out of the in-process engine.
type Circuit struct {
	// A and B name the shards the circuit joins (ShardView.Name /
	// ShardConfig.Name).
	A, B string
	// APID and BPID are the gateway PIDs on each side; each must be
	// present in its shard's view for the circuit to carry traffic.
	APID, BPID topology.PID
	// Cost is the circuit's p-distance contribution (interdomain price,
	// e.g. the provider's 95/5 transit cost on that link). Negative
	// costs are rejected by Merge.
	Cost float64
}

// ShardView is one backend portal's external view, tagged with the
// shard name circuits reference.
type ShardView struct {
	Name string
	View *core.View
}

// gatewayKey identifies one circuit endpoint in the composition graph.
type gatewayKey struct {
	shard string
	pid   topology.PID
}

// Merge composes shard views into one federated view over the union of
// their PIDs (sorted ascending, the same canonical order a single
// iTracker would serve):
//
//   - same-shard distances copy through unchanged — the owning provider
//     is authoritative for its intradomain matrix;
//   - cross-shard distances compose as intradomain(src→gateway) +
//     interdomain circuit costs + intradomain(gateway'→dst), minimized
//     over every gateway path, including multi-hop transit through
//     intermediate shards and multihomed parallel circuits;
//   - shard pairs with no usable circuit path are +Inf (unreachable),
//     matching core's convention.
//
// Circuits whose shard or gateway PID is absent from the given views
// are skipped, not rejected: a down shard takes its circuits with it
// and the rest of the federation keeps composing (the degradation rule
// of DESIGN.md §14). A PID served by two shards is a configuration
// error and fails loudly.
//
// The merged Version is the sum of shard versions: any backend bump
// changes it, and it is stable across shard orderings.
func Merge(shards []ShardView, circuits []Circuit) (*core.View, error) {
	type owner struct {
		shard int // index into shards
		row   int // row in that shard's view
	}
	own := make(map[topology.PID]owner)
	version := 0
	for si, sh := range shards {
		if sh.View == nil {
			continue
		}
		version += sh.View.Version
		for ri, pid := range sh.View.PIDs {
			if prev, dup := own[pid]; dup {
				return nil, fmt.Errorf("federation: PID %d served by both shard %q and shard %q",
					pid, shards[prev.shard].Name, sh.Name)
			}
			own[pid] = owner{shard: si, row: ri}
		}
	}
	pids := make([]topology.PID, 0, len(own))
	for pid := range own {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })

	// Gateway meta-graph: nodes are usable circuit endpoints, edges are
	// circuit costs plus intradomain distances between same-shard
	// gateways. Floyd–Warshall gives all-pairs cheapest gateway-to-
	// gateway composition; the node count is 2×circuits, so cubic is
	// nothing, and the fixed k→i→j iteration order keeps the float
	// min-sums deterministic.
	viewOf := func(name string) *core.View {
		for _, sh := range shards {
			if sh.Name == name {
				return sh.View
			}
		}
		return nil
	}
	gwIdx := make(map[gatewayKey]int)
	var gws []gatewayKey
	addGW := func(k gatewayKey) int {
		if i, ok := gwIdx[k]; ok {
			return i
		}
		gwIdx[k] = len(gws)
		gws = append(gws, k)
		return len(gws) - 1
	}
	type edge struct {
		a, b int
		cost float64
	}
	var edges []edge
	for _, c := range circuits {
		if c.Cost < 0 || math.IsNaN(c.Cost) {
			return nil, fmt.Errorf("federation: circuit %s:%d-%s:%d has invalid cost %v",
				c.A, c.APID, c.B, c.BPID, c.Cost)
		}
		va, vb := viewOf(c.A), viewOf(c.B)
		if va == nil || vb == nil {
			continue // a down shard takes its circuits with it
		}
		if _, ok := va.Index(c.APID); !ok {
			continue
		}
		if _, ok := vb.Index(c.BPID); !ok {
			continue
		}
		a := addGW(gatewayKey{c.A, c.APID})
		b := addGW(gatewayKey{c.B, c.BPID})
		edges = append(edges, edge{a, b, c.Cost})
	}
	n := len(gws)
	meta := make([][]float64, n)
	for i := range meta {
		meta[i] = make([]float64, n)
		for j := range meta[i] {
			if i != j {
				meta[i][j] = math.Inf(1)
			}
		}
	}
	// Same-shard gateway pairs ride the shard's intradomain matrix.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || gws[i].shard != gws[j].shard {
				continue
			}
			v := viewOf(gws[i].shard)
			if d := v.Distance(gws[i].pid, gws[j].pid); d < meta[i][j] {
				meta[i][j] = d
			}
		}
	}
	for _, e := range edges {
		if e.cost < meta[e.a][e.b] {
			meta[e.a][e.b] = e.cost
		}
		if e.cost < meta[e.b][e.a] {
			meta[e.b][e.a] = e.cost
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d := meta[i][k] + meta[k][j]; d < meta[i][j] {
					meta[i][j] = d
				}
			}
		}
	}
	// Per-shard gateway lists, in meta-node order (deterministic), and
	// each gateway's row in its own shard's matrix.
	gwsOf := make(map[string][]int)
	gwRow := make([]int, n)
	for i, g := range gws {
		gwsOf[g.shard] = append(gwsOf[g.shard], i)
		gwRow[i] = mustRow(viewOf(g.shard), g.pid)
	}

	d := make([][]float64, len(pids))
	for a, src := range pids {
		row := make([]float64, len(pids))
		so := own[src]
		sv := shards[so.shard].View
		sname := shards[so.shard].Name
		for b, dst := range pids {
			do := own[dst]
			if do.shard == so.shard {
				row[b] = sv.D[so.row][do.row]
				continue
			}
			dv := shards[do.shard].View
			dname := shards[do.shard].Name
			best := math.Inf(1)
			for _, gi := range gwsOf[sname] {
				toGW := sv.D[so.row][gwRow[gi]]
				if math.IsInf(toGW, 1) {
					continue
				}
				for _, gj := range gwsOf[dname] {
					if math.IsInf(meta[gi][gj], 1) {
						continue
					}
					fromGW := dv.D[gwRow[gj]][do.row]
					if total := toGW + meta[gi][gj] + fromGW; total < best {
						best = total
					}
				}
			}
			row[b] = best
		}
		d[a] = row
	}
	return &core.View{PIDs: pids, D: d, Version: version}, nil
}

// mustRow returns the row of a PID known to be in the view (circuit
// endpoints are validated before composition).
func mustRow(v *core.View, pid topology.PID) int {
	i, ok := v.Index(pid)
	if !ok {
		panic(fmt.Sprintf("federation: gateway PID %d vanished from view", pid))
	}
	return i
}
